(* Tests for the code generator: the emitted standalone OCaml program must
   compute exactly what the in-process engine computes (differential
   testing through the real `ocaml` interpreter). *)

module G = Ccs.Graph
module R = Ccs.Rates

let run_generated code ~periods =
  let path = Filename.temp_file "ccsgen" ".ml" in
  let oc = open_out path in
  output_string oc code;
  close_out oc;
  let out_path = Filename.temp_file "ccsgen" ".out" in
  let rc =
    Sys.command
      (Printf.sprintf "ocaml %s %d > %s 2>/dev/null" (Filename.quote path)
         periods
         (Filename.quote out_path))
  in
  let ic = open_in out_path in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  Sys.remove path;
  Sys.remove out_path;
  if rc <> 0 then Alcotest.failf "generated program exited with %d" rc;
  Scanf.sscanf line "outputs=%d checksum=%f" (fun o c -> (o, c))

let engine_reference g plan ~outputs =
  let program = Ccs.Program.create g (Ccs.Codegen.codegen_semantics g) in
  let engine =
    Ccs.Engine.of_plan ~program
      ~cache:(Ccs.Cache.config ~size_words:4096 ~block_words:16 ())
      ~plan ()
  in
  let r = Ccs.Engine.run_plan engine plan ~outputs in
  let sink = G.sink g in
  (r.Ccs.Runner.outputs, (Ccs.Engine.state engine sink).(0))

let differential g plan ~periods =
  let period_outputs =
    let counts =
      Ccs.Schedule.fire_counts ~num_nodes:(G.num_nodes g)
        (Option.get plan.Ccs.Plan.period)
    in
    counts.(G.sink g)
  in
  let gen_outputs, gen_checksum =
    run_generated (Ccs.Codegen.emit g ~plan) ~periods
  in
  let eng_outputs, eng_checksum =
    engine_reference g plan ~outputs:(periods * period_outputs)
  in
  Alcotest.(check int) "same outputs" eng_outputs gen_outputs;
  Alcotest.(check (float 1e-6)) "same checksum" eng_checksum gen_checksum

let test_pipeline_batch () =
  let g = Ccs.Generators.uniform_pipeline ~n:6 ~state:8 () in
  let a = R.analyze_exn g in
  let spec = Ccs.Spec.of_assignment g [| 0; 0; 0; 1; 1; 1 |] in
  differential g (Ccs.Partitioned.batch g a spec ~t:8) ~periods:5

let test_multirate_chain () =
  let g =
    Ccs.Generators.pipeline ~n:4
      ~state:(fun _ -> 4)
      ~rates:(fun i -> [| (2, 1); (1, 4); (3, 1) |].(i))
      ()
  in
  let a = R.analyze_exn g in
  differential g (Ccs.Baseline.minimal_memory g a) ~periods:7

let test_split_join () =
  let g = Ccs.Generators.split_join ~branches:3 ~depth:2 ~state:4 () in
  let a = R.analyze_exn g in
  let spec = Ccs.Dag_partition.greedy g ~bound:16 in
  differential g (Ccs.Partitioned.homogeneous g a spec ~m_tokens:4) ~periods:3

let test_app_beamformer () =
  let g = Ccs_apps.Beamformer.graph ~channels:2 ~beams:2 ~taps:4 () in
  let a = R.analyze_exn g in
  differential g (Ccs.Baseline.single_appearance g a) ~periods:4

let test_delays_respected () =
  let b = G.Builder.create ~name:"delayed" () in
  let x = G.Builder.add_module b ~state:2 "x" in
  let y = G.Builder.add_module b ~state:2 "y" in
  let z = G.Builder.add_module b ~state:2 "z" in
  ignore (G.Builder.add_channel b ~src:x ~dst:y ~push:1 ~pop:1 ());
  ignore (G.Builder.add_channel b ~delay:2 ~src:y ~dst:z ~push:1 ~pop:1 ());
  let g = G.Builder.build b in
  let a = R.analyze_exn g in
  differential g (Ccs.Baseline.minimal_memory g a) ~periods:6

let test_rejects_dynamic () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let a = R.analyze_exn g in
  let spec = Ccs.Spec.of_assignment g [| 0; 0; 1; 1 |] in
  let plan = Ccs.Partitioned.pipeline_dynamic g a spec ~m_tokens:16 in
  match Ccs.Codegen.emit g ~plan with
  | _ -> Alcotest.fail "dynamic plan must be rejected"
  | exception Invalid_argument _ -> ()

(* --- regression: zero-state sources must keep counting -------------
   The kernel used to restart at [float_of_int k] every firing while the
   emitted code kept a persistent counter, so checksums diverged. *)
let test_zero_state_source () =
  let b = G.Builder.create ~name:"zsrc" () in
  let s = G.Builder.add_module b ~state:0 "src" in
  let m = G.Builder.add_module b ~state:2 "mid" in
  let k = G.Builder.add_module b ~state:2 "snk" in
  ignore (G.Builder.add_channel b ~src:s ~dst:m ~push:2 ~pop:1 ());
  ignore (G.Builder.add_channel b ~src:m ~dst:k ~push:1 ~pop:2 ());
  let g = G.Builder.build b in
  let a = R.analyze_exn g in
  differential g (Ccs.Baseline.minimal_memory g a) ~periods:5

(* --- regression: empty pop window must not divide by zero ----------
   The interior kernel's mixing function indexed [consumed.(k mod n)]
   with [n = 0] when fired with no input tokens; it now emits the
   constant fill 0.25. *)
let test_empty_window_fill () =
  let b = G.Builder.create ~name:"mix" () in
  let s = G.Builder.add_module b ~state:1 "src" in
  let m = G.Builder.add_module b ~state:1 "mid" in
  let k = G.Builder.add_module b ~state:1 "snk" in
  ignore (G.Builder.add_channel b ~src:s ~dst:m ~push:1 ~pop:1 ());
  ignore (G.Builder.add_channel b ~src:m ~dst:k ~push:3 ~pop:3 ());
  let g = G.Builder.build b in
  let kernel = Ccs.Codegen.codegen_semantics g m in
  let out = Array.make 3 nan in
  (* Fire the interior kernel directly with an empty window — the graph
     itself can never produce this (rates are positive), but a kernel is
     plain code and must be total. *)
  kernel.Ccs.Kernel.fire ~state:[| 0. |] ~inputs:[| [||] |]
    ~outputs:[| out |];
  Array.iter (fun x -> Alcotest.(check (float 0.)) "constant fill" 0.25 x) out

(* --- regression: multi-sink graphs are valid emit targets ----------
   The final report used to call [Graph.sink] (unique sink) and raised
   [Invalid_graph]; it now sums checksums across [Graph.sinks]. *)
let test_multi_sink () =
  let b = G.Builder.create ~name:"fanout" () in
  let s = G.Builder.add_module b ~state:2 "src" in
  let a = G.Builder.add_module b ~state:2 "snk_a" in
  let c = G.Builder.add_module b ~state:2 "snk_b" in
  ignore (G.Builder.add_channel b ~src:s ~dst:a ~push:1 ~pop:1 ());
  ignore (G.Builder.add_channel b ~src:s ~dst:c ~push:2 ~pop:2 ());
  let g = G.Builder.build b in
  let an = R.analyze_exn g in
  let plan = Ccs.Baseline.minimal_memory g an in
  let periods = 4 in
  let gen_outputs, gen_checksum =
    run_generated (Ccs.Codegen.emit g ~plan) ~periods
  in
  (* Reference: drive an engine for the same whole periods (multi-sink
     graphs cannot be driven by output count) and sum both sinks. *)
  let program = Ccs.Program.create g (Ccs.Codegen.codegen_semantics g) in
  let engine =
    Ccs.Engine.of_plan ~program
      ~cache:(Ccs.Cache.config ~size_words:4096 ~block_words:16 ())
      ~plan ()
  in
  let m = Ccs.Engine.machine engine in
  let period = Option.get plan.Ccs.Plan.period in
  for _ = 1 to periods do
    Ccs.Schedule.run m period
  done;
  let sinks = G.sinks g in
  let eng_outputs =
    List.fold_left (fun acc v -> acc + Ccs.Machine.fires m v) 0 sinks
  in
  let eng_checksum =
    List.fold_left
      (fun acc v -> acc +. (Ccs.Engine.state engine v).(0))
      0. sinks
  in
  Alcotest.(check int) "outputs across sinks" eng_outputs gen_outputs;
  Alcotest.(check (float 1e-6)) "summed checksum" eng_checksum gen_checksum

(* --- regression: zero-capacity channels are a structured error -----
   They used to be clamped to 1-slot rings whose pushes overwrite. *)
let test_zero_capacity_rejected () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:4 () in
  let a = R.analyze_exn g in
  let good = Ccs.Baseline.minimal_memory g a in
  let caps = Array.copy good.Ccs.Plan.capacities in
  caps.(0) <- 0;
  let plan =
    Ccs.Plan.of_period ~name:"zero-cap" ~capacities:caps
      (Option.get good.Ccs.Plan.period)
  in
  match Ccs.Codegen.emit g ~plan with
  | _ -> Alcotest.fail "zero-capacity plan must be rejected"
  | exception Ccs.Error.Error (Ccs.Error.Plan_invalid _) -> ()

(* --- regression: bad argv is a usage error, not a crash ------------ *)
let test_argv_guard () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:4 () in
  let a = R.analyze_exn g in
  let code = Ccs.Codegen.emit g ~plan:(Ccs.Baseline.minimal_memory g a) in
  let path = Filename.temp_file "ccsgen" ".ml" in
  let oc = open_out path in
  output_string oc code;
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf "ocaml %s not-a-number >/dev/null 2>/dev/null"
         (Filename.quote path))
  in
  Sys.remove path;
  Alcotest.(check int) "usage exit code" 2 rc

let test_deterministic () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:4 () in
  let a = R.analyze_exn g in
  let plan = Ccs.Baseline.minimal_memory g a in
  Alcotest.(check string) "same text twice" (Ccs.Codegen.emit g ~plan)
    (Ccs.Codegen.emit g ~plan)

let () =
  Alcotest.run "codegen"
    [
      ( "differential",
        [
          Alcotest.test_case "pipeline batch" `Quick test_pipeline_batch;
          Alcotest.test_case "multirate chain" `Quick test_multirate_chain;
          Alcotest.test_case "split-join" `Quick test_split_join;
          Alcotest.test_case "beamformer" `Quick test_app_beamformer;
          Alcotest.test_case "delays" `Quick test_delays_respected;
        ] );
      ( "unit",
        [
          Alcotest.test_case "rejects dynamic" `Quick test_rejects_dynamic;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "zero-state source counts" `Quick
            test_zero_state_source;
          Alcotest.test_case "empty window fills 0.25" `Quick
            test_empty_window_fill;
          Alcotest.test_case "multi-sink emit" `Quick test_multi_sink;
          Alcotest.test_case "zero capacity rejected" `Quick
            test_zero_capacity_rejected;
          Alcotest.test_case "argv usage guard" `Quick test_argv_guard;
        ] );
    ]

(* Adaptive resilience: cache resize semantics, the chaos environment
   grammar, cache-config linting, state migration, and the central
   invariants of the adaptation loop — an adapted run beats the stale plan
   under cache-shrink chaos, sinks bit-identical values to an undisturbed
   run (checked by a QCheck property over random pipelines x random chaos
   seeds), and is deterministic under a fixed seed. *)

module G = Ccs.Graph
module E = Ccs.Error
module L = Ccs.Lru
module C = Ccs.Cache
module F = Ccs.Fault

(* --- Lru.resize ----------------------------------------------------------- *)

let touch_all l keys = List.iter (fun k -> ignore (L.touch l k)) keys

let test_lru_resize_shrink_keeps_hottest () =
  let l = L.create ~capacity:4 in
  touch_all l [ 1; 2; 3; 4 ];
  ignore (L.touch l 2);
  (* MRU order now 2, 4, 3, 1. *)
  let s = L.resize l ~capacity:2 in
  Alcotest.(check (list int)) "hottest survive" [ 2; 4 ]
    (L.to_list_mru_first s);
  Alcotest.(check int) "dropped count as evictions" 2 (L.evictions s)

let test_lru_resize_grow_keeps_all () =
  let l = L.create ~capacity:2 in
  touch_all l [ 1; 2 ];
  let s = L.resize l ~capacity:5 in
  Alcotest.(check (list int)) "all survive" [ 2; 1 ] (L.to_list_mru_first s);
  Alcotest.(check int) "no extra evictions" (L.evictions l) (L.evictions s)

let test_lru_shrink_then_grow_vs_fresh () =
  (* Differential: shrink-then-grow must behave exactly like a fresh set
     seeded with the surviving residents, for any further access string. *)
  let l = L.create ~capacity:8 in
  touch_all l [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let shrunk = L.resize l ~capacity:3 in
  let regrown = L.resize shrunk ~capacity:8 in
  let fresh = L.create ~capacity:8 in
  L.restore_mru_first fresh (Array.of_list (L.to_list_mru_first shrunk));
  let accesses = [ 9; 3; 10; 8; 11; 7; 12; 6; 3; 9 ] in
  List.iter
    (fun k ->
      let a = L.touch regrown k and b = L.touch fresh k in
      if a <> b then Alcotest.failf "diverged at key %d" k)
    accesses;
  Alcotest.(check (list int)) "same final contents"
    (L.to_list_mru_first fresh)
    (L.to_list_mru_first regrown)

(* --- Cache.resize --------------------------------------------------------- *)

let cache_cfg ?policy words = C.config ?policy ~size_words:words ~block_words:4 ()

let test_cache_resize_drops_coldest () =
  let c = C.create (cache_cfg 16) in
  (* Touch blocks 0..3 (word addresses 0,4,8,12): cache full. *)
  List.iter (fun a -> ignore (C.touch c a)) [ 0; 4; 8; 12 ];
  let ev0 = C.evictions c in
  C.resize c (cache_cfg 8);
  (* 2 blocks survive (the hottest: 12 and 8); 2 dropped = evictions. *)
  Alcotest.(check int) "capacity" 8 (C.size_words c);
  Alcotest.(check int) "dropped count as evictions" (ev0 + 2) (C.evictions c);
  Alcotest.(check bool) "hottest resident" true (C.cached c 12);
  Alcotest.(check bool) "second hottest resident" true (C.cached c 8);
  Alcotest.(check bool) "coldest gone" false (C.cached c 0);
  Alcotest.(check int) "resize counted" 1 (C.resizes c);
  (* Stats are continuous across the resize. *)
  Alcotest.(check int) "accesses carried" 4 (C.accesses c);
  Alcotest.(check int) "misses carried" 4 (C.misses c)

let test_cache_resize_then_grow_vs_fresh () =
  let c = C.create (cache_cfg 16) in
  List.iter (fun a -> ignore (C.touch c a)) [ 0; 4; 8; 12; 0 ];
  C.resize c (cache_cfg 8);
  C.resize c (cache_cfg 16);
  (* After shrink-to-2-blocks and regrow, exactly the two hottest (0 and
     12) are resident; the rest must miss like a fresh cache. *)
  Alcotest.(check bool) "hit carried resident" true (C.touch c 0);
  Alcotest.(check bool) "hit carried resident 2" true (C.touch c 12);
  Alcotest.(check bool) "dropped block misses" false (C.touch c 4);
  Alcotest.(check bool) "dropped block misses 2" false (C.touch c 8)

let test_cache_resize_set_associative () =
  let cfg =
    C.config ~policy:(C.Set_associative 2) ~size_words:32 ~block_words:4 ()
  in
  let c = C.create cfg in
  for b = 0 to 7 do
    ignore (C.touch c (b * 4))
  done;
  C.resize c
    (C.config ~policy:(C.Set_associative 2) ~size_words:16 ~block_words:4 ());
  Alcotest.(check int) "capacity" 16 (C.size_words c);
  (* The 4 globally hottest blocks (7,6,5,4) re-home to the shrunken sets
     as far as per-set capacity allows. *)
  let resident = List.filter (fun b -> C.cached c (b * 4)) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check int) "at most 4 resident" 4 (List.length resident);
  Alcotest.(check bool) "hottest resident" true (List.mem 7 resident)

let test_cache_resize_rejects_block_change () =
  let c = C.create (cache_cfg 16) in
  Alcotest.check_raises "block_words change"
    (Invalid_argument "Cache.resize: block size cannot change online (4 words -> 8)")
    (fun () -> C.resize c (C.config ~size_words:16 ~block_words:8 ()))

let test_cache_carry_stats () =
  let a = C.create (cache_cfg 16) and b = C.create (cache_cfg 16) in
  List.iter (fun x -> ignore (C.touch a x)) [ 0; 4; 0 ];
  List.iter (fun x -> ignore (C.touch b x)) [ 8; 8 ];
  C.carry_stats ~src:a b;
  Alcotest.(check int) "accesses summed" 5 (C.accesses b);
  Alcotest.(check int) "hits summed" 2 (C.hits b);
  Alcotest.(check int) "misses summed" 3 (C.misses b)

(* --- chaos environment grammar -------------------------------------------- *)

let test_env_parse_roundtrip () =
  let spec = "shrink@2:4,ways@3:2,burst@5:3x2,iofault@6:1,restore@9" in
  let env = F.parse_env spec in
  let env2 = F.parse_env (F.env_to_string env) in
  Alcotest.(check int) "site count" 5 (List.length (F.env_sites env));
  Alcotest.(check bool) "round-trip" true (F.env_sites env = F.env_sites env2)

let test_env_parse_errors () =
  let bad spec =
    match F.parse_env spec with
    | exception E.Error (E.Failure_msg { context = "chaos spec"; _ }) -> ()
    | exception e ->
        Alcotest.failf "%s: wrong exception %s" spec (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: accepted" spec
  in
  bad "";
  bad "shrink@2";
  bad "shrink@2:1";
  bad "frobnicate@3";
  bad "burst@1:0x2";
  bad "shrink@-1:2"

let test_env_plan_deterministic () =
  let a = F.env_plan ~seed:42 ~count:6 () and b = F.env_plan ~seed:42 ~count:6 () in
  Alcotest.(check bool) "same plan" true (F.env_sites a = F.env_sites b);
  let c = F.env_plan ~seed:43 ~count:6 () in
  Alcotest.(check bool) "seed matters" false (F.env_sites a = F.env_sites c)

let test_conditions_fold () =
  let env = F.parse_env "shrink@2:4,burst@3:2x2,restore@5" in
  let at e = F.conditions_at env e in
  Alcotest.(check int) "nominal before" 1 (at 0).F.shrink_divisor;
  Alcotest.(check int) "shrunk" 4 (at 2).F.shrink_divisor;
  Alcotest.(check int) "burst window" 2 (at 4).F.burst_mult;
  Alcotest.(check int) "burst over" 1 (at 5).F.burst_mult;
  Alcotest.(check int) "restored" 1 (at 5).F.shrink_divisor

let test_env_cache_config_clamps () =
  let cache = C.config ~size_words:64 ~block_words:16 () in
  let shrunk =
    F.env_cache_config cache { F.nominal with F.shrink_divisor = 16 }
  in
  (* 64/16 = 4 words < one block: clamped to one whole block. *)
  Alcotest.(check int) "at least one block" 16 shrunk.C.size_words;
  let direct = F.env_cache_config cache { F.nominal with F.ways = Some 1 } in
  Alcotest.(check bool) "ways=1 is direct-mapped" true
    (direct.C.policy = C.Direct_mapped)

(* --- Check.cache_config --------------------------------------------------- *)

let test_check_cache_config () =
  let ok r = Ccs.Check.is_ok r in
  Alcotest.(check bool) "valid" true
    (ok (Ccs.Check.cache_config ~size_words:2048 ~block_words:16 ()));
  Alcotest.(check bool) "indivisible" false
    (ok (Ccs.Check.cache_config ~size_words:100 ~block_words:16 ()));
  Alcotest.(check bool) "zero-capacity" false
    (ok (Ccs.Check.cache_config ~size_words:8 ~block_words:16 ()));
  Alcotest.(check bool) "nonpositive" false
    (ok (Ccs.Check.cache_config ~size_words:0 ~block_words:16 ()));
  Alcotest.(check bool) "ways too large" false
    (ok (Ccs.Check.cache_config ~ways:64 ~size_words:128 ~block_words:16 ()));
  Alcotest.(check bool) "ways zero" false
    (ok (Ccs.Check.cache_config ~ways:0 ~size_words:128 ~block_words:16 ()));
  Alcotest.(check bool) "ways fits" true
    (ok (Ccs.Check.cache_config ~ways:4 ~size_words:128 ~block_words:16 ()));
  (* Findings are the structured cache-config variant. *)
  let r = Ccs.Check.cache_config ~size_words:100 ~block_words:16 () in
  match r.Ccs.Check.errors with
  | [ E.Cache_config_invalid { field = "size_words"; value = 100; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Cache_config_invalid finding"

(* --- machine migration ---------------------------------------------------- *)

let mk_machine g plan cache =
  Ccs.Machine.create ~graph:g ~cache ~capacities:plan.Ccs.Plan.capacities ()

let test_migrate_carries_state () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
  let cache = Ccs.Config.cache_config cfg in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  let plan = choice.Ccs.Auto.plan in
  let src = mk_machine g plan cache in
  plan.Ccs.Plan.drive src ~target_outputs:64;
  let dst = mk_machine g plan cache in
  Ccs.Machine.migrate ~src dst;
  Alcotest.(check int) "fires carried" (Ccs.Machine.total_fires src)
    (Ccs.Machine.total_fires dst);
  Alcotest.(check int) "outputs carried" (Ccs.Machine.sink_outputs src)
    (Ccs.Machine.sink_outputs dst);
  Alcotest.(check int) "misses carried" (Ccs.Machine.misses src)
    (Ccs.Machine.misses dst);
  List.iter
    (fun e ->
      Alcotest.(check int) "tokens carried" (Ccs.Machine.tokens src e)
        (Ccs.Machine.tokens dst e))
    (G.edges g);
  (* The migrated machine keeps producing. *)
  plan.Ccs.Plan.drive dst ~target_outputs:128;
  Alcotest.(check bool) "continues" true (Ccs.Machine.sink_outputs dst >= 128)

(* --- the adaptation loop -------------------------------------------------- *)

let shrink_env = F.parse_env "shrink@2:4"

let adapt_run ?(adapt = true) ?env ?metrics ?policy g cfg ~outputs ~seed =
  let overlay = Ccs.Overlay.create ~seed g in
  match
    Ccs.Adapt.run ?policy ?env ?metrics ~adapt
      ~epoch_outputs:(max 1 (outputs / 16))
      ~prepare:(Ccs.Overlay.attach overlay)
      ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~planner:(Ccs.Auto.adapt_planner g cfg)
      ~outputs ()
  with
  | Ok report -> (report, overlay)
  | Error e -> Alcotest.failf "adapt run failed: %s" (E.to_string e)

let test_stale_vs_adapted_regression () =
  (* Under a 4x cache shrink the adapted run must strictly beat the plan
     that stays stale — the experiment E22 invariant, on one app. *)
  let entry = Option.get (Ccs_apps.Suite.find "filterbank") in
  let g = entry.Ccs_apps.Suite.graph () in
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  let stale, _ =
    adapt_run ~adapt:false ~env:shrink_env g cfg ~outputs:8000 ~seed:1
  in
  let adapted, _ =
    adapt_run ~adapt:true ~env:shrink_env g cfg ~outputs:8000 ~seed:1
  in
  let m r = r.Ccs.Adapt.result.Ccs.Runner.misses in
  Alcotest.(check bool) "adaptation happened" true
    (adapted.Ccs.Adapt.adaptations <> []);
  if m adapted >= m stale then
    Alcotest.failf "adapted (%d misses) did not beat stale (%d)" (m adapted)
      (m stale)

let test_adapted_outputs_bit_exact () =
  let entry = Option.get (Ccs_apps.Suite.find "fm-radio") in
  let g = entry.Ccs_apps.Suite.graph () in
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  let _, reference = adapt_run ~adapt:false g cfg ~outputs:4000 ~seed:5 in
  let adapted, overlay =
    adapt_run ~adapt:true ~env:shrink_env g cfg ~outputs:4000 ~seed:5
  in
  Alcotest.(check bool) "migrated" true
    (List.exists
       (fun e -> e.Ccs.Adapt.action = Ccs.Adapt.Repartition)
       adapted.Ccs.Adapt.adaptations);
  Alcotest.(check bool) "values compared" true
    (Ccs.Overlay.compared ~reference overlay > 0);
  Alcotest.(check int) "bit-exact sink outputs" 0
    (Ccs.Overlay.mismatches ~reference overlay)

let test_adapt_deterministic () =
  let entry = Option.get (Ccs_apps.Suite.find "fm-radio") in
  let g = entry.Ccs_apps.Suite.graph () in
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  let snap () =
    let metrics = Ccs.Metrics.create () in
    let report, _ =
      adapt_run ~adapt:true ~env:shrink_env ~metrics g cfg ~outputs:4000
        ~seed:5
    in
    (Ccs.Metrics.to_json_string metrics, report.Ccs.Adapt.adaptations)
  in
  let s1, a1 = snap () and s2, a2 = snap () in
  Alcotest.(check string) "identical metrics snapshots" s1 s2;
  Alcotest.(check bool) "identical adaptation traces" true (a1 = a2)

let test_io_fault_contained () =
  (* Checkpoint writes inside an injected I/O-fault window are counted and
     skipped; the run itself must still succeed. *)
  let entry = Option.get (Ccs_apps.Suite.find "fm-radio") in
  let g = entry.Ccs_apps.Suite.graph () in
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  let dir = Filename.temp_file "ccs-test-adapt" "" in
  Sys.remove dir;
  let env = F.parse_env "shrink@2:4,iofault@0:32" in
  let overlay = Ccs.Overlay.create ~seed:5 g in
  (match
     Ccs.Adapt.run ~env ~adapt:true ~checkpoint_dir:dir ~checkpoint_every:2
       ~epoch_outputs:250
       ~prepare:(Ccs.Overlay.attach overlay)
       ~graph:g
       ~cache:(Ccs.Config.cache_config cfg)
       ~planner:(Ccs.Auto.adapt_planner g cfg)
       ~outputs:4000 ()
   with
  | Error e -> Alcotest.failf "run failed: %s" (E.to_string e)
  | Ok report ->
      Alcotest.(check bool) "io faults counted" true
        (report.Ccs.Adapt.io_faults > 0);
      Alcotest.(check int) "no checkpoints written" 0
        report.Ccs.Adapt.checkpoints_written);
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* --- QCheck: migration preserves sink values ------------------------------- *)

let qcheck_migration_bit_exact =
  QCheck.Test.make ~count:25
    ~name:"chaos+adaptation never changes a sink value (random pipelines)"
    QCheck.(pair (int_range 3 7) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Ccs.Generators.uniform_pipeline ~n ~state:64 () in
      let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
      (* An aggressive policy so random cases actually trigger the ladder;
         random chaos draws exercise shrinks, bursts and restores. *)
      let policy =
        {
          Ccs.Adapt.default_policy with
          Ccs.Adapt.degrade_ratio = 1.01;
          patience = 1;
          cooldown = 0;
        }
      in
      let env = F.env_plan ~seed ~count:4 () in
      let _, reference = adapt_run ~adapt:false g cfg ~outputs:600 ~seed in
      let _, overlay =
        adapt_run ~adapt:true ~policy ~env g cfg ~outputs:600 ~seed
      in
      Ccs.Overlay.compared ~reference overlay > 0
      && Ccs.Overlay.mismatches ~reference overlay = 0)

let () =
  Alcotest.run "adapt"
    [
      ( "lru-resize",
        [
          Alcotest.test_case "shrink keeps hottest" `Quick
            test_lru_resize_shrink_keeps_hottest;
          Alcotest.test_case "grow keeps all" `Quick
            test_lru_resize_grow_keeps_all;
          Alcotest.test_case "shrink-then-grow vs fresh" `Quick
            test_lru_shrink_then_grow_vs_fresh;
        ] );
      ( "cache-resize",
        [
          Alcotest.test_case "drops coldest" `Quick
            test_cache_resize_drops_coldest;
          Alcotest.test_case "shrink-then-grow vs fresh" `Quick
            test_cache_resize_then_grow_vs_fresh;
          Alcotest.test_case "set-associative" `Quick
            test_cache_resize_set_associative;
          Alcotest.test_case "rejects block change" `Quick
            test_cache_resize_rejects_block_change;
          Alcotest.test_case "carry_stats sums" `Quick test_cache_carry_stats;
        ] );
      ( "chaos-env",
        [
          Alcotest.test_case "parse round-trip" `Quick test_env_parse_roundtrip;
          Alcotest.test_case "parse errors are structured" `Quick
            test_env_parse_errors;
          Alcotest.test_case "seeded plan deterministic" `Quick
            test_env_plan_deterministic;
          Alcotest.test_case "conditions fold" `Quick test_conditions_fold;
          Alcotest.test_case "cache config clamps" `Quick
            test_env_cache_config_clamps;
        ] );
      ( "check",
        [ Alcotest.test_case "cache_config lint" `Quick test_check_cache_config ] );
      ( "migration",
        [
          Alcotest.test_case "carries state" `Quick test_migrate_carries_state;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "adapted beats stale" `Slow
            test_stale_vs_adapted_regression;
          Alcotest.test_case "bit-exact sink outputs" `Slow
            test_adapted_outputs_bit_exact;
          Alcotest.test_case "deterministic" `Slow test_adapt_deterministic;
          Alcotest.test_case "io faults contained" `Quick
            test_io_fault_contained;
          QCheck_alcotest.to_alcotest qcheck_migration_bit_exact;
        ] );
    ]

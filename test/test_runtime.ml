(* Tests for the data-carrying runtime: kernels compute correctly and the
   engine moves tokens faithfully under any scheduler. *)

module G = Ccs.Graph
module R = Ccs.Rates

let cache64 = Ccs.Cache.config ~size_words:64 ~block_words:8 ()

(* --- kernel unit tests ----------------------------------------------------- *)

let fire1 (k : Ccs.Kernel.t) ~inputs ~out_shapes =
  let state = k.Ccs.Kernel.init () in
  let outputs = Array.map (fun n -> Array.make n 0.) out_shapes in
  k.Ccs.Kernel.fire ~state ~inputs ~outputs;
  outputs

let test_identity_gain () =
  let id = Ccs.Kernels.identity ~state_words:4 in
  let out = fire1 id ~inputs:[| [| 1.; 2.; 3. |] |] ~out_shapes:[| 3 |] in
  Alcotest.(check (array (float 0.))) "identity" [| 1.; 2.; 3. |] out.(0);
  let g2 = Ccs.Kernels.gain ~state_words:4 2. in
  let out = fire1 g2 ~inputs:[| [| 1.; 2. |] |] ~out_shapes:[| 2 |] in
  Alcotest.(check (array (float 1e-9))) "gain x2" [| 2.; 4. |] out.(0)

let test_adder_duplicate_split () =
  let add = Ccs.Kernels.adder ~state_words:4 in
  let out =
    fire1 add ~inputs:[| [| 1.; 2. |]; [| 10.; 20. |] |] ~out_shapes:[| 2 |]
  in
  Alcotest.(check (array (float 1e-9))) "adder" [| 11.; 22. |] out.(0);
  let dup = Ccs.Kernels.duplicate ~state_words:4 in
  let out = fire1 dup ~inputs:[| [| 7. |] |] ~out_shapes:[| 1; 1 |] in
  Alcotest.(check (float 0.)) "dup a" 7. out.(0).(0);
  Alcotest.(check (float 0.)) "dup b" 7. out.(1).(0);
  let split = Ccs.Kernels.round_robin_split ~state_words:4 in
  let out = fire1 split ~inputs:[| [| 1.; 2.; 3. |] |] ~out_shapes:[| 2; 1 |] in
  Alcotest.(check (array (float 0.))) "split first" [| 1.; 2. |] out.(0);
  Alcotest.(check (array (float 0.))) "split second" [| 3. |] out.(1)

let test_compare_exchange () =
  let cmp = Ccs.Kernels.compare_exchange ~state_words:2 in
  let out = fire1 cmp ~inputs:[| [| 9. |]; [| 3. |] |] ~out_shapes:[| 1; 1 |] in
  Alcotest.(check (float 0.)) "min" 3. out.(0).(0);
  Alcotest.(check (float 0.)) "max" 9. out.(1).(0)

let test_fir_matches_convolution () =
  (* Stream 32 samples one at a time through a 4-tap FIR and compare with
     direct convolution. *)
  let taps = [| 0.5; 0.25; -0.25; 0.125 |] in
  let k = Ccs.Kernels.fir ~taps in
  let state = k.Ccs.Kernel.init () in
  let samples = Array.init 32 (fun i -> sin (float_of_int i)) in
  let got =
    Array.map
      (fun x ->
        let outputs = [| Array.make 1 0. |] in
        k.Ccs.Kernel.fire ~state ~inputs:[| [| x |] |] ~outputs;
        outputs.(0).(0))
      samples
  in
  Array.iteri
    (fun n _ ->
      let expected = ref 0. in
      Array.iteri
        (fun j c -> if n - j >= 0 then expected := !expected +. (c *. samples.(n - j)))
        taps;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "sample %d" n)
        !expected got.(n))
    samples

let test_counter_and_collect () =
  let src = Ccs.Kernels.counter_source ~state_words:1 in
  let state = src.Ccs.Kernel.init () in
  let outputs = [| Array.make 3 0. |] in
  src.Ccs.Kernel.fire ~state ~inputs:[||] ~outputs;
  Alcotest.(check (array (float 0.))) "0 1 2" [| 0.; 1.; 2. |] outputs.(0);
  src.Ccs.Kernel.fire ~state ~inputs:[||] ~outputs;
  Alcotest.(check (array (float 0.))) "3 4 5" [| 3.; 4.; 5. |] outputs.(0)

(* --- engine data integrity ------------------------------------------------- *)

let test_program_checks_state () =
  let g = Ccs.Generators.uniform_pipeline ~n:2 ~state:8 () in
  match
    Ccs.Program.create g (fun _ -> Ccs.Kernels.identity ~state_words:4)
  with
  | _ -> Alcotest.fail "state mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_chain_preserves_sequence () =
  (* counter -> identity chain -> collector: the collected stream must be
     0,1,2,... in order, under both a static and a dynamic partitioned
     plan. *)
  let n = 6 in
  let g = Ccs.Generators.uniform_pipeline ~n ~state:8 () in
  let a = R.analyze_exn g in
  let spec = Ccs.Spec.of_assignment g (Array.init n (fun v -> v / 2)) in
  let plans =
    [
      Ccs.Partitioned.batch g a spec ~t:16;
      Ccs.Partitioned.pipeline_dynamic g a spec ~m_tokens:16;
      Ccs.Baseline.minimal_memory g a;
    ]
  in
  List.iter
    (fun plan ->
      let sink_kernel, collected = Ccs.Kernels.collecting_sink ~state_words:8 in
      let program =
        Ccs.Program.create g (fun v ->
            if v = 0 then Ccs.Kernels.counter_source ~state_words:8
            else if v = n - 1 then sink_kernel
            else Ccs.Kernels.identity ~state_words:8)
      in
      let engine = Ccs.Engine.of_plan ~program ~cache:cache64 ~plan () in
      let result = Ccs.Engine.run_plan engine plan ~outputs:100 in
      Alcotest.(check bool)
        (plan.Ccs.Plan.name ^ " produced")
        true
        (result.Ccs.Runner.outputs >= 100);
      let data = collected () in
      List.iteri
        (fun i x ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s token %d" plan.Ccs.Plan.name i)
            (float_of_int i) x)
        data)
    plans

let test_queue_matches_machine () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:8 () in
  let program =
    Ccs.Program.create g (fun v ->
        if v = 0 then Ccs.Kernels.counter_source ~state_words:8
        else Ccs.Kernels.identity ~state_words:8)
  in
  let engine =
    Ccs.Engine.create ~program ~cache:cache64 ~capacities:[| 4; 4 |] ()
  in
  Ccs.Engine.fire engine 0;
  Ccs.Engine.fire engine 0;
  Ccs.Engine.fire engine 1;
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "edge %d data = tokens" e)
        (Ccs.Machine.tokens (Ccs.Engine.machine engine) e)
        (Ccs.Engine.queue_length engine e))
    (G.edges g)

let test_delay_tokens_are_zeros () =
  let b = G.Builder.create () in
  let x = G.Builder.add_module b ~state:1 "x" in
  let y = G.Builder.add_module b ~state:1 "y" in
  ignore (G.Builder.add_channel b ~delay:2 ~src:x ~dst:y ~push:1 ~pop:1 ());
  let g = G.Builder.build b in
  let sink_kernel, collected = Ccs.Kernels.collecting_sink ~state_words:1 in
  let program =
    Ccs.Program.create g (fun v ->
        if v = x then Ccs.Kernels.counter_source ~state_words:1 else sink_kernel)
  in
  let engine =
    Ccs.Engine.create ~program ~cache:cache64 ~capacities:[| 4 |] ()
  in
  (* y can fire twice on the delay tokens before x ever runs. *)
  Ccs.Engine.fire engine y;
  Ccs.Engine.fire engine y;
  Ccs.Engine.fire engine x;
  Ccs.Engine.fire engine y;
  Alcotest.(check (list (float 0.))) "two zeros then data" [ 0.; 0.; 0. ]
    (collected ())

(* --- bitonic sort with real data ------------------------------------------- *)

let test_bitonic_sorts () =
  let log_lanes = 3 in
  let lanes = 1 lsl log_lanes in
  let g = Ccs_apps.Bitonic.graph ~log_lanes ~comparator_state:8 () in
  let a = R.analyze_exn g in
  (* Input: one batch of [lanes] distinct values per source firing. *)
  let values =
    [| 5.; 1.; 7.; 3.; 8.; 2.; 6.; 4. |]
  in
  let source_kernel =
    Ccs.Kernel.stateless ~state_words:4 (fun ~inputs:_ ~outputs ->
        Array.iteri (fun lane out -> out.(0) <- values.(lane)) outputs)
  in
  let sink_kernel, collected = Ccs.Kernels.collecting_sink ~state_words:4 in
  (* Direction-aware comparators: the generator names comparators
     "cmp-s<stage>.<substage>-l<low>"; ascending iff bit <stage> of the low
     lane is clear (classic bitonic network). *)
  let comparator name =
    let stage, low =
      Scanf.sscanf name "cmp-s%d.%d-l%d" (fun s _ l -> (s, l))
    in
    let ascending = low land (1 lsl stage) = 0 in
    Ccs.Kernel.stateless ~state_words:8 (fun ~inputs ~outputs ->
        let x = inputs.(0).(0) and y = inputs.(1).(0) in
        let lo, hi = if x <= y then (x, y) else (y, x) in
        if ascending then begin
          outputs.(0).(0) <- lo;
          outputs.(1).(0) <- hi
        end
        else begin
          outputs.(0).(0) <- hi;
          outputs.(1).(0) <- lo
        end)
  in
  let program =
    Ccs.Program.create g (fun v ->
        match G.node_name g v with
        | "source" -> source_kernel
        | "sink" -> sink_kernel
        | name -> comparator name)
  in
  let spec = Ccs.Dag_partition.best g a ~bound:64 () in
  let plan = Ccs.Partitioned.homogeneous g a spec ~m_tokens:8 in
  let engine =
    Ccs.Engine.of_plan ~program
      ~cache:(Ccs.Cache.config ~size_words:128 ~block_words:8 ())
      ~plan ()
  in
  let rounds = 8 in
  let _ = Ccs.Engine.run_plan engine plan ~outputs:rounds in
  let data = Array.of_list (collected ()) in
  Alcotest.(check bool) "enough data" true (Array.length data >= lanes);
  (* Every consecutive block of [lanes] tokens is one sorted batch and a
     permutation of the input. *)
  let sorted_input = Array.copy values in
  Array.sort compare sorted_input;
  for r = 0 to (Array.length data / lanes) - 1 do
    let batch = Array.sub data (r * lanes) lanes in
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "round %d sorted" r)
      sorted_input batch
  done

(* --- the demo's property: FM demodulation recovers the tone ----------------- *)

let test_fm_path () =
  let src =
    Ccs.Kernels.fm_source ~state_words:2 ~carrier:0.25 ~tone:0.0025
  in
  let demod = Ccs.Kernels.fm_demodulate ~state_words:1 in
  let src_state = src.Ccs.Kernel.init () in
  let demod_state = demod.Ccs.Kernel.init () in
  (* Run 4096 samples through source->demod and low-pass by averaging
     blocks of 64; the averaged signal must oscillate at ~0.0025*64/400 ..
     just check it is non-constant and positive (frequency always > 0). *)
  let n = 4096 in
  let demodulated =
    Array.init n (fun _ ->
        let s = [| Array.make 1 0. |] in
        src.Ccs.Kernel.fire ~state:src_state ~inputs:[||] ~outputs:s;
        let d = [| Array.make 1 0. |] in
        demod.Ccs.Kernel.fire ~state:demod_state ~inputs:[| s.(0) |]
          ~outputs:d;
        d.(0).(0))
  in
  let blocks = n / 64 in
  let averaged =
    Array.init blocks (fun b ->
        let acc = ref 0. in
        for i = 0 to 63 do
          acc := !acc +. demodulated.((b * 64) + i)
        done;
        !acc /. 64.)
  in
  Array.iter
    (fun x -> Alcotest.(check bool) "frequency positive" true (x > 0.))
    averaged;
  let mn = Array.fold_left Float.min infinity averaged in
  let mx = Array.fold_left Float.max neg_infinity averaged in
  Alcotest.(check bool) "modulation visible" true (mx -. mn > 0.1 *. mx)

let test_sbox_hostile_inputs () =
  (* Regression: the table index used [abs (int_of_float (x * n))], which
     is unspecified for NaN and out-of-range floats and negative for
     [min_int] — a hostile token could read out of bounds.  Every float,
     however pathological, must map inside the table. *)
  let table_words = 64 in
  let k = Ccs.Kernels.sbox ~table_words in
  let state = k.Ccs.Kernel.init () in
  Alcotest.(check int) "table arity" table_words (Array.length state);
  let hostile =
    [|
      Float.nan;
      Float.infinity;
      Float.neg_infinity;
      1e308;
      -1e308;
      4.611686018427388e18 (* ~ float max_int *);
      -4.611686018427388e18;
      -0.999999;
      -0.;
      0.;
      0.5;
      1.0;
      -1.0;
      Float.min_float;
      -.Float.min_float;
    |]
  in
  let outputs = [| Array.make (Array.length hostile) Float.nan |] in
  k.Ccs.Kernel.fire ~state ~inputs:[| hostile |] ~outputs;
  Array.iteri
    (fun i y ->
      Alcotest.(check bool)
        (Printf.sprintf "output %d is a table entry" i)
        true
        (Array.exists (fun s -> s = y) state))
    outputs.(0);
  (* NaN maps to slot 0; in-range values hit the expected slot. *)
  Alcotest.(check (float 0.)) "nan -> slot 0" state.(0)
    (let o = [| Array.make 1 0. |] in
     k.Ccs.Kernel.fire ~state ~inputs:[| [| Float.nan |] |] ~outputs:o;
     o.(0).(0));
  Alcotest.(check (float 0.)) "0.5 -> slot n/2" state.(table_words / 2)
    (let o = [| Array.make 1 0. |] in
     k.Ccs.Kernel.fire ~state ~inputs:[| [| 0.5 |] |] ~outputs:o;
     o.(0).(0))

let () =
  Alcotest.run "runtime"
    [
      ( "kernels",
        [
          Alcotest.test_case "identity/gain" `Quick test_identity_gain;
          Alcotest.test_case "sbox hostile floats" `Quick
            test_sbox_hostile_inputs;
          Alcotest.test_case "adder/dup/split" `Quick
            test_adder_duplicate_split;
          Alcotest.test_case "compare-exchange" `Quick test_compare_exchange;
          Alcotest.test_case "fir = convolution" `Quick
            test_fir_matches_convolution;
          Alcotest.test_case "counter/collect" `Quick test_counter_and_collect;
        ] );
      ( "engine",
        [
          Alcotest.test_case "program state check" `Quick
            test_program_checks_state;
          Alcotest.test_case "chain preserves sequence" `Quick
            test_chain_preserves_sequence;
          Alcotest.test_case "queues = machine tokens" `Quick
            test_queue_matches_machine;
          Alcotest.test_case "delay tokens are zeros" `Quick
            test_delay_tokens_are_zeros;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "bitonic sorts real data" `Quick
            test_bitonic_sorts;
          Alcotest.test_case "fm path" `Quick test_fm_path;
        ] );
    ]

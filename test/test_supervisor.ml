(* Supervised crash-safe execution: epoch-aligned checkpointing, rollback
   and retry on structured faults, quarantine of deterministic ones, and
   the central invariant — a run killed at any epoch and resumed reports
   exactly what an uninterrupted run reports (miss counts, per-entity
   attribution, sink outputs), checked by a QCheck property over random
   graphs x random kill points. *)

module G = Ccs.Graph
module E = Ccs.Error

let cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ()

let fresh_dir () =
  (* temp_file gives us a unique name; the supervisor mkdirs it. *)
  let path = Filename.temp_file "ccs-test-sup" "" in
  Sys.remove path;
  path

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let setup () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  (g, choice.Ccs.Auto.plan)

let test_happy_path_matches_plain_run () =
  let g, plan = setup () in
  let plain, _ = Ccs.Runner.run ~graph:g ~cache ~plan ~outputs:100 () in
  match Ccs.Supervisor.run ~graph:g ~cache ~plan ~outputs:100 () with
  | Error e -> Alcotest.fail ("supervised run failed: " ^ E.to_string e)
  | Ok report ->
      Alcotest.(check int) "same misses" plain.Ccs.Runner.misses
        report.Ccs.Supervisor.result.Ccs.Runner.misses;
      Alcotest.(check int) "same outputs" plain.Ccs.Runner.outputs
        report.Ccs.Supervisor.result.Ccs.Runner.outputs;
      Alcotest.(check int) "no retries" 0 report.Ccs.Supervisor.retries

(* A hook that faults once, at the named node's k-th firing, then disarms:
   the supervisor must roll back, retry, and finish with the exact result
   of a fault-free run. *)
let transient_fault ~node ~at_fire armed machine =
  Ccs.Machine.set_fire_hook machine
    (Some
       (fun v ->
         if !armed && v = node && Ccs.Machine.fires machine node = at_fire
         then begin
           armed := false;
           raise
             (E.Error
                (E.Fault
                   {
                     node = "m" ^ string_of_int node;
                     fault = E.Kernel_exception;
                     detail = "transient injected fault";
                   }))
         end))

let test_retry_then_succeed () =
  let g, plan = setup () in
  let plain, _ = Ccs.Runner.run ~graph:g ~cache ~plan ~outputs:100 () in
  let armed = ref true in
  match
    Ccs.Supervisor.run
      ~prepare:(transient_fault ~node:1 ~at_fire:5 armed)
      ~graph:g ~cache ~plan ~outputs:100 ()
  with
  | Error e -> Alcotest.fail ("transient fault not recovered: " ^ E.to_string e)
  | Ok report ->
      Alcotest.(check int) "one retry" 1 report.Ccs.Supervisor.retries;
      Alcotest.(check bool) "backoff charged" true
        (report.Ccs.Supervisor.logical_delay > 0);
      Alcotest.(check int) "result identical to clean run"
        plain.Ccs.Runner.misses
        report.Ccs.Supervisor.result.Ccs.Runner.misses;
      Alcotest.(check bool) "fault disarmed" true (not !armed)

let test_retry_with_checkpoint_dir () =
  (* Same transient fault, but with checkpointing on: rollback restores the
     last checkpoint instead of starting over, and the result still matches
     a clean run exactly. *)
  let g, plan = setup () in
  let plain, _ = Ccs.Runner.run ~graph:g ~cache ~plan ~outputs:100 () in
  let armed = ref true in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      match
        Ccs.Supervisor.run
          ~config:{ Ccs.Supervisor.default_config with checkpoint_every = 1 }
          ~checkpoint_dir:dir
          ~prepare:(transient_fault ~node:2 ~at_fire:40 armed)
          ~epoch_outputs:10 ~graph:g ~cache ~plan ~outputs:100 ()
      with
      | Error e -> Alcotest.fail ("not recovered: " ^ E.to_string e)
      | Ok report ->
          Alcotest.(check int) "one retry" 1 report.Ccs.Supervisor.retries;
          Alcotest.(check int) "result identical to clean run"
            plain.Ccs.Runner.misses
            report.Ccs.Supervisor.result.Ccs.Runner.misses)

let test_deterministic_fault_quarantined () =
  let g, plan = setup () in
  let always_fault machine =
    Ccs.Machine.set_fire_hook machine
      (Some
         (fun v ->
           if v = 1 && Ccs.Machine.fires machine 1 = 7 then
             raise
               (E.Error
                  (E.Fault
                     {
                       node = G.node_name g 1;
                       fault = E.Nan_output;
                       detail = "deterministic injected fault";
                     }))))
  in
  match
    Ccs.Supervisor.run ~prepare:always_fault ~graph:g ~cache ~plan
      ~outputs:100 ()
  with
  | Ok _ -> Alcotest.fail "deterministic fault not quarantined"
  | Error (E.Quarantined { site; attempts; cause; plan = plan_name; _ }) ->
      Alcotest.(check int) "gave up after two identical attempts" 2 attempts;
      Alcotest.(check bool) "site names the module" true
        (String.length site > 0
        && String.sub site 0 (String.length (G.node_name g 1))
           = G.node_name g 1);
      Alcotest.(check string) "plan named" plan.Ccs.Plan.name plan_name;
      Alcotest.(check string) "cause preserved" "fault-nan-output"
        (E.code cause)
  | Error e -> Alcotest.fail ("expected Quarantined, got " ^ E.to_string e)

let test_retry_exhaustion_quarantines () =
  (* A fault that moves (different firing each attempt, so never twice at
     the same site) must still give up once max_retries is spent. *)
  let g, plan = setup () in
  let attempt = ref 0 in
  let moving_fault machine =
    incr attempt;
    let at = 5 + !attempt in
    Ccs.Machine.set_fire_hook machine
      (Some
         (fun v ->
           if v = 1 && Ccs.Machine.fires machine 1 = at then
             raise
               (E.Error
                  (E.Fault
                     {
                       node = G.node_name g 1;
                       fault = E.Kernel_exception;
                       detail = "moving injected fault";
                     }))))
  in
  match
    Ccs.Supervisor.run
      ~config:{ Ccs.Supervisor.default_config with max_retries = 3 }
      ~prepare:moving_fault ~graph:g ~cache ~plan ~outputs:100 ()
  with
  | Ok _ -> Alcotest.fail "endless fault not quarantined"
  | Error (E.Quarantined { attempts; checkpoint; _ }) ->
      Alcotest.(check int) "max_retries + 1 attempts" 4 attempts;
      Alcotest.(check bool) "no checkpoint dir, no path" true
        (checkpoint = None)
  | Error e -> Alcotest.fail ("expected Quarantined, got " ^ E.to_string e)

let test_quarantine_names_checkpoint () =
  let g, plan = setup () in
  (* The fault sits in the *second* T=256 batch (node 1's 300th firing), so
     by the time it triggers the first epochs have completed and their
     checkpoints are durable — the quarantine report must name the latest. *)
  let always_fault machine =
    Ccs.Machine.set_fire_hook machine
      (Some
         (fun v ->
           if v = 1 && Ccs.Machine.fires machine 1 = 300 then
             raise
               (E.Error
                  (E.Fault
                     {
                       node = G.node_name g 1;
                       fault = E.Nan_output;
                       detail = "deterministic";
                     }))))
  in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      match
        Ccs.Supervisor.run
          ~config:{ Ccs.Supervisor.default_config with checkpoint_every = 1 }
          ~checkpoint_dir:dir ~prepare:always_fault ~epoch_outputs:100 ~graph:g
          ~cache ~plan ~outputs:600 ()
      with
      | Ok _ -> Alcotest.fail "deterministic fault not quarantined"
      | Error (E.Quarantined { checkpoint = Some path; _ }) ->
          Alcotest.(check bool) "checkpoint path exists" true
            (Sys.file_exists path)
      | Error e ->
          Alcotest.fail
            ("expected Quarantined with checkpoint, got " ^ E.to_string e))

let test_resume_under_different_cache_rejected () =
  let g, plan = setup () in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      (match
         Ccs.Supervisor.run
           ~config:{ Ccs.Supervisor.default_config with checkpoint_every = 1 }
           ~checkpoint_dir:dir ~graph:g ~cache ~plan ~outputs:100 ()
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("seed run failed: " ^ E.to_string e));
      let other = Ccs.Cache.config ~size_words:1024 ~block_words:16 () in
      match
        Ccs.Supervisor.run ~checkpoint_dir:dir ~resume:true ~graph:g
          ~cache:other ~plan ~outputs:100 ()
      with
      | Ok _ -> Alcotest.fail "resume under different cache config accepted"
      | Error (E.Checkpoint_mismatch { field; _ }) ->
          Alcotest.(check string) "field" "cache" field
      | Error e ->
          Alcotest.fail ("expected Checkpoint_mismatch, got " ^ E.to_string e))

let test_resume_from_corrupt_checkpoint_rejected () =
  let g, plan = setup () in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_dir dir)
    (fun () ->
      (match
         Ccs.Supervisor.run
           ~config:{ Ccs.Supervisor.default_config with checkpoint_every = 1 }
           ~checkpoint_dir:dir ~graph:g ~cache ~plan ~outputs:100 ()
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("seed run failed: " ^ E.to_string e));
      let _, path =
        match Ccs.Supervisor.latest_checkpoint dir with
        | Some x -> x
        | None -> Alcotest.fail "no checkpoint written"
      in
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string s in
      let i = Bytes.length b - 5 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match
        Ccs.Supervisor.run ~checkpoint_dir:dir ~resume:true ~graph:g ~cache
          ~plan ~outputs:100 ()
      with
      | Ok _ -> Alcotest.fail "corrupt checkpoint accepted on resume"
      | Error e ->
          Alcotest.(check string) "error code" "checkpoint-corrupt" (E.code e))

(* --- the kill/resume determinism property --------------------------------- *)

exception Killed

let gen_pipeline =
  QCheck2.Gen.(
    map
      (fun (seed, n) ->
        Ccs.Generators.random_pipeline ~seed ~n:(n + 2) ~max_state:12
          ~max_rate:4 ())
      (pair (int_range 0 10_000) (int_range 2 12)))

let gen_sdf_dag =
  QCheck2.Gen.(
    map
      (fun (seed, n, extra) ->
        Ccs.Generators.random_sdf_dag ~seed ~n:(n + 2) ~max_state:12
          ~max_rate:4 ~extra_edges:extra ())
      (triple (int_range 0 10_000) (int_range 2 8) (int_range 0 4)))

let prop_kill_resume_bit_identical =
  QCheck2.Test.make
    ~name:"killed-at-any-epoch + resumed == uninterrupted (misses, \
           attribution, outputs)"
    ~count:30
    QCheck2.Gen.(
      triple
        (oneof [ gen_pipeline; gen_sdf_dag ])
        (int_range 1 8) (int_range 0 2))
    (fun (g, kill_epoch, m_idx) ->
      let m_words = [| 128; 256; 512 |].(m_idx) in
      let cfg = Ccs.Config.make ~cache_words:m_words ~block_words:8 () in
      let cache = Ccs.Config.cache_config cfg in
      match try Some (Ccs.Auto.plan g cfg) with _ -> None with
      | None -> QCheck2.assume_fail ()
      | Some choice ->
          let plan = choice.Ccs.Auto.plan in
          let outputs = 60 in
          let epoch_outputs = max 1 (outputs / 8) in
          let entities = G.num_nodes g + G.num_edges g in
          let config =
            { Ccs.Supervisor.default_config with checkpoint_every = 1 }
          in
          let supervised ?checkpoint_dir ?(resume = false) ?on_epoch counters
              =
            Ccs.Supervisor.run ~config ?checkpoint_dir ~resume ~epoch_outputs
              ~counters ?on_epoch ~graph:g ~cache ~plan ~outputs ()
          in
          let c_ref = Ccs.Counters.create ~entities in
          let reference =
            match supervised c_ref with
            | Ok r -> r
            | Error e ->
                QCheck2.Test.fail_reportf "reference run failed: %s"
                  (E.to_string e)
          in
          let dir = fresh_dir () in
          Fun.protect
            ~finally:(fun () -> remove_dir dir)
            (fun () ->
              let c_kill = Ccs.Counters.create ~entities in
              (* Kill the run right after [kill_epoch] completes (checkpoint
                 already durable) — exactly what `ccsched run --kill-after`
                 does with exit 137, minus the process boundary. *)
              (match
                 supervised ~checkpoint_dir:dir
                   ~on_epoch:(fun ~epoch ~machine:_ ->
                     if epoch = kill_epoch then raise Killed)
                   c_kill
               with
              | exception Killed -> ()
              | Ok _ -> () (* kill epoch beyond the run: nothing to kill *)
              | Error e ->
                  QCheck2.Test.fail_reportf "killed run failed: %s"
                    (E.to_string e));
              let c_res = Ccs.Counters.create ~entities in
              match supervised ~checkpoint_dir:dir ~resume:true c_res with
              | Error e ->
                  QCheck2.Test.fail_reportf "resume failed: %s"
                    (E.to_string e)
              | Ok resumed ->
                  let r1 = reference.Ccs.Supervisor.result in
                  let r2 = resumed.Ccs.Supervisor.result in
                  r1.Ccs.Runner.misses = r2.Ccs.Runner.misses
                  && r1.Ccs.Runner.accesses = r2.Ccs.Runner.accesses
                  && r1.Ccs.Runner.outputs = r2.Ccs.Runner.outputs
                  && r1.Ccs.Runner.inputs = r2.Ccs.Runner.inputs
                  && Ccs.Counters.dump c_ref = Ccs.Counters.dump c_res))

let () =
  Alcotest.run "supervisor"
    [
      ( "supervision",
        [
          Alcotest.test_case "happy path = plain run" `Quick
            test_happy_path_matches_plain_run;
          Alcotest.test_case "retry then succeed" `Quick
            test_retry_then_succeed;
          Alcotest.test_case "retry with checkpoint dir" `Quick
            test_retry_with_checkpoint_dir;
          Alcotest.test_case "deterministic fault quarantined" `Quick
            test_deterministic_fault_quarantined;
          Alcotest.test_case "retry exhaustion quarantines" `Quick
            test_retry_exhaustion_quarantines;
          Alcotest.test_case "quarantine names checkpoint" `Quick
            test_quarantine_names_checkpoint;
          Alcotest.test_case "resume under different cache rejected" `Quick
            test_resume_under_different_cache_rejected;
          Alcotest.test_case "resume from corrupt checkpoint rejected" `Quick
            test_resume_from_corrupt_checkpoint_rejected;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_kill_resume_bit_identical ] );
    ]

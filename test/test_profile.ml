(* Tests for the Profile module: the predicted-vs-measured per-component
   table (Lemmas 4/8) and the Chrome trace export entry points. *)

module G = Ccs.Graph

let profiled ?(outputs = 1000) ?(events = false) ~cache_words name =
  let entry = Option.get (Ccs_apps.Suite.find name) in
  let g = entry.Ccs_apps.Suite.graph () in
  let cfg = Ccs.Config.make ~cache_words ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  let profile =
    Ccs.Profile.run ~events ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ~outputs ()
  in
  (profile, choice)

let test_table_measured_total_is_misses () =
  let profile, choice = profiled ~cache_words:512 "beamformer" in
  let table =
    Ccs.Profile.component_table profile choice.Ccs.Auto.partition
      ~t:choice.Ccs.Auto.batch
  in
  Alcotest.(check int) "measured total = aggregate misses"
    profile.Ccs.Profile.result.Ccs.Runner.misses
    table.Ccs.Profile.measured_total;
  Alcotest.(check int) "one row per component"
    (Ccs.Spec.num_components choice.Ccs.Auto.partition)
    (List.length table.Ccs.Profile.components);
  Alcotest.(check int) "one row per cross edge"
    (List.length (Ccs.Spec.cross_edges choice.Ccs.Auto.partition))
    (List.length table.Ccs.Profile.cross)

let test_prediction_tracks_measurement () =
  (* Beamformer at m=512 does not fit: the Lemma 4/8 decomposition should
     be within a factor of two of the measured split in aggregate (the
     cross-edge terms are near-exact; the reload terms are a model). *)
  let profile, choice = profiled ~cache_words:512 "beamformer" in
  let table =
    Ccs.Profile.component_table profile choice.Ccs.Auto.partition
      ~t:choice.Ccs.Auto.batch
  in
  let ratio =
    float_of_int table.Ccs.Profile.measured_total
    /. float_of_int table.Ccs.Profile.predicted_total
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f within [0.5, 2]" ratio)
    true
    (ratio >= 0.5 && ratio <= 2.)

let test_resident_prediction_is_cold_misses () =
  (* Filterbank at m=2048 fits entirely: the model charges one cold load
     per region, so predicted is within the same order as measured (a few
     dozen, not tens of thousands). *)
  let profile, choice = profiled ~cache_words:2048 "filterbank" in
  let table =
    Ccs.Profile.component_table profile choice.Ccs.Auto.partition
      ~t:choice.Ccs.Auto.batch
  in
  Alcotest.(check bool)
    (Printf.sprintf "resident prediction small (%d)"
       table.Ccs.Profile.predicted_total)
    true
    (table.Ccs.Profile.predicted_total
    < 10 * max 1 table.Ccs.Profile.measured_total)

let test_table_rejects_bad_t () =
  let profile, choice = profiled ~cache_words:512 "beamformer" in
  match
    Ccs.Profile.component_table profile choice.Ccs.Auto.partition ~t:0
  with
  | _ -> Alcotest.fail "t = 0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_chrome_requires_events () =
  let profile, _ = profiled ~cache_words:512 "beamformer" in
  match Ccs.Profile.chrome profile with
  | _ -> Alcotest.fail "chrome without events must be rejected"
  | exception Invalid_argument _ -> ()

let test_pp_table_renders () =
  let profile, choice = profiled ~cache_words:512 "beamformer" in
  let table =
    Ccs.Profile.component_table profile choice.Ccs.Auto.partition
      ~t:choice.Ccs.Auto.batch
  in
  let s = Format.asprintf "%a" Ccs.Profile.pp_table table in
  Alcotest.(check bool) "mentions components" true
    (String.length s > 0 && String.index_opt s 'c' <> None)

let test_trace_export_writes_file () =
  let profile, _ = profiled ~events:true ~cache_words:512 "beamformer" in
  let path = Filename.temp_file "ccs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ccs.Trace_export.write ~path (Ccs.Profile.chrome profile);
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "non-empty file" true (len > 2))

let () =
  Alcotest.run "profile"
    [
      ( "table",
        [
          Alcotest.test_case "measured total = misses" `Quick
            test_table_measured_total_is_misses;
          Alcotest.test_case "prediction tracks measurement" `Quick
            test_prediction_tracks_measurement;
          Alcotest.test_case "resident prediction" `Quick
            test_resident_prediction_is_cold_misses;
          Alcotest.test_case "rejects t=0" `Quick test_table_rejects_bad_t;
          Alcotest.test_case "pp renders" `Quick test_pp_table_renders;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome requires events" `Quick
            test_chrome_requires_events;
          Alcotest.test_case "writes file" `Quick test_trace_export_writes_file;
        ] );
    ]

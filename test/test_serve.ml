(* The scheduling daemon, from the protocol up: request parsing,
   composite cache keys, the persistent plan cache's framing/mismatch
   discipline, the request pipeline (driven through handle_line, no
   sockets), and a forked-daemon soak test — concurrent clients over a
   Unix socket, responses bit-identical to single-shot planning, metrics
   accounting exact, malformed lines answered structurally without
   dropping the connection, clean SIGTERM shutdown. *)

module E = Ccs.Error
module Json = Ccs.Json
module Srv = Ccs_serve.Server
module Proto = Ccs_serve.Protocol
module Cache = Ccs_serve.Plan_cache

let tmp_dir () =
  let path = Filename.temp_file "ccs-serve" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let plan_line ?(m = 2048) ?(b = 16) ?ways ?capacities ?(dry_run = false) graph
    =
  let fields =
    [
      ("op", Json.String "plan");
      ("graph", Json.String graph);
      ("cache_words", Json.Int m);
      ("block_words", Json.Int b);
    ]
    @ (match ways with None -> [] | Some w -> [ ("ways", Json.Int w) ])
    @ (match capacities with
      | None -> []
      | Some caps ->
          [ ("capacities", Json.List (List.map (fun c -> Json.Int c) caps)) ])
    @ if dry_run then [ ("dry_run", Json.Bool true) ] else []
  in
  Json.to_string (Json.Obj fields)

let app_graph name =
  match Ccs_apps.Suite.find name with
  | Some entry -> Ccs.Serial.to_text (entry.Ccs_apps.Suite.graph ())
  | None -> Alcotest.failf "unknown app %s" name

let error_code line =
  match Json.of_string line with
  | Ok v -> (
      match Option.bind (Json.member "error" v) (Json.member "code") with
      | Some (Json.String c) -> Some c
      | _ -> None)
  | Error _ -> None

let is_cached line =
  match Json.of_string line with
  | Ok v -> Json.member "cached" v = Some (Json.Bool true)
  | Error _ -> false

let is_ok line =
  match Json.of_string line with
  | Ok v -> Json.member "ok" v = Some (Json.Bool true)
  | Error _ -> false

(* Everything except the hit/miss flag and the latency must be
   byte-identical between a cold build and a cache hit. *)
let normalize line =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
      Json.to_string
        (Json.Obj
           (List.filter
              (fun (k, _) ->
                k <> "cached" && k <> "elapsed_us" && k <> "trace_id")
              fields))
  | Ok _ | Error _ -> Alcotest.failf "unparseable response %s" line

let make_daemon () =
  Srv.make
    (Srv.default_config ~address:(Srv.Unix_socket "/nonexistent")
       ~dir:(tmp_dir ()))

(* --- protocol -------------------------------------------------------------- *)

let check_invalid name line =
  match Proto.parse_request line with
  | Error (E.Request_invalid _) -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" name (E.to_string e)
  | Ok _ -> Alcotest.failf "%s: parsed" name

let test_parse_rejects () =
  check_invalid "garbage" "this is not json";
  check_invalid "non-object" "[1,2,3]";
  check_invalid "no op" "{}";
  check_invalid "unknown op" {|{"op":"nope"}|};
  check_invalid "mistyped op" {|{"op":7}|};
  check_invalid "plan without graph" {|{"op":"plan","cache_words":256}|};
  check_invalid "plan without cache"
    {|{"op":"plan","graph":"module a 1 1 1\n"}|};
  check_invalid "mistyped capacities"
    {|{"op":"plan","graph":"g","cache_words":256,"capacities":["x"]}|};
  check_invalid "mistyped dry_run"
    {|{"op":"plan","graph":"g","cache_words":256,"dry_run":3}|}

let test_parse_plan () =
  match Proto.parse_request (plan_line ~ways:2 ~capacities:[ 4; 4 ] "G") with
  | Ok (Proto.Plan r) ->
      Alcotest.(check string) "graph" "G" r.graph_text;
      Alcotest.(check int) "m" 2048 r.cache_words;
      Alcotest.(check int) "b" 16 r.block_words;
      Alcotest.(check (option int)) "ways" (Some 2) r.ways;
      Alcotest.(check bool) "caps" true (r.capacities = Some [| 4; 4 |]);
      Alcotest.(check bool) "dry_run" false r.dry_run
  | Ok Proto.Ping -> Alcotest.fail "parsed as ping"
  | Error e -> Alcotest.failf "rejected: %s" (E.to_string e)

let test_parse_ping () =
  match Proto.parse_request {|{"op":"ping"}|} with
  | Ok Proto.Ping -> ()
  | _ -> Alcotest.fail "ping did not parse"

(* --- plan keys ------------------------------------------------------------- *)

let key_fixture () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let cache = Ccs.Cache.config ~size_words:256 ~block_words:16 () in
  Ccs.Plan_key.of_graph g ~cache ~capacities:[| 4; 4; 4 |] ~planner_version:1

let expect_mismatch field expected found =
  match Ccs.Plan_key.check ~path:"k" ~expected ~found with
  | Error (E.Checkpoint_mismatch m) ->
      Alcotest.(check string) "field" field m.field
  | Error e -> Alcotest.failf "wrong error %s" (E.to_string e)
  | Ok () -> Alcotest.fail "mismatch accepted"

let test_key_mismatch_fields () =
  let k = key_fixture () in
  expect_mismatch "graph" k { k with graph_digest = "0000" };
  expect_mismatch "cache" k
    { k with cache_config = { k.cache_config with size_words = 512 } };
  expect_mismatch "capacities" k { k with capacities = [| 4; 4; 8 |] };
  expect_mismatch "planner version" k { k with planner_version = 2 };
  match Ccs.Plan_key.check ~path:"k" ~expected:k ~found:k with
  | Ok () -> ()
  | Error e -> Alcotest.failf "equal key rejected: %s" (E.to_string e)

let test_key_digest_separates () =
  let k = key_fixture () in
  let digests =
    [
      Ccs.Plan_key.digest k;
      Ccs.Plan_key.digest { k with graph_digest = "0000" };
      Ccs.Plan_key.digest
        { k with cache_config = { k.cache_config with size_words = 512 } };
      Ccs.Plan_key.digest { k with capacities = [||] };
      Ccs.Plan_key.digest { k with planner_version = 2 };
    ]
  in
  Alcotest.(check int)
    "all distinct"
    (List.length digests)
    (List.length (List.sort_uniq String.compare digests))

(* --- plan cache ------------------------------------------------------------ *)

let artifact_fixture () =
  {
    Proto.plan_name = "partitioned-batch-T64";
    batch = 64;
    components = [| 0; 0; 1; 1 |];
    capacities = [| 4; 4; 4 |];
    period =
      Ccs.Schedule.Seq
        [
          Ccs.Schedule.Repeat (64, Ccs.Schedule.Fire 0);
          Ccs.Schedule.Fire 1;
          Ccs.Schedule.Repeat
            (2, Ccs.Schedule.Seq [ Ccs.Schedule.Fire 2; Ccs.Schedule.Fire 3 ]);
        ];
    predicted_mpi = 0.125;
    bandwidth_per_input = 2.5;
    buffer_words = 12;
  }

let test_cache_roundtrip () =
  let dir = tmp_dir () in
  let key = key_fixture () in
  let a = artifact_fixture () in
  (match Cache.lookup ~dir ~key with
  | Ok None -> ()
  | _ -> Alcotest.fail "empty cache should miss");
  Cache.store ~dir ~key a;
  match Cache.lookup ~dir ~key with
  | Ok (Some b) ->
      Alcotest.(check string) "name" a.Proto.plan_name b.Proto.plan_name;
      Alcotest.(check int) "batch" a.Proto.batch b.Proto.batch;
      Alcotest.(check bool)
        "components" true
        (a.Proto.components = b.Proto.components);
      Alcotest.(check bool)
        "capacities" true
        (a.Proto.capacities = b.Proto.capacities);
      Alcotest.(check bool)
        "period" true
        (Ccs.Schedule.equivalent a.Proto.period b.Proto.period);
      Alcotest.(check (float 0.)) "mpi" a.Proto.predicted_mpi
        b.Proto.predicted_mpi;
      Alcotest.(check (float 0.))
        "bw" a.Proto.bandwidth_per_input b.Proto.bandwidth_per_input;
      Alcotest.(check int) "buffer" a.Proto.buffer_words b.Proto.buffer_words
  | Ok None -> Alcotest.fail "stored record missed"
  | Error e -> Alcotest.failf "lookup failed: %s" (E.to_string e)

let test_cache_rejects_corruption () =
  let dir = tmp_dir () in
  let key = key_fixture () in
  Cache.store ~dir ~key (artifact_fixture ());
  let path = Cache.path ~dir key in
  let bytes =
    In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string
  in
  Bytes.set bytes
    (Bytes.length bytes - 3)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes - 3)) lxor 0x40));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  match Cache.lookup ~dir ~key with
  | Error (E.Checkpoint_corrupt _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "corrupt record served"

let test_cache_rejects_renamed_record () =
  (* A record renamed onto another key's filename (or a digest collision)
     must be rejected by the embedded key, naming the differing field. *)
  let dir = tmp_dir () in
  let key = key_fixture () in
  let other =
    { key with cache_config = { key.cache_config with size_words = 512 } }
  in
  Cache.store ~dir ~key (artifact_fixture ());
  Sys.rename (Cache.path ~dir key) (Cache.path ~dir other);
  match Cache.lookup ~dir ~key:other with
  | Error (E.Checkpoint_mismatch m) ->
      Alcotest.(check string) "field" "cache" m.field
  | Error e -> Alcotest.failf "wrong error %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "mis-keyed record served"

(* --- request pipeline (no sockets) ----------------------------------------- *)

let test_miss_then_hit_identical () =
  let t = make_daemon () in
  let line = plan_line ~dry_run:true (app_graph "fm-radio") in
  let r1 = Srv.handle_line t line in
  let r2 = Srv.handle_line t line in
  Alcotest.(check bool) "first ok" true (is_ok r1);
  Alcotest.(check bool) "first is a miss" false (is_cached r1);
  Alcotest.(check bool) "second is a hit" true (is_cached r2);
  Alcotest.(check string) "bit-identical" (normalize r1) (normalize r2)

let test_config_change_misses () =
  (* The regression the composite key exists for: changing any cache
     parameter must miss, never serve the other configuration's plan. *)
  let t = make_daemon () in
  let graph = app_graph "fft" in
  let r1 = Srv.handle_line t (plan_line ~m:2048 graph) in
  Alcotest.(check bool) "cold miss" false (is_cached r1);
  Alcotest.(check bool) "same config hits" true
    (is_cached (Srv.handle_line t (plan_line ~m:2048 graph)));
  Alcotest.(check bool) "cache size change misses" false
    (is_cached (Srv.handle_line t (plan_line ~m:4096 graph)));
  Alcotest.(check bool) "block size change misses" false
    (is_cached (Srv.handle_line t (plan_line ~m:2048 ~b:32 graph)));
  Alcotest.(check bool) "associativity change misses" false
    (is_cached (Srv.handle_line t (plan_line ~m:2048 ~ways:2 graph)));
  Alcotest.(check bool) "original config still hits" true
    (is_cached (Srv.handle_line t (plan_line ~m:2048 graph)))

let test_pinned_capacities () =
  let t = make_daemon () in
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let graph = Ccs.Serial.to_text g in
  let caps = [ 8; 8; 8 ] in
  let r = Srv.handle_line t (plan_line ~m:256 ~capacities:caps graph) in
  Alcotest.(check bool) "ok" true (is_ok r);
  (match Json.of_string r with
  | Ok v ->
      let got =
        Option.bind (Json.member "plan" v) (Json.member "capacities")
      in
      Alcotest.(check bool)
        "capacities pinned" true
        (got = Some (Json.List (List.map (fun c -> Json.Int c) caps)))
  | Error _ -> Alcotest.fail "unparseable");
  Alcotest.(check bool) "pinned request hits its own cache line" true
    (is_cached (Srv.handle_line t (plan_line ~m:256 ~capacities:caps graph)));
  Alcotest.(check bool) "unpinned is a different cache line" false
    (is_cached (Srv.handle_line t (plan_line ~m:256 graph)))

let test_structured_errors () =
  let t = make_daemon () in
  let check name expected line =
    match error_code (Srv.handle_line t line) with
    | Some code -> Alcotest.(check string) name expected code
    | None -> Alcotest.failf "%s: no structured error" name
  in
  check "malformed line" "request-invalid" "{{{";
  check "bad graph text" "parse"
    (plan_line "module a 1 1\nthis is not a graph\n");
  check "bad cache numbers" "cache-config-invalid"
    (plan_line ~m:0 (app_graph "fm-radio"));
  check "bad associativity" "cache-config-invalid"
    (plan_line ~ways:100000 (app_graph "fm-radio"));
  check "wrong capacity count" "request-invalid"
    (plan_line ~capacities:[ 1 ] (app_graph "fm-radio"))

let test_dry_run_matches_codegen () =
  let t = make_daemon () in
  let name = "fm-radio" in
  let r = Srv.handle_line t (plan_line ~dry_run:true (app_graph name)) in
  let dry = Json.of_string r |> Result.get_ok |> Json.member "dry_run" in
  let field f =
    Option.bind dry (Json.member f) |> Option.get |> Json.to_float |> Option.get
  in
  (* The same plan lowered locally must reproduce the daemon's answer. *)
  let entry = Option.get (Ccs_apps.Suite.find name) in
  let g = entry.Ccs_apps.Suite.graph () in
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  let lowered =
    Ccs.Lowering.exn g ~plan:choice.Ccs.Auto.plan
      ~cache:(Ccs.Config.cache_config cfg)
  in
  let c = Ccs.Compiled.create lowered in
  Ccs.Compiled.run_periods c 1;
  Alcotest.(check (float 0.))
    "outputs"
    (float_of_int (Ccs.Compiled.outputs c))
    (field "outputs");
  Alcotest.(check (float 0.)) "checksum" (Ccs.Compiled.checksum c)
    (field "checksum")

let metric page name =
  let prefix = name ^ " " in
  String.split_on_char '\n' page
  |> List.find_map (fun l ->
         if String.starts_with ~prefix l then
           int_of_string_opt
             (String.sub l (String.length prefix)
                (String.length l - String.length prefix))
         else None)
  |> Option.value ~default:(-1)

let test_metrics_accounting () =
  let t = make_daemon () in
  let graph = app_graph "bitonic" in
  ignore (Srv.handle_line t (plan_line graph));
  ignore (Srv.handle_line t (plan_line graph));
  ignore (Srv.handle_line t (plan_line graph));
  ignore (Srv.handle_line t "not json");
  ignore (Srv.handle_line t {|{"op":"ping"}|});
  let page = Srv.scrape t in
  Alcotest.(check int) "requests" 5 (metric page "ccs_serve_requests_total");
  Alcotest.(check int) "misses" 1 (metric page "ccs_serve_cache_misses_total");
  Alcotest.(check int) "hits" 2 (metric page "ccs_serve_cache_hits_total");
  Alcotest.(check int) "errors" 1 (metric page "ccs_serve_errors_total");
  Alcotest.(check int) "plan builds" 1
    (metric page "ccs_serve_plan_builds_total");
  Alcotest.(check int) "request latency count" 5
    (metric page "ccs_serve_request_us_count");
  Alcotest.(check int) "plan latency count" 1
    (metric page "ccs_serve_plan_us_count")

(* --- the soak test: a real forked daemon ----------------------------------- *)

(* Poll with a real connection, not just the socket file: the file
   appears at [bind], a moment before [listen] — a connect in that
   window is refused. *)
let wait_for_socket sock =
  let ready () =
    Sys.file_exists sock
    &&
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> true
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
  in
  let rec go n =
    if ready () then ()
    else if n = 0 then Alcotest.fail "daemon socket never came up"
    else (
      Unix.sleepf 0.05;
      go (n - 1))
  in
  go 200;
  (* let the daemon reap the probe connection before the test counts
     in-flight slots *)
  Unix.sleepf 0.15

let scrape_http address =
  let fd = Srv.connect address in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "GET /metrics HTTP/1.0\r\n\r\n";
  flush oc;
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Buffer.contents buf

let test_soak () =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let config =
    {
      (Srv.default_config ~address:(Srv.Unix_socket sock)
         ~dir:(Filename.concat dir "state"))
      with
      Srv.workers = 2;
    }
  in
  flush stdout;
  flush stderr;
  let server_pid =
    match Unix.fork () with
    | 0 ->
        (try Srv.run config with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill server_pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] server_pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  wait_for_socket sock;
  let apps = Ccs_apps.Suite.names in
  let lines = List.map (fun name -> plan_line (app_graph name)) apps in
  (* Round 1: every app once; all misses (cold cache). *)
  let round1 = List.map (Srv.request config.Srv.address) lines in
  List.iter
    (fun r ->
      Alcotest.(check bool) "round-1 ok" true (is_ok r);
      Alcotest.(check bool) "round-1 miss" false (is_cached r))
    round1;
  (* Round 2: concurrent clients replaying the full suite; every response
     must be a hit, bit-identical to round 1's build. *)
  let nclients = 4 in
  let out i = Filename.concat dir (Printf.sprintf "client-%d.out" i) in
  let spawn i =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        let ok =
          try
            let oc = open_out (out i) in
            List.iter
              (fun line ->
                output_string oc (Srv.request config.Srv.address line);
                output_char oc '\n')
              lines;
            close_out oc;
            true
          with _ -> false
        in
        Unix._exit (if ok then 0 else 1)
    | pid -> pid
  in
  let clients = List.init nclients spawn in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "soak client failed")
    clients;
  let expected = List.map normalize round1 in
  List.iter
    (fun i ->
      let got =
        In_channel.with_open_text (out i) In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "client answered all" (List.length apps)
        (List.length got);
      List.iter2
        (fun want r ->
          Alcotest.(check bool) "round-2 hit" true (is_cached r);
          Alcotest.(check string) "round-2 identical" want (normalize r))
        expected got)
    (List.init nclients Fun.id);
  (* Malformed lines: structured error, connection stays usable. *)
  let fd = Srv.connect config.Srv.address in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "this is not json\n";
  flush oc;
  let r = input_line ic in
  Alcotest.(check (option string))
    "malformed -> structured error" (Some "request-invalid") (error_code r);
  output_string oc "{\"op\":\"ping\"}\n";
  flush oc;
  Alcotest.(check bool) "connection survives" true (is_ok (input_line ic));
  Unix.close fd;
  (* A config change is a miss even with a hot cache. *)
  let r =
    Srv.request config.Srv.address (plan_line ~m:4096 (app_graph "fm-radio"))
  in
  Alcotest.(check bool) "config change misses" false (is_cached r);
  (* Metrics, merged across both workers, account for every request:
     12 misses + 48 hits + 1 miss (config change) + 1 error + 1 ping. *)
  let page = scrape_http config.Srv.address in
  let n = metric page in
  Alcotest.(check int) "requests" 63 (n "ccs_serve_requests_total");
  Alcotest.(check int) "hits" 48 (n "ccs_serve_cache_hits_total");
  Alcotest.(check int) "misses" 13 (n "ccs_serve_cache_misses_total");
  Alcotest.(check int) "errors" 1 (n "ccs_serve_errors_total");
  Alcotest.(check int)
    "hits + misses + errors + pings = requests"
    (n "ccs_serve_requests_total")
    (n "ccs_serve_cache_hits_total"
    + n "ccs_serve_cache_misses_total"
    + n "ccs_serve_errors_total"
    + 1);
  (* Clean shutdown: SIGTERM -> exit 0, socket file removed. *)
  Unix.kill server_pid Sys.sigterm;
  (match Unix.waitpid [] server_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "daemon did not exit cleanly on SIGTERM");
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock)

(* --- the weighted LRU index ------------------------------------------------ *)

module Lru = Ccs_serve.Lru_index

(* Differential test against a naive association-list model: same ops,
   same observable state (recency order, size, total weight, returned
   values) at every step.  Deterministic LCG so failures replay. *)
let test_lru_index_differential () =
  let t = Lru.create () in
  let model = ref [] in
  (* model: (key, (weight, value)) list, MRU first *)
  let m_remove k = model := List.remove_assoc k !model in
  let seed = ref 0x2545F491 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  let agree step =
    Alcotest.(check int)
      (Printf.sprintf "size @%d" step)
      (List.length !model) (Lru.size t);
    Alcotest.(check int)
      (Printf.sprintf "weight @%d" step)
      (List.fold_left (fun acc (_, (w, _)) -> acc + w) 0 !model)
      (Lru.total_weight t);
    Alcotest.(check (list string))
      (Printf.sprintf "recency @%d" step)
      (List.map fst !model) (Lru.to_list_mru_first t)
  in
  for step = 1 to 3000 do
    let k = "key-" ^ string_of_int (next () mod 40) in
    let check_opt name want got =
      Alcotest.(check (option int)) (Printf.sprintf "%s @%d" name step) want
        got
    in
    (match next () mod 5 with
    | 0 | 1 ->
        let w = 1 + (next () mod 100) and v = next () in
        Lru.add t k ~weight:w v;
        m_remove k;
        model := (k, (w, v)) :: !model
    | 2 ->
        check_opt "touch" (Option.map snd (List.assoc_opt k !model))
          (Lru.touch t k);
        (match List.assoc_opt k !model with
        | Some e ->
            m_remove k;
            model := (k, e) :: !model
        | None -> ())
    | 3 ->
        check_opt "find" (Option.map snd (List.assoc_opt k !model))
          (Lru.find t k);
        Alcotest.(check bool)
          (Printf.sprintf "remove @%d" step)
          (List.mem_assoc k !model) (Lru.remove t k);
        m_remove k
    | _ -> (
        match Lru.evict_lru t with
        | None ->
            Alcotest.(check bool)
              (Printf.sprintf "evict-empty @%d" step)
              true (!model = [])
        | Some (ek, ew, ev) -> (
            match List.rev !model with
            | (mk, (mw, mv)) :: _ ->
                Alcotest.(check string)
                  (Printf.sprintf "evict key @%d" step)
                  mk ek;
                Alcotest.(check int) "evict weight" mw ew;
                Alcotest.(check int) "evict value" mv ev;
                m_remove mk
            | [] -> Alcotest.fail "evicted from an empty model")));
    agree step
  done

let test_lru_index_update_and_growth () =
  let t = Lru.create () in
  (* grow well past the initial 16 slots *)
  for i = 0 to 99 do
    Lru.add t (string_of_int i) ~weight:i i
  done;
  Alcotest.(check int) "size" 100 (Lru.size t);
  Alcotest.(check int) "weight" 4950 (Lru.total_weight t);
  (* re-adding updates weight/value in place and promotes *)
  Lru.add t "0" ~weight:1000 7;
  Alcotest.(check int) "updated weight" (4950 - 0 + 1000) (Lru.total_weight t);
  Alcotest.(check (option int)) "updated value" (Some 7) (Lru.find t "0");
  (match Lru.to_list_mru_first t with
  | mru :: _ -> Alcotest.(check string) "promoted" "0" mru
  | [] -> Alcotest.fail "empty");
  (* and the LRU is now key 1 *)
  match Lru.evict_lru t with
  | Some (k, _, _) -> Alcotest.(check string) "lru" "1" k
  | None -> Alcotest.fail "evict failed"

(* --- the bounded plan store ------------------------------------------------ *)

let mk_key i =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let cache = Ccs.Cache.config ~size_words:256 ~block_words:16 () in
  Ccs.Plan_key.of_graph g ~cache ~capacities:[| 4; 4; 4 + i |]
    ~planner_version:1

let read_bin p = In_channel.with_open_bin p In_channel.input_all

let plan_files dir =
  if Sys.file_exists dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ccsplan")
  else []

let test_store_entry_bound_and_rebuild () =
  let dir = tmp_dir () in
  let a = artifact_fixture () in
  let b =
    Cache.Bounded.create ~dir
      ~bounds:{ Cache.Bounded.max_bytes = 0; max_entries = 2 }
      ()
  in
  Cache.Bounded.store b ~key:(mk_key 0) a;
  Unix.sleepf 0.02;
  Cache.Bounded.store b ~key:(mk_key 1) a;
  Unix.sleepf 0.02;
  let k1_bytes = read_bin (Cache.path ~dir (mk_key 1)) in
  (* a hit bumps recency, so key 0 is most-recent again *)
  Alcotest.(check bool)
    "hit" true
    (Cache.Bounded.lookup b ~key:(mk_key 0) <> None);
  Unix.sleepf 0.02;
  Cache.Bounded.store b ~key:(mk_key 2) a;
  (* over the bound: the least-recently-used record (key 1) went *)
  Alcotest.(check int) "entries" 2 (Cache.Bounded.entries b);
  Alcotest.(check int) "evictions" 1 (Cache.Bounded.evictions b);
  Alcotest.(check int) "files" 2 (List.length (plan_files dir));
  Alcotest.(check bool)
    "evicted misses" true
    (Cache.Bounded.lookup b ~key:(mk_key 1) = None);
  Alcotest.(check bool)
    "survivor hits" true
    (Cache.Bounded.lookup b ~key:(mk_key 2) <> None);
  (* rebuilding the evicted record reproduces it bit-identically *)
  Unix.sleepf 0.02;
  Cache.Bounded.store b ~key:(mk_key 1) a;
  Alcotest.(check int) "still bounded" 2 (Cache.Bounded.entries b);
  Alcotest.(check string)
    "rebuilt bit-identical" k1_bytes
    (read_bin (Cache.path ~dir (mk_key 1)))

let test_store_byte_bound () =
  let dir = tmp_dir () in
  let a = artifact_fixture () in
  (* measure one record, then bound the store to just over two of them *)
  Cache.store ~dir ~key:(mk_key 0) a;
  let record = String.length (read_bin (Cache.path ~dir (mk_key 0))) in
  let bound = (2 * record) + (record / 2) in
  let b =
    Cache.Bounded.create ~dir
      ~bounds:{ Cache.Bounded.max_bytes = bound; max_entries = 0 }
      ()
  in
  Unix.sleepf 0.02;
  Cache.Bounded.store b ~key:(mk_key 1) a;
  Unix.sleepf 0.02;
  Cache.Bounded.store b ~key:(mk_key 2) a;
  Alcotest.(check bool)
    "bytes within bound" true
    (Cache.Bounded.bytes b <= bound);
  Alcotest.(check int) "entries" 2 (Cache.Bounded.entries b);
  Alcotest.(check bool)
    "oldest evicted" true
    (Cache.Bounded.lookup b ~key:(mk_key 0) = None)

let truncate_file p =
  let size = (Unix.stat p).Unix.st_size in
  let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size / 2);
  Unix.close fd

let test_store_sweep_quarantines () =
  let dir = tmp_dir () in
  let a = artifact_fixture () in
  Cache.store ~dir ~key:(mk_key 0) a;
  Cache.store ~dir ~key:(mk_key 1) a;
  truncate_file (Cache.path ~dir (mk_key 0));
  let b = Cache.Bounded.create ~dir ~bounds:Cache.Bounded.unbounded () in
  Alcotest.(check int) "quarantined" 1 (Cache.Bounded.quarantined b);
  Alcotest.(check int) "kept" 1 (Cache.Bounded.entries b);
  Alcotest.(check int) "quarantine dir" 1
    (Array.length (Sys.readdir (Filename.concat dir "quarantine")));
  Alcotest.(check bool)
    "torn record misses" true
    (Cache.Bounded.lookup b ~key:(mk_key 0) = None);
  Alcotest.(check bool)
    "healthy record hits" true
    (Cache.Bounded.lookup b ~key:(mk_key 1) <> None);
  (* the caller rebuilds; the store is whole again *)
  Cache.Bounded.store b ~key:(mk_key 0) a;
  Alcotest.(check bool)
    "rebuilt record hits" true
    (Cache.Bounded.lookup b ~key:(mk_key 0) <> None)

let test_store_self_heals_at_lookup () =
  let dir = tmp_dir () in
  let a = artifact_fixture () in
  let b = Cache.Bounded.create ~dir ~bounds:Cache.Bounded.unbounded () in
  Cache.Bounded.store b ~key:(mk_key 0) a;
  let healthy = read_bin (Cache.path ~dir (mk_key 0)) in
  truncate_file (Cache.path ~dir (mk_key 0));
  (* a torn record reads as a miss (quarantined), never an error *)
  Alcotest.(check bool)
    "torn -> miss" true
    (Cache.Bounded.lookup b ~key:(mk_key 0) = None);
  Alcotest.(check int) "quarantined" 1 (Cache.Bounded.quarantined b);
  Cache.Bounded.store b ~key:(mk_key 0) a;
  Alcotest.(check string)
    "rebuilt bit-identical" healthy
    (read_bin (Cache.path ~dir (mk_key 0)))

(* --- protocol fuzzing ------------------------------------------------------ *)

(* Whatever bytes arrive, the daemon's core must answer with exactly one
   line of well-formed JSON carrying an "ok" verdict — never raise,
   never go silent. *)
let responds_structurally t line =
  let r = Srv.handle_line t line in
  (not (String.contains r '\n'))
  &&
  match Json.of_string r with
  | Ok v -> (
      match Json.member "ok" v with Some (Json.Bool _) -> true | _ -> false)
  | Error _ -> false

let fuzz_random_bytes =
  let t = lazy (make_daemon ()) in
  QCheck2.Test.make ~name:"random bytes get one structured answer" ~count:300
    QCheck2.Gen.(string_size ~gen:char (int_range 0 120))
    (fun s -> responds_structurally (Lazy.force t) s)

let fuzz_mutated_json =
  let t = lazy (make_daemon ()) in
  let base =
    plan_line ~m:256
      (Ccs.Serial.to_text (Ccs.Generators.uniform_pipeline ~n:4 ~state:8 ()))
  in
  let gen =
    QCheck2.Gen.(
      map2
        (fun i c ->
          let b = Bytes.of_string base in
          Bytes.set b (i mod Bytes.length b) c;
          Bytes.to_string b)
        (int_range 0 (String.length base - 1))
        char)
  in
  QCheck2.Test.make ~name:"mutated requests get one structured answer"
    ~count:200 gen
    (fun s -> responds_structurally (Lazy.force t) s)

(* --- live-daemon hardening ------------------------------------------------- *)

let ping = {|{"op":"ping"}|}

let with_daemon config sock f =
  flush stdout;
  flush stderr;
  let pid =
    match Unix.fork () with
    | 0 ->
        (try Srv.run config with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  wait_for_socket sock;
  f pid

(* A metric from one published snapshot document (e.g. the parent's). *)
let file_metric path name =
  match
    In_channel.with_open_text path In_channel.input_all |> Json.of_string
  with
  | Error _ | (exception Sys_error _) -> None
  | Ok doc ->
      let section key =
        match Json.member key doc with
        | Some (Json.List items) ->
            List.find_map
              (fun it ->
                match (Json.member "name" it, Json.member "value" it) with
                | Some (Json.String n), Some v when n = name -> Json.to_int v
                | _ -> None)
              items
        | _ -> None
      in
      (match section "counters" with
      | Some v -> Some v
      | None -> section "gauges")

let test_deadline_slow_client () =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let config =
    {
      (Srv.default_config ~address:(Srv.Unix_socket sock)
         ~dir:(Filename.concat dir "state"))
      with
      Srv.deadline_ms = 200;
    }
  in
  with_daemon config sock @@ fun _ ->
  (* a stalled half-request gets a structured answer, then the close *)
  let fd = Srv.connect config.Srv.address in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "{\"op";
  flush oc;
  let r = input_line ic in
  Alcotest.(check (option string))
    "deadline code" (Some "deadline-exceeded") (error_code r);
  (match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "connection not closed, got %s" l);
  Unix.close fd;
  (* the worker is free again: a prompt request succeeds *)
  Alcotest.(check bool)
    "daemon alive" true
    (is_ok (Srv.request config.Srv.address ping))

let test_overload_shed () =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let config =
    {
      (Srv.default_config ~address:(Srv.Unix_socket sock)
         ~dir:(Filename.concat dir "state"))
      with
      Srv.max_inflight = 1;
      retry_after_ms = 7;
    }
  in
  with_daemon config sock @@ fun _ ->
  (* one idle connection fills the worker; the next is shed *)
  let a = Srv.connect config.Srv.address in
  Unix.sleepf 0.15;
  let b = Srv.connect config.Srv.address in
  let ic = Unix.in_channel_of_descr b in
  let r = input_line ic in
  Alcotest.(check (option string)) "shed code" (Some "overloaded")
    (error_code r);
  (match Json.of_string r with
  | Ok v ->
      Alcotest.(check (option int))
        "retry hint" (Some 7)
        (Option.bind (Json.member "error" v) (fun e ->
             Option.bind (Json.member "retry_after_ms" e) Json.to_int))
  | Error _ -> Alcotest.fail "unparseable shed response");
  (match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "shed connection not closed, got %s" l);
  Unix.close b;
  (* a retrying client rides out the contention window: the slot frees
     while it backs off, and the replay succeeds *)
  flush stdout;
  flush stderr;
  let client =
    match Unix.fork () with
    | 0 ->
        (* drop the inherited copy of [a]: the parent's close must be
           the one that frees the worker slot *)
        Unix.close a;
        (* distinct exit codes so a flake names its failure mode: 1 =
           retries exhausted on a non-ok response, 2 = a transport
           exception escaped the retry loop *)
        let code =
          match
            Srv.request_retry ~retries:8 ~backoff_ms:40 ~seed:1
              config.Srv.address ping
          with
          | r -> if is_ok r then 0 else 1
          | exception _ -> 2
        in
        Unix._exit code
    | pid -> pid
  in
  Unix.sleepf 0.3;
  Unix.close a;
  (match Unix.waitpid [] client with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
      Alcotest.failf "retrying client never got through (exit %d: %s)" n
        (if n = 1 then "non-ok response after retries"
         else "transport exception")
  | _ -> Alcotest.fail "retrying client was signalled")

let test_breaker_quarantines_crash_loop () =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let state = Filename.concat dir "state" in
  let config =
    {
      (Srv.default_config ~address:(Srv.Unix_socket sock) ~dir:state) with
      Srv.workers = 1;
      chaos = Ccs.Fault.parse_env "kill@0";
      min_uptime_ms = 600_000;
      (* every death is "rapid" *)
      breaker_limit = 2;
    }
  in
  with_daemon config sock @@ fun _ ->
  (* each worker dies right after its first response: death one is
     respawned (with backoff), death two trips the breaker *)
  Alcotest.(check bool)
    "first response" true
    (is_ok (Srv.request config.Srv.address ping));
  Alcotest.(check bool)
    "respawned worker answers" true
    (is_ok (Srv.request config.Srv.address ping));
  let parent = Filename.concat (Filename.concat state "metrics") "parent.json" in
  let rec await n =
    match file_metric parent "ccs_serve_workers_quarantined" with
    | Some 1 -> ()
    | _ when n = 0 -> Alcotest.fail "breaker never quarantined the slot"
    | _ ->
        Unix.sleepf 0.05;
        await (n - 1)
  in
  await 100;
  Alcotest.(check (option int))
    "one respawn before the breaker opened" (Some 1)
    (file_metric parent "ccs_serve_worker_restarts_total")

let test_live_fuzz_flood () =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let config =
    Srv.default_config ~address:(Srv.Unix_socket sock)
      ~dir:(Filename.concat dir "state")
  in
  with_daemon config sock @@ fun _ ->
  let fd = Srv.connect config.Srv.address in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  (* a seeded flood of junk lines: every line gets exactly one
     structured error and the connection survives all of them *)
  let seed = ref 0xbadf00d in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  let n = 40 in
  for _ = 1 to n do
    let len = 1 + (next () mod 40) in
    let line =
      String.init len (fun i ->
          if i = 0 then 'z'
          else
            match Char.chr (1 + (next () mod 255)) with
            | '\n' | '\r' -> ' '
            | c -> c)
    in
    output_string oc line;
    output_char oc '\n'
  done;
  flush oc;
  for i = 1 to n do
    let r = input_line ic in
    if error_code r = None then
      Alcotest.failf "flood line %d: unstructured answer %s" i r
  done;
  output_string oc (ping ^ "\n");
  flush oc;
  Alcotest.(check bool) "connection survives flood" true (is_ok (input_line ic));
  Unix.close fd

(* --- the daemon chaos soak ------------------------------------------------- *)

let test_chaos_soak () =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let state = Filename.concat dir "state" in
  let store_bound = 6 in
  let config =
    {
      (Srv.default_config ~address:(Srv.Unix_socket sock) ~dir:state) with
      Srv.workers = 2;
      chaos = Ccs.Fault.parse_env "iofault@1:2,truncate@3,kill@5";
      store_max_entries = store_bound;
      min_uptime_ms = 0;
      (* chaos deaths are expected; never trip the breaker here *)
    }
  in
  (* the fault-free reference: the same requests through an inline
     daemon, no chaos, no bounds *)
  let reference =
    Srv.make
      (Srv.default_config ~address:(Srv.Unix_socket "/nonexistent")
         ~dir:(tmp_dir ()))
  in
  let apps = Ccs_apps.Suite.names in
  let lines = List.map (fun name -> plan_line (app_graph name)) apps in
  let expected = List.map (fun l -> normalize (Srv.handle_line reference l)) lines in
  with_daemon config sock @@ fun _ ->
  (* two full rounds under chaos: worker kills, suppressed stores, torn
     records, LRU eviction pressure (12 apps against a 6-record bound).
     Every request must get exactly one well-formed response, and every
     plan must be bit-identical to the fault-free run. *)
  List.iteri
    (fun round _ ->
      List.iteri
        (fun i (line, want) ->
          let r =
            Srv.request_retry ~retries:6 ~backoff_ms:20 ~timeout_ms:10_000
              ~seed:((round * 100) + i)
              config.Srv.address line
          in
          if not (is_ok r) then
            Alcotest.failf "round %d app %d: error response %s" round i r;
          Alcotest.(check string)
            (Printf.sprintf "round %d app %d bit-identical" round i)
            want (normalize r))
        (List.combine lines expected))
    [ 0; 1 ];
  (* the plan store never exceeds its configured bound *)
  let files = plan_files (Filename.concat state "plans") in
  if List.length files > store_bound then
    Alcotest.failf "store over bound: %d records" (List.length files);
  (* at least one chaos kill happened and was supervised back up:
     24 requests over 2 workers pigeonhole some worker past epoch 5 *)
  let parent = Filename.concat (Filename.concat state "metrics") "parent.json" in
  let rec await n =
    match file_metric parent "ccs_serve_worker_restarts_total" with
    | Some r when r >= 1 -> ()
    | _ when n = 0 -> Alcotest.fail "no worker restart was recorded"
    | _ ->
        Unix.sleepf 0.05;
        await (n - 1)
  in
  await 100

(* --- observability: spans, flight recorder, tracing ------------------------ *)

let test_span_ring () =
  let ring = Ccs.Span.create ~capacity:4 () in
  for i = 0 to 5 do
    Ccs.Span.record ring ~trace_id:"t" ~span_id:i ~parent:(-1)
      ~stage:(Printf.sprintf "s%d" i) ~start_us:(10 * i)
      ~end_us:((10 * i) + 5)
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Ccs.Span.length ring);
  Alcotest.(check int) "total counts every record" 6 (Ccs.Span.total ring);
  Alcotest.(check int) "dropped = overflow" 2 (Ccs.Span.dropped ring);
  Alcotest.(check (list string))
    "window is the newest spans, oldest first"
    [ "s2"; "s3"; "s4"; "s5" ]
    (List.map (fun s -> s.Ccs.Span.stage) (Ccs.Span.to_list ring));
  Alcotest.(check int) "duration" 5
    (Ccs.Span.duration_us (List.hd (Ccs.Span.to_list ring)));
  Alcotest.(check bool) "fresh ids are distinct" true
    (Ccs.Span.fresh_id ring <> Ccs.Span.fresh_id ring)

let test_flight_roundtrip () =
  let fl = Ccs.Flight.create ~span_capacity:8 ~log_capacity:4 () in
  Ccs.Flight.note_log fl "one";
  Ccs.Flight.note_log fl "two";
  for i = 0 to 2 do
    Ccs.Span.record (Ccs.Flight.spans fl) ~trace_id:"t0" ~span_id:i
      ~parent:(if i = 0 then -1 else 0)
      ~stage:"parse" ~start_us:i ~end_us:(i + 7)
  done;
  let dir = Filename.concat (tmp_dir ()) "flight" in
  let path =
    Ccs.Flight.dump fl ~dir ~trigger:"unit-test" ~pid:42 ~at_us:99
  in
  Alcotest.(check string)
    "one file per (worker, trigger)" "worker-42-unit-test.ccsflight"
    (Filename.basename path);
  match Ccs.Flight.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" (E.to_string e)
  | Ok d ->
      Alcotest.(check string) "trigger" "unit-test" d.Ccs.Flight.trigger;
      Alcotest.(check int) "pid" 42 d.Ccs.Flight.pid;
      Alcotest.(check int) "at_us" 99 d.Ccs.Flight.at_us;
      Alcotest.(check int) "seq" 0 d.Ccs.Flight.seq;
      Alcotest.(check int) "no spans dropped" 0 d.Ccs.Flight.dropped_spans;
      Alcotest.(check (list string))
        "logs oldest first" [ "one"; "two" ] d.Ccs.Flight.logs;
      Alcotest.(check int) "spans" 3 (List.length d.Ccs.Flight.spans);
      let s = List.nth d.Ccs.Flight.spans 2 in
      Alcotest.(check string) "span trace id" "t0" s.Ccs.Span.trace_id;
      Alcotest.(check int) "span id" 2 s.Ccs.Span.span_id;
      Alcotest.(check int) "span parent" 0 s.Ccs.Span.parent;
      Alcotest.(check int) "span duration" 7 (Ccs.Span.duration_us s)

let test_flight_rejects_corruption () =
  let fl = Ccs.Flight.create () in
  Ccs.Flight.note_log fl "evidence";
  let dir = Filename.concat (tmp_dir ()) "flight" in
  let path = Ccs.Flight.dump fl ~dir ~trigger:"t" ~pid:1 ~at_us:5 in
  let pristine = In_channel.with_open_bin path In_channel.input_all in
  (* a flipped byte is detected by the frame checksum *)
  let bytes = Bytes.of_string pristine in
  Bytes.set bytes
    (Bytes.length bytes - 3)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes - 3)) lxor 0x40));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
  (match Ccs.Flight.load ~path with
  | Error (E.Checkpoint_corrupt _) -> ()
  | Error e -> Alcotest.failf "wrong error %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "corrupt dump decoded");
  (* truncation mid-payload is a structured error, not an exception *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub pristine 0 (String.length pristine / 2)));
  (match Ccs.Flight.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated dump decoded");
  (* and so is a foreign file *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "this is not a flight dump at all");
  match Ccs.Flight.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk decoded"

let test_trace_id_echo () =
  let t = make_daemon () in
  let with_trace_id line id =
    match Json.of_string line with
    | Ok (Json.Obj fields) ->
        Json.to_string (Json.Obj (fields @ [ ("trace_id", Json.String id) ]))
    | _ -> Alcotest.fail "bad fixture"
  in
  let line = with_trace_id (plan_line (app_graph "fm-radio")) "req-7" in
  let echoed r =
    match Json.of_string r with
    | Ok v -> Json.member "trace_id" v
    | Error _ -> None
  in
  let r = Srv.handle_line t line in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check (option string))
    "echoed on success" (Some "req-7")
    (Option.bind (echoed r) Json.to_str);
  let bad = with_trace_id (plan_line ~m:0 (app_graph "fm-radio")) "req-8" in
  let r = Srv.handle_line t bad in
  Alcotest.(check bool) "error" false (is_ok r);
  Alcotest.(check (option string))
    "echoed on error" (Some "req-8")
    (Option.bind (echoed r) Json.to_str);
  (* no trace_id in, none out *)
  let r = Srv.handle_line t (plan_line (app_graph "fm-radio")) in
  Alcotest.(check (option string)) "absent stays absent" None
    (Option.bind (echoed r) Json.to_str)

let make_traced_daemon ~tracing =
  Srv.make
    {
      (Srv.default_config ~address:(Srv.Unix_socket "/nonexistent")
         ~dir:(tmp_dir ()))
      with
      Srv.tracing;
    }

let test_tracing_bit_identical () =
  (* The observability contract: spans on or off, the daemon computes the
     same answers and the same cache traffic — tracing only records. *)
  let off = make_traced_daemon ~tracing:false in
  let on = make_traced_daemon ~tracing:true in
  let lines =
    [
      plan_line (app_graph "fm-radio");
      plan_line (app_graph "fm-radio");
      plan_line ~dry_run:true (app_graph "bitonic");
      plan_line ~m:0 (app_graph "fft");
    ]
  in
  List.iteri
    (fun i line ->
      let a = Srv.handle_line off line in
      let b = Srv.handle_line on line in
      Alcotest.(check string)
        (Printf.sprintf "request %d bit-identical" i)
        (normalize a) (normalize b))
    lines;
  let counter t name = Option.value (Srv.metric_value t name) ~default:(-1) in
  Alcotest.(check int)
    "cache misses equal"
    (counter off "ccs_serve_cache_misses_total")
    (counter on "ccs_serve_cache_misses_total");
  Alcotest.(check int)
    "cache hits equal"
    (counter off "ccs_serve_cache_hits_total")
    (counter on "ccs_serve_cache_hits_total");
  (* stage histograms observe only under tracing *)
  let stage t =
    Srv.metric_value t ~labels:[ ("stage", "plan_build") ] "ccs_serve_stage_us"
  in
  Alcotest.(check (option int)) "untraced records no stage spans" (Some 0)
    (stage off);
  (match stage on with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "traced daemon recorded %s plan_build spans"
        (match v with Some n -> string_of_int n | None -> "no"));
  (* and the merged scrape renders them as labelled histogram series *)
  let page = Srv.scrape on in
  let has needle page =
    let nl = String.length needle and pl = String.length page in
    let rec go i =
      i + nl <= pl && (String.sub page i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "stage series on the metrics page" true
    (has "ccs_serve_stage_us_count{stage=\"plan_build\"}" page)

(* --- snapshot merge on histogram series ------------------------------------ *)

let snapshot_doc build =
  let r = Ccs.Metrics.create () in
  build r;
  match Json.of_string (Ccs.Metrics.to_json_string r) with
  | Ok v -> v
  | Error e -> Alcotest.failf "snapshot doc does not parse: %s" e

let find_series series name labels =
  List.find_opt
    (fun s ->
      s.Ccs_serve.Snapshot.name = name && s.Ccs_serve.Snapshot.labels = labels)
    series

let test_snapshot_merge_histograms () =
  let doc pid observations =
    snapshot_doc (fun r ->
        let h =
          Ccs.Metrics.histogram r ~labels:[ ("stage", "parse") ] "stage_us"
        in
        List.iter (Ccs.Metrics.observe h) observations;
        let other =
          Ccs.Metrics.histogram r ~labels:[ ("stage", "write") ] "stage_us"
        in
        if pid = 1 then Ccs.Metrics.observe other 1)
  in
  let merged = Ccs_serve.Snapshot.merge [ doc 1 [ 3; 100 ]; doc 2 [ 5 ] ] in
  (match find_series merged "stage_us" [ ("stage", "parse") ] with
  | None -> Alcotest.fail "merged parse series missing"
  | Some s -> (
      match s.Ccs_serve.Snapshot.data with
      | Ccs_serve.Snapshot.Histo { count; sum; buckets } ->
          Alcotest.(check int) "counts sum across workers" 3 count;
          Alcotest.(check int) "sums sum across workers" 108 sum;
          Alcotest.(check int)
            "per-bucket counts sum" 3
            (List.fold_left (fun a (_, c) -> a + c) 0 buckets)
      | _ -> Alcotest.fail "parse series is not a histogram"));
  (* label-set disjointness: the write series keeps its own count *)
  (match find_series merged "stage_us" [ ("stage", "write") ] with
  | None -> Alcotest.fail "merged write series missing"
  | Some s -> (
      match s.Ccs_serve.Snapshot.data with
      | Ccs_serve.Snapshot.Histo { count; _ } ->
          Alcotest.(check int) "disjoint labels not conflated" 1 count
      | _ -> Alcotest.fail "write series is not a histogram"));
  (* the rendered page has cumulative buckets ending in +Inf = count *)
  let page = Ccs_serve.Snapshot.to_prometheus merged in
  let lines = String.split_on_char '\n' page in
  let bucket_counts prefix =
    List.filter_map
      (fun l ->
        let n = String.length prefix in
        if String.length l > n && String.sub l 0 n = prefix then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  let cumulative =
    bucket_counts "stage_us_bucket{le=\"" |> fun _ ->
    bucket_counts "stage_us_bucket{stage=\"parse\""
  in
  Alcotest.(check bool) "bucket series rendered" true (cumulative <> []);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets are monotone" true
    (monotone cumulative);
  Alcotest.(check int)
    "+Inf bucket equals the count" 3
    (List.nth cumulative (List.length cumulative - 1))

let test_snapshot_merge_edge_cases () =
  (* zero snapshots: an empty page, not an error *)
  Alcotest.(check string)
    "empty merge renders an empty page" ""
    (Ccs_serve.Snapshot.to_prometheus (Ccs_serve.Snapshot.merge []));
  (* a histogram series merged with itself doubles; counters unaffected *)
  let d =
    snapshot_doc (fun r ->
        let h = Ccs.Metrics.histogram r "h_us" in
        Ccs.Metrics.observe h 9;
        Ccs.Metrics.inc (Ccs.Metrics.counter r "c_total"))
  in
  let merged = Ccs_serve.Snapshot.merge [ d; d ] in
  (match find_series merged "h_us" [] with
  | Some { Ccs_serve.Snapshot.data = Ccs_serve.Snapshot.Histo { count; _ }; _ }
    ->
      Alcotest.(check int) "histogram doubled" 2 count
  | _ -> Alcotest.fail "histogram series missing");
  match find_series merged "c_total" [] with
  | Some { Ccs_serve.Snapshot.data = Ccs_serve.Snapshot.Value v; _ } ->
      Alcotest.(check int) "counter doubled" 2 v
  | _ -> Alcotest.fail "counter series missing"

let test_deadline_flight_dump () =
  (* An induced deadline-exceeded must leave a decodable black box on
     disk: the crash-forensics contract end to end, against a live
     daemon. *)
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let state = Filename.concat dir "state" in
  let config =
    {
      (Srv.default_config ~address:(Srv.Unix_socket sock) ~dir:state) with
      Srv.deadline_ms = 200;
      tracing = true;
      (* a real sink at Info: the flight ring tees off rendered lines, so
         the dump's log evidence depends on the configured level *)
      log = Ccs.Log.to_buffer ~level:Ccs.Log.Info (Buffer.create 256);
    }
  in
  with_daemon config sock @@ fun _ ->
  let fd = Srv.connect config.Srv.address in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "{\"op";
  flush oc;
  let r = input_line ic in
  Alcotest.(check (option string))
    "deadline code" (Some "deadline-exceeded") (error_code r);
  Unix.close fd;
  let flight_dir = Filename.concat state "flight" in
  let dump_paths () =
    match Sys.readdir flight_dir with
    | exception Sys_error _ -> []
    | fs ->
        Array.to_list fs
        |> List.filter (fun f ->
               Filename.check_suffix f "-deadline-exceeded.ccsflight")
        |> List.map (Filename.concat flight_dir)
  in
  let rec await n =
    match dump_paths () with
    | [] when n = 0 -> Alcotest.fail "no deadline flight dump appeared"
    | [] ->
        Unix.sleepf 0.05;
        await (n - 1)
    | paths -> paths
  in
  let paths = await 100 in
  List.iter
    (fun path ->
      match Ccs.Flight.load ~path with
      | Error e ->
          Alcotest.failf "undecodable flight dump %s: %s" path
            (E.to_string e)
      | Ok d ->
          Alcotest.(check string)
            "dump names its trigger" "deadline-exceeded" d.Ccs.Flight.trigger;
          if d.Ccs.Flight.logs = [] then
            Alcotest.fail "flight dump carries no log evidence")
    paths

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "rejects malformed requests" `Quick
            test_parse_rejects;
          Alcotest.test_case "parses plan requests" `Quick test_parse_plan;
          Alcotest.test_case "parses ping" `Quick test_parse_ping;
        ] );
      ( "plan key",
        [
          Alcotest.test_case "mismatch names the field" `Quick
            test_key_mismatch_fields;
          Alcotest.test_case "digest separates every component" `Quick
            test_key_digest_separates;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_cache_rejects_corruption;
          Alcotest.test_case "rejects a renamed record" `Quick
            test_cache_rejects_renamed_record;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "miss then hit, identical" `Quick
            test_miss_then_hit_identical;
          Alcotest.test_case "config change misses" `Quick
            test_config_change_misses;
          Alcotest.test_case "pinned capacities" `Quick test_pinned_capacities;
          Alcotest.test_case "structured errors" `Quick test_structured_errors;
          Alcotest.test_case "dry run matches codegen" `Quick
            test_dry_run_matches_codegen;
          Alcotest.test_case "metrics accounting" `Quick
            test_metrics_accounting;
        ] );
      ( "lru index",
        [
          Alcotest.test_case "differential vs model" `Quick
            test_lru_index_differential;
          Alcotest.test_case "update and growth" `Quick
            test_lru_index_update_and_growth;
        ] );
      ( "bounded store",
        [
          Alcotest.test_case "entry bound, LRU eviction, rebuild" `Quick
            test_store_entry_bound_and_rebuild;
          Alcotest.test_case "byte bound" `Quick test_store_byte_bound;
          Alcotest.test_case "sweep quarantines torn records" `Quick
            test_store_sweep_quarantines;
          Alcotest.test_case "self-heals at lookup" `Quick
            test_store_self_heals_at_lookup;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest fuzz_random_bytes;
          QCheck_alcotest.to_alcotest fuzz_mutated_json;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "deadline on a stalled client" `Slow
            test_deadline_slow_client;
          Alcotest.test_case "overload shed + retrying client" `Slow
            test_overload_shed;
          Alcotest.test_case "breaker quarantines a crash loop" `Slow
            test_breaker_quarantines_crash_loop;
          Alcotest.test_case "live flood of junk lines" `Slow
            test_live_fuzz_flood;
        ] );
      ( "observability",
        [
          Alcotest.test_case "span ring overflow and order" `Quick
            test_span_ring;
          Alcotest.test_case "flight dump roundtrip" `Quick
            test_flight_roundtrip;
          Alcotest.test_case "flight rejects corruption" `Quick
            test_flight_rejects_corruption;
          Alcotest.test_case "trace id echo" `Quick test_trace_id_echo;
          Alcotest.test_case "tracing is observation only" `Quick
            test_tracing_bit_identical;
          Alcotest.test_case "snapshot merge on histograms" `Quick
            test_snapshot_merge_histograms;
          Alcotest.test_case "snapshot merge edge cases" `Quick
            test_snapshot_merge_edge_cases;
          Alcotest.test_case "deadline leaves a flight dump" `Slow
            test_deadline_flight_dump;
        ] );
      ("soak", [ Alcotest.test_case "forked daemon" `Slow test_soak ]);
      ("chaos", [ Alcotest.test_case "seeded chaos soak" `Slow test_chaos_soak ]);
    ]

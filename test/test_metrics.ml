(* Tests for the metrics registry and the structured logger: handle
   readback, idempotent registration, Prometheus exposition (escaping,
   cumulative buckets), histogram bucketing invariants (QCheck), the
   JSON-lines log shape, and the central telemetry soundness invariant —
   attaching a registry leaves the simulation bit-identical. *)

module M = Ccs.Metrics

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- registry basics ------------------------------------------------------ *)

let test_counter_gauge_basics () =
  let t = M.create () in
  let c = M.counter t "requests_total" in
  let g = M.gauge t "queue_depth" in
  M.inc c;
  M.inc c;
  M.add c 5;
  M.set g 42;
  M.gauge_add g (-2);
  Alcotest.(check int) "counter" 7 (M.counter_value c);
  Alcotest.(check int) "gauge" 40 (M.gauge_value g);
  Alcotest.(check (option int)) "by name" (Some 7) (M.value t "requests_total");
  Alcotest.(check int) "series" 2 (M.num_series t);
  M.reset t;
  Alcotest.(check int) "reset counter" 0 (M.counter_value c);
  Alcotest.(check int) "reset gauge" 0 (M.gauge_value g)

let test_registration_idempotent () =
  let t = M.create () in
  let a = M.counter t ~labels:[ ("proc", "0") ] "ccs_cache_misses" in
  let b = M.counter t ~labels:[ ("proc", "0") ] "ccs_cache_misses" in
  let other = M.counter t ~labels:[ ("proc", "1") ] "ccs_cache_misses" in
  M.inc a;
  M.inc b;
  Alcotest.(check int) "same slots" 2 (M.counter_value a);
  Alcotest.(check int) "distinct labels distinct slots" 0
    (M.counter_value other);
  Alcotest.(check int) "two series" 2 (M.num_series t)

let test_kind_conflict_rejected () =
  let t = M.create () in
  let (_ : M.counter) = M.counter t "x_total" in
  (match M.gauge t "x_total" with
  | _ -> Alcotest.fail "kind conflict must be rejected"
  | exception Invalid_argument _ -> ());
  match M.counter t "bad name" with
  | _ -> Alcotest.fail "invalid metric name must be rejected"
  | exception Invalid_argument _ -> ()

(* --- Prometheus exposition ------------------------------------------------ *)

let test_prometheus_escaping () =
  let t = M.create () in
  let c =
    M.counter t
      ~help:"line one\nline two with \\ backslash"
      ~labels:[ ("app", "quo\"te\\back\nnl") ]
      "ccs_test_total"
  in
  M.inc c;
  let text = M.to_prometheus t in
  Alcotest.(check bool) "help escaped" true
    (contains ~needle:"# HELP ccs_test_total line one\\nline two with \\\\ backslash"
       text);
  Alcotest.(check bool) "label value escaped" true
    (contains ~needle:"app=\"quo\\\"te\\\\back\\nnl\"" text);
  Alcotest.(check bool) "no raw newline in label" false
    (contains ~needle:"back\nnl" text);
  Alcotest.(check bool) "sample line" true
    (contains ~needle:"} 1\n" text)

let test_prometheus_histogram_shape () =
  let t = M.create () in
  let h = M.histogram t "ccs_ticks" in
  List.iter (M.observe h) [ 1; 1; 3; 100; 0 ];
  let text = M.to_prometheus t in
  Alcotest.(check bool) "TYPE histogram" true
    (contains ~needle:"# TYPE ccs_ticks histogram" text);
  (* Buckets are cumulative: le=0 -> 1, le=1 -> 3, le=3 -> 4, le=127 -> 5. *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ String.escaped needle) true
        (contains ~needle text))
    [
      "ccs_ticks_bucket{le=\"0\"} 1\n";
      "ccs_ticks_bucket{le=\"1\"} 3\n";
      "ccs_ticks_bucket{le=\"3\"} 4\n";
      "ccs_ticks_bucket{le=\"127\"} 5\n";
      "ccs_ticks_bucket{le=\"+Inf\"} 5\n";
      "ccs_ticks_sum 105\n";
      "ccs_ticks_count 5\n";
    ]

let test_json_snapshot_parses () =
  let t = M.create () in
  let c = M.counter t ~help:"a counter" "ccs_a_total" in
  let h = M.histogram t "ccs_h" in
  M.inc c;
  M.observe h 9;
  match Ccs.Json.of_string (M.to_json_string t) with
  | Error msg -> Alcotest.fail ("snapshot does not parse: " ^ msg)
  | Ok doc -> (
      match Ccs.Json.member "counters" doc with
      | Some (Ccs.Json.List [ _ ]) -> ()
      | _ -> Alcotest.fail "expected one counter in the snapshot")

(* --- histogram invariants (QCheck) ---------------------------------------- *)

let gen_observations =
  QCheck2.Gen.(list_size (int_range 0 200) (int_range (-4) 1_000_000))

let prop_histogram_invariants =
  QCheck2.Test.make ~name:"histogram: buckets partition the observations"
    ~count:200 gen_observations (fun obs ->
      let t = M.create () in
      let h = M.histogram t "ccs_prop" in
      List.iter (M.observe h) obs;
      let buckets = M.histogram_buckets h in
      (* Bucket counts sum to the observation count; sum matches. *)
      List.fold_left ( + ) 0 buckets = List.length obs
      && M.histogram_count h = List.length obs
      && M.histogram_sum h = List.fold_left ( + ) 0 obs
      (* Every observation falls in the bucket whose bounds contain it. *)
      && List.for_all
           (fun v ->
             let k = M.bucket_of v in
             v <= M.bucket_le k && (k = 0 || v > M.bucket_le (k - 1)))
           obs)

(* --- structured log ------------------------------------------------------- *)

let test_log_json_lines () =
  let buf = Buffer.create 256 in
  let log = Ccs.Log.to_buffer buf in
  Ccs.Log.info log "epoch" [ ("epoch", Ccs.Json.Int 1) ];
  Ccs.Log.debug log "invisible" [] (* below threshold *);
  Ccs.Log.warn log "retry" [ ("site", Ccs.Json.String "du\"de") ];
  Alcotest.(check int) "two lines counted" 2 (Ccs.Log.lines log);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "two lines emitted" 2 (List.length lines);
  List.iteri
    (fun i line ->
      match Ccs.Json.of_string line with
      | Error msg -> Alcotest.fail ("line does not parse: " ^ msg)
      | Ok doc ->
          Alcotest.(check (option bool))
            "seq is deterministic" (Some true)
            (Option.map (fun v -> v = Ccs.Json.Int i) (Ccs.Json.member "seq" doc)))
    lines;
  Alcotest.(check bool) "event name present" true
    (contains ~needle:"\"ev\":\"retry\"" (Buffer.contents buf))

(* --- telemetry is free ---------------------------------------------------- *)

let test_metrics_bit_identical () =
  let g = Ccs.Generators.uniform_pipeline ~n:12 ~state:96 () in
  let cfg = Ccs.Config.make ~cache_words:512 ~block_words:16 () in
  let cache = Ccs.Config.cache_config cfg in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  let plan = choice.Ccs.Auto.plan in
  let plain, _ = Ccs.Runner.run ~graph:g ~cache ~plan ~outputs:2000 () in
  let metrics = M.create () in
  let metered, machine =
    Ccs.Runner.run ~metrics ~graph:g ~cache ~plan ~outputs:2000 ()
  in
  Alcotest.(check int) "same misses" plain.Ccs.Runner.misses
    metered.Ccs.Runner.misses;
  Alcotest.(check int) "same accesses" plain.Ccs.Runner.accesses
    metered.Ccs.Runner.accesses;
  Alcotest.(check (option int)) "fires exported"
    (Some (Ccs.Machine.total_fires machine))
    (M.value metrics "ccs_machine_fires_total");
  Alcotest.(check (option int)) "misses exported"
    (Some metered.Ccs.Runner.misses)
    (M.value metrics "ccs_cache_misses")

let test_supervisor_metrics_bit_identical () =
  let g = Ccs.Generators.uniform_pipeline ~n:8 ~state:64 () in
  let cfg = Ccs.Config.make ~cache_words:512 ~block_words:16 () in
  let cache = Ccs.Config.cache_config cfg in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  let plan = choice.Ccs.Auto.plan in
  let supervised ?metrics ?log () =
    match Ccs.Supervisor.run ?metrics ?log ~graph:g ~cache ~plan ~outputs:2000 () with
    | Ok report -> report
    | Error e -> Alcotest.fail (Ccs.Error.to_string e)
  in
  let plain = supervised () in
  let metrics = M.create () in
  let buf = Buffer.create 256 in
  let metered = supervised ~metrics ~log:(Ccs.Log.to_buffer buf) () in
  Alcotest.(check int) "same misses"
    plain.Ccs.Supervisor.result.Ccs.Runner.misses
    metered.Ccs.Supervisor.result.Ccs.Runner.misses;
  Alcotest.(check (option int)) "epochs exported"
    (Some metered.Ccs.Supervisor.epochs)
    (M.value metrics "ccs_supervisor_epochs_total");
  Alcotest.(check bool) "run_start logged" true
    (contains ~needle:"\"ev\":\"run_start\"" (Buffer.contents buf));
  Alcotest.(check bool) "run_end logged" true
    (contains ~needle:"\"ev\":\"run_end\"" (Buffer.contents buf))

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter/gauge basics" `Quick
            test_counter_gauge_basics;
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "kind conflict rejected" `Quick
            test_kind_conflict_rejected;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_escaping;
          Alcotest.test_case "prometheus histogram shape" `Quick
            test_prometheus_histogram_shape;
          Alcotest.test_case "json snapshot parses" `Quick
            test_json_snapshot_parses;
        ] );
      ("histogram", [ QCheck_alcotest.to_alcotest prop_histogram_invariants ]);
      ("log", [ Alcotest.test_case "json lines" `Quick test_log_json_lines ]);
      ( "soundness",
        [
          Alcotest.test_case "runner bit-identical" `Quick
            test_metrics_bit_identical;
          Alcotest.test_case "supervisor bit-identical" `Quick
            test_supervisor_metrics_bit_identical;
        ] );
    ]

(* Checkpoint format and restore semantics: a restored machine must be
   bit-identical to the one that was saved (same future misses, counters,
   outputs), and every kind of file damage — truncation, bit flips, wrong
   magic, version skew — must come back as a structured error, never as
   garbage state. *)

module G = Ccs.Graph
module E = Ccs.Error

let cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ()

let temp_path () = Filename.temp_file "ccs-test" ".ccsckpt"

let setup ?(n = 4) () =
  let g = Ccs.Generators.uniform_pipeline ~n ~state:8 () in
  let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  (g, choice.Ccs.Auto.plan)

let machine_for ?counters ?tracer g plan =
  Ccs.Machine.create ?counters ?tracer ~graph:g ~cache
    ~capacities:plan.Ccs.Plan.capacities ()

let test_machine_persist_roundtrip () =
  let g, plan = setup () in
  let m1 = machine_for g plan in
  plan.Ccs.Plan.drive m1 ~target_outputs:37;
  let p = Ccs.Machine.persist m1 in
  let m2 = machine_for g plan in
  Ccs.Machine.restore m2 p;
  Alcotest.(check int) "total fires" (Ccs.Machine.total_fires m1)
    (Ccs.Machine.total_fires m2);
  Alcotest.(check int) "outputs" (Ccs.Machine.sink_outputs m1)
    (Ccs.Machine.sink_outputs m2);
  List.iter
    (fun e ->
      Alcotest.(check int) "tokens" (Ccs.Machine.tokens m1 e)
        (Ccs.Machine.tokens m2 e);
      Alcotest.(check int) "consumed" (Ccs.Machine.consumed m1 e)
        (Ccs.Machine.consumed m2 e))
    (G.edges g)

let test_machine_restore_shape_mismatch () =
  let g, plan = setup () in
  let g2, plan2 = setup ~n:6 () in
  let m1 = machine_for g plan in
  let m2 = machine_for g2 plan2 in
  Alcotest.check_raises "wrong shape rejected"
    (Invalid_argument
       "Machine.restore: state for 4 nodes / 3 channels does not fit a \
        machine with 6 nodes / 5 channels")
    (fun () -> Ccs.Machine.restore m2 (Ccs.Machine.persist m1))

let test_checkpoint_roundtrip_fields () =
  let g, plan = setup () in
  let m = machine_for g plan in
  plan.Ccs.Plan.drive m ~target_outputs:20;
  let ckpt = Ccs.Checkpoint.capture ~plan_name:"p" ~epoch:3 m in
  let path = temp_path () in
  Ccs.Checkpoint.save ~path ckpt;
  (match Ccs.Checkpoint.load ~path () with
  | Error e -> Alcotest.fail ("load failed: " ^ E.to_string e)
  | Ok back ->
      Alcotest.(check string) "digest" ckpt.Ccs.Checkpoint.graph_digest
        back.Ccs.Checkpoint.graph_digest;
      Alcotest.(check string) "plan name" "p" back.Ccs.Checkpoint.plan_name;
      Alcotest.(check int) "epoch" 3 back.Ccs.Checkpoint.epoch;
      Alcotest.(check bool) "machine state equal" true
        (ckpt.Ccs.Checkpoint.machine = back.Ccs.Checkpoint.machine);
      Alcotest.(check bool) "cache state equal" true
        (ckpt.Ccs.Checkpoint.cache = back.Ccs.Checkpoint.cache));
  Sys.remove path

(* The tentpole invariant, in its single-machine form: run to T1, save,
   run on to T2; separately restore a fresh machine from the file and run
   it to T2.  Both machines must agree on every observable. *)
let test_restore_continues_bit_identically () =
  let g, plan = setup () in
  let c1 = Ccs.Counters.create ~entities:(G.num_nodes g + G.num_edges g) in
  let m1 = machine_for ~counters:c1 g plan in
  plan.Ccs.Plan.drive m1 ~target_outputs:25;
  let path = temp_path () in
  Ccs.Checkpoint.save ~path (Ccs.Checkpoint.capture ~plan_name:"p" ~epoch:1 m1);
  plan.Ccs.Plan.drive m1 ~target_outputs:80;
  let c2 = Ccs.Counters.create ~entities:(G.num_nodes g + G.num_edges g) in
  let m2 = machine_for ~counters:c2 g plan in
  (match Ccs.Checkpoint.load_into ~path m2 with
  | Error e -> Alcotest.fail ("restore failed: " ^ E.to_string e)
  | Ok ckpt -> Alcotest.(check int) "epoch" 1 ckpt.Ccs.Checkpoint.epoch);
  plan.Ccs.Plan.drive m2 ~target_outputs:80;
  Alcotest.(check int) "misses" (Ccs.Machine.misses m1) (Ccs.Machine.misses m2);
  Alcotest.(check int) "accesses"
    (Ccs.Cache.accesses (Ccs.Machine.cache m1))
    (Ccs.Cache.accesses (Ccs.Machine.cache m2));
  Alcotest.(check int) "outputs" (Ccs.Machine.sink_outputs m1)
    (Ccs.Machine.sink_outputs m2);
  Alcotest.(check int) "inputs" (Ccs.Machine.source_inputs m1)
    (Ccs.Machine.source_inputs m2);
  Alcotest.(check bool) "per-entity attribution identical" true
    (Ccs.Counters.dump c1 = Ccs.Counters.dump c2);
  Sys.remove path

let save_ckpt_file () =
  let g, plan = setup () in
  let m = machine_for g plan in
  plan.Ccs.Plan.drive m ~target_outputs:10;
  let path = temp_path () in
  Ccs.Checkpoint.save ~path (Ccs.Checkpoint.capture ~plan_name:"p" ~epoch:1 m);
  path

let expect_code expected = function
  | Ok _ -> Alcotest.fail ("damaged checkpoint accepted (want " ^ expected ^ ")")
  | Error e -> Alcotest.(check string) "error code" expected (E.code e)

let with_bytes path f =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  f b;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_corrupt_bit_flip () =
  let path = save_ckpt_file () in
  (* Flip one payload byte: the checksum must catch it. *)
  with_bytes path (fun b ->
      let i = Bytes.length b - 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40)));
  expect_code "checkpoint-corrupt" (Ccs.Checkpoint.load ~path ());
  Sys.remove path

let test_truncated_file () =
  let path = save_ckpt_file () in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub s 0 (String.length s / 2));
  close_out oc;
  expect_code "checkpoint-corrupt" (Ccs.Checkpoint.load ~path ());
  Sys.remove path

let test_bad_magic () =
  let path = save_ckpt_file () in
  with_bytes path (fun b -> Bytes.blit_string "NOTCKPT!" 0 b 0 8);
  expect_code "checkpoint-corrupt" (Ccs.Checkpoint.load ~path ());
  Sys.remove path

let test_version_skew () =
  (* A well-formed frame with a future version must be refused with the
     versions named, not parsed on hope. *)
  let path = temp_path () in
  Ccs.Binio.write_file ~path ~magic:Ccs.Checkpoint.magic ~version:99 "payload";
  (match Ccs.Checkpoint.load ~path () with
  | Error (E.Checkpoint_version { found; expected; _ }) ->
      Alcotest.(check int) "found" 99 found;
      Alcotest.(check int) "expected" Ccs.Checkpoint.version expected
  | r -> expect_code "checkpoint-version" r);
  Sys.remove path

let test_graph_mismatch () =
  let path = save_ckpt_file () in
  let g2 = Ccs.Generators.uniform_pipeline ~n:4 ~state:16 () in
  let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g2 cfg in
  let m2 = machine_for g2 choice.Ccs.Auto.plan in
  (match Ccs.Checkpoint.load_into ~path m2 with
  | Error (E.Checkpoint_mismatch { field; _ }) ->
      Alcotest.(check string) "field" "graph" field
  | r -> expect_code "checkpoint-mismatch" (Result.map ignore r));
  Sys.remove path

let test_cache_config_mismatch () =
  let path = save_ckpt_file () in
  let g, plan = setup () in
  let other = Ccs.Cache.config ~size_words:512 ~block_words:16 () in
  let m2 =
    Ccs.Machine.create ~graph:g ~cache:other
      ~capacities:plan.Ccs.Plan.capacities ()
  in
  (match Ccs.Checkpoint.load_into ~path m2 with
  | Error (E.Checkpoint_mismatch { field; _ }) ->
      Alcotest.(check string) "field" "cache" field
  | r -> expect_code "checkpoint-mismatch" (Result.map ignore r));
  Sys.remove path

let test_missing_file_io_error () =
  expect_code "io" (Ccs.Checkpoint.load ~path:"/nonexistent/nope.ccsckpt" ())

let () =
  Alcotest.run "checkpoint"
    [
      ( "persistence",
        [
          Alcotest.test_case "machine persist roundtrip" `Quick
            test_machine_persist_roundtrip;
          Alcotest.test_case "machine restore shape mismatch" `Quick
            test_machine_restore_shape_mismatch;
          Alcotest.test_case "checkpoint roundtrip fields" `Quick
            test_checkpoint_roundtrip_fields;
          Alcotest.test_case "restore continues bit-identically" `Quick
            test_restore_continues_bit_identically;
        ] );
      ( "damage",
        [
          Alcotest.test_case "corrupt bit flip" `Quick test_corrupt_bit_flip;
          Alcotest.test_case "truncated file" `Quick test_truncated_file;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "version skew" `Quick test_version_skew;
          Alcotest.test_case "graph mismatch" `Quick test_graph_mismatch;
          Alcotest.test_case "cache config mismatch" `Quick
            test_cache_config_mismatch;
          Alcotest.test_case "missing file" `Quick test_missing_file_io_error;
        ] );
    ]

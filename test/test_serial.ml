(* Tests for graph serialization: DOT export and the round-trippable text
   format. *)

module G = Ccs.Graph
module S = Ccs.Serial

let graphs_equal g1 g2 =
  G.num_nodes g1 = G.num_nodes g2
  && G.num_edges g1 = G.num_edges g2
  && List.for_all
       (fun v ->
         String.equal (G.node_name g1 v) (G.node_name g2 v)
         && G.state g1 v = G.state g2 v)
       (G.nodes g1)
  && List.for_all
       (fun e ->
         G.src g1 e = G.src g2 e
         && G.dst g1 e = G.dst g2 e
         && G.push g1 e = G.push g2 e
         && G.pop g1 e = G.pop g2 e
         && G.delay g1 e = G.delay g2 e)
       (G.edges g1)

let test_roundtrip_pipeline () =
  let g =
    Ccs.Generators.pipeline ~n:5
      ~state:(fun i -> (i * 3) + 1)
      ~rates:(fun i -> (i + 1, i + 2))
      ()
  in
  let g2 = S.parse_exn (S.to_text g) in
  Alcotest.(check bool) "roundtrip equal" true (graphs_equal g g2)

let test_roundtrip_apps () =
  List.iter
    (fun entry ->
      let g = entry.Ccs_apps.Suite.graph () in
      let g2 = S.parse_exn (S.to_text g) in
      Alcotest.(check bool)
        (entry.Ccs_apps.Suite.name ^ " roundtrips")
        true (graphs_equal g g2))
    Ccs_apps.Suite.all

let test_roundtrip_delay () =
  let b = G.Builder.create ~name:"delayed" () in
  let x = G.Builder.add_module b ~state:3 "x" in
  let y = G.Builder.add_module b ~state:4 "y" in
  ignore (G.Builder.add_channel b ~delay:9 ~src:x ~dst:y ~push:2 ~pop:3 ());
  let g = G.Builder.build b in
  let g2 = S.parse_exn (S.to_text g) in
  Alcotest.(check bool) "delay preserved" true (graphs_equal g g2);
  Alcotest.(check int) "delay value" 9 (G.delay g2 0)

let test_parse_name () =
  let g = S.parse_exn "graph myapp\nmodule a 1\nmodule b 2\nchannel a b 1 1\n" in
  Alcotest.(check string) "name" "myapp" (G.name g)

let test_parse_comments_and_blanks () =
  let text =
    "# a comment\n\ngraph x\nmodule a 1   # trailing comment\n\nmodule b 1\n\
     channel a b 1 1\n"
  in
  let g = S.parse_exn text in
  Alcotest.(check int) "nodes" 2 (G.num_nodes g)

let test_parse_errors () =
  let expect_error text =
    match S.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should fail: " ^ text)
  in
  expect_error "module a x\n";
  expect_error "channel a b 1 1\n";
  expect_error "module a 1\nmodule a 2\n";
  expect_error "frobnicate\n";
  expect_error "module a 1\nmodule b 1\nchannel a b 0 1\n";
  expect_error "module a 1\nmodule b 1\nchannel a b 1 1 -2\n";
  (* Parses but builds a cyclic graph. *)
  expect_error
    "module a 1\nmodule b 1\nchannel a b 1 1\nchannel b a 1 1\n"

let test_error_carries_line () =
  match S.parse "module a 1\nbogus line here\n" with
  | Error err ->
      let msg = Ccs.Error.to_string err in
      Alcotest.(check bool) "mentions line 2" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error"

(* --- structured parse errors --------------------------------------------- *)

let expect_code text code =
  match S.parse text with
  | Ok _ -> Alcotest.fail (Printf.sprintf "should fail [%s]: %s" code text)
  | Error err ->
      Alcotest.(check string)
        (Printf.sprintf "error code for %S" text)
        code (Ccs.Error.code err);
      (* Every parse diagnostic must render to something readable. *)
      Alcotest.(check bool) "message nonempty" true
        (String.length (Ccs.Error.to_string err) > 0)

let test_malformed_headers () =
  expect_code "graph\n" "parse";
  expect_code "module a\n" "parse";
  expect_code "module a lots\n" "parse";
  expect_code "frobnicate everything\n" "parse";
  expect_code "channel a b\n" "parse"

let test_duplicate_modules () =
  expect_code "module a 1\nmodule a 2\n" "duplicate-module";
  (match S.parse "module a 1\nmodule b 1\nmodule a 2\n" with
  | Error (Ccs.Error.At_line { line; err = Ccs.Error.Duplicate_module { name } })
    ->
      Alcotest.(check int) "line" 3 line;
      Alcotest.(check string) "name" "a" name
  | _ -> Alcotest.fail "expected At_line Duplicate_module")

let test_unknown_endpoints () =
  expect_code "module a 1\nchannel a nowhere 1 1\n" "unknown-module";
  expect_code "module a 1\nchannel nowhere a 1 1\n" "unknown-module";
  (match S.parse "module a 1\nmodule b 1\nchannel a c 1 1\n" with
  | Error (Ccs.Error.At_line { err = Ccs.Error.Unknown_module { name }; _ }) ->
      Alcotest.(check string) "offender" "c" name
  | _ -> Alcotest.fail "expected Unknown_module")

let test_bad_rates_and_delays () =
  expect_code "module a 1\nmodule b 1\nchannel a b 0 1\n" "nonpositive-rate";
  expect_code "module a 1\nmodule b 1\nchannel a b 1 0\n" "nonpositive-rate";
  expect_code "module a 1\nmodule b 1\nchannel a b -1 1\n" "nonpositive-rate";
  expect_code "module a 1\nmodule b 1\nchannel a b 1 1 -2\n" "negative-delay";
  expect_code "module a -5\n" "negative-state"

let test_truncated_input () =
  (* Inputs cut off mid-line or mid-graph must error, never raise. *)
  expect_code "" "empty-graph";
  expect_code "graph g\n" "empty-graph";
  expect_code "module a 1\nmodule b 1\nchannel a b 1" "parse";
  expect_code "module a 1\nchann" "parse"

let test_deadlock_cycle_structured () =
  match S.parse "module a 1\nmodule b 1\nchannel a b 1 1\nchannel b a 1 1\n" with
  | Error err ->
      Alcotest.(check string) "code" "deadlock-cycle" (Ccs.Error.code err)
  | Ok _ -> Alcotest.fail "cycle must be rejected"

(* --- round-trip property -------------------------------------------------- *)

let gen_graph =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (seed, n) ->
            Ccs.Generators.random_pipeline ~seed ~n:(n + 2) ~max_state:12
              ~max_rate:4 ())
          (pair (int_range 0 10_000) (int_range 2 16));
        map
          (fun (seed, n, extra) ->
            Ccs.Generators.random_sdf_dag ~seed ~n:(n + 2) ~max_state:12
              ~max_rate:4 ~extra_edges:extra ())
          (triple (int_range 0 10_000) (int_range 2 12) (int_range 0 6));
      ])

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (to_text g) = Ok g" ~count:200 gen_graph
    (fun g ->
      match S.parse (S.to_text g) with
      | Error err ->
          QCheck2.Test.fail_reportf "printed graph rejected: %s"
            (Ccs.Error.to_string err)
      | Ok g2 -> graphs_equal g g2)

let test_dot_output () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:5 () in
  let dot = S.to_dot g in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  (* Every node and edge appears. *)
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun v ->
      let needle = Printf.sprintf "n%d " v in
      Alcotest.(check bool) (needle ^ "present") true (contains dot needle))
    (G.nodes g)

let () =
  Alcotest.run "serial"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip pipeline" `Quick
            test_roundtrip_pipeline;
          Alcotest.test_case "roundtrip apps" `Quick test_roundtrip_apps;
          Alcotest.test_case "roundtrip delay" `Quick test_roundtrip_delay;
          Alcotest.test_case "parse name" `Quick test_parse_name;
          Alcotest.test_case "comments and blanks" `Quick
            test_parse_comments_and_blanks;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "error line numbers" `Quick
            test_error_carries_line;
          Alcotest.test_case "malformed headers" `Quick test_malformed_headers;
          Alcotest.test_case "duplicate modules" `Quick test_duplicate_modules;
          Alcotest.test_case "unknown endpoints" `Quick test_unknown_endpoints;
          Alcotest.test_case "bad rates and delays" `Quick
            test_bad_rates_and_delays;
          Alcotest.test_case "truncated input" `Quick test_truncated_input;
          Alcotest.test_case "deadlock cycle structured" `Quick
            test_deadlock_cycle_structured;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]

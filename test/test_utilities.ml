(* Tests for the utility layer added on top of the core reproduction:
   schedule compression, buffer tightening, kernel auto-binding, and the
   partition DOT export. *)

module G = Ccs.Graph
module R = Ccs.Rates
module S = Ccs.Schedule

(* --- Schedule.compress ------------------------------------------------------ *)

let test_compress_rle () =
  let s = S.of_list [ 0; 0; 0; 1; 1 ] in
  let c = S.compress s in
  Alcotest.(check bool) "equivalent" true (S.equivalent s c);
  (match c with
  | S.Seq [ S.Repeat (3, S.Fire 0); S.Repeat (2, S.Fire 1) ] -> ()
  | _ -> Alcotest.failf "unexpected shape: %s" (Format.asprintf "%a" S.pp c));
  Alcotest.(check int) "same length" (S.length s) (S.length c)

let test_compress_flattens () =
  let s = S.seq [ S.seq [ S.fire 0; S.fire 1 ]; S.seq []; S.fire 1 ] in
  let c = S.compress s in
  Alcotest.(check bool) "equivalent" true (S.equivalent s c);
  match c with
  | S.Seq [ S.Fire 0; S.Repeat (2, S.Fire 1) ] -> ()
  | _ -> Alcotest.failf "unexpected shape: %s" (Format.asprintf "%a" S.pp c)

let test_compress_nested_repeats () =
  let s = S.repeat 3 (S.repeat 4 (S.fire 7)) in
  (match S.compress s with
  | S.Repeat (12, S.Fire 7) -> ()
  | c -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" S.pp c));
  (match S.compress (S.repeat 0 (S.fire 1)) with
  | S.Seq [] -> ()
  | c -> Alcotest.failf "zero repeat: %s" (Format.asprintf "%a" S.pp c));
  match S.compress (S.repeat 1 (S.fire 2)) with
  | S.Fire 2 -> ()
  | c -> Alcotest.failf "unit repeat: %s" (Format.asprintf "%a" S.pp c)

let gen_schedule =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then map (fun v -> S.Fire v) (int_range 0 4)
        else
          oneof
            [
              map (fun v -> S.Fire v) (int_range 0 4);
              map (fun l -> S.Seq l) (list_size (int_range 0 4) (self (n / 2)));
              map2
                (fun k b -> S.Repeat (k, b))
                (int_range 0 3) (self (n / 2));
            ]))

let prop_compress_preserves_semantics =
  QCheck2.Test.make ~name:"compress preserves firing sequence" ~count:500
    gen_schedule
    (fun s -> S.equivalent s (S.compress s))

let prop_compress_never_longer =
  QCheck2.Test.make ~name:"compress never increases node count" ~count:500
    gen_schedule
    (fun s ->
      let rec size = function
        | S.Fire _ -> 1
        | S.Seq l -> 1 + List.fold_left (fun a x -> a + size x) 0 l
        | S.Repeat (_, b) -> 1 + size b
      in
      size (S.compress s) <= size s)

(* --- Minbuf.feasible / tighten ---------------------------------------------- *)

let test_feasible_basic () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:2 () in
  let a = R.analyze_exn g in
  Alcotest.(check bool) "capacity 1 feasible" true
    (Ccs.Minbuf.feasible g a ~capacities:[| 1; 1; 1 |]);
  Alcotest.(check bool) "capacity 0 infeasible" false
    (Ccs.Minbuf.feasible g a ~capacities:[| 0; 1; 1 |])

let test_feasible_multirate () =
  (* src -3/2-> sink needs at least 4 tokens of buffer (3 produced, then
     another 3 with 1 left over). *)
  let g =
    Ccs.Generators.pipeline ~n:2 ~state:(fun _ -> 1) ~rates:(fun _ -> (3, 2)) ()
  in
  let a = R.analyze_exn g in
  Alcotest.(check bool) "4 feasible" true
    (Ccs.Minbuf.feasible g a ~capacities:[| 4 |]);
  Alcotest.(check bool) "3 infeasible" false
    (Ccs.Minbuf.feasible g a ~capacities:[| 3 |])

let test_tighten_no_worse () =
  List.iter
    (fun entry ->
      let g = entry.Ccs_apps.Suite.graph () in
      let a = R.analyze_exn g in
      let base = (Ccs.Minbuf.compute g a).Ccs.Minbuf.capacity in
      let tight = Ccs.Minbuf.tighten g a () in
      Array.iteri
        (fun e c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s edge %d no larger" entry.Ccs_apps.Suite.name e)
            true (c <= base.(e)))
        tight;
      Alcotest.(check bool)
        (entry.Ccs_apps.Suite.name ^ " still feasible")
        true
        (Ccs.Minbuf.feasible g a ~capacities:tight))
    Ccs_apps.Suite.all

let test_tighten_reaches_floor () =
  let g = Ccs.Generators.uniform_pipeline ~n:5 ~state:2 () in
  let a = R.analyze_exn g in
  let tight = Ccs.Minbuf.tighten g a ~capacities:[| 50; 50; 50; 50 |] () in
  Alcotest.(check (array int)) "all shrink to 1" [| 1; 1; 1; 1 |] tight

(* --- Kernels.autobind -------------------------------------------------------- *)

let test_autobind_every_app_runs_data () =
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  List.iter
    (fun entry ->
      let g = entry.Ccs_apps.Suite.graph () in
      let program = Ccs.Program.create g (Ccs.Kernels.autobind g) in
      let choice = Ccs.Auto.plan ~dynamic:false g cfg in
      let engine =
        Ccs.Engine.of_plan ~program ~cache:(Ccs.Config.cache_config cfg)
          ~plan:choice.Ccs.Auto.plan ()
      in
      let r = Ccs.Engine.run_plan engine choice.Ccs.Auto.plan ~outputs:50 in
      Alcotest.(check bool)
        (entry.Ccs_apps.Suite.name ^ " ran real data")
        true
        (r.Ccs.Runner.outputs >= 50))
    Ccs_apps.Suite.all

let test_autobind_generators () =
  List.iter
    (fun g ->
      let program = Ccs.Program.create g (Ccs.Kernels.autobind g) in
      let a = R.analyze_exn g in
      let plan = Ccs.Baseline.minimal_memory g a in
      let engine =
        Ccs.Engine.of_plan ~program
          ~cache:(Ccs.Cache.config ~size_words:512 ~block_words:16 ())
          ~plan ()
      in
      let r = Ccs.Engine.run_plan engine plan ~outputs:20 in
      Alcotest.(check bool) "ran" true (r.Ccs.Runner.outputs >= 20))
    [
      Ccs.Generators.butterfly ~stages:3 ~state:8 ();
      Ccs.Generators.random_sdf_dag ~seed:3 ~n:10 ~max_state:8 ~max_rate:4
        ~extra_edges:4 ();
      Ccs.Generators.up_down_sampler ~stages:3 ~factor:4 ~state:8 ();
    ]

(* --- Spec.to_dot -------------------------------------------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_partition_dot () =
  let g = Ccs.Generators.uniform_pipeline ~n:6 ~state:10 () in
  let spec = Ccs.Spec.of_assignment g [| 0; 0; 1; 1; 2; 2 |] in
  let dot = Ccs.Spec.to_dot spec in
  Alcotest.(check bool) "three clusters" true
    (contains dot "cluster_0" && contains dot "cluster_1"
   && contains dot "cluster_2");
  Alcotest.(check bool) "cross edges bold" true (contains dot "style=bold");
  Alcotest.(check bool) "labels carry state" true (contains dot "(10)")

(* --- Clock ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Ccs.Clock.now_us ()) in
  for _ = 1 to 1000 do
    let now = Ccs.Clock.now_us () in
    Alcotest.(check bool) "never goes backwards" true (now >= !prev);
    prev := now
  done

let test_clock_is_wall_time () =
  (* The bug this replaces: Sys.time measures CPU seconds, so a sleeping
     process reported ~zero latency.  Wall-clock time must see the sleep. *)
  let t0 = Ccs.Clock.now_us () in
  Unix.sleepf 0.02;
  let elapsed = Ccs.Clock.elapsed_us ~since:t0 in
  Alcotest.(check bool)
    (Printf.sprintf "sleep visible (elapsed %dus)" elapsed)
    true
    (elapsed >= 10_000)

(* --- Binio.write_atomic ----------------------------------------------------- *)

let test_write_atomic_basic () =
  let dir = Filename.temp_file "ccs-wa" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.txt" in
  Ccs.Binio.write_atomic ~path "first\n";
  Ccs.Binio.write_atomic ~path "second\n";
  Alcotest.(check string)
    "last write wins" "second\n"
    (In_channel.with_open_text path In_channel.input_all);
  Alcotest.(check (list string))
    "no stray temp files" [ "out.txt" ]
    (Array.to_list (Sys.readdir dir))

let test_write_atomic_concurrent_writers () =
  (* The clobber this discipline fixes: two processes writing the same
     path with a fixed "path ^ .tmp" name can interleave create/rename
     and install a torn file.  With unique temp names, every reader sees
     one writer's complete document, and no temp files survive. *)
  let dir = Filename.temp_file "ccs-wa" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "contended.txt" in
  let writers = 4 and rounds = 50 in
  let payload w = String.concat "" (List.init 64 (fun _ -> string_of_int w)) in
  flush stdout;
  flush stderr;
  let spawn w =
    match Unix.fork () with
    | 0 ->
        for _ = 1 to rounds do
          Ccs.Binio.write_atomic ~path (payload w)
        done;
        Unix._exit 0
    | pid -> pid
  in
  let pids = List.init writers spawn in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "writer process failed")
    pids;
  let final = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check bool)
    "final contents are one writer's complete document" true
    (List.exists (fun w -> final = payload w) (List.init writers Fun.id));
  Alcotest.(check (list string))
    "no temp files left behind" [ "contended.txt" ]
    (Array.to_list (Sys.readdir dir))

let () =
  Alcotest.run "utilities"
    [
      ( "compress",
        [
          Alcotest.test_case "rle" `Quick test_compress_rle;
          Alcotest.test_case "flatten" `Quick test_compress_flattens;
          Alcotest.test_case "nested repeats" `Quick
            test_compress_nested_repeats;
          QCheck_alcotest.to_alcotest prop_compress_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_compress_never_longer;
        ] );
      ( "tighten",
        [
          Alcotest.test_case "feasible basic" `Quick test_feasible_basic;
          Alcotest.test_case "feasible multirate" `Quick
            test_feasible_multirate;
          Alcotest.test_case "tighten no worse" `Quick test_tighten_no_worse;
          Alcotest.test_case "tighten floor" `Quick test_tighten_reaches_floor;
        ] );
      ( "autobind",
        [
          Alcotest.test_case "every app runs data" `Slow
            test_autobind_every_app_runs_data;
          Alcotest.test_case "generators run data" `Quick
            test_autobind_generators;
        ] );
      ( "dot",
        [ Alcotest.test_case "partition dot" `Quick test_partition_dot ] );
      ( "clock",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "wall time, not cpu time" `Quick
            test_clock_is_wall_time;
        ] );
      ( "write-atomic",
        [
          Alcotest.test_case "basic" `Quick test_write_atomic_basic;
          Alcotest.test_case "concurrent writers" `Quick
            test_write_atomic_concurrent_writers;
        ] );
    ]

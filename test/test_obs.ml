(* Tests for the observability layer: attribution counters, the event
   tracer, trace export, and the central soundness invariant — per-entity
   misses sum exactly to the machine's aggregate miss counter, and
   attaching no observer leaves the simulation bit-identical. *)

module G = Ccs.Graph
module R = Ccs.Rates

(* --- Counters ------------------------------------------------------------ *)

let test_counters_basics () =
  let c = Ccs.Counters.create ~entities:3 in
  Alcotest.(check int) "entities" 3 (Ccs.Counters.entities c);
  Ccs.Counters.record c 0 ~hit:true;
  Ccs.Counters.record c 0 ~hit:false;
  Ccs.Counters.record c 2 ~hit:false;
  Alcotest.(check int) "accesses 0" 2 (Ccs.Counters.accesses c 0);
  Alcotest.(check int) "misses 0" 1 (Ccs.Counters.misses c 0);
  Alcotest.(check int) "accesses 1" 0 (Ccs.Counters.accesses c 1);
  Alcotest.(check int) "total accesses" 3 (Ccs.Counters.total_accesses c);
  Alcotest.(check int) "total misses" 2 (Ccs.Counters.total_misses c);
  Ccs.Counters.reset c;
  Alcotest.(check int) "reset" 0 (Ccs.Counters.total_accesses c)

let test_counters_rejects_negative () =
  match Ccs.Counters.create ~entities:(-1) with
  | _ -> Alcotest.fail "negative entities must be rejected"
  | exception Invalid_argument _ -> ()

(* --- Tracer -------------------------------------------------------------- *)

let test_tracer_fire_duration () =
  let tr = Ccs.Tracer.create () in
  let h = Ccs.Tracer.begin_fire tr ~node:7 in
  Ccs.Tracer.advance tr 5;
  Ccs.Tracer.end_fire tr h;
  Alcotest.(check int) "one event" 1 (Ccs.Tracer.length tr);
  let e = Ccs.Tracer.get tr 0 in
  Alcotest.(check bool) "kind fire" true (e.Ccs.Tracer.kind = Ccs.Tracer.Fire);
  Alcotest.(check int) "node" 7 e.Ccs.Tracer.id;
  Alcotest.(check int) "ts" 0 e.Ccs.Tracer.ts;
  Alcotest.(check int) "duration patched" 5 e.Ccs.Tracer.arg

let test_tracer_ring_keeps_newest () =
  (* A full buffer overwrites the *oldest* event: the stored window is
     always the most recent [limit] events, and [dropped] counts the
     overwritten ones. *)
  let tr = Ccs.Tracer.create ~limit:2 () in
  Ccs.Tracer.load tr ~owner:0 ~block:0;
  Ccs.Tracer.load tr ~owner:1 ~block:1;
  Ccs.Tracer.load tr ~owner:2 ~block:2;
  Ccs.Tracer.load tr ~owner:3 ~block:3;
  Alcotest.(check int) "stored" 2 (Ccs.Tracer.length tr);
  Alcotest.(check int) "dropped = overwritten" 2 (Ccs.Tracer.dropped tr);
  Alcotest.(check int) "oldest kept is #2" 2 (Ccs.Tracer.get tr 0).Ccs.Tracer.id;
  Alcotest.(check int) "newest kept is #3" 3 (Ccs.Tracer.get tr 1).Ccs.Tracer.id

let test_tracer_zero_limit_refuses () =
  let tr = Ccs.Tracer.create ~limit:0 () in
  Ccs.Tracer.load tr ~owner:0 ~block:0;
  let h = Ccs.Tracer.begin_fire tr ~node:0 in
  Alcotest.(check int) "refused begin_fire handle" (-1) h;
  Ccs.Tracer.end_fire tr h (* must not raise *);
  Alcotest.(check int) "stored" 0 (Ccs.Tracer.length tr);
  Alcotest.(check int) "dropped" 2 (Ccs.Tracer.dropped tr)

let test_tracer_end_fire_across_wraparound () =
  (* A fire handle stays patchable while its event is still in the
     window, even after the buffer wraps past its original slot index. *)
  let tr = Ccs.Tracer.create ~limit:3 () in
  Ccs.Tracer.load tr ~owner:0 ~block:0;
  Ccs.Tracer.load tr ~owner:1 ~block:1;
  let h = Ccs.Tracer.begin_fire tr ~node:9 in
  Ccs.Tracer.load tr ~owner:2 ~block:2 (* overwrites event #0: wrap *);
  Ccs.Tracer.advance tr 7;
  Ccs.Tracer.end_fire tr h;
  (* Window now holds events #1..#3; the fire (#2) sits at index 1. *)
  let fire = Ccs.Tracer.get tr 1 in
  Alcotest.(check bool) "fire survived" true (fire.Ccs.Tracer.kind = Ccs.Tracer.Fire);
  Alcotest.(check int) "duration patched across wrap" 7 fire.Ccs.Tracer.arg;
  (* Push the fire itself out of the window: end_fire on the stale handle
     must be a silent no-op, not a corruption of whatever took its slot. *)
  Ccs.Tracer.load tr ~owner:3 ~block:3;
  Ccs.Tracer.load tr ~owner:4 ~block:4;
  Ccs.Tracer.load tr ~owner:5 ~block:5;
  Ccs.Tracer.advance tr 100;
  Ccs.Tracer.end_fire tr h;
  Ccs.Tracer.iter tr ~f:(fun e ->
      Alcotest.(check bool) "no event corrupted" true
        (e.Ccs.Tracer.kind = Ccs.Tracer.Load && e.Ccs.Tracer.arg < 100))

let test_tracer_monotone_ts () =
  let tr = Ccs.Tracer.create () in
  for i = 0 to 99 do
    let h = Ccs.Tracer.begin_fire tr ~node:i in
    Ccs.Tracer.advance tr (1 + (i mod 3));
    if i mod 2 = 0 then Ccs.Tracer.load tr ~owner:i ~block:i;
    Ccs.Tracer.end_fire tr h
  done;
  let last = ref min_int in
  Ccs.Tracer.iter tr ~f:(fun e ->
      Alcotest.(check bool) "non-decreasing ts" true (e.Ccs.Tracer.ts >= !last);
      last := e.Ccs.Tracer.ts)

(* --- Machine attribution -------------------------------------------------- *)

let machine_setup () =
  let g = Ccs.Generators.uniform_pipeline ~n:12 ~state:96 () in
  let cfg = Ccs.Config.make ~cache_words:512 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  (g, cfg, choice)

let test_attribution_sums_exactly () =
  let g, cfg, choice = machine_setup () in
  let profile =
    Ccs.Profile.run ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ~outputs:2000 ()
  in
  Alcotest.(check int) "misses attributed"
    profile.Ccs.Profile.result.Ccs.Runner.misses
    (Ccs.Profile.attributed_misses profile);
  Alcotest.(check int) "accesses attributed"
    profile.Ccs.Profile.result.Ccs.Runner.accesses
    (Ccs.Profile.attributed_accesses profile)

let test_attribution_sums_on_app_suite () =
  List.iter
    (fun entry ->
      let g = entry.Ccs_apps.Suite.graph () in
      let cfg = Ccs.Config.make ~cache_words:1024 ~block_words:16 () in
      let choice = Ccs.Auto.plan ~dynamic:false g cfg in
      let profile =
        Ccs.Profile.run ~graph:g
          ~cache:(Ccs.Config.cache_config cfg)
          ~plan:choice.Ccs.Auto.plan ~outputs:500 ()
      in
      Alcotest.(check int)
        (entry.Ccs_apps.Suite.name ^ " misses attributed")
        profile.Ccs.Profile.result.Ccs.Runner.misses
        (Ccs.Profile.attributed_misses profile))
    Ccs_apps.Suite.all

let test_disabled_observers_bit_identical () =
  let g, cfg, choice = machine_setup () in
  let cache = Ccs.Config.cache_config cfg in
  let plain, _ =
    Ccs.Runner.run ~graph:g ~cache ~plan:choice.Ccs.Auto.plan ~outputs:2000 ()
  in
  let counters =
    Ccs.Counters.create ~entities:(G.num_nodes g + G.num_edges g)
  in
  let tracer = Ccs.Tracer.create () in
  let observed, _ =
    Ccs.Runner.run ~counters ~tracer ~graph:g ~cache
      ~plan:choice.Ccs.Auto.plan ~outputs:2000 ()
  in
  Alcotest.(check int) "same misses" plain.Ccs.Runner.misses
    observed.Ccs.Runner.misses;
  Alcotest.(check int) "same accesses" plain.Ccs.Runner.accesses
    observed.Ccs.Runner.accesses;
  Alcotest.(check int) "same inputs" plain.Ccs.Runner.inputs
    observed.Ccs.Runner.inputs

let test_load_events_equal_misses () =
  let g, cfg, choice = machine_setup () in
  let profile =
    Ccs.Profile.run ~events:true ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ~outputs:2000 ()
  in
  let tr = Option.get profile.Ccs.Profile.tracer in
  Alcotest.(check int) "no drops" 0 (Ccs.Tracer.dropped tr);
  let loads = ref 0 in
  Ccs.Tracer.iter tr ~f:(fun e ->
      if e.Ccs.Tracer.kind = Ccs.Tracer.Load then incr loads);
  Alcotest.(check int) "loads = misses"
    profile.Ccs.Profile.result.Ccs.Runner.misses !loads

let test_machine_rejects_missized_counters () =
  let g, cfg, choice = machine_setup () in
  let counters = Ccs.Counters.create ~entities:1 in
  match
    Ccs.Machine.create ~counters ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~capacities:choice.Ccs.Auto.plan.Ccs.Plan.capacities ()
  with
  | _ -> Alcotest.fail "missized counters must be rejected"
  | exception Invalid_argument _ -> ()

let test_entity_labels () =
  let g, cfg, choice = machine_setup () in
  let machine =
    Ccs.Machine.create ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~capacities:choice.Ccs.Auto.plan.Ccs.Plan.capacities ()
  in
  Alcotest.(check int) "num entities"
    (G.num_nodes g + G.num_edges g)
    (Ccs.Machine.num_entities machine);
  List.iter
    (fun v ->
      Alcotest.(check string) "state entity label" (G.node_name g v)
        (Ccs.Machine.entity_label machine (Ccs.Machine.entity_of_state machine v)))
    (G.nodes g);
  List.iter
    (fun e ->
      Alcotest.(check string) "buffer entity label" (G.edge_name g e)
        (Ccs.Machine.entity_label machine
           (Ccs.Machine.entity_of_buffer machine e)))
    (G.edges g)

(* --- Trace export --------------------------------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_chrome_export_shape () =
  let g, cfg, choice = machine_setup () in
  let profile =
    Ccs.Profile.run ~events:true ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ~outputs:200 ()
  in
  let json = Ccs.Profile.chrome ~process_name:"test" profile in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle json))
    [
      "\"traceEvents\"";
      "\"displayTimeUnit\"";
      "\"ccs\"";
      "\"attributed_misses\"";
      "\"total_misses\"";
      "\"process_name\"";
      "\"ph\":\"X\"";
      "\"ph\":\"i\"";
    ]

let test_metadata_names_escaped () =
  (* Process/thread names flow into metadata events verbatim from user
     input (graph names, CLI args); quotes and control characters must not
     break the JSON document. *)
  let tr = Ccs.Tracer.create () in
  let h = Ccs.Tracer.begin_fire tr ~node:0 in
  Ccs.Tracer.end_fire tr h;
  let json =
    Ccs.Trace_export.chrome ~process_name:"evil \"proc\"\n"
      ~thread_names:[ (0, "tab\tthread\\") ]
      ~label:(fun _ -> "node")
      ~tid:(fun _ -> 0)
      tr
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ String.escaped needle) true
        (contains ~needle json))
    [ "evil \\\"proc\\\"\\n"; "tab\\tthread\\\\" ];
  Alcotest.(check bool) "no raw newline inside a string" false
    (contains ~needle:"evil \"proc\"" json)

let test_entity_summary_sorted () =
  let g, cfg, choice = machine_setup () in
  let profile =
    Ccs.Profile.run ~graph:g
      ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ~outputs:500 ()
  in
  let rows = Ccs.Profile.per_entity profile in
  Alcotest.(check bool) "nonempty" true (rows <> []);
  let rec check_sorted = function
    | (_, _, m1) :: ((_, _, m2) :: _ as rest) ->
        Alcotest.(check bool) "descending misses" true (m1 >= m2);
        check_sorted rest
    | _ -> ()
  in
  check_sorted rows;
  let sum = List.fold_left (fun acc (_, _, m) -> acc + m) 0 rows in
  Alcotest.(check int) "summary misses sum"
    profile.Ccs.Profile.result.Ccs.Runner.misses sum

(* --- Property: attribution is exact on random graphs ---------------------- *)

let gen_layered =
  QCheck2.Gen.(
    map
      (fun (seed, layers, width) ->
        Ccs.Generators.layered ~seed ~layers ~width
          ~state:(fun k -> 1 + (k mod 7))
          ~edge_prob:0.35 ())
      (triple (int_range 0 10_000) (int_range 1 4) (int_range 1 4)))

let prop_attribution_exact =
  QCheck2.Test.make ~name:"per-entity misses sum exactly to aggregate"
    ~count:60 gen_layered (fun g ->
      let cfg = Ccs.Config.make ~cache_words:256 ~block_words:8 () in
      let choice = Ccs.Auto.plan ~dynamic:false g cfg in
      let profile =
        Ccs.Profile.run ~graph:g
          ~cache:(Ccs.Config.cache_config cfg)
          ~plan:choice.Ccs.Auto.plan ~outputs:200 ()
      in
      Ccs.Profile.attributed_misses profile
      = profile.Ccs.Profile.result.Ccs.Runner.misses
      && Ccs.Profile.attributed_accesses profile
         = profile.Ccs.Profile.result.Ccs.Runner.accesses)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counters_basics;
          Alcotest.test_case "rejects negative" `Quick
            test_counters_rejects_negative;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "fire duration" `Quick test_tracer_fire_duration;
          Alcotest.test_case "ring keeps newest" `Quick
            test_tracer_ring_keeps_newest;
          Alcotest.test_case "zero limit refuses" `Quick
            test_tracer_zero_limit_refuses;
          Alcotest.test_case "end_fire across wraparound" `Quick
            test_tracer_end_fire_across_wraparound;
          Alcotest.test_case "monotone ts" `Quick test_tracer_monotone_ts;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "sums exactly" `Quick test_attribution_sums_exactly;
          Alcotest.test_case "sums on app suite" `Quick
            test_attribution_sums_on_app_suite;
          Alcotest.test_case "disabled observers bit-identical" `Quick
            test_disabled_observers_bit_identical;
          Alcotest.test_case "load events = misses" `Quick
            test_load_events_equal_misses;
          Alcotest.test_case "missized counters rejected" `Quick
            test_machine_rejects_missized_counters;
          Alcotest.test_case "entity labels" `Quick test_entity_labels;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome shape" `Quick test_chrome_export_shape;
          Alcotest.test_case "metadata names escaped" `Quick
            test_metadata_names_escaped;
          Alcotest.test_case "entity summary sorted" `Quick
            test_entity_summary_sorted;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_attribution_exact ] );
    ]

(* Differential suite for the compiled execution backend: for any plan,
   [Compiled] must be bit-identical to the interpreted engine running the
   codegen-semantics kernels — same sink checksums, same output counts —
   and its recorded word-access trace replayed through the cache
   simulator must reproduce the interpreted machine's miss count. *)

module G = Ccs.Graph

let cache = Ccs.Cache.config ~size_words:2048 ~block_words:16 ()
let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 ()

let auto_plan g = (Ccs.Auto.plan ~dynamic:false g cfg).Ccs.Auto.plan

(* Interpreted reference: an engine over a trace-free machine, driven for
   whole periods so both sides do exactly the same firings. *)
let interpreted g plan ~periods =
  let program = Ccs.Program.create g (Ccs.Codegen.codegen_semantics g) in
  let engine = Ccs.Engine.of_plan ~program ~cache ~plan () in
  let m = Ccs.Engine.machine engine in
  let period = Option.get plan.Ccs.Plan.period in
  for _ = 1 to periods do
    Ccs.Schedule.run m period
  done;
  let sinks = G.sinks g in
  let outputs =
    List.fold_left (fun a s -> a + Ccs.Machine.fires m s) 0 sinks
  in
  let checksum =
    List.fold_left (fun a s -> a +. (Ccs.Engine.state engine s).(0)) 0. sinks
  in
  (outputs, checksum, Ccs.Machine.misses m)

let compiled g plan ~periods =
  let l =
    match Ccs.Lowering.lower g ~plan ~cache with
    | Ok l -> l
    | Error (e :: _) -> Alcotest.failf "lowering: %s" (Ccs.Error.to_string e)
    | Error [] -> assert false
  in
  let c = Ccs.Compiled.create ~record_trace:true l in
  Ccs.Compiled.run_periods c periods;
  let misses = Ccs.Replay.misses ~cache (Ccs.Compiled.trace c) in
  (Ccs.Compiled.outputs c, Ccs.Compiled.checksum c, misses)

let bits = Int64.bits_of_float

let differential ?(periods = 3) g plan =
  let i_out, i_sum, i_miss = interpreted g plan ~periods in
  let c_out, c_sum, c_miss = compiled g plan ~periods in
  Alcotest.(check int) "same outputs" i_out c_out;
  Alcotest.(check int64) "bit-identical checksum" (bits i_sum) (bits c_sum);
  Alcotest.(check int) "same replayed misses" i_miss c_miss

(* --- the 12-application suite ------------------------------------- *)

let test_app entry () =
  let g = entry.Ccs_apps.Suite.graph () in
  differential g (auto_plan g)

(* --- random graphs ------------------------------------------------ *)

(* Sinks keep at least one state word so the engine-side checksum stays
   readable through [Engine.state]; other modules may drop to zero state
   (exercising the spill-cell path on sources and interiors). *)
let with_zero_states g =
  let sinks = G.sinks g in
  G.map_state g ~f:(fun v st ->
      if List.mem v sinks then max 1 st else if v mod 2 = 0 then 0 else st)

let gen_case =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* n = int_range 2 8 in
    let* shape = oneofl [ `Pipeline; `Dag ] in
    let* zeros = bool in
    return (seed, n, shape, zeros))

let build_case (seed, n, shape, zeros) =
  let g =
    match shape with
    | `Pipeline ->
        Ccs.Generators.random_pipeline ~seed ~n ~max_state:24 ~max_rate:4 ()
    | `Dag ->
        (* [random_sdf_dag] needs at least 3 modules to draw chords. *)
        Ccs.Generators.random_sdf_dag ~seed ~n:(max 3 n) ~max_state:24
          ~max_rate:3 ~extra_edges:2 ()
  in
  if zeros then with_zero_states g else g

let prop_random_graphs =
  QCheck2.Test.make ~name:"compiled = interpreted on random SDF graphs"
    ~count:60 gen_case (fun case ->
      let g = build_case case in
      let plan = auto_plan g in
      differential ~periods:2 g plan;
      true)

(* --- compiled vs emitted (same lowering, two consumers) ------------ *)

let run_generated code ~periods =
  let path = Filename.temp_file "ccsgen" ".ml" in
  let oc = open_out path in
  output_string oc code;
  close_out oc;
  let out_path = Filename.temp_file "ccsgen" ".out" in
  let rc =
    Sys.command
      (Printf.sprintf "ocaml %s %d > %s 2>/dev/null" (Filename.quote path)
         periods
         (Filename.quote out_path))
  in
  let ic = open_in out_path in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  Sys.remove path;
  Sys.remove out_path;
  if rc <> 0 then Alcotest.failf "generated program exited with %d" rc;
  Scanf.sscanf line "outputs=%d checksum=%f" (fun o c -> (o, c))

let test_emitted_matches_compiled () =
  List.iter
    (fun name ->
      let entry = Option.get (Ccs_apps.Suite.find name) in
      let g = entry.Ccs_apps.Suite.graph () in
      let plan = auto_plan g in
      let periods = 3 in
      let e_out, e_sum =
        run_generated (Ccs.Codegen.emit ~cache g ~plan) ~periods
      in
      let c_out, c_sum, _ = compiled g plan ~periods in
      Alcotest.(check int) (name ^ " outputs") c_out e_out;
      (* The emitted program prints %.6f; compare at that precision. *)
      Alcotest.(check string)
        (name ^ " checksum")
        (Printf.sprintf "%.6f" c_sum)
        (Printf.sprintf "%.6f" e_sum))
    [ "fm-radio"; "bitonic" ]

(* --- compiled runner semantics ------------------------------------ *)

let test_run_to_target () =
  let entry = Option.get (Ccs_apps.Suite.find "fft") in
  let g = entry.Ccs_apps.Suite.graph () in
  let plan = auto_plan g in
  let l =
    match Ccs.Lowering.lower g ~plan ~cache with
    | Ok l -> l
    | Error _ -> Alcotest.fail "lowering failed"
  in
  let c = Ccs.Compiled.create l in
  Ccs.Compiled.run c ~target_outputs:50;
  let got = Ccs.Compiled.outputs c in
  Alcotest.(check bool) "met target" true (got >= 50);
  (* Whole periods only: outputs are a multiple of the period's yield. *)
  Alcotest.(check int) "whole periods" 0
    (got mod l.Ccs.Lowering.period_outputs)

let () =
  let app_cases =
    List.map
      (fun entry ->
        Alcotest.test_case entry.Ccs_apps.Suite.name `Slow (test_app entry))
      Ccs_apps.Suite.all
  in
  Alcotest.run "compiled"
    [
      ("apps-differential", app_cases);
      ("random", [ QCheck_alcotest.to_alcotest prop_random_graphs ]);
      ( "emitted",
        [ Alcotest.test_case "matches compiled" `Slow
            test_emitted_matches_compiled ] );
      ("runner", [ Alcotest.test_case "run to target" `Quick test_run_to_target ]);
    ]

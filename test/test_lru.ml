(* Unit and property tests for the O(1) LRU set. *)

module L = Ccs.Lru

let test_create_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (L.create ~capacity:0))

let test_hit_miss () =
  let l = L.create ~capacity:2 in
  (match L.touch l 1 with
  | `Miss None -> ()
  | _ -> Alcotest.fail "first touch is a non-evicting miss");
  (match L.touch l 1 with
  | `Hit -> ()
  | _ -> Alcotest.fail "second touch is a hit");
  Alcotest.(check int) "size" 1 (L.size l)

let test_eviction_order () =
  let l = L.create ~capacity:3 in
  List.iter (fun k -> ignore (L.touch l k)) [ 1; 2; 3 ];
  (* 1 is the LRU entry. *)
  (match L.touch l 4 with
  | `Miss (Some 1) -> ()
  | `Miss (Some k) -> Alcotest.failf "evicted %d, expected 1" k
  | _ -> Alcotest.fail "expected eviction");
  (* Touch 2 to refresh it; next eviction is 3. *)
  ignore (L.touch l 2);
  match L.touch l 5 with
  | `Miss (Some 3) -> ()
  | _ -> Alcotest.fail "expected 3 evicted"

let test_mru_order () =
  let l = L.create ~capacity:4 in
  List.iter (fun k -> ignore (L.touch l k)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "mru order" [ 4; 3; 2; 1 ]
    (L.to_list_mru_first l);
  ignore (L.touch l 2);
  Alcotest.(check (list int)) "after touch 2" [ 2; 4; 3; 1 ]
    (L.to_list_mru_first l)

let test_mem_no_promote () =
  let l = L.create ~capacity:2 in
  ignore (L.touch l 1);
  ignore (L.touch l 2);
  Alcotest.(check bool) "mem 1" true (L.mem l 1);
  (* mem must not have promoted 1: inserting 3 still evicts 1. *)
  match L.touch l 3 with
  | `Miss (Some 1) -> ()
  | _ -> Alcotest.fail "mem must not update recency"

let test_remove () =
  let l = L.create ~capacity:2 in
  ignore (L.touch l 1);
  ignore (L.touch l 2);
  Alcotest.(check bool) "removed" true (L.remove l 1);
  Alcotest.(check bool) "absent now" false (L.mem l 1);
  Alcotest.(check bool) "remove missing" false (L.remove l 99);
  Alcotest.(check int) "size" 1 (L.size l)

let test_clear () =
  let l = L.create ~capacity:4 in
  List.iter (fun k -> ignore (L.touch l k)) [ 1; 2; 3 ];
  L.clear l;
  Alcotest.(check int) "empty" 0 (L.size l);
  Alcotest.(check bool) "no members" false (L.mem l 2);
  (match L.touch l 7 with
  | `Miss None -> ()
  | _ -> Alcotest.fail "fresh after clear");
  Alcotest.(check (list int)) "list" [ 7 ] (L.to_list_mru_first l)

let test_capacity_one () =
  let l = L.create ~capacity:1 in
  ignore (L.touch l 1);
  (match L.touch l 2 with
  | `Miss (Some 1) -> ()
  | _ -> Alcotest.fail "capacity-1 always evicts");
  Alcotest.(check bool) "only 2" true (L.mem l 2 && not (L.mem l 1))

(* Model-based property test: compare against a naive list model. *)

let model_touch model capacity k =
  if List.mem k model then (`Hit, k :: List.filter (fun x -> x <> k) model)
  else if List.length model >= capacity then
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (last, List.rev acc)
      | x :: rest -> split_last (x :: acc) rest
    in
    let evicted, kept = split_last [] model in
    (`Miss (Some evicted), k :: kept)
  else (`Miss None, k :: model)

let prop_matches_model =
  QCheck2.Test.make ~name:"LRU matches reference model" ~count:300
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_range 0 200) (int_range 0 15)))
    (fun (capacity, keys) ->
      let l = L.create ~capacity in
      let model = ref [] in
      List.for_all
        (fun k ->
          let expected, m' = model_touch !model capacity k in
          model := m';
          let actual = L.touch l k in
          actual = expected && L.to_list_mru_first l = !model)
        keys)

(* Differential test of the array-based implementation against the naive
   model: long seeded random traces, checked access by access for identical
   hit/miss/eviction results and identical recency order, across the
   capacities named in the regression checklist (1, 2, 7, 64). *)

let lcg seed =
  let state = ref (seed lxor 0x5DEECE66D) in
  fun bound ->
    state := ((!state * 0x2545F4914F6CDD1D) + 0x14057B7EF767814F) land max_int;
    !state mod bound

let test_differential_vs_model () =
  List.iter
    (fun capacity ->
      List.iter
        (fun seed ->
          let rand = lcg ((capacity * 7919) + seed) in
          (* Keys from a range ~3x capacity: a healthy mix of hits,
             cold misses and evicting misses. *)
          let key_bound = max 2 (3 * capacity) in
          let l = L.create ~capacity in
          let model = ref [] in
          for step = 1 to 2000 do
            let k = rand key_bound in
            let expected, m' = model_touch !model capacity k in
            model := m';
            let actual = L.touch l k in
            if actual <> expected then
              Alcotest.failf "capacity=%d seed=%d step=%d: result mismatch"
                capacity seed step;
            if L.size l <> List.length !model then
              Alcotest.failf "capacity=%d seed=%d step=%d: size mismatch"
                capacity seed step
          done;
          Alcotest.(check (list int))
            (Printf.sprintf "capacity=%d seed=%d final recency order" capacity
               seed)
            !model (L.to_list_mru_first l))
        [ 1; 2; 3 ])
    [ 1; 2; 7; 64 ]

let test_touch_hit_agrees_with_touch () =
  (* The allocation-free fast path must be observationally identical to
     [touch] modulo the eviction payload. *)
  List.iter
    (fun capacity ->
      let rand = lcg (capacity + 17) in
      let a = L.create ~capacity and b = L.create ~capacity in
      for step = 1 to 2000 do
        let k = rand (max 2 (3 * capacity)) in
        let ha = L.touch_hit a k in
        let hb = match L.touch b k with `Hit -> true | `Miss _ -> false in
        if ha <> hb then
          Alcotest.failf "capacity=%d step=%d: touch_hit disagrees" capacity
            step
      done;
      Alcotest.(check (list int))
        (Printf.sprintf "capacity=%d same recency order" capacity)
        (L.to_list_mru_first b) (L.to_list_mru_first a))
    [ 1; 2; 7; 64 ]

let test_negative_and_zero_keys () =
  (* The open-addressed table must not reserve any key value. *)
  let l = L.create ~capacity:3 in
  List.iter (fun k -> ignore (L.touch l k)) [ 0; -1; min_int ];
  Alcotest.(check (list int)) "all present" [ min_int; -1; 0 ]
    (L.to_list_mru_first l);
  (match L.touch l 5 with
  | `Miss (Some 0) -> ()
  | _ -> Alcotest.fail "0 was LRU");
  Alcotest.(check bool) "min_int member" true (L.mem l min_int);
  Alcotest.(check bool) "removed" true (L.remove l min_int);
  Alcotest.(check bool) "gone" false (L.mem l min_int)

let test_remove_interleaved () =
  (* remove must recycle slots correctly: hammer touch/remove cycles well
     past capacity so every slot goes through the free list repeatedly. *)
  let capacity = 7 in
  let l = L.create ~capacity in
  let rand = lcg 42 in
  let model = ref [] in
  for step = 1 to 3000 do
    let k = rand 20 in
    if rand 4 = 0 then begin
      let expected = List.mem k !model in
      model := List.filter (fun x -> x <> k) !model;
      if L.remove l k <> expected then
        Alcotest.failf "step=%d: remove mismatch" step
    end
    else begin
      let expected, m' = model_touch !model capacity k in
      model := m';
      if L.touch l k <> expected then
        Alcotest.failf "step=%d: touch mismatch" step
    end
  done;
  Alcotest.(check (list int)) "final order" !model (L.to_list_mru_first l)

let prop_size_bounded =
  QCheck2.Test.make ~name:"size never exceeds capacity" ~count:300
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_range 0 100) (int_range 0 50)))
    (fun (capacity, keys) ->
      let l = L.create ~capacity in
      List.for_all
        (fun k ->
          ignore (L.touch l k);
          L.size l <= capacity)
        keys)

let () =
  Alcotest.run "lru"
    [
      ( "unit",
        [
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "hit/miss" `Quick test_hit_miss;
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "mru order" `Quick test_mru_order;
          Alcotest.test_case "mem no promote" `Quick test_mem_no_promote;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
          Alcotest.test_case "negative and zero keys" `Quick
            test_negative_and_zero_keys;
        ] );
      ( "differential",
        [
          Alcotest.test_case "seeded traces vs model (cap 1,2,7,64)" `Quick
            test_differential_vs_model;
          Alcotest.test_case "touch_hit agrees with touch" `Quick
            test_touch_hit_agrees_with_touch;
          Alcotest.test_case "remove interleaved" `Quick
            test_remove_interleaved;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_model; prop_size_bounded ] );
    ]

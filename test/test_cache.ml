(* Tests for the DAM-model cache simulator, including the classic
   replacement-policy behaviours and Belady's OPT. *)

module C = Ccs.Cache

let lru_cache ~size ~block =
  C.create (C.config ~size_words:size ~block_words:block ())

let test_config_validation () =
  Alcotest.check_raises "zero block"
    (Invalid_argument "Cache.config: block_words must be > 0") (fun () ->
      ignore (C.config ~size_words:8 ~block_words:0 ()));
  Alcotest.check_raises "block > size"
    (Invalid_argument "Cache.config: size_words must be >= block_words")
    (fun () -> ignore (C.config ~size_words:4 ~block_words:8 ()))

let test_geometry () =
  let c = lru_cache ~size:64 ~block:8 in
  Alcotest.(check int) "size" 64 (C.size_words c);
  Alcotest.(check int) "block" 8 (C.block_words c);
  Alcotest.(check int) "blocks" 8 (C.num_blocks c)

let test_block_granularity () =
  let c = lru_cache ~size:64 ~block:8 in
  Alcotest.(check bool) "cold miss" false (C.touch c 0);
  (* Any word in the same block now hits. *)
  Alcotest.(check bool) "same block hits" true (C.touch c 7);
  Alcotest.(check bool) "next block misses" false (C.touch c 8);
  Alcotest.(check int) "misses" 2 (C.misses c);
  Alcotest.(check int) "hits" 1 (C.hits c);
  Alcotest.(check int) "accesses" 3 (C.accesses c)

let test_lru_eviction () =
  (* 2-block cache: touching 3 distinct blocks cyclically always misses. *)
  let c = lru_cache ~size:16 ~block:8 in
  for _ = 1 to 3 do
    List.iter (fun a -> ignore (C.touch c a)) [ 0; 8; 16 ]
  done;
  Alcotest.(check int) "cyclic thrash: all 9 miss" 9 (C.misses c)

let test_working_set_fits () =
  let c = lru_cache ~size:32 ~block:8 in
  for _ = 1 to 10 do
    List.iter (fun a -> ignore (C.touch c a)) [ 0; 8; 16; 24 ]
  done;
  Alcotest.(check int) "only cold misses" 4 (C.misses c);
  Alcotest.(check int) "rest hit" 36 (C.hits c)

let test_cached_no_side_effect () =
  let c = lru_cache ~size:16 ~block:8 in
  ignore (C.touch c 0);
  let misses_before = C.misses c in
  Alcotest.(check bool) "cached" true (C.cached c 3);
  Alcotest.(check bool) "not cached" false (C.cached c 8);
  Alcotest.(check int) "no accounting" misses_before (C.misses c)

let test_flush () =
  let c = lru_cache ~size:16 ~block:8 in
  ignore (C.touch c 0);
  C.flush c;
  Alcotest.(check bool) "gone after flush" false (C.cached c 0);
  Alcotest.(check int) "flush counted" 1 (C.flushes c);
  Alcotest.(check bool) "re-touch misses" false (C.touch c 0)

let test_reset_stats () =
  let c = lru_cache ~size:16 ~block:8 in
  ignore (C.touch c 0);
  C.reset_stats c;
  Alcotest.(check int) "misses zero" 0 (C.misses c);
  Alcotest.(check int) "accesses zero" 0 (C.accesses c);
  Alcotest.(check bool) "contents kept" true (C.cached c 0)

let test_touch_range () =
  let c = lru_cache ~size:64 ~block:8 in
  C.touch_range c ~addr:0 ~len:24;
  Alcotest.(check int) "3 blocks missed" 3 (C.misses c);
  C.touch_range c ~addr:4 ~len:8;
  (* Spans blocks 0 and 1, both resident. *)
  Alcotest.(check int) "no new misses" 3 (C.misses c);
  C.touch_range c ~addr:0 ~len:0;
  Alcotest.(check int) "empty range free" 3 (C.misses c)

let test_direct_mapped_conflict () =
  (* Direct-mapped with 2 blocks: blocks 0 and 2 map to set 0 and conflict
     even though the cache could hold both. *)
  let c =
    C.create
      (C.config ~policy:C.Direct_mapped ~size_words:16 ~block_words:8 ())
  in
  ignore (C.touch c 0);
  ignore (C.touch c 16);
  ignore (C.touch c 0);
  Alcotest.(check int) "conflict misses" 3 (C.misses c);
  (* Fully-associative LRU of the same size has no conflict. *)
  let c' = lru_cache ~size:16 ~block:8 in
  ignore (C.touch c' 0);
  ignore (C.touch c' 16);
  ignore (C.touch c' 0);
  Alcotest.(check int) "no conflict in LRU" 2 (C.misses c')

let test_set_assoc_capacity_non_dividing () =
  (* Regression: when [ways] does not divide [nblocks], the set count used
     to round *down*, silently dropping up to [ways-1] blocks of modeled
     capacity (33 blocks / 4 ways modeled 32 — and 3 blocks / 2 ways
     modeled 2 in a single set).  The last set now shrinks instead, so the
     total modeled capacity is exactly [nblocks]. *)
  List.iter
    (fun (nblocks, ways) ->
      let c =
        C.create
          (C.config ~policy:(C.Set_associative ways)
             ~size_words:(nblocks * 8) ~block_words:8 ())
      in
      Alcotest.(check int)
        (Printf.sprintf "capacity %d blocks / %d ways" nblocks ways)
        nblocks (C.engine_capacity c);
      Alcotest.(check int)
        (Printf.sprintf "sets %d blocks / %d ways" nblocks ways)
        ((nblocks + ways - 1) / ways)
        (C.num_sets c))
    [ (33, 4); (3, 2); (5, 2); (7, 3); (8, 4); (1, 4) ]

let test_set_assoc_no_lost_way () =
  (* Behavioral form of the same bug: 3 blocks, 2-way.  The rounded-down
     engine had one 2-way set for all three blocks and thrashed; with the
     full 3 blocks of capacity the working set {0,1,2} fits (blocks 0,2 in
     set 0, block 1 in the shrunken set 1) and only cold-misses. *)
  let c =
    C.create
      (C.config ~policy:(C.Set_associative 2) ~size_words:24 ~block_words:8 ())
  in
  for _ = 1 to 5 do
    List.iter (fun a -> ignore (C.touch c a)) [ 0; 8; 16 ]
  done;
  Alcotest.(check int) "only cold misses" 3 (C.misses c);
  Alcotest.(check int) "rest hit" 12 (C.hits c)

let test_set_associative () =
  (* 4 blocks, 2-way: 2 sets.  Blocks 0,2,4 all map to set 0; 2-way holds
     two of them. *)
  let c =
    C.create
      (C.config ~policy:(C.Set_associative 2) ~size_words:32 ~block_words:8 ())
  in
  ignore (C.touch c 0);   (* block 0, set 0: miss *)
  ignore (C.touch c 16);  (* block 2, set 0: miss *)
  ignore (C.touch c 0);   (* hit *)
  ignore (C.touch c 32);  (* block 4, set 0: miss, evicts block 2 (LRU) *)
  ignore (C.touch c 0);   (* still resident *)
  ignore (C.touch c 16);  (* miss again *)
  Alcotest.(check int) "misses" 4 (C.misses c);
  Alcotest.(check int) "hits" 2 (C.hits c)

(* --- Belady OPT ---------------------------------------------------------- *)

let test_opt_simple () =
  (* Classic example: trace a b c a b with capacity 2.
     OPT: a(m) b(m) c(m, evict whichever not needed soonest...) *)
  let trace = [| 0; 1; 2; 0; 1 |] in
  (* OPT with capacity 2: a miss, b miss, c miss (evict c's best victim =
     the block with farthest next use; a is used at 3, b at 4, c never
     again... c is being inserted; evict b (next use 4 > a's 3)), a hit,
     b miss => 4 misses.  *)
  Alcotest.(check int) "opt misses" 4
    (C.Opt.misses ~block_capacity:2 trace)

let test_opt_beats_lru () =
  (* Cyclic scan of 3 blocks with capacity 2: LRU misses everything (9);
     OPT keeps one block stable and misses only 5. *)
  let trace = [| 0; 1; 2; 0; 1; 2; 0; 1; 2 |] in
  let opt = C.Opt.misses ~block_capacity:2 trace in
  let c = lru_cache ~size:16 ~block:8 in
  Array.iter (fun b -> ignore (C.touch c (b * 8))) trace;
  Alcotest.(check int) "lru thrash" 9 (C.misses c);
  Alcotest.(check bool) "opt strictly better" true (opt < 9);
  (* By hand: misses at positions 0,1,2 (cold), then alternating hits and
     misses — 6 in total. *)
  Alcotest.(check int) "opt value" 6 opt

let test_opt_all_distinct () =
  let trace = Array.init 10 Fun.id in
  Alcotest.(check int) "all cold" 10 (C.Opt.misses ~block_capacity:4 trace)

let test_opt_repeated_single () =
  let trace = Array.make 100 7 in
  Alcotest.(check int) "one cold miss" 1 (C.Opt.misses ~block_capacity:1 trace)

let test_block_trace () =
  Alcotest.(check (array int)) "word->block" [| 0; 0; 1; 2 |]
    (C.Opt.block_trace ~block_words:8 [| 0; 7; 8; 23 |])

let test_opt_heap_bounded () =
  (* Regression: the miss path used to push its heap entry twice (once in
     the insert branch, once in the unconditional post-access update), so
     an all-miss trace grew the heap to 2n.  Exactly one push per access
     bounds the peak by the trace length. *)
  let all_miss = Array.init 500 Fun.id in
  let s = C.Opt.misses_stats ~block_capacity:4 all_miss in
  Alcotest.(check int) "all cold" 500 s.C.Opt.misses;
  Alcotest.(check bool)
    (Printf.sprintf "peak heap %d <= 500 accesses" s.C.Opt.peak_heap)
    true
    (s.C.Opt.peak_heap <= 500);
  (* A hit-heavy trace must respect the same bound. *)
  let cyclic = Array.init 600 (fun i -> i mod 3) in
  let s = C.Opt.misses_stats ~block_capacity:4 cyclic in
  Alcotest.(check int) "3 cold misses" 3 s.C.Opt.misses;
  Alcotest.(check bool) "peak heap bounded" true (s.C.Opt.peak_heap <= 600)

let prop_opt_heap_bounded =
  QCheck2.Test.make ~name:"OPT heap length <= accesses" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 6) (array_size (int_range 1 400) (int_range 0 12)))
    (fun (cap, blocks) ->
      let s = C.Opt.misses_stats ~block_capacity:cap blocks in
      s.C.Opt.peak_heap <= Array.length blocks)

let prop_opt_lower_bounds_lru =
  (* Belady is optimal: for any trace, OPT <= LRU at equal capacity. *)
  QCheck2.Test.make ~name:"OPT <= LRU on random traces" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 6) (array_size (int_range 1 300) (int_range 0 12)))
    (fun (cap_blocks, blocks) ->
      let opt = C.Opt.misses ~block_capacity:cap_blocks blocks in
      let c = lru_cache ~size:(cap_blocks * 8) ~block:8 in
      Array.iter (fun b -> ignore (C.touch c (b * 8))) blocks;
      opt <= C.misses c)

let prop_lru_augmented_competitive =
  (* Sleator-Tarjan: LRU with 2k capacity misses at most 2x OPT with k
     (plus k cold misses).  Check the inequality with slack. *)
  QCheck2.Test.make ~name:"LRU(2k) <= 2*OPT(k) + k" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 4) (array_size (int_range 1 400) (int_range 0 10)))
    (fun (k, blocks) ->
      let opt = C.Opt.misses ~block_capacity:k blocks in
      let c = lru_cache ~size:(2 * k * 8) ~block:8 in
      Array.iter (fun b -> ignore (C.touch c (b * 8))) blocks;
      C.misses c <= (2 * opt) + (2 * k))

let () =
  Alcotest.run "cache"
    [
      ( "unit",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "block granularity" `Quick test_block_granularity;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "working set fits" `Quick test_working_set_fits;
          Alcotest.test_case "cached no side effect" `Quick
            test_cached_no_side_effect;
          Alcotest.test_case "flush" `Quick test_flush;
          Alcotest.test_case "reset stats" `Quick test_reset_stats;
          Alcotest.test_case "touch_range" `Quick test_touch_range;
          Alcotest.test_case "direct-mapped conflicts" `Quick
            test_direct_mapped_conflict;
          Alcotest.test_case "set-associative" `Quick test_set_associative;
          Alcotest.test_case "set-assoc capacity (ways does not divide)"
            `Quick test_set_assoc_capacity_non_dividing;
          Alcotest.test_case "set-assoc no lost way" `Quick
            test_set_assoc_no_lost_way;
        ] );
      ( "opt",
        [
          Alcotest.test_case "opt simple" `Quick test_opt_simple;
          Alcotest.test_case "opt beats lru" `Quick test_opt_beats_lru;
          Alcotest.test_case "all distinct" `Quick test_opt_all_distinct;
          Alcotest.test_case "repeated single" `Quick test_opt_repeated_single;
          Alcotest.test_case "block trace" `Quick test_block_trace;
          Alcotest.test_case "heap bounded" `Quick test_opt_heap_bounded;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_opt_lower_bounds_lru;
            prop_lru_augmented_competitive;
            prop_opt_heap_bounded;
          ] );
    ]

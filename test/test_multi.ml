(* Tests for the multiprocessor extension: LPT assignment and the
   private-cache placement simulator. *)

module G = Ccs.Graph
module R = Ccs.Rates
module Sp = Ccs.Spec

let setup () =
  let g = Ccs.Generators.uniform_pipeline ~n:16 ~state:64 () in
  let a = R.analyze_exn g in
  let spec = Ccs.Pipeline_partition.optimal_dp g a ~bound:128 in
  (g, a, spec)

let test_lpt_assigns_everything () =
  let g, a, spec = setup () in
  let assign = Ccs.Assign.lpt g a spec ~processors:3 in
  Alcotest.(check int) "every component placed"
    (Sp.num_components spec)
    (Array.length assign.Ccs.Assign.processor_of_component);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "valid processor" true (p >= 0 && p < 3))
    assign.Ccs.Assign.processor_of_component

let test_lpt_single_processor () =
  let g, a, spec = setup () in
  let assign = Ccs.Assign.lpt g a spec ~processors:1 in
  Alcotest.(check (float 1e-9)) "imbalance 1" 1. (Ccs.Assign.imbalance assign)

let test_lpt_load_conserved () =
  let g, a, spec = setup () in
  let total p =
    let assign = Ccs.Assign.lpt g a spec ~processors:p in
    Array.fold_left ( +. ) 0. assign.Ccs.Assign.load
  in
  Alcotest.(check (float 1e-6)) "same total load" (total 1) (total 4)

let test_lpt_balance_reasonable () =
  (* 8 equal components on 4 processors: LPT is perfectly balanced. *)
  let g = Ccs.Generators.uniform_pipeline ~n:16 ~state:64 () in
  let a = R.analyze_exn g in
  let spec = Sp.of_assignment g (Array.init 16 (fun v -> v / 2)) in
  let assign = Ccs.Assign.lpt g a spec ~processors:4 in
  Alcotest.(check bool) "near-perfect balance" true
    (Ccs.Assign.imbalance assign < 1.01)

let test_lpt_rejects_zero () =
  let g, a, spec = setup () in
  Alcotest.check_raises "0 processors"
    (Invalid_argument "Assign.lpt: processors must be >= 1") (fun () ->
      ignore (Ccs.Assign.lpt g a spec ~processors:0))

let test_component_load_positive () =
  let g, a, spec = setup () in
  for c = 0 to Sp.num_components spec - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "component %d load > 0" c)
      true
      (Ccs.Assign.component_load g a spec c > 0.)
  done

let run_multi g a spec ~processors =
  let assign = Ccs.Assign.lpt g a spec ~processors in
  let cfg =
    {
      Ccs.Multi_machine.processors;
      cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ();
      miss_penalty = 16.;
    }
  in
  Ccs.Multi_machine.run g a spec assign
    ~t:(R.granularity g a ~at_least:256)
    ~batches:4 cfg

let test_single_processor_equals_uniprocessor () =
  let g, a, spec = setup () in
  let r = run_multi g a spec ~processors:1 in
  (* With P=1 the multiprocessor run IS the uniprocessor run. *)
  Alcotest.(check (float 1e-9)) "speedup 1" 1. r.Ccs.Multi_machine.speedup;
  Alcotest.(check int) "same misses" r.Ccs.Multi_machine.total_misses
    r.Ccs.Multi_machine.per_processor_misses.(0)

let test_speedup_grows () =
  let g, a, spec = setup () in
  let r1 = run_multi g a spec ~processors:1 in
  let r4 = run_multi g a spec ~processors:4 in
  Alcotest.(check bool)
    (Printf.sprintf "P=4 speedup %.2f > 2" r4.Ccs.Multi_machine.speedup)
    true
    (r4.Ccs.Multi_machine.speedup > 2.);
  Alcotest.(check bool) "makespan shrinks" true
    (r4.Ccs.Multi_machine.makespan < r1.Ccs.Multi_machine.makespan)

let test_inputs_counted () =
  let g, a, spec = setup () in
  let r = run_multi g a spec ~processors:2 in
  Alcotest.(check int) "inputs = batches * T" (4 * 256)
    r.Ccs.Multi_machine.inputs

let test_mismatched_processors_rejected () =
  let g, a, spec = setup () in
  let assign = Ccs.Assign.lpt g a spec ~processors:2 in
  let cfg =
    {
      Ccs.Multi_machine.processors = 3;
      cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ();
      miss_penalty = 16.;
    }
  in
  match
    Ccs.Multi_machine.run g a spec assign ~t:256 ~batches:1 cfg
  with
  | _ -> Alcotest.fail "mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_work_conserved_across_processors () =
  let g, a, spec = setup () in
  let r1 = run_multi g a spec ~processors:1 in
  let r4 = run_multi g a spec ~processors:4 in
  let total r =
    Array.fold_left ( +. ) 0. r.Ccs.Multi_machine.per_processor_work
  in
  Alcotest.(check (float 1e-6)) "same total work" (total r1) (total r4)

let test_aperiodic_plan_structured_error () =
  (* Regression: an aperiodic (dynamic) plan used to trip [assert false]
     deep in the run loop; it must come back as a structured
     [Plan_invalid] naming the plan. *)
  let g, a, spec = setup () in
  let assign = Ccs.Assign.lpt g a spec ~processors:2 in
  let cfg =
    {
      Ccs.Multi_machine.processors = 2;
      cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ();
      miss_penalty = 16.;
    }
  in
  let plan = Ccs.Partitioned.pipeline_dynamic g a spec ~m_tokens:64 in
  match
    Ccs.Multi_machine.run_plan g a spec assign ~plan ~batches:1 cfg
  with
  | _ -> Alcotest.fail "aperiodic plan must be rejected"
  | exception Ccs.Error.Error (Ccs.Error.Plan_invalid { plan = name; _ }) ->
      Alcotest.(check string) "names the plan" plan.Ccs.Plan.name name

let test_multi_attribution_sums () =
  let g, a, spec = setup () in
  let assign = Ccs.Assign.lpt g a spec ~processors:3 in
  let cfg =
    {
      Ccs.Multi_machine.processors = 3;
      cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ();
      miss_penalty = 16.;
    }
  in
  let counters =
    Ccs.Counters.create ~entities:(G.num_nodes g + G.num_edges g)
  in
  let tracer = Ccs.Tracer.create () in
  let r =
    Ccs.Multi_machine.run ~counters ~tracer g a spec assign
      ~t:(R.granularity g a ~at_least:256)
      ~batches:4 cfg
  in
  (* Every private-cache miss has exactly one owner; the uniprocessor
     shadow run is unobserved, so the counters match the parallel total. *)
  Alcotest.(check int) "attributed = total misses"
    r.Ccs.Multi_machine.total_misses
    (Ccs.Counters.total_misses counters);
  let loads = ref 0 in
  Ccs.Tracer.iter tracer ~f:(fun e ->
      if e.Ccs.Tracer.kind = Ccs.Tracer.Load then incr loads);
  Alcotest.(check int) "load events = total misses"
    r.Ccs.Multi_machine.total_misses !loads

let test_multi_observers_leave_result_unchanged () =
  let g, a, spec = setup () in
  let plain = run_multi g a spec ~processors:4 in
  let counters =
    Ccs.Counters.create ~entities:(G.num_nodes g + G.num_edges g)
  in
  let assign = Ccs.Assign.lpt g a spec ~processors:4 in
  let cfg =
    {
      Ccs.Multi_machine.processors = 4;
      cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ();
      miss_penalty = 16.;
    }
  in
  let observed =
    Ccs.Multi_machine.run ~counters g a spec assign
      ~t:(R.granularity g a ~at_least:256)
      ~batches:4 cfg
  in
  Alcotest.(check int) "same misses" plain.Ccs.Multi_machine.total_misses
    observed.Ccs.Multi_machine.total_misses;
  Alcotest.(check (float 1e-9)) "same makespan"
    plain.Ccs.Multi_machine.makespan observed.Ccs.Multi_machine.makespan

(* --- session save/load ------------------------------------------------------ *)

let session_setup ~processors =
  let g, a, spec = setup () in
  let assign = Ccs.Assign.lpt g a spec ~processors in
  let cfg =
    {
      Ccs.Multi_machine.processors;
      cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ();
      miss_penalty = 16.;
    }
  in
  let plan =
    Ccs.Partitioned.batch g a spec ~t:(R.granularity g a ~at_least:256)
  in
  (g, a, spec, assign, plan, cfg)

let temp_snap () = Filename.temp_file "ccs-test-multi" ".ccsmsnap"

let test_session_save_load_bit_identical () =
  let g, a, spec, assign, plan, cfg = session_setup ~processors:3 in
  (* Uninterrupted reference: 6 batches straight through. *)
  let s_ref = Ccs.Multi_machine.create_session g a spec assign ~plan cfg in
  Ccs.Multi_machine.run_batches s_ref 6;
  let r_ref = Ccs.Multi_machine.result s_ref in
  (* Killed + resumed: 2 batches, snapshot, fresh session, restore, 4 more. *)
  let s1 = Ccs.Multi_machine.create_session g a spec assign ~plan cfg in
  Ccs.Multi_machine.run_batches s1 2;
  let path = temp_snap () in
  Ccs.Multi_machine.save_session ~path s1;
  let s2 = Ccs.Multi_machine.create_session g a spec assign ~plan cfg in
  (match Ccs.Multi_machine.load_session ~path s2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("load failed: " ^ Ccs.Error.to_string e));
  Alcotest.(check int) "batches restored" 2 (Ccs.Multi_machine.batches_done s2);
  Ccs.Multi_machine.run_batches s2 4;
  let r2 = Ccs.Multi_machine.result s2 in
  Alcotest.(check int) "same total misses" r_ref.Ccs.Multi_machine.total_misses
    r2.Ccs.Multi_machine.total_misses;
  Alcotest.(check int) "same inputs" r_ref.Ccs.Multi_machine.inputs
    r2.Ccs.Multi_machine.inputs;
  Array.iteri
    (fun p m ->
      Alcotest.(check int)
        (Printf.sprintf "processor %d misses" p)
        m
        r2.Ccs.Multi_machine.per_processor_misses.(p))
    r_ref.Ccs.Multi_machine.per_processor_misses;
  Alcotest.(check (float 1e-9)) "same makespan"
    r_ref.Ccs.Multi_machine.makespan r2.Ccs.Multi_machine.makespan;
  Sys.remove path

let test_session_load_mismatch_rejected () =
  let g, a, spec, assign, plan, cfg = session_setup ~processors:3 in
  let s1 = Ccs.Multi_machine.create_session g a spec assign ~plan cfg in
  Ccs.Multi_machine.run_batches s1 1;
  let path = temp_snap () in
  Ccs.Multi_machine.save_session ~path s1;
  (* Same graph and plan, different processor count: must be refused. *)
  let assign2 = Ccs.Assign.lpt g a spec ~processors:2 in
  let cfg2 = { cfg with Ccs.Multi_machine.processors = 2 } in
  let s2 = Ccs.Multi_machine.create_session g a spec assign2 ~plan cfg2 in
  (match Ccs.Multi_machine.load_session ~path s2 with
  | Ok () -> Alcotest.fail "processor-count mismatch accepted"
  | Error (Ccs.Error.Checkpoint_mismatch { field; _ }) ->
      Alcotest.(check string) "field" "processors" field
  | Error e ->
      Alcotest.fail ("expected Checkpoint_mismatch, got " ^ Ccs.Error.to_string e));
  (* Different private cache size: also refused. *)
  let cfg3 =
    {
      cfg with
      Ccs.Multi_machine.cache =
        Ccs.Cache.config ~size_words:512 ~block_words:16 ();
    }
  in
  let s3 = Ccs.Multi_machine.create_session g a spec assign ~plan cfg3 in
  (match Ccs.Multi_machine.load_session ~path s3 with
  | Ok () -> Alcotest.fail "cache-config mismatch accepted"
  | Error (Ccs.Error.Checkpoint_mismatch { field; _ }) ->
      Alcotest.(check string) "field" "cache.size_words" field
  | Error e ->
      Alcotest.fail ("expected Checkpoint_mismatch, got " ^ Ccs.Error.to_string e));
  Sys.remove path

let test_session_restores_observers () =
  let g, a, spec, assign, plan, cfg = session_setup ~processors:2 in
  let entities = G.num_nodes g + G.num_edges g in
  let c_ref = Ccs.Counters.create ~entities in
  let s_ref =
    Ccs.Multi_machine.create_session ~counters:c_ref g a spec assign ~plan cfg
  in
  Ccs.Multi_machine.run_batches s_ref 4;
  let c1 = Ccs.Counters.create ~entities in
  let s1 =
    Ccs.Multi_machine.create_session ~counters:c1 g a spec assign ~plan cfg
  in
  Ccs.Multi_machine.run_batches s1 2;
  let path = temp_snap () in
  Ccs.Multi_machine.save_session ~path s1;
  let c2 = Ccs.Counters.create ~entities in
  let s2 =
    Ccs.Multi_machine.create_session ~counters:c2 g a spec assign ~plan cfg
  in
  (match Ccs.Multi_machine.load_session ~path s2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("load failed: " ^ Ccs.Error.to_string e));
  Ccs.Multi_machine.run_batches s2 2;
  Alcotest.(check bool) "per-entity attribution identical" true
    (Ccs.Counters.dump c_ref = Ccs.Counters.dump c2);
  Sys.remove path

let () =
  Alcotest.run "multi"
    [
      ( "assign",
        [
          Alcotest.test_case "assigns everything" `Quick
            test_lpt_assigns_everything;
          Alcotest.test_case "single processor" `Quick
            test_lpt_single_processor;
          Alcotest.test_case "load conserved" `Quick test_lpt_load_conserved;
          Alcotest.test_case "balance reasonable" `Quick
            test_lpt_balance_reasonable;
          Alcotest.test_case "rejects zero" `Quick test_lpt_rejects_zero;
          Alcotest.test_case "loads positive" `Quick
            test_component_load_positive;
        ] );
      ( "machine",
        [
          Alcotest.test_case "P=1 = uniprocessor" `Quick
            test_single_processor_equals_uniprocessor;
          Alcotest.test_case "speedup grows" `Quick test_speedup_grows;
          Alcotest.test_case "inputs counted" `Quick test_inputs_counted;
          Alcotest.test_case "mismatch rejected" `Quick
            test_mismatched_processors_rejected;
          Alcotest.test_case "work conserved" `Quick
            test_work_conserved_across_processors;
          Alcotest.test_case "aperiodic plan rejected" `Quick
            test_aperiodic_plan_structured_error;
          Alcotest.test_case "attribution sums" `Quick
            test_multi_attribution_sums;
          Alcotest.test_case "observers unobtrusive" `Quick
            test_multi_observers_leave_result_unchanged;
        ] );
      ( "session",
        [
          Alcotest.test_case "save/load bit-identical" `Quick
            test_session_save_load_bit_identical;
          Alcotest.test_case "mismatch rejected" `Quick
            test_session_load_mismatch_rejected;
          Alcotest.test_case "observers restored" `Quick
            test_session_restores_observers;
        ] );
    ]

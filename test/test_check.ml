(* Tests for the aggregate linter: every defect class the acceptance bar
   cares about must come back as a structured error naming the offender,
   never as an exception. *)

module G = Ccs.Graph
module B = G.Builder
module E = Ccs.Error

let codes report =
  List.map E.code report.Ccs.Check.errors

let warning_codes report = List.map E.code report.Ccs.Check.warnings

let has code lst = List.mem code lst

(* --- defect class 1: rate-inconsistent graph ------------------------------ *)

let test_rate_inconsistent () =
  let b = B.create () in
  let s = B.add_module b "s" in
  let x = B.add_module b "x" in
  let y = B.add_module b "y" in
  let t = B.add_module b "t" in
  ignore (B.add_channel b ~src:s ~dst:x ~push:1 ~pop:1 ());
  ignore (B.add_channel b ~src:s ~dst:y ~push:2 ~pop:1 ());
  ignore (B.add_channel b ~src:x ~dst:t ~push:1 ~pop:1 ());
  ignore (B.add_channel b ~src:y ~dst:t ~push:1 ~pop:1 ());
  let g = B.build b in
  let r = Ccs.Check.graph g in
  Alcotest.(check bool) "flagged" true (has "rate-inconsistent" (codes r));
  match
    List.find
      (fun e -> E.code e = "rate-inconsistent")
      r.Ccs.Check.errors
  with
  | E.Rate_inconsistent { node; _ } ->
      Alcotest.(check string) "offender named" "t" node
  | _ -> Alcotest.fail "wrong constructor"

(* --- defect class 2: dangling / degenerate edge --------------------------- *)

let test_dangling_edge () =
  let b = B.create () in
  let a = B.add_module b "a" in
  ignore (B.add_module b "b");
  ignore (B.add_channel b ~src:a ~dst:7 ~push:1 ~pop:1 ());
  let r = Ccs.Check.builder b in
  Alcotest.(check bool) "flagged" true (has "dangling-edge" (codes r));
  (match B.build_result b with
  | Error (E.Dangling_edge { endpoint; num_nodes; _ } :: _) ->
      Alcotest.(check int) "endpoint" 7 endpoint;
      Alcotest.(check int) "node count" 2 num_nodes
  | _ -> Alcotest.fail "build_result must report the dangling edge");
  match B.build b with
  | _ -> Alcotest.fail "build must reject"
  | exception G.Invalid_graph _ -> ()

let test_degenerate_edge () =
  let b = B.create () in
  let a = B.add_module b "a" in
  ignore (B.add_module b "b");
  ignore (B.add_channel b ~src:a ~dst:a ~push:1 ~pop:1 ());
  let r = Ccs.Check.builder b in
  Alcotest.(check bool) "flagged" true (has "degenerate-edge" (codes r))

(* --- defect class 3: non-well-ordered partition --------------------------- *)

let test_not_well_ordered () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:4 () in
  let r = Ccs.Check.partition g ~components:[| 1; 0; 1 |] in
  Alcotest.(check bool) "flagged" true (has "not-well-ordered" (codes r));
  match
    List.find (fun e -> E.code e = "not-well-ordered") r.Ccs.Check.errors
  with
  | E.Not_well_ordered { witness; _ } ->
      Alcotest.(check bool) "witness edge present" true
        (String.length witness > 0)
  | _ -> Alcotest.fail "wrong constructor"

let test_partition_wrong_length_is_error () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:4 () in
  let r = Ccs.Check.partition g ~components:[| 0 |] in
  Alcotest.(check bool) "reported, not raised" false (Ccs.Check.is_ok r)

let test_component_overflow () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:100 () in
  let r =
    Ccs.Check.partition ~bound:150 g ~components:[| 0; 0; 0; 0 |]
  in
  Alcotest.(check bool) "flagged" true (has "component-overflow" (codes r));
  match
    List.find (fun e -> E.code e = "component-overflow") r.Ccs.Check.errors
  with
  | E.Component_overflow { state; bound; members; _ } ->
      Alcotest.(check int) "state" 400 state;
      Alcotest.(check int) "bound" 150 bound;
      Alcotest.(check int) "members listed" 4 (List.length members)
  | _ -> Alcotest.fail "wrong constructor"

(* --- defect class 4: capacity below max rate ------------------------------ *)

let test_capacity_below_rate () =
  let b = B.create () in
  let a = B.add_module b ~state:4 "a" in
  let c = B.add_module b ~state:4 "c" in
  ignore (B.add_channel b ~src:a ~dst:c ~push:3 ~pop:3 ());
  let g = B.build b in
  let r = Ccs.Check.capacities g [| 2 |] in
  Alcotest.(check bool) "flagged" true (has "capacity-below-rate" (codes r));
  match
    List.find (fun e -> E.code e = "capacity-below-rate") r.Ccs.Check.errors
  with
  | E.Capacity_below_rate { capacity; required; src; dst; _ } ->
      Alcotest.(check int) "capacity" 2 capacity;
      Alcotest.(check int) "required" 3 required;
      Alcotest.(check string) "src named" "a" src;
      Alcotest.(check string) "dst named" "c" dst
  | _ -> Alcotest.fail "wrong constructor"

let test_capacity_infeasible () =
  (* capacity 3 clears the per-channel floor (max(2,3)) but a 2-push module
     can never raise occupancy from 2 to 3 without overflowing: jointly no
     periodic schedule exists. *)
  let b = B.create () in
  let a = B.add_module b ~state:4 "a" in
  let c = B.add_module b ~state:4 "c" in
  ignore (B.add_channel b ~src:a ~dst:c ~push:2 ~pop:3 ());
  let g = B.build b in
  let r = Ccs.Check.capacities g [| 3 |] in
  Alcotest.(check bool) "flagged" true (has "capacity-infeasible" (codes r))

(* --- defect class 5: deadlock by insufficient delay ----------------------- *)

let test_deadlock_cycle () =
  let b = B.create () in
  let a = B.add_module b "a" in
  let c = B.add_module b "c" in
  ignore (B.add_channel b ~src:a ~dst:c ~push:1 ~pop:1 ());
  ignore (B.add_channel b ~src:c ~dst:a ~push:1 ~pop:1 ());
  let r = Ccs.Check.builder b in
  Alcotest.(check bool) "flagged" true (has "deadlock-cycle" (codes r));
  match
    List.find (fun e -> E.code e = "deadlock-cycle")
      r.Ccs.Check.errors
  with
  | E.Deadlock_cycle { cycle; total_delay } ->
      Alcotest.(check int) "no initial tokens" 0 total_delay;
      Alcotest.(check bool) "cycle names modules" true
        (List.mem "a" cycle && List.mem "c" cycle)
  | _ -> Alcotest.fail "wrong constructor"

(* --- warnings, auto, and the clean path ----------------------------------- *)

let test_cache_overflow_warning () =
  let g = Ccs.Generators.uniform_pipeline ~n:2 ~state:5000 () in
  let cfg = Ccs.Config.make ~cache_words:64 ~block_words:16 () in
  let r = Ccs.Check.auto g cfg in
  (* Oversized state is a degradation, not an illegal input: the stack still
     runs it, so the finding is a warning. *)
  Alcotest.(check bool) "warned" true
    (has "cache-overflow" (warning_codes r));
  Alcotest.(check bool) "still ok" true (Ccs.Check.is_ok r)

let test_auto_clean_on_suite () =
  let cfg = Ccs.Config.make ~cache_words:4096 ~block_words:16 () in
  List.iter
    (fun entry ->
      let g = entry.Ccs_apps.Suite.graph () in
      let r = Ccs.Check.auto g cfg in
      Alcotest.(check bool)
        (entry.Ccs_apps.Suite.name ^ " passes auto check")
        true (Ccs.Check.is_ok r))
    Ccs_apps.Suite.all

let test_empty_graph () =
  let b = B.create () in
  let r = Ccs.Check.builder b in
  Alcotest.(check bool) "flagged" true (has "empty-graph" (codes r))

let () =
  Alcotest.run "check"
    [
      ( "defect classes",
        [
          Alcotest.test_case "rate inconsistent" `Quick test_rate_inconsistent;
          Alcotest.test_case "dangling edge" `Quick test_dangling_edge;
          Alcotest.test_case "degenerate edge" `Quick test_degenerate_edge;
          Alcotest.test_case "not well-ordered" `Quick test_not_well_ordered;
          Alcotest.test_case "partition wrong length" `Quick
            test_partition_wrong_length_is_error;
          Alcotest.test_case "component overflow" `Quick
            test_component_overflow;
          Alcotest.test_case "capacity below rate" `Quick
            test_capacity_below_rate;
          Alcotest.test_case "capacity infeasible" `Quick
            test_capacity_infeasible;
          Alcotest.test_case "deadlock cycle" `Quick test_deadlock_cycle;
        ] );
      ( "reports",
        [
          Alcotest.test_case "cache overflow warns" `Quick
            test_cache_overflow_warning;
          Alcotest.test_case "suite passes auto" `Quick
            test_auto_clean_on_suite;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
    ]

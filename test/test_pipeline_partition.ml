(* Tests for pipeline partitioning: the Theorem-5 greedy construction and
   the minimum-bandwidth dynamic program. *)

module G = Ccs.Graph
module R = Ccs.Rates
module S = Ccs.Spec
module P = Ccs.Pipeline_partition
module Q = Ccs.Rational

let q = Alcotest.testable (fun fmt x -> Q.pp fmt x) Q.equal

let test_chain_order () =
  let g = Ccs.Generators.uniform_pipeline ~n:5 ~state:1 () in
  Alcotest.(check (array int)) "in order" [| 0; 1; 2; 3; 4 |] (P.chain_order g);
  let d = Ccs.Generators.diamond ~width:2 ~state:1 () in
  Alcotest.check_raises "non-pipeline rejected"
    (Invalid_argument "Pipeline: graph is not a pipeline") (fun () ->
      ignore (P.chain_order d))

let test_gain_minimizing_edge () =
  (* Rates (4,1),(1,4),(1,1): node gains 1,4,1,1, so edge gains are
     e0 = 1*4 = 4, e1 = 4*1 = 4, e2 = 1*1 = 1.  The minimum over the whole
     chain is e2; restricted to [0..2] the tie between e0 and e1 breaks to
     the first. *)
  let g =
    Ccs.Generators.pipeline ~n:4
      ~state:(fun _ -> 1)
      ~rates:(fun i -> [| (4, 1); (1, 4); (1, 1) |].(i))
      ()
  in
  let a = R.analyze_exn g in
  let chain = P.chain_order g in
  Alcotest.(check int) "gainMin over all" 2
    (P.gain_minimizing_edge g a chain ~lo:0 ~hi:3);
  Alcotest.(check int) "gainMin over [0..2]" 0
    (P.gain_minimizing_edge g a chain ~lo:0 ~hi:2);
  Alcotest.check_raises "single-node segment"
    (Invalid_argument
       "Pipeline.gain_minimizing_edge: segment has no internal edge")
    (fun () -> ignore (P.gain_minimizing_edge g a chain ~lo:2 ~hi:2))

let check_valid_segmentation g sp ~bound =
  Alcotest.(check bool) "well ordered" true (S.is_well_ordered sp);
  Alcotest.(check bool)
    (Printf.sprintf "bounded by %d" bound)
    true
    (S.is_c_bounded sp ~bound);
  (* Segments of a chain must be contiguous in chain order. *)
  let chain = P.chain_order g in
  let last = ref (-1) in
  Array.iter
    (fun v ->
      let c = S.component_of sp v in
      Alcotest.(check bool) "monotone component ids" true (c >= !last);
      last := c)
    chain

let test_greedy_small_graph_single_component () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:1 () in
  let a = R.analyze_exn g in
  let sp = P.greedy g a ~m:100 in
  Alcotest.(check int) "one component" 1 (S.num_components sp)

let test_greedy_structure () =
  let g = Ccs.Generators.uniform_pipeline ~n:30 ~state:10 () in
  let a = R.analyze_exn g in
  let m = 30 in
  let sp = P.greedy g a ~m in
  (* Theorem 5: each component has state at most 8m. *)
  check_valid_segmentation g sp ~bound:(8 * m);
  Alcotest.(check bool) "more than one component" true
    (S.num_components sp > 1);
  (* Components of at least... every W segment accumulated > 2m state, so
     the number of components is at most total/2m + 1. *)
  Alcotest.(check bool) "not too many components" true
    (S.num_components sp <= (G.total_state g / (2 * m)) + 1)

let test_greedy_rejects_oversized_module () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:100 () in
  let a = R.analyze_exn g in
  match P.greedy g a ~m:50 with
  | _ -> Alcotest.fail "module bigger than m must be rejected"
  | exception Invalid_argument _ -> ()

let test_greedy_cuts_at_gain_minimizing_edges () =
  (* A pipeline with one low-gain edge in the first 2m-segment: greedy
     must cut exactly there.  6 modules of state 20 (m=25, 2m=50); module 1
     decimates by 4 (edge 0 rates (1,4)), so edge gains are e0 = 1 and
     e1..e4 = 1/4. *)
  let g =
    Ccs.Generators.pipeline ~n:6
      ~state:(fun _ -> 20)
      ~rates:(fun i -> if i = 0 then (1, 4) else (1, 1))
      ()
  in
  let a = R.analyze_exn g in
  let sp = P.greedy g a ~m:25 in
  (* First W = modules 0,1,2 (state 60 > 50); internal edges e0 (gain 1)
     and e1 (gain 1/4): cut at e1, so 0 and 1 stay together. *)
  Alcotest.(check bool) "cut after module 1" true
    (S.component_of sp 1 <> S.component_of sp 2);
  Alcotest.(check int) "0 and 1 together" (S.component_of sp 0)
    (S.component_of sp 1)

let test_dp_optimal_on_uniform () =
  let g = Ccs.Generators.uniform_pipeline ~n:12 ~state:10 () in
  let a = R.analyze_exn g in
  let sp = P.optimal_dp g a ~bound:40 in
  check_valid_segmentation g sp ~bound:40;
  (* Homogeneous chain: every cut costs 1, so the optimum = ceil(12/4)-1 = 2
     cuts. *)
  Alcotest.check q "bandwidth 2" (Q.of_int 2) (S.bandwidth sp a)

let test_dp_prefers_cheap_cuts () =
  (* Cutting is forced (bound < total), and the DP must route cuts through
     the low-gain edge.  Rates (1,3),(1,1),(3,1) give node gains 1, 1/3,
     1/3, 1 and edge gains e0 = 1, e1 = 1/3, e2 = 1.  4 modules of state
     30 with bound 60: exactly one cut, which must land on e1. *)
  let g =
    Ccs.Generators.pipeline ~n:4
      ~state:(fun _ -> 30)
      ~rates:(fun i -> [| (1, 3); (1, 1); (3, 1) |].(i))
      ()
  in
  let a = R.analyze_exn g in
  let sp = P.optimal_dp g a ~bound:60 in
  Alcotest.(check int) "two components" 2 (S.num_components sp);
  Alcotest.(check bool) "cut at e1" true
    (S.component_of sp 1 <> S.component_of sp 2);
  Alcotest.check q "bandwidth 1/3" (Q.make 1 3) (S.bandwidth sp a)

let test_dp_beats_or_ties_greedy () =
  (* The DP is the true optimum among bound-bounded segmentations, so with
     the same bound it is never worse than any other segmentation we can
     construct. *)
  for seed = 0 to 9 do
    let g =
      Ccs.Generators.random_pipeline ~seed ~n:24 ~max_state:16 ~max_rate:4 ()
    in
    let a = R.analyze_exn g in
    let m = 40 in
    (* Greedy partitions with 8m worst case; give the DP the same bound. *)
    match P.greedy g a ~m with
    | greedy_sp ->
        let bound = max (8 * m) (S.max_component_state greedy_sp) in
        let dp_sp = P.optimal_dp g a ~bound in
        check_valid_segmentation g dp_sp ~bound;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: dp <= greedy" seed)
          true
          (Q.compare (S.bandwidth dp_sp a) (S.bandwidth greedy_sp a) <= 0)
    | exception Invalid_argument _ -> () (* a module exceeded m: skip *)
  done

let test_dp_infeasible () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:50 () in
  let a = R.analyze_exn g in
  Alcotest.check_raises "infeasible bound"
    (Invalid_argument "Pipeline.optimal_dp: module m0 has state 50 > bound=10")
    (fun () -> ignore (P.optimal_dp g a ~bound:10))

let test_dp_exhaustive_check () =
  (* Compare the DP against brute-force enumeration of all segmentations
     on small random chains. *)
  let brute_force g a ~bound =
    let chain = P.chain_order g in
    let n = Array.length chain in
    let best = ref None in
    (* Bitmask over cut positions 0..n-2. *)
    for mask = 0 to (1 lsl (n - 1)) - 1 do
      (* Check boundedness. *)
      let ok = ref true in
      let seg_state = ref 0 in
      let cost = ref Q.zero in
      Array.iteri
        (fun i v ->
          seg_state := !seg_state + G.state g v;
          if !seg_state > bound then ok := false;
          if i < n - 1 && (mask lsr i) land 1 = 1 then begin
            seg_state := 0;
            let e = List.hd (G.out_edges g v) in
            cost := Q.add !cost (R.edge_gain a e)
          end)
        chain;
      if !ok then
        match !best with
        | Some b when Q.compare b !cost <= 0 -> ()
        | _ -> best := Some !cost
    done;
    Option.get !best
  in
  for seed = 20 to 27 do
    let g =
      Ccs.Generators.random_pipeline ~seed ~n:9 ~max_state:8 ~max_rate:4 ()
    in
    let a = R.analyze_exn g in
    let bound = 20 in
    let dp_sp = P.optimal_dp g a ~bound in
    let expected = brute_force g a ~bound in
    Alcotest.check q
      (Printf.sprintf "seed %d matches brute force" seed)
      expected (S.bandwidth dp_sp a)
  done

let test_greedy_10k_stage_pipeline () =
  (* Regression for [of_cuts]'s quadratic rescans: segmenting a 10k-stage
     chain with hundreds of cuts must be fast (O(n + cuts)) and yield a
     well-formed contiguous segmentation. *)
  let n = 10_000 in
  let g = Ccs.Generators.uniform_pipeline ~n ~state:64 () in
  let a = R.analyze_exn g in
  let spec = P.greedy g a ~m:256 in
  let k = S.num_components spec in
  Alcotest.(check bool)
    (Printf.sprintf "many components (%d)" k)
    true (k > 100);
  (* Segments are contiguous along the chain: component ids along the
     chain order are non-decreasing and cover 0..k-1. *)
  let assignment = S.assignment spec in
  let last = ref (-1) in
  Array.iter
    (fun v ->
      let c = assignment.(v) in
      Alcotest.(check bool) "contiguous segment ids" true
        (c = !last || c = !last + 1);
      last := c)
    (Ccs.Graph.topological_order g);
  Alcotest.(check int) "ids cover 0..k-1" (k - 1) !last;
  (* Theorem 5's guarantee: cuts land at gain-minimizing edges inside each
     >2m window, so every component spans at most a constant number of
     windows — O(m) state, here generously 8m + the tail absorption. *)
  for c = 0 to k - 1 do
    let s = S.component_state spec c in
    Alcotest.(check bool)
      (Printf.sprintf "segment %d state %d is O(m)" c s)
      true
      (s <= 8 * 256)
  done

let () =
  Alcotest.run "pipeline-partition"
    [
      ( "unit",
        [
          Alcotest.test_case "chain order" `Quick test_chain_order;
          Alcotest.test_case "gain-minimizing edge" `Quick
            test_gain_minimizing_edge;
          Alcotest.test_case "greedy small graph" `Quick
            test_greedy_small_graph_single_component;
          Alcotest.test_case "greedy structure" `Quick test_greedy_structure;
          Alcotest.test_case "greedy oversized module" `Quick
            test_greedy_rejects_oversized_module;
          Alcotest.test_case "greedy cuts at gainMin" `Quick
            test_greedy_cuts_at_gain_minimizing_edges;
          Alcotest.test_case "dp optimal uniform" `Quick
            test_dp_optimal_on_uniform;
          Alcotest.test_case "dp prefers cheap cuts" `Quick
            test_dp_prefers_cheap_cuts;
          Alcotest.test_case "dp <= greedy" `Quick test_dp_beats_or_ties_greedy;
          Alcotest.test_case "dp infeasible" `Quick test_dp_infeasible;
          Alcotest.test_case "dp vs brute force" `Quick
            test_dp_exhaustive_check;
          Alcotest.test_case "greedy 10k-stage pipeline" `Quick
            test_greedy_10k_stage_pipeline;
        ] );
    ]

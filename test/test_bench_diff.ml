(* Tests for the bench regression differ: deterministic fields must match
   exactly (Fail), timing fields only warn beyond a tolerance, experiments
   pair by id so a quick run diffs cleanly against a full baseline. *)

module D = Ccs.Bench_diff

let parse s =
  match Ccs.Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.fail ("test document does not parse: " ^ msg)

let doc ~wall ~misses ~seconds ~records () =
  parse
    (Printf.sprintf
       {|{"schema_version":2,"experiments":[
          {"experiment":"E1","description":"upper bound","wall_s":%g,"cpu_s":0.1,
           "records":[%s]},
          {"experiment":"E7","description":"crossover","wall_s":0.5,"cpu_s":0.4,
           "records":[{"kind":"simulation","misses":%d,"seconds":%g}]}]}|}
       wall records misses seconds)

let base_records = {|{"kind":"bound","misses_per_input":0.25}|}

let base () =
  doc ~wall:1.0 ~misses:100 ~seconds:2.0 ~records:base_records ()

let test_identical_passes () =
  let r = D.diff ~old_doc:(base ()) ~new_doc:(base ()) () in
  Alcotest.(check bool) "no failures" false (D.has_failures r);
  Alcotest.(check int) "no findings" 0 (List.length r.D.findings);
  Alcotest.(check int) "experiments" 2 r.D.experiments_compared;
  Alcotest.(check int) "records" 2 r.D.records_compared

let test_miss_regression_fails () =
  let new_doc =
    doc ~wall:1.0 ~misses:101 ~seconds:2.0 ~records:base_records ()
  in
  let r = D.diff ~old_doc:(base ()) ~new_doc () in
  Alcotest.(check bool) "failure" true (D.has_failures r);
  match r.D.findings with
  | [ f ] ->
      Alcotest.(check bool) "is fail" true (f.D.severity = D.Fail);
      Alcotest.(check string) "experiment" "E7" f.D.experiment;
      Alcotest.(check string) "field" "misses" f.D.field;
      Alcotest.(check string) "old" "100" f.D.old_value;
      Alcotest.(check string) "new" "101" f.D.new_value
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_timing_drift_warns_only () =
  (* 2.0s -> 3.0s is 33% drift: beyond the 20% default, but timing fields
     never fail the gate; wall_s moves too but stays within tolerance. *)
  let new_doc =
    doc ~wall:1.1 ~misses:100 ~seconds:3.0 ~records:base_records ()
  in
  let r = D.diff ~old_doc:(base ()) ~new_doc () in
  Alcotest.(check bool) "no failures" false (D.has_failures r);
  (match r.D.findings with
  | [ f ] ->
      Alcotest.(check bool) "is warn" true (f.D.severity = D.Warn);
      Alcotest.(check string) "field" "seconds" f.D.field
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* A looser tolerance silences it entirely. *)
  let r = D.diff ~tolerance_pct:50. ~old_doc:(base ()) ~new_doc () in
  Alcotest.(check int) "silent at 50%" 0 (List.length r.D.findings)

let test_record_count_change_fails () =
  let new_doc = doc ~wall:1.0 ~misses:100 ~seconds:2.0 ~records:"" () in
  let r = D.diff ~old_doc:(base ()) ~new_doc () in
  Alcotest.(check bool) "failure" true (D.has_failures r);
  Alcotest.(check bool) "record count finding" true
    (List.exists
       (fun f -> f.D.field = "records" && f.D.experiment = "E1")
       r.D.findings)

let test_field_appearance_fails () =
  let new_records = {|{"kind":"bound","misses_per_input":0.25,"extra":1}|} in
  let new_doc =
    doc ~wall:1.0 ~misses:100 ~seconds:2.0 ~records:new_records ()
  in
  let r = D.diff ~old_doc:(base ()) ~new_doc () in
  Alcotest.(check bool) "failure" true (D.has_failures r);
  Alcotest.(check bool) "appearance finding" true
    (List.exists (fun f -> f.D.field = "extra") r.D.findings)

let test_quick_subset_pairs_by_id () =
  (* New run missing E7 (a quick subset): E7 is informational, not a
     failure; the shared E1 still compares. *)
  let quick =
    parse
      {|{"experiments":[{"experiment":"E1","description":"upper bound",
         "wall_s":1.0,"cpu_s":0.1,
         "records":[{"kind":"bound","misses_per_input":0.25}]}]}|}
  in
  let r = D.diff ~old_doc:(base ()) ~new_doc:quick () in
  Alcotest.(check bool) "no failures" false (D.has_failures r);
  Alcotest.(check int) "one compared" 1 r.D.experiments_compared;
  Alcotest.(check (list string)) "old only" [ "E7" ] r.D.old_only;
  Alcotest.(check (list string)) "new only" [] r.D.new_only

let test_timing_field_rule () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " is timing") true (D.is_timing_field name))
    [
      "wall_s"; "cpu_s"; "seconds"; "baseline_seconds"; "ns_per_run";
      "ops_per_sec"; "overhead_pct"; "unix_time"; "save_us";
    ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " is deterministic") false
        (D.is_timing_field name))
    [
      "misses"; "misses_per_input"; "accesses"; "buffer_words"; "makespan";
      "speedup"; "imbalance"; "inputs"; "description"; "checkpoints";
    ]

let test_diff_files_roundtrip () =
  let write path doc =
    let oc = open_out path in
    output_string oc doc;
    close_out oc
  in
  let dir = Filename.get_temp_dir_name () in
  let old_path = Filename.concat dir "ccs-bdiff-old.json"
  and new_path = Filename.concat dir "ccs-bdiff-new.json" in
  let doc_text =
    {|{"experiments":[{"experiment":"E1","description":"d","wall_s":1.0,
       "cpu_s":1.0,"records":[{"misses":5}]}]}|}
  in
  write old_path doc_text;
  write new_path doc_text;
  (match D.diff_files ~old_path ~new_path () with
  | Ok r -> Alcotest.(check bool) "clean" false (D.has_failures r)
  | Error msg -> Alcotest.fail msg);
  (match D.diff_files ~old_path ~new_path:(new_path ^ ".missing") () with
  | Ok _ -> Alcotest.fail "missing file must be an error"
  | Error _ -> ());
  Sys.remove old_path;
  Sys.remove new_path

let () =
  Alcotest.run "bench_diff"
    [
      ( "diff",
        [
          Alcotest.test_case "identical passes" `Quick test_identical_passes;
          Alcotest.test_case "miss regression fails" `Quick
            test_miss_regression_fails;
          Alcotest.test_case "timing drift warns only" `Quick
            test_timing_drift_warns_only;
          Alcotest.test_case "record count change fails" `Quick
            test_record_count_change_fails;
          Alcotest.test_case "field appearance fails" `Quick
            test_field_appearance_fails;
          Alcotest.test_case "quick subset pairs by id" `Quick
            test_quick_subset_pairs_by_id;
        ] );
      ( "fields",
        [ Alcotest.test_case "timing field rule" `Quick test_timing_field_rule ]
      );
      ( "files",
        [
          Alcotest.test_case "diff_files roundtrip" `Quick
            test_diff_files_roundtrip;
        ] );
    ]

(* Tests for the deadlock/starvation watchdog and fault containment: a
   wedged machine must come back as a diagnostic snapshot (not a hang or a
   raw exception), and every injected kernel fault class must be contained
   with the offending module named. *)

module G = Ccs.Graph
module B = G.Builder
module E = Ccs.Error

let cache = Ccs.Cache.config ~size_words:256 ~block_words:16 ()

(* a -> c with push 2, pop 3: capacity 3 admits one firing of [a] (2
   tokens), after which neither endpoint can move — [a] would overflow,
   [c] is a token short. *)
let wedge_graph () =
  let b = B.create ~name:"wedge" () in
  let a = B.add_module b ~state:4 "a" in
  let c = B.add_module b ~state:4 "c" in
  ignore (B.add_channel b ~src:a ~dst:c ~push:2 ~pop:3 ());
  B.build b

let greedy_driver m ~target_outputs =
  let g = Ccs.Machine.graph m in
  let rec go () =
    if Ccs.Machine.sink_outputs m < target_outputs then (
      match List.find_opt (Ccs.Machine.can_fire m) (G.nodes g) with
      | Some v ->
          Ccs.Machine.fire m v;
          go ()
      | None ->
          (* Force the machine's own diagnostic instead of hanging. *)
          Ccs.Machine.fire m 0)
  in
  go ()

let test_deadlock_diagnostic () =
  let g = wedge_graph () in
  let plan =
    Ccs.Plan.dynamic ~name:"greedy" ~capacities:[| 3 |] greedy_driver
  in
  match Ccs.Watchdog.run ~graph:g ~cache ~plan ~outputs:5 () with
  | Ok _ -> Alcotest.fail "wedged machine reported success"
  | Error (E.Deadlocked { snapshot; detail; _ }) ->
      Alcotest.(check int) "one firing happened" 1 snapshot.E.fired;
      (match snapshot.E.channels with
      | [ ch ] ->
          Alcotest.(check int) "occupancy" 2 ch.E.occupied;
          Alcotest.(check int) "capacity" 3 ch.E.capacity
      | _ -> Alcotest.fail "expected one channel in snapshot");
      Alcotest.(check int) "both modules blocked" 2
        (List.length snapshot.E.blocked);
      Alcotest.(check bool) "detail names a module" true
        (String.length detail > 0)
  | Error e -> Alcotest.fail ("expected Deadlocked, got " ^ E.code e)

let test_budget_exhaustion () =
  (* A driver that ignores its target and fires forever: the budget must
     cut it off with a diagnostic rather than letting it spin. *)
  let g = Ccs.Generators.uniform_pipeline ~n:2 ~state:4 () in
  let spin m ~target_outputs:_ =
    let rec go () =
      match List.find_opt (Ccs.Machine.can_fire m) (G.nodes g) with
      | Some v ->
          Ccs.Machine.fire m v;
          go ()
      | None -> ()
    in
    go ()
  in
  let plan = Ccs.Plan.dynamic ~name:"spin" ~capacities:[| 4 |] spin in
  match Ccs.Watchdog.run ~budget:100 ~graph:g ~cache ~plan ~outputs:5 () with
  | Error (E.Budget_exhausted { budget; snapshot; _ }) ->
      Alcotest.(check int) "budget echoed" 100 budget;
      Alcotest.(check int) "all firings spent" 100 snapshot.E.fired
  | Ok _ -> Alcotest.fail "runaway driver reported success"
  | Error e -> Alcotest.fail ("expected Budget_exhausted, got " ^ E.code e)

let test_early_return_caught () =
  let g = Ccs.Generators.uniform_pipeline ~n:2 ~state:4 () in
  let lazy_driver _ ~target_outputs:_ = () in
  let plan = Ccs.Plan.dynamic ~name:"lazy" ~capacities:[| 4 |] lazy_driver in
  match Ccs.Watchdog.run ~graph:g ~cache ~plan ~outputs:5 () with
  | Error (E.Deadlocked { detail; _ }) ->
      Alcotest.(check bool) "reports shortfall" true
        (String.length detail > 0)
  | Ok _ -> Alcotest.fail "early-returning driver reported success"
  | Error e -> Alcotest.fail ("expected Deadlocked, got " ^ E.code e)

let test_bad_capacity_structured () =
  (* Machine.create rejects capacity < max rate; through the watchdog that
     must surface as a structured error, not Invalid_argument. *)
  let g = wedge_graph () in
  let plan =
    Ccs.Plan.dynamic ~name:"greedy" ~capacities:[| 1 |] greedy_driver
  in
  match Ccs.Watchdog.run ~graph:g ~cache ~plan ~outputs:1 () with
  | Error e -> Alcotest.(check string) "code" "failure" (E.code e)
  | Ok _ -> Alcotest.fail "undersized capacity accepted"

let test_budget_saturates () =
  (* Regression: with extreme cache sizes / output targets the budget
     formula used to overflow to a negative value, making the very first
     firing "exceed" it.  It must saturate at max_int instead. *)
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let b =
    Ccs.Watchdog.default_budget g ~cache_words:(max_int / 2)
      ~outputs:(max_int / 2)
  in
  Alcotest.(check bool) "budget positive" true (b > 0);
  let b2 = Ccs.Watchdog.default_budget g ~cache_words:max_int ~outputs:max_int in
  Alcotest.(check int) "fully saturated" max_int b2

let test_watchdog_happy_path () =
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:8 () in
  let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
  let choice = Ccs.Auto.plan g cfg in
  match
    Ccs.Watchdog.run ~graph:g ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ~outputs:100 ()
  with
  | Ok (result, _) ->
      Alcotest.(check bool) "target met" true
        (result.Ccs.Runner.outputs >= 100)
  | Error e -> Alcotest.fail ("clean run failed: " ^ E.to_string e)

(* --- fault containment ----------------------------------------------------- *)

let engine_for g fault =
  let cfg = Ccs.Config.make ~cache_words:256 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  let program =
    Ccs.Program.inject fault (Ccs.Program.create g (Ccs.Kernels.autobind g))
  in
  ( Ccs.Engine.create_checked ~program ~cache:(Ccs.Config.cache_config cfg)
      ~capacities:choice.Ccs.Auto.plan.Ccs.Plan.capacities (),
    choice.Ccs.Auto.plan )

let test_fault_kernel_exception () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:8 () in
  let fault =
    Ccs.Fault.of_sites g
      [ { Ccs.Fault.node = 1; fault = E.Kernel_exception; at_fire = 2 } ]
  in
  match engine_for g fault with
  | Error e, _ -> Alcotest.fail ("engine build failed: " ^ E.to_string e)
  | Ok engine, plan -> (
      match Ccs.Engine.run_plan_checked engine plan ~outputs:50 with
      | Ok _ -> Alcotest.fail "injected exception not contained"
      | Error (E.Fault { node; fault = E.Kernel_exception; _ }) ->
          Alcotest.(check string) "module named" (G.node_name g 1) node
      | Error e -> Alcotest.fail ("wrong containment: " ^ E.to_string e))

let test_fault_nan_output () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:8 () in
  let fault =
    Ccs.Fault.of_sites g
      [ { Ccs.Fault.node = 0; fault = E.Nan_output; at_fire = 0 } ]
  in
  match engine_for g fault with
  | Error e, _ -> Alcotest.fail ("engine build failed: " ^ E.to_string e)
  | Ok engine, plan -> (
      match Ccs.Engine.run_plan_checked engine plan ~outputs:50 with
      | Ok _ -> Alcotest.fail "NaN output not contained"
      | Error (E.Fault { node; fault = E.Nan_output; _ }) ->
          Alcotest.(check string) "module named" (G.node_name g 0) node
      | Error e -> Alcotest.fail ("wrong containment: " ^ E.to_string e))

let test_fault_bad_state_arity () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:8 () in
  let fault =
    Ccs.Fault.of_sites g
      [ { Ccs.Fault.node = 2; fault = E.Bad_state_arity; at_fire = 0 } ]
  in
  match engine_for g fault with
  | Ok _, _ -> Alcotest.fail "wrong-arity state not caught at build"
  | Error (E.Fault { node; fault = E.Bad_state_arity; _ }), _ ->
      Alcotest.(check string) "module named" (G.node_name g 2) node
  | Error e, _ -> Alcotest.fail ("wrong containment: " ^ E.to_string e)

let test_fault_plan_deterministic () =
  let g = Ccs.Generators.uniform_pipeline ~n:5 ~state:8 () in
  let sites seed = Ccs.Fault.sites (Ccs.Fault.plan ~seed ~count:4 g) in
  Alcotest.(check bool) "same seed, same sites" true (sites 42 = sites 42);
  Alcotest.(check bool) "plan is nonempty" true (List.length (sites 42) = 4)

let test_fault_plan_sites_distinct () =
  (* Regression: colliding draws used to be kept silently, yielding plans
     with fewer effective sites than requested.  Every (module, firing)
     pair must now be unique, across many seeds. *)
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:8 () in
  for seed = 0 to 49 do
    let sites = Ccs.Fault.sites (Ccs.Fault.plan ~seed ~count:20 ~horizon:8 g) in
    let keys =
      List.map (fun s -> (s.Ccs.Fault.node, s.Ccs.Fault.at_fire)) sites
    in
    Alcotest.(check int)
      (Printf.sprintf "20 distinct sites (seed %d)" seed)
      20
      (List.length (List.sort_uniq compare keys))
  done

let test_fault_plan_empty_graph () =
  (* Regression: drawing fault sites over a module-less graph used to crash
     with Division_by_zero.  Builder.build refuses such graphs outright
     (structured Empty_graph defect), and the guard inside Fault.plan keeps
     the invariant even for graphs arriving by other routes. *)
  (match G.Builder.build_result (G.Builder.create ~name:"empty" ()) with
  | Ok _ -> Alcotest.fail "empty graph built"
  | Error errs ->
      Alcotest.(check bool) "Empty_graph among defects" true
        (List.exists (fun e -> E.code e = "empty-graph") errs));
  (* A zero-site plan is a fine no-op regardless of graph size. *)
  let g = Ccs.Generators.uniform_pipeline ~n:2 ~state:8 () in
  Alcotest.(check int) "count=0 is fine" 0
    (List.length (Ccs.Fault.sites (Ccs.Fault.plan ~seed:7 ~count:0 g)))

let test_fault_plan_over_capacity () =
  (* More sites than the modules x horizon space can hold cannot all be
     distinct; the request must be rejected up front, not spin forever. *)
  let g = Ccs.Generators.uniform_pipeline ~n:2 ~state:8 () in
  match Ccs.Fault.plan ~seed:1 ~count:7 ~horizon:3 g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-capacity site count accepted"

let test_clean_program_unaffected () =
  (* An engine with validation on but no injected faults must behave
     exactly like the plain runner path. *)
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:8 () in
  let fault = Ccs.Fault.of_sites g [] in
  match engine_for g fault with
  | Error e, _ -> Alcotest.fail ("engine build failed: " ^ E.to_string e)
  | Ok engine, plan -> (
      match Ccs.Engine.run_plan_checked engine plan ~outputs:50 with
      | Ok result ->
          Alcotest.(check bool) "target met" true
            (result.Ccs.Runner.outputs >= 50)
      | Error e -> Alcotest.fail ("clean run failed: " ^ E.to_string e))

let () =
  Alcotest.run "watchdog"
    [
      ( "watchdog",
        [
          Alcotest.test_case "deadlock diagnostic" `Quick
            test_deadlock_diagnostic;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "early return caught" `Quick
            test_early_return_caught;
          Alcotest.test_case "bad capacity structured" `Quick
            test_bad_capacity_structured;
          Alcotest.test_case "budget saturates" `Quick test_budget_saturates;
          Alcotest.test_case "happy path" `Quick test_watchdog_happy_path;
        ] );
      ( "fault containment",
        [
          Alcotest.test_case "kernel exception" `Quick
            test_fault_kernel_exception;
          Alcotest.test_case "nan output" `Quick test_fault_nan_output;
          Alcotest.test_case "bad state arity" `Quick
            test_fault_bad_state_arity;
          Alcotest.test_case "seeded plan deterministic" `Quick
            test_fault_plan_deterministic;
          Alcotest.test_case "seeded plan sites distinct" `Quick
            test_fault_plan_sites_distinct;
          Alcotest.test_case "empty graph rejected" `Quick
            test_fault_plan_empty_graph;
          Alcotest.test_case "over-capacity count rejected" `Quick
            test_fault_plan_over_capacity;
          Alcotest.test_case "clean program unaffected" `Quick
            test_clean_program_unaffected;
        ] );
    ]

(* Edge-case coverage for paths the main suites exercise only implicitly. *)

module G = Ccs.Graph
module R = Ccs.Rates
module C = Ccs.Cache

let test_machine_unaligned_layout () =
  (* align_to_block:false packs state regions; misses can only go down or
     stay equal versus the aligned layout on the same schedule, and token
     accounting is unaffected. *)
  let g = Ccs.Generators.uniform_pipeline ~n:4 ~state:5 () in
  let cache = C.config ~size_words:64 ~block_words:8 () in
  let run aligned =
    let m =
      Ccs.Machine.create ~align_to_block:aligned ~graph:g ~cache
        ~capacities:[| 2; 2; 2 |] ()
    in
    for _ = 1 to 20 do
      List.iter (Ccs.Machine.fire m) [ 0; 1; 2; 3 ]
    done;
    (Ccs.Machine.misses m, Ccs.Machine.sink_outputs m,
     Ccs.Machine.address_space_words m)
  in
  let m_aligned, out_a, space_a = run true in
  let m_packed, out_p, space_p = run false in
  Alcotest.(check int) "same outputs" out_a out_p;
  Alcotest.(check bool) "packed layout no bigger" true (space_p <= space_a);
  Alcotest.(check bool) "misses sane" true (m_packed >= 0 && m_aligned >= 0)

let test_cache_ways_clamped () =
  (* More ways than blocks must not crash: clamp to capacity. *)
  let c =
    C.create (C.config ~policy:(C.Set_associative 64) ~size_words:16 ~block_words:8 ())
  in
  ignore (C.touch c 0);
  ignore (C.touch c 8);
  ignore (C.touch c 0);
  Alcotest.(check int) "behaves like full LRU" 2 (C.misses c)

let test_cache_flush_counter () =
  let c = C.create (C.config ~size_words:16 ~block_words:8 ()) in
  C.flush c;
  C.flush c;
  Alcotest.(check int) "two flushes" 2 (C.flushes c)

let test_rates_source_not_node_zero () =
  (* Build a graph whose source has the highest id; analysis must still
     normalize gains at the source. *)
  let b = G.Builder.create () in
  let snk = G.Builder.add_module b ~state:1 "snk" in
  let mid = G.Builder.add_module b ~state:1 "mid" in
  let src = G.Builder.add_module b ~state:1 "src" in
  ignore (G.Builder.add_channel b ~src:mid ~dst:snk ~push:1 ~pop:2 ());
  ignore (G.Builder.add_channel b ~src ~dst:mid ~push:1 ~pop:1 ());
  let g = G.Builder.build b in
  let a = R.analyze_exn g in
  Alcotest.(check bool) "source gain 1" true
    (Ccs.Rational.equal (R.gain a src) Ccs.Rational.one);
  Alcotest.(check int) "period inputs" 2 a.R.period_inputs

let test_pipeline_dynamic_with_delay () =
  let g =
    Ccs.Generators.pipeline ~n:6
      ~state:(fun _ -> 16)
      ~rates:(fun _ -> (1, 1))
      ()
  in
  (* Inject a delayed edge by rebuilding: use builder directly. *)
  let b = G.Builder.create () in
  let ids =
    Array.init 6 (fun i -> G.Builder.add_module b ~state:16 (string_of_int i))
  in
  for i = 0 to 4 do
    ignore
      (G.Builder.add_channel b
         ~delay:(if i = 2 then 3 else 0)
         ~src:ids.(i) ~dst:ids.(i + 1) ~push:1 ~pop:1 ())
  done;
  let g' = G.Builder.build b in
  ignore g;
  let a = R.analyze_exn g' in
  let spec = Ccs.Spec.of_assignment g' [| 0; 0; 0; 1; 1; 1 |] in
  let plan = Ccs.Partitioned.pipeline_dynamic g' a spec ~m_tokens:32 in
  let r, _ =
    Ccs.Runner.run ~graph:g'
      ~cache:(C.config ~size_words:64 ~block_words:8 ())
      ~plan ~outputs:200 ()
  in
  Alcotest.(check bool) "runs with delays" true (r.Ccs.Runner.outputs >= 200)

let test_engine_capacity_mismatch () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:4 () in
  let a = R.analyze_exn g in
  let plan = Ccs.Baseline.minimal_memory g a in
  let program = Ccs.Program.create g (Ccs.Kernels.autobind g) in
  let engine =
    Ccs.Engine.create ~program
      ~cache:(C.config ~size_words:64 ~block_words:8 ())
      ~capacities:[| 5; 5 |] ()
  in
  match Ccs.Engine.run_plan engine plan ~outputs:5 with
  | _ -> Alcotest.fail "capacity mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_codegen_rejects_illegal_plan () =
  let g = Ccs.Generators.uniform_pipeline ~n:3 ~state:4 () in
  (* Hand-built plan whose period underflows. *)
  let plan =
    Ccs.Plan.of_period ~name:"broken" ~capacities:[| 4; 4 |]
      (Ccs.Schedule.of_list [ 1; 0; 2 ])
  in
  match Ccs.Codegen.emit g ~plan with
  | _ -> Alcotest.fail "illegal plan must be rejected"
  | exception Ccs.Error.Error _ ->
      (* The lowering rejects it with a structured finding (PR 7);
         previously emit raised a stringly Invalid_argument. *)
      ()

let test_granularity_overflow_guard () =
  (* Many distinct prime-ish denominators: granularity grows but stays
     exact (rational lcm with overflow checking). *)
  let g =
    Ccs.Generators.pipeline ~n:6
      ~state:(fun _ -> 1)
      ~rates:(fun i -> [| (1, 2); (1, 3); (1, 5); (1, 7); (1, 11) |].(i))
      ()
  in
  let a = R.analyze_exn g in
  Alcotest.(check int) "lcm of downsamplings" (2 * 3 * 5 * 7 * 11)
    (R.granularity g a ~at_least:1)

let test_intvec () =
  let v = Ccs_exec.Intvec.create ~initial_capacity:2 () in
  for i = 0 to 99 do
    Ccs_exec.Intvec.push v i
  done;
  Alcotest.(check int) "length" 100 (Ccs_exec.Intvec.length v);
  Alcotest.(check int) "get" 57 (Ccs_exec.Intvec.get v 57);
  Alcotest.(check int) "to_array" 99 (Ccs_exec.Intvec.to_array v).(99);
  let acc = ref 0 in
  Ccs_exec.Intvec.iter v ~f:(fun x -> acc := !acc + x);
  Alcotest.(check int) "iter sum" 4950 !acc;
  Alcotest.check_raises "bounds"
    (Invalid_argument "Intvec.get: index out of bounds") (fun () ->
      ignore (Ccs_exec.Intvec.get v 100));
  Ccs_exec.Intvec.clear v;
  Alcotest.(check int) "cleared" 0 (Ccs_exec.Intvec.length v)

let test_single_module_graph () =
  (* A one-module graph (source = sink) is degenerate but must not crash
     the analysis path. *)
  let b = G.Builder.create () in
  let _ = G.Builder.add_module b ~state:4 "only" in
  let g = G.Builder.build b in
  let a = R.analyze_exn g in
  Alcotest.(check (array int)) "repetition" [| 1 |] a.R.repetition;
  let mb = Ccs.Minbuf.compute g a in
  Alcotest.(check int) "no channels" 0 (Array.length mb.Ccs.Minbuf.capacity)

let test_zero_state_module () =
  let b = G.Builder.create () in
  let x = G.Builder.add_module b ~state:0 "stateless" in
  let y = G.Builder.add_module b ~state:4 "sink" in
  ignore (G.Builder.add_channel b ~src:x ~dst:y ~push:1 ~pop:1 ());
  let g = G.Builder.build b in
  let m =
    Ccs.Machine.create ~graph:g
      ~cache:(C.config ~size_words:64 ~block_words:8 ())
      ~capacities:[| 2 |] ()
  in
  Ccs.Machine.fire m x;
  Ccs.Machine.fire m y;
  Alcotest.(check int) "ran" 2 (Ccs.Machine.total_fires m)

let () =
  Alcotest.run "edge-cases"
    [
      ( "unit",
        [
          Alcotest.test_case "unaligned layout" `Quick
            test_machine_unaligned_layout;
          Alcotest.test_case "ways clamped" `Quick test_cache_ways_clamped;
          Alcotest.test_case "flush counter" `Quick test_cache_flush_counter;
          Alcotest.test_case "late source id" `Quick
            test_rates_source_not_node_zero;
          Alcotest.test_case "dynamic pipeline with delay" `Quick
            test_pipeline_dynamic_with_delay;
          Alcotest.test_case "engine capacity mismatch" `Quick
            test_engine_capacity_mismatch;
          Alcotest.test_case "codegen illegal plan" `Quick
            test_codegen_rejects_illegal_plan;
          Alcotest.test_case "granularity lcm" `Quick
            test_granularity_overflow_guard;
          Alcotest.test_case "intvec" `Quick test_intvec;
          Alcotest.test_case "single module" `Quick test_single_module_graph;
          Alcotest.test_case "zero state" `Quick test_zero_state_module;
        ] );
    ]

(* Unit tests for rate analysis: gains, rate-matching, repetition vectors,
   and the granularity T of the inhomogeneous scheduler. *)

module G = Ccs.Graph
module B = G.Builder
module R = Ccs.Rates
module Q = Ccs.Rational

let q = Alcotest.testable (fun fmt x -> Q.pp fmt x) Q.equal

let test_pipeline_gains () =
  (* src -1/1-> a -2/1-> b -1/2-> sink : gains 1, 1, 2, 1 *)
  let g =
    Ccs.Generators.pipeline ~n:4
      ~state:(fun _ -> 1)
      ~rates:(fun i -> [| (1, 1); (2, 1); (1, 2) |].(i))
      ()
  in
  let a = R.analyze_exn g in
  Alcotest.check q "gain src" Q.one (R.gain a 0);
  Alcotest.check q "gain a" Q.one (R.gain a 1);
  Alcotest.check q "gain b" (Q.of_int 2) (R.gain a 2);
  Alcotest.check q "gain sink" Q.one (R.gain a 3);
  Alcotest.check q "edge gain 1 (a->b)" (Q.of_int 2) (R.edge_gain a 1);
  Alcotest.(check (array int)) "repetition" [| 1; 1; 2; 1 |] a.R.repetition;
  Alcotest.(check int) "period inputs" 1 a.R.period_inputs

let test_fractional_gain () =
  (* src -1/3-> a : gain(a) = 1/3, repetition [3; 1]. *)
  let g =
    Ccs.Generators.pipeline ~n:2
      ~state:(fun _ -> 1)
      ~rates:(fun _ -> (1, 3))
      ()
  in
  let a = R.analyze_exn g in
  Alcotest.check q "gain a" (Q.make 1 3) (R.gain a 1);
  Alcotest.(check (array int)) "repetition" [| 3; 1 |] a.R.repetition;
  Alcotest.(check int) "period inputs" 3 a.R.period_inputs

let test_homogeneous_dag () =
  let g = Ccs.Generators.split_join ~branches:3 ~depth:2 ~state:1 () in
  let a = R.analyze_exn g in
  Alcotest.(check bool) "rate matched" true (R.is_rate_matched g);
  G.nodes g
  |> List.iter (fun v -> Alcotest.check q "all gains 1" Q.one (R.gain a v));
  Array.iter
    (fun r -> Alcotest.(check int) "all repetitions 1" 1 r)
    a.R.repetition

let test_not_rate_matched () =
  (* Diamond with mismatched branch rates. *)
  let b = B.create () in
  let s = B.add_module b "s" in
  let x = B.add_module b "x" in
  let y = B.add_module b "y" in
  let t = B.add_module b "t" in
  ignore (B.add_channel b ~src:s ~dst:x ~push:1 ~pop:1 ());
  ignore (B.add_channel b ~src:s ~dst:y ~push:2 ~pop:1 ());
  ignore (B.add_channel b ~src:x ~dst:t ~push:1 ~pop:1 ());
  ignore (B.add_channel b ~src:y ~dst:t ~push:1 ~pop:1 ());
  let g = B.build b in
  Alcotest.(check bool) "not rate matched" false (R.is_rate_matched g);
  (match R.analyze g with
  | Error msg ->
      Alcotest.(check bool)
        "error mentions inconsistency" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected Error");
  (match R.analyze_checked g with
  | Error (Ccs.Error.Rate_inconsistent { node; _ }) ->
      Alcotest.(check string) "offending module named" "t" node
  | Error e ->
      Alcotest.fail ("expected Rate_inconsistent, got " ^ Ccs.Error.code e)
  | Ok _ -> Alcotest.fail "expected Error");
  match R.analyze_exn g with
  | exception G.Invalid_graph msg ->
      Alcotest.(check bool) "message names the module" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "analyze_exn must raise"

let test_disconnected_rejected () =
  let b = B.create () in
  let _ = B.add_module b "x" in
  let _ = B.add_module b "y" in
  let g = B.build b in
  match R.analyze g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "disconnected graph must be rejected"

let test_repetition_balances_edges () =
  let g = Ccs_apps.Filterbank.graph ~bands:4 ~taps:8 () in
  let a = R.analyze_exn g in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "edge %d balanced" e)
        (a.R.repetition.(G.src g e) * G.push g e)
        (a.R.repetition.(G.dst g e) * G.pop g e))
    (G.edges g)

let test_repetition_minimal () =
  let g = Ccs_apps.Mp3.graph ~bands:8 () in
  let a = R.analyze_exn g in
  let gcd_all = Array.fold_left Q.gcd 0 a.R.repetition in
  Alcotest.(check int) "repetition vector is primitive" 1 gcd_all

let test_granularity () =
  (* Gains 1, 1, 1/3: granularity must be a multiple of 3. *)
  let g =
    Ccs.Generators.pipeline ~n:3
      ~state:(fun _ -> 1)
      ~rates:(fun i -> [| (1, 1); (1, 3) |].(i))
      ()
  in
  let a = R.analyze_exn g in
  Alcotest.(check int) "smallest" 3 (R.granularity g a ~at_least:1);
  Alcotest.(check int) "at_least 4 -> 6" 6 (R.granularity g a ~at_least:4);
  Alcotest.(check int) "at_least 100 -> 102" 102
    (R.granularity g a ~at_least:100);
  Alcotest.(check int) "exact multiple stays" 9
    (R.granularity g a ~at_least:9)

let test_granularity_makes_firings_integral () =
  let g = Ccs_apps.Beamformer.graph ~channels:2 ~beams:2 ~taps:4 () in
  let a = R.analyze_exn g in
  let t = R.granularity g a ~at_least:50 in
  List.iter
    (fun v ->
      let n = R.firings_per_batch a ~t v in
      Alcotest.(check bool)
        (Printf.sprintf "firings of %s positive" (G.node_name g v))
        true (n > 0))
    (G.nodes g);
  List.iter
    (fun e ->
      let tok = R.tokens_per_batch a ~t e in
      Alcotest.(check int)
        (Printf.sprintf "edge %d tokens = src firings * push" e)
        (R.firings_per_batch a ~t (G.src g e) * G.push g e)
        tok)
    (G.edges g)

let test_firings_rejects_bad_t () =
  let g =
    Ccs.Generators.pipeline ~n:2
      ~state:(fun _ -> 1)
      ~rates:(fun _ -> (1, 3))
      ()
  in
  let a = R.analyze_exn g in
  Alcotest.check_raises "non-multiple t"
    (Invalid_argument "Rates.firings_per_batch: t is not a granularity multiple")
    (fun () -> ignore (R.firings_per_batch a ~t:2 1))

let test_gain_of_generated_dag () =
  (* random_sdf_dag guarantees rate-matching by construction. *)
  for seed = 0 to 9 do
    let g =
      Ccs.Generators.random_sdf_dag ~seed ~n:12 ~max_state:16 ~max_rate:6
        ~extra_edges:6 ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d rate matched" seed)
      true (R.is_rate_matched g)
  done

let () =
  Alcotest.run "rates"
    [
      ( "unit",
        [
          Alcotest.test_case "pipeline gains" `Quick test_pipeline_gains;
          Alcotest.test_case "fractional gain" `Quick test_fractional_gain;
          Alcotest.test_case "homogeneous dag" `Quick test_homogeneous_dag;
          Alcotest.test_case "not rate matched" `Quick test_not_rate_matched;
          Alcotest.test_case "disconnected rejected" `Quick
            test_disconnected_rejected;
          Alcotest.test_case "repetition balances edges" `Quick
            test_repetition_balances_edges;
          Alcotest.test_case "repetition minimal" `Quick
            test_repetition_minimal;
          Alcotest.test_case "granularity" `Quick test_granularity;
          Alcotest.test_case "granularity firings integral" `Quick
            test_granularity_makes_firings_integral;
          Alcotest.test_case "bad t rejected" `Quick test_firings_rejects_bad_t;
          Alcotest.test_case "generated dags rate-matched" `Quick
            test_gain_of_generated_dag;
        ] );
    ]

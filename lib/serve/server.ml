module E = Ccs.Error
module Metrics = Ccs.Metrics
module Fault = Ccs.Fault

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  dir : string;
  workers : int;
  log : Ccs.Log.t;
  backlog : int;
  deadline_ms : int;
  max_inflight : int;
  retry_after_ms : int;
  store_max_bytes : int;
  store_max_entries : int;
  hot_cache : int;
  min_uptime_ms : int;
  breaker_limit : int;
  chaos : Fault.env;
  tracing : bool;
}

let default_config ~address ~dir =
  {
    address;
    dir;
    workers = 0;
    log = Ccs.Log.null;
    backlog = 64;
    deadline_ms = 0;
    max_inflight = 0;
    retry_after_ms = 50;
    store_max_bytes = 0;
    store_max_entries = 0;
    hot_cache = 64;
    min_uptime_ms = 1000;
    breaker_limit = 5;
    chaos = [];
    tracing = false;
  }

let pp_address = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* --- per-worker metrics ---------------------------------------------------- *)

type metrics = {
  registry : Metrics.t;
  requests : Metrics.counter;
  hits : Metrics.counter;
  misses : Metrics.counter;
  errors : Metrics.counter;
  plan_builds : Metrics.counter;
  shed : Metrics.counter;
  deadline_exceeded : Metrics.counter;
  cache_evictions : Metrics.counter;
  worker_restarts : Metrics.counter;
  flight_dumps : Metrics.counter;
  inflight : Metrics.gauge;
  store_bytes : Metrics.gauge;
  store_entries : Metrics.gauge;
  request_us : Metrics.histogram;
  plan_us : Metrics.histogram;
  stage_us : (string * Metrics.histogram) list;
}

(* Every stage of the request path gets its own labelled latency series.
   Pre-registered so /metrics always shows the full set (at zero) and the
   hot path never hashes a registration. *)
let stage_names =
  [
    "request"; "read"; "parse"; "key"; "cache_lookup"; "plan_build"; "dry_run";
    "write";
  ]

let make_metrics () =
  let registry = Metrics.create () in
  let c name help = Metrics.counter registry ~help name in
  let g name help = Metrics.gauge registry ~help name in
  let h name help = Metrics.histogram registry ~help name in
  {
    registry;
    requests = c "ccs_serve_requests_total" "Protocol requests received.";
    hits =
      c "ccs_serve_cache_hits_total"
        "Plan requests answered from the hot cache or the persistent plan \
         store.";
    misses =
      c "ccs_serve_cache_misses_total"
        "Plan requests that had to run the planner.";
    errors =
      c "ccs_serve_errors_total"
        "Requests answered with a structured error response.";
    plan_builds = c "ccs_serve_plan_builds_total" "Planner pipeline runs.";
    shed =
      c "ccs_serve_shed_total"
        "Connections answered with a structured overloaded response and \
         closed because the worker was at its in-flight limit.";
    deadline_exceeded =
      c "ccs_serve_deadline_exceeded_total"
        "Requests that blew their time budget (slow client or runaway \
         plan build).";
    cache_evictions =
      c "ccs_serve_cache_evictions_total"
        "Plan-store records evicted to stay within the configured bound.";
    worker_restarts =
      c "ccs_serve_worker_restarts_total"
        "Worker processes respawned by the parent after an unexpected \
         death.";
    flight_dumps =
      c "ccs_serve_flight_dumps_total"
        "Flight-recorder dumps written on anomaly triggers.";
    inflight =
      g "ccs_serve_inflight" "Connections currently being served.";
    store_bytes =
      g "ccs_serve_store_bytes" "Bytes of live plan-store records.";
    store_entries =
      g "ccs_serve_store_entries" "Live plan-store records.";
    request_us =
      h "ccs_serve_request_us"
        "End-to-end request latency, wall-clock microseconds.";
    plan_us =
      h "ccs_serve_plan_us" "Planner pipeline latency, wall-clock microseconds.";
    stage_us =
      List.map
        (fun stage ->
          ( stage,
            Metrics.histogram registry
              ~help:
                "Per-stage request latency, wall-clock microseconds \
                 (tracing only)."
              ~labels:[ ("stage", stage) ]
              "ccs_serve_stage_us" ))
        stage_names;
  }

(* The trace context of one in-flight request: [root] is the request
   span's pre-allocated id so every stage span can parent to it before
   the root itself is recorded.  [trace_id] is overwritten by a
   client-supplied id the moment the parse stage sees one. *)
type trace = { mutable trace_id : string; root : int; t_start : int }

type t = {
  config : config;
  m : metrics;
  store : Plan_cache.Bounded.t;
  hot : Protocol.artifact Lru_index.t;
  flight : Ccs.Flight.t;
      (* always-on black box: span ring + recent log lines, dumped on
         anomaly triggers *)
  mutable req_index : int;
      (* per-worker request counter: the epoch axis of serve-layer chaos *)
  mutable evictions_seen : int;
  mutable report_store : bool;
      (* exactly one process per daemon publishes the store gauges, so the
         merged scrape does not multiply them by the worker count *)
  mutable die_after_flush : bool; (* a chaos Worker_kill is pending *)
  mutable last_trace : (string * int) option;
      (* (trace_id, root span id) of the request [handle_line_at] just
         finished — the event loop picks it up to parent the write span *)
}

let cache_dir config = Filename.concat config.dir "plans"
let flight_dir config = Filename.concat config.dir "flight"
let trace_dir config = Filename.concat config.dir "trace"
let metrics_dir t = Filename.concat t.config.dir "metrics"

let make config =
  let flight = Ccs.Flight.create () in
  (* Mirror every log line into the flight ring: the dump then carries
     the last-N log events alongside the last-N spans. *)
  let config =
    { config with log = Ccs.Log.tee config.log (Ccs.Flight.note_log flight) }
  in
  let store =
    Plan_cache.Bounded.create ~log:config.log ~dir:(cache_dir config)
      ~bounds:
        {
          Plan_cache.Bounded.max_bytes = config.store_max_bytes;
          max_entries = config.store_max_entries;
        }
      ()
  in
  {
    config;
    m = make_metrics ();
    store;
    hot = Lru_index.create ();
    flight;
    req_index = 0;
    evictions_seen = 0;
    report_store = true;
    die_after_flush = false;
    last_trace = None;
  }

let snapshot_path t =
  Filename.concat (metrics_dir t)
    (Printf.sprintf "worker-%d.json" (Unix.getpid ()))

(* --- spans and the flight recorder ----------------------------------------- *)

let observe_stage t stage dur =
  match List.assoc_opt stage t.m.stage_us with
  | Some h -> Metrics.observe h dur
  | None -> ()

let record_span t (tr : trace) ~span_id ~parent ~stage ~start_us ~end_us =
  Ccs.Span.record
    (Ccs.Flight.spans t.flight)
    ~trace_id:tr.trace_id ~span_id ~parent ~stage ~start_us ~end_us;
  observe_stage t stage (max 0 (end_us - start_us))

(* Time [f] as one child span of the current request.  [tr = None]
   (tracing off) is a single comparison — the traced and untraced paths
   run the very same [f], which is why responses are bit-identical either
   way.  Exceptions still finish the span (a blown plan build leaves its
   partial timing in the ring) and re-raise. *)
let span t tr stage f =
  match tr with
  | None -> f ()
  | Some tr -> (
      let start_us = Ccs.Clock.now_us () in
      let finish () =
        record_span t tr
          ~span_id:(Ccs.Span.fresh_id (Ccs.Flight.spans t.flight))
          ~parent:tr.root ~stage ~start_us ~end_us:(Ccs.Clock.now_us ())
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let fresh_trace t ~t_start =
  {
    trace_id = Printf.sprintf "w%d-r%d" (Unix.getpid ()) t.req_index;
    root = Ccs.Span.fresh_id (Ccs.Flight.spans t.flight);
    t_start;
  }

(* Dump the black box.  Best-effort by design: a full disk must not turn
   an anomaly report into a crash, so failures are logged and dropped. *)
let flight_dump t ~trigger =
  Metrics.inc t.m.flight_dumps;
  match
    Ccs.Flight.dump t.flight ~dir:(flight_dir t.config) ~trigger
      ~pid:(Unix.getpid ())
      ~at_us:(Ccs.Clock.now_us ())
  with
  | path ->
      Ccs.Log.warn t.config.log "flight recorder dumped"
        [
          ("trigger", Ccs.Json.String trigger);
          ("path", Ccs.Json.String path);
        ]
  | exception Sys_error reason ->
      Ccs.Log.error t.config.log "flight dump failed"
        [
          ("trigger", Ccs.Json.String trigger);
          ("reason", Ccs.Json.String reason);
        ]

(* Publish this worker's registry for /metrics scrapes (from any worker).
   Atomic rename, so a concurrent scrape never reads a torn document. *)
let publish_metrics t =
  if t.report_store then begin
    Metrics.set t.m.store_bytes (Plan_cache.Bounded.bytes t.store);
    Metrics.set t.m.store_entries (Plan_cache.Bounded.entries t.store)
  end;
  Plan_cache.ensure_dir (metrics_dir t);
  Ccs.Binio.write_atomic ~path:(snapshot_path t)
    (Metrics.to_json_string t.m.registry ^ "\n");
  if t.config.tracing then
    (* Live trace export: the span ring as of the last answered request,
       readable by `ccsched trace` without waiting for an anomaly. *)
    try
      ignore
        (Ccs.Flight.dump t.flight ~dir:(trace_dir t.config) ~trigger:"live"
           ~pid:(Unix.getpid ())
           ~at_us:(Ccs.Clock.now_us ()))
    with Sys_error _ -> ()

let metric_value t ?labels name = Metrics.value t.m.registry ?labels name

let scrape t =
  let dir = metrics_dir t in
  let files =
    if Sys.file_exists dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    else []
  in
  let docs =
    List.filter_map
      (fun f ->
        let path = Filename.concat dir f in
        match In_channel.with_open_text path In_channel.input_all with
        | contents -> Result.to_option (Ccs.Json.of_string contents)
        | exception Sys_error _ -> None)
      files
  in
  Snapshot.to_prometheus (Snapshot.merge docs)

(* --- deadlines ------------------------------------------------------------- *)

exception Deadline
(* Raised by the SIGALRM handler: [ITIMER_REAL] preempts a CPU-bound plan
   build at its next allocation point, so a runaway partitioner run
   cannot hold a worker past the request budget. *)

let install_alarm () =
  Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Deadline))

let disarm_alarm () =
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_value = 0.0; Unix.it_interval = 0.0 })

(* Run [f] under the remaining budget (absolute deadline in [Clock]
   microseconds); a blown budget becomes a structured error, never a hung
   worker.  [deadline_at = None] means no budget is in force. *)
let with_deadline t ~deadline_at f =
  match deadline_at with
  | None -> f ()
  | Some at ->
      let budget_ms = t.config.deadline_ms in
      let remaining = at - Ccs.Clock.now_us () in
      if remaining <= 0 then
        E.fail (E.Deadline_exceeded { stage = "plan"; budget_ms })
      else begin
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             {
               Unix.it_value = float_of_int remaining /. 1e6;
               Unix.it_interval = 0.0;
             });
        match f () with
        | v ->
            disarm_alarm ();
            v
        | exception Deadline ->
            disarm_alarm ();
            E.fail (E.Deadline_exceeded { stage = "plan"; budget_ms })
        | exception e ->
            disarm_alarm ();
            raise e
      end

(* --- the planning pipeline ------------------------------------------------- *)

let fail_report (report : Ccs.Check.report) =
  match report.errors with e :: _ -> E.fail e | [] -> ()

let policy_of_ways = function
  | None -> Ccs.Cache.Lru
  | Some 1 -> Ccs.Cache.Direct_mapped
  | Some w -> Ccs.Cache.Set_associative w

(* Rebuild a Plan.t from a cached artifact; also the dry-run path for
   fresh builds, so hits and misses exercise identical code. *)
let plan_of_artifact (a : Protocol.artifact) =
  Ccs.Plan.of_period ~name:a.plan_name ~capacities:a.capacities a.period

let dry_run_of g cache (a : Protocol.artifact) =
  let plan = plan_of_artifact a in
  let lowered = Ccs.Lowering.exn g ~plan ~cache in
  let c = Ccs.Compiled.create lowered in
  Ccs.Compiled.run_periods c 1;
  { Protocol.outputs = Ccs.Compiled.outputs c;
    checksum = Ccs.Compiled.checksum c }

let build_artifact t (req : Protocol.plan_request) g cache : Protocol.artifact =
  let t0 = Ccs.Clock.now_us () in
  let cfg =
    Ccs.Config.make ~policy:cache.Ccs.Cache.policy ~cache_words:req.cache_words
      ~block_words:req.block_words ()
  in
  let choice =
    try Ccs.Auto.plan ~dynamic:false g cfg
    with Ccs.Graph.Invalid_graph reason ->
      E.fail (E.Failure_msg { context = "planning"; reason })
  in
  Metrics.inc t.m.plan_builds;
  let plan =
    match req.capacities with
    | None -> choice.plan
    | Some capacities -> (
        if Array.length capacities <> Ccs.Graph.num_edges g then
          E.fail
            (E.Request_invalid
               {
                 reason =
                   Printf.sprintf "%d capacities for %d channels"
                     (Array.length capacities) (Ccs.Graph.num_edges g);
               });
        let period =
          match choice.plan.period with Some p -> p | None -> assert false
        in
        let pinned =
          Ccs.Plan.of_period ~name:choice.plan.name ~capacities period
        in
        match Ccs.Plan.validate ~cache ~spec:choice.partition g pinned with
        | Ok () -> pinned
        | Error findings -> (
            match
              List.filter (fun e -> E.severity e = `Error) findings
            with
            | e :: _ -> E.fail e
            | [] -> pinned))
  in
  let period =
    match plan.period with Some p -> p | None -> assert false
  in
  let artifact =
    {
      Protocol.plan_name = plan.name;
      batch = choice.batch;
      components = Ccs.Spec.assignment choice.partition;
      capacities = plan.capacities;
      period;
      predicted_mpi =
        Ccs.Analysis.partition_cost_prediction choice.partition choice.analysis
          ~b:req.block_words ~t:choice.batch;
      bandwidth_per_input =
        Ccs.Analysis.bandwidth_per_input choice.partition choice.analysis;
      buffer_words = Ccs.Plan.buffer_words plan;
    }
  in
  Metrics.observe t.m.plan_us (Ccs.Clock.elapsed_us ~since:t0);
  artifact

(* --- the hot cache and the bounded store ----------------------------------- *)

let hot_put t digest artifact =
  if t.config.hot_cache > 0 then begin
    Lru_index.add t.hot digest ~weight:1 artifact;
    while Lru_index.size t.hot > t.config.hot_cache do
      ignore (Lru_index.evict_lru t.hot)
    done
  end

(* Hot cache in front of the disk store: a hot hit answers without
   touching the filesystem at all, and is bit-identical to a disk hit
   because both serve the very same artifact value. *)
let lookup_artifact t ~key =
  let digest = Ccs.Plan_key.digest key in
  match
    if t.config.hot_cache > 0 then Lru_index.touch t.hot digest else None
  with
  | Some a -> Some a
  | None -> (
      match Plan_cache.Bounded.lookup t.store ~key with
      | Some a ->
          hot_put t digest a;
          Some a
      | None -> None)

let truncate_record t key =
  let p = Plan_cache.path ~dir:(cache_dir t.config) key in
  match Unix.stat p with
  | exception Unix.Unix_error _ -> ()
  | st ->
      let keep = max 0 (st.Unix.st_size - 3) in
      let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.ftruncate fd keep);
      Ccs.Log.warn t.config.log "chaos: plan-store record truncated"
        [ ("path", Ccs.Json.String p) ]

(* Store under chaos: an [iofault@E] window makes plan-store writes fail
   (the response is still served — durability is best-effort), and a
   [truncate@E] tears the record just written so the next reader must
   quarantine and rebuild it. *)
let store_artifact t ~key artifact =
  let epoch = t.req_index in
  if (Fault.conditions_at t.config.chaos epoch).Fault.io_faulty then
    Ccs.Log.warn t.config.log "chaos: plan-store write suppressed"
      [ ("key", Ccs.Json.String (Ccs.Plan_key.digest key)) ]
  else begin
    Plan_cache.Bounded.store t.store ~key artifact;
    if List.mem Fault.Record_truncate (Fault.events_at t.config.chaos epoch)
    then truncate_record t key
  end;
  let ev = Plan_cache.Bounded.evictions t.store in
  if ev > t.evictions_seen then begin
    Metrics.add t.m.cache_evictions (ev - t.evictions_seen);
    t.evictions_seen <- ev
  end

let handle_plan t ~t0 ~deadline_at ~tr (req : Protocol.plan_request) =
  let cache, g, key =
    span t tr "key" (fun () ->
        fail_report
          (Ccs.Check.cache_config ?ways:req.ways ~size_words:req.cache_words
             ~block_words:req.block_words ());
        let cache =
          Ccs.Cache.config
            ~policy:(policy_of_ways req.ways)
            ~size_words:req.cache_words ~block_words:req.block_words ()
        in
        let g =
          match Ccs.Serial.parse req.graph_text with
          | Ok g -> g
          | Error e -> E.fail e
        in
        fail_report (Ccs.Check.graph g);
        let key =
          Ccs.Plan_key.of_graph g ~cache
            ~capacities:(Option.value req.capacities ~default:[||])
            ~planner_version:Ccs.Auto.planner_version
        in
        (cache, g, key))
  in
  let cached, artifact =
    match span t tr "cache_lookup" (fun () -> lookup_artifact t ~key) with
    | Some artifact -> (true, artifact)
    | None ->
        let artifact =
          span t tr "plan_build" (fun () ->
              with_deadline t ~deadline_at (fun () ->
                  build_artifact t req g cache))
        in
        (* Store before responding: once a client has seen an answer, a
           repeat of the same request is guaranteed to hit. *)
        store_artifact t ~key artifact;
        hot_put t (Ccs.Plan_key.digest key) artifact;
        (false, artifact)
  in
  Metrics.inc (if cached then t.m.hits else t.m.misses);
  let dry_run =
    if req.dry_run then
      Some (span t tr "dry_run" (fun () -> dry_run_of g cache artifact))
    else None
  in
  Protocol.plan_response ?trace_id:req.trace_id ~cached
    ~key:(Ccs.Plan_key.digest key) ~artifact ~dry_run
    ~elapsed_us:(Ccs.Clock.elapsed_us ~since:t0)
    ()

let handle_line_at t ?(read_start = 0) ~deadline_at line =
  let t0 = Ccs.Clock.now_us () in
  Metrics.inc t.m.requests;
  let epoch = t.req_index in
  let tr =
    if t.config.tracing then
      Some (fresh_trace t ~t_start:(if read_start > 0 then read_start else t0))
    else None
  in
  let response =
    match
      span t tr "parse" (fun () ->
          let parsed = Protocol.parse_request line in
          (* Adopt the client's correlation id the moment it is known, so
             every subsequent span (and the parse span itself, recorded
             after this closure returns) carries it. *)
          (match (tr, parsed) with
          | Some tr, Ok (Protocol.Plan { trace_id = Some id; _ }) ->
              tr.trace_id <- id
          | _ -> ());
          parsed)
    with
    | Error e ->
        Metrics.inc t.m.errors;
        Protocol.error_response e
    | Ok Protocol.Ping -> Protocol.pong
    | Ok (Protocol.Plan req) -> (
        match
          E.protect (fun () -> handle_plan t ~t0 ~deadline_at ~tr req)
        with
        | Ok json ->
            (* A client that asked for correlation gets a log line to
               correlate with — untraced requests stay silent. *)
            (match req.trace_id with
            | Some id ->
                Ccs.Log.info t.config.log "request ok"
                  [ ("trace_id", Ccs.Json.String id) ]
            | None -> ());
            json
        | Error e ->
            Metrics.inc t.m.errors;
            (match e with
            | E.Deadline_exceeded _ ->
                Metrics.inc t.m.deadline_exceeded;
                flight_dump t ~trigger:"deadline-exceeded"
            | _ -> ());
            (match (req.trace_id, E.code e) with
            | Some id, code ->
                Ccs.Log.warn t.config.log "request failed"
                  [
                    ("trace_id", Ccs.Json.String id);
                    ("code", Ccs.Json.String code);
                  ]
            | None, _ -> ());
            Protocol.error_response ?trace_id:req.trace_id e)
  in
  if List.mem Fault.Worker_kill (Fault.events_at t.config.chaos epoch) then
    t.die_after_flush <- true;
  t.req_index <- t.req_index + 1;
  Metrics.observe t.m.request_us (Ccs.Clock.elapsed_us ~since:t0);
  (match tr with
  | None -> t.last_trace <- None
  | Some tr ->
      let now = Ccs.Clock.now_us () in
      if read_start > 0 then
        record_span t tr
          ~span_id:(Ccs.Span.fresh_id (Ccs.Flight.spans t.flight))
          ~parent:tr.root ~stage:"read" ~start_us:read_start ~end_us:t0;
      record_span t tr ~span_id:tr.root ~parent:(-1) ~stage:"request"
        ~start_us:tr.t_start ~end_us:now;
      t.last_trace <- Some (tr.trace_id, tr.root));
  (* Snapshot before responding, so a client that has seen the answer
     also sees it reflected in the next scrape. *)
  publish_metrics t;
  Ccs.Json.to_string response

let handle_line t line = handle_line_at t ~deadline_at:None line

(* --- connection handling --------------------------------------------------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Liveness probe: 200 plus the number of processes currently publishing
   metrics snapshots (the live worker count as the scrape sees it). *)
let healthz t =
  let dir = metrics_dir t in
  let workers =
    match Sys.readdir dir with
    | exception Sys_error _ -> 0
    | files ->
        Array.fold_left
          (fun n f ->
            if
              String.length f >= 7
              && String.sub f 0 7 = "worker-"
              && Filename.check_suffix f ".json"
            then n + 1
            else n)
          0 files
  in
  Printf.sprintf "{\"ok\":true,\"workers\":%d}\n" workers

(* Minimal HTTP/1.0 response for probe-style monitoring; everything else
   on the socket is the line protocol.  Content-Length always describes
   the body, and HEAD sends the headers only — so clients that trust the
   headers (curl, kube probes) never hang or over-read. *)
let http_page t first_line =
  let meth, target =
    match String.split_on_char ' ' (strip_cr first_line) with
    | m :: target :: _ -> (m, target)
    | m :: _ -> (m, "/")
    | [] -> ("GET", "/")
  in
  let status, body =
    if target = "/metrics" then ("200 OK", scrape t)
    else if target = "/healthz" then ("200 OK", healthz t)
    else ("404 Not Found", "not found\n")
  in
  let headers =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\nConnection: close\r\n\r\n"
      status (String.length body)
  in
  if meth = "HEAD" then headers else headers ^ body

let is_http line =
  let has p =
    let n = String.length p in
    String.length line >= n && String.sub line 0 n = p
  in
  has "GET " || has "HEAD "

(* Per-connection state in the worker's event loop.  [out]/[out_off] is
   the unflushed tail of the response stream; [deadline_at] is armed by
   the first byte of a request and cleared when its response has fully
   drained, so the budget covers read, plan build and write. *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;
  mutable out_off : int;
  mutable deadline_at : int; (* Clock us; 0 = no budget armed *)
  mutable read_start : int; (* Clock us of the request's first byte; 0 = none *)
  mutable wr : (string * int * int) option;
      (* (trace_id, root span id, write start) of the response being
         drained, pending its write span *)
  mutable started : bool; (* saw the first line (protocol decided) *)
  mutable closing : bool; (* close once [out] drains *)
}

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The worker event loop: a single [select]-driven process multiplexing
   the shared listening socket and up to [max_inflight] connections.
   Concurrency is what makes shedding meaningful — a worker saturated
   with slow clients still accepts, answers [overloaded] and closes,
   instead of leaving connects queued in the kernel backlog. *)
let serve_loop t listen_fd ~stop =
  if t.config.deadline_ms > 0 then install_alarm ();
  Unix.set_nonblock listen_fd;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let inflight () = Hashtbl.length conns in
  let note_inflight () = Metrics.set t.m.inflight (inflight ()) in
  let drop c =
    Hashtbl.remove conns c.fd;
    close_fd c.fd;
    note_inflight ()
  in
  let enqueue c s =
    if c.out_off > 0 then begin
      (* compact before appending so offsets stay small *)
      c.out <- String.sub c.out c.out_off (String.length c.out - c.out_off);
      c.out_off <- 0
    end;
    c.out <- c.out ^ s
  in
  let flush_pending c =
    (* opportunistic write; the remainder waits for writability *)
    let len = String.length c.out - c.out_off in
    if len > 0 then
      match Unix.write_substring c.fd c.out c.out_off len with
      | n -> c.out_off <- c.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error (_, _, _) -> c.closing <- true
  in
  let drained c = String.length c.out = c.out_off in
  (* A response just left the wire in full: only then is the request's
     deadline discharged.  [out] is reset so an empty buffer always means
     "no response pending" — [readable] must not treat a conn that has
     not answered anything yet as having drained a response (that would
     disarm a mid-read deadline the moment the first bytes arrive). *)
  let after_drain c =
    (match c.wr with
    | Some (trace_id, root, w0) ->
        (* the response has fully left the wire: close the write span *)
        record_span t
          { trace_id; root; t_start = w0 }
          ~span_id:(Ccs.Span.fresh_id (Ccs.Flight.spans t.flight))
          ~parent:root ~stage:"write" ~start_us:w0
          ~end_us:(Ccs.Clock.now_us ());
        c.wr <- None
    | None -> ());
    c.out <- "";
    c.out_off <- 0;
    c.deadline_at <- 0;
    if t.die_after_flush then begin
      (* chaos Worker_kill: the response is on the wire, so the contract
         "every accepted request gets exactly one response" holds; dying
         here exercises the parent's respawn path. *)
      Ccs.Log.warn t.config.log "chaos: worker exiting" [];
      exit 70
    end;
    if c.closing then drop c
  in
  let accept_one () =
    match Unix.accept ~cloexec:true listen_fd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | cfd, _ ->
        Unix.set_nonblock cfd;
        let c =
          {
            fd = cfd;
            inbuf = Buffer.create 256;
            out = "";
            out_off = 0;
            deadline_at = 0;
            read_start = 0;
            wr = None;
            started = false;
            closing = false;
          }
        in
        if t.config.max_inflight > 0 && inflight () >= t.config.max_inflight
        then begin
          (* Shed: a structured answer and a clean close, so the client
             backs off instead of timing out against a silent queue. *)
          Metrics.inc t.m.shed;
          flight_dump t ~trigger:"shed";
          let err =
            E.Overloaded
              {
                inflight = inflight ();
                limit = t.config.max_inflight;
                retry_after_ms = t.config.retry_after_ms;
              }
          in
          enqueue c (Ccs.Json.to_string (Protocol.error_response err) ^ "\n");
          c.closing <- true;
          Hashtbl.replace conns cfd c;
          publish_metrics t;
          flush_pending c;
          if drained c then drop c
        end
        else begin
          Hashtbl.replace conns cfd c;
          note_inflight ()
        end
  in
  let process_lines c =
    let data = Buffer.contents c.inbuf in
    if (not c.started) && String.contains data '\n' && is_http data then begin
      c.started <- true;
      enqueue c (http_page t data);
      c.closing <- true
    end
    else begin
      let rec go start =
        match String.index_from_opt data start '\n' with
        | None ->
            Buffer.clear c.inbuf;
            Buffer.add_substring c.inbuf data start (String.length data - start)
        | Some nl ->
            c.started <- true;
            let line = strip_cr (String.sub data start (nl - start)) in
            if line <> "" then begin
              let deadline_at =
                if c.deadline_at > 0 then Some c.deadline_at else None
              in
              let read_start = c.read_start in
              c.read_start <- 0;
              let response =
                (* Last-resort containment: no input line may crash the
                   worker or go unanswered — anything that escapes the
                   structured paths still yields exactly one error line. *)
                try handle_line_at t ~read_start ~deadline_at line
                with e ->
                  disarm_alarm ();
                  t.last_trace <- None;
                  Metrics.inc t.m.errors;
                  Ccs.Log.error t.config.log "request handler raised"
                    [ ("exn", Ccs.Json.String (Printexc.to_string e)) ];
                  flight_dump t ~trigger:"containment";
                  Ccs.Json.to_string
                    (Protocol.error_response
                       (E.Failure_msg
                          {
                            context = "serve";
                            reason = Printexc.to_string e;
                          }))
              in
              (match t.last_trace with
              | Some (trace_id, root) ->
                  (* the write span opens when the response is enqueued
                     and closes in [after_drain] *)
                  c.wr <- Some (trace_id, root, Ccs.Clock.now_us ());
                  t.last_trace <- None
              | None -> ());
              enqueue c (response ^ "\n")
            end;
            go (nl + 1)
      in
      go 0
    end
  in
  let readable c =
    let bytes = Bytes.create 4096 in
    match Unix.read c.fd bytes 0 4096 with
    | 0 -> if drained c then drop c else c.closing <- true
    | n ->
        if c.deadline_at = 0 && t.config.deadline_ms > 0 then
          c.deadline_at <-
            Ccs.Clock.now_us () + (t.config.deadline_ms * 1000);
        if c.read_start = 0 && t.config.tracing then
          c.read_start <- Ccs.Clock.now_us ();
        Buffer.add_subbytes c.inbuf bytes 0 n;
        process_lines c;
        flush_pending c;
        if String.length c.out > 0 && drained c then after_drain c
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> drop c
  in
  let writable c =
    flush_pending c;
    if drained c then after_drain c
  in
  let expire_deadlines () =
    if t.config.deadline_ms > 0 then begin
      let now = Ccs.Clock.now_us () in
      let expired =
        Hashtbl.fold
          (fun _ c acc ->
            if c.deadline_at > 0 && now >= c.deadline_at then c :: acc else acc)
          conns []
      in
      List.iter
        (fun c ->
          Metrics.inc t.m.deadline_exceeded;
          if t.config.tracing && c.read_start > 0 then begin
            (* leave the stalled read in the black box: a root span plus
               its half-open read stage, ending at expiry *)
            let tr = fresh_trace t ~t_start:c.read_start in
            let now = Ccs.Clock.now_us () in
            record_span t tr
              ~span_id:(Ccs.Span.fresh_id (Ccs.Flight.spans t.flight))
              ~parent:tr.root ~stage:"read" ~start_us:c.read_start
              ~end_us:now;
            record_span t tr ~span_id:tr.root ~parent:(-1) ~stage:"request"
              ~start_us:c.read_start ~end_us:now;
            c.read_start <- 0
          end;
          flight_dump t ~trigger:"deadline-exceeded";
          if drained c then begin
            (* mid-read stall: answer the half-sent request and close *)
            let err =
              E.Deadline_exceeded
                { stage = "read"; budget_ms = t.config.deadline_ms }
            in
            enqueue c
              (Ccs.Json.to_string (Protocol.error_response err) ^ "\n");
            c.closing <- true;
            publish_metrics t;
            flush_pending c;
            if drained c then drop c else c.deadline_at <- 0
          end
          else
            (* mid-write stall: the client is not reading its response;
               reclaim the worker slot *)
            drop c)
        expired
    end
  in
  (* [die_after_flush] is acted on in [after_drain] (never here), so a
     pending chaos kill cannot tear a half-written response. *)
  while not (stop ()) do
    let rs =
      listen_fd
      :: Hashtbl.fold (fun fd c acc -> if c.closing then acc else fd :: acc)
           conns []
    in
    let ws =
      Hashtbl.fold (fun fd c acc -> if drained c then acc else fd :: acc)
        conns []
    in
    match Unix.select rs ws [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* a signal (e.g. SIGCHLD in single-process setups) must not
           abort accepting *)
        ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* a connection died under us between building the sets and
           selecting; reap closed fds lazily via their next event *)
        ()
    | rs', ws', _ ->
        if List.memq listen_fd rs' then accept_one ();
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> writable c
            | None -> ())
          ws';
        List.iter
          (fun fd ->
            if fd != listen_fd then
              match Hashtbl.find_opt conns fd with
              | Some c -> readable c
              | None -> ())
          rs';
        expire_deadlines ()
  done;
  Hashtbl.iter (fun _ c -> close_fd c.fd) conns

(* --- sockets and process structure ----------------------------------------- *)

let stop = ref false

let listen_fd config =
  let fd =
    match config.address with
    | Unix_socket path ->
        (* A stale socket file from a crashed daemon would make bind
           fail; nothing can be listening on it if we are starting. *)
        if Sys.file_exists path then (
          try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                failwith ("cannot resolve " ^ host)
            | h -> h.Unix.h_addr_list.(0)
            | exception Not_found -> failwith ("cannot resolve " ^ host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        fd
  in
  Unix.listen fd (max 1 config.backlog);
  fd

let cleanup config fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match config.address with
  | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let clear_stale_snapshots config =
  let dir = Filename.concat config.dir "metrics" in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".json" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let install_stop_handlers () =
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let worker config fd =
  let t = make config in
  (* Children die on SIGTERM (the parent reaps them; only the parent
     runs the graceful-cleanup path) — but first the black box hits the
     disk, so a shutdown still leaves the last-N requests on record. *)
  let die _ =
    (try flight_dump t ~trigger:"sigterm" with _ -> ());
    exit 0
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle die);
  Sys.set_signal Sys.sigint (Sys.Signal_handle die);
  t.report_store <- false;
  publish_metrics t;
  serve_loop t fd ~stop:(fun () -> !stop);
  exit 0

(* --- parent supervision: respawn backoff and the circuit breaker ----------- *)

type supervisor = {
  sm : metrics; (* the parent's own registry: restarts + store gauges *)
  mutable spawned_at : (int * int) list; (* pid -> Clock us at spawn *)
  mutable rapid_deaths : int; (* consecutive deaths under min_uptime *)
  mutable quarantined : int; (* worker slots the breaker has retired *)
  mutable respawn_due : int option; (* Clock us; backoff gate *)
  mutable want : int; (* workers we should be running *)
}

let parent_snapshot_path config =
  Filename.concat (Filename.concat config.dir "metrics") "parent.json"

let publish_parent config s ~quarantined_gauge =
  (* The parent owns the store gauges: one process scanning the shared
     directory reports the truth once, instead of every worker's mirror
     being summed by the scrape merge. *)
  let bytes, entries =
    match Sys.readdir (cache_dir config) with
    | exception Sys_error _ -> (0, 0)
    | files ->
        Array.fold_left
          (fun (b, n) f ->
            if Filename.check_suffix f ".ccsplan" then
              match Unix.stat (Filename.concat (cache_dir config) f) with
              | st -> (b + st.Unix.st_size, n + 1)
              | exception Unix.Unix_error _ -> (b, n)
            else (b, n))
          (0, 0) files
  in
  Metrics.set s.sm.store_bytes bytes;
  Metrics.set s.sm.store_entries entries;
  Metrics.set quarantined_gauge s.quarantined;
  Plan_cache.ensure_dir (Filename.concat config.dir "metrics");
  Ccs.Binio.write_atomic ~path:(parent_snapshot_path config)
    (Metrics.to_json_string s.sm.registry ^ "\n")

let supervise config fd =
  (* The parent keeps its own black box (no spans — it serves no
     requests — but the recent supervision log survives a breaker
     trip). *)
  let flight = Ccs.Flight.create () in
  let config =
    { config with log = Ccs.Log.tee config.log (Ccs.Flight.note_log flight) }
  in
  let sm = make_metrics () in
  let quarantined_gauge =
    Metrics.gauge sm.registry
      ~help:"Worker slots retired by the crash-loop circuit breaker."
      "ccs_serve_workers_quarantined"
  in
  let s =
    {
      sm;
      spawned_at = [];
      rapid_deaths = 0;
      quarantined = 0;
      respawn_due = None;
      want = config.workers;
    }
  in
  let spawn () =
    match Unix.fork () with
    | 0 -> worker config fd
    | pid -> s.spawned_at <- (pid, Ccs.Clock.now_us ()) :: s.spawned_at
  in
  for _ = 1 to config.workers do
    spawn ()
  done;
  publish_parent config s ~quarantined_gauge;
  let nap () =
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let backoff_ms () =
    (* 50ms, 100ms, ... doubling per consecutive rapid death, capped *)
    min 5000 (50 * (1 lsl max 0 (s.rapid_deaths - 1)))
  in
  let on_death pid =
    match List.assoc_opt pid s.spawned_at with
    | None -> () (* not ours *)
    | Some spawned ->
        s.spawned_at <- List.remove_assoc pid s.spawned_at;
        if not !stop then begin
          let uptime_ms = (Ccs.Clock.now_us () - spawned) / 1000 in
          if uptime_ms < config.min_uptime_ms then
            s.rapid_deaths <- s.rapid_deaths + 1
          else s.rapid_deaths <- 0;
          if s.rapid_deaths >= config.breaker_limit then begin
            (* Crash loop: retire the slot instead of burning CPU on a
               deterministic failure.  Remaining workers keep serving. *)
            s.quarantined <- s.quarantined + 1;
            s.want <- s.want - 1;
            s.rapid_deaths <- 0;
            Ccs.Log.error config.log "worker slot quarantined"
              [
                ("pid", Ccs.Json.Int pid);
                ("uptime_ms", Ccs.Json.Int uptime_ms);
                ("remaining", Ccs.Json.Int s.want);
              ];
            Metrics.inc sm.flight_dumps;
            (try
               ignore
                 (Ccs.Flight.dump flight ~dir:(flight_dir config)
                    ~trigger:"breaker-quarantine" ~pid:(Unix.getpid ())
                    ~at_us:(Ccs.Clock.now_us ()))
             with Sys_error _ -> ())
          end
          else begin
            Metrics.inc s.sm.worker_restarts;
            let delay = if s.rapid_deaths = 0 then 0 else backoff_ms () in
            Ccs.Log.warn config.log "worker died, respawning"
              [
                ("pid", Ccs.Json.Int pid);
                ("uptime_ms", Ccs.Json.Int uptime_ms);
                ("backoff_ms", Ccs.Json.Int delay);
              ];
            let due = Ccs.Clock.now_us () + (delay * 1000) in
            s.respawn_due <-
              Some
                (match s.respawn_due with
                | None -> due
                | Some d -> max d due)
          end;
          publish_parent config s ~quarantined_gauge
        end
  in
  let tick = ref 0 in
  while not !stop do
    (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> nap ()
    | pid, _ -> on_death pid
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> nap ());
    (match s.respawn_due with
    | Some due
      when Ccs.Clock.now_us () >= due
           && List.length s.spawned_at < s.want && not !stop ->
        s.respawn_due <- None;
        spawn ()
    | _ -> ());
    incr tick;
    if !tick mod 20 = 0 then publish_parent config s ~quarantined_gauge
  done;
  List.iter
    (fun (pid, _) ->
      try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    s.spawned_at;
  List.iter
    (fun (pid, _) ->
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    s.spawned_at

let run config =
  install_stop_handlers ();
  Plan_cache.ensure_dir config.dir;
  clear_stale_snapshots config;
  let fd = listen_fd config in
  Ccs.Log.info config.log "listening"
    [
      ("address", Ccs.Json.String (pp_address config.address));
      ("dir", Ccs.Json.String config.dir);
      ("workers", Ccs.Json.Int config.workers);
      ("backlog", Ccs.Json.Int config.backlog);
      ("deadline_ms", Ccs.Json.Int config.deadline_ms);
      ("max_inflight", Ccs.Json.Int config.max_inflight);
    ];
  if config.workers <= 0 then begin
    (* Inline mode: one process runs the worker loop itself. *)
    let t = make config in
    publish_metrics t;
    serve_loop t fd ~stop:(fun () -> !stop);
    (try flight_dump t ~trigger:"sigterm" with _ -> ());
    cleanup config fd
  end
  else begin
    supervise config fd;
    cleanup config fd
  end

(* --- client side ----------------------------------------------------------- *)

let connect address =
  match address with
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let request ?(timeout_ms = 0) address line =
  let fd = connect address in
  if timeout_ms > 0 then begin
    (* socket-level timeouts: a stalled daemon surfaces as a transport
       error the retry loop can act on, not a hung client *)
    let s = float_of_int timeout_ms /. 1000.0 in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
  end;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      input_line ic)

(* Retrying client: jittered exponential backoff over transport errors,
   mid-stream EOF and structured [overloaded] responses (honouring their
   [retry_after_ms] hint).  Safe because plan requests are idempotent by
   {!Ccs.Plan_key} digest — a replay either hits the record the lost
   answer stored, or rebuilds the identical artifact. *)
let overloaded_retry_after line =
  match Ccs.Json.of_string line with
  | Ok v -> (
      match Ccs.Json.member "error" v with
      | Some err -> (
          match Ccs.Json.member "code" err with
          | Some (Ccs.Json.String "overloaded") ->
              Some
                (Option.value ~default:0
                   (Option.bind
                      (Ccs.Json.member "retry_after_ms" err)
                      Ccs.Json.to_int))
          | _ -> None)
      | None -> None)
  | Error _ -> None

let request_retry ?(retries = 0) ?(backoff_ms = 50) ?(timeout_ms = 0)
    ?(seed = 0) address line =
  (* xorshift64*, seeded per call so concurrent clients spread out *)
  let rng = ref (Int64.of_int ((seed lxor 0x9e3779b9) lor 1)) in
  let next_jitter bound =
    let x = !rng in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    rng := x;
    if bound <= 0 then 0
    else Int64.to_int (Int64.rem (Int64.shift_right_logical x 3) (Int64.of_int bound))
  in
  let sleep_ms ms =
    if ms > 0 then
      try Unix.sleepf (float_of_int ms /. 1000.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec go attempt =
    let retry hint =
      let base = backoff_ms * (1 lsl min attempt 10) in
      sleep_ms (max hint base + next_jitter (max 1 base));
      go (attempt + 1)
    in
    match request ~timeout_ms address line with
    | line -> (
        match overloaded_retry_after line with
        | Some hint when attempt < retries -> retry hint
        | _ -> line (* out of retries: surface the overloaded response *))
    | exception (Unix.Unix_error _ | End_of_file | Sys_error _ | Sys_blocked_io)
      when attempt < retries ->
        retry 0
  in
  go 0

module E = Ccs.Error
module Metrics = Ccs.Metrics

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  dir : string;
  workers : int;
  log : Ccs.Log.t;
}

let pp_address = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* --- per-worker metrics ---------------------------------------------------- *)

type metrics = {
  registry : Metrics.t;
  requests : Metrics.counter;
  hits : Metrics.counter;
  misses : Metrics.counter;
  errors : Metrics.counter;
  plan_builds : Metrics.counter;
  request_us : Metrics.histogram;
  plan_us : Metrics.histogram;
}

let make_metrics () =
  let registry = Metrics.create () in
  let c name help = Metrics.counter registry ~help name in
  let h name help = Metrics.histogram registry ~help name in
  {
    registry;
    requests = c "ccs_serve_requests_total" "Protocol requests received.";
    hits =
      c "ccs_serve_cache_hits_total"
        "Plan requests answered from the persistent plan cache.";
    misses =
      c "ccs_serve_cache_misses_total"
        "Plan requests that had to run the planner.";
    errors =
      c "ccs_serve_errors_total"
        "Requests answered with a structured error response.";
    plan_builds = c "ccs_serve_plan_builds_total" "Planner pipeline runs.";
    request_us =
      h "ccs_serve_request_us"
        "End-to-end request latency, wall-clock microseconds.";
    plan_us =
      h "ccs_serve_plan_us" "Planner pipeline latency, wall-clock microseconds.";
  }

type t = { config : config; m : metrics }

let make config = { config; m = make_metrics () }

let cache_dir t = Filename.concat t.config.dir "plans"
let metrics_dir t = Filename.concat t.config.dir "metrics"

let snapshot_path t =
  Filename.concat (metrics_dir t)
    (Printf.sprintf "worker-%d.json" (Unix.getpid ()))

(* Publish this worker's registry for /metrics scrapes (from any worker).
   Atomic rename, so a concurrent scrape never reads a torn document. *)
let publish_metrics t =
  Plan_cache.ensure_dir (metrics_dir t);
  Ccs.Binio.write_atomic ~path:(snapshot_path t)
    (Metrics.to_json_string t.m.registry ^ "\n")

let scrape t =
  let dir = metrics_dir t in
  let files =
    if Sys.file_exists dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    else []
  in
  let docs =
    List.filter_map
      (fun f ->
        let path = Filename.concat dir f in
        match In_channel.with_open_text path In_channel.input_all with
        | contents -> Result.to_option (Ccs.Json.of_string contents)
        | exception Sys_error _ -> None)
      files
  in
  Snapshot.to_prometheus (Snapshot.merge docs)

(* --- the planning pipeline ------------------------------------------------- *)

let fail_report (report : Ccs.Check.report) =
  match report.errors with e :: _ -> E.fail e | [] -> ()

let policy_of_ways = function
  | None -> Ccs.Cache.Lru
  | Some 1 -> Ccs.Cache.Direct_mapped
  | Some w -> Ccs.Cache.Set_associative w

(* Rebuild a Plan.t from a cached artifact; also the dry-run path for
   fresh builds, so hits and misses exercise identical code. *)
let plan_of_artifact (a : Protocol.artifact) =
  Ccs.Plan.of_period ~name:a.plan_name ~capacities:a.capacities a.period

let dry_run_of g cache (a : Protocol.artifact) =
  let plan = plan_of_artifact a in
  let lowered = Ccs.Lowering.exn g ~plan ~cache in
  let c = Ccs.Compiled.create lowered in
  Ccs.Compiled.run_periods c 1;
  { Protocol.outputs = Ccs.Compiled.outputs c;
    checksum = Ccs.Compiled.checksum c }

let build_artifact t (req : Protocol.plan_request) g cache : Protocol.artifact =
  let t0 = Ccs.Clock.now_us () in
  let cfg =
    Ccs.Config.make ~policy:cache.Ccs.Cache.policy ~cache_words:req.cache_words
      ~block_words:req.block_words ()
  in
  let choice =
    try Ccs.Auto.plan ~dynamic:false g cfg
    with Ccs.Graph.Invalid_graph reason ->
      E.fail (E.Failure_msg { context = "planning"; reason })
  in
  Metrics.inc t.m.plan_builds;
  let plan =
    match req.capacities with
    | None -> choice.plan
    | Some capacities -> (
        if Array.length capacities <> Ccs.Graph.num_edges g then
          E.fail
            (E.Request_invalid
               {
                 reason =
                   Printf.sprintf "%d capacities for %d channels"
                     (Array.length capacities) (Ccs.Graph.num_edges g);
               });
        let period =
          match choice.plan.period with Some p -> p | None -> assert false
        in
        let pinned =
          Ccs.Plan.of_period ~name:choice.plan.name ~capacities period
        in
        match Ccs.Plan.validate ~cache ~spec:choice.partition g pinned with
        | Ok () -> pinned
        | Error findings -> (
            match
              List.filter (fun e -> E.severity e = `Error) findings
            with
            | e :: _ -> E.fail e
            | [] -> pinned))
  in
  let period =
    match plan.period with Some p -> p | None -> assert false
  in
  let artifact =
    {
      Protocol.plan_name = plan.name;
      batch = choice.batch;
      components = Ccs.Spec.assignment choice.partition;
      capacities = plan.capacities;
      period;
      predicted_mpi =
        Ccs.Analysis.partition_cost_prediction choice.partition choice.analysis
          ~b:req.block_words ~t:choice.batch;
      bandwidth_per_input =
        Ccs.Analysis.bandwidth_per_input choice.partition choice.analysis;
      buffer_words = Ccs.Plan.buffer_words plan;
    }
  in
  Metrics.observe t.m.plan_us (Ccs.Clock.elapsed_us ~since:t0);
  artifact

let handle_plan t ~t0 (req : Protocol.plan_request) =
  fail_report
    (Ccs.Check.cache_config ?ways:req.ways ~size_words:req.cache_words
       ~block_words:req.block_words ());
  let cache =
    Ccs.Cache.config
      ~policy:(policy_of_ways req.ways)
      ~size_words:req.cache_words ~block_words:req.block_words ()
  in
  let g =
    match Ccs.Serial.parse req.graph_text with
    | Ok g -> g
    | Error e -> E.fail e
  in
  fail_report (Ccs.Check.graph g);
  let key =
    Ccs.Plan_key.of_graph g ~cache
      ~capacities:(Option.value req.capacities ~default:[||])
      ~planner_version:Ccs.Auto.planner_version
  in
  let dir = cache_dir t in
  let cached, artifact =
    match Plan_cache.lookup ~dir ~key with
    | Ok (Some artifact) -> (true, artifact)
    | Ok None ->
        let artifact = build_artifact t req g cache in
        (* Store before responding: once a client has seen an answer, a
           repeat of the same request is guaranteed to hit. *)
        Plan_cache.store ~dir ~key artifact;
        (false, artifact)
    | Error e ->
        (* A damaged record is the daemon's problem, not the client's:
           log the structured finding, rebuild, overwrite. *)
        Ccs.Log.warn t.config.log "plan-cache record rejected"
          [
            ("code", Ccs.Json.String (E.code e));
            ("detail", Ccs.Json.String (E.to_string e));
          ];
        let artifact = build_artifact t req g cache in
        Plan_cache.store ~dir ~key artifact;
        (false, artifact)
  in
  Metrics.inc (if cached then t.m.hits else t.m.misses);
  let dry_run = if req.dry_run then Some (dry_run_of g cache artifact) else None in
  Protocol.plan_response ~cached ~key:(Ccs.Plan_key.digest key) ~artifact
    ~dry_run ~elapsed_us:(Ccs.Clock.elapsed_us ~since:t0)

let handle_line t line =
  let t0 = Ccs.Clock.now_us () in
  Metrics.inc t.m.requests;
  let response =
    match Protocol.parse_request line with
    | Error e ->
        Metrics.inc t.m.errors;
        Protocol.error_response e
    | Ok Protocol.Ping -> Protocol.pong
    | Ok (Protocol.Plan req) -> (
        match E.protect (fun () -> handle_plan t ~t0 req) with
        | Ok json -> json
        | Error e ->
            Metrics.inc t.m.errors;
            Protocol.error_response e)
  in
  Metrics.observe t.m.request_us (Ccs.Clock.elapsed_us ~since:t0);
  (* Snapshot before responding, so a client that has seen the answer
     also sees it reflected in the next scrape. *)
  publish_metrics t;
  Ccs.Json.to_string response

(* --- connection handling --------------------------------------------------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Minimal HTTP/1.0 response for Prometheus scrapes; everything else on
   the socket is the line protocol. *)
let serve_http t ic oc first_line =
  let rec drain_headers () =
    match input_line ic with
    | "" | "\r" -> ()
    | _ -> drain_headers ()
    | exception End_of_file -> ()
  in
  drain_headers ();
  let target =
    match String.split_on_char ' ' (strip_cr first_line) with
    | _ :: target :: _ -> target
    | _ -> "/"
  in
  let status, body =
    if target = "/metrics" then ("200 OK", scrape t)
    else ("404 Not Found", "not found\n")
  in
  Printf.fprintf oc
    "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body;
  flush oc

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finish () = try Unix.close fd with Unix.Unix_error _ -> () in
  match input_line ic with
  | exception End_of_file -> finish ()
  | first ->
      if
        String.length first >= 4
        && (String.sub first 0 4 = "GET " || String.sub first 0 5 = "HEAD ")
      then (
        (try serve_http t ic oc first
         with Sys_error _ | Unix.Unix_error _ -> ());
        finish ())
      else begin
        let rec loop line =
          let line = strip_cr line in
          if line <> "" then begin
            output_string oc (handle_line t line);
            output_char oc '\n';
            flush oc
          end;
          match input_line ic with
          | next -> loop next
          | exception End_of_file -> ()
        in
        (try loop first with Sys_error _ | Unix.Unix_error _ -> ());
        finish ()
      end

(* --- sockets and process structure ----------------------------------------- *)

let stop = ref false

let listen_fd config =
  match config.address with
  | Unix_socket path ->
      (* A stale socket file from a crashed daemon would make bind fail;
         nothing can be listening on it if we are starting. *)
      if Sys.file_exists path then (
        try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              failwith ("cannot resolve " ^ host)
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found -> failwith ("cannot resolve " ^ host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let accept_loop t fd =
  while not !stop do
    match Unix.accept fd with
    | client, _ -> (
        try handle_connection t client
        with e ->
          (try Unix.close client with Unix.Unix_error _ -> ());
          Ccs.Log.error t.config.log "connection handler raised"
            [ ("exn", Ccs.Json.String (Printexc.to_string e)) ])
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let cleanup config fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match config.address with
  | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let clear_stale_snapshots config =
  let dir = Filename.concat config.dir "metrics" in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".json" then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let install_stop_handlers () =
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let worker config fd =
  (* Children die on SIGTERM outright (the parent reaps them); only the
     parent runs the graceful-cleanup path. *)
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  let t = { config; m = make_metrics () } in
  publish_metrics t;
  accept_loop t fd;
  exit 0

let run config =
  install_stop_handlers ();
  Plan_cache.ensure_dir config.dir;
  clear_stale_snapshots config;
  let fd = listen_fd config in
  Ccs.Log.info config.log "listening"
    [
      ("address", Ccs.Json.String (pp_address config.address));
      ("dir", Ccs.Json.String config.dir);
      ("workers", Ccs.Json.Int config.workers);
    ];
  if config.workers <= 0 then begin
    (* Inline mode: one process, sequential connections. *)
    let t = { config; m = make_metrics () } in
    publish_metrics t;
    accept_loop t fd;
    cleanup config fd
  end
  else begin
    let spawn () =
      match Unix.fork () with 0 -> worker config fd | pid -> pid
    in
    let children = ref (List.init config.workers (fun _ -> spawn ())) in
    let nap () =
      try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    (* Supervise: respawn workers that die while we are not shutting
       down, so one crashed connection handler cannot drain the pool. *)
    while not !stop do
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | 0, _ -> nap ()
      | pid, _ ->
          children := List.filter (fun p -> p <> pid) !children;
          if not !stop then children := spawn () :: !children
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> nap ()
    done;
    List.iter
      (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      !children;
    List.iter
      (fun pid ->
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      !children;
    cleanup config fd
  end

(* --- client side ----------------------------------------------------------- *)

let connect address =
  match address with
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let request address line =
  let fd = connect address in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      input_line ic)

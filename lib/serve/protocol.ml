module Json = Ccs.Json
module E = Ccs.Error

type plan_request = {
  graph_text : string;
  cache_words : int;
  block_words : int;
  ways : int option;
  capacities : int array option;
  dry_run : bool;
  trace_id : string option;
}

type request = Plan of plan_request | Ping

type artifact = {
  plan_name : string;
  batch : int;
  components : int array;
  capacities : int array;
  period : Ccs.Schedule.t;
  predicted_mpi : float;
  bandwidth_per_input : float;
  buffer_words : int;
}

type dry_run = { outputs : int; checksum : float }

(* --- request parsing ------------------------------------------------------ *)

let invalid fmt = Printf.ksprintf (fun reason -> E.Request_invalid { reason }) fmt

let field name v = Json.member name v

let int_field ?default name v =
  match (field name v, default) with
  | Some j, _ -> (
      match Json.to_int j with
      | Some i -> Ok i
      | None -> Error (invalid "field %S must be an integer" name))
  | None, Some d -> Ok d
  | None, None -> Error (invalid "missing integer field %S" name)

let string_field name v =
  match field name v with
  | Some j -> (
      match Json.to_str j with
      | Some s -> Ok s
      | None -> Error (invalid "field %S must be a string" name))
  | None -> Error (invalid "missing string field %S" name)

let opt_int_field name v =
  match field name v with
  | None | Some Json.Null -> Ok None
  | Some j -> (
      match Json.to_int j with
      | Some i -> Ok (Some i)
      | None -> Error (invalid "field %S must be an integer or null" name))

let opt_string_field name v =
  match field name v with
  | None | Some Json.Null -> Ok None
  | Some j -> (
      match Json.to_str j with
      | Some s -> Ok (Some s)
      | None -> Error (invalid "field %S must be a string or null" name))

let bool_field ~default name v =
  match field name v with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (invalid "field %S must be a boolean" name)

let capacities_field v =
  match field "capacities" v with
  | None | Some Json.Null -> Ok None
  | Some (Json.List items) -> (
      let ints = List.map Json.to_int items in
      if List.for_all Option.is_some ints then
        Ok (Some (Array.of_list (List.map Option.get ints)))
      else Error (invalid "field \"capacities\" must be a list of integers"))
  | Some _ -> Error (invalid "field \"capacities\" must be a list of integers")

let ( let* ) = Result.bind

let parse_request line =
  match Json.of_string line with
  | Error reason -> Error (invalid "unparseable JSON: %s" reason)
  | Ok (Json.Obj _ as v) -> (
      let* op = string_field "op" v in
      match op with
      | "ping" -> Ok Ping
      | "plan" ->
          let* graph_text = string_field "graph" v in
          let* cache_words = int_field "cache_words" v in
          let* block_words = int_field ~default:16 "block_words" v in
          let* ways = opt_int_field "ways" v in
          let* capacities = capacities_field v in
          let* dry_run = bool_field ~default:false "dry_run" v in
          let* trace_id = opt_string_field "trace_id" v in
          Ok (Plan { graph_text; cache_words; block_words; ways; capacities;
                     dry_run; trace_id })
      | op -> Error (invalid "unknown op %S (expected \"plan\" or \"ping\")" op))
  | Ok _ -> Error (invalid "request must be a JSON object")

(* --- schedule serialization ----------------------------------------------- *)

(* JSON form: a firing is its node id, a sequence is a list, a repeat is
   {"r":count,"b":body} — compact (run-length encoded like the schedule
   tree itself) and unambiguous. *)
let rec schedule_to_json = function
  | Ccs.Schedule.Fire v -> Json.Int v
  | Ccs.Schedule.Seq items -> Json.List (List.map schedule_to_json items)
  | Ccs.Schedule.Repeat (k, body) ->
      Json.Obj [ ("r", Json.Int k); ("b", schedule_to_json body) ]

(* --- responses ------------------------------------------------------------ *)

let int_array_json a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

(* Everything below elapsed_us is a pure function of the artifact, so a
   cache hit answers bit-identically to the plan build that populated it
   — the equivalence the soak test asserts. *)
let artifact_json (a : artifact) =
  Json.Obj
    [
      ("name", Json.String a.plan_name);
      ("batch", Json.Int a.batch);
      ("components", int_array_json a.components);
      ("capacities", int_array_json a.capacities);
      ("buffer_words", Json.Int a.buffer_words);
      ("period", schedule_to_json a.period);
    ]

let predicted_json (a : artifact) =
  Json.Obj
    [
      ("misses_per_input", Json.Float a.predicted_mpi);
      ("bandwidth_per_input", Json.Float a.bandwidth_per_input);
    ]

(* Echoed only when the client supplied one: a request without a
   trace_id gets a byte-identical response whether server tracing is on
   or off (the E26 bit-identity gate). *)
let trace_id_json trace_id =
  match trace_id with
  | None -> []
  | Some id -> [ ("trace_id", Json.String id) ]

let plan_response ?trace_id ~cached ~key ~artifact ~dry_run ~elapsed_us () =
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("cached", Json.Bool cached);
       ("key", Json.String key);
       ("plan", artifact_json artifact);
       ("predicted", predicted_json artifact);
     ]
    @ (match dry_run with
      | None -> []
      | Some d ->
          [
            ( "dry_run",
              Json.Obj
                [
                  ("outputs", Json.Int d.outputs);
                  ("checksum", Json.Float d.checksum);
                ] );
          ])
    @ trace_id_json trace_id
    @ [ ("elapsed_us", Json.Int elapsed_us) ])

let pong = Json.Obj [ ("ok", Json.Bool true); ("pong", Json.Bool true) ]

let error_response ?trace_id err =
  (* Machine-actionable context rides along with the code: an overloaded
     response tells the client when to come back. *)
  let extra =
    match err with
    | E.Overloaded { retry_after_ms; _ } ->
        [ ("retry_after_ms", Json.Int retry_after_ms) ]
    | _ -> []
  in
  Json.Obj
    ([
       ("ok", Json.Bool false);
       ( "error",
         Json.Obj
           ([
              ("code", Json.String (E.code err));
              ("message", Json.String (E.to_string err));
            ]
           @ extra) );
     ]
    @ trace_id_json trace_id)

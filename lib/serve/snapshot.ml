module Json = Ccs.Json

type data =
  | Value of int
  | Histo of { count : int; sum : int; buckets : (int * int) list }
      (** [buckets]: (inclusive upper bound, non-cumulative count),
          ascending. *)

type series = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : [ `Counter | `Gauge | `Histogram ];
  data : data;
}

(* --- parsing Metrics.to_json documents ------------------------------------ *)

let labels_of v =
  match Json.member "labels" v with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
        fields
  | _ -> []

let series_of kind v =
  match Json.member "name" v with
  | Some (Json.String name) ->
      let help =
        match Json.member "help" v with Some (Json.String h) -> h | _ -> ""
      in
      let int_field f =
        Option.bind (Json.member f v) Json.to_int |> Option.value ~default:0
      in
      let data =
        match kind with
        | `Counter | `Gauge -> Value (int_field "value")
        | `Histogram ->
            let buckets =
              match Json.member "buckets" v with
              | Some (Json.List bs) ->
                  List.filter_map
                    (fun b ->
                      match
                        ( Option.bind (Json.member "le" b) Json.to_int,
                          Option.bind (Json.member "count" b) Json.to_int )
                      with
                      | Some le, Some n -> Some (le, n)
                      | _ -> None)
                    bs
              | _ -> []
            in
            Histo { count = int_field "count"; sum = int_field "sum"; buckets }
      in
      Some { name; labels = labels_of v; help; kind; data }
  | _ -> None

let of_json doc =
  let section key kind =
    match Json.member key doc with
    | Some (Json.List items) -> List.filter_map (series_of kind) items
    | _ -> []
  in
  section "counters" `Counter
  @ section "gauges" `Gauge
  @ section "histograms" `Histogram

(* --- merging --------------------------------------------------------------- *)

let merge_buckets a b =
  (* Both lists are ascending by bound; merge like a sorted-list union,
     summing counts at equal bounds. *)
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (la, na) :: ta, (lb, _) :: _ when la < lb -> (la, na) :: go ta b
    | (la, _) :: _, (lb, nb) :: tb when lb < la -> (lb, nb) :: go a tb
    | (la, na) :: ta, (_, nb) :: tb -> (la, na + nb) :: go ta tb
  in
  go a b

let merge_data a b =
  match (a, b) with
  | Value x, Value y -> Value (x + y)
  | Histo x, Histo y ->
      Histo
        {
          count = x.count + y.count;
          sum = x.sum + y.sum;
          buckets = merge_buckets x.buckets y.buckets;
        }
  | _, _ -> a

let merge docs =
  (* Sum per-worker snapshots by (name, labels), preserving first-seen
     order so the merged page is stable across scrapes. *)
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun doc ->
      List.iter
        (fun s ->
          let id = (s.name, s.labels) in
          match Hashtbl.find_opt tbl id with
          | None ->
              Hashtbl.add tbl id s;
              order := id :: !order
          | Some prev ->
              Hashtbl.replace tbl id
                {
                  prev with
                  data = merge_data prev.data s.data;
                  help = (if prev.help = "" then s.help else prev.help);
                })
        (of_json doc))
    docs;
  List.rev_map (Hashtbl.find tbl) !order

(* --- Prometheus text exposition -------------------------------------------- *)

(* Mirrors Metrics.to_prometheus so single-worker and merged multi-worker
   pages render identically. *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let add_labels buf labels =
  if labels <> [] then begin
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape buf v;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'
  end

let sample buf name labels v =
  Buffer.add_string buf name;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int v);
  Buffer.add_char buf '\n'

let to_prometheus series =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header s =
    if not (Hashtbl.mem seen_header s.name) then begin
      Hashtbl.add seen_header s.name ();
      if s.help <> "" then begin
        Buffer.add_string buf "# HELP ";
        Buffer.add_string buf s.name;
        Buffer.add_char buf ' ';
        escape buf s.help;
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf "# TYPE ";
      Buffer.add_string buf s.name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (match s.kind with
        | `Counter -> "counter"
        | `Gauge -> "gauge"
        | `Histogram -> "histogram");
      Buffer.add_char buf '\n'
    end
  in
  List.iter
    (fun s ->
      header s;
      match s.data with
      | Value v -> sample buf s.name s.labels v
      | Histo { count; sum; buckets } ->
          let cumulative = ref 0 in
          List.iter
            (fun (le, n) ->
              cumulative := !cumulative + n;
              sample buf (s.name ^ "_bucket")
                (s.labels @ [ ("le", string_of_int le) ])
                !cumulative)
            buckets;
          sample buf (s.name ^ "_bucket") (s.labels @ [ ("le", "+Inf") ]) count;
          sample buf (s.name ^ "_sum") s.labels sum;
          sample buf (s.name ^ "_count") s.labels count)
    series;
  Buffer.contents buf

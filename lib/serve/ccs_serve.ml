(** Scheduling as a service: a long-running daemon ([ccsched serve]) that
    accepts SDF graph specs over a Unix/TCP socket ({!Protocol}), runs the
    full validation → rate analysis → partitioning → plan pipeline, and
    answers with the plan plus its Lemma-4/8 predicted miss bounds.  The
    NP-hard partitioning step is memoised in a persistent on-disk plan
    cache ({!Plan_cache}) keyed by the composite {!Ccs.Plan_key} — graph
    digest, cache configuration, pinned capacities, planner version — so
    repeat requests are answered from disk.  Request/cache/error counters
    and latency histograms are published per worker and merged for
    Prometheus scrapes ({!Snapshot}, {!Server.scrape}). *)

module Protocol = Protocol
module Lru_index = Lru_index
module Plan_cache = Plan_cache
module Snapshot = Snapshot
module Server = Server

(** Merging per-worker metrics snapshots for one [/metrics] page.

    Each daemon worker owns a private {!Ccs.Metrics} registry (plain int
    cells — nothing shareable across [fork]) and publishes it after every
    request as a {!Ccs.Metrics.to_json} document, atomically written to
    the shared state directory.  Whichever worker receives a scrape reads
    all published documents, sums them by [(name, labels)], and renders
    one Prometheus page.  The rendering mirrors
    {!Ccs.Metrics.to_prometheus} — cumulative [_bucket] series with an
    always-present [+Inf], [_sum]/[_count], one HELP/TYPE pair per metric
    — so single-worker and merged multi-worker pages look identical. *)

type data =
  | Value of int
  | Histo of { count : int; sum : int; buckets : (int * int) list }
      (** [buckets]: (inclusive upper bound, non-cumulative count),
          ascending. *)

type series = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : [ `Counter | `Gauge | `Histogram ];
  data : data;
}

val of_json : Ccs.Json.value -> series list
(** Parse one {!Ccs.Metrics.to_json} document.  Malformed entries are
    dropped, not errors — a half-written snapshot must not take down the
    scrape (and cannot occur under the atomic-write discipline anyway). *)

val merge : Ccs.Json.value list -> series list
(** Sum documents by [(name, labels)], preserving first-seen order. *)

val to_prometheus : series list -> string

(** The daemon's line-framed JSON protocol.

    One request per line, one response per line.  A request is a JSON
    object with an ["op"] field:

    - [{"op":"ping"}] — liveness probe, answered with {!pong};
    - [{"op":"plan", "graph":"<Serial text>", "cache_words":m,
       "block_words":b, "ways":w?, "capacities":[..]?, "dry_run":bool?,
       "trace_id":"..."?}]
      — run the full pipeline (validation, rate analysis, partitioning,
      plan construction) and answer with the plan, its Lemma-4/8
      predicted miss bounds, and optionally a compiled-backend dry-run
      checksum.  A client-supplied [trace_id] is echoed in the response
      and carried through server log lines and stage spans, so submit
      output, logs and traces correlate.

    Malformed requests parse to a structured
    {!Ccs.Error.Request_invalid} and are answered with
    {!error_response} — the connection stays open. *)

type plan_request = {
  graph_text : string;  (** {!Ccs.Serial} text form of the graph. *)
  cache_words : int;
  block_words : int;
  ways : int option;
      (** [None] = fully-associative LRU; [Some 1] = direct-mapped;
          [Some w] = [w]-way set-associative. *)
  capacities : int array option;
      (** Pinned per-channel capacities; [None] = planner-chosen. *)
  dry_run : bool;
      (** Run one period on the compiled backend and report its output
          count and checksum. *)
  trace_id : string option;
      (** Client-chosen correlation id, echoed verbatim in the response
          and server telemetry; [None] = untraced request. *)
}

type request = Plan of plan_request | Ping

type artifact = {
  plan_name : string;
  batch : int;  (** Granularity [T] used by the schedule. *)
  components : int array;  (** Per-module component assignment. *)
  capacities : int array;
  period : Ccs.Schedule.t;
  predicted_mpi : float;  (** Lemma-4/8 predicted misses per input. *)
  bandwidth_per_input : float;
  buffer_words : int;
}
(** Everything the daemon computes for a plan request — the unit the
    persistent cache stores.  Responses are a pure function of the
    artifact, so a cache hit answers byte-identically (modulo the
    [cached] flag and elapsed time) to the build that populated it. *)

type dry_run = { outputs : int; checksum : float }

val parse_request : string -> (request, Ccs.Error.t) result
(** Parse one request line.  All failures are [Request_invalid]. *)

val schedule_to_json : Ccs.Schedule.t -> Ccs.Json.value
(** A firing is its module id, a sequence is a list, a repetition is
    [{"r":count,"b":body}]. *)

val plan_response :
  ?trace_id:string ->
  cached:bool ->
  key:string ->
  artifact:artifact ->
  dry_run:dry_run option ->
  elapsed_us:int ->
  unit ->
  Ccs.Json.value
(** [trace_id], when present, is echoed as a ["trace_id"] member; absent
    requests get byte-identical responses whether tracing is on or off. *)

val pong : Ccs.Json.value

val error_response : ?trace_id:string -> Ccs.Error.t -> Ccs.Json.value
(** [{"ok":false,"error":{"code":...,"message":...}}] using the stable
    {!Ccs.Error.code} tags, plus an echoed ["trace_id"] when the request
    carried one. *)

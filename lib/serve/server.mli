(** The scheduling daemon: sockets, workers, metrics, shutdown.

    [run config] binds the configured address (a Unix-domain socket path
    or a TCP host/port), then either serves connections inline
    ([workers <= 0]: one process, sequential connections — the mode unit
    tests use) or preforks [workers] children that [accept] from the
    shared listening socket.  Each connection speaks the line protocol
    ({!Protocol}); a connection whose first line is an HTTP [GET]/[HEAD]
    instead gets a one-shot HTTP/1.0 answer — [GET /metrics] returns the
    Prometheus page merged across every worker's published snapshot
    ({!Snapshot}).

    All durable state lives under [config.dir]: the plan cache in
    [dir/plans] ({!Plan_cache}) and per-worker metrics snapshots in
    [dir/metrics].  Workers share the cache directory without
    coordination — records are atomically written and keyed by content,
    so races between workers are benign.

    [SIGTERM]/[SIGINT] shut down cleanly: workers are terminated and
    reaped, the listening socket is closed and its socket file removed,
    and [run] returns (the CLI then exits 0).  [SIGPIPE] is ignored — a
    client disconnecting mid-response must not kill the daemon. *)

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  dir : string;  (** State directory: plan cache + metrics snapshots. *)
  workers : int;  (** [<= 0]: serve inline in this process. *)
  log : Ccs.Log.t;
}

val pp_address : address -> string

val run : config -> unit
(** Serve until [SIGTERM]/[SIGINT]; returns after cleanup. *)

(** {2 Client side} — used by [ccsched submit] and the tests. *)

val connect : address -> Unix.file_descr
val request : address -> string -> string
(** One round-trip: connect, send one request line, read one response
    line, close.
    @raise Unix.Unix_error if the daemon is unreachable. *)

(** {2 Exposed for tests} *)

type t

val make : config -> t
(** A daemon state without any socket — drive it with {!handle_line}. *)

val handle_line : t -> string -> string
(** Handle one request line (the daemon's core), returning the response
    line (without the trailing newline). *)

val scrape : t -> string
(** The merged Prometheus page. *)

(** The scheduling daemon: sockets, workers, deadlines, shedding,
    supervision, metrics, shutdown.

    [run config] binds the configured address (a Unix-domain socket path
    or a TCP host/port), then either serves inline ([workers <= 0]: one
    process running the worker event loop — the mode unit tests use) or
    preforks [workers] children that share the listening socket.  Each
    worker multiplexes its connections with [select], so a stalled
    client never blocks the others; each connection speaks the line
    protocol ({!Protocol}), and a connection whose first line is an HTTP
    [GET]/[HEAD] instead gets a one-shot HTTP/1.0 answer —
    [GET /metrics] returns the Prometheus page merged across every
    published snapshot ({!Snapshot}).

    Production hardening:
    - {b Deadlines} ([deadline_ms > 0]): each request has a time budget
      covering read, plan build and write.  A stalled client gets a
      structured [deadline-exceeded] answer; a runaway plan build is
      preempted with [ITIMER_REAL]/[SIGALRM] and answers the same way.
    - {b Shedding} ([max_inflight > 0]): a worker at its in-flight limit
      answers new connections with a structured [overloaded] response
      carrying [retry_after_ms], then closes — never silent queueing.
      The kernel accept queue depth is [backlog].
    - {b Bounded store}: the plan cache ([dir/plans]) is a
      {!Plan_cache.Bounded} store — LRU eviction under
      [store_max_bytes]/[store_max_entries], mtime as crash-safe
      recency, corrupt records quarantined.  A per-worker in-memory hot
      cache ([hot_cache] entries) sits in front of it.
    - {b Circuit breaker}: the parent respawns dead workers with
      exponential backoff and, after [breaker_limit] consecutive deaths
      under [min_uptime_ms], retires the crash-looping slot instead of
      burning CPU on it.
    - {b Chaos} ([chaos]): a seeded {!Ccs.Fault} serve-layer plan keyed
      on the per-worker request index — worker kills after the response
      is flushed, suppressed plan-store writes, torn records.
    - {b Tracing} ([tracing]): every request is timed per stage (read,
      parse, key, cache lookup, plan build, dry run, write) into a
      bounded per-worker {!Ccs.Span} ring, surfaced as
      [ccs_serve_stage_us{stage=...}] histograms on [/metrics] and
      exported live under [dir/trace].  Responses are bit-identical with
      tracing on or off; a client-supplied [trace_id] is echoed either
      way.
    - {b Flight recorder} (always on): recent log lines plus the span
      ring are dumped to [dir/flight/worker-<pid>-<trigger>.ccsflight]
      (Binio-framed, checksummed, atomic) on anomaly triggers —
      deadline-exceeded, shed, the containment catch-all, a breaker
      quarantine, and SIGTERM.  Read dumps back with {!Ccs.Flight.load}
      or [ccsched trace].

    All durable state lives under [config.dir]: the plan cache in
    [dir/plans], metrics snapshots in [dir/metrics], flight dumps in
    [dir/flight] and live traces in [dir/trace].  Workers share
    the cache directory without coordination — records are atomically
    written and keyed by content, so races between workers are benign,
    and eviction re-scans the directory so every worker's records count
    against the bound.

    [SIGTERM]/[SIGINT] shut down cleanly: workers are terminated and
    reaped, the listening socket is closed and its socket file removed,
    and [run] returns (the CLI then exits 0).  [SIGPIPE] is ignored — a
    client disconnecting mid-response must not kill the daemon. *)

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  dir : string;  (** State directory: plan cache + metrics snapshots. *)
  workers : int;  (** [<= 0]: serve inline in this process. *)
  log : Ccs.Log.t;
  backlog : int;  (** [listen(2)] queue depth. *)
  deadline_ms : int;  (** Per-request budget; [0] = none. *)
  max_inflight : int;
      (** Per-worker concurrent-connection cap; [0] = unlimited. *)
  retry_after_ms : int;  (** Backoff hint in [overloaded] responses. *)
  store_max_bytes : int;  (** Plan-store byte bound; [0] = unbounded. *)
  store_max_entries : int;  (** Plan-store entry bound; [0] = unbounded. *)
  hot_cache : int;  (** In-memory artifact cache entries; [0] = off. *)
  min_uptime_ms : int;
      (** A worker dying sooner counts as a rapid death to the breaker. *)
  breaker_limit : int;
      (** Consecutive rapid deaths before a worker slot is retired. *)
  chaos : Ccs.Fault.env;  (** Serve-layer fault plan; [[]] = none. *)
  tracing : bool;
      (** Record per-stage spans and live trace files; off by default.
          The flight recorder itself is always on. *)
}

val default_config : address:address -> dir:string -> config
(** Production defaults, chaos-free and unbounded: override fields with
    [{ (default_config ~address ~dir) with ... }]. *)

val pp_address : address -> string

val run : config -> unit
(** Serve until [SIGTERM]/[SIGINT]; returns after cleanup. *)

(** {2 Client side} — used by [ccsched submit] and the tests. *)

val connect : address -> Unix.file_descr

val request : ?timeout_ms:int -> address -> string -> string
(** One round-trip: connect, send one request line, read one response
    line, close.  [timeout_ms > 0] arms socket send/receive timeouts so
    a stalled daemon surfaces as an error instead of a hang.
    @raise Unix.Unix_error if the daemon is unreachable. *)

val request_retry :
  ?retries:int ->
  ?backoff_ms:int ->
  ?timeout_ms:int ->
  ?seed:int ->
  address ->
  string ->
  string
(** {!request} with up to [retries] replays on transport failure,
    mid-stream EOF, or a structured [overloaded] response (sleeping at
    least its [retry_after_ms] hint).  Backoff doubles from [backoff_ms]
    per attempt with seeded jitter.  Safe because plan requests are
    idempotent by {!Ccs.Plan_key} digest.  With retries exhausted, the
    last response (or transport exception) is surfaced as-is. *)

(** {2 Exposed for tests} *)

type t

val make : config -> t
(** A daemon state without any socket — drive it with {!handle_line}.
    Opens the bounded plan store (sweeping and quarantining, so this
    touches [config.dir]). *)

val handle_line : t -> string -> string
(** Handle one request line (the daemon's core), returning the response
    line (without the trailing newline). *)

val scrape : t -> string
(** The merged Prometheus page. *)

val metric_value : t -> ?labels:(string * string) list -> string -> int option
(** Read one series from this process's own registry (counter value,
    gauge value, or histogram observation count) — the readback E26 and
    the tests use to compare cache-miss counts exactly. *)

module E = Ccs.Error
module Binio = Ccs.Binio

let magic = "CCSPLAN1"
let version = 1

let path ~dir key = Filename.concat dir (Ccs.Plan_key.digest key ^ ".ccsplan")

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Schedule trees on the wire: 0 = Fire node, 1 = Seq length items...,
   2 = Repeat count body. *)
let rec encode_schedule w = function
  | Ccs.Schedule.Fire v ->
      Binio.W.int w 0;
      Binio.W.int w v
  | Ccs.Schedule.Seq items ->
      Binio.W.int w 1;
      Binio.W.int w (List.length items);
      List.iter (encode_schedule w) items
  | Ccs.Schedule.Repeat (k, body) ->
      Binio.W.int w 2;
      Binio.W.int w k;
      encode_schedule w body

let rec decode_schedule ~path r =
  match Binio.R.int r with
  | 0 -> Ccs.Schedule.Fire (Binio.R.int r)
  | 1 ->
      let n = Binio.R.int r in
      if n < 0 then
        E.fail
          (E.Checkpoint_corrupt
             { path; reason = Printf.sprintf "negative sequence length %d" n });
      let items = ref [] in
      for _ = 1 to n do
        items := decode_schedule ~path r :: !items
      done;
      Ccs.Schedule.Seq (List.rev !items)
  | 2 ->
      let k = Binio.R.int r in
      Ccs.Schedule.Repeat (k, decode_schedule ~path r)
  | tag ->
      E.fail
        (E.Checkpoint_corrupt
           { path; reason = Printf.sprintf "unknown schedule tag %d" tag })

let encode_artifact w (a : Protocol.artifact) =
  Binio.W.string w a.plan_name;
  Binio.W.int w a.batch;
  Binio.W.int_array w a.components;
  Binio.W.int_array w a.capacities;
  Binio.W.float w a.predicted_mpi;
  Binio.W.float w a.bandwidth_per_input;
  Binio.W.int w a.buffer_words;
  encode_schedule w a.period

let decode_artifact ~path r : Protocol.artifact =
  let plan_name = Binio.R.string r in
  let batch = Binio.R.int r in
  let components = Binio.R.int_array r in
  let capacities = Binio.R.int_array r in
  let predicted_mpi = Binio.R.float r in
  let bandwidth_per_input = Binio.R.float r in
  let buffer_words = Binio.R.int r in
  let period = decode_schedule ~path r in
  {
    plan_name;
    batch;
    components;
    capacities;
    period;
    predicted_mpi;
    bandwidth_per_input;
    buffer_words;
  }

let store ~dir ~key artifact =
  ensure_dir dir;
  let w = Binio.W.create () in
  Ccs.Plan_key.encode w key;
  encode_artifact w artifact;
  Binio.write_file ~path:(path ~dir key) ~magic ~version (Binio.W.contents w)

let lookup ~dir ~key =
  let p = path ~dir key in
  if not (Sys.file_exists p) then Ok None
  else
    match Binio.read_file ~path:p ~magic ~version () with
    | Error e -> Error e
    | Ok payload ->
        Result.map Option.some
          (E.protect (fun () ->
               let r = Binio.R.of_string ~path:p payload in
               let found = Ccs.Plan_key.decode ~path:p r in
               (match Ccs.Plan_key.check ~path:p ~expected:key ~found with
               | Ok () -> ()
               | Error e -> E.fail e);
               let a = decode_artifact ~path:p r in
               Binio.R.expect_end r;
               a))

module Bounded = struct
  (* The bounded store's durable index is the directory itself: each
     record is one file and its mtime is its recency (bumped on every
     hit), so the index survives any crash by construction — a startup
     sweep rebuilds the in-memory {!Lru_index} mirror from a readdir.
     Eviction decisions re-scan the directory so records written by
     sibling workers count against the bound too. *)

  type bounds = { max_bytes : int; max_entries : int }

  let unbounded = { max_bytes = 0; max_entries = 0 }

  type t = {
    dir : string;
    bounds : bounds;
    log : Ccs.Log.t;
    index : unit Lru_index.t;
    mutable evictions : int;
    mutable quarantined : int;
  }

  let quarantine_dir dir = Filename.concat dir "quarantine"
  let is_record f = Filename.check_suffix f ".ccsplan"
  let digest_of_file f = Filename.chop_suffix f ".ccsplan"

  let bytes t = Lru_index.total_weight t.index
  let entries t = Lru_index.size t.index
  let evictions t = t.evictions
  let quarantined t = t.quarantined

  let quarantine t p reason =
    ensure_dir (quarantine_dir t.dir);
    let dst = Filename.concat (quarantine_dir t.dir) (Filename.basename p) in
    (try Sys.rename p dst
     with Sys_error _ -> ( try Sys.remove p with Sys_error _ -> ()));
    ignore (Lru_index.remove t.index (digest_of_file (Filename.basename p)));
    t.quarantined <- t.quarantined + 1;
    Ccs.Log.warn t.log "plan-store record quarantined"
      [ ("path", Ccs.Json.String p); ("reason", Ccs.Json.String reason) ]

  (* Records on disk as [(path, digest, bytes, mtime)]. *)
  let scan dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | files ->
        Array.to_list files
        |> List.filter_map (fun f ->
               if not (is_record f) then None
               else
                 let p = Filename.concat dir f in
                 match Unix.stat p with
                 | exception Unix.Unix_error _ ->
                     None (* raced with an eviction elsewhere *)
                 | st when st.Unix.st_kind = Unix.S_REG ->
                     Some (p, digest_of_file f, st.Unix.st_size, st.Unix.st_mtime)
                 | _ -> None)

  let by_mtime_oldest_first (_, _, _, a) (_, _, _, b) = compare (a : float) b

  (* Rebuild the in-memory mirror from on-disk truth, oldest mtime first
     so index recency equals durable recency. *)
  let resync t recs =
    while Lru_index.evict_lru t.index <> None do
      ()
    done;
    List.iter (fun (_, d, sz, _) -> Lru_index.add t.index d ~weight:sz ()) recs

  let over t =
    (t.bounds.max_bytes > 0 && bytes t > t.bounds.max_bytes)
    || (t.bounds.max_entries > 0 && entries t > t.bounds.max_entries)

  (* Evict least-recent records until within bounds.  The directory is
     shared between sibling workers, so the local mirror undercounts:
     when any bound is set, re-scan before judging — that both counts
     the siblings' records against the bound and makes the globally
     oldest record go first.  (With no bounds this is a no-op, so the
     common unbounded store never pays for the scan.) *)
  let enforce t =
    if t.bounds.max_bytes > 0 || t.bounds.max_entries > 0 then begin
      resync t (List.sort by_mtime_oldest_first (scan t.dir));
      while over t do
        match Lru_index.evict_lru t.index with
        | None -> assert false (* over implies non-empty *)
        | Some (d, _, ()) ->
            (try Sys.remove (Filename.concat t.dir (d ^ ".ccsplan"))
             with Sys_error _ -> ());
            t.evictions <- t.evictions + 1;
            Ccs.Log.info t.log "plan-store eviction"
              [ ("digest", Ccs.Json.String d) ]
      done
    end

  let validate ~path:p ~digest =
    match Binio.read_file ~path:p ~magic ~version () with
    | Error e -> Error e
    | Ok payload ->
        E.protect (fun () ->
            let r = Binio.R.of_string ~path:p payload in
            let found = Ccs.Plan_key.decode ~path:p r in
            if not (String.equal (Ccs.Plan_key.digest found) digest) then
              E.fail
                (E.Checkpoint_mismatch
                   {
                     path = p;
                     field = "key digest";
                     expected = digest;
                     found = Ccs.Plan_key.digest found;
                   });
            let _ = decode_artifact ~path:p r in
            Binio.R.expect_end r)

  let create ?(log = Ccs.Log.null) ~dir ~bounds () =
    ensure_dir dir;
    let t =
      {
        dir;
        bounds;
        log;
        index = Lru_index.create ();
        evictions = 0;
        quarantined = 0;
      }
    in
    let recs = List.sort by_mtime_oldest_first (scan dir) in
    List.iter
      (fun (p, d, sz, _) ->
        match validate ~path:p ~digest:d with
        | Ok () -> Lru_index.add t.index d ~weight:sz ()
        | Error e -> quarantine t p (E.to_string e))
      recs;
    enforce t;
    Ccs.Log.info log "plan-store opened"
      [
        ("entries", Ccs.Json.Int (entries t));
        ("bytes", Ccs.Json.Int (bytes t));
        ("quarantined", Ccs.Json.Int t.quarantined);
      ];
    t

  let store t ~key artifact =
    store ~dir:t.dir ~key artifact;
    let p = path ~dir:t.dir key in
    let sz = try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0 in
    Lru_index.add t.index (Ccs.Plan_key.digest key) ~weight:sz ();
    enforce t

  let lookup t ~key =
    let digest = Ccs.Plan_key.digest key in
    match lookup ~dir:t.dir ~key with
    | Ok None ->
        (* evicted (possibly by a sibling worker) — forget it *)
        ignore (Lru_index.remove t.index digest);
        None
    | Ok (Some a) ->
        let p = path ~dir:t.dir key in
        (* bump durable recency; the file may have just been evicted
           under us, in which case the next resync forgets it *)
        (try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ());
        let sz = try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0 in
        Lru_index.add t.index digest ~weight:sz ();
        Some a
    | Error e ->
        (* torn, corrupt or mismatched record: quarantine it and report a
           miss so the caller rebuilds (planning is deterministic, so the
           rebuilt record is bit-identical to a healthy one) *)
        quarantine t (path ~dir:t.dir key) (E.to_string e);
        None
end

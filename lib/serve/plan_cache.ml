module E = Ccs.Error
module Binio = Ccs.Binio

let magic = "CCSPLAN1"
let version = 1

let path ~dir key = Filename.concat dir (Ccs.Plan_key.digest key ^ ".ccsplan")

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Schedule trees on the wire: 0 = Fire node, 1 = Seq length items...,
   2 = Repeat count body. *)
let rec encode_schedule w = function
  | Ccs.Schedule.Fire v ->
      Binio.W.int w 0;
      Binio.W.int w v
  | Ccs.Schedule.Seq items ->
      Binio.W.int w 1;
      Binio.W.int w (List.length items);
      List.iter (encode_schedule w) items
  | Ccs.Schedule.Repeat (k, body) ->
      Binio.W.int w 2;
      Binio.W.int w k;
      encode_schedule w body

let rec decode_schedule ~path r =
  match Binio.R.int r with
  | 0 -> Ccs.Schedule.Fire (Binio.R.int r)
  | 1 ->
      let n = Binio.R.int r in
      if n < 0 then
        E.fail
          (E.Checkpoint_corrupt
             { path; reason = Printf.sprintf "negative sequence length %d" n });
      let items = ref [] in
      for _ = 1 to n do
        items := decode_schedule ~path r :: !items
      done;
      Ccs.Schedule.Seq (List.rev !items)
  | 2 ->
      let k = Binio.R.int r in
      Ccs.Schedule.Repeat (k, decode_schedule ~path r)
  | tag ->
      E.fail
        (E.Checkpoint_corrupt
           { path; reason = Printf.sprintf "unknown schedule tag %d" tag })

let encode_artifact w (a : Protocol.artifact) =
  Binio.W.string w a.plan_name;
  Binio.W.int w a.batch;
  Binio.W.int_array w a.components;
  Binio.W.int_array w a.capacities;
  Binio.W.float w a.predicted_mpi;
  Binio.W.float w a.bandwidth_per_input;
  Binio.W.int w a.buffer_words;
  encode_schedule w a.period

let decode_artifact ~path r : Protocol.artifact =
  let plan_name = Binio.R.string r in
  let batch = Binio.R.int r in
  let components = Binio.R.int_array r in
  let capacities = Binio.R.int_array r in
  let predicted_mpi = Binio.R.float r in
  let bandwidth_per_input = Binio.R.float r in
  let buffer_words = Binio.R.int r in
  let period = decode_schedule ~path r in
  {
    plan_name;
    batch;
    components;
    capacities;
    period;
    predicted_mpi;
    bandwidth_per_input;
    buffer_words;
  }

let store ~dir ~key artifact =
  ensure_dir dir;
  let w = Binio.W.create () in
  Ccs.Plan_key.encode w key;
  encode_artifact w artifact;
  Binio.write_file ~path:(path ~dir key) ~magic ~version (Binio.W.contents w)

let lookup ~dir ~key =
  let p = path ~dir key in
  if not (Sys.file_exists p) then Ok None
  else
    match Binio.read_file ~path:p ~magic ~version () with
    | Error e -> Error e
    | Ok payload ->
        Result.map Option.some
          (E.protect (fun () ->
               let r = Binio.R.of_string ~path:p payload in
               let found = Ccs.Plan_key.decode ~path:p r in
               (match Ccs.Plan_key.check ~path:p ~expected:key ~found with
               | Ok () -> ()
               | Error e -> E.fail e);
               let a = decode_artifact ~path:p r in
               Binio.R.expect_end r;
               a))

(** Intrusive, weighted LRU index over string keys.

    The plan store's in-memory index and the per-worker hot cache: the
    cache simulator's intrusive-array {!Ccs_cache.Lru} idiom (recency as
    a doubly-linked list through int arrays, an open-addressed table
    with backward-shift deletion), generalised to string keys carrying a
    weight and a value, with slot arrays that grow by doubling.  The
    cache-conscious scheduler's own plan store is itself a bounded
    cache — eviction order here decides which [.ccsplan] records
    survive.

    Not thread-safe; each daemon worker owns its instances. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
(** Live entries. *)

val total_weight : 'a t -> int
(** Sum of live entries' weights (the store's byte total). *)

val find : 'a t -> string -> 'a option
(** Lookup without promoting. *)

val touch : 'a t -> string -> 'a option
(** Lookup and promote to most-recently-used. *)

val add : 'a t -> string -> weight:int -> 'a -> unit
(** Insert as most-recently-used; re-adding an existing key updates its
    weight/value and promotes it. *)

val remove : 'a t -> string -> bool

val evict_lru : 'a t -> (string * int * 'a) option
(** Pop the least-recently-used entry, or [None] if empty. *)

val to_list_mru_first : 'a t -> string list
(** Keys in recency order (for tests). *)

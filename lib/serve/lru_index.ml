(* Intrusive, weighted LRU index over string keys.

   The same idiom as the cache simulator's Lru (lib/cache/lru.ml): all
   structure lives in parallel arrays — slots form a doubly-linked
   recency list through [prev]/[next] (-1 is nil) and an open-addressed
   hash table maps keys to slots — so a touch is an unlink plus a
   push-front of int indices, no allocation.  Two differences fit the
   plan store: keys are strings (plan-key digests) carrying a weight
   (record bytes) and a value, and the arrays grow by doubling instead
   of being fixed at creation, because a store's entry bound may be "no
   bound, only bytes".

   Used twice by the daemon: as the bounded plan store's in-memory index
   (value = unit, weight = record size on disk) and as the per-worker
   hot cache (value = decoded artifact, weight = 1). *)

type 'a t = {
  mutable key : string array; (* key stored in each live slot *)
  mutable value : 'a option array;
  mutable weight : int array;
  mutable prev : int array; (* -1 = nil *)
  mutable next : int array; (* recency chain for live slots, free chain otherwise *)
  mutable head : int; (* most recently used slot, -1 if empty *)
  mutable tail : int; (* least recently used slot, -1 if empty *)
  mutable free : int; (* head of the free-slot chain, -1 if none *)
  mutable size : int;
  mutable total_weight : int;
  (* Open-addressed key -> slot map (linear probing, backward-shift
     deletion).  -1 marks an empty cell. *)
  mutable h_slot : int array;
  mutable mask : int; (* table size - 1; table size is a power of two *)
}

let initial_slots = 16

(* A [len]-element free chain for slots [from .. from+len-1]: each links
   to its successor, the last to nil. *)
let free_chain ~len ~from =
  Array.init len (fun i -> if i = len - 1 then -1 else from + i + 1)

let create () =
  let ts = 4 * initial_slots in
  {
    key = Array.make initial_slots "";
    value = Array.make initial_slots None;
    weight = Array.make initial_slots 0;
    prev = Array.make initial_slots (-1);
    next = free_chain ~len:initial_slots ~from:0;
    head = -1;
    tail = -1;
    free = 0;
    size = 0;
    total_weight = 0;
    h_slot = Array.make ts (-1);
    mask = ts - 1;
  }

let size t = t.size
let total_weight t = t.total_weight

let hash t k = Ccs.Binio.fnv1a64 k land t.mask

(* Table index of [k], or -1 if absent. *)
let hfind t k =
  let i = ref (hash t k) in
  let r = ref (-2) in
  while !r = -2 do
    let s = Array.unsafe_get t.h_slot !i in
    if s < 0 then r := -1
    else if String.equal t.key.(s) k then r := !i
    else i := (!i + 1) land t.mask
  done;
  !r

let hadd t k slot =
  let i = ref (hash t k) in
  while t.h_slot.(!i) >= 0 do
    i := (!i + 1) land t.mask
  done;
  t.h_slot.(!i) <- slot

(* Remove table entry at index [i], shifting later probe-run entries
   back so no tombstone is needed (same invariant as Lru.hdelete_at,
   with the home recomputed from the slot's stored key). *)
let hdelete_at t i =
  let mask = t.mask in
  let i = ref i in
  let j = ref ((!i + 1) land mask) in
  while t.h_slot.(!j) >= 0 do
    let home = hash t t.key.(t.h_slot.(!j)) in
    if (!j - home) land mask >= (!j - !i) land mask then begin
      t.h_slot.(!i) <- t.h_slot.(!j);
      i := !j
    end;
    j := (!j + 1) land mask
  done;
  t.h_slot.(!i) <- -1

let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t s =
  t.prev.(s) <- -1;
  t.next.(s) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- s else t.tail <- s;
  t.head <- s

(* Double the slot arrays and rebuild the (now too dense) hash table.
   Recency order and slot numbering are preserved — only capacity
   changes, so growth is invisible to the eviction order. *)
let grow t =
  let n = Array.length t.key in
  let n' = 2 * n in
  let extend a fill = Array.append a (Array.make n fill) in
  t.key <- extend t.key "";
  t.value <- extend t.value None;
  t.weight <- extend t.weight 0;
  t.prev <- extend t.prev (-1);
  t.next <- Array.append t.next (free_chain ~len:n ~from:n);
  t.free <- n;
  let ts = 4 * n' in
  t.h_slot <- Array.make ts (-1);
  t.mask <- ts - 1;
  for s = 0 to n - 1 do
    (* every slot below [n] is live: the free chain was empty *)
    hadd t t.key.(s) s
  done

let take_free t =
  if t.free < 0 then grow t;
  let s = t.free in
  t.free <- t.next.(s);
  t.size <- t.size + 1;
  s

let find t k =
  match hfind t k with -1 -> None | i -> t.value.(t.h_slot.(i))

let touch t k =
  match hfind t k with
  | -1 -> None
  | i ->
      let s = t.h_slot.(i) in
      if t.head <> s then begin
        unlink t s;
        push_front t s
      end;
      t.value.(s)

let add t k ~weight v =
  match hfind t k with
  | -1 ->
      let s = take_free t in
      t.key.(s) <- k;
      t.value.(s) <- Some v;
      t.weight.(s) <- weight;
      t.total_weight <- t.total_weight + weight;
      push_front t s;
      hadd t k s
  | i ->
      (* Re-adding an existing key updates its weight/value in place and
         bumps it to most-recent — a re-stored record is a fresh one. *)
      let s = t.h_slot.(i) in
      t.total_weight <- t.total_weight - t.weight.(s) + weight;
      t.weight.(s) <- weight;
      t.value.(s) <- Some v;
      if t.head <> s then begin
        unlink t s;
        push_front t s
      end

let release t s =
  t.key.(s) <- "";
  t.value.(s) <- None;
  t.total_weight <- t.total_weight - t.weight.(s);
  t.weight.(s) <- 0;
  t.next.(s) <- t.free;
  t.free <- s;
  t.size <- t.size - 1

let remove t k =
  match hfind t k with
  | -1 -> false
  | i ->
      let s = t.h_slot.(i) in
      hdelete_at t i;
      unlink t s;
      release t s;
      true

let evict_lru t =
  if t.tail < 0 then None
  else begin
    let s = t.tail in
    let k = t.key.(s) and w = t.weight.(s) and v = t.value.(s) in
    (match hfind t k with
    | -1 -> assert false
    | i -> hdelete_at t i);
    unlink t s;
    release t s;
    match v with Some v -> Some (k, w, v) | None -> assert false
  end

let to_list_mru_first t =
  let rec go acc s =
    if s < 0 then List.rev acc else go (t.key.(s) :: acc) t.next.(s)
  in
  go [] t.head

(** The daemon's persistent on-disk plan cache.

    One {!Ccs.Binio} framed/checksummed record per cached plan, named
    [<key-digest>.ccsplan] under the cache directory, where the digest is
    {!Ccs.Plan_key.digest} over the full composite key (graph digest,
    cache configuration, pinned capacities, planner version).  Each record
    embeds the key it was stored under and {!lookup} re-validates it with
    {!Ccs.Plan_key.check} — so even a renamed or colliding file is
    rejected with a structured [Checkpoint_mismatch] naming the offending
    field, never silently served for the wrong configuration.

    Records are written with the shared atomic-write discipline (unique
    temp file + rename), so concurrent workers racing to populate the
    same key are safe: the last complete record wins, and both are
    byte-identical anyway because planning is deterministic. *)

val magic : string
val version : int

val path : dir:string -> Ccs.Plan_key.t -> string
(** Where a key's record lives: [dir/<digest>.ccsplan]. *)

val ensure_dir : string -> unit
(** Create a directory if it does not exist (shared with the metrics
    snapshot directory). *)

val store : dir:string -> key:Ccs.Plan_key.t -> Protocol.artifact -> unit
(** Persist an artifact under its key (creating [dir] if needed).
    @raise Sys_error on I/O failure. *)

val lookup :
  dir:string ->
  key:Ccs.Plan_key.t ->
  (Protocol.artifact option, Ccs.Error.t) result
(** [Ok None] if no record exists; [Error] on a corrupt frame
    ([Checkpoint_corrupt]), format skew ([Checkpoint_version]) or a
    record whose embedded key disagrees with [key]
    ([Checkpoint_mismatch]). *)

(** A size-bounded view of the store with LRU eviction and self-healing.

    The durable index is the directory itself — one file per record,
    mtime as recency (bumped on every hit) — so it is crash-safe by
    construction; {!Bounded.create} rebuilds an in-memory
    {!Lru_index} mirror with a startup sweep that validates every
    record and moves torn or mismatched ones to [dir/quarantine/].
    Eviction re-scans the directory first, so records written by
    sibling daemon workers count against the bound and the globally
    least-recent record goes first. *)
module Bounded : sig
  type bounds = { max_bytes : int; max_entries : int }
  (** [0] means unbounded on that axis. *)

  val unbounded : bounds

  type t

  val create : ?log:Ccs.Log.t -> dir:string -> bounds:bounds -> unit -> t
  (** Open (creating [dir] if needed), sweep, quarantine invalid
      records, and enforce [bounds] on what survives. *)

  val store : t -> key:Ccs.Plan_key.t -> Protocol.artifact -> unit
  (** Persist and enforce bounds (the new record is most-recent, so it
      survives unless it alone exceeds [max_bytes]).
      @raise Sys_error on I/O failure. *)

  val lookup : t -> key:Ccs.Plan_key.t -> Protocol.artifact option
  (** Hit bumps recency.  A corrupt, truncated or key-mismatched record
      is quarantined and reported as a miss: the caller rebuilds, and
      determinism makes the rebuilt record bit-identical to a healthy
      one. *)

  val bytes : t -> int
  (** Bytes of live records, per the mirror (feeds the store gauge). *)

  val entries : t -> int

  val evictions : t -> int
  (** Records evicted over this handle's lifetime. *)

  val quarantined : t -> int
  (** Records quarantined over this handle's lifetime. *)
end

(** The daemon's persistent on-disk plan cache.

    One {!Ccs.Binio} framed/checksummed record per cached plan, named
    [<key-digest>.ccsplan] under the cache directory, where the digest is
    {!Ccs.Plan_key.digest} over the full composite key (graph digest,
    cache configuration, pinned capacities, planner version).  Each record
    embeds the key it was stored under and {!lookup} re-validates it with
    {!Ccs.Plan_key.check} — so even a renamed or colliding file is
    rejected with a structured [Checkpoint_mismatch] naming the offending
    field, never silently served for the wrong configuration.

    Records are written with the shared atomic-write discipline (unique
    temp file + rename), so concurrent workers racing to populate the
    same key are safe: the last complete record wins, and both are
    byte-identical anyway because planning is deterministic. *)

val magic : string
val version : int

val path : dir:string -> Ccs.Plan_key.t -> string
(** Where a key's record lives: [dir/<digest>.ccsplan]. *)

val ensure_dir : string -> unit
(** Create a directory if it does not exist (shared with the metrics
    snapshot directory). *)

val store : dir:string -> key:Ccs.Plan_key.t -> Protocol.artifact -> unit
(** Persist an artifact under its key (creating [dir] if needed).
    @raise Sys_error on I/O failure. *)

val lookup :
  dir:string ->
  key:Ccs.Plan_key.t ->
  (Protocol.artifact option, Ccs.Error.t) result
(** [Ok None] if no record exists; [Error] on a corrupt frame
    ([Checkpoint_corrupt]), format skew ([Checkpoint_version]) or a
    record whose embedded key disagrees with [key]
    ([Checkpoint_mismatch]). *)

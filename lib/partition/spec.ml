module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Q = Ccs_sdf.Rational

type t = {
  graph : Graph.t;
  component : int array; (* normalized: dense, first-appearance order along topo *)
  num_components : int;
}

let of_assignment g a =
  let n = Graph.num_nodes g in
  if Array.length a <> n then
    invalid_arg "Spec.of_assignment: assignment length mismatch";
  (* Renumber densely in order of first appearance along topological order. *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let topo = Graph.topological_order g in
  Array.iter
    (fun v ->
      let c = a.(v) in
      if not (Hashtbl.mem remap c) then begin
        Hashtbl.add remap c !next;
        incr next
      end)
    topo;
  let component = Array.map (fun c -> Hashtbl.find remap c) a in
  { graph = g; component; num_components = !next }

let singletons g = of_assignment g (Array.init (Graph.num_nodes g) Fun.id)
let whole g = of_assignment g (Array.make (Graph.num_nodes g) 0)
let graph t = t.graph
let num_components t = t.num_components
let component_of t v = t.component.(v)

let members t c =
  let topo = Graph.topological_order t.graph in
  Array.to_list topo |> List.filter (fun v -> t.component.(v) = c)

let assignment t = Array.copy t.component

let is_cross t e =
  t.component.(Graph.src t.graph e) <> t.component.(Graph.dst t.graph e)

let cross_edges t = List.filter (is_cross t) (Graph.edges t.graph)
let internal_edges t =
  List.filter (fun e -> not (is_cross t e)) (Graph.edges t.graph)

let component_state t c =
  List.fold_left (fun acc v -> acc + Graph.state t.graph v) 0 (members t c)

let max_component_state t =
  let best = ref 0 in
  for c = 0 to t.num_components - 1 do
    best := max !best (component_state t c)
  done;
  !best

let component_degree t c =
  List.fold_left
    (fun acc e ->
      let s = t.component.(Graph.src t.graph e)
      and d = t.component.(Graph.dst t.graph e) in
      if s <> d && (s = c || d = c) then acc + 1 else acc)
    0 (Graph.edges t.graph)

let max_component_degree t =
  let best = ref 0 in
  for c = 0 to t.num_components - 1 do
    best := max !best (component_degree t c)
  done;
  !best

(* Kahn on the contracted multigraph. *)
let contracted_topo t =
  let k = t.num_components in
  let indeg = Array.make k 0 in
  let succs = Array.make k [] in
  List.iter
    (fun e ->
      let s = t.component.(Graph.src t.graph e)
      and d = t.component.(Graph.dst t.graph e) in
      if s <> d then begin
        indeg.(d) <- indeg.(d) + 1;
        succs.(s) <- d :: succs.(s)
      end)
    (Graph.edges t.graph);
  let queue = Queue.create () in
  for c = 0 to k - 1 do
    if indeg.(c) = 0 then Queue.add c queue
  done;
  let order = Array.make k (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    order.(!count) <- c;
    incr count;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d queue)
      succs.(c)
  done;
  if !count = k then Some order else None

let is_well_ordered t = contracted_topo t <> None

let component_topo_order t =
  match contracted_topo t with
  | Some order -> order
  | None -> invalid_arg "Spec.component_topo_order: partition not well-ordered"

let is_c_bounded t ~bound =
  let ok = ref true in
  for c = 0 to t.num_components - 1 do
    if component_state t c > bound then ok := false
  done;
  !ok

let is_degree_limited t ~bound =
  let ok = ref true in
  for c = 0 to t.num_components - 1 do
    if component_degree t c > bound then ok := false
  done;
  !ok

(* Witness for a non-well-ordered partition: a cycle of components in the
   contracted multigraph, found by DFS over cross edges. *)
let component_cycle t =
  let g = t.graph in
  let k = t.num_components in
  let succs = Array.make k [] in
  List.iter
    (fun e ->
      let s = t.component.(Graph.src g e) and d = t.component.(Graph.dst g e) in
      if s <> d then succs.(s) <- (e, d) :: succs.(s))
    (Graph.edges g);
  let color = Array.make k 0 in
  let cycle = ref None in
  let rec dfs path c =
    color.(c) <- 1;
    List.iter
      (fun (e, d) ->
        if !cycle = None then
          if color.(d) = 1 then begin
            let rec take acc = function
              | [] -> acc
              | (e', s') :: _ when s' = d -> (e', s') :: acc
              | x :: rest -> take (x :: acc) rest
            in
            cycle := Some (take [] ((e, c) :: path))
          end
          else if color.(d) = 0 then dfs ((e, c) :: path) d)
      succs.(c);
    if !cycle = None then color.(c) <- 2
  in
  let c = ref 0 in
  while !cycle = None && !c < k do
    if color.(!c) = 0 then dfs [] !c;
    incr c
  done;
  !cycle

let validate ?bound ?degree_bound t =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  (if not (is_well_ordered t) then
     match component_cycle t with
     | Some steps ->
         let components = List.map snd steps in
         let witness =
           match steps with
           | (e, _) :: _ -> Graph.edge_name t.graph e
           | [] -> "?"
         in
         add (Ccs_sdf.Error.Not_well_ordered { components; witness })
     | None -> assert false);
  (match bound with
  | None -> ()
  | Some bound ->
      for c = 0 to t.num_components - 1 do
        let state = component_state t c in
        if state > bound then
          add
            (Ccs_sdf.Error.Component_overflow
               {
                 component = c;
                 state;
                 bound;
                 members = List.map (Graph.node_name t.graph) (members t c);
               })
      done);
  (match degree_bound with
  | None -> ()
  | Some bound ->
      for c = 0 to t.num_components - 1 do
        let degree = component_degree t c in
        if degree > bound then
          add (Ccs_sdf.Error.Degree_exceeded { component = c; degree; bound })
      done);
  List.rev !errs

let bandwidth t analysis =
  List.fold_left
    (fun acc e -> Q.add acc (Rates.edge_gain analysis e))
    Q.zero (cross_edges t)

let equal a b = a.graph == b.graph && a.component = b.component

let pp fmt t =
  Format.fprintf fmt "@[<v>partition with %d components@," t.num_components;
  for c = 0 to t.num_components - 1 do
    Format.fprintf fmt "  C%d (state %d): %s@," c (component_state t c)
      (String.concat ", "
         (List.map (Graph.node_name t.graph) (members t c)))
  done;
  Format.fprintf fmt "@]"

let to_dot t =
  let g = t.graph in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Graph.name g));
  for c = 0 to t.num_components - 1 do
    Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n" c);
    Buffer.add_string buf
      (Printf.sprintf "    label=\"C%d (%d words)\";\n" c (component_state t c));
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf "    n%d [label=\"%s (%d)\"];\n" v
             (Graph.node_name g v) (Graph.state g v)))
      (members t c);
    Buffer.add_string buf "  }\n"
  done;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d/%d\"%s];\n" (Graph.src g e)
           (Graph.dst g e) (Graph.push g e) (Graph.pop g e)
           (if is_cross t e then ", style=bold" else "")))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Q = Ccs_sdf.Rational

let chain_order g =
  if not (Graph.is_pipeline g) then
    invalid_arg "Pipeline: graph is not a pipeline";
  Graph.topological_order g

(* The unique edge out of [chain.(i)] (towards [chain.(i+1)]). *)
let edge_after g chain i =
  match Graph.out_edges g chain.(i) with
  | [ e ] -> e
  | _ -> invalid_arg "Pipeline: broken chain"

let gain_minimizing_edge g analysis chain ~lo ~hi =
  if lo >= hi then
    invalid_arg "Pipeline.gain_minimizing_edge: segment has no internal edge";
  let best = ref (edge_after g chain lo) in
  for i = lo + 1 to hi - 1 do
    let e = edge_after g chain i in
    if Q.compare (Rates.edge_gain analysis e) (Rates.edge_gain analysis !best)
       < 0
    then best := e
  done;
  !best

let bandwidth_of_cuts _g analysis cuts =
  List.fold_left
    (fun acc e -> Q.add acc (Rates.edge_gain analysis e))
    Q.zero cuts

(* Partition a chain given the set of cut edges: component id increments
   after each cut.  Cut positions are found through a node -> chain-position
   index, so the cost is O(n + cuts) rather than a full chain rescan per
   cut edge (which made 10k-stage segmentations quadratic). *)
let of_cuts g chain cuts =
  let pos = Array.make (Graph.num_nodes g) (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) chain;
  let cut_after = Array.make (Array.length chain) false in
  List.iter (fun e -> cut_after.(pos.(Graph.src g e)) <- true) cuts;
  let a = Array.make (Graph.num_nodes g) 0 in
  let comp = ref 0 in
  Array.iteri
    (fun i v ->
      a.(v) <- !comp;
      if cut_after.(i) then incr comp)
    chain;
  Spec.of_assignment g a

let greedy g analysis ~m =
  let chain = chain_order g in
  let n = Array.length chain in
  Array.iter
    (fun v ->
      if Graph.state g v > m then
        invalid_arg
          (Printf.sprintf "Pipeline.greedy: module %s has state %d > m=%d"
             (Graph.node_name g v) (Graph.state g v) m))
    chain;
  (* Build segments W_i: accumulate until total state exceeds 2m; if less
     than 2m state remains afterwards, fold the remainder into the current
     segment (Theorem 5's construction). *)
  let suffix_state = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    suffix_state.(i) <- suffix_state.(i + 1) + Graph.state g chain.(i)
  done;
  let cuts = ref [] in
  let seg_lo = ref 0 in
  let seg_state = ref 0 in
  let i = ref 0 in
  while !i < n do
    seg_state := !seg_state + Graph.state g chain.(!i);
    if !seg_state > 2 * m then begin
      if suffix_state.(!i + 1) >= 2 * m then begin
        (* Segment W = chain[seg_lo .. i] is complete; cut at its
           gain-minimizing edge. *)
        let e = gain_minimizing_edge g analysis chain ~lo:!seg_lo ~hi:!i in
        cuts := e :: !cuts;
        seg_lo := !i + 1;
        seg_state := 0
      end
      else begin
        (* Fewer than 2m remain: absorb the rest into this segment. *)
        if suffix_state.(!i + 1) > 0 then begin
          seg_state := !seg_state + suffix_state.(!i + 1);
          i := n - 1
        end;
        let e = gain_minimizing_edge g analysis chain ~lo:!seg_lo ~hi:(n - 1) in
        cuts := e :: !cuts;
        seg_lo := n;
        seg_state := 0;
        i := n (* done *)
      end
    end;
    incr i
  done;
  of_cuts g chain !cuts

let optimal_dp g analysis ~bound =
  let chain = chain_order g in
  let n = Array.length chain in
  Array.iter
    (fun v ->
      if Graph.state g v > bound then
        invalid_arg
          (Printf.sprintf
             "Pipeline.optimal_dp: module %s has state %d > bound=%d"
             (Graph.node_name g v) (Graph.state g v) bound))
    chain;
  (* dp.(i) = minimum total cut gain for partitioning chain[0..i-1] into
     segments of state <= bound; cut cost before position j (j > 0) is the
     gain of the edge chain[j-1] -> chain[j]. *)
  let dp = Array.make (n + 1) None in
  let choice = Array.make (n + 1) (-1) in
  dp.(0) <- Some Q.zero;
  for i = 1 to n do
    (* Last segment is chain[j .. i-1]; iterate j from i-1 down while the
       segment still fits. *)
    let seg_state = ref 0 in
    let j = ref (i - 1) in
    let continue_scan = ref true in
    while !continue_scan && !j >= 0 do
      seg_state := !seg_state + Graph.state g chain.(!j);
      if !seg_state > bound then continue_scan := false
      else begin
        let cost_before =
          if !j = 0 then Some Q.zero
          else
            match dp.(!j) with
            | None -> None
            | Some c ->
                Some (Q.add c (Rates.edge_gain analysis (edge_after g chain (!j - 1))))
        in
        (match cost_before with
        | Some c
          when dp.(i) = None || Q.compare c (Option.get dp.(i)) < 0 ->
            dp.(i) <- Some c;
            choice.(i) <- !j
        | _ -> ());
        decr j
      end
    done
  done;
  (match dp.(n) with
  | None -> invalid_arg "Pipeline.optimal_dp: no feasible segmentation"
  | Some _ -> ());
  (* Reconstruct cuts. *)
  let cuts = ref [] in
  let pos = ref n in
  while !pos > 0 do
    let j = choice.(!pos) in
    if j > 0 then cuts := edge_after g chain (j - 1) :: !cuts;
    pos := j
  done;
  of_cuts g chain !cuts

(** Partitions of streaming graphs into components (Definitions 2 and 3).

    A partition assigns every module of a graph to exactly one {e component}.
    Channels whose endpoints share a component are {e internal edges};
    channels crossing components are {e cross edges}.  The paper cares about
    three properties:

    - {e well-ordered}: contracting every component yields an acyclic
      multigraph, so whole components can be scheduled one after another;
    - {e c-bounded}: each component's total module state is at most [c * m]
      for cache size [m], so a component fits in an [O(m)] cache;
    - low {e bandwidth}: the sum over cross edges of the edge gain — tokens
      crossing component boundaries per source firing — which the paper
      proves is, up to constants and a [1/B] factor, the unavoidable
      cache-miss cost per input of any schedule.

    Component ids are dense, [0 .. num_components - 1], and normalized so
    that for well-ordered partitions ids increase along a topological order
    of the contracted graph. *)

type t

val of_assignment : Ccs_sdf.Graph.t -> int array -> t
(** [of_assignment g a] is the partition placing node [v] in component
    [a.(v)].  Ids are renumbered densely (in order of first appearance along
    the graph's topological order, so a well-ordered input gets
    topologically sorted ids).
    @raise Invalid_argument if the array length differs from the node
    count. *)

val singletons : Ccs_sdf.Graph.t -> t
(** Every module in its own component. *)

val whole : Ccs_sdf.Graph.t -> t
(** All modules in one component. *)

val graph : t -> Ccs_sdf.Graph.t
val num_components : t -> int
val component_of : t -> Ccs_sdf.Graph.node -> int
val members : t -> int -> Ccs_sdf.Graph.node list
(** Modules of a component, in topological order. *)

val assignment : t -> int array
(** Copy of the normalized node-to-component map. *)

val cross_edges : t -> Ccs_sdf.Graph.edge list
val internal_edges : t -> Ccs_sdf.Graph.edge list
val is_cross : t -> Ccs_sdf.Graph.edge -> bool

val component_state : t -> int -> int
(** Total module state of a component. *)

val max_component_state : t -> int

val component_degree : t -> int -> int
(** Number of cross edges incident on a component — the quantity the
    degree-limited condition of Lemma 8 bounds by [O(m/b)]. *)

val max_component_degree : t -> int

val is_well_ordered : t -> bool
(** Whether the contracted multigraph is acyclic (Definition 2). *)

val is_c_bounded : t -> bound:int -> bool
(** Whether every component's state is at most [bound] (the paper's
    [c * m], with the caller choosing [c]). *)

val is_degree_limited : t -> bound:int -> bool
(** Whether every component's cross-edge degree is at most [bound] (the
    paper's [O(m/b)]). *)

val validate : ?bound:int -> ?degree_bound:int -> t -> Ccs_sdf.Error.t list
(** Check the partition against the paper's preconditions, with witnesses:
    - [Not_well_ordered] when the contracted multigraph has a cycle — the
      report names the component cycle and a witness cross edge on it
      (Definition 2);
    - [Component_overflow] for every component whose state exceeds [bound]
      (c-boundedness, Definition 2), naming the members;
    - [Degree_exceeded] for every component with more than [degree_bound]
      cross edges (the degree-limited condition of Lemma 8).

    Omitting [bound] / [degree_bound] skips those checks.  Empty means the
    partition satisfies everything that was checked. *)

val bandwidth : t -> Ccs_sdf.Rates.analysis -> Ccs_sdf.Rational.t
(** [Σ gain(e)] over cross edges [e] (Definition 3).  For homogeneous
    graphs this is the number of cross edges. *)

val component_topo_order : t -> int array
(** Component ids in a topological order of the contracted graph.
    @raise Invalid_argument if the partition is not well-ordered. *)

val equal : t -> t -> bool
(** Same graph (physically) and same normalized assignment. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering with one cluster per component (modules labelled
    [name (state)], channels [push/pop], cross edges drawn bold). *)

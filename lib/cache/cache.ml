type policy = Lru | Set_associative of int | Direct_mapped

type config = { size_words : int; block_words : int; policy : policy }

let config ?(policy = Lru) ~size_words ~block_words () =
  if block_words <= 0 then invalid_arg "Cache.config: block_words must be > 0";
  if size_words < block_words then
    invalid_arg "Cache.config: size_words must be >= block_words";
  { size_words; block_words; policy }

type engine =
  | Full of Lru.t
  | Sets of { sets : Lru.t array; nsets : int }

type t = {
  mutable cfg : config;
  mutable nblocks : int;
  mutable engine : engine;
  mutable resizes : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  (* Eviction counting is delegated to the per-set LRU engines (the only
     place that knows a replacement displaced a block); this baseline
     makes [reset_stats]/[restore] restart the reported count without a
     hot-path cost. *)
  mutable evict_base : int;
}

let make_engine cfg nblocks =
  match cfg.policy with
  | Lru -> Full (Lru.create ~capacity:nblocks)
  | Direct_mapped ->
      let nsets = nblocks in
      Sets { sets = Array.init nsets (fun _ -> Lru.create ~capacity:1); nsets }
  | Set_associative ways ->
      if ways < 1 then invalid_arg "Cache.create: ways must be >= 1";
      let ways = min ways nblocks in
      (* Round the set count up and shrink the last set, so the modeled
         capacity is exactly [nblocks] even when [ways] does not divide it
         (33 blocks / 4 ways -> 9 sets, the last holding 1 block). *)
      let nsets = (nblocks + ways - 1) / ways in
      let set_capacity s =
        if s = nsets - 1 then nblocks - ((nsets - 1) * ways) else ways
      in
      Sets
        {
          sets =
            Array.init nsets (fun s -> Lru.create ~capacity:(set_capacity s));
          nsets;
        }

let create cfg =
  let nblocks = max 1 (cfg.size_words / cfg.block_words) in
  {
    cfg;
    nblocks;
    engine = make_engine cfg nblocks;
    resizes = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    flushes = 0;
    evict_base = 0;
  }

let size_words t = t.cfg.size_words
let block_words t = t.cfg.block_words
let num_blocks t = t.nblocks
let config_of t = t.cfg

let num_sets t = match t.engine with Full _ -> 1 | Sets { nsets; _ } -> nsets

let engine_capacity t =
  match t.engine with
  | Full lru -> Lru.capacity lru
  | Sets { sets; _ } ->
      Array.fold_left (fun acc s -> acc + Lru.capacity s) 0 sets

let block_of t addr = addr / t.cfg.block_words

let touch_block t blk =
  t.accesses <- t.accesses + 1;
  let hit =
    match t.engine with
    | Full lru -> Lru.touch_hit lru blk
    | Sets { sets; nsets } -> Lru.touch_hit sets.(blk mod nsets) blk
  in
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  hit

(* Traced variant for the observability layer: same statistics, same
   replacement decisions, but reports the evicted victim (or -1) so the
   tracer can emit evict events.  Uses [Lru.touch], whose option result
   allocates — acceptable off the default path. *)
let touch_block_traced t blk =
  t.accesses <- t.accesses + 1;
  let engine =
    match t.engine with
    | Full lru -> lru
    | Sets { sets; nsets } -> sets.(blk mod nsets)
  in
  match Lru.touch engine blk with
  | `Hit ->
      t.hits <- t.hits + 1;
      (true, -1)
  | `Miss evicted ->
      t.misses <- t.misses + 1;
      (false, Option.value evicted ~default:(-1))

let touch t addr = touch_block t (block_of t addr)

let touch_range t ~addr ~len =
  if len > 0 then begin
    let first = block_of t addr and last = block_of t (addr + len - 1) in
    for blk = first to last do
      ignore (touch_block t blk)
    done
  end

let cached t addr =
  let blk = block_of t addr in
  match t.engine with
  | Full lru -> Lru.mem lru blk
  | Sets { sets; nsets } -> Lru.mem sets.(blk mod nsets) blk

let flush t =
  (match t.engine with
  | Full lru -> Lru.clear lru
  | Sets { sets; _ } -> Array.iter Lru.clear sets);
  t.flushes <- t.flushes + 1

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes

let engine_evictions t =
  match t.engine with
  | Full lru -> Lru.evictions lru
  | Sets { sets; _ } ->
      Array.fold_left (fun acc s -> acc + Lru.evictions s) 0 sets

let evictions t = engine_evictions t - t.evict_base

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0;
  t.evict_base <- engine_evictions t

let resizes t = t.resizes

(* --- online reconfiguration ----------------------------------------------

   [resize] models the cache changing shape underneath a running machine:
   contention shrinking the effective capacity, the contending tenant
   leaving again, or an associativity change.  The rule for which residents
   survive is deterministic so adapted runs replay bit-identically:

   - a global hotness order ranks every resident block — recency depth
     first (depth 0 = MRU of its set), set index second — which for the
     fully-associative engine is exactly its MRU-first list;
   - each new replacement set keeps the hottest blocks that map to it, up
     to its capacity, in that order;
   - blocks that fit nowhere were displaced by the reconfiguration and are
     counted as evictions.

   Statistics (accesses/hits/misses/flushes) are continuous across the
   resize; only future replacement behavior changes. *)

let hotness_order t =
  match t.engine with
  | Full lru -> Lru.to_list_mru_first lru
  | Sets { sets; _ } ->
      let lists = Array.map Lru.to_list_mru_first sets in
      let out = ref [] in
      let any = ref true in
      while !any do
        any := false;
        Array.iteri
          (fun i l ->
            match l with
            | [] -> ()
            | k :: rest ->
                lists.(i) <- rest;
                out := k :: !out;
                any := true)
          lists
      done;
      List.rev !out

let resize t cfg =
  if cfg.block_words <> t.cfg.block_words then
    invalid_arg
      (Printf.sprintf
         "Cache.resize: block size cannot change online (%d words -> %d)"
         t.cfg.block_words cfg.block_words);
  let reported_evictions = evictions t in
  let hot = hotness_order t in
  let population = List.length hot in
  let nblocks = max 1 (cfg.size_words / cfg.block_words) in
  let engine = make_engine cfg nblocks in
  let survivors = ref 0 in
  let load lru keys =
    (* [keys] is hottest-first and already clipped to capacity. *)
    Lru.restore_mru_first lru (Array.of_list keys);
    survivors := !survivors + List.length keys
  in
  let rec take n = function
    | k :: rest when n > 0 -> k :: take (n - 1) rest
    | _ -> []
  in
  (match engine with
  | Full lru -> load lru (take (Lru.capacity lru) hot)
  | Sets { sets; nsets } ->
      Array.iteri
        (fun s lru ->
          load lru
            (take (Lru.capacity lru)
               (List.filter (fun blk -> blk mod nsets = s) hot)))
        sets);
  t.cfg <- cfg;
  t.nblocks <- nblocks;
  t.engine <- engine;
  t.resizes <- t.resizes + 1;
  (* Keep the reported eviction count continuous, charging the residents
     the reconfiguration displaced. *)
  let dropped = population - !survivors in
  t.evict_base <- engine_evictions t - (reported_evictions + dropped)

(* Fold [src]'s statistics into [dst] — used when a run migrates to a new
   machine so miss totals stay cumulative across the migration.  Residency
   is NOT transferred (the new layout makes old residents meaningless);
   only the counters carry. *)
let carry_stats ~src dst =
  dst.accesses <- dst.accesses + src.accesses;
  dst.hits <- dst.hits + src.hits;
  dst.misses <- dst.misses + src.misses;
  dst.flushes <- dst.flushes + src.flushes;
  dst.evict_base <- dst.evict_base - (engine_evictions src - src.evict_base)

(* --- persistence ---------------------------------------------------------

   Everything that influences a future access is the per-set recency order
   plus the statistics counters; the hash-table layout inside each [Lru] is
   a lookup index with no bearing on replacement, so dumping recency lists
   and re-touching them restores bit-identical behavior. *)

type persisted = {
  p_accesses : int;
  p_hits : int;
  p_misses : int;
  p_flushes : int;
  p_sets : int array array; (* per replacement set, MRU first *)
}

let engine_sets t =
  match t.engine with Full lru -> [| lru |] | Sets { sets; _ } -> sets

let persist t =
  {
    p_accesses = t.accesses;
    p_hits = t.hits;
    p_misses = t.misses;
    p_flushes = t.flushes;
    p_sets =
      Array.map
        (fun lru -> Array.of_list (Lru.to_list_mru_first lru))
        (engine_sets t);
  }

let restore t p =
  let sets = engine_sets t in
  if Array.length p.p_sets <> Array.length sets then
    invalid_arg
      (Printf.sprintf "Cache.restore: %d sets persisted, engine has %d"
         (Array.length p.p_sets) (Array.length sets));
  Array.iteri (fun i keys -> Lru.restore_mru_first sets.(i) keys) p.p_sets;
  t.accesses <- p.p_accesses;
  t.hits <- p.p_hits;
  t.misses <- p.p_misses;
  t.flushes <- p.p_flushes;
  (* Eviction counts are a diagnostic, not persisted replacement state:
     restart them at the restore point. *)
  t.evict_base <- engine_evictions t

let pp_stats fmt t =
  Format.fprintf fmt
    "accesses=%d hits=%d misses=%d flushes=%d (miss rate %.2f%%)" t.accesses
    t.hits t.misses t.flushes
    (if t.accesses = 0 then 0.0
     else 100.0 *. float_of_int t.misses /. float_of_int t.accesses)

module Opt = struct
  (* Belady's algorithm with next-use indices: keep resident blocks in a
     max-heap ordered by next use; on a miss with a full cache, evict the
     block whose next use is farthest in the future.  Lazy deletion keeps
     the heap simple: entries are (next_use, block) and stale entries are
     skipped when popped. *)

  module Heap = struct
    type t = { mutable data : (int * int) array; mutable len : int }

    let create () = { data = Array.make 64 (0, 0); len = 0 }

    let push h x =
      if h.len = Array.length h.data then begin
        let bigger = Array.make (2 * h.len) (0, 0) in
        Array.blit h.data 0 bigger 0 h.len;
        h.data <- bigger
      end;
      h.data.(h.len) <- x;
      h.len <- h.len + 1;
      let rec up i =
        if i > 0 then begin
          let p = (i - 1) / 2 in
          if fst h.data.(p) < fst h.data.(i) then begin
            let tmp = h.data.(p) in
            h.data.(p) <- h.data.(i);
            h.data.(i) <- tmp;
            up p
          end
        end
      in
      up (h.len - 1)

    let pop h =
      if h.len = 0 then None
      else begin
        let top = h.data.(0) in
        h.len <- h.len - 1;
        h.data.(0) <- h.data.(h.len);
        let rec down i =
          let l = (2 * i) + 1 and r = (2 * i) + 2 in
          let m = ref i in
          if l < h.len && fst h.data.(l) > fst h.data.(!m) then m := l;
          if r < h.len && fst h.data.(r) > fst h.data.(!m) then m := r;
          if !m <> i then begin
            let tmp = h.data.(!m) in
            h.data.(!m) <- h.data.(i);
            h.data.(i) <- tmp;
            down !m
          end
        in
        down 0;
        Some top
      end
  end

  type stats = { misses : int; peak_heap : int }

  let misses_stats ~block_capacity trace =
    if block_capacity < 1 then
      invalid_arg "Cache.Opt.misses: capacity must be >= 1";
    let n = Array.length trace in
    (* next.(i) = index of next occurrence of trace.(i) after i, or n. *)
    let next = Array.make n n in
    let last_seen = Hashtbl.create 64 in
    for i = n - 1 downto 0 do
      (match Hashtbl.find_opt last_seen trace.(i) with
      | Some j -> next.(i) <- j
      | None -> next.(i) <- n);
      Hashtbl.replace last_seen trace.(i) i
    done;
    let resident = Hashtbl.create 64 in
    (* resident: block -> current next-use index (for stale detection) *)
    let heap = Heap.create () in
    let miss_count = ref 0 in
    let peak_heap = ref 0 in
    for i = 0 to n - 1 do
      let blk = trace.(i) in
      (match Hashtbl.find_opt resident blk with
      | Some _ -> () (* hit: only the next-use refresh below *)
      | None ->
          incr miss_count;
          if Hashtbl.length resident >= block_capacity then begin
            (* Evict the resident block with the farthest next use,
               skipping stale heap entries. *)
            let rec evict () =
              match Heap.pop heap with
              | None -> ()
              | Some (nu, b) -> (
                  match Hashtbl.find_opt resident b with
                  | Some cur when cur = nu ->
                      Hashtbl.remove resident b
                  | _ -> evict ())
            in
            evict ()
          end);
      (* Whether hit or miss, [blk] is now resident and its next use
         advances: exactly one heap entry per access, so the heap never
         outgrows the trace. *)
      Hashtbl.replace resident blk next.(i);
      Heap.push heap (next.(i), blk);
      if heap.Heap.len > !peak_heap then peak_heap := heap.Heap.len
    done;
    { misses = !miss_count; peak_heap = !peak_heap }

  let misses ~block_capacity trace =
    (misses_stats ~block_capacity trace).misses

  let block_trace ~block_words trace =
    if block_words <= 0 then
      invalid_arg "Cache.Opt.block_trace: block_words must be > 0";
    Array.map (fun addr -> addr / block_words) trace
end

(** O(1) LRU set over integer keys.

    An intrusive doubly-linked recency list threaded through preallocated
    int arrays, plus an open-addressed key->slot table — no per-access
    allocation on the {!touch_hit} fast path.  Used as the replacement
    engine of the fully-associative cache; exposed separately so its
    invariants can be property-tested on their own. *)

type t

val create : capacity:int -> t
(** An empty LRU set holding at most [capacity] keys.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int
val size : t -> int

val evictions : t -> int
(** Entries displaced by replacement since creation — a monotone
    diagnostic counter for the telemetry layer.  {!clear} and
    {!restore_mru_first} do {e not} reset it (a flush is not an
    eviction). *)

val mem : t -> int -> bool
(** Membership test; does {e not} update recency. *)

val touch : t -> int -> [ `Hit | `Miss of int option ]
(** [touch t k] records a use of [k].  If [k] was present it moves to
    most-recently-used position and the result is [`Hit].  Otherwise [k] is
    inserted and the result is [`Miss evicted], where [evicted] is the
    least-recently-used key removed to make room (or [None] if the set was
    not yet full). *)

val touch_hit : t -> int -> bool
(** [touch_hit t k] is [touch t k = `Hit] but allocation-free: it performs
    the same recency update and (on miss) insertion/eviction, returning
    only whether the access hit.  This is the simulation hot path. *)

val remove : t -> int -> bool
(** [remove t k] deletes [k]; returns whether it was present. *)

val clear : t -> unit

val to_list_mru_first : t -> int list
(** Keys in recency order, most recent first (for tests and
    checkpointing). *)

val resize : t -> capacity:int -> t
(** [resize t ~capacity] is a set with the new capacity holding the
    [min (size t, capacity)] most-recently-used keys of [t], in their exact
    recency order — the deterministic "keep the hottest residents" rule the
    adaptive cache uses when capacity shrinks under contention.  Keys that
    no longer fit count as evictions: the returned set's {!evictions}
    continues [t]'s monotone count plus the number dropped.  [t] itself is
    unchanged.
    @raise Invalid_argument if [capacity < 1]. *)

val restore_mru_first : t -> int array -> unit
(** [restore_mru_first t keys] clears [t] and reloads it so its recency
    order is exactly [keys] (most recent first) — the inverse of
    {!to_list_mru_first}.  Future replacement decisions are then
    bit-identical to the set the keys were dumped from.
    @raise Invalid_argument if [keys] exceeds capacity or holds
    duplicates. *)

(* Intrusive, preallocated LRU set.

   All structure lives in int arrays sized at [create] time: slots
   [0..capacity-1] form a doubly-linked recency list through [prev]/[next]
   (-1 is nil), and an open-addressed hash table maps keys to slots.  The
   hot path ([touch_hit]) performs no allocation: a hit is an unlink plus a
   push-front of int indices; a miss reuses the evicted slot (or pops the
   free list) and updates the table in place.  Deletions use backward-shift
   compaction, so probes never cross tombstones and lookup cost stays
   bounded by the table's load factor (<= 1/4). *)

type t = {
  capacity : int;
  key : int array; (* key stored in each live slot *)
  prev : int array; (* -1 = nil *)
  next : int array; (* recency chain for live slots, free chain otherwise *)
  mutable head : int; (* most recently used slot, -1 if empty *)
  mutable tail : int; (* least recently used slot, -1 if empty *)
  mutable free : int; (* head of the free-slot chain, -1 if full *)
  mutable size : int;
  (* Open-addressed key -> slot map (linear probing, backward-shift
     deletion).  [h_occ] distinguishes empty from occupied so any int —
     including 0 and negatives — is a valid key. *)
  h_key : int array;
  h_slot : int array;
  h_occ : Bytes.t;
  mask : int; (* table size - 1; table size is a power of two *)
  mutable evictions : int; (* LRU entries displaced since creation *)
}

let table_size capacity =
  let rec go n = if n >= 4 * capacity then n else go (2 * n) in
  go 16

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  let ts = table_size capacity in
  let next =
    Array.init capacity (fun i -> if i = capacity - 1 then -1 else i + 1)
  in
  {
    capacity;
    key = Array.make capacity 0;
    prev = Array.make capacity (-1);
    next;
    head = -1;
    tail = -1;
    free = 0;
    size = 0;
    h_key = Array.make ts 0;
    h_slot = Array.make ts 0;
    h_occ = Bytes.make ts '\000';
    mask = ts - 1;
    evictions = 0;
  }

let capacity t = t.capacity
let size t = t.size
let evictions t = t.evictions

(* Fibonacci-style multiplicative hash; the fold of high bits keeps
   sequential keys from clustering in one probe run. *)
let hash t k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land t.mask

(* Table index of [k], or -1 if absent. *)
let hfind t k =
  let i = ref (hash t k) in
  let r = ref (-2) in
  while !r = -2 do
    if Bytes.unsafe_get t.h_occ !i = '\000' then r := -1
    else if Array.unsafe_get t.h_key !i = k then r := !i
    else i := (!i + 1) land t.mask
  done;
  !r

let hadd t k slot =
  let i = ref (hash t k) in
  while Bytes.unsafe_get t.h_occ !i <> '\000' do
    i := (!i + 1) land t.mask
  done;
  t.h_key.(!i) <- k;
  t.h_slot.(!i) <- slot;
  Bytes.unsafe_set t.h_occ !i '\001'

(* Remove table entry at index [i], shifting later probe-run entries back
   so no tombstone is needed. *)
let hdelete_at t i =
  let mask = t.mask in
  let i = ref i in
  let j = ref ((!i + 1) land mask) in
  while Bytes.unsafe_get t.h_occ !j <> '\000' do
    let kj = t.h_key.(!j) in
    let home = hash t kj in
    (* [kj] may move back to [!i] iff its home does not lie strictly
       inside the cyclic interval (i, j]. *)
    if (!j - home) land mask >= (!j - !i) land mask then begin
      t.h_key.(!i) <- kj;
      t.h_slot.(!i) <- t.h_slot.(!j);
      i := !j
    end;
    j := (!j + 1) land mask
  done;
  Bytes.unsafe_set t.h_occ !i '\000'

let mem t k = hfind t k >= 0

let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t s =
  t.prev.(s) <- -1;
  t.next.(s) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- s else t.tail <- s;
  t.head <- s

(* Evict the least-recently-used entry; returns its freed slot.
   Precondition: [t.size = t.capacity >= 1]. *)
let evict_lru t =
  let s = t.tail in
  unlink t s;
  (match hfind t t.key.(s) with
  | -1 -> assert false
  | i -> hdelete_at t i);
  t.evictions <- t.evictions + 1;
  s

(* Take a never-used slot from the free chain.
   Precondition: [t.size < t.capacity]. *)
let take_free t =
  let s = t.free in
  t.free <- t.next.(s);
  t.size <- t.size + 1;
  s

let touch_hit t k =
  let i = hfind t k in
  if i >= 0 then begin
    let s = t.h_slot.(i) in
    if t.head <> s then begin
      unlink t s;
      push_front t s
    end;
    true
  end
  else begin
    let s = if t.size >= t.capacity then evict_lru t else take_free t in
    t.key.(s) <- k;
    push_front t s;
    hadd t k s;
    false
  end

let touch t k =
  let i = hfind t k in
  if i >= 0 then begin
    let s = t.h_slot.(i) in
    if t.head <> s then begin
      unlink t s;
      push_front t s
    end;
    `Hit
  end
  else begin
    let s, evicted =
      if t.size >= t.capacity then begin
        let s = evict_lru t in
        (* the freed slot still holds the evicted key *)
        (s, Some t.key.(s))
      end
      else (take_free t, None)
    in
    t.key.(s) <- k;
    push_front t s;
    hadd t k s;
    `Miss evicted
  end

let remove t k =
  match hfind t k with
  | -1 -> false
  | i ->
      let s = t.h_slot.(i) in
      hdelete_at t i;
      unlink t s;
      t.next.(s) <- t.free;
      t.free <- s;
      t.size <- t.size - 1;
      true

let clear t =
  Bytes.fill t.h_occ 0 (Bytes.length t.h_occ) '\000';
  for i = 0 to t.capacity - 1 do
    t.next.(i) <- (if i = t.capacity - 1 then -1 else i + 1);
    t.prev.(i) <- -1
  done;
  t.head <- -1;
  t.tail <- -1;
  t.free <- 0;
  t.size <- 0

(* Rebuild exactly the recency order of a previously-dumped set: clear, then
   re-touch keys oldest-first so the head of [keys] ends up most recent.
   Duplicate keys would silently shrink the set, so they are rejected —
   restored state must be bit-identical, not merely plausible. *)
let restore_mru_first t keys =
  let n = Array.length keys in
  if n > t.capacity then
    invalid_arg
      (Printf.sprintf "Lru.restore_mru_first: %d keys exceed capacity %d" n
         t.capacity);
  clear t;
  for i = n - 1 downto 0 do
    if not (touch_hit t keys.(i)) then ()
    else invalid_arg "Lru.restore_mru_first: duplicate key"
  done

let to_list_mru_first t =
  let rec go acc s =
    if s < 0 then List.rev acc else go (t.key.(s) :: acc) t.next.(s)
  in
  go [] t.head

(* Capacity change with deterministic survivor selection: the arrays are
   sized at creation, so a resize builds a fresh set and reloads the
   [min (size, capacity)] hottest keys in their exact recency order.  Keys
   that no longer fit were displaced by the resize, so they count as
   evictions — the monotone counter carries over and grows by the number
   dropped. *)
let resize t ~capacity =
  if capacity < 1 then invalid_arg "Lru.resize: capacity must be >= 1";
  let fresh = create ~capacity in
  let rec keep n acc s =
    if s < 0 || n = 0 then List.rev acc
    else keep (n - 1) (t.key.(s) :: acc) t.next.(s)
  in
  let survivors = keep capacity [] t.head in
  (* Load coldest-first so the head of [survivors] ends up most recent. *)
  List.iter (fun k -> ignore (touch_hit fresh k)) (List.rev survivors);
  fresh.evictions <- t.evictions + (t.size - List.length survivors);
  fresh

(** Cache simulator for the external-memory (I/O / DAM) model.

    The paper's cost model (Section 2): a fast memory of [m] words organized
    in blocks of [b] words in front of an arbitrarily large slow memory.
    Touching a word whose block is cached is free; otherwise the block is
    brought in (a {e cache miss}, the unit of cost), possibly evicting
    another block.

    The theorems assume an ideal (offline) replacement; we default to LRU,
    which by Sleator–Tarjan is 2-competitive with OPT at half the capacity —
    within the constant-factor cache augmentation the paper's results
    already tolerate, so every claimed asymptotic shape is preserved.
    Set-associative and direct-mapped variants are provided for
    sensitivity studies, and {!Opt} computes Belady's clairvoyant optimum
    offline for comparison. *)

type policy =
  | Lru  (** Fully associative, least-recently-used (default). *)
  | Set_associative of int
      (** [Set_associative ways]: block address modulo the number of sets
          selects a set; LRU within the set. *)
  | Direct_mapped  (** Equivalent to [Set_associative 1]. *)

type config = {
  size_words : int;  (** Capacity [m] in words. *)
  block_words : int;  (** Block size [b] in words. *)
  policy : policy;
}

val config :
  ?policy:policy -> size_words:int -> block_words:int -> unit -> config
(** @raise Invalid_argument unless [0 < block_words <= size_words]. *)

type t

val create : config -> t
val size_words : t -> int
val block_words : t -> int
val num_blocks : t -> int
(** Capacity in blocks: [size_words / block_words]. *)

val num_sets : t -> int
(** Number of replacement sets: [1] for fully-associative LRU, [nblocks]
    for direct-mapped, [ceil (nblocks / ways)] for set-associative. *)

val engine_capacity : t -> int
(** Total modeled capacity in blocks, summed over all sets.  Always equals
    {!num_blocks}, whatever the policy — set-associative configs whose way
    count does not divide the block count shrink their last set rather than
    dropping capacity. *)

val touch : t -> int -> bool
(** [touch t addr] simulates an access to word address [addr]; returns
    [true] on hit.  Statistics are updated. *)

val touch_block : t -> int -> bool
(** [touch_block t blk] is [touch t (blk * block_words t)]: an access by
    block id rather than word address.  This is the allocation-free hot
    path used by the machine simulator. *)

val touch_block_traced : t -> int -> bool * int
(** [touch_block_traced t blk] is {!touch_block} that additionally reports
    the block evicted to make room ([-1] when the access hit or no
    eviction was needed).  Slightly slower than {!touch_block}; used only
    when a tracer is attached. *)

val touch_range : t -> addr:int -> len:int -> unit
(** Touch [len] consecutive words starting at [addr] (a streaming read or
    write of a whole region). *)

val cached : t -> int -> bool
(** Whether [addr]'s block is currently resident (no side effect). *)

val flush : t -> unit
(** Empty the cache.  Counts towards {!flushes} but not misses. *)

val accesses : t -> int
val hits : t -> int
val misses : t -> int
val flushes : t -> int

val evictions : t -> int
(** Blocks displaced by replacement (summed over all sets) since creation
    or the last {!reset_stats}/{!restore}.  A {!flush} empties the cache
    but does not count as evictions, and the count is {e not} part of the
    {!persisted} state — it is a telemetry diagnostic. *)

val reset_stats : t -> unit

val resize : t -> config -> unit
(** [resize t cfg] reconfigures a live cache in place — the adverse-runtime
    event of the effective capacity shrinking under contention (or being
    restored, or associativity changing).  Residents survive by a
    deterministic "keep the hottest" rule: a global hotness order (recency
    depth first, set index second) ranks every resident block, and each new
    replacement set keeps the hottest blocks mapping to it up to its
    capacity.  Blocks that fit nowhere count towards {!evictions};
    accesses/hits/misses/flushes are continuous across the resize.
    @raise Invalid_argument if [cfg.block_words] differs from the current
    block size (block geometry cannot change online). *)

val resizes : t -> int
(** Number of {!resize} reconfigurations applied since creation. *)

val carry_stats : src:t -> t -> unit
(** [carry_stats ~src dst] adds [src]'s accesses/hits/misses/flushes and
    eviction count onto [dst]'s — plan migration uses this so a run's miss
    totals stay cumulative when execution moves to a new machine.  No
    replacement state is transferred; [src] is unchanged. *)

val pp_stats : Format.formatter -> t -> unit

val config_of : t -> config
(** The configuration this cache was created from. *)

type persisted = {
  p_accesses : int;
  p_hits : int;
  p_misses : int;
  p_flushes : int;
  p_sets : int array array;  (** Per replacement set, MRU first. *)
}
(** A cache's complete replacement-relevant state: statistics plus every
    set's recency order.  A cache restored from this behaves bit-identically
    to the one it was dumped from on any future access sequence. *)

val persist : t -> persisted

val restore : t -> persisted -> unit
(** Load a {!persisted} dump into a cache built from the {e same} config.
    @raise Invalid_argument if the set structure does not match (different
    config) or a set dump is oversized/duplicated (corrupt data that got
    past the file checksum). *)

(** Offline clairvoyant replacement (Belady's OPT), for calibrating how far
    LRU is from the ideal cache the theorems assume. *)
module Opt : sig
  val misses : block_capacity:int -> int array -> int
  (** [misses ~block_capacity trace] is the number of misses OPT incurs on
      the given sequence of {e block} ids with a cache of [block_capacity]
      blocks, starting empty.  Runs in O(n log n). *)

  type stats = { misses : int; peak_heap : int }
  (** [peak_heap] is the lazy-deletion heap's high-water mark — at most one
      entry per access, so it is bounded by the trace length. *)

  val misses_stats : block_capacity:int -> int array -> stats
  (** Like {!misses}, also reporting the internal heap's peak size (for
      regression tests on the lazy-deletion bookkeeping). *)

  val block_trace : block_words:int -> int array -> int array
  (** Map a word-address trace to its block-id trace. *)
end

(** Versioned, checksummed machine checkpoints.

    A checkpoint captures {e everything} that determines a machine
    simulation's future behaviour: firing counts and channel cursors
    ({!Machine.persist}), the cache's per-set recency order and statistics
    ({!Ccs_cache.Cache.persist}), per-entity attribution counters, and the
    tracer's logical clock.  Restoring it into a machine built from the
    same graph, cache configuration and channel capacities therefore
    resumes the run {e bit-identically}: an interrupted-and-resumed run
    reports exactly the miss counts, attribution and sink outputs of an
    uninterrupted one (enforced by a QCheck property in the test suite).

    Files are framed by {!Ccs_sdf.Binio}: magic ["CCSCKPT1"], format
    version, payload length, FNV-1a checksum.  Corruption, truncation and
    version skew surface as structured [Checkpoint_corrupt] /
    [Checkpoint_version] errors; a checkpoint that is intact but belongs
    to a different graph, cache configuration or capacity vector is
    rejected with [Checkpoint_mismatch] naming the offending field. *)

type t = {
  graph_digest : string;  (** Hex MD5 of the graph's canonical text form. *)
  plan_name : string;
  epoch : int;  (** Supervisor epoch at which the snapshot was taken. *)
  cache_config : Ccs_cache.Cache.config;
  capacities : int array;
  machine : Machine.persisted;
  cache : Ccs_cache.Cache.persisted;
  counters : (int array * int array) option;
      (** Per-entity (accesses, misses), when counters were attached. *)
  tracer : (int * int) option;
      (** Tracer (logical clock, dropped events), when a tracer was
          attached. *)
}

val magic : string
val version : int

val graph_digest : Ccs_sdf.Graph.t -> string
(** The digest stored in (and checked against) a checkpoint. *)

val capture : plan_name:string -> epoch:int -> Machine.t -> t
(** Snapshot a machine's complete execution state. *)

val save : ?metrics:Ccs_obs.Metrics.t -> path:string -> t -> unit
(** Write atomically (unique temp file + rename, {!Ccs_sdf.Binio}).  With
    [metrics], bumps [ccs_checkpoint_saves_total] and observes
    [ccs_checkpoint_save_us] (encode+write wall-clock latency,
    microseconds, from {!Clock}) and [ccs_checkpoint_bytes] (payload
    size).
    @raise Sys_error on I/O failure. *)

val load :
  ?metrics:Ccs_obs.Metrics.t -> path:string -> unit -> (t, Ccs_sdf.Error.t) result
(** Read and fully validate a checkpoint file's framing and payload
    structure.  Errors: [Io], [Checkpoint_corrupt], [Checkpoint_version].
    With [metrics], successful loads bump [ccs_checkpoint_loads_total] and
    observe [ccs_checkpoint_load_us] / [ccs_checkpoint_bytes]. *)

val validate : path:string -> t -> Machine.t -> (unit, Ccs_sdf.Error.t) result
(** Check that a loaded checkpoint belongs to this machine: same graph
    digest, cache configuration, channel capacities and counter arity.
    [path] only labels the error. *)

val restore : path:string -> t -> Machine.t -> (unit, Ccs_sdf.Error.t) result
(** {!validate}, then overwrite the machine's execution state, cache
    recency/statistics, counters and tracer clock with the checkpoint's. *)

val load_into :
  ?metrics:Ccs_obs.Metrics.t ->
  path:string ->
  Machine.t ->
  (t, Ccs_sdf.Error.t) result
(** [load] followed by [restore]; returns the checkpoint (for its epoch). *)

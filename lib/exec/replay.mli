(** Replay a recorded word-address trace through a fresh cache simulator.

    The equivalence harness for the compiled backend: the interpreted
    {!Machine} records the block-address sequence its firings touch, the
    compiled program records its own, and replaying either through
    {!Ccs_cache.Cache} must produce the same miss count — the check that
    makes the paper's miss-count predictions transfer to compiled code. *)

type result = { accesses : int; hits : int; misses : int }

val run : cache:Ccs_cache.Cache.config -> int array -> result
(** [run ~cache trace] feeds every word address of [trace] through a fresh
    cache built from [cache] and reports the resulting statistics. *)

val misses : cache:Ccs_cache.Cache.config -> int array -> int
(** [misses ~cache trace] is [(run ~cache trace).misses]. *)

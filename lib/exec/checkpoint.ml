module E = Ccs_sdf.Error
module Binio = Ccs_sdf.Binio
module Graph = Ccs_sdf.Graph
module Cache = Ccs_cache.Cache
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer
module Metrics = Ccs_obs.Metrics

let magic = "CCSCKPT1"
let version = 1

type t = {
  graph_digest : string;
  plan_name : string;
  epoch : int;
  cache_config : Cache.config;
  capacities : int array;
  machine : Machine.persisted;
  cache : Cache.persisted;
  counters : (int array * int array) option;
  tracer : (int * int) option; (* logical clock, dropped-event count *)
}

let graph_digest = Plan_key.graph_digest

let capture ~plan_name ~epoch machine =
  let g = Machine.graph machine in
  let cache = Machine.cache machine in
  {
    graph_digest = graph_digest g;
    plan_name;
    epoch;
    cache_config = Cache.config_of cache;
    capacities =
      Array.init
        (Graph.num_edges g)
        (fun e -> Machine.capacity machine e);
    machine = Machine.persist machine;
    cache = Cache.persist cache;
    counters = Option.map Counters.dump (Machine.counters machine);
    tracer =
      Option.map
        (fun tr -> (Tracer.clock tr, Tracer.dropped tr))
        (Machine.tracer machine);
  }

(* --- wire format ---------------------------------------------------------- *)

let policy_tag = Plan_key.policy_tag
let policy_of_tag = Plan_key.policy_of_tag

let encode t =
  let w = Binio.W.create () in
  Binio.W.string w t.graph_digest;
  Binio.W.string w t.plan_name;
  Binio.W.int w t.epoch;
  Binio.W.int w t.cache_config.Cache.size_words;
  Binio.W.int w t.cache_config.Cache.block_words;
  let tag, ways = policy_tag t.cache_config.Cache.policy in
  Binio.W.int w tag;
  Binio.W.int w ways;
  Binio.W.int_array w t.capacities;
  Binio.W.int_array w t.machine.Machine.p_fire_count;
  Binio.W.int w t.machine.Machine.p_total_fires;
  Binio.W.int_array w t.machine.Machine.p_heads;
  Binio.W.int_array w t.machine.Machine.p_tails;
  Binio.W.int_array w t.machine.Machine.p_consumed;
  Binio.W.int_array w t.machine.Machine.p_produced;
  (match t.machine.Machine.p_budget with
  | None -> Binio.W.int w 0
  | Some b ->
      Binio.W.int w 1;
      Binio.W.int w b);
  Binio.W.int w t.cache.Cache.p_accesses;
  Binio.W.int w t.cache.Cache.p_hits;
  Binio.W.int w t.cache.Cache.p_misses;
  Binio.W.int w t.cache.Cache.p_flushes;
  Binio.W.int w (Array.length t.cache.Cache.p_sets);
  Array.iter (Binio.W.int_array w) t.cache.Cache.p_sets;
  (match t.counters with
  | None -> Binio.W.int w 0
  | Some (accesses, misses) ->
      Binio.W.int w 1;
      Binio.W.int_array w accesses;
      Binio.W.int_array w misses);
  (match t.tracer with
  | None -> Binio.W.int w 0
  | Some (clock, dropped) ->
      Binio.W.int w 1;
      Binio.W.int w clock;
      Binio.W.int w dropped);
  Binio.W.contents w

let decode ~path payload =
  let r = Binio.R.of_string ~path payload in
  let graph_digest = Binio.R.string r in
  let plan_name = Binio.R.string r in
  let epoch = Binio.R.int r in
  let size_words = Binio.R.int r in
  let block_words = Binio.R.int r in
  let tag = Binio.R.int r in
  let ways = Binio.R.int r in
  let policy = policy_of_tag ~path tag ways in
  let cache_config =
    try Cache.config ~policy ~size_words ~block_words ()
    with Invalid_argument msg ->
      E.fail (E.Checkpoint_corrupt { path; reason = msg })
  in
  let capacities = Binio.R.int_array r in
  let p_fire_count = Binio.R.int_array r in
  let p_total_fires = Binio.R.int r in
  let p_heads = Binio.R.int_array r in
  let p_tails = Binio.R.int_array r in
  let p_consumed = Binio.R.int_array r in
  let p_produced = Binio.R.int_array r in
  let p_budget =
    match Binio.R.int r with 0 -> None | _ -> Some (Binio.R.int r)
  in
  let p_accesses = Binio.R.int r in
  let p_hits = Binio.R.int r in
  let p_misses = Binio.R.int r in
  let p_flushes = Binio.R.int r in
  let num_sets = Binio.R.int r in
  if num_sets < 0 || num_sets > String.length payload then
    E.fail
      (E.Checkpoint_corrupt
         { path; reason = Printf.sprintf "implausible set count %d" num_sets });
  let p_sets = Array.init num_sets (fun _ -> Binio.R.int_array r) in
  let counters =
    match Binio.R.int r with
    | 0 -> None
    | _ ->
        let accesses = Binio.R.int_array r in
        let misses = Binio.R.int_array r in
        Some (accesses, misses)
  in
  let tracer =
    match Binio.R.int r with
    | 0 -> None
    | _ ->
        let clock = Binio.R.int r in
        let dropped = Binio.R.int r in
        Some (clock, dropped)
  in
  Binio.R.expect_end r;
  {
    graph_digest;
    plan_name;
    epoch;
    cache_config;
    capacities;
    machine =
      {
        Machine.p_fire_count;
        p_total_fires;
        p_heads;
        p_tails;
        p_consumed;
        p_produced;
        p_budget;
      };
    cache = { Cache.p_accesses; p_hits; p_misses; p_flushes; p_sets };
    counters;
    tracer;
  }

(* Checkpoint I/O telemetry.  Latency is monotonic wall-clock time
   ({!Clock.now_us}): CPU time hid I/O stalls entirely and misreported
   latency whenever several processes shared a core.  The [_us] fields
   stay warn-only in the bench regression gate. *)
let record_io reg ~op ~us ~bytes =
  Metrics.inc
    (Metrics.counter reg
       ~help:(Printf.sprintf "Checkpoint %ss completed" op)
       (Printf.sprintf "ccs_checkpoint_%ss_total" op));
  Metrics.observe
    (Metrics.histogram reg
       ~help:
         (Printf.sprintf "Checkpoint %s latency (wall-clock microseconds)" op)
       (Printf.sprintf "ccs_checkpoint_%s_us" op))
    us;
  Metrics.observe
    (Metrics.histogram reg ~help:"Checkpoint payload size (bytes)"
       "ccs_checkpoint_bytes")
    bytes

let save ?metrics ~path t =
  let t0 = Clock.now_us () in
  let payload = encode t in
  Binio.write_file ~path ~magic ~version payload;
  match metrics with
  | None -> ()
  | Some reg ->
      record_io reg ~op:"save" ~us:(Clock.elapsed_us ~since:t0)
        ~bytes:(String.length payload)

let load ?metrics ~path () =
  let t0 = Clock.now_us () in
  match Binio.read_file ~path ~magic ~version () with
  | Error e -> Error e
  | Ok payload -> (
      match E.protect (fun () -> decode ~path payload) with
      | Error e -> Error e
      | Ok t ->
          (match metrics with
          | None -> ()
          | Some reg ->
              record_io reg ~op:"load" ~us:(Clock.elapsed_us ~since:t0)
                ~bytes:(String.length payload));
          Ok t)

(* --- validation + restore ------------------------------------------------- *)

let key_of t =
  Plan_key.make ~capacities:t.capacities ~graph_digest:t.graph_digest
    ~cache_config:t.cache_config ()

let machine_key machine =
  let g = Machine.graph machine in
  Plan_key.of_graph g
    ~cache:(Cache.config_of (Machine.cache machine))
    ~capacities:
      (Array.init (Graph.num_edges g) (fun e -> Machine.capacity machine e))

let validate ~path t machine =
  (* The identity checks — graph digest, cache configuration, capacity
     vector — are exactly a {!Plan_key} comparison (checkpoints don't
     involve the planner, so both sides carry planner version 0). *)
  match Plan_key.check ~path ~expected:(key_of t) ~found:(machine_key machine) with
  | Error _ as e -> e
  | Ok () -> (
      match (t.counters, Machine.counters machine) with
      | Some (accesses, _), Some c
        when Array.length accesses <> Counters.entities c ->
          Error
            (E.Checkpoint_mismatch
               {
                 path;
                 field = "counters";
                 expected = string_of_int (Array.length accesses);
                 found = string_of_int (Counters.entities c);
               })
      | _ -> Ok ())

let restore ~path t machine =
  match validate ~path t machine with
  | Error e -> Error e
  | Ok () ->
      E.protect (fun () ->
          (try
             Machine.restore machine t.machine;
             Cache.restore (Machine.cache machine) t.cache
           with Invalid_argument msg ->
             E.fail (E.Checkpoint_corrupt { path; reason = msg }));
          (match (t.counters, Machine.counters machine) with
          | Some (accesses, misses), Some c -> Counters.load c ~accesses ~misses
          | None, Some c -> Counters.reset c
          | _, None -> ());
          match (t.tracer, Machine.tracer machine) with
          | Some (clock, dropped), Some tr -> Tracer.restore tr ~clock ~dropped
          | _, _ -> ())

let load_into ?metrics ~path machine =
  match load ?metrics ~path () with
  | Error e -> Error e
  | Ok t -> ( match restore ~path t machine with Error e -> Error e | Ok () -> Ok t)

module E = Ccs_sdf.Error
module Binio = Ccs_sdf.Binio
module Graph = Ccs_sdf.Graph
module Cache = Ccs_cache.Cache

type t = {
  graph_digest : string;
  cache_config : Cache.config;
  capacities : int array;
  planner_version : int;
}

let graph_digest g = Digest.to_hex (Digest.string (Ccs_sdf.Serial.to_text g))

let make ?(capacities = [||]) ?(planner_version = 0) ~graph_digest
    ~cache_config () =
  { graph_digest; cache_config; capacities; planner_version }

let of_graph ?capacities ?planner_version g ~cache =
  make ?capacities ?planner_version ~graph_digest:(graph_digest g)
    ~cache_config:cache ()

(* --- rendering ------------------------------------------------------------ *)

let pp_policy = function
  | Cache.Lru -> "lru"
  | Cache.Set_associative ways -> Printf.sprintf "set-associative/%d" ways
  | Cache.Direct_mapped -> "direct-mapped"

let pp_cache_config c =
  Printf.sprintf "%dw/%db/%s" c.Cache.size_words c.Cache.block_words
    (pp_policy c.Cache.policy)

let pp_capacities caps =
  if Array.length caps = 0 then "planner-chosen"
  else String.concat "," (Array.to_list (Array.map string_of_int caps))

let to_string t =
  Printf.sprintf "%s/%s/caps=%s/v%d" t.graph_digest
    (pp_cache_config t.cache_config)
    (pp_capacities t.capacities)
    t.planner_version

(* --- wire form ------------------------------------------------------------ *)

let policy_tag = function
  | Cache.Lru -> (0, 0)
  | Cache.Set_associative ways -> (1, ways)
  | Cache.Direct_mapped -> (2, 0)

let policy_of_tag ~path tag ways =
  match tag with
  | 0 -> Cache.Lru
  | 1 -> Cache.Set_associative ways
  | 2 -> Cache.Direct_mapped
  | _ ->
      E.fail
        (E.Checkpoint_corrupt
           { path; reason = Printf.sprintf "unknown cache policy tag %d" tag })

let encode w t =
  Binio.W.string w t.graph_digest;
  Binio.W.int w t.cache_config.Cache.size_words;
  Binio.W.int w t.cache_config.Cache.block_words;
  let tag, ways = policy_tag t.cache_config.Cache.policy in
  Binio.W.int w tag;
  Binio.W.int w ways;
  Binio.W.int_array w t.capacities;
  Binio.W.int w t.planner_version

let decode ~path r =
  let graph_digest = Binio.R.string r in
  let size_words = Binio.R.int r in
  let block_words = Binio.R.int r in
  let tag = Binio.R.int r in
  let ways = Binio.R.int r in
  let policy = policy_of_tag ~path tag ways in
  let cache_config =
    try Cache.config ~policy ~size_words ~block_words ()
    with Invalid_argument msg ->
      E.fail (E.Checkpoint_corrupt { path; reason = msg })
  in
  let capacities = Binio.R.int_array r in
  let planner_version = Binio.R.int r in
  { graph_digest; cache_config; capacities; planner_version }

let digest t =
  let w = Binio.W.create () in
  encode w t;
  Digest.to_hex (Digest.string (Binio.W.contents w))

(* --- mismatch discipline -------------------------------------------------- *)

let check ~path ~expected ~found =
  let mismatch field exp fnd =
    Error (E.Checkpoint_mismatch { path; field; expected = exp; found = fnd })
  in
  if expected.graph_digest <> found.graph_digest then
    mismatch "graph" expected.graph_digest found.graph_digest
  else if expected.cache_config <> found.cache_config then
    mismatch "cache"
      (pp_cache_config expected.cache_config)
      (pp_cache_config found.cache_config)
  else if expected.capacities <> found.capacities then
    mismatch "capacities"
      (pp_capacities expected.capacities)
      (pp_capacities found.capacities)
  else if expected.planner_version <> found.planner_version then
    mismatch "planner version"
      (string_of_int expected.planner_version)
      (string_of_int found.planner_version)
  else Ok ()

let equal a b = check ~path:"" ~expected:a ~found:b = Ok ()

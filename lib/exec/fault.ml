module Graph = Ccs_sdf.Graph
module E = Ccs_sdf.Error

type site = { node : Graph.node; fault : E.fault_class; at_fire : int }
type t = { graph : Graph.t; sites : site list }

exception Injected of { node : Graph.node; fault : E.fault_class }

let all_classes = [ E.Nan_output; E.Bad_state_arity; E.Kernel_exception ]

(* Deterministic xorshift64*: fault schedules must replay identically for a
   given seed, independent of any global Random state. *)
let rng seed =
  let state = ref (Int64.of_int (if seed = 0 then 0x9e3779b9 else seed)) in
  fun bound ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let plan ?(classes = all_classes) ?(horizon = 64) ~seed ~count graph =
  if classes = [] then invalid_arg "Fault.plan: empty class list";
  if horizon <= 0 then invalid_arg "Fault.plan: horizon must be positive";
  if count < 0 then invalid_arg "Fault.plan: count must be >= 0";
  let n = Graph.num_nodes graph in
  (* An empty graph has no module to fault — and would divide by zero in
     the RNG's modulus below.  Same structured error the validators use. *)
  if n = 0 && count > 0 then E.fail E.Empty_graph;
  if count > n * horizon then
    invalid_arg
      (Printf.sprintf
         "Fault.plan: %d sites cannot be distinct over %d modules x %d \
          firings"
         count n horizon);
  let next = rng seed in
  let classes = Array.of_list classes in
  (* Draw sites without (node, at_fire) collisions: a duplicate draw would
     silently shrink the plan below [count], since only the first fault at
     a site can ever trigger. *)
  let seen = Hashtbl.create (2 * count) in
  let rec draw () =
    let node = next n and at_fire = next horizon in
    if Hashtbl.mem seen (node, at_fire) then draw ()
    else begin
      Hashtbl.add seen (node, at_fire) ();
      { node; fault = classes.(next (Array.length classes)); at_fire }
    end
  in
  let sites = List.init count (fun _ -> draw ()) in
  { graph; sites }

let of_sites graph sites = { graph; sites }
let sites t = t.sites

let find t ~node ~fire_index =
  List.find_map
    (fun s ->
      if s.node = node && s.at_fire = fire_index then Some s.fault else None)
    t.sites

let targets ?fault t =
  List.filter_map
    (fun s ->
      match fault with
      | Some f when s.fault <> f -> None
      | _ -> Some s.node)
    t.sites

let pp fmt t =
  Format.fprintf fmt "@[<v>fault plan (%d sites)@," (List.length t.sites);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %s on firing %d of %s@,"
        (E.fault_class_to_string s.fault)
        s.at_fire
        (Graph.node_name t.graph s.node))
    t.sites;
  Format.fprintf fmt "@]"

(* --- chaos environment plans ---------------------------------------------

   Where a fault plan misbehaves *inside* the application (kernels lying or
   raising), an environment plan misbehaves *around* it: the cache shrinks
   under a contending tenant, associativity changes, demand turns bursty,
   the checkpoint directory starts failing writes.  Events are pinned to
   epoch indices — the supervisor's natural reaction points — and the whole
   plan is a pure function of its spec (or seed), so an adapted run replays
   bit-identically. *)

type env_event =
  | Cache_shrink of int
  | Cache_restore
  | Cache_ways of int
  | Burst of { mult : int; len : int }
  | Io_fault of { len : int }
  (* Serve-layer events: the daemon chaos harness misbehaves around the
     scheduling service rather than around one run.  For these, "epoch"
     means the per-worker request index (requests served since the worker
     was spawned), the daemon's natural reaction points. *)
  | Worker_kill
  | Record_truncate
  | Slow_client of { ms : int }
  | Flood of { count : int }

type env_site = { at_epoch : int; event : env_event }
type env = env_site list

type conditions = {
  shrink_divisor : int;
  ways : int option;
  burst_mult : int;
  io_faulty : bool;
}

let nominal = { shrink_divisor = 1; ways = None; burst_mult = 1; io_faulty = false }

let env_of_sites sites =
  List.iter
    (fun s ->
      if s.at_epoch < 0 then
        invalid_arg "Fault.env_of_sites: epoch must be >= 0";
      match s.event with
      | Cache_shrink d when d < 2 ->
          invalid_arg "Fault.env_of_sites: shrink divisor must be >= 2"
      | Cache_ways w when w < 1 ->
          invalid_arg "Fault.env_of_sites: ways must be >= 1"
      | Burst { mult; len } when mult < 2 || len < 1 ->
          invalid_arg "Fault.env_of_sites: burst needs mult >= 2, len >= 1"
      | Io_fault { len } when len < 1 ->
          invalid_arg "Fault.env_of_sites: io fault length must be >= 1"
      | Slow_client { ms } when ms < 1 ->
          invalid_arg "Fault.env_of_sites: slow-client stall must be >= 1 ms"
      | Flood { count } when count < 1 ->
          invalid_arg "Fault.env_of_sites: flood count must be >= 1"
      | _ -> ())
    sites;
  (* Stable sort: simultaneous events apply in spec order. *)
  List.stable_sort (fun a b -> compare a.at_epoch b.at_epoch) sites

let env_sites env = env

let env_plan ?(horizon = 32) ~seed ~count () =
  if horizon <= 0 then invalid_arg "Fault.env_plan: horizon must be positive";
  if count < 0 then invalid_arg "Fault.env_plan: count must be >= 0";
  let next = rng seed in
  let draw _ =
    let at_epoch = next horizon in
    let event =
      match next 4 with
      | 0 -> Cache_shrink (2 lsl next 3) (* 2, 4, 8 or 16 *)
      | 1 -> Cache_restore
      | 2 -> Burst { mult = 2 + next 3; len = 1 + next 4 }
      | _ -> Io_fault { len = 1 + next 2 }
    in
    { at_epoch; event }
  in
  env_of_sites (List.init count draw)

(* Seeded draw over the serve-layer grammar: worker kills, plan-store
   I/O faults, truncated records, stalled clients, malformed floods —
   the daemon soak's schedule is a pure function of its seed, exactly
   like the cache-adversity plans above. *)
let serve_plan ?(horizon = 32) ~seed ~count () =
  if horizon <= 0 then invalid_arg "Fault.serve_plan: horizon must be positive";
  if count < 0 then invalid_arg "Fault.serve_plan: count must be >= 0";
  let next = rng (seed lxor 0x5eed) in
  let draw _ =
    let at_epoch = next horizon in
    let event =
      match next 5 with
      | 0 -> Worker_kill
      | 1 -> Io_fault { len = 1 + next 2 }
      | 2 -> Record_truncate
      | 3 -> Slow_client { ms = 10 * (1 + next 20) }
      | _ -> Flood { count = 1 + next 8 }
    in
    { at_epoch; event }
  in
  env_of_sites (List.init count draw)

(* [conditions_at env epoch] folds every event scheduled at or before
   [epoch], windowed events ([Burst], [Io_fault]) counting only while
   [epoch] lies inside their window.  [Cache_restore] clears both the
   shrink divisor and any associativity override. *)
let conditions_at env epoch =
  List.fold_left
    (fun c s ->
      if s.at_epoch > epoch then c
      else
        match s.event with
        | Cache_shrink d -> { c with shrink_divisor = d }
        | Cache_restore -> { c with shrink_divisor = 1; ways = None }
        | Cache_ways w -> { c with ways = Some w }
        | Burst { mult; len } ->
            if epoch < s.at_epoch + len then { c with burst_mult = mult }
            else c
        | Io_fault { len } ->
            if epoch < s.at_epoch + len then { c with io_faulty = true }
            else c
        (* Serve events are instantaneous, not ambient conditions; the
           daemon consumes them through [events_at]. *)
        | Worker_kill | Record_truncate | Slow_client _ | Flood _ -> c)
    nominal env

(* The instantaneous events pinned to exactly [epoch], in spec order —
   how the daemon (and the soak driver) consumes serve-layer chaos. *)
let events_at env epoch =
  List.filter_map
    (fun s -> if s.at_epoch = epoch then Some s.event else None)
    env

(* The cache configuration the environment imposes on a base config: the
   capacity divided by the shrink divisor (never below one block) and the
   policy overridden by any associativity event.  Block geometry never
   changes — that is physical, not environmental. *)
let env_cache_config base c =
  let size_words =
    max base.Ccs_cache.Cache.block_words
      (base.Ccs_cache.Cache.size_words / c.shrink_divisor)
  in
  (* Shrink to a whole number of blocks so derived plans see the same
     block count the resized simulator has. *)
  let size_words =
    size_words - (size_words mod base.Ccs_cache.Cache.block_words)
  in
  let policy =
    match c.ways with
    | None -> base.Ccs_cache.Cache.policy
    | Some 1 -> Ccs_cache.Cache.Direct_mapped
    | Some w -> Ccs_cache.Cache.Set_associative w
  in
  { base with Ccs_cache.Cache.size_words; policy }

(* Spec grammar (comma-separated, whitespace-tolerant):
     shrink@E:D     divide cache capacity by D starting at epoch E
     restore@E      restore nominal capacity and associativity at epoch E
     ways@E:N       switch to N-way set-associative at epoch E (1 = direct)
     burst@E:MxL    demand burst: multiplier M for L epochs starting at E
     iofault@E:L    checkpoint-directory I/O faults for L epochs from E
     rand@S:C[:H]   C seeded-random events (seed S) over horizon H (def. 32)

   Serve-layer events (epoch = per-worker request index for the daemon):
     kill@E         worker process dies after serving request E
     truncate@E     the record written/read at request E is truncated
     slow@E:MS      client stalls mid-line for MS milliseconds at request E
     flood@E:N      N malformed lines flood the connection at request E
     srand@S:C[:H]  C seeded-random serve events over horizon H (def. 32)
*)

let parse_env spec =
  let fail_atom atom reason =
    E.fail
      (E.Failure_msg
         {
           context = "chaos spec";
           reason = Printf.sprintf "%S: %s" atom reason;
         })
  in
  let int_of atom what s =
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> fail_atom atom (Printf.sprintf "%s is not an integer" what)
  in
  let parse_atom atom =
    match String.index_opt atom '@' with
    | None -> fail_atom atom "expected KIND@EPOCH[:ARGS]"
    | Some i -> (
        let kind = String.trim (String.sub atom 0 i) in
        let rest = String.sub atom (i + 1) (String.length atom - i - 1) in
        let args = String.split_on_char ':' rest in
        match (kind, args) with
        | "shrink", [ e; d ] ->
            let d = int_of atom "divisor" d in
            if d < 2 then fail_atom atom "divisor must be >= 2";
            [ { at_epoch = int_of atom "epoch" e; event = Cache_shrink d } ]
        | "restore", [ e ] ->
            [ { at_epoch = int_of atom "epoch" e; event = Cache_restore } ]
        | "ways", [ e; w ] ->
            let w = int_of atom "ways" w in
            if w < 1 then fail_atom atom "ways must be >= 1";
            [ { at_epoch = int_of atom "epoch" e; event = Cache_ways w } ]
        | "burst", [ e; ml ] -> (
            match String.index_opt ml 'x' with
            | None -> fail_atom atom "expected burst@E:MxL"
            | Some j ->
                let mult = int_of atom "multiplier" (String.sub ml 0 j) in
                let len =
                  int_of atom "length"
                    (String.sub ml (j + 1) (String.length ml - j - 1))
                in
                if mult < 2 then fail_atom atom "multiplier must be >= 2";
                if len < 1 then fail_atom atom "length must be >= 1";
                [
                  {
                    at_epoch = int_of atom "epoch" e;
                    event = Burst { mult; len };
                  };
                ])
        | "iofault", [ e; l ] ->
            let len = int_of atom "length" l in
            if len < 1 then fail_atom atom "length must be >= 1";
            [
              { at_epoch = int_of atom "epoch" e; event = Io_fault { len } };
            ]
        | "kill", [ e ] ->
            [ { at_epoch = int_of atom "epoch" e; event = Worker_kill } ]
        | "truncate", [ e ] ->
            [ { at_epoch = int_of atom "epoch" e; event = Record_truncate } ]
        | "slow", [ e; ms ] ->
            let ms = int_of atom "stall" ms in
            if ms < 1 then fail_atom atom "stall must be >= 1 ms";
            [
              { at_epoch = int_of atom "epoch" e; event = Slow_client { ms } };
            ]
        | "flood", [ e; n ] ->
            let count = int_of atom "count" n in
            if count < 1 then fail_atom atom "count must be >= 1";
            [
              { at_epoch = int_of atom "epoch" e; event = Flood { count } };
            ]
        | "rand", [ s; c ] ->
            env_plan ~seed:(int_of atom "seed" s)
              ~count:(int_of atom "count" c) ()
        | "rand", [ s; c; h ] ->
            env_plan
              ~horizon:(int_of atom "horizon" h)
              ~seed:(int_of atom "seed" s)
              ~count:(int_of atom "count" c) ()
        | "srand", [ s; c ] ->
            serve_plan ~seed:(int_of atom "seed" s)
              ~count:(int_of atom "count" c) ()
        | "srand", [ s; c; h ] ->
            serve_plan
              ~horizon:(int_of atom "horizon" h)
              ~seed:(int_of atom "seed" s)
              ~count:(int_of atom "count" c) ()
        | _, _ -> fail_atom atom "unknown event or wrong argument count")
  in
  let atoms =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  if atoms = [] then
    E.fail (E.Failure_msg { context = "chaos spec"; reason = "empty spec" });
  let sites = List.concat_map (fun a -> parse_atom (String.trim a)) atoms in
  List.iter
    (fun s ->
      if s.at_epoch < 0 then
        E.fail
          (E.Failure_msg
             { context = "chaos spec"; reason = "epoch must be >= 0" }))
    sites;
  env_of_sites sites

let env_event_to_string = function
  | Cache_shrink d -> Printf.sprintf "shrink:%d" d
  | Cache_restore -> "restore"
  | Cache_ways w -> Printf.sprintf "ways:%d" w
  | Burst { mult; len } -> Printf.sprintf "burst:%dx%d" mult len
  | Io_fault { len } -> Printf.sprintf "iofault:%d" len
  | Worker_kill -> "kill"
  | Record_truncate -> "truncate"
  | Slow_client { ms } -> Printf.sprintf "slow:%d" ms
  | Flood { count } -> Printf.sprintf "flood:%d" count

let env_to_string env =
  String.concat ","
    (List.map
       (fun s ->
         match s.event with
         | Cache_shrink d -> Printf.sprintf "shrink@%d:%d" s.at_epoch d
         | Cache_restore -> Printf.sprintf "restore@%d" s.at_epoch
         | Cache_ways w -> Printf.sprintf "ways@%d:%d" s.at_epoch w
         | Burst { mult; len } ->
             Printf.sprintf "burst@%d:%dx%d" s.at_epoch mult len
         | Io_fault { len } -> Printf.sprintf "iofault@%d:%d" s.at_epoch len
         | Worker_kill -> Printf.sprintf "kill@%d" s.at_epoch
         | Record_truncate -> Printf.sprintf "truncate@%d" s.at_epoch
         | Slow_client { ms } -> Printf.sprintf "slow@%d:%d" s.at_epoch ms
         | Flood { count } -> Printf.sprintf "flood@%d:%d" s.at_epoch count)
       env)

let pp_env fmt env =
  Format.fprintf fmt "@[<v>environment plan (%d events)@,"
    (List.length env);
  List.iter
    (fun s ->
      Format.fprintf fmt "  epoch %d: %s@," s.at_epoch
        (env_event_to_string s.event))
    env;
  Format.fprintf fmt "@]"

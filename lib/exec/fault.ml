module Graph = Ccs_sdf.Graph
module E = Ccs_sdf.Error

type site = { node : Graph.node; fault : E.fault_class; at_fire : int }
type t = { graph : Graph.t; sites : site list }

exception Injected of { node : Graph.node; fault : E.fault_class }

let all_classes = [ E.Nan_output; E.Bad_state_arity; E.Kernel_exception ]

(* Deterministic xorshift64*: fault schedules must replay identically for a
   given seed, independent of any global Random state. *)
let rng seed =
  let state = ref (Int64.of_int (if seed = 0 then 0x9e3779b9 else seed)) in
  fun bound ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let plan ?(classes = all_classes) ?(horizon = 64) ~seed ~count graph =
  if classes = [] then invalid_arg "Fault.plan: empty class list";
  if horizon <= 0 then invalid_arg "Fault.plan: horizon must be positive";
  if count < 0 then invalid_arg "Fault.plan: count must be >= 0";
  let n = Graph.num_nodes graph in
  (* An empty graph has no module to fault — and would divide by zero in
     the RNG's modulus below.  Same structured error the validators use. *)
  if n = 0 && count > 0 then E.fail E.Empty_graph;
  if count > n * horizon then
    invalid_arg
      (Printf.sprintf
         "Fault.plan: %d sites cannot be distinct over %d modules x %d \
          firings"
         count n horizon);
  let next = rng seed in
  let classes = Array.of_list classes in
  (* Draw sites without (node, at_fire) collisions: a duplicate draw would
     silently shrink the plan below [count], since only the first fault at
     a site can ever trigger. *)
  let seen = Hashtbl.create (2 * count) in
  let rec draw () =
    let node = next n and at_fire = next horizon in
    if Hashtbl.mem seen (node, at_fire) then draw ()
    else begin
      Hashtbl.add seen (node, at_fire) ();
      { node; fault = classes.(next (Array.length classes)); at_fire }
    end
  in
  let sites = List.init count (fun _ -> draw ()) in
  { graph; sites }

let of_sites graph sites = { graph; sites }
let sites t = t.sites

let find t ~node ~fire_index =
  List.find_map
    (fun s ->
      if s.node = node && s.at_fire = fire_index then Some s.fault else None)
    t.sites

let targets ?fault t =
  List.filter_map
    (fun s ->
      match fault with
      | Some f when s.fault <> f -> None
      | _ -> Some s.node)
    t.sites

let pp fmt t =
  Format.fprintf fmt "@[<v>fault plan (%d sites)@," (List.length t.sites);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %s on firing %d of %s@,"
        (E.fault_class_to_string s.fault)
        s.at_fire
        (Graph.node_name t.graph s.node))
    t.sites;
  Format.fprintf fmt "@]"

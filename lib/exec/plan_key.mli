(** The composite identity of a cached planning artifact.

    Cache-aware partitioning — the NP-hard step — is a pure function of
    the graph, the cache configuration, any pinned channel capacities,
    and the planner's algorithm version.  Anything keyed by less is
    under-keyed: a plan cached for one cache geometry (or produced by an
    older planner) must never be served for another.  This module makes
    the full key explicit in one place, shared by the serve daemon's
    persistent plan cache and by {!Checkpoint}'s resume validation (which
    uses the same graph-digest and per-field mismatch discipline).

    Mismatches are structured [Checkpoint_mismatch] findings naming the
    offending field — graph, cache, capacities or planner version — with
    expected/found renderings, mirroring how checkpoints reject files
    from a different run. *)

type t = {
  graph_digest : string;  (** Hex MD5 of the graph's canonical text form. *)
  cache_config : Ccs_cache.Cache.config;
  capacities : int array;
      (** Capacities pinned by the request; [[||]] means planner-chosen. *)
  planner_version : int;
      (** Version of the planning pipeline that produced (or is asked to
          produce) the artifact; [0] for keys that don't involve the
          planner (checkpoints). *)
}

val graph_digest : Ccs_sdf.Graph.t -> string
(** Hex MD5 of {!Ccs_sdf.Serial.to_text} — the digest stored in plan
    cache records and checkpoints alike. *)

val make :
  ?capacities:int array ->
  ?planner_version:int ->
  graph_digest:string ->
  cache_config:Ccs_cache.Cache.config ->
  unit ->
  t
(** Defaults: no pinned capacities, planner version [0]. *)

val of_graph :
  ?capacities:int array ->
  ?planner_version:int ->
  Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  t
(** {!make} over a graph's {!graph_digest}. *)

val digest : t -> string
(** Hex MD5 of the key's canonical binary encoding — the plan cache's
    filename stem.  Two keys collide only if every component matches. *)

val check : path:string -> expected:t -> found:t -> (unit, Ccs_sdf.Error.t) result
(** Compare field by field; the first difference comes back as
    [Checkpoint_mismatch] naming the field ([graph], [cache],
    [capacities], [planner version]) with rendered expected/found values.
    [path] labels the offending file in the error. *)

val equal : t -> t -> bool

val encode : Ccs_sdf.Binio.W.t -> t -> unit
val decode : path:string -> Ccs_sdf.Binio.R.t -> t
(** Binary round-trip for embedding keys in {!Ccs_sdf.Binio} records.
    [decode] raises structured [Checkpoint_corrupt] on malformed bytes. *)

val pp_cache_config : Ccs_cache.Cache.config -> string
(** ["2048w/16b/lru"]-style rendering, shared with checkpoint errors. *)

val policy_tag : Ccs_cache.Cache.policy -> int * int
val policy_of_tag : path:string -> int -> int -> Ccs_cache.Cache.policy
(** Wire helpers for the replacement policy, shared with the checkpoint
    format; [policy_of_tag] raises [Checkpoint_corrupt] on unknown tags. *)

val to_string : t -> string

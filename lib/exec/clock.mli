(** The single time source for latency telemetry.

    Monotonic wall-clock microseconds: unlike the CPU time ([Sys.time])
    the checkpoint metrics used before, wall time counts I/O stalls and
    stays truthful when several processes share a core (the serve
    daemon's forked workers).  Readings never decrease, even across
    system clock steps, so deltas are safe to feed to histograms.

    Timing fields derived from this clock keep the [_us] suffix, which
    [Bench_diff] already treats as warn-only — wall-clock jitter never
    fails the bench regression gate. *)

val now_us : unit -> int
(** Current monotonic wall-clock reading, in microseconds.  Only deltas
    between readings are meaningful. *)

val elapsed_us : since:int -> int
(** [elapsed_us ~since] is [now_us () - since], clamped non-negative. *)

(* Deterministic data-carrying overlay over a simulated machine.

   The machine itself moves token *counts*; this overlay shadows every
   channel with a real FIFO of integer values and every module with a
   running digest of its input history, fed by the machine's fire hook.
   Because each module's k-th firing consumes exactly the values its
   producers' earlier firings pushed (Kahn determinism), the value
   sequence observed at the sinks depends only on the graph and the seed —
   never on the schedule, the cache, or mid-run migrations.  That makes
   the overlay the bit-exactness oracle for adaptation: a chaos-perturbed,
   repartitioned run must sink the same values as an undisturbed one. *)

module G = Ccs_sdf.Graph

type t = {
  graph : G.t;
  seed : int;
  queues : int Queue.t array; (* per channel: the values behind the counts *)
  acc : int array; (* per module: digest of its whole input history *)
  fired : int array; (* per module: firings the overlay has seen *)
  sunk : int list ref array; (* per module: values observed at sinks, reversed *)
}

let mask = (1 lsl 61) - 1
let mix h v = ((h * 1_000_003) + v + 1) land mask

let create ?(seed = 0) graph =
  let queues = Array.init (G.num_edges graph) (fun _ -> Queue.create ()) in
  List.iter
    (fun e ->
      (* Initial tokens (delays) get seed-derived values. *)
      for i = 0 to G.delay graph e - 1 do
        Queue.push (mix (mix seed (e + 1)) i) queues.(e)
      done)
    (G.edges graph);
  {
    graph;
    seed;
    queues;
    acc = Array.init (G.num_nodes graph) (fun v -> mix seed v);
    fired = Array.make (G.num_nodes graph) 0;
    sunk = Array.init (G.num_nodes graph) (fun _ -> ref []);
  }

let fire t v =
  let g = t.graph in
  let ins = G.in_edges g v in
  List.iter
    (fun e ->
      for _ = 1 to G.pop g e do
        match Queue.take_opt t.queues.(e) with
        | Some x -> t.acc.(v) <- mix t.acc.(v) x
        | None ->
            (* The machine only fires enabled modules, so the shadow queue
               can run dry only if the overlay missed earlier firings. *)
            invalid_arg "Overlay.fire: overlay out of sync with the machine"
      done)
    ins;
  if ins = [] then
    (* Source: synthesize the next input value deterministically. *)
    t.acc.(v) <- mix t.acc.(v) (mix t.seed t.fired.(v));
  let outs = G.out_edges g v in
  if outs = [] then t.sunk.(v) := t.acc.(v) :: !(t.sunk.(v));
  List.iter
    (fun e ->
      for i = 1 to G.push g e do
        Queue.push (mix t.acc.(v) ((t.fired.(v) * 31) + i)) t.queues.(e)
      done)
    outs;
  t.fired.(v) <- t.fired.(v) + 1

let attach t machine = Machine.set_fire_hook machine (Some (fire t))

let sink_outputs t =
  List.map (fun v -> (v, List.rev !(t.sunk.(v)))) (G.sinks t.graph)

(* Positions in the common prefix of each sink's value stream where the two
   overlays disagree.  The common prefix — not full equality — is the right
   comparison: epoch-aligned runs overshoot a requested output count to a
   whole-period boundary, so two correct runs may differ in length but
   never in content. *)
let mismatches ~reference t =
  let ref_outs = sink_outputs reference and outs = sink_outputs t in
  List.fold_left
    (fun acc (v, xs) ->
      match List.assoc_opt v ref_outs with
      | None -> acc + List.length xs
      | Some ys ->
          let rec go acc = function
            | x :: xs, y :: ys -> go (if x = y then acc else acc + 1) (xs, ys)
            | _ -> acc
          in
          go acc (xs, ys))
    0 outs

let compared ~reference t =
  let ref_outs = sink_outputs reference and outs = sink_outputs t in
  List.fold_left
    (fun acc (v, xs) ->
      match List.assoc_opt v ref_outs with
      | None -> acc
      | Some ys -> acc + min (List.length xs) (List.length ys))
    0 outs

module Graph = Ccs_sdf.Graph
module Cache = Ccs_cache.Cache
module Layout = Ccs_cache.Layout
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer
module Metrics = Ccs_obs.Metrics

exception Not_fireable of { node : Graph.node; reason : string }
exception Budget_exceeded of { budget : int }

type chan = {
  region : Layout.region;
  capacity : int;
  mutable head : int; (* absolute index of next token to read *)
  mutable tail : int; (* absolute index of next slot to write *)
  mutable consumed_total : int;
  mutable produced_total : int;
}

(* Handles into an attached metrics registry.  The fires counter is pushed
   incrementally (one branch + one array store per firing); the cache-level
   series are gauges synced from the cache's own statistics at pull points
   ([sync_metrics]) so the block-touch hot path carries no metrics code at
   all and replacement decisions cannot be perturbed. *)
type mstats = {
  m_registry : Metrics.t;
  m_fires : Metrics.counter;
  m_accesses : Metrics.gauge;
  m_hits : Metrics.gauge;
  m_misses : Metrics.gauge;
  m_evictions : Metrics.gauge;
  m_flushes : Metrics.gauge;
}

type t = {
  graph : Graph.t;
  cache : Cache.t;
  states : Layout.region array;
  chans : chan array;
  (* Firing-loop specialization: per-node edge ids and per-edge rates as
     flat int arrays, so [fire] walks no lists and allocates nothing. *)
  in_edges : int array array;
  out_edges : int array array;
  pop_rate : int array;
  push_rate : int array;
  fire_count : int array;
  mutable total_fires : int;
  source : Graph.node option;
  sink : Graph.node option;
  space_words : int;
  recorder : Intvec.t option;
  (* Observability: per-entity miss attribution and event tracing.  Both
     are [None] by default and the hot path tests for that once per span,
     so a machine without observers runs the exact seed code path. *)
  counters : Counters.t option;
  tracer : Tracer.t option;
  mstats : mstats option;
  observed : bool; (* [counters <> None || tracer <> None], precomputed *)
  num_nodes : int; (* entity id of buffer e is [num_nodes + e] *)
  mutable fire_hook : (Graph.node -> unit) option;
  mutable fire_budget : int option;
}

(* The simulated address space a (graph, cache, capacities) triple induces:
   module state regions in node order (block-aligned by default, so a
   module's state never false-shares with a neighbour), then channel ring
   buffers in edge order, packed (align 1) — the paper's buffer-versus-state
   amortization argument counts buffer words, and padding every tiny
   internal buffer to a whole block would inflate a component's working set
   by a factor of B.  [create] builds its machine on exactly this layout,
   and the compiled backend (Ccs_codegen) lowers plans through it too, so a
   compiled schedule's word-access trace replays against the interpreted
   machine address-for-address. *)
type layout = {
  l_states : Layout.region array;
  l_buffers : Layout.region array;
  l_total_words : int;
}

let plan_layout ?(align_to_block = true) ~graph ~cache ~capacities () =
  let m = Graph.num_edges graph in
  if Array.length capacities <> m then
    invalid_arg "Machine.plan_layout: capacities length mismatch";
  let align = if align_to_block then cache.Cache.block_words else 1 in
  let layout = Layout.create ~align () in
  let states =
    Array.init (Graph.num_nodes graph) (fun v ->
        Layout.alloc layout ~len:(Graph.state graph v))
  in
  let buffers =
    Array.init m (fun e ->
        let cap = capacities.(e) in
        let need = max (Graph.push graph e) (Graph.pop graph e) in
        if cap < need then
          invalid_arg
            (Printf.sprintf
               "Machine.create: channel %d capacity %d < max rate %d" e cap
               need);
        Layout.alloc ~align:1 layout ~len:cap)
  in
  { l_states = states; l_buffers = buffers; l_total_words = Layout.size layout }

let make_mstats registry labels =
  let counter name help = Metrics.counter registry ~help ~labels name in
  let gauge name help = Metrics.gauge registry ~help ~labels name in
  {
    m_registry = registry;
    m_fires = counter "ccs_machine_fires_total" "Module firings executed";
    m_accesses = gauge "ccs_cache_accesses" "Simulated cache accesses";
    m_hits = gauge "ccs_cache_hits" "Simulated cache hits";
    m_misses = gauge "ccs_cache_misses" "Simulated cache misses";
    m_evictions = gauge "ccs_cache_evictions" "Blocks displaced by replacement";
    m_flushes = gauge "ccs_cache_flushes" "Whole-cache flushes";
  }

let create ?(align_to_block = true) ?(record_trace = false) ?counters ?tracer
    ?metrics ?(metrics_labels = []) ~graph ~cache ~capacities () =
  let m = Graph.num_edges graph in
  if Array.length capacities <> m then
    invalid_arg "Machine.create: capacities length mismatch";
  (match counters with
  | Some c
    when Counters.entities c <> Graph.num_nodes graph + m ->
      invalid_arg
        (Printf.sprintf
           "Machine.create: counters sized for %d entities, need %d \
            (num_nodes + num_edges)"
           (Counters.entities c)
           (Graph.num_nodes graph + m))
  | _ -> ());
  let layout = plan_layout ~align_to_block ~graph ~cache ~capacities () in
  let states = layout.l_states in
  let chans =
    Array.init m (fun e ->
        {
          region = layout.l_buffers.(e);
          capacity = capacities.(e);
          head = 0;
          tail = Graph.delay graph e;
          consumed_total = 0;
          produced_total = 0;
        })
  in
  let single = function [ v ] -> Some v | _ -> None in
  let n = Graph.num_nodes graph in
  {
    graph;
    cache = Cache.create cache;
    states;
    chans;
    in_edges = Array.init n (fun v -> Array.of_list (Graph.in_edges graph v));
    out_edges = Array.init n (fun v -> Array.of_list (Graph.out_edges graph v));
    pop_rate = Array.init m (fun e -> Graph.pop graph e);
    push_rate = Array.init m (fun e -> Graph.push graph e);
    fire_count = Array.make (Graph.num_nodes graph) 0;
    total_fires = 0;
    source = single (Graph.sources graph);
    sink = single (Graph.sinks graph);
    space_words = layout.l_total_words;
    recorder = (if record_trace then Some (Intvec.create ()) else None);
    counters;
    tracer;
    mstats = Option.map (fun reg -> make_mstats reg metrics_labels) metrics;
    observed = counters <> None || tracer <> None;
    num_nodes = n;
    fire_hook = None;
    fire_budget = None;
  }

let graph t = t.graph
let cache t = t.cache
let capacity t e = t.chans.(e).capacity
let tokens t e = t.chans.(e).tail - t.chans.(e).head
let space t e = t.chans.(e).capacity - tokens t e

let fireable_reason t v =
  let g = t.graph in
  let lacking =
    List.find_opt (fun e -> tokens t e < Graph.pop g e) (Graph.in_edges g v)
  in
  match lacking with
  | Some e ->
      Some
        (Printf.sprintf "input channel %s has %d < %d tokens"
           (Graph.edge_name g e) (tokens t e) (Graph.pop g e))
  | None -> (
      let full =
        List.find_opt
          (fun e -> space t e < Graph.push g e)
          (Graph.out_edges g v)
      in
      match full with
      | Some e ->
          Some
            (Printf.sprintf "output channel %s has %d < %d free slots"
               (Graph.edge_name g e) (space t e) (Graph.push g e))
      | None -> None)

let can_fire t v = fireable_reason t v = None

let deadlocked t =
  List.for_all (fun v -> not (can_fire t v)) (Graph.nodes t.graph)

let source_inputs t =
  match t.source with Some s -> t.fire_count.(s) | None -> 0

let sink_outputs t =
  match t.sink with Some s -> t.fire_count.(s) | None -> 0

let snapshot t =
  let g = t.graph in
  let module E = Ccs_sdf.Error in
  {
    E.fired = t.total_fires;
    inputs = source_inputs t;
    outputs = sink_outputs t;
    channels =
      List.map
        (fun e ->
          {
            E.chan = Graph.edge_name g e;
            edge = e;
            occupied = tokens t e;
            capacity = t.chans.(e).capacity;
          })
        (Graph.edges g);
    blocked =
      List.filter_map
        (fun v ->
          Option.map
            (fun reason -> { E.node = Graph.node_name g v; reason })
            (fireable_reason t v))
        (Graph.nodes g);
  }

(* All touches are block-granular: within one firing, touching each block of
   a contiguous span once produces exactly the same sequence of distinct
   blocks (hence the same misses under any demand replacement policy) as
   touching every word, at a fraction of the simulation cost.  Blocks are
   touched by id (no per-word address arithmetic, no allocation). *)
(* Instrumented per-block touch: attribute the hit/miss to [owner] and,
   when tracing, advance the logical clock and emit load/evict events.
   Lives off the fast path — [touch_span] only enters here when at least
   one observer is attached. *)
let touch_block_observed t owner blk =
  match t.tracer with
  | None ->
      let hit = Cache.touch_block t.cache blk in
      (match t.counters with
      | Some c -> Counters.record c owner ~hit
      | None -> ())
  | Some tr ->
      let hit, victim = Cache.touch_block_traced t.cache blk in
      (match t.counters with
      | Some c -> Counters.record c owner ~hit
      | None -> ());
      Tracer.advance tr 1;
      if not hit then begin
        Tracer.load tr ~owner ~block:blk;
        if victim >= 0 then Tracer.evict tr ~owner ~block:victim
      end

let touch_span t owner addr len =
  if len > 0 then begin
    let b = Cache.block_words t.cache in
    let first = addr / b and last = (addr + len - 1) / b in
    if t.observed then
      for blk = first to last do
        (match t.recorder with
        | Some r -> Intvec.push r (blk * b)
        | None -> ());
        touch_block_observed t owner blk
      done
    else
      match t.recorder with
      | None ->
          for blk = first to last do
            ignore (Cache.touch_block t.cache blk)
          done
      | Some r ->
          for blk = first to last do
            Intvec.push r (blk * b);
            ignore (Cache.touch_block t.cache blk)
          done
  end

(* Touch [k] logical ring-buffer slots starting at absolute index [pos]:
   at most two contiguous spans (wrap-around). *)
let touch_ring t owner (region : Layout.region) pos k =
  if k > 0 then begin
    let len = region.Layout.length in
    let start = pos mod len in
    if start + k <= len then touch_span t owner (region.Layout.base + start) k
    else begin
      touch_span t owner (region.Layout.base + start) (len - start);
      touch_span t owner region.Layout.base (k - (len - start))
    end
  end

(* Allocation-free firing-rule check; [fireable_reason] reproduces the
   verdict with a diagnostic when this returns [false]. *)
let fireable_fast t v =
  let ins = t.in_edges.(v) and outs = t.out_edges.(v) in
  let ok = ref true in
  for i = 0 to Array.length ins - 1 do
    let e = Array.unsafe_get ins i in
    let c = t.chans.(e) in
    if c.tail - c.head < t.pop_rate.(e) then ok := false
  done;
  for i = 0 to Array.length outs - 1 do
    let e = Array.unsafe_get outs i in
    let c = t.chans.(e) in
    if c.capacity - (c.tail - c.head) < t.push_rate.(e) then ok := false
  done;
  !ok

let fire t v =
  (match t.fire_budget with
  | Some budget when t.total_fires >= budget -> raise (Budget_exceeded { budget })
  | _ -> ());
  if not (fireable_fast t v) then begin
    (match t.tracer with Some tr -> Tracer.stall tr ~node:v | None -> ());
    match fireable_reason t v with
    | Some reason -> raise (Not_fireable { node = v; reason })
    | None ->
        (* The allocation-free check and the diagnostic re-check disagree:
           an internal invariant is broken (e.g. a channel mutated behind
           the machine's back).  Surface a structured error with the full
           machine state instead of dying on an assert. *)
        let module E = Ccs_sdf.Error in
        E.fail
          (E.Deadlocked
             {
               plan = "machine";
               detail =
                 Printf.sprintf
                   "internal invariant violation: module %s fails the fast \
                    firing-rule check but no obstruction can be diagnosed"
                   (Graph.node_name t.graph v);
               snapshot = snapshot t;
             })
  end;
  let fire_ev =
    match t.tracer with
    | Some tr -> Tracer.begin_fire tr ~node:v
    | None -> -1
  in
  (* Load the module's entire state. *)
  let st = t.states.(v) in
  touch_span t v st.Layout.base st.Layout.length;
  (* Consume inputs. *)
  let ins = t.in_edges.(v) in
  for i = 0 to Array.length ins - 1 do
    let e = Array.unsafe_get ins i in
    let c = t.chans.(e) in
    let k = t.pop_rate.(e) in
    touch_ring t (t.num_nodes + e) c.region c.head k;
    c.head <- c.head + k;
    c.consumed_total <- c.consumed_total + k
  done;
  (* Produce outputs. *)
  let outs = t.out_edges.(v) in
  for i = 0 to Array.length outs - 1 do
    let e = Array.unsafe_get outs i in
    let c = t.chans.(e) in
    let k = t.push_rate.(e) in
    touch_ring t (t.num_nodes + e) c.region c.tail k;
    c.tail <- c.tail + k;
    c.produced_total <- c.produced_total + k
  done;
  t.fire_count.(v) <- t.fire_count.(v) + 1;
  t.total_fires <- t.total_fires + 1;
  (match t.mstats with Some ms -> Metrics.inc ms.m_fires | None -> ());
  (match t.tracer with Some tr -> Tracer.end_fire tr fire_ev | None -> ());
  match t.fire_hook with Some hook -> hook v | None -> ()

let set_fire_hook t hook = t.fire_hook <- hook
let set_fire_budget t budget = t.fire_budget <- budget

let fire_many t v k =
  for _ = 1 to k do
    fire t v
  done

let run t seq = List.iter (fire t) seq
let fires t v = t.fire_count.(v)
let total_fires t = t.total_fires
let consumed t e = t.chans.(e).consumed_total
let produced t e = t.chans.(e).produced_total

let misses t = Cache.misses t.cache

let misses_per_input t =
  let inputs = source_inputs t in
  if inputs = 0 then Float.nan
  else float_of_int (misses t) /. float_of_int inputs

let trace t =
  match t.recorder with
  | Some r -> Intvec.to_array r
  | None -> invalid_arg "Machine.trace: machine created without record_trace"

let address_space_words t = t.space_words
let state_region t v = t.states.(v)
let buffer_region t e = t.chans.(e).region

(* --- observability ------------------------------------------------------- *)

let num_entities t = t.num_nodes + Array.length t.chans
let entity_of_state _t v = v
let entity_of_buffer t e = t.num_nodes + e
let counters t = t.counters
let tracer t = t.tracer
let metrics t = Option.map (fun ms -> ms.m_registry) t.mstats

(* Pull point: copy the cache's statistics into the attached gauges.  Called
   at epoch and run boundaries by the drivers, never from the touch path. *)
let sync_metrics t =
  match t.mstats with
  | None -> ()
  | Some ms ->
      Metrics.set ms.m_accesses (Cache.accesses t.cache);
      Metrics.set ms.m_hits (Cache.hits t.cache);
      Metrics.set ms.m_misses (Cache.misses t.cache);
      Metrics.set ms.m_evictions (Cache.evictions t.cache);
      Metrics.set ms.m_flushes (Cache.flushes t.cache)

let entity_label t i =
  if i < t.num_nodes then Graph.node_name t.graph i
  else Graph.edge_name t.graph (i - t.num_nodes)

let fire_budget t = t.fire_budget

(* --- adaptation hooks ----------------------------------------------------

   [resize_cache] reconfigures the simulated cache under the running
   machine — regions and cursors are untouched, only future replacement
   behavior changes (the adverse event the adaptation layer reacts to).

   [migrate] moves a run onto a machine built for a different plan: firing
   counts and cumulative channel traffic carry over, and each channel's
   buffered tokens are renormalized to the new ring buffer (head 0, tail =
   token count).  Because the simulator models addresses rather than data,
   renormalizing cursors preserves execution exactly; the destination cache
   starts cold, which is the honest cost of moving state to a new layout. *)

let resize_cache t cfg = Cache.resize t.cache cfg

let migrate ~src dst =
  let n = Array.length src.chans in
  if
    Array.length src.fire_count <> Array.length dst.fire_count
    || Array.length dst.chans <> n
  then
    invalid_arg
      (Printf.sprintf
         "Machine.migrate: source has %d nodes / %d channels, destination %d \
          nodes / %d channels"
         (Array.length src.fire_count)
         n
         (Array.length dst.fire_count)
         (Array.length dst.chans));
  for e = 0 to n - 1 do
    let toks = src.chans.(e).tail - src.chans.(e).head in
    if toks > dst.chans.(e).capacity then
      invalid_arg
        (Printf.sprintf
           "Machine.migrate: channel %d holds %d tokens, destination capacity \
            %d"
           e toks
           dst.chans.(e).capacity)
  done;
  Array.blit src.fire_count 0 dst.fire_count 0 (Array.length src.fire_count);
  dst.total_fires <- src.total_fires;
  for e = 0 to n - 1 do
    let s = src.chans.(e) and d = dst.chans.(e) in
    d.head <- 0;
    d.tail <- s.tail - s.head;
    d.consumed_total <- s.consumed_total;
    d.produced_total <- s.produced_total
  done;
  dst.fire_budget <- src.fire_budget;
  Cache.carry_stats ~src:src.cache dst.cache

(* --- checkpoint persistence ---------------------------------------------- *)

type persisted = {
  p_fire_count : int array;
  p_total_fires : int;
  p_heads : int array;
  p_tails : int array;
  p_consumed : int array;
  p_produced : int array;
  p_budget : int option;
}

let persist t =
  let n = Array.length t.chans in
  {
    p_fire_count = Array.copy t.fire_count;
    p_total_fires = t.total_fires;
    p_heads = Array.init n (fun e -> t.chans.(e).head);
    p_tails = Array.init n (fun e -> t.chans.(e).tail);
    p_consumed = Array.init n (fun e -> t.chans.(e).consumed_total);
    p_produced = Array.init n (fun e -> t.chans.(e).produced_total);
    p_budget = t.fire_budget;
  }

let restore t p =
  let n = Array.length t.chans in
  if
    Array.length p.p_fire_count <> Array.length t.fire_count
    || Array.length p.p_heads <> n
    || Array.length p.p_tails <> n
    || Array.length p.p_consumed <> n
    || Array.length p.p_produced <> n
  then
    invalid_arg
      (Printf.sprintf
         "Machine.restore: state for %d nodes / %d channels does not fit a \
          machine with %d nodes / %d channels"
         (Array.length p.p_fire_count)
         (Array.length p.p_heads)
         (Array.length t.fire_count)
         n);
  Array.blit p.p_fire_count 0 t.fire_count 0 (Array.length t.fire_count);
  t.total_fires <- p.p_total_fires;
  for e = 0 to n - 1 do
    let c = t.chans.(e) in
    c.head <- p.p_heads.(e);
    c.tail <- p.p_tails.(e);
    c.consumed_total <- p.p_consumed.(e);
    c.produced_total <- p.p_produced.(e)
  done;
  t.fire_budget <- p.p_budget

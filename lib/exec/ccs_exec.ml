(** Execution engine: drive streaming graphs over the simulated cache. *)

module Intvec = Intvec
module Machine = Machine
module Replay = Replay
module Fault = Fault
module Checkpoint = Checkpoint
module Overlay = Overlay
module Clock = Clock
module Plan_key = Plan_key

(** Seeded fault-injection plans for the runtime engine.

    A fault plan designates (module, firing-index) sites at which a wrapped
    kernel misbehaves in one of the {!Ccs_sdf.Error.fault_class} ways: it
    emits NaN outputs, reports state of the wrong arity, or raises at fire
    time.  Site selection is driven by a private xorshift generator so a
    plan is a pure function of [seed] — tests replay the exact same faults
    on every run without touching the global [Random] state.

    The plan itself is inert data; {!Ccs_runtime.Engine.inject} consults it
    to wrap a program's kernels, and the engine's containment checks turn
    each triggered site into a structured [Fault] error naming the module. *)

type site = {
  node : Ccs_sdf.Graph.node;
  fault : Ccs_sdf.Error.fault_class;
  at_fire : int;  (** Zero-based firing index of [node] at which to fire. *)
}

type t

exception
  Injected of { node : Ccs_sdf.Graph.node; fault : Ccs_sdf.Error.fault_class }
(** Raised by an injected kernel for the [Kernel_exception] class; the
    engine catches it (like any other kernel exception) and reports a
    structured fault. *)

val all_classes : Ccs_sdf.Error.fault_class list

val plan :
  ?classes:Ccs_sdf.Error.fault_class list ->
  ?horizon:int ->
  seed:int ->
  count:int ->
  Ccs_sdf.Graph.t ->
  t
(** [plan ~seed ~count g] draws [count] {e distinct} (module, firing) fault
    sites over [g]'s modules, fault classes drawn from [classes] (default
    {!all_classes}) and firing indices below [horizon] (default 64).
    Deterministic in [seed]; colliding draws are redrawn so the plan always
    carries exactly [count] triggerable sites.
    @raise Ccs_sdf.Error.Error with [Empty_graph] if [g] has no modules
    (and [count > 0]).
    @raise Invalid_argument if [count] exceeds the [modules x horizon]
    site space, or on empty [classes] / non-positive [horizon]. *)

val of_sites : Ccs_sdf.Graph.t -> site list -> t
(** Hand-built plan, for tests that need a fault at an exact site. *)

val sites : t -> site list

val find :
  t -> node:Ccs_sdf.Graph.node -> fire_index:int -> Ccs_sdf.Error.fault_class option
(** The fault (if any) scheduled for [node]'s [fire_index]-th firing. *)

val targets : ?fault:Ccs_sdf.Error.fault_class -> t -> Ccs_sdf.Graph.node list
(** Modules with at least one site, optionally restricted to one class. *)

val pp : Format.formatter -> t -> unit

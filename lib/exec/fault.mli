(** Seeded fault-injection plans for the runtime engine.

    A fault plan designates (module, firing-index) sites at which a wrapped
    kernel misbehaves in one of the {!Ccs_sdf.Error.fault_class} ways: it
    emits NaN outputs, reports state of the wrong arity, or raises at fire
    time.  Site selection is driven by a private xorshift generator so a
    plan is a pure function of [seed] — tests replay the exact same faults
    on every run without touching the global [Random] state.

    The plan itself is inert data; {!Ccs_runtime.Engine.inject} consults it
    to wrap a program's kernels, and the engine's containment checks turn
    each triggered site into a structured [Fault] error naming the module. *)

type site = {
  node : Ccs_sdf.Graph.node;
  fault : Ccs_sdf.Error.fault_class;
  at_fire : int;  (** Zero-based firing index of [node] at which to fire. *)
}

type t

exception
  Injected of { node : Ccs_sdf.Graph.node; fault : Ccs_sdf.Error.fault_class }
(** Raised by an injected kernel for the [Kernel_exception] class; the
    engine catches it (like any other kernel exception) and reports a
    structured fault. *)

val all_classes : Ccs_sdf.Error.fault_class list

val plan :
  ?classes:Ccs_sdf.Error.fault_class list ->
  ?horizon:int ->
  seed:int ->
  count:int ->
  Ccs_sdf.Graph.t ->
  t
(** [plan ~seed ~count g] draws [count] {e distinct} (module, firing) fault
    sites over [g]'s modules, fault classes drawn from [classes] (default
    {!all_classes}) and firing indices below [horizon] (default 64).
    Deterministic in [seed]; colliding draws are redrawn so the plan always
    carries exactly [count] triggerable sites.
    @raise Ccs_sdf.Error.Error with [Empty_graph] if [g] has no modules
    (and [count > 0]).
    @raise Invalid_argument if [count] exceeds the [modules x horizon]
    site space, or on empty [classes] / non-positive [horizon]. *)

val of_sites : Ccs_sdf.Graph.t -> site list -> t
(** Hand-built plan, for tests that need a fault at an exact site. *)

val sites : t -> site list

val find :
  t -> node:Ccs_sdf.Graph.node -> fire_index:int -> Ccs_sdf.Error.fault_class option
(** The fault (if any) scheduled for [node]'s [fire_index]-th firing. *)

val targets : ?fault:Ccs_sdf.Error.fault_class -> t -> Ccs_sdf.Graph.node list
(** Modules with at least one site, optionally restricted to one class. *)

val pp : Format.formatter -> t -> unit

(** {2 Chaos environment plans}

    Adverse {e runtime conditions} rather than application faults: the
    cache shrinking under contention (or being restored), associativity
    changes, bursty demand, checkpoint-directory I/O faults.  Events are
    pinned to supervisor epoch indices and every plan is a pure function of
    its spec or seed, so chaos runs replay bit-identically. *)

type env_event =
  | Cache_shrink of int
      (** Effective cache capacity divided by this divisor ([>= 2]). *)
  | Cache_restore
      (** Nominal capacity and associativity restored. *)
  | Cache_ways of int
      (** Associativity forced to this many ways ([1] = direct-mapped). *)
  | Burst of { mult : int; len : int }
      (** Demand burst: the epoch workload is multiplied by [mult] for
          [len] epochs. *)
  | Io_fault of { len : int }
      (** Checkpoint-directory writes fail for [len] epochs.  In the serve
          context: plan-store writes fail for [len] requests. *)
  | Worker_kill
      (** Serve: the worker process dies right after this request's
          response is flushed — exercises the parent's respawn
          supervision and the circuit breaker ([kill@0] crash-loops). *)
  | Record_truncate
      (** Serve: the plan-store record touched by this request is
          truncated after the write — the next reader must reject it as
          [Checkpoint_corrupt] and rebuild. *)
  | Slow_client of { ms : int }
      (** Serve (client-side): the client stalls mid-line for [ms]
          milliseconds — exercises the request deadline. *)
  | Flood of { count : int }
      (** Serve (client-side): [count] malformed lines flood the
          connection — each must get exactly one structured error. *)

type env_site = { at_epoch : int; event : env_event }

type env = env_site list
(** Sorted by [at_epoch] (stable for simultaneous events). *)

type conditions = {
  shrink_divisor : int;  (** [1] when the full cache is available. *)
  ways : int option;  (** Associativity override, if any. *)
  burst_mult : int;  (** [1] outside any burst window. *)
  io_faulty : bool;  (** Whether checkpoint I/O is currently failing. *)
}
(** The ambient conditions in force during one epoch — the fold of every
    event at or before it. *)

val nominal : conditions

val env_of_sites : env_site list -> env
(** Validate and sort a hand-built event list.
    @raise Invalid_argument on negative epochs or out-of-range event
    parameters. *)

val env_sites : env -> env_site list

val env_plan : ?horizon:int -> seed:int -> count:int -> unit -> env
(** [env_plan ~seed ~count ()] draws [count] random events (shrinks,
    restores, bursts, I/O faults) at epochs below [horizon] (default 32).
    Deterministic in [seed].
    @raise Invalid_argument on negative [count] or non-positive
    [horizon]. *)

val conditions_at : env -> int -> conditions
(** The conditions in force at a given epoch index.  Serve-layer events
    ([Worker_kill], [Record_truncate], [Slow_client], [Flood]) are
    instantaneous and do not contribute; consume them with
    {!events_at}. *)

val events_at : env -> int -> env_event list
(** The events pinned to exactly this epoch, in spec order — how the
    daemon and the soak driver consume serve-layer chaos. *)

val serve_plan : ?horizon:int -> seed:int -> count:int -> unit -> env
(** [serve_plan ~seed ~count ()] draws [count] random serve-layer events
    (worker kills, plan-store I/O faults, truncated records, stalled
    clients, malformed floods) at request indices below [horizon]
    (default 32).  Deterministic in [seed].
    @raise Invalid_argument on negative [count] or non-positive
    [horizon]. *)

val env_cache_config :
  Ccs_cache.Cache.config -> conditions -> Ccs_cache.Cache.config
(** The cache configuration the environment imposes on a base config:
    capacity divided by the shrink divisor (clamped to at least one block,
    rounded down to whole blocks), policy overridden by any associativity
    event.  Block geometry never changes. *)

val parse_env : string -> env
(** Parse a chaos spec: comma-separated events
    [shrink@E:D], [restore@E], [ways@E:N], [burst@E:MxL], [iofault@E:L],
    [rand@SEED:COUNT[:HORIZON]]; serve-layer events [kill@E],
    [truncate@E], [slow@E:MS], [flood@E:N], [srand@SEED:COUNT[:HORIZON]].
    @raise Ccs_sdf.Error.Error with a [Failure_msg] naming the offending
    atom on malformed input. *)

val env_to_string : env -> string
(** Canonical spec round-trip: [parse_env (env_to_string e)] has the same
    sites as [e] (a [rand@...] atom expands to its drawn events). *)

val env_event_to_string : env_event -> string

val pp_env : Format.formatter -> env -> unit

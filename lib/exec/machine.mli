(** Execution engine: runs module firings against the cache simulator.

    A machine instantiates a streaming graph on the simulated DAM memory:
    every module's state and every channel's ring buffer receive disjoint
    word-address ranges, and firing a module touches exactly the words the
    paper's model charges for — the module's whole state, the [pop] words it
    consumes from each input channel and the [push] words it produces on
    each output channel (Section 2: "In order to execute, or fire a module
    v, the entire state of that module must be loaded into the cache").

    The machine enforces SDF firing rules: a firing raises {!Not_fireable}
    unless every input buffer holds enough tokens and every output buffer
    has enough space, so any schedule that runs to completion is a
    certified-legal schedule.  Token counts are tracked per channel for
    conservation checks in tests. *)

type t

exception Not_fireable of { node : Ccs_sdf.Graph.node; reason : string }

exception Budget_exceeded of { budget : int }
(** Raised by {!fire} once {!total_fires} reaches the budget installed with
    {!set_fire_budget} — the watchdog's guard against livelocked drivers. *)

type layout = {
  l_states : Ccs_cache.Layout.region array;  (** Per-module state region. *)
  l_buffers : Ccs_cache.Layout.region array;
      (** Per-channel ring buffer region ([length] = capacity). *)
  l_total_words : int;  (** Address-space high-water mark. *)
}
(** The simulated address space a (graph, cache, capacities) triple
    induces: state regions in node order (block-aligned by default), then
    ring buffers in edge order, packed. *)

val plan_layout :
  ?align_to_block:bool ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  capacities:int array ->
  unit ->
  layout
(** The exact layout {!create} would build a machine on.  The compiled
    backend ({!Ccs_codegen}) lowers plans through this, so compiled
    word-access traces replay against the interpreted machine
    address-for-address.
    @raise Invalid_argument on a capacity below [max push pop] or a
    capacity vector of the wrong length. *)

val create :
  ?align_to_block:bool ->
  ?record_trace:bool ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  ?metrics_labels:(string * string) list ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  capacities:int array ->
  unit ->
  t
(** [create ~graph ~cache ~capacities ()] lays out the graph and attaches a
    fresh cache.  [capacities.(e)] is channel [e]'s buffer capacity in
    tokens and must be at least [max (push e) (pop e)] (checked).  With
    [align_to_block] (default [true]) every region starts on a block
    boundary.  With [record_trace] every touched word address is recorded
    (see {!trace}).

    [counters], sized [num_nodes + num_edges] (checked), attributes every
    cache access and miss to its owning entity — module state [v] is
    entity [v], channel buffer [e] is entity [num_nodes + e] — so
    per-entity misses sum exactly to {!misses}.  [tracer] additionally
    logs fire/load/evict/stall events with a logical clock that ticks once
    per simulated cache access.  Both default to absent, in which case the
    firing path is byte-for-byte the uninstrumented one (no extra work, no
    allocation).

    [metrics] registers this machine's series
    ([ccs_machine_fires_total], [ccs_cache_accesses/hits/misses/
    evictions/flushes], each carrying [metrics_labels]) in the given
    registry.  Only the fires counter is pushed from the firing path (one
    branch, one store); the cache series are gauges refreshed by
    {!sync_metrics}, so attaching a registry cannot change replacement
    behavior — miss counts stay bit-identical. *)

val graph : t -> Ccs_sdf.Graph.t
val cache : t -> Ccs_cache.Cache.t

val capacity : t -> Ccs_sdf.Graph.edge -> int
val tokens : t -> Ccs_sdf.Graph.edge -> int
(** Tokens currently buffered on a channel. *)

val space : t -> Ccs_sdf.Graph.edge -> int
(** Remaining capacity: [capacity e - tokens e]. *)

val can_fire : t -> Ccs_sdf.Graph.node -> bool

val deadlocked : t -> bool
(** True iff no module at all can fire — the machine can make no further
    progress under any driver. *)

val fireable_reason : t -> Ccs_sdf.Graph.node -> string option
(** [None] if fireable, otherwise a human-readable obstruction. *)

val fire : t -> Ccs_sdf.Graph.node -> unit
(** @raise Not_fireable if the module's firing rule is not satisfied. *)

val set_fire_hook : t -> (Ccs_sdf.Graph.node -> unit) option -> unit
(** Install a callback invoked after every successful {!fire} with the
    fired module.  This is how the data-carrying runtime
    ({!Ccs_runtime.Engine}) piggybacks real token movement onto any
    schedule driver, static or dynamic, without changing the driver. *)

val set_fire_budget : t -> int option -> unit
(** Install (or clear) a cap on {!total_fires}; once reached, any further
    {!fire} raises {!Budget_exceeded} instead of executing.  Used by
    {!Ccs_sched.Watchdog} to bound runaway or livelocked drivers. *)

val snapshot : t -> Ccs_sdf.Error.snapshot
(** Diagnostic freeze-frame: firing/input/output counts, every channel's
    occupancy against its capacity, and every currently-blocked module with
    its {!fireable_reason}. *)

val fire_many : t -> Ccs_sdf.Graph.node -> int -> unit
(** [fire_many t v k] fires [v] exactly [k] times. *)

val run : t -> Ccs_sdf.Graph.node list -> unit
(** Fire a sequence in order. *)

val fires : t -> Ccs_sdf.Graph.node -> int
(** How many times a module has fired so far. *)

val total_fires : t -> int

val consumed : t -> Ccs_sdf.Graph.edge -> int
(** Total tokens ever consumed from a channel. *)

val produced : t -> Ccs_sdf.Graph.edge -> int
(** Total tokens ever produced onto a channel. *)

val source_inputs : t -> int
(** Firings of the graph's unique source — the paper's count of inputs
    consumed by the application. *)

val sink_outputs : t -> int
(** Firings of the graph's unique sink. *)

val misses : t -> int
(** Shorthand for [Ccs_cache.Cache.misses (cache t)]. *)

val misses_per_input : t -> float
(** [misses / source_inputs]; [nan] before any input. *)

val trace : t -> int array
(** The recorded address trace ([record_trace] must have been set).  One
    entry per {e block} touched within each contiguous span (touching every
    word of a span would produce the same block sequence, hence the same
    misses, at much higher simulation cost). *)

val address_space_words : t -> int
(** Total simulated memory footprint. *)

val state_region : t -> Ccs_sdf.Graph.node -> Ccs_cache.Layout.region
val buffer_region : t -> Ccs_sdf.Graph.edge -> Ccs_cache.Layout.region

(** {2 Observability}

    Entity ids for the attribution counters: module state [v] is entity
    [v]; channel buffer [e] is entity [num_nodes + e]. *)

val num_entities : t -> int
(** [num_nodes + num_edges] — the size {!create}'s [counters] must have. *)

val entity_of_state : t -> Ccs_sdf.Graph.node -> int
val entity_of_buffer : t -> Ccs_sdf.Graph.edge -> int

val entity_label : t -> int -> string
(** The module or channel name behind an entity id (diagnostics, trace
    export). *)

val counters : t -> Ccs_obs.Counters.t option
val tracer : t -> Ccs_obs.Tracer.t option

val metrics : t -> Ccs_obs.Metrics.t option
(** The registry passed to {!create}, if any. *)

val sync_metrics : t -> unit
(** Refresh the cache-level gauges ([ccs_cache_*]) from the cache's
    statistics.  A no-op without an attached registry.  Drivers call this
    at epoch and run boundaries — the access hot path never does. *)

val fire_budget : t -> int option
(** The currently installed firing cap, if any (see {!set_fire_budget}). *)

(** {2 Adaptation hooks}

    Entry points for the adaptive layer ({!Ccs_sched.Adapt}): reconfigure
    the cache under a live run, or move a run onto a machine built for a
    different plan. *)

val resize_cache : t -> Ccs_cache.Cache.config -> unit
(** Apply {!Ccs_cache.Cache.resize} to this machine's cache: capacity or
    associativity changes mid-run, residents surviving by the deterministic
    hottest-first rule.  Regions, cursors and firing state are untouched.
    @raise Invalid_argument if the block size differs. *)

val migrate : src:t -> t -> unit
(** [migrate ~src dst] transplants [src]'s execution state onto [dst], a
    machine built from the same graph (same node/channel counts) but
    possibly a different cache config, layout or channel capacities.
    Firing counts, the firing budget and cumulative channel traffic carry
    over; each channel's buffered tokens are renormalized into the new ring
    buffer ([head = 0], [tail] = token count), so the SDF state — what can
    fire next — is preserved exactly.  [src]'s cache {e statistics} are
    folded into [dst]'s ({!Ccs_cache.Cache.carry_stats}) so miss totals
    stay cumulative across the migration, but residency is not
    transferred: [dst]'s cache starts cold — migrating to a new memory
    layout forfeits cache residency, and the adaptation layer pays that
    cost honestly.
    @raise Invalid_argument on shape mismatch or if a channel's buffered
    tokens exceed the destination capacity. *)

(** {2 Checkpoint persistence}

    The execution-relevant mutable state of a machine — firing counts,
    absolute channel head/tail cursors, cumulative channel traffic, and the
    firing budget.  Cache recency state and attribution counters live in
    {!Ccs_cache.Cache.persist} and {!Ccs_obs.Counters.dump}; together the
    three capture everything needed to resume a run bit-identically. *)

type persisted = {
  p_fire_count : int array;
  p_total_fires : int;
  p_heads : int array;
  p_tails : int array;
  p_consumed : int array;
  p_produced : int array;
  p_budget : int option;
}

val persist : t -> persisted
(** Copy out the machine's mutable execution state. *)

val restore : t -> persisted -> unit
(** Overwrite the machine's execution state with a previous {!persist}.
    The machine must have been built from the same graph (same node and
    channel counts).
    @raise Invalid_argument on a shape mismatch. *)

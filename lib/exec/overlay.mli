(** Deterministic data-carrying overlay: the bit-exactness oracle for
    schedule changes, migrations and chaos runs.

    A {!Machine} moves token {e counts}; an overlay shadows every channel
    with a FIFO of integer values and every module with a running digest of
    its input history, advanced through the machine's fire hook.  Each
    module's k-th firing consumes exactly the values its producers' earlier
    firings pushed, so by Kahn determinism the value sequence arriving at
    the sinks depends only on the graph and the seed — not on the schedule,
    the cache configuration, or any mid-run repartitioning.

    Two runs of the same graph and seed must therefore sink identical
    values, whatever happened to them along the way; {!mismatches} counts
    the violations (which a correct system keeps at zero).

    The overlay lives {e outside} the machine: attach it to every machine a
    run creates (e.g. via {!Ccs_sched.Adapt.run}'s [prepare]) and it
    survives checkpointed migration for free — channel token counts are
    preserved by {!Machine.migrate}, and the shadow values were never
    machine state to begin with. *)

type t

val create : ?seed:int -> Ccs_sdf.Graph.t -> t
(** A fresh overlay; channel delays receive seed-derived initial values.
    [seed] defaults to [0]. *)

val fire : t -> Ccs_sdf.Graph.node -> unit
(** Advance the overlay by one firing of a module: consume its inputs,
    fold them into the module digest, emit its outputs (and record the
    digest when the module is a sink).  Normally invoked by the machine's
    fire hook ({!attach}), exposed for custom drivers.

    @raise Invalid_argument if the shadow queues underflow — the overlay
    missed firings and is out of sync with the machine. *)

val attach : t -> Machine.t -> unit
(** Install {!fire} as the machine's fire hook (replacing any other). *)

val sink_outputs : t -> (Ccs_sdf.Graph.node * int list) list
(** Per sink module, the value stream observed so far, oldest first. *)

val mismatches : reference:t -> t -> int
(** Positions in the common prefix of each sink's stream where the two
    overlays disagree, plus any values for sinks unknown to [reference].
    Comparing prefixes (not lengths) is deliberate: epoch-aligned runs
    overshoot a requested output count to a whole-period boundary, so two
    correct runs may differ in length but never in content. *)

val compared : reference:t -> t -> int
(** Number of sink values {!mismatches} actually compared (the summed
    common-prefix lengths) — guards against vacuous zero-mismatch
    verdicts. *)

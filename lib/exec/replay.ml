module Cache = Ccs_cache.Cache

type result = { accesses : int; hits : int; misses : int }

let run ~cache trace =
  let c = Cache.create cache in
  Array.iter (fun addr -> ignore (Cache.touch c addr)) trace;
  {
    accesses = Cache.accesses c;
    hits = Cache.hits c;
    misses = Cache.misses c;
  }

let misses ~cache trace = (run ~cache trace).misses

(* The single time source for latency telemetry.

   [Sys.time] (what ccs_checkpoint_{save,load}_us used before) measures
   CPU time, which makes I/O stalls invisible and misreports latency the
   moment more than one process shares a core — exactly the regime the
   serve daemon's forked workers run in.  This is wall-clock time from
   [Unix.gettimeofday], monotonicized: a reading never goes backwards
   even if the system clock is stepped underneath us, so latency deltas
   are never negative. *)

let last = ref 0

let now_us () =
  let us = int_of_float (Unix.gettimeofday () *. 1e6) in
  if us > !last then last := us;
  !last

let elapsed_us ~since = max 0 (now_us () - since)

(** Multiprocessor simulation: private caches, shared memory.

    Models the paper's future-work setting concretely: [P] processors,
    each with a private cache of the configured size, over one shared
    address space.  Components are placed on processors; executing a
    component's firing touches (state, channel tokens) go through its
    processor's cache.  A token crossing a processor boundary therefore
    misses in {e both} caches (written by one, read by the other), while
    processor-internal cross-component traffic can stay cached — exactly
    the coupling between partitioning, placement, and cache misses the
    paper's conclusion points at.

    Execution follows the batch partitioned schedule: per batch of [T]
    inputs, components run in topological order (each on its own
    processor's cache).  Time is modeled as [work + miss_penalty · misses]
    per processor per batch; the batch {e makespan} is the maximum over
    processors, and would-be speedup is the uniprocessor time over the
    makespan.  This is a throughput model of software pipelining across
    batches: different processors work on different batches concurrently,
    so per-batch loads, not precedence within one batch, bound steady-state
    throughput. *)

type config = {
  processors : int;
  cache : Ccs_cache.Cache.config;  (** Per-processor private cache. *)
  miss_penalty : float;
      (** Cost of one cache miss, in units of one word of work. *)
}

type result = {
  per_processor_misses : int array;
  per_processor_work : float array;  (** Words touched (hit or miss). *)
  per_processor_time : float array;  (** work + miss_penalty · misses. *)
  makespan : float;  (** Max per-processor time, per input. *)
  uniprocessor_time : float;
      (** The same schedule on one processor of the same cache size, per
          input. *)
  speedup : float;  (** [uniprocessor_time / makespan]. *)
  total_misses : int;
  inputs : int;
}

type session
(** An in-flight multiprocessor run: the shared layout, per-processor
    caches, channel cursors and work accounting.  Sessions decouple
    construction from execution so a run can be advanced in batch
    increments, snapshotted with {!save_session}, and resumed with
    {!load_session} — the multiprocessor counterpart of
    {!Ccs_exec.Checkpoint}. *)

val create_session :
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  Assign.t ->
  plan:Ccs_sched.Plan.t ->
  config ->
  session
(** Lay out the shared address space and fresh caches for [plan]; nothing
    is executed yet.
    @raise Ccs_sdf.Error.Error with [Plan_invalid] if the plan is
    aperiodic. *)

val run_batches : session -> int -> unit
(** Execute that many further batches (one period each) of the session's
    schedule. *)

val batches_done : session -> int

val sync_metrics : session -> unit
(** Refresh the attached registry (a no-op without one): [ccs_multi_batches],
    [ccs_multi_inputs], and per-processor [ccs_cache_*] gauges labeled
    [proc="<p>"].  Pull-model only — the firing path carries no metrics
    code, so an attached registry cannot change miss counts. *)

val result : session -> result
(** The result as of the batches executed so far (also refreshes the
    attached registry, as {!sync_metrics}). *)

val save_session : path:string -> session -> unit
(** Snapshot the session's complete mutable state — channel cursors, every
    private cache's recency order and statistics, the uniprocessor shadow
    cache, work accounting, and attached counters/tracer — to a framed,
    checksummed file (magic ["CCSMSNAP"]), atomically.
    @raise Sys_error on I/O failure. *)

val load_session :
  path:string -> session -> (unit, Ccs_sdf.Error.t) Stdlib.result
(** Restore a {!save_session} snapshot into a freshly created session of
    the {e same} graph, plan, configuration and capacities; afterwards
    {!run_batches} continues bit-identically to the run that was saved.
    Errors: [Io], [Checkpoint_corrupt], [Checkpoint_version], and
    [Checkpoint_mismatch] when the snapshot belongs to a different setup. *)

val run :
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  Assign.t ->
  t:int ->
  batches:int ->
  config ->
  result
(** Execute [batches] batches of [t] inputs under the placement.

    [counters], sized [num_nodes + num_edges] (checked), attributes the
    parallel run's per-processor cache traffic to owning entities with the
    same encoding as {!Ccs_exec.Machine}: module state [v] is entity [v],
    channel buffer [e] is entity [num_nodes + e].  [tracer] logs
    fire/load/evict events against the private caches.  The uniprocessor
    shadow run (the speedup baseline) is never attributed or traced.

    @raise Invalid_argument if [t] is not a granularity multiple or the
    partition is not well-ordered. *)

val run_plan :
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  Assign.t ->
  plan:Ccs_sched.Plan.t ->
  batches:int ->
  config ->
  result
(** Like {!run} but replays an explicit plan instead of building the batch
    plan internally.

    @raise Ccs_sdf.Error.Error with [Plan_invalid] if the plan is
    aperiodic ([period = None]): the multiprocessor simulator replays
    static periodic schedules only. *)

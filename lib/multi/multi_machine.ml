module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module E = Ccs_sdf.Error
module Binio = Ccs_sdf.Binio
module Spec = Ccs_partition.Spec
module Cache = Ccs_cache.Cache
module Layout = Ccs_cache.Layout
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer
module Metrics = Ccs_obs.Metrics

type config = {
  processors : int;
  cache : Cache.config;
  miss_penalty : float;
}

type result = {
  per_processor_misses : int array;
  per_processor_work : float array;
  per_processor_time : float array;
  makespan : float;
  uniprocessor_time : float;
  speedup : float;
  total_misses : int;
  inputs : int;
}

type chan = {
  region : Layout.region;
  mutable head : int;
  mutable tail : int;
}

type session = {
  graph : Graph.t;
  cfg : config;
  plan_name : string;
  period : Ccs_sched.Schedule.t;
  capacities : int array;
  chans : chan array;
  caches : Cache.t array;
  uni_cache : Cache.t;
  work : float array;
  mutable uni_work : float;
  mutable inputs : int;
  mutable batches_done : int;
  counters : Counters.t option;
  tracer : Tracer.t option;
  metrics : Metrics.t option;
  fire : Graph.node -> unit;
}

let create_session ?counters ?tracer ?metrics g _a spec assign ~plan cfg =
  if cfg.processors <> assign.Assign.processors then
    invalid_arg "Multi_machine.run: assignment processor count mismatch";
  (* The placement simulator replays a static batch schedule; a dynamic
     (aperiodic) plan has no period to replay, which is a caller error of
     the structured kind, not an [assert false]. *)
  let period =
    match plan.Ccs_sched.Plan.period with
    | Some p -> p
    | None ->
        E.fail
          (E.Plan_invalid
             {
               plan = plan.Ccs_sched.Plan.name;
               reason =
                 "plan is aperiodic (no static period); Multi_machine \
                  replays periodic batch schedules only";
             })
  in
  let capacities = plan.Ccs_sched.Plan.capacities in
  let n = Graph.num_nodes g in
  let m = Graph.num_edges g in
  (match counters with
  | Some c when Counters.entities c <> n + m ->
      invalid_arg
        (Printf.sprintf
           "Multi_machine.run_plan: counters sized for %d entities, need %d"
           (Counters.entities c) (n + m))
  | _ -> ());
  (* Shared address space, same layout discipline as Machine. *)
  let block = cfg.cache.Cache.block_words in
  let layout = Layout.create ~align:block () in
  let states =
    Array.init n (fun v -> Layout.alloc layout ~len:(Graph.state g v))
  in
  let chans =
    Array.init m (fun e ->
        {
          region = Layout.alloc ~align:1 layout ~len:capacities.(e);
          head = 0;
          tail = Graph.delay g e;
        })
  in
  let caches = Array.init cfg.processors (fun _ -> Cache.create cfg.cache) in
  let uni_cache = Cache.create cfg.cache in
  let work = Array.make cfg.processors 0. in
  let proc_of_node v =
    assign.Assign.processor_of_component.(Spec.component_of spec v)
  in
  (* Attribution covers the parallel run (the per-processor caches); the
     uniprocessor shadow run is the speedup baseline and stays
     unobserved. *)
  let touch_observed cache owner blk =
    match tracer with
    | None ->
        let hit = Cache.touch_block cache blk in
        (match counters with
        | Some c -> Counters.record c owner ~hit
        | None -> ())
    | Some tr ->
        let hit, victim = Cache.touch_block_traced cache blk in
        (match counters with
        | Some c -> Counters.record c owner ~hit
        | None -> ());
        Tracer.advance tr 1;
        if not hit then begin
          Tracer.load tr ~owner ~block:blk;
          if victim >= 0 then Tracer.evict tr ~owner ~block:victim
        end
  in
  let touch_span ?owner cache addr len =
    if len > 0 then begin
      let first = addr / block and last = (addr + len - 1) / block in
      match owner with
      | None ->
          for blk = first to last do
            ignore (Cache.touch_block cache blk)
          done
      | Some o ->
          for blk = first to last do
            touch_observed cache o blk
          done
    end
  in
  let touch_ring ?owner cache (region : Layout.region) pos k =
    if k > 0 then begin
      let len = region.Layout.length in
      let start = pos mod len in
      if start + k <= len then
        touch_span ?owner cache (region.Layout.base + start) k
      else begin
        touch_span ?owner cache (region.Layout.base + start) (len - start);
        touch_span ?owner cache region.Layout.base (k - (len - start))
      end
    end
  in
  let source = Graph.source g in
  let rec session =
    {
      graph = g;
      cfg;
      plan_name = plan.Ccs_sched.Plan.name;
      period;
      capacities;
      chans;
      caches;
      uni_cache;
      work;
      uni_work = 0.;
      inputs = 0;
      batches_done = 0;
      counters;
      tracer;
      metrics;
      fire = (fun v -> fire v);
    }
  and fire v =
    let p = proc_of_node v in
    let cache = caches.(p) in
    let fire_ev =
      match tracer with Some tr -> Tracer.begin_fire tr ~node:v | None -> -1
    in
    let words = ref 0 in
    let st = states.(v) in
    touch_span ~owner:v cache st.Layout.base st.Layout.length;
    touch_span uni_cache st.Layout.base st.Layout.length;
    words := !words + st.Layout.length;
    List.iter
      (fun e ->
        let c = chans.(e) in
        let k = Graph.pop g e in
        touch_ring ~owner:(n + e) cache c.region c.head k;
        touch_ring uni_cache c.region c.head k;
        c.head <- c.head + k;
        words := !words + k)
      (Graph.in_edges g v);
    List.iter
      (fun e ->
        let c = chans.(e) in
        let k = Graph.push g e in
        touch_ring ~owner:(n + e) cache c.region c.tail k;
        touch_ring uni_cache c.region c.tail k;
        c.tail <- c.tail + k;
        words := !words + k)
      (Graph.out_edges g v);
    work.(p) <- work.(p) +. float_of_int !words;
    session.uni_work <- session.uni_work +. float_of_int !words;
    (match tracer with Some tr -> Tracer.end_fire tr fire_ev | None -> ());
    if v = source then session.inputs <- session.inputs + 1
  in
  session

let run_batches session k =
  for _ = 1 to k do
    Ccs_sched.Schedule.iter session.period ~f:session.fire
  done;
  session.batches_done <- session.batches_done + k

let batches_done session = session.batches_done

(* Pull-model sync: one labeled gauge set per processor cache, refreshed at
   measurement points only — the per-firing touch loops above carry no
   metrics code, so attaching a registry cannot perturb replacement. *)
let sync_metrics session =
  match session.metrics with
  | None -> ()
  | Some reg ->
      Metrics.set
        (Metrics.gauge reg ~help:"Batches of the period schedule replayed"
           "ccs_multi_batches")
        session.batches_done;
      Metrics.set
        (Metrics.gauge reg ~help:"Source firings executed" "ccs_multi_inputs")
        session.inputs;
      Array.iteri
        (fun p cache ->
          let labels = [ ("proc", string_of_int p) ] in
          let g name help = Metrics.gauge reg ~help ~labels name in
          Metrics.set
            (g "ccs_cache_accesses" "Simulated cache accesses")
            (Cache.accesses cache);
          Metrics.set
            (g "ccs_cache_hits" "Simulated cache hits")
            (Cache.hits cache);
          Metrics.set
            (g "ccs_cache_misses" "Simulated cache misses")
            (Cache.misses cache);
          Metrics.set
            (g "ccs_cache_evictions" "Blocks displaced by replacement")
            (Cache.evictions cache))
        session.caches

let result session =
  sync_metrics session;
  let per_processor_misses = Array.map Cache.misses session.caches in
  let per_input x = x /. float_of_int (max 1 session.inputs) in
  let per_processor_time =
    Array.mapi
      (fun p w ->
        per_input
          (w
          +. session.cfg.miss_penalty
             *. float_of_int per_processor_misses.(p)))
      session.work
  in
  let makespan = Array.fold_left Float.max 0. per_processor_time in
  let uniprocessor_time =
    per_input
      (session.uni_work
      +. session.cfg.miss_penalty
         *. float_of_int (Cache.misses session.uni_cache))
  in
  {
    per_processor_misses;
    per_processor_work = Array.map per_input session.work;
    per_processor_time;
    makespan;
    uniprocessor_time;
    speedup = (if makespan = 0. then 1. else uniprocessor_time /. makespan);
    total_misses = Array.fold_left ( + ) 0 per_processor_misses;
    inputs = session.inputs;
  }

(* --- session snapshots ----------------------------------------------------- *)

let magic = "CCSMSNAP"
let version = 1

let graph_digest g = Digest.to_hex (Digest.string (Ccs_sdf.Serial.to_text g))

let policy_tag = function
  | Cache.Lru -> (0, 0)
  | Cache.Set_associative ways -> (1, ways)
  | Cache.Direct_mapped -> (2, 0)

let encode_cache w (p : Cache.persisted) =
  Binio.W.int w p.Cache.p_accesses;
  Binio.W.int w p.Cache.p_hits;
  Binio.W.int w p.Cache.p_misses;
  Binio.W.int w p.Cache.p_flushes;
  Binio.W.int w (Array.length p.Cache.p_sets);
  Array.iter (Binio.W.int_array w) p.Cache.p_sets

let decode_cache ~path r =
  let p_accesses = Binio.R.int r in
  let p_hits = Binio.R.int r in
  let p_misses = Binio.R.int r in
  let p_flushes = Binio.R.int r in
  let num_sets = Binio.R.int r in
  if num_sets < 0 || num_sets > 1 lsl 30 then
    E.fail
      (E.Checkpoint_corrupt
         { path; reason = Printf.sprintf "implausible set count %d" num_sets });
  let p_sets = Array.init num_sets (fun _ -> Binio.R.int_array r) in
  { Cache.p_accesses; p_hits; p_misses; p_flushes; p_sets }

let save_session ~path session =
  let w = Binio.W.create () in
  Binio.W.string w (graph_digest session.graph);
  Binio.W.string w session.plan_name;
  Binio.W.int w session.cfg.processors;
  Binio.W.float w session.cfg.miss_penalty;
  Binio.W.int w session.cfg.cache.Cache.size_words;
  Binio.W.int w session.cfg.cache.Cache.block_words;
  let tag, ways = policy_tag session.cfg.cache.Cache.policy in
  Binio.W.int w tag;
  Binio.W.int w ways;
  Binio.W.int_array w session.capacities;
  Binio.W.int w session.batches_done;
  Binio.W.int w session.inputs;
  Binio.W.float w session.uni_work;
  Binio.W.float_array w session.work;
  Binio.W.int_array w (Array.map (fun c -> c.head) session.chans);
  Binio.W.int_array w (Array.map (fun c -> c.tail) session.chans);
  Binio.W.int w (Array.length session.caches);
  Array.iter (fun c -> encode_cache w (Cache.persist c)) session.caches;
  encode_cache w (Cache.persist session.uni_cache);
  (match session.counters with
  | None -> Binio.W.int w 0
  | Some c ->
      let accesses, misses = Counters.dump c in
      Binio.W.int w 1;
      Binio.W.int_array w accesses;
      Binio.W.int_array w misses);
  (match session.tracer with
  | None -> Binio.W.int w 0
  | Some tr ->
      Binio.W.int w 1;
      Binio.W.int w (Tracer.clock tr);
      Binio.W.int w (Tracer.dropped tr));
  Binio.write_file ~path ~magic ~version (Binio.W.contents w)

let mismatch ~path ~field ~expected ~found =
  E.fail (E.Checkpoint_mismatch { path; field; expected; found })

let check ~path ~field ~expected ~found pp =
  if expected <> found then
    mismatch ~path ~field ~expected:(pp expected) ~found:(pp found)

let load_session ~path session =
  match Binio.read_file ~path ~magic ~version () with
  | Error e -> Error e
  | Ok payload ->
      E.protect (fun () ->
          let r = Binio.R.of_string ~path payload in
          check ~path ~field:"graph"
            ~expected:(Binio.R.string r)
            ~found:(graph_digest session.graph) Fun.id;
          check ~path ~field:"plan"
            ~expected:(Binio.R.string r)
            ~found:session.plan_name Fun.id;
          check ~path ~field:"processors" ~expected:(Binio.R.int r)
            ~found:session.cfg.processors string_of_int;
          check ~path ~field:"miss_penalty" ~expected:(Binio.R.float r)
            ~found:session.cfg.miss_penalty string_of_float;
          check ~path ~field:"cache.size_words" ~expected:(Binio.R.int r)
            ~found:session.cfg.cache.Cache.size_words string_of_int;
          check ~path ~field:"cache.block_words" ~expected:(Binio.R.int r)
            ~found:session.cfg.cache.Cache.block_words string_of_int;
          let tag, ways = policy_tag session.cfg.cache.Cache.policy in
          check ~path ~field:"cache.policy" ~expected:(Binio.R.int r)
            ~found:tag string_of_int;
          check ~path ~field:"cache.ways" ~expected:(Binio.R.int r) ~found:ways
            string_of_int;
          let capacities = Binio.R.int_array r in
          if capacities <> session.capacities then
            mismatch ~path ~field:"capacities"
              ~expected:
                (String.concat ","
                   (Array.to_list (Array.map string_of_int capacities)))
              ~found:
                (String.concat ","
                   (Array.to_list (Array.map string_of_int session.capacities)));
          session.batches_done <- Binio.R.int r;
          session.inputs <- Binio.R.int r;
          session.uni_work <- Binio.R.float r;
          let work = Binio.R.float_array r in
          if Array.length work <> Array.length session.work then
            mismatch ~path ~field:"work"
              ~expected:(string_of_int (Array.length work))
              ~found:(string_of_int (Array.length session.work));
          Array.blit work 0 session.work 0 (Array.length work);
          let heads = Binio.R.int_array r in
          let tails = Binio.R.int_array r in
          if
            Array.length heads <> Array.length session.chans
            || Array.length tails <> Array.length session.chans
          then
            mismatch ~path ~field:"channels"
              ~expected:(string_of_int (Array.length heads))
              ~found:(string_of_int (Array.length session.chans));
          Array.iteri
            (fun e c ->
              c.head <- heads.(e);
              c.tail <- tails.(e))
            session.chans;
          let num_caches = Binio.R.int r in
          if num_caches <> Array.length session.caches then
            mismatch ~path ~field:"caches"
              ~expected:(string_of_int num_caches)
              ~found:(string_of_int (Array.length session.caches));
          let restore_cache cache =
            let p = decode_cache ~path r in
            try Cache.restore cache p
            with Invalid_argument msg ->
              E.fail (E.Checkpoint_corrupt { path; reason = msg })
          in
          Array.iter restore_cache session.caches;
          restore_cache session.uni_cache;
          (match (Binio.R.int r, session.counters) with
          | 0, Some c -> Counters.reset c
          | 0, None -> ()
          | _, c ->
              let accesses = Binio.R.int_array r in
              let misses = Binio.R.int_array r in
              Option.iter
                (fun c ->
                  try Counters.load c ~accesses ~misses
                  with Invalid_argument msg ->
                    E.fail (E.Checkpoint_corrupt { path; reason = msg }))
                c);
          (match (Binio.R.int r, session.tracer) with
          | 0, _ -> ()
          | _, tr ->
              let clock = Binio.R.int r in
              let dropped = Binio.R.int r in
              Option.iter (fun tr -> Tracer.restore tr ~clock ~dropped) tr);
          Binio.R.expect_end r)

(* --- one-shot wrappers ----------------------------------------------------- *)

let run_plan ?counters ?tracer ?metrics g a spec assign ~plan ~batches cfg =
  let session =
    create_session ?counters ?tracer ?metrics g a spec assign ~plan cfg
  in
  run_batches session batches;
  result session

let run ?counters ?tracer ?metrics g a spec assign ~t ~batches cfg =
  let plan = Ccs_sched.Partitioned.batch g a spec ~t in
  run_plan ?counters ?tracer ?metrics g a spec assign ~plan ~batches cfg

module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module E = Ccs_sdf.Error
module Spec = Ccs_partition.Spec
module Cache = Ccs_cache.Cache
module Layout = Ccs_cache.Layout
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer

type config = {
  processors : int;
  cache : Cache.config;
  miss_penalty : float;
}

type result = {
  per_processor_misses : int array;
  per_processor_work : float array;
  per_processor_time : float array;
  makespan : float;
  uniprocessor_time : float;
  speedup : float;
  total_misses : int;
  inputs : int;
}

type chan = {
  region : Layout.region;
  mutable head : int;
  mutable tail : int;
}

let run_plan ?counters ?tracer g a spec assign ~plan ~batches cfg =
  ignore a;
  if cfg.processors <> assign.Assign.processors then
    invalid_arg "Multi_machine.run: assignment processor count mismatch";
  (* The placement simulator replays a static batch schedule; a dynamic
     (aperiodic) plan has no period to replay, which is a caller error of
     the structured kind, not an [assert false]. *)
  let period =
    match plan.Ccs_sched.Plan.period with
    | Some p -> p
    | None ->
        E.fail
          (E.Plan_invalid
             {
               plan = plan.Ccs_sched.Plan.name;
               reason =
                 "plan is aperiodic (no static period); Multi_machine \
                  replays periodic batch schedules only";
             })
  in
  let capacities = plan.Ccs_sched.Plan.capacities in
  let n = Graph.num_nodes g in
  let m = Graph.num_edges g in
  (match counters with
  | Some c when Counters.entities c <> n + m ->
      invalid_arg
        (Printf.sprintf
           "Multi_machine.run_plan: counters sized for %d entities, need %d"
           (Counters.entities c) (n + m))
  | _ -> ());
  (* Shared address space, same layout discipline as Machine. *)
  let block = cfg.cache.Cache.block_words in
  let layout = Layout.create ~align:block () in
  let states =
    Array.init n (fun v -> Layout.alloc layout ~len:(Graph.state g v))
  in
  let chans =
    Array.init m (fun e ->
        {
          region = Layout.alloc ~align:1 layout ~len:capacities.(e);
          head = 0;
          tail = Graph.delay g e;
        })
  in
  let caches = Array.init cfg.processors (fun _ -> Cache.create cfg.cache) in
  let uni_cache = Cache.create cfg.cache in
  let work = Array.make cfg.processors 0. in
  let uni_work = ref 0. in
  let proc_of_node v = assign.Assign.processor_of_component.(Spec.component_of spec v) in
  (* Attribution covers the parallel run (the per-processor caches); the
     uniprocessor shadow run is the speedup baseline and stays
     unobserved. *)
  let touch_observed cache owner blk =
    match tracer with
    | None ->
        let hit = Cache.touch_block cache blk in
        (match counters with
        | Some c -> Counters.record c owner ~hit
        | None -> ())
    | Some tr ->
        let hit, victim = Cache.touch_block_traced cache blk in
        (match counters with
        | Some c -> Counters.record c owner ~hit
        | None -> ());
        Tracer.advance tr 1;
        if not hit then begin
          Tracer.load tr ~owner ~block:blk;
          if victim >= 0 then Tracer.evict tr ~owner ~block:victim
        end
  in
  let touch_span ?owner cache addr len =
    if len > 0 then begin
      let first = addr / block and last = (addr + len - 1) / block in
      match owner with
      | None ->
          for blk = first to last do
            ignore (Cache.touch_block cache blk)
          done
      | Some o ->
          for blk = first to last do
            touch_observed cache o blk
          done
    end
  in
  let touch_ring ?owner cache (region : Layout.region) pos k =
    if k > 0 then begin
      let len = region.Layout.length in
      let start = pos mod len in
      if start + k <= len then
        touch_span ?owner cache (region.Layout.base + start) k
      else begin
        touch_span ?owner cache (region.Layout.base + start) (len - start);
        touch_span ?owner cache region.Layout.base (k - (len - start))
      end
    end
  in
  let inputs = ref 0 in
  let source = Graph.source g in
  let fire v =
    let p = proc_of_node v in
    let cache = caches.(p) in
    let fire_ev =
      match tracer with Some tr -> Tracer.begin_fire tr ~node:v | None -> -1
    in
    let words = ref 0 in
    let st = states.(v) in
    touch_span ~owner:v cache st.Layout.base st.Layout.length;
    touch_span uni_cache st.Layout.base st.Layout.length;
    words := !words + st.Layout.length;
    List.iter
      (fun e ->
        let c = chans.(e) in
        let k = Graph.pop g e in
        touch_ring ~owner:(n + e) cache c.region c.head k;
        touch_ring uni_cache c.region c.head k;
        c.head <- c.head + k;
        words := !words + k)
      (Graph.in_edges g v);
    List.iter
      (fun e ->
        let c = chans.(e) in
        let k = Graph.push g e in
        touch_ring ~owner:(n + e) cache c.region c.tail k;
        touch_ring uni_cache c.region c.tail k;
        c.tail <- c.tail + k;
        words := !words + k)
      (Graph.out_edges g v);
    work.(p) <- work.(p) +. float_of_int !words;
    uni_work := !uni_work +. float_of_int !words;
    (match tracer with Some tr -> Tracer.end_fire tr fire_ev | None -> ());
    if v = source then incr inputs
  in
  for _ = 1 to batches do
    Ccs_sched.Schedule.iter period ~f:fire
  done;
  let per_processor_misses = Array.map Cache.misses caches in
  let per_input x = x /. float_of_int (max 1 !inputs) in
  let per_processor_time =
    Array.mapi
      (fun p w ->
        per_input (w +. (cfg.miss_penalty *. float_of_int per_processor_misses.(p))))
      work
  in
  let makespan = Array.fold_left Float.max 0. per_processor_time in
  let uniprocessor_time =
    per_input
      (!uni_work +. (cfg.miss_penalty *. float_of_int (Cache.misses uni_cache)))
  in
  {
    per_processor_misses;
    per_processor_work = Array.map per_input work;
    per_processor_time;
    makespan;
    uniprocessor_time;
    speedup = (if makespan = 0. then 1. else uniprocessor_time /. makespan);
    total_misses = Array.fold_left ( + ) 0 per_processor_misses;
    inputs = !inputs;
  }

let run ?counters ?tracer g a spec assign ~t ~batches cfg =
  let plan = Ccs_sched.Partitioned.batch g a spec ~t in
  run_plan ?counters ?tracer g a spec assign ~plan ~batches cfg

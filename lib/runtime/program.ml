module Graph = Ccs_sdf.Graph

type t = { graph : Graph.t; kernels : Kernel.t array }

let create g kernel_of =
  let kernels =
    Array.init (Graph.num_nodes g) (fun v ->
        let k = kernel_of v in
        if k.Kernel.state_words <> Graph.state g v then
          invalid_arg
            (Printf.sprintf
               "Program.create: module %s declares %d state words but its \
                kernel has %d"
               (Graph.node_name g v) (Graph.state g v) k.Kernel.state_words);
        k)
  in
  { graph = g; kernels }

let graph t = t.graph
let kernel t v = t.kernels.(v)

module Fault = Ccs_exec.Fault
module E = Ccs_sdf.Error

(* Wrap one kernel so it misbehaves exactly at the plan's sites for [v].
   [Bad_state_arity] corrupts [init] (state length is fixed thereafter);
   the other classes trigger on the matching firing index. *)
let wrap_kernel plan v k sites =
  let bad_arity =
    List.exists (fun s -> s.Fault.fault = E.Bad_state_arity) sites
  in
  let count = ref 0 in
  {
    Kernel.state_words = k.Kernel.state_words;
    init =
      (if bad_arity then fun () -> Array.make (k.Kernel.state_words + 1) 0.
       else k.Kernel.init);
    fire =
      (fun ~state ~inputs ~outputs ->
        let i = !count in
        incr count;
        match Fault.find plan ~node:v ~fire_index:i with
        | Some E.Kernel_exception ->
            raise (Fault.Injected { node = v; fault = E.Kernel_exception })
        | Some E.Nan_output ->
            k.Kernel.fire ~state ~inputs ~outputs;
            Array.iter
              (fun out -> Array.fill out 0 (Array.length out) Float.nan)
              outputs
        | Some E.Bad_state_arity | None ->
            k.Kernel.fire ~state ~inputs ~outputs);
  }

let inject plan t =
  let kernels =
    Array.mapi
      (fun v k ->
        match
          List.filter (fun s -> s.Fault.node = v) (Fault.sites plan)
        with
        | [] -> k
        | sites -> wrap_kernel plan v k sites)
      t.kernels
  in
  { t with kernels }

(** A program binds a streaming graph to one kernel per module. *)

type t

val create : Ccs_sdf.Graph.t -> (Ccs_sdf.Graph.node -> Kernel.t) -> t
(** [create g kernel_of] binds every module.
    @raise Invalid_argument if some kernel's [state_words] differs from the
    graph's declared state size for its module. *)

val graph : t -> Ccs_sdf.Graph.t
val kernel : t -> Ccs_sdf.Graph.node -> Kernel.t

val inject : Ccs_exec.Fault.t -> t -> t
(** Wrap every kernel named by the fault plan so it misbehaves at the
    plan's sites: [Nan_output] overwrites the firing's outputs with NaN,
    [Kernel_exception] raises {!Ccs_exec.Fault.Injected} from [fire], and
    [Bad_state_arity] makes [init] return one word too many (caught when an
    engine is built from the program).  Unnamed modules are untouched, and
    the original program is not modified. *)

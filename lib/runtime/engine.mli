(** The data-carrying execution engine.

    Wraps a {!Ccs_exec.Machine} (which does legality checking and cache
    accounting) and moves {e real tokens} through per-channel FIFO queues
    by invoking each module's kernel whenever the machine fires it.  The
    coupling uses the machine's fire hook, so {e any} plan — static batch
    schedules or the dynamic half-full drivers — runs real data without
    modification: the scheduler neither knows nor cares that computation
    is attached.

    Tokens are floats; channels with initial delay start with that many
    zero tokens, matching the scheduling semantics.

    {2 Fault containment}

    The [_checked] constructors and runners contain misbehaving kernels
    (including those wrapped by {!Program.inject}) instead of crashing or
    corrupting downstream state: a kernel that raises, emits non-finite
    tokens (with [validate]), or initialises state of the wrong arity comes
    back as a structured {!Ccs_sdf.Error.Fault} naming the module. *)

type t

val create :
  ?record_trace:bool ->
  ?validate:bool ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  program:Program.t ->
  cache:Ccs_cache.Cache.config ->
  capacities:int array ->
  unit ->
  t
(** With [validate] (default [false]) every firing's outputs are checked
    for non-finite tokens; a violation raises
    [Ccs_sdf.Error.Error (Fault _)].  [counters]/[tracer]/[metrics] are
    handed to the underlying {!Ccs_exec.Machine.create} for per-entity
    miss attribution, event tracing and registry metrics (cache gauges are
    synced when a plan run completes).
    @raise Invalid_argument if some kernel's [init] returns state of the
    wrong length. *)

val create_checked :
  ?record_trace:bool ->
  ?validate:bool ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  program:Program.t ->
  cache:Ccs_cache.Cache.config ->
  capacities:int array ->
  unit ->
  (t, Ccs_sdf.Error.t) result
(** Like {!create} but [validate] defaults to [true] and every
    construction failure is a structured error: a wrong-arity [init] is a
    [Fault] with class [Bad_state_arity] naming the module, and capacity
    violations surface as [Failure_msg] rather than exceptions. *)

val machine : t -> Ccs_exec.Machine.t
(** The underlying machine (statistics, occupancies; the fire hook slot is
    owned by the engine — do not overwrite it). *)

val fire : t -> Ccs_sdf.Graph.node -> unit
(** Fire one module: checks legality, moves cache blocks, and runs the
    kernel. *)

val run_plan : t -> Ccs_sched.Plan.t -> outputs:int -> Ccs_sched.Runner.result
(** Drive the engine's machine with the plan until the sink has fired
    [outputs] times, running every kernel along the way; returns the same
    measurement record as {!Ccs_sched.Runner.run}.
    @raise Invalid_argument if the plan's capacities differ from the
    engine's (they must be built from the same plan). *)

val run_plan_checked :
  ?budget:int ->
  t ->
  Ccs_sched.Plan.t ->
  outputs:int ->
  (Ccs_sched.Runner.result, Ccs_sdf.Error.t) result
(** {!run_plan} under the {!Ccs_sched.Watchdog}: kernel faults come back
    as [Fault] errors, stalls as [Deadlocked]/[Budget_exhausted] with a
    machine snapshot, and a capacity mismatch as [Plan_invalid] — no
    exception escapes for any of the fault classes under test. *)

val of_plan :
  ?record_trace:bool ->
  ?validate:bool ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  program:Program.t ->
  cache:Ccs_cache.Cache.config ->
  plan:Ccs_sched.Plan.t ->
  unit ->
  t
(** Engine with the plan's own capacities. *)

val state : t -> Ccs_sdf.Graph.node -> float array
(** A module's live state vector (the kernel's working data). *)

val queue_length : t -> Ccs_sdf.Graph.edge -> int
(** Data tokens currently queued on a channel (always equals the machine's
    token count). *)

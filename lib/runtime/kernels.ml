let two_pi = 8. *. atan 1.

(* Sources keep their oscillator phase in state.(0) (and friends), so the
   declared state must be at least 1 word; the rest models code/tables. *)

let sine_source ~state_words ~freq =
  if state_words < 1 then invalid_arg "Kernels.sine_source: state_words >= 1";
  Kernel.make ~state_words (fun ~state ~inputs:_ ~outputs ->
      Array.iter
        (fun out ->
          Array.iteri
            (fun i _ ->
              out.(i) <- sin (two_pi *. freq *. state.(0));
              state.(0) <- state.(0) +. 1.)
            out)
        outputs)

let fm_source ~state_words ~carrier ~tone =
  if state_words < 2 then invalid_arg "Kernels.fm_source: state_words >= 2";
  Kernel.make ~state_words (fun ~state ~inputs:_ ~outputs ->
      (* state.(0) = accumulated carrier phase, state.(1) = sample index *)
      Array.iter
        (fun out ->
          Array.iteri
            (fun i _ ->
              let deviation =
                0.5 *. carrier *. sin (two_pi *. tone *. state.(1))
              in
              state.(0) <- state.(0) +. carrier +. deviation;
              state.(1) <- state.(1) +. 1.;
              out.(i) <- cos (two_pi *. state.(0)))
            out)
        outputs)

let counter_source ~state_words =
  if state_words < 1 then
    invalid_arg "Kernels.counter_source: state_words >= 1";
  Kernel.make ~state_words (fun ~state ~inputs:_ ~outputs ->
      Array.iter
        (fun out ->
          Array.iteri
            (fun i _ ->
              out.(i) <- state.(0);
              state.(0) <- state.(0) +. 1.)
            out)
        outputs)

let null_sink ~state_words =
  Kernel.stateless ~state_words (fun ~inputs:_ ~outputs:_ -> ())

let collecting_sink ~state_words =
  let collected = ref [] in
  let kernel =
    Kernel.stateless ~state_words (fun ~inputs ~outputs:_ ->
        Array.iter
          (fun arr -> Array.iter (fun x -> collected := x :: !collected) arr)
          inputs)
  in
  (kernel, fun () -> List.rev !collected)

let identity ~state_words =
  Kernel.stateless ~state_words (fun ~inputs ~outputs ->
      Array.blit inputs.(0) 0 outputs.(0) 0 (Array.length outputs.(0)))

let gain ~state_words k =
  Kernel.stateless ~state_words (fun ~inputs ~outputs ->
      Array.iteri (fun i x -> outputs.(0).(i) <- k *. x) inputs.(0))

let fir ~taps =
  let ntaps = Array.length taps in
  let state_words = 2 * ntaps in
  (* state.(0..ntaps-1) = coefficients, state.(ntaps..) = delay line. *)
  let init () =
    let st = Array.make state_words 0. in
    Array.blit taps 0 st 0 ntaps;
    st
  in
  Kernel.make ~init ~state_words (fun ~state ~inputs ~outputs ->
      let input = inputs.(0) and out = outputs.(0) in
      let pop = Array.length input and push = Array.length out in
      let emitted = ref 0 in
      Array.iteri
        (fun idx x ->
          (* Shift the delay line and insert the new sample. *)
          for i = state_words - 1 downto ntaps + 1 do
            state.(i) <- state.(i - 1)
          done;
          state.(ntaps) <- x;
          (* Emit on the last [push] consumed samples (decimation keeps
             the freshest outputs). *)
          if idx >= pop - push then begin
            let acc = ref 0. in
            for i = 0 to ntaps - 1 do
              acc := !acc +. (state.(i) *. state.(ntaps + i))
            done;
            out.(!emitted) <- !acc;
            incr emitted
          end)
        input)

let fm_demodulate ~state_words =
  if state_words < 1 then
    invalid_arg "Kernels.fm_demodulate: state_words >= 1";
  Kernel.make ~state_words (fun ~state ~inputs ~outputs ->
      (* state.(0) = previous sample.  |x(n) - x(n-1)| ~ 2π·f_inst·|sin φ|:
         a rectified discriminator whose low-passed output is proportional
         to the instantaneous frequency — the slope-detection receiver.
         (The carrier-rate |sin| ripple is the downstream low-pass
         filter's job.) *)
      Array.iteri
        (fun i x ->
          outputs.(0).(i) <- Float.abs (x -. state.(0));
          state.(0) <- x)
        inputs.(0))

let sbox ~table_words =
  let init () =
    (* Fixed pseudo-random permutation-ish table. *)
    Array.init table_words (fun i ->
        float_of_int ((i * 2654435761) land 0xFFFF) /. 65536.)
  in
  (* Total float -> table index map.  The obvious
     [abs (int_of_float scaled) mod table_words] is not: [int_of_float] on
     NaN or out-of-range floats is unspecified, and [abs min_int] is still
     negative, so a hostile token read out of bounds.  Clamp to the exactly
     representable int range first, then reduce to a non-negative
     residue. *)
  let index_of x =
    let scaled = x *. float_of_int table_words in
    if Float.is_nan scaled then 0
    else if scaled >= 1073741823. then 1073741823 mod table_words
    else if scaled <= -1073741824. then
      (-1073741824 mod table_words + table_words) mod table_words
    else
      let r = int_of_float scaled mod table_words in
      if r < 0 then r + table_words else r
  in
  Kernel.make ~init ~state_words:table_words (fun ~state ~inputs ~outputs ->
      Array.iteri
        (fun i x -> outputs.(0).(i) <- state.(index_of x))
        inputs.(0))

let duplicate ~state_words =
  Kernel.stateless ~state_words (fun ~inputs ~outputs ->
      Array.iter
        (fun out -> Array.blit inputs.(0) 0 out 0 (Array.length out))
        outputs)

let round_robin_split ~state_words =
  Kernel.stateless ~state_words (fun ~inputs ~outputs ->
      let cursor = ref 0 in
      let take () =
        let x = inputs.(0).(!cursor) in
        incr cursor;
        x
      in
      Array.iter
        (fun out -> Array.iteri (fun i _ -> out.(i) <- take ()) out)
        outputs)

let adder ~state_words =
  Kernel.stateless ~state_words (fun ~inputs ~outputs ->
      Array.iteri
        (fun i _ ->
          let acc = ref 0. in
          Array.iter (fun input -> acc := !acc +. input.(i)) inputs;
          outputs.(0).(i) <- !acc)
        outputs.(0))

let compare_exchange ~state_words =
  Kernel.stateless ~state_words (fun ~inputs ~outputs ->
      let a = inputs.(0).(0) and b = inputs.(1).(0) in
      outputs.(0).(0) <- Float.min a b;
      outputs.(1).(0) <- Float.max a b)

let generic ~state_words =
  Kernel.make ~state_words (fun ~state ~inputs ~outputs ->
      let consumed = Array.concat (Array.to_list inputs) in
      let n = Array.length consumed in
      Array.iter
        (fun out ->
          Array.iteri
            (fun k _ ->
              if n = 0 then
                if Array.length state > 0 then begin
                  (* Source-like: emit a counter stream. *)
                  out.(k) <- state.(0);
                  state.(0) <- state.(0) +. 1.
                end
                else out.(k) <- float_of_int k
              else out.(k) <- (0.5 *. consumed.(k mod n)) +. 0.25)
            out)
        outputs)

let autobind g v =
  let module G = Ccs_sdf.Graph in
  let state_words = G.state g v in
  let ins = G.in_edges g v and outs = G.out_edges g v in
  match (ins, outs) with
  | [], _ when state_words >= 1 -> counter_source ~state_words
  | _, [] -> null_sink ~state_words
  | [ i ], [ o ]
    when G.pop g i = 1 && G.push g o = 1 && state_words >= 2
         && state_words mod 2 = 0 ->
      (* Unit-rate filter-shaped module: a real FIR sized to the state. *)
      let taps =
        Array.init (state_words / 2) (fun k ->
            1. /. float_of_int ((2 * k) + 2))
      in
      fir ~taps
  | _ -> generic ~state_words

module Graph = Ccs_sdf.Graph
module E = Ccs_sdf.Error
module Machine = Ccs_exec.Machine

type t = {
  program : Program.t;
  machine : Machine.t;
  states : float array array;
  queues : float Queue.t array;
  capacities : int array;
  validate : bool;
}

let move_data t v =
  let g = Program.graph t.program in
  let name = Graph.node_name g v in
  let kernel = Program.kernel t.program v in
  let inputs =
    Graph.in_edges g v
    |> List.map (fun e ->
           let k = Graph.pop g e in
           Array.init k (fun _ -> Queue.pop t.queues.(e)))
    |> Array.of_list
  in
  let out_edges = Graph.out_edges g v in
  let outputs =
    out_edges |> List.map (fun e -> Array.make (Graph.push g e) 0.)
    |> Array.of_list
  in
  (try kernel.Kernel.fire ~state:t.states.(v) ~inputs ~outputs with
  | Ccs_exec.Fault.Injected { fault; _ } ->
      E.fail (E.Fault { node = name; fault; detail = "injected fault" })
  | E.Error _ as exn -> raise exn
  | exn ->
      E.fail
        (E.Fault
           {
             node = name;
             fault = E.Kernel_exception;
             detail = Printexc.to_string exn;
           }));
  if t.validate then
    Array.iter
      (fun out ->
        Array.iter
          (fun x ->
            if not (Float.is_finite x) then
              E.fail
                (E.Fault
                   {
                     node = name;
                     fault = E.Nan_output;
                     detail =
                       Printf.sprintf "kernel produced a non-finite token (%h)"
                         x;
                   }))
          out)
      outputs;
  List.iteri
    (fun i e -> Array.iter (fun x -> Queue.push x t.queues.(e)) outputs.(i))
    out_edges

(* Materialise every kernel's initial state, reporting arity mismatches as
   structured [Bad_state_arity] faults. *)
let init_states program =
  let g = Program.graph program in
  Array.init (Graph.num_nodes g) (fun v ->
      let st = (Program.kernel program v).Kernel.init () in
      if Array.length st <> Graph.state g v then
        E.fail
          (E.Fault
             {
               node = Graph.node_name g v;
               fault = E.Bad_state_arity;
               detail =
                 Printf.sprintf "kernel init returned %d words, expected %d"
                   (Array.length st) (Graph.state g v);
             });
      st)

let create_unsafe ?(record_trace = false) ?(validate = false) ?counters ?tracer
    ?metrics ~program ~cache ~capacities () =
  let g = Program.graph program in
  let machine =
    Machine.create ~record_trace ?counters ?tracer ?metrics ~graph:g ~cache
      ~capacities ()
  in
  let t =
    {
      program;
      machine;
      states = init_states program;
      queues =
        Array.init (Graph.num_edges g) (fun e ->
            let q = Queue.create () in
            for _ = 1 to Graph.delay g e do
              Queue.push 0. q
            done;
            q);
      capacities = Array.copy capacities;
      validate;
    }
  in
  Machine.set_fire_hook machine (Some (move_data t));
  t

let create ?record_trace ?validate ?counters ?tracer ?metrics ~program ~cache
    ~capacities () =
  try
    create_unsafe ?record_trace ?validate ?counters ?tracer ?metrics ~program
      ~cache ~capacities ()
  with E.Error (E.Fault { node; detail; _ }) ->
    invalid_arg (Printf.sprintf "Engine.create: %s: %s" node detail)

let create_checked ?record_trace ?(validate = true) ?counters ?tracer ?metrics
    ~program ~cache ~capacities () =
  E.protect (fun () ->
      create_unsafe ?record_trace ~validate ?counters ?tracer ?metrics ~program
        ~cache ~capacities ())

let machine t = t.machine
let fire t v = Machine.fire t.machine v

let result_of_run t plan = Ccs_sched.Runner.result_of ~plan t.machine

let run_plan t plan ~outputs =
  if plan.Ccs_sched.Plan.capacities <> t.capacities then
    invalid_arg "Engine.run_plan: plan capacities differ from the engine's";
  plan.Ccs_sched.Plan.drive t.machine ~target_outputs:outputs;
  Machine.sync_metrics t.machine;
  result_of_run t plan

let run_plan_checked ?budget t plan ~outputs =
  if plan.Ccs_sched.Plan.capacities <> t.capacities then
    Result.error
      (E.Plan_invalid
         {
           plan = plan.Ccs_sched.Plan.name;
           reason = "plan capacities differ from the engine's";
         })
  else
    match Ccs_sched.Watchdog.drive ?budget t.machine ~plan ~outputs with
    | Error e -> Result.error e
    | Ok () ->
        Machine.sync_metrics t.machine;
        Ok (result_of_run t plan)

let of_plan ?record_trace ?validate ?counters ?tracer ?metrics ~program ~cache
    ~plan () =
  create ?record_trace ?validate ?counters ?tracer ?metrics ~program ~cache
    ~capacities:plan.Ccs_sched.Plan.capacities ()

let state t v = t.states.(v)
let queue_length t e = Queue.length t.queues.(e)

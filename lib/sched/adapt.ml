(* Adaptation layer: close the loop from live miss telemetry back into the
   scheduler.

   The paper's bounds (Lemmas 4 and 8) are conditional on the cache the
   plan was built for.  When the environment breaks that assumption — a
   contending tenant shrinks the effective capacity, demand turns bursty —
   the plan's measured misses-per-input drift above its predicted bound.
   This module runs the epoch loop itself, watches the drift, and climbs a
   two-rung policy ladder:

   rung 1 (graceful degradation): switch the next epoch's driver to the
   partition-free latest-first fallback on the SAME machine — no planning
   latency, no buffered state lost — while the "background" replan runs;

   rung 2 (online repartitioning): one epoch later, plan for the estimated
   effective capacity, save a post-mortem checkpoint, build a machine for
   the new plan and migrate execution state onto it
   ({!Ccs_exec.Machine.migrate}), then resume under the new plan.

   Effective capacity is never read from the chaos plan — the adaptive
   system cannot see its adversary.  It is estimated by halving the
   assumed capacity on each sustained breach, which converges to within 2x
   of the truth in log steps, the same constant-factor slack the paper's
   cache-augmentation arguments already absorb. *)

module Graph = Ccs_sdf.Graph
module E = Ccs_sdf.Error
module Machine = Ccs_exec.Machine
module Checkpoint = Ccs_exec.Checkpoint
module Fault = Ccs_exec.Fault
module Cache = Ccs_cache.Cache
module Metrics = Ccs_obs.Metrics
module Log = Ccs_obs.Log
module Json = Ccs_obs.Json

type planned = { plan : Plan.t; predicted_mpi : float }
type planner = Cache.config -> planned

type policy = {
  ewma_alpha : float;
  degrade_ratio : float;
  patience : int;
  cooldown : int;
  repartition_delay : int;
  max_adaptations : int;
  probe_restore : bool;
  restore_ratio : float;
}

let default_policy =
  {
    ewma_alpha = 0.5;
    degrade_ratio = 1.5;
    patience = 2;
    cooldown = 2;
    repartition_delay = 1;
    max_adaptations = 8;
    probe_restore = false;
    restore_ratio = 0.25;
  }

type action = Degrade | Repartition | Probe_restore

let action_to_string = function
  | Degrade -> "degrade"
  | Repartition -> "repartition"
  | Probe_restore -> "probe-restore"

type event = {
  at_epoch : int;
  action : action;
  from_plan : string;
  to_plan : string;
  assumed_words : int;
}

type report = {
  result : Runner.result;
  epochs : int;
  epoch_outputs : int;
  adaptations : event list;
  chaos_events : int;
  io_faults : int;
  checkpoints_written : int;
  final_plan : Plan.t;
  final_predicted_mpi : float;
  assumed_cache_words : int;
}

(* --- telemetry ------------------------------------------------------------ *)

type ametrics = {
  a_adaptations : Metrics.counter;
  a_degrades : Metrics.counter;
  a_repartitions : Metrics.counter;
  a_chaos : Metrics.counter;
  a_io_faults : Metrics.counter;
  a_assumed : Metrics.gauge;
  a_ewma : Metrics.gauge;
}

let make_ametrics reg =
  {
    a_adaptations =
      Metrics.counter reg ~help:"Adaptation ladder steps taken"
        "ccs_adapt_adaptations_total";
    a_degrades =
      Metrics.counter reg ~help:"Graceful-degradation fallbacks engaged"
        "ccs_adapt_degrades_total";
    a_repartitions =
      Metrics.counter reg ~help:"Online repartitions (plan migrations)"
        "ccs_adapt_repartitions_total";
    a_chaos =
      Metrics.counter reg ~help:"Chaos environment events applied"
        "ccs_adapt_chaos_events_total";
    a_io_faults =
      Metrics.counter reg ~help:"Checkpoint writes lost to injected I/O faults"
        "ccs_adapt_io_faults_total";
    a_assumed =
      Metrics.gauge reg ~help:"Effective cache capacity the live plan assumes"
        "ccs_adapt_assumed_cache_words";
    a_ewma =
      Metrics.gauge reg
        ~help:"EWMA of measured misses per input, in thousandths"
        "ccs_adapt_ewma_mpi_milli";
  }

(* --- conservative fallback ------------------------------------------------

   Latest-first dynamic driving: always fire the most-downstream fireable
   module.  This is the strategy {!Ccs_sdf.Minbuf} certifies feasible at
   any plan's capacities, so it is legal on the live machine without any
   planning — the property rung 1 needs.  It is cache-oblivious, which is
   the honest price of reacting instantly. *)

let fallback_drive graph =
  let order = Graph.topological_order graph in
  let n = Array.length order in
  fun machine ~target_outputs ->
    while Machine.sink_outputs machine < target_outputs do
      let fired = ref false in
      let i = ref (n - 1) in
      while (not !fired) && !i >= 0 do
        let v = order.(!i) in
        if Machine.can_fire machine v then begin
          Machine.fire machine v;
          fired := true
        end;
        decr i
      done;
      if not !fired then
        E.fail
          (E.Deadlocked
             {
               plan = "adapt-fallback";
               detail = "latest-first fallback cannot make progress";
               snapshot = Machine.snapshot machine;
             })
    done

let fallback_plan graph ~capacities =
  Plan.dynamic ~name:"adapt-fallback" ~capacities (fallback_drive graph)

(* --- the adaptive loop ---------------------------------------------------- *)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    E.fail
      (E.Io
         {
           path = dir;
           reason = "checkpoint directory exists but is not a directory";
         })

let run ?(policy = default_policy) ?(env = []) ?(adapt = true) ?checkpoint_dir
    ?(checkpoint_every = 4) ?epoch_outputs ?counters ?tracer ?metrics ?log
    ?prepare ?on_epoch ~graph ~cache ~planner ~outputs () =
  if policy.patience < 1 then invalid_arg "Adapt.run: patience must be >= 1";
  if policy.ewma_alpha <= 0.0 || policy.ewma_alpha > 1.0 then
    invalid_arg "Adapt.run: ewma_alpha must be in (0, 1]";
  if policy.degrade_ratio <= 1.0 then
    invalid_arg "Adapt.run: degrade_ratio must be > 1";
  if checkpoint_every <= 0 then
    invalid_arg "Adapt.run: checkpoint_every must be positive";
  let am = Option.map make_ametrics metrics in
  let ev level event fields =
    match log with Some l -> Log.log l level event fields | None -> ()
  in
  E.protect (fun () ->
      Option.iter ensure_dir checkpoint_dir;
      let initial = planner cache in
      let epoch_outputs =
        match epoch_outputs with
        | Some k ->
            if k <= 0 then
              invalid_arg "Adapt.run: epoch_outputs must be positive";
            k
        | None -> Supervisor.default_epoch_outputs ~graph ~plan:initial.plan
      in
      let make_machine plan cfg =
        let m =
          Machine.create ?counters ?tracer ?metrics ~graph ~cache:cfg
            ~capacities:plan.Plan.capacities ()
        in
        (match prepare with Some f -> f m | None -> ());
        m
      in
      let current = ref initial in
      let applied_cfg = ref cache in
      let assumed_words = ref cache.Cache.size_words in
      let machine = ref (make_machine initial.plan cache) in
      (match am with
      | Some a -> Metrics.set a.a_assumed !assumed_words
      | None -> ());
      ev Log.Info "run_start"
        [
          ("plan", Json.String initial.plan.Plan.name);
          ("plan_digest", Json.String (Plan.id initial.plan));
          ("outputs", Json.Int outputs);
          ("epoch_outputs", Json.Int epoch_outputs);
          ("adapt", Json.Bool adapt);
          ("chaos", Json.String (Fault.env_to_string env));
        ];
      let produced_target = ref 0 in
      let epoch = ref 0 in
      let ewma = ref Float.nan in
      let breach = ref 0 in
      let clean = ref 0 in
      let cooldown_left = ref 0 in
      (* [Some (countdown, words)]: a replan for [words] completing in
         [countdown] more epoch boundaries. *)
      let pending = ref None in
      let degraded = ref false in
      let adaptations = ref [] in
      let chaos_events = ref 0 in
      let io_faults = ref 0 in
      let checkpoints_written = ref 0 in
      let record action ~from_plan ~to_plan =
        let e =
          {
            at_epoch = !epoch;
            action;
            from_plan;
            to_plan;
            assumed_words = !assumed_words;
          }
        in
        adaptations := e :: !adaptations;
        (match am with
        | Some a -> (
            Metrics.inc a.a_adaptations;
            Metrics.set a.a_assumed !assumed_words;
            match action with
            | Degrade -> Metrics.inc a.a_degrades
            | Repartition | Probe_restore -> Metrics.inc a.a_repartitions)
        | None -> ());
        ev Log.Warn "adaptation"
          [
            ("epoch", Json.Int !epoch);
            ("action", Json.String (action_to_string action));
            ("from_plan", Json.String from_plan);
            ("to_plan", Json.String to_plan);
            ("assumed_words", Json.Int !assumed_words);
          ]
      in
      let save_checkpoint ~io_ok ~name =
        match checkpoint_dir with
        | None -> ()
        | Some dir ->
            if io_ok then begin
              let path = Filename.concat dir name in
              Checkpoint.save ?metrics ~path
                (Checkpoint.capture
                   ~plan_name:(!current).plan.Plan.name
                   ~epoch:!epoch !machine);
              incr checkpoints_written;
              ev Log.Info "checkpoint"
                [ ("epoch", Json.Int !epoch); ("path", Json.String path) ]
            end
            else begin
              incr io_faults;
              (match am with
              | Some a -> Metrics.inc a.a_io_faults
              | None -> ());
              ev Log.Warn "checkpoint_io_fault" [ ("epoch", Json.Int !epoch) ]
            end
      in
      (* Fire every module up to a whole multiple of its repetition count,
         deepest-first.  After a fallback epoch (a dynamic driver that
         stops exactly at the output target) the machine sits mid-period;
         completing the period returns every channel to its initial-delay
         state, which is the only state a static period plan can legally
         resume from after migration.  The completion is always feasible at
         the live capacities: it is a suffix of the period the validated
         plan itself executes. *)
      let rep = (Ccs_sdf.Rates.analyze_exn graph).Ccs_sdf.Rates.repetition in
      let rank = Graph.topo_rank graph in
      let nodes = Graph.nodes graph in
      let complete_period () =
        let k_whole =
          List.fold_left
            (fun acc v ->
              max acc ((Machine.fires !machine v + rep.(v) - 1) / rep.(v)))
            0 nodes
        in
        let deficit v = (k_whole * rep.(v)) - Machine.fires !machine v in
        let progress = ref true in
        while !progress do
          let best = ref (-1) in
          List.iter
            (fun v ->
              if
                deficit v > 0
                && Machine.can_fire !machine v
                && (!best = -1 || rank.(v) > rank.(!best))
              then best := v)
            nodes;
          if !best >= 0 then Machine.fire !machine !best
          else progress := false
        done;
        if List.exists (fun v -> deficit v > 0) nodes then
          E.fail
            (E.Deadlocked
               {
                 plan = "adapt-migration";
                 detail = "could not complete the period before migration";
                 snapshot = Machine.snapshot !machine;
               })
      in
      (* Complete a background replan: finish the current period so the
         channels return to their delay state, plan for the assumed
         capacity, save a post-mortem checkpoint, build the new machine
         under the *applied* (environment) config and migrate onto it. *)
      let repartition action words ~io_ok =
        let from_plan = Plan.id (!current).plan in
        complete_period ();
        save_checkpoint ~io_ok
          ~name:(Printf.sprintf "migrate-%09d.ccsckpt" !epoch);
        let np = planner { cache with Cache.size_words = words } in
        let capacities =
          Array.mapi
            (fun e c -> max c (Machine.tokens !machine e))
            np.plan.Plan.capacities
        in
        let plan =
          if capacities = np.plan.Plan.capacities then np.plan
          else { np.plan with Plan.capacities }
        in
        let dst = make_machine plan !applied_cfg in
        Machine.migrate ~src:!machine dst;
        machine := dst;
        current := { np with plan };
        degraded := false;
        ewma := Float.nan;
        cooldown_left := policy.cooldown;
        record action ~from_plan ~to_plan:(Plan.id plan)
      in
      while !produced_target < outputs do
        let conditions = Fault.conditions_at env !epoch in
        let io_ok = not conditions.Fault.io_faulty in
        (* Chaos: impose the environment's cache configuration. *)
        let eff = Fault.env_cache_config cache conditions in
        if eff <> !applied_cfg then begin
          Machine.resize_cache !machine eff;
          applied_cfg := eff;
          incr chaos_events;
          (match am with Some a -> Metrics.inc a.a_chaos | None -> ());
          ev Log.Warn "chaos"
            [
              ("epoch", Json.Int !epoch);
              ("cache_words", Json.Int eff.Cache.size_words);
            ]
        end;
        (* A completed background replan takes effect at this boundary. *)
        (match !pending with
        | Some (0, words) ->
            pending := None;
            repartition Repartition words ~io_ok
        | Some (n, words) -> pending := Some (n - 1, words)
        | None -> ());
        let target =
          min outputs
            (!produced_target + (epoch_outputs * conditions.Fault.burst_mult))
        in
        if conditions.Fault.burst_mult > 1 then
          ev Log.Warn "burst"
            [
              ("epoch", Json.Int !epoch);
              ("mult", Json.Int conditions.Fault.burst_mult);
            ];
        let plan_for_epoch =
          if !degraded then
            fallback_plan graph ~capacities:(!current).plan.Plan.capacities
          else (!current).plan
        in
        let misses_before = Machine.misses !machine in
        let inputs_before = Machine.source_inputs !machine in
        (match Watchdog.drive ?metrics !machine ~plan:plan_for_epoch
                 ~outputs:target
         with
        | Ok () -> ()
        | Error e -> E.fail e);
        Machine.sync_metrics !machine;
        produced_target := target;
        incr epoch;
        if
          !epoch mod checkpoint_every = 0
          || !produced_target >= outputs
        then save_checkpoint ~io_ok ~name:(Supervisor.ckpt_name !epoch);
        (* Detection: read this epoch's misses from the live registry when
           one is attached (the ccs_cache_misses series the issue names),
           falling back to the machine's own counter. *)
        let misses_now =
          match metrics with
          | Some reg -> (
              match Metrics.value reg "ccs_cache_misses" with
              | Some v -> v
              | None -> Machine.misses !machine)
          | None -> Machine.misses !machine
        in
        let d_misses = misses_now - misses_before in
        let d_inputs = Machine.source_inputs !machine - inputs_before in
        if d_inputs > 0 then begin
          let sample = float_of_int d_misses /. float_of_int d_inputs in
          ewma :=
            (if Float.is_nan !ewma then sample
             else
               (policy.ewma_alpha *. sample)
               +. ((1.0 -. policy.ewma_alpha) *. !ewma));
          (match am with
          | Some a ->
              Metrics.set a.a_ewma (int_of_float (!ewma *. 1000.0))
          | None -> ());
          let bound = (!current).predicted_mpi in
          if !cooldown_left > 0 then decr cooldown_left
          else if adapt && !pending = None && not !degraded then begin
            if bound > 0.0 && !ewma > policy.degrade_ratio *. bound then begin
              incr breach;
              clean := 0
            end
            else begin
              breach := 0;
              if bound > 0.0 && !ewma < policy.restore_ratio *. bound then
                incr clean
              else clean := 0
            end;
            if
              !breach >= policy.patience
              && List.length !adaptations < policy.max_adaptations
            then begin
              (* Rung 1: degrade now, schedule the precise replan. *)
              let block = cache.Cache.block_words in
              assumed_words := max block (!assumed_words / 2);
              degraded := true;
              pending := Some (policy.repartition_delay, !assumed_words);
              breach := 0;
              cooldown_left := policy.cooldown;
              record Degrade
                ~from_plan:(Plan.id (!current).plan)
                ~to_plan:"adapt-fallback"
            end
            else if
              policy.probe_restore
              && !clean >= policy.patience
              && !assumed_words < cache.Cache.size_words
              && List.length !adaptations < policy.max_adaptations
            then begin
              assumed_words :=
                min cache.Cache.size_words (!assumed_words * 2);
              clean := 0;
              cooldown_left := policy.cooldown;
              repartition Probe_restore !assumed_words ~io_ok
            end
          end
        end;
        ev Log.Info "epoch"
          [
            ("epoch", Json.Int !epoch);
            ("target", Json.Int target);
            ("misses", Json.Int (Machine.misses !machine));
            ("plan_digest", Json.String (Plan.id plan_for_epoch));
          ];
        match on_epoch with
        | Some f -> f ~epoch:!epoch ~machine:!machine
        | None -> ()
      done;
      Machine.sync_metrics !machine;
      let result = Runner.result_of ~plan:(!current).plan !machine in
      ev Log.Info "run_end"
        [
          ("outputs", Json.Int result.Runner.outputs);
          ("misses", Json.Int result.Runner.misses);
          ("adaptations", Json.Int (List.length !adaptations));
          ("chaos_events", Json.Int !chaos_events);
          ("io_faults", Json.Int !io_faults);
          ("plan_digest", Json.String (Plan.id (!current).plan));
        ];
      {
        result;
        epochs = !epoch;
        epoch_outputs;
        adaptations = List.rev !adaptations;
        chaos_events = !chaos_events;
        io_faults = !io_faults;
        checkpoints_written = !checkpoints_written;
        final_plan = (!current).plan;
        final_predicted_mpi = (!current).predicted_mpi;
        assumed_cache_words = !assumed_words;
      })

let pp_event fmt e =
  Format.fprintf fmt "epoch %d: %s %s -> %s (assumed %d words)" e.at_epoch
    (action_to_string e.action)
    e.from_plan e.to_plan e.assumed_words

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>epochs=%d (x%d outputs) adaptations=%d chaos=%d io_faults=%d \
     checkpoints=%d assumed=%d words@,final plan %s (predicted %.4f mpi)@,"
    r.epochs r.epoch_outputs
    (List.length r.adaptations)
    r.chaos_events r.io_faults r.checkpoints_written r.assumed_cache_words
    (Plan.id r.final_plan) r.final_predicted_mpi;
  List.iter (fun e -> Format.fprintf fmt "%a@," pp_event e) r.adaptations;
  Format.fprintf fmt "%a@]" Runner.pp_result r.result

module Graph = Ccs_sdf.Graph
module E = Ccs_sdf.Error
module Machine = Ccs_exec.Machine
module Checkpoint = Ccs_exec.Checkpoint
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer
module Metrics = Ccs_obs.Metrics
module Log = Ccs_obs.Log
module Json = Ccs_obs.Json

type config = {
  checkpoint_every : int;
  max_retries : int;
  backoff_base : int;
  keep : int;
}

let default_config =
  { checkpoint_every = 4; max_retries = 4; backoff_base = 1; keep = 2 }

type report = {
  result : Runner.result;
  epochs : int;
  epoch_outputs : int;
  checkpoints_written : int;
  resumed_from : int option;
  retries : int;
  logical_delay : int;
}

(* --- epoch geometry ------------------------------------------------------- *)

let default_epoch_outputs ~graph ~plan =
  match plan.Plan.period with
  | Some period -> (
      let counts =
        Schedule.fire_counts ~num_nodes:(Graph.num_nodes graph) period
      in
      match Graph.sinks graph with
      | [ s ] -> max 1 counts.(s)
      | _ -> max 1 (Schedule.length period))
  | None -> (
      match Ccs_sdf.Rates.analyze_checked graph with
      | Ok a -> (
          match Graph.sinks graph with
          | [ s ] -> max 1 a.Ccs_sdf.Rates.repetition.(s)
          | _ -> 1)
      | Error _ -> 1)

(* Epoch [i] (0-based) drives the machine to this cumulative sink target.
   The sequence is a pure function of (outputs, epoch_outputs), so a killed
   and resumed run replays exactly the targets of an uninterrupted one —
   the foundation of the bit-identical resume property. *)
let epoch_target ~outputs ~epoch_outputs i = min outputs ((i + 1) * epoch_outputs)

let num_epochs ~outputs ~epoch_outputs =
  if outputs <= 0 then 0
  else (outputs + epoch_outputs - 1) / epoch_outputs

(* --- checkpoint files ----------------------------------------------------- *)

let ckpt_name epoch = Printf.sprintf "ckpt-%09d.ccsckpt" epoch

let ckpt_epoch name =
  if
    String.length name = 22
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".ccsckpt"
  then int_of_string_opt (String.sub name 5 9)
  else None

let list_checkpoints dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           Option.map (fun e -> (e, Filename.concat dir name)) (ckpt_epoch name))
    |> List.sort compare

let latest_checkpoint dir =
  match List.rev (list_checkpoints dir) with [] -> None | c :: _ -> Some c

let prune ~keep dir =
  let all = list_checkpoints dir in
  let excess = List.length all - keep in
  if excess > 0 then
    List.iteri
      (fun i (_, path) -> if i < excess then try Sys.remove path with _ -> ())
      all

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    E.fail
      (E.Io
         {
           path = dir;
           reason = "checkpoint directory exists but is not a directory";
         })

(* --- fault identity ------------------------------------------------------- *)

(* A stable name for "what failed where", used to detect deterministic
   faults: the same site failing at the same firing index twice in a row is
   not going to succeed on a third attempt. *)
let site_of_error = function
  | E.Fault { node; fault; _ } ->
      Printf.sprintf "%s/%s" node (E.fault_class_to_string fault)
  | e -> E.code e

type attempt = { site : string; firing : int }

(* --- telemetry ------------------------------------------------------------ *)

type smetrics = {
  s_epochs : Metrics.counter;
  s_epoch_ticks : Metrics.histogram;
  s_retries : Metrics.counter;
  s_rollbacks : Metrics.counter;
  s_quarantines : Metrics.counter;
  s_backoff : Metrics.counter;
}

let make_smetrics reg =
  {
    s_epochs =
      Metrics.counter reg ~help:"Supervisor epochs completed"
        "ccs_supervisor_epochs_total";
    s_epoch_ticks =
      Metrics.histogram reg
        ~help:"Logical duration of each completed epoch (cache accesses)"
        "ccs_supervisor_epoch_ticks";
    s_retries =
      Metrics.counter reg ~help:"Faulted epochs re-executed"
        "ccs_supervisor_retries_total";
    s_rollbacks =
      Metrics.counter reg
        ~help:"Machine rollbacks to a checkpoint or pristine state"
        "ccs_supervisor_rollbacks_total";
    s_quarantines =
      Metrics.counter reg ~help:"Runs stopped by fault quarantine"
        "ccs_supervisor_quarantines_total";
    s_backoff =
      Metrics.counter reg
        ~help:"Logical backoff delay charged across retries"
        "ccs_supervisor_backoff_ticks_total";
  }

(* --- the supervisor ------------------------------------------------------- *)

let run ?(config = default_config) ?checkpoint_dir ?(resume = false)
    ?epoch_outputs ?counters ?tracer ?metrics ?log ?prepare ?on_epoch ~graph
    ~cache ~plan ~outputs () =
  if config.checkpoint_every <= 0 then
    invalid_arg "Supervisor.run: checkpoint_every must be positive";
  if config.max_retries < 0 then
    invalid_arg "Supervisor.run: max_retries must be >= 0";
  if config.keep <= 0 then invalid_arg "Supervisor.run: keep must be positive";
  let epoch_outputs =
    match epoch_outputs with
    | Some k ->
        if k <= 0 then
          invalid_arg "Supervisor.run: epoch_outputs must be positive";
        k
    | None -> default_epoch_outputs ~graph ~plan
  in
  let total_epochs = num_epochs ~outputs ~epoch_outputs in
  let sm = Option.map make_smetrics metrics in
  let ev level event fields =
    match log with Some l -> Log.log l level event fields | None -> ()
  in
  let plan_digest = Plan.id plan in
  E.protect (fun () ->
      Option.iter ensure_dir checkpoint_dir;
      ev Log.Info "run_start"
        [
          ("plan", Json.String plan.Plan.name);
          ("plan_digest", Json.String plan_digest);
          ("outputs", Json.Int outputs);
          ("epochs", Json.Int total_epochs);
          ("epoch_outputs", Json.Int epoch_outputs);
        ];
      let fresh_machine () =
        let machine =
          Machine.create ?counters ?tracer ?metrics ~graph ~cache
            ~capacities:plan.Plan.capacities ()
        in
        (match prepare with Some f -> f machine | None -> ());
        machine
      in
      let checkpoints_written = ref 0 in
      let save_checkpoint machine ~epoch =
        match checkpoint_dir with
        | None -> ()
        | Some dir ->
            let path = Filename.concat dir (ckpt_name epoch) in
            Checkpoint.save ?metrics ~path
              (Checkpoint.capture ~plan_name:plan.Plan.name ~epoch machine);
            incr checkpoints_written;
            ev Log.Info "checkpoint"
              [ ("epoch", Json.Int epoch); ("path", Json.String path) ];
            prune ~keep:config.keep dir
      in
      (* Roll the machine back to the last durable state: the most recent
         checkpoint if one exists, a pristine machine otherwise.  Counters
         and tracer are restored (or reset) along with it so the replayed
         epochs are indistinguishable from a first execution. *)
      let rollback () =
        (match sm with Some m -> Metrics.inc m.s_rollbacks | None -> ());
        let machine = fresh_machine () in
        match Option.map latest_checkpoint checkpoint_dir with
        | Some (Some (epoch, path)) -> (
            match Checkpoint.load_into ?metrics ~path machine with
            | Ok _ ->
                ev Log.Warn "rollback"
                  [ ("to_epoch", Json.Int epoch); ("path", Json.String path) ];
                (machine, epoch)
            | Error e -> E.fail e)
        | _ ->
            Option.iter Counters.reset counters;
            Option.iter (fun tr -> Tracer.restore tr ~clock:0 ~dropped:0) tracer;
            ev Log.Warn "rollback" [ ("to_epoch", Json.Int 0) ];
            (machine, 0)
      in
      let machine = ref (fresh_machine ()) in
      let start_epoch = ref 0 in
      let resumed_from = ref None in
      (if resume then
         match Option.map latest_checkpoint checkpoint_dir with
         | Some (Some (epoch, path)) -> (
             match Checkpoint.load ?metrics ~path () with
             | Error e -> E.fail e
             | Ok ckpt ->
                 if ckpt.Checkpoint.plan_name <> plan.Plan.name then
                   E.fail
                     (E.Checkpoint_mismatch
                        {
                          path;
                          field = "plan";
                          expected = ckpt.Checkpoint.plan_name;
                          found = plan.Plan.name;
                        });
                 (match Checkpoint.restore ~path ckpt !machine with
                 | Error e -> E.fail e
                 | Ok () -> ());
                 start_epoch := epoch;
                 resumed_from := Some epoch;
                 ev Log.Info "resume"
                   [ ("epoch", Json.Int epoch); ("path", Json.String path) ])
         | _ -> ());
      let retries = ref 0 in
      let logical_delay = ref 0 in
      let last_attempt = ref None in
      let epoch = ref !start_epoch in
      while !epoch < total_epochs do
        let target = epoch_target ~outputs ~epoch_outputs !epoch in
        (* Logical epoch duration: the cache access count is the machine's
           logical clock (one tick per simulated access). *)
        let ticks_before = Ccs_cache.Cache.accesses (Machine.cache !machine) in
        match Watchdog.drive ?metrics !machine ~plan ~outputs:target with
        | Ok () ->
            let completed = !epoch + 1 in
            (match sm with
            | Some m ->
                Metrics.inc m.s_epochs;
                Metrics.observe m.s_epoch_ticks
                  (Ccs_cache.Cache.accesses (Machine.cache !machine)
                  - ticks_before)
            | None -> ());
            Machine.sync_metrics !machine;
            if
              checkpoint_dir <> None
              && (completed mod config.checkpoint_every = 0
                 || completed = total_epochs)
            then save_checkpoint !machine ~epoch:completed;
            ev Log.Info "epoch"
              [
                ("epoch", Json.Int completed);
                ("target", Json.Int target);
                ("fires", Json.Int (Machine.total_fires !machine));
                ("misses", Json.Int (Machine.misses !machine));
              ];
            (match on_epoch with
            | Some f -> f ~epoch:completed ~machine:!machine
            | None -> ());
            last_attempt := None;
            epoch := completed
        | Error cause ->
            let firing = Machine.total_fires !machine in
            let site = site_of_error cause in
            let attempt = { site; firing } in
            let deterministic =
              match !last_attempt with
              | Some prev -> prev = attempt
              | None -> false
            in
            incr retries;
            (match sm with Some m -> Metrics.inc m.s_retries | None -> ());
            let quarantine () =
              let checkpoint =
                match Option.map latest_checkpoint checkpoint_dir with
                | Some (Some (_, path)) -> Some path
                | _ -> None
              in
              (match sm with
              | Some m -> Metrics.inc m.s_quarantines
              | None -> ());
              ev Log.Error "quarantine"
                [
                  ("site", Json.String site);
                  ("firing", Json.Int firing);
                  ("attempts", Json.Int !retries);
                  ("cause", Json.String (E.code cause));
                  ("plan_digest", Json.String plan_digest);
                ];
              E.fail
                (E.Quarantined
                   {
                     plan = plan.Plan.name;
                     plan_digest = Some plan_digest;
                     site;
                     firing;
                     attempts = !retries;
                     checkpoint;
                     cause;
                   })
            in
            if deterministic || !retries > config.max_retries then quarantine ();
            last_attempt := Some attempt;
            (* Logical-time backoff: doubling per consecutive retry.  The
               simulator has no wall clock, so the delay is accounted, not
               slept. *)
            let backoff = config.backoff_base lsl min 20 (!retries - 1) in
            logical_delay := !logical_delay + backoff;
            (match sm with
            | Some m -> Metrics.add m.s_backoff backoff
            | None -> ());
            ev Log.Warn "retry"
              [
                ("site", Json.String site);
                ("firing", Json.Int firing);
                ("attempt", Json.Int !retries);
                ("backoff", Json.Int backoff);
                ("cause", Json.String (E.code cause));
              ];
            let m, ckpt_epoch = rollback () in
            machine := m;
            epoch := ckpt_epoch
      done;
      Machine.sync_metrics !machine;
      let result = Runner.result_of ~plan !machine in
      ev Log.Info "run_end"
        [
          ("outputs", Json.Int result.Runner.outputs);
          ("misses", Json.Int result.Runner.misses);
          ("retries", Json.Int !retries);
          ("checkpoints", Json.Int !checkpoints_written);
          ("logical_delay", Json.Int !logical_delay);
          ("plan_digest", Json.String plan_digest);
        ];
      {
        result;
        epochs = total_epochs;
        epoch_outputs;
        checkpoints_written = !checkpoints_written;
        resumed_from = !resumed_from;
        retries = !retries;
        logical_delay = !logical_delay;
      })

let pp_report fmt r =
  Format.fprintf fmt
    "epochs=%d (x%d outputs) checkpoints=%d retries=%d delay=%d%s@ %a"
    r.epochs r.epoch_outputs r.checkpoints_written r.retries r.logical_delay
    (match r.resumed_from with
    | Some e -> Printf.sprintf " resumed-from-epoch=%d" e
    | None -> "")
    Runner.pp_result r.result

(** Execution plans: a scheduler's complete prescription for running a
    streaming graph — buffer capacities plus a driver that produces
    outputs.

    Plans unify static schedulers (which emit a periodic {!Schedule.t}) and
    dynamic ones (which decide firings online from buffer occupancies, like
    the paper's half-full pipeline rule), so the experiment harness can
    treat every scheduler identically: build a machine with the plan's
    capacities, then drive it to a target output count and read the miss
    counters. *)

type driver = Ccs_exec.Machine.t -> target_outputs:int -> unit
(** Drive the machine until the sink has fired at least [target_outputs]
    times.  Must be resumable: calling again with a larger target continues
    from the current machine state. *)

type t = {
  name : string;  (** Scheduler name, for reports. *)
  capacities : int array;  (** Per-channel buffer capacity in tokens. *)
  period : Schedule.t option;
      (** For static schedulers, one period/batch of the schedule. *)
  drive : driver;
}

val of_period : name:string -> capacities:int array -> Schedule.t -> t
(** A static plan: the driver repeats the period until the target is met.
    The period must fire the sink at least once. *)

val dynamic : name:string -> capacities:int array -> driver -> t

val buffer_words : t -> int
(** Total buffer footprint of the plan, in words (= tokens). *)

val id : t -> string
(** A stable short identity, ["name-digest12"]: an MD5 digest over the
    plan's name, capacity vector and (for static plans) the period's exact
    firing sequence.  Rebuilding an identical plan reproduces the id, while
    an adaptation that changes capacities or the period — even under the
    same name — gets a fresh one, so supervisor logs and quarantine reports
    can tell {e which} plan was live when an event hit.  The driver closure
    itself is not hashable and is excluded: two [dynamic] plans differing
    only in driver code share an id. *)

val layout :
  Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  t ->
  Ccs_exec.Machine.layout
(** The simulated address space this plan induces — exactly the layout a
    machine built with the plan's capacities would use (state regions in
    node order, block-aligned to [cache.block_words]; ring buffers in edge
    order, packed).  The compiled backend lowers plans through this, which
    is what makes compiled word-access traces replayable against the
    interpreted machine.
    @raise Invalid_argument on a capacity below [max push pop] or a
    capacity vector of the wrong length. *)

val validate :
  ?cache:Ccs_cache.Cache.config ->
  ?spec:Ccs_partition.Spec.t ->
  Ccs_sdf.Graph.t ->
  t ->
  (unit, Ccs_sdf.Error.t list) result
(** Certify a plan offline, reporting {e every} violated precondition:

    - [Capacity_below_rate]: a channel whose capacity admits neither a push
      nor a pop (the machine would wedge on it);
    - [Capacity_infeasible]: capacities that clear every per-channel floor
      but jointly admit no periodic schedule (checked against
      {!Ccs_sdf.Minbuf.feasible});
    - [Cache_overflow] (warning): when [?spec] and [?cache] are given, a
      component whose state exceeds the whole cache;
    - for static plans, the period must additionally be token-legal at the
      plan's capacities ([Schedule_illegal] with the witness firing),
      periodic, fire the sink, and fire every module a whole multiple of
      its repetition count ([Plan_invalid]).

    Dynamic plans (no [period]) skip the period checks — their legality is
    enforced at run time by the machine and {!Watchdog}. *)

module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Spec = Ccs_partition.Spec
module Machine = Ccs_exec.Machine
module Cache = Ccs_cache.Cache
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer
module Trace_export = Ccs_obs.Trace_export

type t = {
  result : Runner.result;
  machine : Machine.t;
  counters : Counters.t;
  tracer : Tracer.t option;
}

let run ?(events = false) ?event_limit ~graph ~cache ~plan ~outputs () =
  let n = Graph.num_nodes graph and m = Graph.num_edges graph in
  let counters = Counters.create ~entities:(n + m) in
  let tracer =
    if events then Some (Tracer.create ?limit:event_limit ()) else None
  in
  let machine =
    Machine.create ~counters ?tracer ~graph ~cache
      ~capacities:plan.Plan.capacities ()
  in
  plan.Plan.drive machine ~target_outputs:outputs;
  let result =
    {
      Runner.plan_name = plan.Plan.name;
      inputs = Machine.source_inputs machine;
      outputs = Machine.sink_outputs machine;
      misses = Machine.misses machine;
      accesses = Cache.accesses (Machine.cache machine);
      misses_per_input = Machine.misses_per_input machine;
      buffer_words = Plan.buffer_words plan;
      address_space_words = Machine.address_space_words machine;
    }
  in
  { result; machine; counters; tracer }

let per_entity t =
  Trace_export.entity_summary t.counters ~label:(Machine.entity_label t.machine)

let attributed_misses t = Counters.total_misses t.counters
let attributed_accesses t = Counters.total_accesses t.counters

(* --- predicted vs measured per-component decomposition ------------------- *)

type row = {
  label : string;
  measured : int;
  predicted : int;
}

type table = {
  components : row list;
  cross : row list;
  measured_total : int;
  predicted_total : int;
  batches : int;
}

(* The Lemma 4/8 decomposition of a batch schedule's miss traffic:

   - a component [c] reloads its working set — module states plus internal
     channel buffers — once per batch in which it runs, costing
     [ceil(words/B)] misses per region per batch (the intra-component term
     Lemma 4 charges as the O(n/B · T·s(P)/M) "reload" traffic, here with
     each component's set reloaded cold once per batch);
   - a cross edge carries [tokens_per_batch] words per batch, written by
     the producing component and read (no longer cached) by the consuming
     one: 2·ceil(tokens/B) misses per batch — the O(T/B · bandwidth(P))
     term of Lemmas 4 and 8.

   The reload term binds only when the components actually evict each
   other: when the whole working set fits in the cache together, every
   region is loaded cold exactly once and stays resident, so in that
   regime the model charges one load instead of one per batch.

   Measured numbers come from the attribution counters: a component's
   misses are its members' state-entity misses plus its internal buffer
   entities' misses; a cross edge's are its buffer entity's misses. *)
let component_table t spec ~t:batch_t =
  let g = Machine.graph t.machine in
  let a = Rates.analyze_exn g in
  let n = Graph.num_nodes g in
  let cache = Machine.cache t.machine in
  let b = Cache.block_words cache in
  let blocks w = if w <= 0 then 0 else (w + b - 1) / b in
  let batches =
    if batch_t <= 0 then invalid_arg "Profile.component_table: t must be > 0";
    t.result.Runner.inputs / batch_t
  in
  let resident =
    (* The machine lays every region out contiguously from address 0, so
       the whole simulated footprint spans exactly this many blocks. *)
    blocks (Machine.address_space_words t.machine) <= Cache.num_blocks cache
  in
  let per_batch x = if resident then x else batches * x in
  let ncomp = Spec.num_components spec in
  let comp_measured = Array.make ncomp 0 in
  let comp_predicted_per_batch = Array.make ncomp 0 in
  for c = 0 to ncomp - 1 do
    List.iter
      (fun v ->
        comp_measured.(c) <-
          comp_measured.(c) + Counters.misses t.counters v;
        comp_predicted_per_batch.(c) <-
          comp_predicted_per_batch.(c) + blocks (Graph.state g v))
      (Spec.members spec c)
  done;
  List.iter
    (fun e ->
      let c = Spec.component_of spec (Graph.src g e) in
      comp_measured.(c) <-
        comp_measured.(c) + Counters.misses t.counters (n + e);
      comp_predicted_per_batch.(c) <-
        comp_predicted_per_batch.(c)
        + blocks (Machine.capacity t.machine e))
    (Spec.internal_edges spec);
  let components =
    List.init ncomp (fun c ->
        {
          label = Printf.sprintf "component %d" c;
          measured = comp_measured.(c);
          predicted = per_batch comp_predicted_per_batch.(c);
        })
  in
  let cross =
    List.map
      (fun e ->
        {
          label = Graph.edge_name g e;
          measured = Counters.misses t.counters (n + e);
          predicted =
            (if resident then blocks (Machine.capacity t.machine e)
             else 2 * batches * blocks (Rates.tokens_per_batch a ~t:batch_t e));
        })
      (Spec.cross_edges spec)
  in
  let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    components;
    cross;
    measured_total = sum (fun r -> r.measured) components + sum (fun r -> r.measured) cross;
    predicted_total =
      sum (fun r -> r.predicted) components + sum (fun r -> r.predicted) cross;
    batches;
  }

let pp_table fmt table =
  let line { label; measured; predicted } =
    let ratio =
      if predicted = 0 then Float.nan
      else float_of_int measured /. float_of_int predicted
    in
    Format.fprintf fmt "  %-24s measured=%-10d predicted=%-10d ratio=%.3f@,"
      label measured predicted ratio
  in
  Format.fprintf fmt "@[<v>per-component misses (%d batches):@," table.batches;
  List.iter line table.components;
  if table.cross <> [] then begin
    Format.fprintf fmt "cross edges:@,";
    List.iter line table.cross
  end;
  Format.fprintf fmt "total: measured=%d predicted=%d@]" table.measured_total
    table.predicted_total

(* --- trace export -------------------------------------------------------- *)

let chrome ?process_name t =
  match t.tracer with
  | None -> invalid_arg "Profile.chrome: profile ran without events"
  | Some tr ->
      let m = t.machine in
      let entities = Machine.num_entities m in
      let thread_names =
        List.init entities (fun i -> (i, Machine.entity_label m i))
      in
      let summary =
        [
          ("total_misses", t.result.Runner.misses);
          ("attributed_misses", attributed_misses t);
          ("total_accesses", t.result.Runner.accesses);
          ("attributed_accesses", attributed_accesses t);
          ("inputs", t.result.Runner.inputs);
          ("outputs", t.result.Runner.outputs);
        ]
      in
      Trace_export.chrome ?process_name ~thread_names ~summary
        ~label:(Machine.entity_label m)
        ~tid:(fun i -> i)
        tr

module Machine = Ccs_exec.Machine
module Cache = Ccs_cache.Cache

type result = {
  plan_name : string;
  inputs : int;
  outputs : int;
  misses : int;
  accesses : int;
  misses_per_input : float;
  buffer_words : int;
  address_space_words : int;
}

let result_of ~plan machine =
  {
    plan_name = plan.Plan.name;
    inputs = Machine.source_inputs machine;
    outputs = Machine.sink_outputs machine;
    misses = Machine.misses machine;
    accesses = Cache.accesses (Machine.cache machine);
    misses_per_input = Machine.misses_per_input machine;
    buffer_words = Plan.buffer_words plan;
    address_space_words = Machine.address_space_words machine;
  }

let run ?(record_trace = false) ?counters ?tracer ?metrics ~graph ~cache ~plan
    ~outputs () =
  let machine =
    Machine.create ~record_trace ?counters ?tracer ?metrics ~graph ~cache
      ~capacities:plan.Plan.capacities ()
  in
  plan.Plan.drive machine ~target_outputs:outputs;
  Machine.sync_metrics machine;
  (result_of ~plan machine, machine)

type latency = { max_inputs_behind : int; mean_inputs_behind : float }

let run_with_latency ~graph ~cache ~plan ~outputs () =
  let machine =
    Machine.create ~graph ~cache ~capacities:plan.Plan.capacities ()
  in
  let g = graph in
  let a = Ccs_sdf.Rates.analyze_exn g in
  let sink = Ccs_sdf.Graph.sink g in
  (* Inputs necessary for k sink firings: k / gain(sink), rounded up. *)
  let inv_gain = Ccs_sdf.Rational.inv a.Ccs_sdf.Rates.node_gain.(sink) in
  let max_behind = ref 0 in
  let sum_behind = ref 0 in
  let samples = ref 0 in
  Machine.set_fire_hook machine
    (Some
       (fun v ->
         if v = sink then begin
           let k = Machine.sink_outputs machine in
           let necessary =
             Ccs_sdf.Rational.ceil (Ccs_sdf.Rational.mul_int inv_gain k)
           in
           let behind = Machine.source_inputs machine - necessary in
           if behind > !max_behind then max_behind := behind;
           sum_behind := !sum_behind + max 0 behind;
           incr samples
         end));
  plan.Plan.drive machine ~target_outputs:outputs;
  let result = result_of ~plan machine in
  let latency =
    {
      max_inputs_behind = !max_behind;
      mean_inputs_behind =
        (if !samples = 0 then Float.nan
         else float_of_int !sum_behind /. float_of_int !samples);
    }
  in
  (result, latency)

let pp_result fmt r =
  Format.fprintf fmt
    "%-28s inputs=%-8d outputs=%-8d misses=%-10d misses/input=%.4f \
     buffers=%dw"
    r.plan_name r.inputs r.outputs r.misses r.misses_per_input r.buffer_words

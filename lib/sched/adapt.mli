(** Adaptive resilience: detect sustained cache degradation from live miss
    telemetry and respond by degrading gracefully, then repartitioning
    online.

    The paper's bounds (Lemmas 4 and 8) hold for the cache a plan was built
    for.  This module closes the loop when that assumption breaks at run
    time: it drives the machine epoch by epoch (like {!Supervisor}), and at
    every epoch boundary compares an EWMA of the {e measured}
    misses-per-input (read from the [ccs_cache_misses] series of an
    attached {!Ccs_obs.Metrics} registry, or from the machine directly)
    against the live plan's predicted Lemma-4/8 bound.  When the ratio
    exceeds a threshold for [patience] consecutive epochs, it climbs a
    two-rung ladder:

    + {b graceful degradation} — the next epoch runs the partition-free
      latest-first fallback schedule on the {e same} machine: no planning
      latency, no buffered state lost (the capacities are unchanged), at
      the price of cache-oblivious execution for one epoch;
    + {b online repartitioning} — [repartition_delay] epochs later the
      "background" replan completes: the planner is invoked for the
      estimated effective capacity, a post-mortem checkpoint is saved, a
      fresh machine is built for the new plan (under the environment's
      actual cache config) and execution state migrates onto it via
      {!Ccs_exec.Machine.migrate} — firing counts, channel contents and
      cumulative miss totals all carry over; only cache residency is
      forfeit.

    The effective capacity is {e estimated}, never read from the chaos
    plan: each sustained breach halves the assumption, converging to
    within 2x of the truth — inside the constant-factor augmentation the
    paper's results already tolerate.  With [probe_restore] the reverse
    ladder runs too: measured misses far {e below} the current bound for
    [patience] epochs probe one doubling back up.

    Adverse conditions themselves come from a {!Ccs_exec.Fault.env} chaos
    plan: cache shrinks/restores and associativity changes are imposed on
    the machine ({!Ccs_exec.Machine.resize_cache}), demand bursts multiply
    the epoch workload, and I/O-fault windows make checkpoint writes fail
    (they are counted and logged, and the run continues — fault
    containment, not fault amplification).  The whole loop is
    deterministic: same seed, same graph, same planner — bit-identical
    metrics. *)

type planned = { plan : Plan.t; predicted_mpi : float }
(** A plan together with its Lemma-4/8 predicted misses per input
    ({!Analysis.partition_cost_prediction}) — the yardstick degradation is
    measured against. *)

type planner = Ccs_cache.Cache.config -> planned
(** Invoked with the cache configuration to plan for.  Supplied by the
    caller (typically wrapping [Ccs.Auto.plan]) because the planning layer
    sits above this library. *)

type policy = {
  ewma_alpha : float;  (** EWMA smoothing for measured mpi (default 0.5). *)
  degrade_ratio : float;
      (** Breach threshold: measured EWMA over predicted bound
          (default 1.5). *)
  patience : int;  (** Consecutive breach epochs before acting (2). *)
  cooldown : int;  (** Detection-free epochs after an adaptation (2). *)
  repartition_delay : int;
      (** Epochs the background replan takes; the fallback covers them
          (1). *)
  max_adaptations : int;  (** Ladder-step budget per run (8). *)
  probe_restore : bool;
      (** Enable upward probing after sustained headroom (default off). *)
  restore_ratio : float;
      (** Headroom threshold for probing: EWMA below this fraction of the
          bound (0.25). *)
}

val default_policy : policy

type action = Degrade | Repartition | Probe_restore

val action_to_string : action -> string

type event = {
  at_epoch : int;
  action : action;
  from_plan : string;  (** {!Plan.id} of the plan being left. *)
  to_plan : string;  (** {!Plan.id} of the plan taking over. *)
  assumed_words : int;  (** Effective capacity assumed after the step. *)
}

type report = {
  result : Runner.result;
  epochs : int;  (** Epochs actually driven (bursts shorten the count). *)
  epoch_outputs : int;
  adaptations : event list;  (** In occurrence order. *)
  chaos_events : int;  (** Environment events applied to the machine. *)
  io_faults : int;  (** Checkpoint writes lost to fault windows. *)
  checkpoints_written : int;
  final_plan : Plan.t;
  final_predicted_mpi : float;
  assumed_cache_words : int;
}

val run :
  ?policy:policy ->
  ?env:Ccs_exec.Fault.env ->
  ?adapt:bool ->
  ?checkpoint_dir:string ->
  ?checkpoint_every:int ->
  ?epoch_outputs:int ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  ?log:Ccs_obs.Log.t ->
  ?prepare:(Ccs_exec.Machine.t -> unit) ->
  ?on_epoch:(epoch:int -> machine:Ccs_exec.Machine.t -> unit) ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  planner:planner ->
  outputs:int ->
  unit ->
  (report, Ccs_sdf.Error.t) result
(** Drive [outputs] sink firings under the chaos environment [env]
    (default none), adapting when [adapt] (default [true]).  With
    [adapt:false] the chaos is still applied but the initial plan runs to
    the end — the "stale plan" arm of the experiments.

    [cache] is the {e nominal} configuration: the initial machine uses it,
    the planner is first invoked with it, and chaos conditions are imposed
    relative to it.  [prepare] runs on every machine this loop creates —
    the initial one and every migration target — so fire hooks survive
    repartitioning.  [on_epoch] fires after each completed epoch.

    Checkpoints are written every [checkpoint_every] epochs (default 4)
    plus one before each migration, except during injected I/O-fault
    windows (counted in the report instead).  Log events: [run_start],
    [chaos], [burst], [adaptation], [checkpoint], [checkpoint_io_fault],
    [epoch], [run_end] — epochs and adaptations carry the live plan's
    {!Plan.id}.

    Errors surface structurally ([Deadlocked], [Budget_exhausted],
    checkpoint I/O, …); this loop does not retry — stacking retry on top
    belongs to {!Supervisor}. *)

val fallback_plan : Ccs_sdf.Graph.t -> capacities:int array -> Plan.t
(** The rung-1 conservative fallback: latest-first dynamic driving at the
    given capacities — legal on any machine whose plan passed
    {!Plan.validate} (it is the strategy {!Ccs_sdf.Minbuf} certifies), and
    exported for tests. *)

val pp_event : Format.formatter -> event -> unit
val pp_report : Format.formatter -> report -> unit

(** Run a plan on a simulated machine and collect its cost. *)

type result = {
  plan_name : string;
  inputs : int;  (** Source firings executed. *)
  outputs : int;  (** Sink firings executed. *)
  misses : int;
  accesses : int;
  misses_per_input : float;
  buffer_words : int;  (** Plan's total buffer footprint. *)
  address_space_words : int;  (** Whole simulated footprint. *)
}

val result_of : plan:Plan.t -> Ccs_exec.Machine.t -> result
(** Read the result a machine would report for [plan] {e right now} —
    shared by every driver that measures a machine (plain runs, the
    watchdog, the supervisor, the data-carrying engine). *)

val run :
  ?record_trace:bool ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  plan:Plan.t ->
  outputs:int ->
  unit ->
  result * Ccs_exec.Machine.t
(** Build a machine with the plan's capacities, drive it until the sink has
    fired at least [outputs] times, and return the measured result along
    with the machine (for inspecting the cache or trace).  [counters],
    [tracer] and [metrics] are handed to {!Ccs_exec.Machine.create} for
    per-entity miss attribution, event tracing and registry metrics (the
    cache gauges are synced once the drive completes); see also
    {!Profile.run}. *)

val pp_result : Format.formatter -> result -> unit

type latency = {
  max_inputs_behind : int;
      (** Max over sink firings of (inputs consumed so far − inputs
          {e necessary} for that many outputs): the buffered backlog, in
          input tokens — a direct latency measure in the streaming sense.
          Minimal-memory schedules keep it near the pipeline depth; batch
          schedules hold whole batches, so it grows with [T] times the
          component count. *)
  mean_inputs_behind : float;
}

val run_with_latency :
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  plan:Plan.t ->
  outputs:int ->
  unit ->
  result * latency
(** Like {!run}, additionally tracking the input-to-output backlog at every
    sink firing (via the machine's fire hook, so it works for dynamic
    plans too). *)

(** Deadlock/starvation watchdog around plan execution.

    A malformed plan can wedge the machine (a channel whose capacity admits
    neither a push nor a pop), and a buggy dynamic driver can spin without
    ever firing the sink.  Bare drivers surface these as raised exceptions
    or, worse, as an infinite loop.  This module drives any plan under a
    firing budget and converts every way execution can stall into a
    structured diagnostic carrying a {!Ccs_sdf.Error.snapshot}: per-channel
    occupancy and every blocked module's reason, so the defect can be read
    off the report. *)

val default_budget :
  Ccs_sdf.Graph.t -> cache_words:int -> outputs:int -> int
(** The budget {!run} uses when none is given: a generous multiple of the
    firings a correct plan needs for [outputs] sink firings (covering whole
    batches of [T >= cache_words] source firings), or a node-count-based
    fallback when rate analysis fails.  The arithmetic saturates at
    [max_int], so extreme [cache_words]/[outputs] yield a huge positive
    budget rather than overflowing to a negative one. *)

val drive :
  ?budget:int ->
  ?metrics:Ccs_obs.Metrics.t ->
  Ccs_exec.Machine.t ->
  plan:Plan.t ->
  outputs:int ->
  (unit, Ccs_sdf.Error.t) result
(** Drive an existing machine to [outputs] sink firings under a budget of
    at most [budget] further firings.  Errors:
    - [Deadlocked] — a firing was attempted on a blocked module, or a
      dynamic driver found no schedulable component;
    - [Budget_exhausted] — the budget ran out before the target was met
      (livelock, or a driver making no sink progress);
    - [Plan_invalid] — the driver rejected its own plan (e.g. a period that
      never fires the sink).

    The machine's budget is cleared before returning, and the snapshot in
    every error reflects the machine at the moment it stalled.

    With [metrics], each drive bumps [ccs_watchdog_drives_total] (and
    [ccs_watchdog_trips_total] on error) and records the unused firing
    budget in the [ccs_watchdog_budget_headroom] gauge. *)

val run :
  ?budget:int ->
  ?record_trace:bool ->
  ?metrics:Ccs_obs.Metrics.t ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  plan:Plan.t ->
  outputs:int ->
  unit ->
  (Runner.result * Ccs_exec.Machine.t, Ccs_sdf.Error.t) result
(** {!Runner.run} with the watchdog attached: builds the machine (machine
    construction failures — e.g. capacity below rate — come back as
    structured errors rather than exceptions), {!drive}s it, and reports
    the usual miss statistics on success. *)

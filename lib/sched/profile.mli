(** Attributed profiling runs: where do the misses go?

    Runs a plan with the {!Ccs_obs} observers attached, so every cache miss
    is charged to the module state or channel buffer that incurred it, and
    (optionally) every fire/load/evict/stall becomes a trace event on a
    logical clock that ticks once per simulated cache access.

    The per-component table checks the paper's decomposition (Lemmas 4
    and 8) against the simulator: a batch schedule's misses split into each
    component reloading its working set once per batch plus every cross
    edge paying its bandwidth twice per batch (written by the producer,
    read by the consumer). *)

type t = {
  result : Runner.result;
  machine : Ccs_exec.Machine.t;
  counters : Ccs_obs.Counters.t;
  tracer : Ccs_obs.Tracer.t option;
}

val run :
  ?events:bool ->
  ?event_limit:int ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  plan:Plan.t ->
  outputs:int ->
  unit ->
  t
(** Like {!Runner.run} with attribution counters always attached; with
    [events] (default [false]) an event tracer too, keeping at most
    [event_limit] events (default 1M; later events are counted but
    dropped). *)

val per_entity : t -> (string * int * int) list
(** [(label, accesses, misses)] for every entity that was touched at least
    once, heaviest misses first (see
    {!Ccs_obs.Trace_export.entity_summary}). *)

val attributed_misses : t -> int
(** Sum of per-entity misses — always equals [t.result.misses]. *)

val attributed_accesses : t -> int

type row = {
  label : string;
  measured : int;  (** Misses attributed to this row's entities. *)
  predicted : int;  (** The model's charge (see {!component_table}). *)
}

type table = {
  components : row list;  (** One per component of the partition. *)
  cross : row list;  (** One per cross edge. *)
  measured_total : int;
  predicted_total : int;
  batches : int;  (** Whole batches executed, [inputs / t]. *)
}

val component_table : t -> Ccs_partition.Spec.t -> t:int -> table
(** Predicted vs measured miss decomposition for a batch-[t] partitioned
    run: component [c] is predicted [batches · Σ ceil(words/B)] over its
    module states and internal buffers (one cold reload per batch), a
    cross edge [2 · batches · ceil(tokens_per_batch/B)] (producer writes,
    consumer reads).  Measured numbers are the attribution counters
    aggregated the same way.
    @raise Invalid_argument if [t <= 0]. *)

val pp_table : Format.formatter -> table -> unit

val chrome : ?process_name:string -> t -> string
(** The run's events as Chrome [trace_event] JSON (load into Perfetto or
    [chrome://tracing]); one thread per entity, logical-clock timestamps.
    The top-level ["ccs"] object carries summary counters, including
    [total_misses] and [attributed_misses].
    @raise Invalid_argument if the profile ran without [events]. *)

module Graph = Ccs_sdf.Graph

exception Illegal of {
  node : Graph.node;
  edge : Graph.edge;
  at_firing : int;
}

let replay g sched ~on_fire =
  let tokens = Array.init (Graph.num_edges g) (fun e -> Graph.delay g e) in
  let count = ref 0 in
  Schedule.iter sched ~f:(fun v ->
      List.iter
        (fun e ->
          tokens.(e) <- tokens.(e) - Graph.pop g e;
          if tokens.(e) < 0 then
            raise (Illegal { node = v; edge = e; at_firing = !count }))
        (Graph.in_edges g v);
      List.iter
        (fun e -> tokens.(e) <- tokens.(e) + Graph.push g e)
        (Graph.out_edges g v);
      on_fire tokens;
      incr count);
  tokens

let peaks g sched =
  let peak = Array.init (Graph.num_edges g) (fun e -> Graph.delay g e) in
  let _ =
    replay g sched ~on_fire:(fun tokens ->
        Array.iteri (fun e t -> if t > peak.(e) then peak.(e) <- t) tokens)
  in
  peak

let final_tokens g sched = replay g sched ~on_fire:(fun _ -> ())

let is_periodic g sched =
  match final_tokens g sched with
  | final ->
      let ok = ref true in
      Array.iteri (fun e t -> if t <> Graph.delay g e then ok := false) final;
      !ok
  | exception Illegal _ -> false

let validate g ~capacities sched =
  let module E = Ccs_sdf.Error in
  let tokens = Array.init (Graph.num_edges g) (fun e -> Graph.delay g e) in
  let count = ref 0 in
  let err = ref None in
  let report v e kind =
    if !err = None then
      err :=
        Some
          (E.Schedule_illegal
             {
               node = Graph.node_name g v;
               edge = Graph.edge_name g e;
               at_firing = !count;
               kind;
             })
  in
  Schedule.iter sched ~f:(fun v ->
      if !err = None then begin
        List.iter
          (fun e ->
            tokens.(e) <- tokens.(e) - Graph.pop g e;
            if tokens.(e) < 0 then report v e `Underflow)
          (Graph.in_edges g v);
        List.iter
          (fun e ->
            tokens.(e) <- tokens.(e) + Graph.push g e;
            if tokens.(e) > capacities.(e) then report v e `Overflow)
          (Graph.out_edges g v);
        incr count
      end);
  match !err with Some e -> Result.error e | None -> Ok ()

let legal g ~capacities sched =
  match
    let _ =
      replay g sched ~on_fire:(fun tokens ->
          Array.iteri
            (fun e t -> if t > capacities.(e) then raise Exit)
            tokens)
    in
    ()
  with
  | () -> true
  | exception Exit -> false
  | exception Illegal _ -> false

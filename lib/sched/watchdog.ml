module Graph = Ccs_sdf.Graph
module E = Ccs_sdf.Error
module Machine = Ccs_exec.Machine
module Metrics = Ccs_obs.Metrics

(* Saturating arithmetic for the budget formula: with huge cache sizes or
   output targets the products below overflow 63-bit ints and wrap to a
   *negative* budget, which would make the very first firing "exceed" it.
   Saturating at max_int keeps the budget semantics (an upper bound that a
   legitimate run never reaches). *)
let sat_add a b =
  let s = a + b in
  if a > 0 && b > 0 && s < 0 then max_int else s

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then max_int else p

(* A firing budget comfortably above any legitimate run: batch plans execute
   whole batches of T >= M source firings even for one output, so cover the
   target plus two batches' worth of periods, times a safety factor. *)
let default_budget g ~cache_words ~outputs =
  match Ccs_sdf.Rates.analyze_checked g with
  | Ok a ->
      let total_rep = Array.fold_left ( + ) 0 a.Ccs_sdf.Rates.repetition in
      let per_period = max 1 a.Ccs_sdf.Rates.period_inputs in
      let sink_rep =
        match Graph.sinks g with
        | [ s ] -> max 1 a.Ccs_sdf.Rates.repetition.(s)
        | _ -> 1
      in
      let periods_for_target = sat_add outputs (sink_rep - 1) / sink_rep in
      let periods_per_batch =
        sat_add (sat_mul 2 cache_words) (per_period - 1) / per_period
      in
      sat_add 1024
        (sat_mul 8
           (sat_mul total_rep
              (sat_add periods_for_target (sat_mul 2 periods_per_batch))))
  | Error _ ->
      sat_add 1024
        (sat_mul 64 (sat_mul (sat_add outputs 1) (Graph.num_nodes g)))

let drive ?budget ?metrics machine ~plan ~outputs =
  let g = Machine.graph machine in
  let plan_name = plan.Plan.name in
  let fires_before = Machine.total_fires machine in
  let budget =
    match budget with
    | Some b -> b
    | None ->
        let cache_words =
          Ccs_cache.Cache.size_words (Machine.cache machine)
        in
        default_budget g ~cache_words ~outputs
  in
  Machine.set_fire_budget machine (Some (Machine.total_fires machine + budget));
  let result =
    match plan.Plan.drive machine ~target_outputs:outputs with
    | () ->
        if Machine.sink_outputs machine >= outputs then Ok ()
        else
          (* A driver that returns early is as wedged as one that loops. *)
          Result.error
            (E.Deadlocked
               {
                 plan = plan_name;
                 detail =
                   Printf.sprintf
                     "driver returned with %d of %d target outputs"
                     (Machine.sink_outputs machine) outputs;
                 snapshot = Machine.snapshot machine;
               })
    | exception Machine.Not_fireable { node; reason } ->
        Result.error
          (E.Deadlocked
             {
               plan = plan_name;
               detail =
                 Printf.sprintf "module %s cannot fire (%s)"
                   (Graph.node_name g node) reason;
               snapshot = Machine.snapshot machine;
             })
    | exception Machine.Budget_exceeded { budget } ->
        Result.error
          (E.Budget_exhausted
             { plan = plan_name; budget; snapshot = Machine.snapshot machine })
    | exception Graph.Invalid_graph msg ->
        (* Dynamic drivers report scheduling dead ends this way. *)
        Result.error
          (E.Deadlocked
             {
               plan = plan_name;
               detail = msg;
               snapshot = Machine.snapshot machine;
             })
    | exception Invalid_argument msg ->
        Result.error (E.Plan_invalid { plan = plan_name; reason = msg })
    | exception E.Error e -> Result.error e
  in
  Machine.set_fire_budget machine None;
  (match metrics with
  | None -> ()
  | Some reg ->
      Metrics.inc
        (Metrics.counter reg ~help:"Watchdog-supervised drives started"
           "ccs_watchdog_drives_total");
      (match result with
      | Ok () -> ()
      | Error _ ->
          Metrics.inc
            (Metrics.counter reg
               ~help:"Drives that ended in a structured stall diagnostic"
               "ccs_watchdog_trips_total"));
      (* How much of the firing budget the drive left unused — a collapsing
         headroom flags a plan drifting towards its livelock bound. *)
      Metrics.set
        (Metrics.gauge reg
           ~help:"Unused firing budget at the end of the last drive"
           "ccs_watchdog_budget_headroom")
        (budget - (Machine.total_fires machine - fires_before)));
  result

let run ?budget ?record_trace ?metrics ~graph ~cache ~plan ~outputs () =
  match
    E.protect (fun () ->
        Ccs_exec.Machine.create ?record_trace ?metrics ~graph ~cache
          ~capacities:plan.Plan.capacities ())
  with
  | Error e -> Result.error e
  | Ok machine -> (
      match drive ?budget ?metrics machine ~plan ~outputs with
      | Error e -> Result.error e
      | Ok () ->
          Machine.sync_metrics machine;
          Ok (Runner.result_of ~plan machine, machine))

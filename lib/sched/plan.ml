type driver = Ccs_exec.Machine.t -> target_outputs:int -> unit

type t = {
  name : string;
  capacities : int array;
  period : Schedule.t option;
  drive : driver;
}

let of_period ~name ~capacities period =
  let drive machine ~target_outputs =
    let rec go () =
      if Ccs_exec.Machine.sink_outputs machine < target_outputs then begin
        Schedule.run machine period;
        go ()
      end
    in
    (* Guard against periods that never fire the sink. *)
    let before = Ccs_exec.Machine.sink_outputs machine in
    if target_outputs > before then begin
      Schedule.run machine period;
      if Ccs_exec.Machine.sink_outputs machine = before then
        invalid_arg
          (Printf.sprintf "Plan %s: period does not fire the sink" name);
      go ()
    end
  in
  { name; capacities; period = Some period; drive }

let dynamic ~name ~capacities drive = { name; capacities; period = None; drive }

let buffer_words t = Array.fold_left ( + ) 0 t.capacities

(* Plan identity for post-mortems: a short digest over everything that
   determines the plan's behavior except the driver closure — name,
   capacity vector, and (for static plans) the period's firing sequence.
   Two adaptations of the same scheduler at different cache sizes thus get
   distinct ids, while re-building the identical plan reproduces the id. *)
let id t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf t.name;
  Buffer.add_char buf '|';
  Array.iter
    (fun c ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf ',')
    t.capacities;
  (match t.period with
  | None -> Buffer.add_string buf "|dynamic"
  | Some p ->
      Buffer.add_char buf '|';
      Schedule.iter p ~f:(fun v ->
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf ';'));
  let hex = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  Printf.sprintf "%s-%s" t.name (String.sub hex 0 12)

let layout g ~cache t =
  Ccs_exec.Machine.plan_layout ~graph:g ~cache ~capacities:t.capacities ()

let validate ?cache ?spec g t =
  let module E = Ccs_sdf.Error in
  let module Graph = Ccs_sdf.Graph in
  let errs = ref [] in
  let add e = errs := e :: !errs in
  let invalid reason = add (E.Plan_invalid { plan = t.name; reason }) in
  (* Capacity preconditions: every channel must admit both one push and one
     pop, or the machine (and any real runtime) wedges on that channel. *)
  let caps_ok = ref true in
  (if Array.length t.capacities <> Graph.num_edges g then begin
     caps_ok := false;
     invalid
       (Printf.sprintf "%d capacities for %d channels"
          (Array.length t.capacities) (Graph.num_edges g))
   end
   else
     List.iter
       (fun e ->
         let required = max (Graph.push g e) (Graph.pop g e) in
         if t.capacities.(e) < required then begin
           caps_ok := false;
           add
             (E.Capacity_below_rate
                {
                  edge = e;
                  src = Graph.node_name g (Graph.src g e);
                  dst = Graph.node_name g (Graph.dst g e);
                  capacity = t.capacities.(e);
                  required;
                })
         end)
       (Graph.edges g));
  let analysis =
    match Ccs_sdf.Rates.analyze_checked g with
    | Ok a -> Some a
    | Error e ->
        add e;
        None
  in
  (* Feasibility: some periodic schedule must exist under these capacities
     (minBuf is the tight per-channel floor; a capacity vector can clear
     every per-channel bound and still be jointly infeasible). *)
  (match analysis with
  | Some a when !caps_ok ->
      if not (Ccs_sdf.Minbuf.feasible g a ~capacities:t.capacities) then
        add
          (E.Capacity_infeasible
             {
               reason =
                 Printf.sprintf
                   "plan %s: latest-first simulation cannot complete a \
                    period within the given capacities"
                   t.name;
             })
  | _ -> ());
  (* Cache fit of the largest component, when the caller says which
     partition and cache the plan was built for. *)
  (match (spec, cache) with
  | Some spec, Some cache ->
      let cache_words = cache.Ccs_cache.Cache.size_words in
      for c = 0 to Ccs_partition.Spec.num_components spec - 1 do
        let state = Ccs_partition.Spec.component_state spec c in
        if state > cache_words then
          add (E.Cache_overflow { component = c; state; cache_words })
      done
  | _ -> ());
  (* Static plans: certify the period itself. *)
  (match t.period with
  | None -> ()
  | Some period -> (
      (match Simulate.validate g ~capacities:t.capacities period with
      | Ok () ->
          if not (Simulate.is_periodic g period) then
            invalid "period does not restore channel state"
      | Error e -> add e);
      match analysis with
      | None -> ()
      | Some a -> (
          let counts =
            Schedule.fire_counts ~num_nodes:(Graph.num_nodes g) period
          in
          match Graph.sinks g with
          | [ sink ] when counts.(sink) = 0 ->
              invalid "period never fires the sink"
          | _ ->
              let rep = a.Ccs_sdf.Rates.repetition in
              let ratio_num = counts.(0) and ratio_den = rep.(0) in
              let ok = ref (counts.(0) mod rep.(0) = 0) in
              Array.iteri
                (fun v c ->
                  if c * ratio_den <> rep.(v) * ratio_num then ok := false)
                counts;
              if not !ok then
                invalid
                  "firing counts are not a multiple of the repetition vector")));
  match List.rev !errs with [] -> Ok () | errs -> Result.error errs

(** Cache-free token simulation of firing sequences.

    Schedulers need to know how much buffering a candidate schedule uses
    {e before} committing to capacities; this module replays a schedule on
    token counters only (no cache, no addresses) and reports per-channel
    peak occupancy, or rejects the schedule as illegal. *)

exception Illegal of {
  node : Ccs_sdf.Graph.node;
  edge : Ccs_sdf.Graph.edge;
  at_firing : int;
}
(** The [at_firing]-th firing tried to consume more tokens than channel
    [edge] held. *)

val peaks : Ccs_sdf.Graph.t -> Schedule.t -> int array
(** [peaks g sched] replays [sched] from the initial token state (channel
    delays) with unbounded buffers and returns each channel's maximum
    occupancy.  A channel that is never written still reports its delay.
    @raise Illegal if the schedule underflows a channel. *)

val final_tokens : Ccs_sdf.Graph.t -> Schedule.t -> int array
(** Token counts on every channel after the schedule completes.
    @raise Illegal as for {!peaks}. *)

val is_periodic : Ccs_sdf.Graph.t -> Schedule.t -> bool
(** Whether the schedule returns every channel to its initial occupancy —
    i.e. it can be repeated indefinitely with bounded buffers. *)

val legal : Ccs_sdf.Graph.t -> capacities:int array -> Schedule.t -> bool
(** Whether the schedule respects both token availability and the given
    capacities throughout. *)

val validate :
  Ccs_sdf.Graph.t ->
  capacities:int array ->
  Schedule.t ->
  (unit, Ccs_sdf.Error.t) result
(** Like {!legal} but with a witness: the first firing that underflows a
    channel (consumes tokens it does not have) or overflows one (exceeds
    its capacity), as [Error.Schedule_illegal] naming the module, the
    channel and the firing index. *)

(** Schedulers: the paper's partitioned schedulers, the related-work
    baselines, analytic bounds, and the plan runner. *)

module Schedule = Schedule
module Plan = Plan
module Simulate = Simulate
module Baseline = Baseline
module Scaling = Scaling
module Kohli = Kohli
module Partitioned = Partitioned
module Analysis = Analysis
module Runner = Runner
module Watchdog = Watchdog
module Supervisor = Supervisor
module Adapt = Adapt
module Profile = Profile

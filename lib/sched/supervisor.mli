(** Crash-safe supervised execution of a plan.

    The supervisor drives any {!Plan.t} in {e epochs} — batch-aligned
    output quanta (one schedule period's worth of sink firings by default)
    — and checkpoints the complete machine state every [checkpoint_every]
    epochs through {!Ccs_exec.Checkpoint}.  Structured faults raised
    during an epoch ({!Ccs_sdf.Error.Fault}, deadlocks, budget
    exhaustion) are caught; the machine is rolled back to the last
    checkpoint (or a pristine machine) and the epoch is retried under an
    exponential {e logical-time} backoff.  A site that faults
    deterministically — same site, same firing index, twice in a row — or
    exhausts [max_retries] is {e quarantined}: the run stops with
    {!Ccs_sdf.Error.Quarantined} carrying the site, firing index, attempt
    count and the path of the last good checkpoint.

    Determinism invariant (tested by a QCheck property over random graphs
    and kill points): a run killed at any epoch and resumed with
    [~resume:true] reports exactly the same miss counts, per-entity
    attribution and sink outputs as an uninterrupted supervised run with
    the same parameters.  Epoch targets are a pure function of
    [(outputs, epoch_outputs)], so the resumed run replays the identical
    firing sequence. *)

type config = {
  checkpoint_every : int;  (** Epochs between checkpoints (default 4). *)
  max_retries : int;  (** Faults tolerated before quarantine (default 4). *)
  backoff_base : int;
      (** Logical delay unit; retry [k] adds [backoff_base * 2^(k-1)]
          (default 1). *)
  keep : int;  (** Checkpoint files retained on disk (default 2). *)
}

val default_config : config

type report = {
  result : Runner.result;
  epochs : int;  (** Epochs the full run spans. *)
  epoch_outputs : int;  (** Sink outputs per epoch. *)
  checkpoints_written : int;
  resumed_from : int option;  (** Epoch restored on [~resume:true]. *)
  retries : int;  (** Faulted epochs re-executed. *)
  logical_delay : int;  (** Total backoff charged, in logical units. *)
}

val run :
  ?config:config ->
  ?checkpoint_dir:string ->
  ?resume:bool ->
  ?epoch_outputs:int ->
  ?counters:Ccs_obs.Counters.t ->
  ?tracer:Ccs_obs.Tracer.t ->
  ?metrics:Ccs_obs.Metrics.t ->
  ?log:Ccs_obs.Log.t ->
  ?prepare:(Ccs_exec.Machine.t -> unit) ->
  ?on_epoch:(epoch:int -> machine:Ccs_exec.Machine.t -> unit) ->
  graph:Ccs_sdf.Graph.t ->
  cache:Ccs_cache.Cache.config ->
  plan:Plan.t ->
  outputs:int ->
  unit ->
  (report, Ccs_sdf.Error.t) result
(** Drive [plan] to [outputs] sink firings under supervision.

    [checkpoint_dir] enables checkpointing (the directory is created if
    missing; the newest [config.keep] files are retained).  [resume]
    restores the latest checkpoint in [checkpoint_dir] before running —
    rejecting it with [Checkpoint_mismatch] if it belongs to a different
    graph, cache configuration, capacity vector or plan — and is a no-op
    when the directory has no checkpoints.  [prepare] runs on every fresh
    machine (initial, and after each rollback) — the place to install fire
    hooks such as fault injection.  [on_epoch] fires after each completed
    epoch, {e after} any checkpoint write, so killing the process inside it
    simulates a crash with the epoch's checkpoint already durable.

    [metrics] registers the supervisor's series in the given registry:
    [ccs_supervisor_epochs_total], the [ccs_supervisor_epoch_ticks]
    histogram of each epoch's logical duration (cache accesses),
    [ccs_supervisor_retries_total] / [_rollbacks_total] /
    [_quarantines_total], and [ccs_supervisor_backoff_ticks_total].  The
    registry is also threaded to the machine ({!Ccs_exec.Machine.create}),
    the watchdog and checkpoint I/O, and the machine's cache gauges are
    synced at every epoch boundary.  [log] receives one structured event
    per lifecycle step: [run_start], [resume], [epoch], [checkpoint],
    [retry], [rollback], [quarantine], [run_end].  Neither changes the
    firing sequence: a run with telemetry attached reports bit-identical
    miss counts.

    Errors: [Quarantined] (fault containment gave up), checkpoint errors
    on resume, or any machine-construction error.
    @raise Invalid_argument on non-positive [checkpoint_every], [keep] or
    [epoch_outputs], or negative [max_retries]. *)

val default_epoch_outputs : graph:Ccs_sdf.Graph.t -> plan:Plan.t -> int
(** The epoch quantum [run] uses when [epoch_outputs] is omitted: sink
    firings per schedule period for static plans, the sink's repetition
    count otherwise, and [1] as a last resort. *)

val epoch_target : outputs:int -> epoch_outputs:int -> int -> int
(** The cumulative sink target of 0-based epoch [i] — exposed so tests and
    reference runs can replay the exact epoch sequence. *)

val num_epochs : outputs:int -> epoch_outputs:int -> int

val latest_checkpoint : string -> (int * string) option
(** The newest [(epoch, path)] checkpoint in a directory, if any. *)

val ckpt_name : int -> string
(** The canonical checkpoint file name for an epoch
    (["ckpt-%09d.ccsckpt"]) — shared with {!Adapt} so adaptive runs
    produce resumable checkpoints under the same naming scheme. *)

val pp_report : Format.formatter -> report -> unit

(** Levelled structured logging as JSON lines.

    Each event is one self-contained JSON object on its own line:
    [{"seq":N,"lvl":"info","ev":"epoch", ...fields}] — machine-parseable
    (every line is valid JSON on its own, so a truncated file loses at
    most its last line) and cheap: below the threshold a call is a single
    integer comparison; above it, one buffer is built and handed to the
    sink.  There is no wall-clock timestamp by default — the simulators
    are deterministic and log logical quantities (epochs, ticks, firing
    counts); callers that want real time can add it as a field. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

type t

val make : ?level:level -> (string -> unit) -> t
(** [make sink] routes each rendered line (without trailing newline) to
    [sink].  Default threshold: [Info]. *)

val to_channel : ?level:level -> out_channel -> t
(** Flushes the channel after every line, so each event is durable the
    moment it is emitted — channel loggers back long-running processes
    that may be killed by a signal at any point. *)

val to_buffer : ?level:level -> Buffer.t -> t

val null : t
(** Drops everything below [Error] and sends the rest nowhere — a
    convenient default for optional [?log] parameters. *)

val set_level : t -> level -> unit
val level : t -> level
val enabled : t -> level -> bool

val lines : t -> int
(** Events emitted so far (the next event's [seq]). *)

val log : t -> level -> string -> (string * Json.value) list -> unit
(** [log t lvl event fields] emits one line if [lvl] passes the
    threshold.  [event] names the event kind; [fields] are appended as
    JSON members after [seq]/[lvl]/[ev]. *)

val debug : t -> string -> (string * Json.value) list -> unit
val info : t -> string -> (string * Json.value) list -> unit
val warn : t -> string -> (string * Json.value) list -> unit
val error : t -> string -> (string * Json.value) list -> unit

(** Levelled structured logging as JSON lines.

    Each event is one self-contained JSON object on its own line:
    [{"seq":N,"lvl":"info","ev":"epoch", ...fields}] — machine-parseable
    (every line is valid JSON on its own, so a truncated file loses at
    most its last line) and cheap: below the threshold a call is a single
    integer comparison; above it, one buffer is built and handed to the
    sink.  There is no wall-clock timestamp by default — the simulators
    are deterministic and log logical quantities (epochs, ticks, firing
    counts); callers that want real time opt in with [?now] (the daemon
    passes [Ccs.Clock.now_us]), which adds a ["ts_us"] member so log
    lines correlate with {!Span} timelines. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

type t

val make : ?level:level -> ?now:(unit -> int) -> (string -> unit) -> t
(** [make sink] routes each rendered line (without trailing newline) to
    [sink].  Default threshold: [Info].  When [now] is supplied each
    line carries a ["ts_us"] member with its value; the default (no
    clock) keeps output byte-deterministic. *)

val to_channel : ?level:level -> ?now:(unit -> int) -> out_channel -> t
(** Flushes the channel after every line, so each event is durable the
    moment it is emitted — channel loggers back long-running processes
    that may be killed by a signal at any point. *)

val to_buffer : ?level:level -> ?now:(unit -> int) -> Buffer.t -> t

val null : t
(** Drops everything below [Error] and sends the rest nowhere — a
    convenient default for optional [?log] parameters. *)

val tee : t -> (string -> unit) -> t
(** [tee t extra] is a new logger with [t]'s threshold, clock and sink
    that additionally hands every rendered line to [extra] — used to
    mirror log lines into the flight recorder ring.  The copy starts
    from [t]'s current [seq] and the two do not share mutable state, so
    wrap once at process start. *)

val with_timestamps : t -> (unit -> int) -> t
(** [with_timestamps t now] is [t] with the opt-in clock enabled. *)

val set_level : t -> level -> unit
val level : t -> level
val enabled : t -> level -> bool

val lines : t -> int
(** Events emitted so far (the next event's [seq]). *)

val log : t -> level -> string -> (string * Json.value) list -> unit
(** [log t lvl event fields] emits one line if [lvl] passes the
    threshold.  [event] names the event kind; [fields] are appended as
    JSON members after [seq]/[lvl]/[ev]. *)

val debug : t -> string -> (string * Json.value) list -> unit
val info : t -> string -> (string * Json.value) list -> unit
val warn : t -> string -> (string * Json.value) list -> unit
val error : t -> string -> (string * Json.value) list -> unit

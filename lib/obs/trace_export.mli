(** Trace and attribution writers.

    {!chrome} serializes a {!Tracer} log as Chrome [trace_event] JSON (the
    object form, ["traceEvents"] plus extra top-level keys), directly
    loadable in Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing].  Logical timestamps are written as microseconds:
    one simulated cache access = 1us of trace time.

    {!entity_summary} renders per-entity counters as rows for a compact
    text table.  Both are dependency-free (the JSON emitter is local). *)

val chrome :
  ?process_name:string ->
  ?thread_names:(int * string) list ->
  ?summary:(string * int) list ->
  label:(int -> string) ->
  tid:(int -> int) ->
  Tracer.t ->
  string
(** [chrome ~label ~tid tracer] is the complete JSON document.  [label]
    maps an event's entity/node id to a display name and [tid] to a track
    (thread) id — e.g. its partition component.  [thread_names] attaches
    Chrome [thread_name] metadata to tracks; [summary] key/value pairs are
    emitted under a top-level ["ccs"] object (the attribution-sum check in
    CI reads ["total_misses"]/["attributed_misses"] from there). *)

val chrome_spans :
  ?process_name:string -> (string * Span.span list) list -> string
(** [chrome_spans sources] serializes request-stage span lists (one
    [(label, spans)] pair per worker or flight-dump file) as a Chrome
    trace_event document: each source gets its own track named [label],
    each span becomes a complete ["X"] event at its real microsecond
    timestamps with [trace_id]/[span_id]/[parent] in [args]. *)

val write : path:string -> string -> unit
(** Write a serialized document to [path] (plus a trailing newline),
    atomically: the document is written to [path ^ ".tmp"] and renamed
    into place, so a crash mid-write never leaves a truncated file at
    [path]. *)

val entity_summary :
  Counters.t -> label:(int -> string) -> (string * int * int) list
(** [(label, accesses, misses)] for every entity with at least one access,
    sorted by misses (then accesses) descending. *)

type t = { accesses : int array; misses : int array }

let create ~entities =
  if entities < 0 then invalid_arg "Counters.create: entities must be >= 0";
  { accesses = Array.make entities 0; misses = Array.make entities 0 }

let entities t = Array.length t.accesses

let record t i ~hit =
  t.accesses.(i) <- t.accesses.(i) + 1;
  if not hit then t.misses.(i) <- t.misses.(i) + 1

let accesses t i = t.accesses.(i)
let misses t i = t.misses.(i)
let total_accesses t = Array.fold_left ( + ) 0 t.accesses
let total_misses t = Array.fold_left ( + ) 0 t.misses

let reset t =
  Array.fill t.accesses 0 (Array.length t.accesses) 0;
  Array.fill t.misses 0 (Array.length t.misses) 0

let dump t = (Array.copy t.accesses, Array.copy t.misses)

let load t ~accesses ~misses =
  if
    Array.length accesses <> Array.length t.accesses
    || Array.length misses <> Array.length t.misses
  then
    invalid_arg
      (Printf.sprintf "Counters.load: %d/%d entries for %d entities"
         (Array.length accesses) (Array.length misses)
         (Array.length t.accesses));
  Array.blit accesses 0 t.accesses 0 (Array.length accesses);
  Array.blit misses 0 t.misses 0 (Array.length misses)

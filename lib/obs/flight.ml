module Binio = Ccs_sdf.Binio
module E = Ccs_sdf.Error

let magic = "CCSFLGT1"
let version = 1

type t = {
  spans : Span.t;
  logs : string array;
  log_cap : int;
  mutable log_total : int;
  mutable dumps : int;
}

let create ?(span_capacity = 256) ?(log_capacity = 128) () =
  let log_cap = max 1 log_capacity in
  {
    spans = Span.create ~capacity:span_capacity ();
    logs = Array.make log_cap "";
    log_cap;
    log_total = 0;
    dumps = 0;
  }

let spans t = t.spans

let note_log t line =
  t.logs.(t.log_total mod t.log_cap) <- line;
  t.log_total <- t.log_total + 1

let recent_logs t =
  let n = min t.log_total t.log_cap in
  let first = t.log_total - n in
  List.init n (fun i -> t.logs.((first + i) mod t.log_cap))

let dumps t = t.dumps

type dump = {
  trigger : string;
  pid : int;
  at_us : int;
  seq : int;
  dropped_spans : int;
  spans : Span.span list;
  logs : string list;
}

let snapshot t ~trigger ~pid ~at_us =
  let seq = t.dumps in
  t.dumps <- seq + 1;
  {
    trigger;
    pid;
    at_us;
    seq;
    dropped_spans = Span.dropped t.spans;
    spans = Span.to_list t.spans;
    logs = recent_logs t;
  }

let encode (d : dump) =
  let w = Binio.W.create () in
  Binio.W.string w d.trigger;
  Binio.W.int w d.pid;
  Binio.W.int w d.at_us;
  Binio.W.int w d.seq;
  Binio.W.int w d.dropped_spans;
  Binio.W.int w (List.length d.spans);
  List.iter
    (fun (s : Span.span) ->
      Binio.W.string w s.trace_id;
      Binio.W.int w s.span_id;
      Binio.W.int w s.parent;
      Binio.W.string w s.stage;
      Binio.W.int w s.start_us;
      Binio.W.int w s.end_us)
    d.spans;
  Binio.W.int w (List.length d.logs);
  List.iter (fun l -> Binio.W.string w l) d.logs;
  Binio.W.contents w

let write ~path d = Binio.write_file ~path ~magic ~version (encode d)

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()

let dump t ~dir ~trigger ~pid ~at_us =
  ensure_dir dir;
  (* One file per (worker, trigger), newest wins: a graceful-shutdown
     dump can never clobber the deadline-exceeded evidence. *)
  let path =
    Filename.concat dir (Printf.sprintf "worker-%d-%s.ccsflight" pid trigger)
  in
  write ~path (snapshot t ~trigger ~pid ~at_us);
  path

let corrupt ~path reason =
  raise (E.Error (E.Checkpoint_corrupt { path; reason }))

let count ~path r what =
  let n = Binio.R.int r in
  if n < 0 then corrupt ~path (Printf.sprintf "negative %s count %d" what n);
  n

let load ~path =
  match Binio.read_file ~path ~magic ~version () with
  | Error e -> Error e
  | Ok payload ->
      E.protect (fun () ->
          let r = Binio.R.of_string ~path payload in
          let trigger = Binio.R.string r in
          let pid = Binio.R.int r in
          let at_us = Binio.R.int r in
          let seq = Binio.R.int r in
          let dropped_spans = Binio.R.int r in
          let nspans = count ~path r "span" in
          let spans =
            List.init nspans (fun _ ->
                let trace_id = Binio.R.string r in
                let span_id = Binio.R.int r in
                let parent = Binio.R.int r in
                let stage = Binio.R.string r in
                let start_us = Binio.R.int r in
                let end_us = Binio.R.int r in
                { Span.trace_id; span_id; parent; stage; start_us; end_us })
          in
          let nlogs = count ~path r "log" in
          let logs = List.init nlogs (fun _ -> Binio.R.string r) in
          Binio.R.expect_end r;
          { trigger; pid; at_us; seq; dropped_spans; spans; logs })

(* All live values are slots in one growable flat int array owned by the
   registry: a counter or gauge is one slot, a histogram is a contiguous
   [2 + buckets] slice (count, sum, per-bucket counts).  Handles carry the
   registry plus a base index, so the hot-path operations are two loads
   and a store — no allocation, no boxing, no hashing. *)

let num_buckets = 63
(* Bucket [k] holds observations [v] with [bits v = k], i.e. values in
   [2^(k-1), 2^k); bucket 0 holds [v <= 0].  63 buckets cover every OCaml
   int. *)

type kind = Counter | Gauge | Histogram

type series = {
  name : string;
  labels : (string * string) list;
  help : string;
  kind : kind;
  base : int; (* first slot in [cells] *)
}

type t = {
  mutable cells : int array;
  mutable used : int;
  mutable series : series list; (* newest first *)
  mutable count : int;
}

type counter = { ct : t; cbase : int }
type gauge = { gt : t; gbase : int }
type histogram = { ht : t; hbase : int }

let create () = { cells = Array.make 64 0; used = 0; series = []; count = 0 }

let valid_name name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let valid_label_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let alloc t n =
  let need = t.used + n in
  if need > Array.length t.cells then begin
    let size = ref (2 * Array.length t.cells) in
    while !size < need do
      size := 2 * !size
    done;
    let bigger = Array.make !size 0 in
    Array.blit t.cells 0 bigger 0 t.used;
    t.cells <- bigger
  end;
  let base = t.used in
  t.used <- need;
  base

(* Registration is idempotent on (name, labels): re-registering an
   existing series returns the same slots, so layered instrumentation
   (machine + supervisor + CLI) can share one registry without
   coordination.  Re-registering under a different kind is a programming
   error and raises. *)
let register t ~kind ~help ~labels name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  match
    List.find_opt (fun s -> s.name = name && s.labels = labels) t.series
  with
  | Some s ->
      if s.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name s.kind));
      s.base
  | None ->
      (match List.find_opt (fun s -> s.name = name) t.series with
      | Some s when s.kind <> kind ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name s.kind))
      | _ -> ());
      let slots =
        match kind with Counter | Gauge -> 1 | Histogram -> 2 + num_buckets
      in
      let base = alloc t slots in
      t.series <- { name; labels; help; kind; base } :: t.series;
      t.count <- t.count + 1;
      base

let counter t ?(help = "") ?(labels = []) name =
  { ct = t; cbase = register t ~kind:Counter ~help ~labels name }

let gauge t ?(help = "") ?(labels = []) name =
  { gt = t; gbase = register t ~kind:Gauge ~help ~labels name }

let histogram t ?(help = "") ?(labels = []) name =
  { ht = t; hbase = register t ~kind:Histogram ~help ~labels name }

let num_series t = t.count

(* --- hot path -------------------------------------------------------------- *)

let inc c = c.ct.cells.(c.cbase) <- c.ct.cells.(c.cbase) + 1
let add c n = c.ct.cells.(c.cbase) <- c.ct.cells.(c.cbase) + n
let set g v = g.gt.cells.(g.gbase) <- v
let gauge_add g n = g.gt.cells.(g.gbase) <- g.gt.cells.(g.gbase) + n

(* Log bucket index: the bit length of [v] ([0] for non-positive values). *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 0 and v = ref v in
    while !v > 0 do
      incr k;
      v := !v lsr 1
    done;
    !k
  end

let observe h v =
  let cells = h.ht.cells in
  cells.(h.hbase) <- cells.(h.hbase) + 1;
  cells.(h.hbase + 1) <- cells.(h.hbase + 1) + v;
  let b = h.hbase + 2 + bucket_of v in
  cells.(b) <- cells.(b) + 1

(* --- readback -------------------------------------------------------------- *)

let counter_value c = c.ct.cells.(c.cbase)
let gauge_value g = g.gt.cells.(g.gbase)
let histogram_count h = h.ht.cells.(h.hbase)
let histogram_sum h = h.ht.cells.(h.hbase + 1)

let histogram_buckets h =
  List.init num_buckets (fun k -> h.ht.cells.(h.hbase + 2 + k))

(* Upper bound of bucket [k]: the largest value whose bit length is [k].
   Bucket 0 (v <= 0) gets the bound 0. *)
let bucket_le k = if k = 0 then 0 else (1 lsl k) - 1

let find t ?(labels = []) name =
  List.find_opt (fun s -> s.name = name && s.labels = labels) t.series

let value t ?labels name =
  Option.map (fun s -> t.cells.(s.base)) (find t ?labels name)

let reset t = Array.fill t.cells 0 t.used 0

(* --- exposition ------------------------------------------------------------ *)

(* Prometheus text format, metric and label escaping per the exposition
   format spec: HELP text escapes backslash and newline; label values
   escape backslash, double quote and newline. *)
let escape_help buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let escape_label_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let add_labels buf labels =
  if labels <> [] then begin
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_label_value buf v;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'
  end

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header s =
    (* One HELP/TYPE pair per metric name, before its first sample. *)
    if not (Hashtbl.mem seen_header s.name) then begin
      Hashtbl.add seen_header s.name ();
      if s.help <> "" then begin
        Buffer.add_string buf "# HELP ";
        Buffer.add_string buf s.name;
        Buffer.add_char buf ' ';
        escape_help buf s.help;
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf "# TYPE ";
      Buffer.add_string buf s.name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (kind_name s.kind);
      Buffer.add_char buf '\n'
    end
  in
  List.iter
    (fun s ->
      header s;
      match s.kind with
      | Counter | Gauge ->
          Buffer.add_string buf s.name;
          add_labels buf s.labels;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int t.cells.(s.base));
          Buffer.add_char buf '\n'
      | Histogram ->
          let cumulative = ref 0 in
          for k = 0 to num_buckets - 1 do
            let n = t.cells.(s.base + 2 + k) in
            cumulative := !cumulative + n;
            (* Only emit buckets up to the last populated one (plus +Inf):
               63 mostly-empty lines per histogram would drown the page. *)
            if n > 0 then begin
              Buffer.add_string buf s.name;
              Buffer.add_string buf "_bucket";
              add_labels buf
                (s.labels @ [ ("le", string_of_int (bucket_le k)) ]);
              Buffer.add_char buf ' ';
              Buffer.add_string buf (string_of_int !cumulative);
              Buffer.add_char buf '\n'
            end
          done;
          Buffer.add_string buf s.name;
          Buffer.add_string buf "_bucket";
          add_labels buf (s.labels @ [ ("le", "+Inf") ]);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int t.cells.(s.base));
          Buffer.add_char buf '\n';
          Buffer.add_string buf s.name;
          Buffer.add_string buf "_sum";
          add_labels buf s.labels;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int t.cells.(s.base + 1));
          Buffer.add_char buf '\n';
          Buffer.add_string buf s.name;
          Buffer.add_string buf "_count";
          add_labels buf s.labels;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int t.cells.(s.base));
          Buffer.add_char buf '\n')
    (List.rev t.series);
  Buffer.contents buf

let to_json t =
  let labels_value labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)
  in
  let series_value s =
    let common =
      [ ("name", Json.String s.name); ("labels", labels_value s.labels) ]
    in
    let common =
      if s.help = "" then common
      else common @ [ ("help", Json.String s.help) ]
    in
    match s.kind with
    | Counter | Gauge -> Json.Obj (common @ [ ("value", Json.Int t.cells.(s.base)) ])
    | Histogram ->
        let buckets = ref [] in
        for k = num_buckets - 1 downto 0 do
          let n = t.cells.(s.base + 2 + k) in
          if n > 0 then
            buckets :=
              Json.Obj [ ("le", Json.Int (bucket_le k)); ("count", Json.Int n) ]
              :: !buckets
        done;
        Json.Obj
          (common
          @ [
              ("count", Json.Int t.cells.(s.base));
              ("sum", Json.Int t.cells.(s.base + 1));
              ("buckets", Json.List !buckets);
            ])
  in
  let of_kind k =
    List.rev t.series
    |> List.filter (fun s -> s.kind = k)
    |> List.map series_value
  in
  Json.Obj
    [
      ("counters", Json.List (of_kind Counter));
      ("gauges", Json.List (of_kind Gauge));
      ("histograms", Json.List (of_kind Histogram));
    ]

let to_json_string t = Json.to_string (to_json t)

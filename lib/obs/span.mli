(** Request-scoped spans: a bounded per-worker ring of timed stages.

    A span is one timed stage of a request (read, parse, key, cache
    lookup, plan build, dry run, write) tied to a trace by [trace_id] and
    to its parent span by [parent].  The ring is fixed-capacity and
    overwrites the oldest span once full, so a worker always holds the
    last-N spans for the flight recorder ({!Flight}) at O(capacity)
    memory, no matter how long it has been up.

    Timestamps are plain microsecond integers supplied by the caller
    (the daemon passes [Ccs.Clock.now_us]); this library stays
    clock-free so deterministic tests can fabricate timelines. *)

type span = {
  trace_id : string;  (** correlates spans, log lines and responses *)
  span_id : int;  (** unique within one recorder *)
  parent : int;  (** parent span id, or [-1] for a root span *)
  stage : string;  (** e.g. ["request"], ["parse"], ["plan_build"] *)
  start_us : int;
  end_us : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Fresh ring.  [capacity] (default 256) is the number of retained
    spans; recording past it drops the oldest. *)

val capacity : t -> int

val fresh_id : t -> int
(** Next span id: monotonically increasing from 0, unique per recorder. *)

val record :
  t ->
  trace_id:string ->
  span_id:int ->
  parent:int ->
  stage:string ->
  start_us:int ->
  end_us:int ->
  unit
(** Append a finished span, evicting the oldest when full. *)

val length : t -> int
(** Spans currently retained (<= capacity). *)

val total : t -> int
(** Spans ever recorded. *)

val dropped : t -> int
(** Spans evicted by the ring ([total - length]). *)

val iter : t -> f:(span -> unit) -> unit
(** Retained spans, oldest first. *)

val to_list : t -> span list
(** Retained spans, oldest first. *)

val duration_us : span -> int
(** [max 0 (end_us - start_us)]. *)

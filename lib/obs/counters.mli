(** Per-entity access/miss attribution counters.

    An {e entity} is anything the instrumented machine charges a memory
    touch to — a module's state region or a channel's ring buffer — encoded
    as a dense integer id by the instrumenting layer (see
    {!Ccs_exec.Machine.entity_of_state} and [entity_of_buffer]).  The
    counters themselves are two flat int arrays, so recording is two (or
    three) array stores on the instrumented path and the structure imposes
    zero cost when absent.

    The central invariant the test suite enforces: when a machine is
    created with counters attached, the per-entity misses sum {e exactly}
    to the aggregate cache miss count — every miss has exactly one owner. *)

type t

val create : entities:int -> t
(** Fresh zeroed counters for entity ids [0 .. entities - 1].
    @raise Invalid_argument if [entities < 0]. *)

val entities : t -> int

val record : t -> int -> hit:bool -> unit
(** [record t i ~hit] charges one access (and, unless [hit], one miss) to
    entity [i].  Bounds are the caller's responsibility (unsafe ids raise
    [Invalid_argument] via the array bounds check). *)

val accesses : t -> int -> int
val misses : t -> int -> int

val total_accesses : t -> int
val total_misses : t -> int
(** Sums over all entities — compared against the cache's own aggregate
    counters for the attribution-soundness check. *)

val reset : t -> unit

val dump : t -> int array * int array
(** Copies of the (accesses, misses) arrays, for checkpointing. *)

val load : t -> accesses:int array -> misses:int array -> unit
(** Overwrite the counters with a previous {!dump}.
    @raise Invalid_argument on an entity-count mismatch. *)

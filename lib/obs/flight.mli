(** Flight recorder: a crash-surviving black box for the serving stack.

    Bundles a bounded {!Span} ring with a bounded ring of recent log
    lines.  On an anomaly trigger (deadline-exceeded, shed, containment
    catch-all, breaker quarantine, SIGTERM) the daemon calls {!dump},
    which freezes both rings into a Binio-framed, checksummed,
    atomically written per-worker file — so the last-N requests before
    any failure survive for post-mortem even if the worker dies
    immediately after.

    The file format shares the discipline of checkpoints and plan-cache
    records: 8-byte magic ["CCSFLGT1"], version, length, FNV-1a 64
    checksum.  {!load} rejects truncation, bit corruption and version
    skew with structured {!Ccs_sdf.Error.t} values — a corrupt dump is
    a reported error, never a crash. *)

type t

val create : ?span_capacity:int -> ?log_capacity:int -> unit -> t
(** Fresh recorder.  [span_capacity] (default 256) bounds the span
    ring; [log_capacity] (default 128) bounds the retained log lines. *)

val spans : t -> Span.t
(** The live span ring; the daemon records stage spans into it. *)

val note_log : t -> string -> unit
(** Mirror one rendered log line into the ring (see {!Log.tee}). *)

val recent_logs : t -> string list
(** Retained log lines, oldest first. *)

val dumps : t -> int
(** Number of {!dump} calls so far on this recorder. *)

(** A decoded flight dump. *)
type dump = {
  trigger : string;  (** what fired the dump, e.g. ["deadline-exceeded"] *)
  pid : int;
  at_us : int;  (** dump timestamp, caller-supplied microseconds *)
  seq : int;  (** dump ordinal for this recorder (0-based) *)
  dropped_spans : int;  (** spans lost to ring eviction before the dump *)
  spans : Span.span list;  (** oldest first *)
  logs : string list;  (** oldest first *)
}

val magic : string
val version : int

val snapshot : t -> trigger:string -> pid:int -> at_us:int -> dump
(** Freeze the rings into a dump value and bump {!dumps}. *)

val write : path:string -> dump -> unit
(** Frame and atomically write a dump ({!Ccs_sdf.Binio.write_file}).
    @raise Sys_error on I/O failure. *)

val dump : t -> dir:string -> trigger:string -> pid:int -> at_us:int -> string
(** [dump t ~dir ~trigger ~pid ~at_us] snapshots the recorder and
    writes it to [dir/worker-<pid>-<trigger>.ccsflight], creating [dir]
    if needed; returns the path.  One file per (worker, trigger), newest
    wins — a later graceful-shutdown dump never overwrites the
    deadline-exceeded evidence.  [trigger] must be filename-safe.
    @raise Sys_error on I/O failure. *)

val load : path:string -> (dump, Ccs_sdf.Error.t) result
(** Read a dump back, validating the whole frame and payload schema. *)

(** Schedule-event tracing with logical timestamps.

    A tracer is an append-only in-memory event log.  Time is {e logical}:
    the clock is advanced by the instrumented machine once per simulated
    cache access, so timestamps are directly comparable to the paper's
    cost model (one unit per block touch) and are monotone by construction.

    Events are stored packed (four ints per event) in a flat circular
    buffer: no per-event allocation, and nothing at all happens when no
    tracer is attached.  A capacity limit bounds memory on long runs; once
    reached, each new event overwrites the {e oldest} stored one, so the
    buffer always holds the most recent window of the run and {!dropped}
    counts the overwritten events. *)

type kind =
  | Fire  (** A module fired: [id] = node, [arg] = duration in accesses. *)
  | Load  (** A cache miss: [id] = owning entity, [arg] = block id. *)
  | Evict
      (** A block was evicted to serve a load: [id] = entity whose access
          caused the eviction, [arg] = victim block id. *)
  | Stall
      (** A firing was attempted but the firing rule failed: [id] = node,
          [arg] = 0. *)

type event = { kind : kind; ts : int; id : int; arg : int }

type t

val create : ?limit:int -> unit -> t
(** [limit] (default [1_000_000]) caps the number of {e stored} events.
    @raise Invalid_argument if [limit < 0]. *)

val clock : t -> int
(** Current logical time (number of {!advance} ticks so far). *)

val advance : t -> int -> unit
(** Advance the logical clock by [k] accesses. *)

val restore : t -> clock:int -> dropped:int -> unit
(** Reset the logical clock and drop count to checkpointed values, so a
    resumed run continues the same timeline.  Stored events are untouched
    (they are a bounded diagnostic ring, not persistent state).
    @raise Invalid_argument on negative values. *)

val begin_fire : t -> node:int -> int
(** Append a [Fire] event for [node] at the current logical time, duration
    still zero; returns a handle for {!end_fire} ([-1] when [limit = 0]).
    Emitting the event {e before} the firing's touches keeps the log
    sorted by timestamp. *)

val end_fire : t -> int -> unit
(** Patch the [Fire] event's duration to the accesses elapsed since its
    {!begin_fire}.  Handles stay valid across ring wraparound; a handle
    whose event has since been overwritten (and a [-1] handle) is
    ignored. *)

val load : t -> owner:int -> block:int -> unit
val evict : t -> owner:int -> block:int -> unit
val stall : t -> node:int -> unit

val length : t -> int
(** Stored events ([min] of events recorded and [limit]). *)

val dropped : t -> int
(** Events overwritten after the limit was reached (the stored window plus
    [dropped] is every event the run emitted). *)

val get : t -> int -> event
(** The [i]-th {e oldest} stored event. *)

val iter : t -> f:(event -> unit) -> unit
(** Oldest stored event first; timestamps are non-decreasing. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

(* --- emission ------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/inf literals; map them to null. *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------------- *)

exception Parse_error of { offset : int; message : string }

type parser_state = { src : string; mutable pos : int }

let fail p message = raise (Parse_error { offset = p.pos; message })

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.src
    &&
    match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some d when d = c -> p.pos <- p.pos + 1
  | Some d -> fail p (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail p (Printf.sprintf "expected %C, found end of input" c)

let literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src
    && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p (Printf.sprintf "expected %s" word)

let hex_digit p c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail p "invalid hex escape"

(* Encode a code point as UTF-8.  Surrogate pairs are combined by the
   string scanner below; unpaired surrogates become U+FFFD. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 p =
  if p.pos + 4 > String.length p.src then fail p "truncated \\u escape";
  let v =
    (hex_digit p p.src.[p.pos] lsl 12)
    lor (hex_digit p p.src.[p.pos + 1] lsl 8)
    lor (hex_digit p p.src.[p.pos + 2] lsl 4)
    lor hex_digit p p.src.[p.pos + 3]
  in
  p.pos <- p.pos + 4;
  v

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if p.pos >= String.length p.src then fail p "unterminated string";
    match p.src.[p.pos] with
    | '"' -> p.pos <- p.pos + 1
    | '\\' ->
        p.pos <- p.pos + 1;
        (if p.pos >= String.length p.src then fail p "unterminated escape"
         else
           match p.src.[p.pos] with
           | '"' ->
               Buffer.add_char buf '"';
               p.pos <- p.pos + 1
           | '\\' ->
               Buffer.add_char buf '\\';
               p.pos <- p.pos + 1
           | '/' ->
               Buffer.add_char buf '/';
               p.pos <- p.pos + 1
           | 'b' ->
               Buffer.add_char buf '\b';
               p.pos <- p.pos + 1
           | 'f' ->
               Buffer.add_char buf '\012';
               p.pos <- p.pos + 1
           | 'n' ->
               Buffer.add_char buf '\n';
               p.pos <- p.pos + 1
           | 'r' ->
               Buffer.add_char buf '\r';
               p.pos <- p.pos + 1
           | 't' ->
               Buffer.add_char buf '\t';
               p.pos <- p.pos + 1
           | 'u' ->
               p.pos <- p.pos + 1;
               let cp = parse_hex4 p in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then
                   (* High surrogate: combine with a following \uDC00-DFFF. *)
                   if
                     p.pos + 6 <= String.length p.src
                     && p.src.[p.pos] = '\\'
                     && p.src.[p.pos + 1] = 'u'
                   then begin
                     let saved = p.pos in
                     p.pos <- p.pos + 2;
                     let lo = parse_hex4 p in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                     else begin
                       p.pos <- saved;
                       0xFFFD
                     end
                   end
                   else 0xFFFD
                 else if cp >= 0xDC00 && cp <= 0xDFFF then 0xFFFD
                 else cp
               in
               add_utf8 buf cp
           | c -> fail p (Printf.sprintf "invalid escape \\%C" c));
        go ()
    | c when Char.code c < 0x20 -> fail p "unescaped control character"
    | c ->
        Buffer.add_char buf c;
        p.pos <- p.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_int = ref true in
  if peek p = Some '-' then p.pos <- p.pos + 1;
  let digits () =
    let n0 = p.pos in
    while
      p.pos < String.length p.src
      && match p.src.[p.pos] with '0' .. '9' -> true | _ -> false
    do
      p.pos <- p.pos + 1
    done;
    if p.pos = n0 then fail p "expected digit"
  in
  digits ();
  (match peek p with
  | Some '.' ->
      is_int := false;
      p.pos <- p.pos + 1;
      digits ()
  | _ -> ());
  (match peek p with
  | Some ('e' | 'E') ->
      is_int := false;
      p.pos <- p.pos + 1;
      (match peek p with
      | Some ('+' | '-') -> p.pos <- p.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub p.src start (p.pos - start) in
  if !is_int then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* beyond 63-bit range *)
  else Float (float_of_string text)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '"' -> String (parse_string p)
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          fields := (k, v) :: !fields;
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              members ()
          | _ -> expect p '}'
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value p in
          items := v :: !items;
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              elements ()
          | _ -> expect p ']'
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error
          (Printf.sprintf "offset %d: trailing garbage after JSON value" p.pos)
      else Ok v
  | exception Parse_error { offset; message } ->
      Error (Printf.sprintf "offset %d: %s" offset message)

(* --- accessors ------------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None

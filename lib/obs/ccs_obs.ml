(** Observability primitives for the simulated machines: per-entity miss
    attribution ({!Counters}), schedule-event tracing with logical
    timestamps ({!Tracer}), Chrome [trace_event] / summary writers
    ({!Trace_export}), a metrics registry with Prometheus/JSON exposition
    ({!Metrics}), levelled structured logging ({!Log}), request-scoped
    stage spans ({!Span}) with a crash-surviving flight recorder
    ({!Flight}) and the JSON substrate they share ({!Json}).  Nearly
    dependency-free — only the
    atomic-write substrate ({!Ccs_sdf.Binio}) is shared — and the
    execution layers ([Ccs_exec.Machine], [Ccs_multi.Multi_machine],
    [Ccs_runtime.Engine]) accept these as optional attachments and pay
    nothing when they are absent. *)

module Counters = Counters
module Tracer = Tracer
module Trace_export = Trace_export
module Json = Json
module Metrics = Metrics
module Log = Log
module Span = Span
module Flight = Flight

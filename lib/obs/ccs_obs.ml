(** Observability primitives for the simulated machines: per-entity miss
    attribution ({!Counters}), schedule-event tracing with logical
    timestamps ({!Tracer}), and Chrome [trace_event] / summary writers
    ({!Trace_export}).  Dependency-free by design — the execution layers
    ([Ccs_exec.Machine], [Ccs_multi.Multi_machine], [Ccs_runtime.Engine])
    accept these as optional attachments and pay nothing when they are
    absent. *)

module Counters = Counters
module Tracer = Tracer
module Trace_export = Trace_export

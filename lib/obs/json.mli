(** Dependency-free JSON: a value type, a compact emitter and a strict
    parser.

    The emitter is byte-for-byte the format the benchmark harness and the
    telemetry writers produce ([%.12g] floats, [null] for non-finite
    values, full string escaping).  The parser accepts standard JSON
    (RFC 8259): it is used by [ccsched bench diff] to read benchmark
    baselines back, so the pair round-trips every document this repository
    writes. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

val to_string : value -> string
(** Compact (single-line) serialization.  Non-finite floats become
    [null]; ints beyond 63 bits cannot occur. *)

val escape_string : Buffer.t -> string -> unit
(** Append [s] as a quoted, escaped JSON string — shared by the writers
    that emit JSON without building a {!value}. *)

val of_string : string -> (value, string) result
(** Parse one complete JSON document.  Numbers without [.]/[e] parse as
    [Int] (falling back to [Float] beyond 63-bit range); the error string
    carries the byte offset of the first problem. *)

(** {2 Accessors} — shallow, total helpers for picking documents apart. *)

val member : string -> value -> value option
(** Field of an object ([None] on missing field or non-object). *)

val to_int : value -> int option
val to_float : value -> float option
(** [to_float] also accepts [Int]. *)

val to_str : value -> string option
val to_list : value -> value list option

type kind = Fire | Load | Evict | Stall

type event = { kind : kind; ts : int; id : int; arg : int }

(* Packed circular storage: each event is 4 consecutive ints (kind, ts,
   id, arg) in one flat array that grows by doubling until it reaches
   [4 * limit] slots.  Event number [s] (0-based, counted over the whole
   run) lives at slot [s mod limit], so once [limit] events have been
   recorded each new event overwrites the *oldest* stored one: the buffer
   always holds the most recent window, and [dropped] counts the
   overwritten events. *)
type t = {
  mutable data : int array;
  mutable total : int; (* events ever recorded *)
  mutable clock : int;
  mutable dropped : int; (* events overwritten (or refused when limit=0) *)
  limit : int;
}

let create ?(limit = 1_000_000) () =
  if limit < 0 then invalid_arg "Tracer.create: limit must be >= 0";
  { data = Array.make 256 0; total = 0; clock = 0; dropped = 0; limit }

let clock t = t.clock
let advance t k = t.clock <- t.clock + k

(* Checkpoint support: a resumed run must restart the logical clock (and
   the drop count) where the checkpointed run left them, so post-resume
   timestamps continue the same timeline.  Events themselves are a bounded
   diagnostic ring and are not persisted. *)
let restore t ~clock ~dropped =
  if clock < 0 || dropped < 0 then
    invalid_arg "Tracer.restore: negative clock or drop count";
  t.clock <- clock;
  t.dropped <- dropped

let kind_to_int = function Fire -> 0 | Load -> 1 | Evict -> 2 | Stall -> 3
let kind_of_int = function
  | 0 -> Fire
  | 1 -> Load
  | 2 -> Evict
  | _ -> Stall

let length t = min t.total t.limit
let dropped t = t.dropped

(* Byte offset of the slot for event number [seq], growing the array on
   first use of a pre-wrap slot.  Post-wrap slots were all written before,
   so no growth can be needed then. *)
let slot_offset t seq =
  let s = seq mod t.limit in
  let need = 4 * (s + 1) in
  if need > Array.length t.data then begin
    let size = ref (2 * Array.length t.data) in
    while !size < need do
      size := 2 * !size
    done;
    let bigger = Array.make (min !size (4 * t.limit)) 0 in
    Array.blit t.data 0 bigger 0 (4 * length t);
    t.data <- bigger
  end;
  4 * s

let push t kind ~ts ~id ~arg =
  if t.limit = 0 then t.dropped <- t.dropped + 1
  else begin
    if t.total >= t.limit then t.dropped <- t.dropped + 1;
    let o = slot_offset t t.total in
    t.data.(o) <- kind_to_int kind;
    t.data.(o + 1) <- ts;
    t.data.(o + 2) <- id;
    t.data.(o + 3) <- arg;
    t.total <- t.total + 1
  end

let begin_fire t ~node =
  if t.limit = 0 then begin
    t.dropped <- t.dropped + 1;
    -1
  end
  else begin
    let handle = t.total in
    push t Fire ~ts:t.clock ~id:node ~arg:0;
    handle
  end

(* A handle is the event's run-wide number; it stays patchable exactly as
   long as the event is still in the window ([total - handle <= limit]).
   A handle whose Fire event has since been overwritten is silently
   ignored — the duration is lost with the event. *)
let end_fire t handle =
  if handle >= 0 && t.total - handle <= t.limit then begin
    let o = 4 * (handle mod t.limit) in
    t.data.(o + 3) <- t.clock - t.data.(o + 1)
  end

let load t ~owner ~block = push t Load ~ts:t.clock ~id:owner ~arg:block
let evict t ~owner ~block = push t Evict ~ts:t.clock ~id:owner ~arg:block
let stall t ~node = push t Stall ~ts:t.clock ~id:node ~arg:0

let get t i =
  let len = length t in
  if i < 0 || i >= len then invalid_arg "Tracer.get: out of range";
  let o = 4 * ((t.total - len + i) mod t.limit) in
  {
    kind = kind_of_int t.data.(o);
    ts = t.data.(o + 1);
    id = t.data.(o + 2);
    arg = t.data.(o + 3);
  }

let iter t ~f =
  for i = 0 to length t - 1 do
    f (get t i)
  done

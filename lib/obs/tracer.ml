type kind = Fire | Load | Evict | Stall

type event = { kind : kind; ts : int; id : int; arg : int }

(* Packed storage: each event is 4 consecutive ints (kind, ts, id, arg) in
   one growable array — appending allocates only on doubling. *)
type t = {
  mutable data : int array;
  mutable len : int; (* events stored *)
  mutable clock : int;
  mutable dropped : int;
  limit : int;
}

let create ?(limit = 1_000_000) () =
  if limit < 0 then invalid_arg "Tracer.create: limit must be >= 0";
  { data = Array.make 256 0; len = 0; clock = 0; dropped = 0; limit }

let clock t = t.clock
let advance t k = t.clock <- t.clock + k

(* Checkpoint support: a resumed run must restart the logical clock (and
   the drop count) where the checkpointed run left them, so post-resume
   timestamps continue the same timeline.  Events themselves are a bounded
   diagnostic ring and are not persisted. *)
let restore t ~clock ~dropped =
  if clock < 0 || dropped < 0 then
    invalid_arg "Tracer.restore: negative clock or drop count";
  t.clock <- clock;
  t.dropped <- dropped

let kind_to_int = function Fire -> 0 | Load -> 1 | Evict -> 2 | Stall -> 3
let kind_of_int = function
  | 0 -> Fire
  | 1 -> Load
  | 2 -> Evict
  | _ -> Stall

let push t kind ~ts ~id ~arg =
  if t.len >= t.limit then t.dropped <- t.dropped + 1
  else begin
    let need = 4 * (t.len + 1) in
    if need > Array.length t.data then begin
      let bigger = Array.make (2 * Array.length t.data) 0 in
      Array.blit t.data 0 bigger 0 (4 * t.len);
      t.data <- bigger
    end;
    let o = 4 * t.len in
    t.data.(o) <- kind_to_int kind;
    t.data.(o + 1) <- ts;
    t.data.(o + 2) <- id;
    t.data.(o + 3) <- arg;
    t.len <- t.len + 1
  end

let begin_fire t ~node =
  if t.len >= t.limit then begin
    t.dropped <- t.dropped + 1;
    -1
  end
  else begin
    push t Fire ~ts:t.clock ~id:node ~arg:0;
    t.len - 1
  end

let end_fire t handle =
  if handle >= 0 then begin
    let o = 4 * handle in
    t.data.(o + 3) <- t.clock - t.data.(o + 1)
  end
let load t ~owner ~block = push t Load ~ts:t.clock ~id:owner ~arg:block
let evict t ~owner ~block = push t Evict ~ts:t.clock ~id:owner ~arg:block
let stall t ~node = push t Stall ~ts:t.clock ~id:node ~arg:0

let length t = t.len
let dropped t = t.dropped

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tracer.get: out of range";
  let o = 4 * i in
  {
    kind = kind_of_int t.data.(o);
    ts = t.data.(o + 1);
    id = t.data.(o + 2);
    arg = t.data.(o + 3);
  }

let iter t ~f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

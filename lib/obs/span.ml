type span = {
  trace_id : string;
  span_id : int;
  parent : int;
  stage : string;
  start_us : int;
  end_us : int;
}

(* Circular buffer in parallel arrays (same idiom as Tracer's packed
   ring): slot = total mod capacity, so overwrite-oldest is one store
   per field and iteration replays the window in arrival order. *)
type t = {
  cap : int;
  trace_ids : string array;
  span_ids : int array;
  parents : int array;
  stages : string array;
  starts : int array;
  ends : int array;
  mutable total : int;
  mutable next_id : int;
}

let create ?(capacity = 256) () =
  let cap = max 1 capacity in
  {
    cap;
    trace_ids = Array.make cap "";
    span_ids = Array.make cap 0;
    parents = Array.make cap (-1);
    stages = Array.make cap "";
    starts = Array.make cap 0;
    ends = Array.make cap 0;
    total = 0;
    next_id = 0;
  }

let capacity t = t.cap

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let record t ~trace_id ~span_id ~parent ~stage ~start_us ~end_us =
  let slot = t.total mod t.cap in
  t.trace_ids.(slot) <- trace_id;
  t.span_ids.(slot) <- span_id;
  t.parents.(slot) <- parent;
  t.stages.(slot) <- stage;
  t.starts.(slot) <- start_us;
  t.ends.(slot) <- end_us;
  t.total <- t.total + 1

let length t = min t.total t.cap
let total t = t.total
let dropped t = t.total - length t

let get t i =
  let first = t.total - length t in
  let slot = (first + i) mod t.cap in
  {
    trace_id = t.trace_ids.(slot);
    span_id = t.span_ids.(slot);
    parent = t.parents.(slot);
    stage = t.stages.(slot);
    start_us = t.starts.(slot);
    end_us = t.ends.(slot);
  }

let iter t ~f =
  for i = 0 to length t - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun s -> acc := s :: !acc);
  List.rev !acc

let duration_us s = max 0 (s.end_us - s.start_us)

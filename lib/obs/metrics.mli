(** Metrics registry: named counters, gauges and log-bucketed histograms.

    All live values are slots in one flat int array owned by the registry,
    so the hot-path operations ({!inc}, {!add}, {!set}, {!observe}) are a
    couple of array accesses — no allocation, no boxing, no hashing.
    Instrumented components hold handles obtained once at registration
    time and gate their use on a single precomputed test (the same
    [observed] pattern the machines use for counters/tracers), so a run
    without a registry attached pays nothing.

    Registration is idempotent on [(name, labels)]: asking for an existing
    series returns a handle to the same slots, so independently
    instrumented layers (machine, supervisor, CLI) can share one registry
    without coordination.

    Snapshots export in two formats: Prometheus text exposition
    ({!to_prometheus}) and a JSON document ({!to_json}).  Values are
    integers throughout — the simulators count discrete events (misses,
    firings, logical ticks, bytes, microseconds). *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or look up) a counter.  Metric names must match Prometheus
    conventions ([[a-zA-Z_:][a-zA-Z0-9_:]*]); label names likewise
    (without [:]).
    @raise Invalid_argument on an invalid name, or if [name] is already
    registered with a different kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Histograms are log-bucketed: bucket [k] counts observations whose bit
    length is [k] (values in [[2^(k-1), 2^k)]); bucket [0] counts
    non-positive values.  63 buckets cover every OCaml int. *)

(** {2 Hot path} — allocation-free. *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val observe : histogram -> int -> unit

(** {2 Readback} — for tests and programmatic consumers. *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_buckets : histogram -> int list
(** Per-bucket (non-cumulative) observation counts, bucket 0 first. *)

val bucket_of : int -> int
(** The bucket index an observation falls into (exposed for tests). *)

val bucket_le : int -> int
(** Inclusive upper bound of bucket [k]: [2^k - 1], and [0] for bucket 0. *)

val value : t -> ?labels:(string * string) list -> string -> int option
(** Current value of a counter/gauge (or a histogram's count) by name. *)

val num_series : t -> int

val reset : t -> unit
(** Zero every registered series (registrations persist). *)

(** {2 Exposition} *)

val to_prometheus : t -> string
(** Prometheus text format: [# HELP]/[# TYPE] headers, label values
    escaped per the exposition-format spec, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum]/[_count].  Empty log buckets
    are elided (the [+Inf] bucket is always present). *)

val to_json : t -> Json.value
val to_json_string : t -> string

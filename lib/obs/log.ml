type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type t = {
  mutable threshold : level;
  sink : string -> unit;
  mutable seq : int; (* lines emitted, a deterministic per-run ordinal *)
  now : (unit -> int) option;
      (* opt-in wall clock: when set, each line carries "ts_us".  Off by
         default so deterministic-seq tests and byte-identical
         double-run gates are unchanged. *)
}

let make ?(level = Info) ?now sink = { threshold = level; sink; seq = 0; now }

(* Flushed per line: channel loggers serve long-running processes
   (the daemon's preforked workers log to an inherited stderr and can
   die on a signal at any moment), so a line must be durable the
   moment it is emitted, not at channel-buffer pressure or exit. *)
let to_channel ?level ?now oc =
  make ?level ?now (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

let to_buffer ?level ?now buf =
  make ?level ?now (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')

let null = { threshold = Error; sink = ignore; seq = 0; now = None }

let tee t extra =
  (* Mirrors every rendered line into [extra] as well as the original
     sink — the daemon routes log lines into the flight recorder's ring
     this way.  Shares nothing mutable with [t]: wrap once at process
     start (each preforked worker wraps its inherited logger). *)
  {
    threshold = t.threshold;
    sink =
      (fun line ->
        t.sink line;
        extra line);
    seq = t.seq;
    now = t.now;
  }

let with_timestamps t now = { t with now = Some now }
let set_level t level = t.threshold <- level
let level t = t.threshold
let enabled t l = level_rank l >= level_rank t.threshold
let lines t = t.seq

(* One JSON object per line: {"seq":N,"lvl":"...","ev":"...", ...fields}.
   Field values are rendered with the shared JSON emitter, so any string
   content is safely escaped.  Nothing is formatted unless the level
   passes, so a logger parked above Debug costs one comparison per call
   site. *)
let log t l event fields =
  if enabled t l then begin
    let buf = Buffer.create 96 in
    Buffer.add_string buf "{\"seq\":";
    Buffer.add_string buf (string_of_int t.seq);
    (match t.now with
    | None -> ()
    | Some now ->
        Buffer.add_string buf ",\"ts_us\":";
        Buffer.add_string buf (string_of_int (now ())));
    Buffer.add_string buf ",\"lvl\":\"";
    Buffer.add_string buf (level_name l);
    Buffer.add_string buf "\",\"ev\":";
    Json.escape_string buf event;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ',';
        Json.escape_string buf k;
        Buffer.add_char buf ':';
        Buffer.add_string buf (Json.to_string v))
      fields;
    Buffer.add_char buf '}';
    t.seq <- t.seq + 1;
    t.sink (Buffer.contents buf)
  end

let debug t event fields = log t Debug event fields
let info t event fields = log t Info event fields
let warn t event fields = log t Warn event fields
let error t event fields = log t Error event fields

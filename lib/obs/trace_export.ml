let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* One trace_event object.  [extra] is pre-rendered JSON fields (with a
   leading comma) appended verbatim — every caller builds them from ints
   and escaped strings below. *)
let event buf ~first ~name ~cat ~ph ~ts ~tid ~extra =
  if not first then Buffer.add_char buf ',';
  Buffer.add_string buf "\n{\"name\":";
  escape buf name;
  Buffer.add_string buf ",\"cat\":\"";
  Buffer.add_string buf cat;
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf ph;
  Buffer.add_string buf "\",\"pid\":0,\"tid\":";
  Buffer.add_string buf (string_of_int tid);
  Buffer.add_string buf ",\"ts\":";
  Buffer.add_string buf (string_of_int ts);
  Buffer.add_string buf extra;
  Buffer.add_char buf '}'

let metadata buf ~first ~name ~tid ~value =
  if not first then Buffer.add_char buf ',';
  Buffer.add_string buf "\n{\"name\":";
  escape buf name;
  Buffer.add_string buf ",\"ph\":\"M\",\"pid\":0,\"tid\":";
  Buffer.add_string buf (string_of_int tid);
  Buffer.add_string buf ",\"ts\":0,\"args\":{\"name\":";
  escape buf value;
  Buffer.add_string buf "}}"

let chrome ?(process_name = "ccs simulated machine") ?(thread_names = [])
    ?(summary = []) ~label ~tid tracer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  metadata buf ~first:!first ~name:"process_name" ~tid:0 ~value:process_name;
  first := false;
  List.iter
    (fun (t, name) -> metadata buf ~first:false ~name:"thread_name" ~tid:t ~value:name)
    thread_names;
  Tracer.iter tracer ~f:(fun (e : Tracer.event) ->
      (match e.Tracer.kind with
      | Tracer.Fire ->
          event buf ~first:false ~name:(label e.Tracer.id) ~cat:"fire" ~ph:"X"
            ~ts:e.Tracer.ts ~tid:(tid e.Tracer.id)
            ~extra:(Printf.sprintf ",\"dur\":%d" e.Tracer.arg)
      | Tracer.Load ->
          event buf ~first:false ~name:(label e.Tracer.id) ~cat:"load" ~ph:"i"
            ~ts:e.Tracer.ts ~tid:(tid e.Tracer.id)
            ~extra:
              (Printf.sprintf ",\"s\":\"t\",\"args\":{\"block\":%d}"
                 e.Tracer.arg)
      | Tracer.Evict ->
          event buf ~first:false ~name:(label e.Tracer.id) ~cat:"evict"
            ~ph:"i" ~ts:e.Tracer.ts ~tid:(tid e.Tracer.id)
            ~extra:
              (Printf.sprintf ",\"s\":\"t\",\"args\":{\"victim\":%d}"
                 e.Tracer.arg)
      | Tracer.Stall ->
          event buf ~first:false ~name:(label e.Tracer.id) ~cat:"stall"
            ~ph:"i" ~ts:e.Tracer.ts ~tid:(tid e.Tracer.id)
            ~extra:",\"s\":\"t\""));
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"ccs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v))
    (("events", Tracer.length tracer)
    :: ("dropped_events", Tracer.dropped tracer)
    :: summary);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Span forest → Chrome trace_event JSON: one track (tid) per source
   (worker/file), one complete "X" event per span with trace_id /
   span_id / parent carried in args so Perfetto's flow queries can
   stitch a request back together across stages. *)
let chrome_spans ?(process_name = "ccsched serve") sources =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  metadata buf ~first:true ~name:"process_name" ~tid:0 ~value:process_name;
  List.iteri
    (fun tid (label, _) ->
      metadata buf ~first:false ~name:"thread_name" ~tid ~value:label)
    sources;
  let total = ref 0 in
  List.iteri
    (fun tid (_, spans) ->
      List.iter
        (fun (s : Span.span) ->
          incr total;
          let extra = Buffer.create 96 in
          Buffer.add_string extra
            (Printf.sprintf ",\"dur\":%d,\"args\":{\"trace_id\":"
               (Span.duration_us s));
          escape extra s.Span.trace_id;
          Buffer.add_string extra
            (Printf.sprintf ",\"span_id\":%d,\"parent\":%d}" s.Span.span_id
               s.Span.parent);
          event buf ~first:false ~name:s.Span.stage ~cat:"serve" ~ph:"X"
            ~ts:s.Span.start_us ~tid ~extra:(Buffer.contents extra))
        spans)
    sources;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"ccs\":{";
  escape buf "spans";
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int !total);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Atomic write (the shared Binio discipline): a crash mid-export leaves
   the previous file (or nothing) on disk — never a truncated,
   unparseable JSON document — and concurrent exporters cannot clobber
   each other's temp file. *)
let write ~path doc = Ccs_sdf.Binio.write_atomic ~path (doc ^ "\n")

let entity_summary counters ~label =
  let rows = ref [] in
  for i = Counters.entities counters - 1 downto 0 do
    let a = Counters.accesses counters i in
    if a > 0 then rows := (label i, a, Counters.misses counters i) :: !rows
  done;
  List.sort
    (fun (_, a1, m1) (_, a2, m2) ->
      if m1 <> m2 then compare m2 m1 else compare a2 a1)
    !rows

type node = int
type edge = int

exception Invalid_graph of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_graph s)) fmt

type t = {
  name : string;
  node_names : string array;
  state : int array;
  edge_src : node array;
  edge_dst : node array;
  push : int array;
  pop : int array;
  delay : int array;
  in_edges : edge list array;
  out_edges : edge list array;
  topo : node array;
  rank : int array;
}

module Builder = struct
  type b = {
    bname : string;
    mutable names : string list;
    mutable states : int list;
    mutable nnodes : int;
    mutable chans : (node * node * int * int * int) list; (* src,dst,push,pop,delay *)
    mutable nedges : int;
  }

  type t = b

  let create ?(name = "graph") () =
    { bname = name; names = []; states = []; nnodes = 0; chans = []; nedges = 0 }

  let add_module b ?(state = 1) name =
    if state < 0 then invalid "module %s: negative state size %d" name state;
    let id = b.nnodes in
    b.names <- name :: b.names;
    b.states <- state :: b.states;
    b.nnodes <- id + 1;
    id

  let add_channel b ?(delay = 0) ~src ~dst ~push ~pop () =
    if push <= 0 || pop <= 0 then
      invalid "channel %d->%d: rates must be positive (push=%d pop=%d)" src dst
        push pop;
    if delay < 0 then invalid "channel %d->%d: negative delay" src dst;
    let id = b.nedges in
    b.chans <- (src, dst, push, pop, delay) :: b.chans;
    b.nedges <- id + 1;
    id

  (* Channels in insertion order: (src, dst, push, pop, delay). *)
  let channels b = Array.of_list (List.rev b.chans)

  (* Kahn's algorithm; [None] if a cycle remains. *)
  let topo_sort n in_edges out_edges edge_dst =
    let indeg = Array.make n 0 in
    for v = 0 to n - 1 do
      indeg.(v) <- List.length in_edges.(v)
    done;
    let queue = Queue.create () in
    for v = 0 to n - 1 do
      if indeg.(v) = 0 then Queue.add v queue
    done;
    let order = Array.make n (-1) in
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order.(!count) <- v;
      incr count;
      let relax e =
        let w = edge_dst.(e) in
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue
      in
      List.iter relax out_edges.(v)
    done;
    if !count <> n then None else Some order

  (* Find a directed cycle (as an edge list) among edges with in-range
     endpoints; used only after topo_sort failed, so one exists. *)
  let find_cycle n chans =
    let out = Array.make n [] in
    Array.iteri
      (fun e (s, d, _, _, _) ->
        if s >= 0 && s < n && d >= 0 && d < n then out.(s) <- (e, d) :: out.(s))
      chans;
    let color = Array.make n 0 in
    (* 0 white, 1 on stack, 2 done *)
    let cycle = ref None in
    let rec dfs path v =
      color.(v) <- 1;
      List.iter
        (fun (e, w) ->
          if !cycle = None then
            if color.(w) = 1 then begin
              (* Unwind [path] (edges, most recent first) back to [w]. *)
              let rec take acc = function
                | [] -> acc
                | (e', s') :: _ when s' = w -> e' :: acc
                | (e', _) :: rest -> take (e' :: acc) rest
              in
              cycle := Some (take [] ((e, v) :: path))
            end
            else if color.(w) = 0 then dfs ((e, v) :: path) w)
        out.(v);
      if !cycle = None then color.(v) <- 2
    in
    let v = ref 0 in
    while !cycle = None && !v < n do
      if color.(!v) = 0 then dfs [] !v;
      incr v
    done;
    !cycle

  let check b =
    let n = b.nnodes in
    let names = Array.of_list (List.rev b.names) in
    let states = Array.of_list (List.rev b.states) in
    let chans = channels b in
    let errs = ref [] in
    let add e = errs := e :: !errs in
    if n = 0 then add Error.Empty_graph;
    Array.iteri
      (fun v st -> if st < 0 then add (Error.Negative_state { node = names.(v); state = st }))
      states;
    let dangling = ref false in
    Array.iteri
      (fun e (s, d, pu, po, de) ->
        let name v = if v >= 0 && v < n then names.(v) else string_of_int v in
        if s < 0 || s >= n then begin
          dangling := true;
          add (Error.Dangling_edge { edge = e; endpoint = s; num_nodes = n })
        end;
        if d < 0 || d >= n then begin
          dangling := true;
          add (Error.Dangling_edge { edge = e; endpoint = d; num_nodes = n })
        end;
        if s = d && s >= 0 && s < n then
          add (Error.Degenerate_edge { edge = e; node = names.(s) });
        if pu <= 0 || po <= 0 then
          add
            (Error.Nonpositive_rate
               { edge = e; src = name s; dst = name d; push = pu; pop = po });
        if de < 0 then
          add
            (Error.Negative_delay
               { edge = e; src = name s; dst = name d; delay = de }))
      chans;
    (* Cycle analysis only when every endpoint resolves (self-loops are
       already reported as degenerate edges, so skip them here). *)
    if (not !dangling) && n > 0 then begin
      let acyclic_chans =
        Array.of_list
          (List.filter (fun (s, d, _, _, _) -> s <> d) (Array.to_list chans))
      in
      let out = Array.make n [] and inc = Array.make n [] in
      Array.iteri
        (fun e (s, d, _, _, _) ->
          out.(s) <- e :: out.(s);
          inc.(d) <- e :: inc.(d))
        acyclic_chans;
      let dsts = Array.map (fun (_, d, _, _, _) -> d) acyclic_chans in
      match topo_sort n inc out dsts with
      | Some _ -> ()
      | None -> (
          match find_cycle n acyclic_chans with
          | None -> ()
          | Some edges ->
              let cycle =
                List.map
                  (fun e ->
                    let s, _, _, _, _ = acyclic_chans.(e) in
                    names.(s))
                  edges
              in
              let total_delay =
                List.fold_left
                  (fun acc e ->
                    let _, _, _, _, de = acyclic_chans.(e) in
                    acc + de)
                  0 edges
              in
              add (Error.Deadlock_cycle { cycle; total_delay }))
    end;
    List.rev !errs

  let build_result b =
    match check b with
    | _ :: _ as errs -> Result.error errs
    | [] ->
        let node_names = Array.of_list (List.rev b.names) in
        let state = Array.of_list (List.rev b.states) in
        let n = b.nnodes and m = b.nedges in
        let edge_src = Array.make m 0
        and edge_dst = Array.make m 0
        and push = Array.make m 0
        and pop = Array.make m 0
        and delay = Array.make m 0 in
        List.iteri
          (fun i (s, d, pu, po, de) ->
            let e = m - 1 - i in
            edge_src.(e) <- s;
            edge_dst.(e) <- d;
            push.(e) <- pu;
            pop.(e) <- po;
            delay.(e) <- de)
          b.chans;
        let in_edges = Array.make n [] and out_edges = Array.make n [] in
        for e = m - 1 downto 0 do
          out_edges.(edge_src.(e)) <- e :: out_edges.(edge_src.(e));
          in_edges.(edge_dst.(e)) <- e :: in_edges.(edge_dst.(e))
        done;
        let topo =
          match topo_sort n in_edges out_edges edge_dst with
          | Some order -> order
          | None -> assert false (* check found no cycle *)
        in
        let rank = Array.make n 0 in
        Array.iteri (fun i v -> rank.(v) <- i) topo;
        Ok
          {
            name = b.bname;
            node_names;
            state;
            edge_src;
            edge_dst;
            push;
            pop;
            delay;
            in_edges;
            out_edges;
            topo;
            rank;
          }

  let build b =
    match build_result b with
    | Ok g -> g
    | Error (e :: _) -> invalid "%s" (Error.to_string e)
    | Error [] -> assert false
end

let name g = g.name
let num_nodes g = Array.length g.state
let num_edges g = Array.length g.push

let check_node g v =
  if v < 0 || v >= num_nodes g then invalid "node %d out of range" v

let check_edge g e =
  if e < 0 || e >= num_edges g then invalid "edge %d out of range" e

let node_name g v = check_node g v; g.node_names.(v)

let node_of_name g s =
  let n = num_nodes g in
  let rec find i =
    if i >= n then raise Not_found
    else if String.equal g.node_names.(i) s then i
    else find (i + 1)
  in
  find 0

let edge_name g e =
  check_edge g e;
  Printf.sprintf "%s->%s#%d"
    g.node_names.(g.edge_src.(e))
    g.node_names.(g.edge_dst.(e))
    e

let state g v = check_node g v; g.state.(v)
let total_state g = Array.fold_left ( + ) 0 g.state
let in_edges g v = check_node g v; g.in_edges.(v)
let out_edges g v = check_node g v; g.out_edges.(v)
let degree g v = List.length (in_edges g v) + List.length (out_edges g v)
let src g e = check_edge g e; g.edge_src.(e)
let dst g e = check_edge g e; g.edge_dst.(e)
let push g e = check_edge g e; g.push.(e)
let pop g e = check_edge g e; g.pop.(e)
let delay g e = check_edge g e; g.delay.(e)
let nodes g = List.init (num_nodes g) Fun.id
let edges g = List.init (num_edges g) Fun.id
let sources g = List.filter (fun v -> g.in_edges.(v) = []) (nodes g)
let sinks g = List.filter (fun v -> g.out_edges.(v) = []) (nodes g)

let source g =
  match sources g with
  | [ s ] -> s
  | l -> invalid "expected a unique source, found %d" (List.length l)

let sink g =
  match sinks g with
  | [ t ] -> t
  | l -> invalid "expected a unique sink, found %d" (List.length l)

let topological_order g = Array.copy g.topo
let topo_rank g = Array.copy g.rank

let precedes g u v =
  check_node g u;
  check_node g v;
  (* DFS from u restricted to nodes with rank <= rank v. *)
  if u = v then true
  else if g.rank.(u) > g.rank.(v) then false
  else
    let visited = Array.make (num_nodes g) false in
    let rec dfs x =
      x = v
      || (not visited.(x)
         && begin
              visited.(x) <- true;
              List.exists
                (fun e ->
                  let w = g.edge_dst.(e) in
                  g.rank.(w) <= g.rank.(v) && dfs w)
                g.out_edges.(x)
            end)
    in
    dfs u

let is_pipeline g =
  let n = num_nodes g in
  num_edges g = n - 1
  && List.for_all
       (fun v ->
         List.length g.in_edges.(v) <= 1 && List.length g.out_edges.(v) <= 1)
       (nodes g)
  && List.length (sources g) = 1
  && List.length (sinks g) = 1

let is_homogeneous g =
  let ok = ref true in
  Array.iteri (fun e pu -> if pu <> 1 || g.pop.(e) <> 1 then ok := false) g.push;
  !ok

let is_connected g =
  let n = num_nodes g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let stack = Stack.create () in
    Stack.push 0 stack;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      let visit w =
        if not seen.(w) then begin
          seen.(w) <- true;
          incr count;
          Stack.push w stack
        end
      in
      List.iter (fun e -> visit g.edge_dst.(e)) g.out_edges.(v);
      List.iter (fun e -> visit g.edge_src.(e)) g.in_edges.(v)
    done;
    !count = n
  end

let map_state g ~f =
  { g with state = Array.mapi (fun v s -> f v s) g.state }

let pp fmt g =
  Format.fprintf fmt "@[<v>graph %s (%d modules, %d channels)@," g.name
    (num_nodes g) (num_edges g);
  List.iter
    (fun v ->
      Format.fprintf fmt "  module %d %s state=%d@," v g.node_names.(v)
        g.state.(v))
    (nodes g);
  List.iter
    (fun e ->
      Format.fprintf fmt "  channel %d: %s -%d/%d-> %s delay=%d@," e
        g.node_names.(g.edge_src.(e))
        g.push.(e) g.pop.(e)
        g.node_names.(g.edge_dst.(e))
        g.delay.(e))
    (edges g);
  Format.fprintf fmt "@]"

(** Streaming-graph substrate: SDF graphs, rate analysis, buffer sizing,
    workload generators, and serialization. *)

module Error = Error
module Binio = Binio
module Rational = Rational
module Graph = Graph
module Validate = Validate
module Rates = Rates
module Minbuf = Minbuf
module Generators = Generators
module Serial = Serial
module Transform = Transform

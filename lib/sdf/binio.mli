(** Framed, checksummed binary files.

    The persistence substrate shared by machine checkpoints
    ({!Ccs_exec.Checkpoint}) and multiprocessor session snapshots
    ({!Ccs_multi.Multi_machine}): an 8-byte magic, a format version, the
    payload length and an FNV-1a 64-bit checksum, followed by the payload.
    All scalars are little-endian 64-bit, so files are portable across
    word sizes.  {!read_file} validates the entire frame before returning
    the payload; truncation, bit corruption and version skew come back as
    structured {!Error.t} values ([Checkpoint_corrupt],
    [Checkpoint_version]) instead of garbage state. *)

(** Payload writer: scalars and arrays appended to a growing buffer. *)
module W : sig
  type t

  val create : unit -> t
  val int : t -> int -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val int_array : t -> int array -> unit
  val float_array : t -> float array -> unit
  val contents : t -> string
end

(** Payload reader: bounds-checked cursor over a payload string.  Any
    overrun or implausible length raises {!Error.Error} with
    [Checkpoint_corrupt] naming the originating file. *)
module R : sig
  type t

  val of_string : path:string -> string -> t
  val int : t -> int
  val float : t -> float
  val string : t -> string
  val int_array : t -> int array
  val float_array : t -> float array

  val expect_end : t -> unit
  (** Fails with [Checkpoint_corrupt] unless the cursor consumed the whole
      payload — catches writer/reader schema drift. *)
end

val write_atomic : ?binary:bool -> path:string -> string -> unit
(** [write_atomic ~path content] writes [content] to a uniquely named
    temp file in [path]'s directory (pid + per-process counter, opened
    with [O_EXCL]) and renames it into place — the atomic-write
    discipline shared by every writer in the repository (checkpoints,
    metrics/log snapshots, bench JSON, trace exports).  Unlike a fixed
    [path ^ ".tmp"], concurrent writers (daemon workers, parallel bench
    runs) can never open each other's temp file or rename a half-written
    rival into place; the last rename wins with a complete document.  The
    temp file is removed on failure.  [binary] (default [false]) selects
    binary mode for the temp channel.
    @raise Sys_error on I/O failure. *)

val write_file : path:string -> magic:string -> version:int -> string -> unit
(** [write_file ~path ~magic ~version payload] frames the payload and
    writes it with {!write_atomic}, so a crash mid-write never leaves a
    torn frame behind.
    @raise Invalid_argument unless [magic] is exactly 8 bytes.
    @raise Sys_error on I/O failure. *)

val read_file :
  path:string -> magic:string -> version:int -> unit -> (string, Error.t) result
(** Read a framed file back, validating magic, version, declared length and
    checksum.  Errors: [Io] (unreadable), [Checkpoint_corrupt] (framing or
    checksum), [Checkpoint_version] (format skew). *)

val fnv1a64 : string -> int
(** The checksum used by the frame (exposed for tests). *)

(** Rate analysis of SDF graphs: gains, rate-matching, repetition vectors.

    Following Definition 1 of the paper, the {e gain} of module [v] is the
    number of times [v] fires per firing of the source, and the gain of a
    channel [(u,v)] is [gain(u) * push(u,v)] — the number of tokens crossing
    the channel per source firing.  Gains are well defined only for
    {e rate-matched} graphs, where the product of [push/pop] ratios is the
    same along every directed path between any fixed pair of vertices. *)

type analysis = {
  node_gain : Rational.t array;  (** [gain(v)], normalized so the gain of
                                     the reference source is 1. *)
  edge_gain : Rational.t array;  (** [gain(e) = gain(src e) * push e]. *)
  repetition : int array;
      (** Smallest positive integral firing vector [q] such that every
          channel is balanced over one period:
          [q.(src e) * push e = q.(dst e) * pop e]. *)
  period_inputs : int;
      (** Number of source firings in one period, [q.(source)]. *)
}

val analyze : Graph.t -> (analysis, string) result
(** Full rate analysis.  Returns [Error] with a human-readable reason when
    the graph is not rate-matched (inconsistent rates) or not connected
    (gains would be ambiguous across components). *)

val analyze_checked : Graph.t -> (analysis, Error.t) result
(** Like {!analyze} with a structured error: [Rate_inconsistent] names the
    witness module and its two conflicting gains; [Disconnected] counts
    reachable modules. *)

val analyze_exn : Graph.t -> analysis
(** @raise Graph.Invalid_graph when {!analyze} would return [Error]. *)

val is_rate_matched : Graph.t -> bool

val gain : analysis -> Graph.node -> Rational.t
val edge_gain : analysis -> Graph.edge -> Rational.t

val granularity : Graph.t -> analysis -> at_least:int -> int
(** [granularity g a ~at_least] is the smallest batch size [T >= at_least]
    (in source firings… see below) such that for every channel [e],
    [T * edge_gain e] is integral and divisible by both [push e] and
    [pop e]; equivalently the smallest [T >= at_least] with [T * gain v]
    integral for every module [v].  Scheduling at a granularity of [T]
    source inputs lets all progeny of the batch drain through the graph with
    every module firing an integral number of times (Section 3,
    "Scheduling inhomogeneous graphs"). *)

val firings_per_batch : analysis -> t:int -> Graph.node -> int
(** [firings_per_batch a ~t v] is [t * gain v], the number of firings of [v]
    required to process a batch of [t] source firings.
    @raise Invalid_argument if the product is not integral (i.e. [t] is not
    a multiple of the granularity). *)

val tokens_per_batch : analysis -> t:int -> Graph.edge -> int
(** [tokens_per_batch a ~t e] is [t * edge_gain e], the number of tokens
    crossing channel [e] during a batch of [t] source firings.
    @raise Invalid_argument if not integral. *)

let duplicates g =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun v ->
      let name = Graph.node_name g v in
      if Hashtbl.mem seen name then
        if Hashtbl.find seen name then None
        else begin
          Hashtbl.replace seen name true;
          Some (Error.Duplicate_module { name })
        end
      else begin
        Hashtbl.add seen name false;
        None
      end)
    (Graph.nodes g)

let graph g =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  List.iter add (duplicates g);
  (match Graph.sources g with
  | [] | [ _ ] -> ()
  | nodes ->
      add (Error.Multiple_sources { nodes = List.map (Graph.node_name g) nodes }));
  (match Graph.sinks g with
  | [] | [ _ ] -> ()
  | nodes ->
      add (Error.Multiple_sinks { nodes = List.map (Graph.node_name g) nodes }));
  (match Rates.analyze_checked g with Ok _ -> () | Error e -> add e);
  List.rev !errs

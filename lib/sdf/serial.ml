let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Graph.name g));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s (%d)\"];\n" v (Graph.node_name g v)
           (Graph.state g v)))
    (Graph.nodes g);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d/%d\"];\n" (Graph.src g e)
           (Graph.dst g e) (Graph.push g e) (Graph.pop g e)))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_text g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s\n" (Graph.name g));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "module %s %d\n" (Graph.node_name g v)
           (Graph.state g v)))
    (Graph.nodes g);
  List.iter
    (fun e ->
      let d = Graph.delay g e in
      Buffer.add_string buf
        (Printf.sprintf "channel %s %s %d %d%s\n"
           (Graph.node_name g (Graph.src g e))
           (Graph.node_name g (Graph.dst g e))
           (Graph.push g e) (Graph.pop g e)
           (if d = 0 then "" else Printf.sprintf " %d" d)))
    (Graph.edges g);
  Buffer.contents buf

let parse text =
  (* Pre-scan for the graph name so the builder is created under it. *)
  let pre_name =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun w -> w <> "")
           with
           | [ "graph"; n ] -> Some n
           | _ -> None)
  in
  let b = Graph.Builder.create ?name:pre_name () in
  let named = Hashtbl.create 16 in
  let nedges = ref 0 in
  let graph_name = ref None in
  let at lineno err = Result.error (Error.At_line { line = lineno; err }) in
  let error lineno fmt =
    Format.kasprintf
      (fun s -> Result.error (Error.Parse { line = lineno; reason = s }))
      fmt
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> go (lineno + 1) rest
        | [ "graph"; n ] ->
            graph_name := Some n;
            go (lineno + 1) rest
        | [ "module"; n; st ] -> (
            match int_of_string_opt st with
            | None -> error lineno "bad state size %S" st
            | Some st ->
                if Hashtbl.mem named n then
                  at lineno (Error.Duplicate_module { name = n })
                else if st < 0 then
                  at lineno (Error.Negative_state { node = n; state = st })
                else begin
                  Hashtbl.add named n (Graph.Builder.add_module b ~state:st n);
                  go (lineno + 1) rest
                end)
        | "channel" :: s :: d :: pu :: po :: tl -> (
            let delay =
              match tl with
              | [] -> Some 0
              | [ x ] -> int_of_string_opt x
              | _ -> None
            in
            match
              ( Hashtbl.find_opt named s,
                Hashtbl.find_opt named d,
                int_of_string_opt pu,
                int_of_string_opt po,
                delay )
            with
            | Some src, Some dst, Some push, Some pop, Some delay ->
                let e = !nedges in
                if push <= 0 || pop <= 0 then
                  at lineno
                    (Error.Nonpositive_rate { edge = e; src = s; dst = d; push; pop })
                else if delay < 0 then
                  at lineno
                    (Error.Negative_delay { edge = e; src = s; dst = d; delay })
                else begin
                  ignore
                    (Graph.Builder.add_channel b ~delay ~src ~dst ~push ~pop ());
                  incr nedges;
                  go (lineno + 1) rest
                end
            | None, _, _, _, _ ->
                at lineno (Error.Unknown_module { name = s })
            | _, None, _, _, _ ->
                at lineno (Error.Unknown_module { name = d })
            | _ -> error lineno "bad channel line")
        | w :: _ -> error lineno "unknown directive %S" w)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
      ignore !graph_name;
      match Graph.Builder.build_result b with
      | Ok g -> Ok g
      | Error (e :: _) -> Result.error e
      | Error [] -> assert false)

let parse_exn text =
  match parse text with
  | Ok g -> g
  | Error e -> raise (Graph.Invalid_graph (Error.to_string e))

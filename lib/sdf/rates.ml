module Q = Rational

type analysis = {
  node_gain : Q.t array;
  edge_gain : Q.t array;
  repetition : int array;
  period_inputs : int;
}

(* Propagate gains by BFS over the underlying undirected graph: crossing a
   channel (u,v) forward multiplies the gain by push/pop; crossing it
   backward divides.  Any disagreement on an already-labelled node means the
   graph is not rate-matched. *)
let reachable_undirected g =
  let n = Graph.num_nodes g in
  if n = 0 then 0
  else begin
    let seen = Array.make n false in
    let stack = Stack.create () in
    Stack.push 0 stack;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      let visit w =
        if not seen.(w) then begin
          seen.(w) <- true;
          incr count;
          Stack.push w stack
        end
      in
      List.iter (fun e -> visit (Graph.dst g e)) (Graph.out_edges g v);
      List.iter (fun e -> visit (Graph.src g e)) (Graph.in_edges g v)
    done;
    !count
  end

let analyze_checked g =
  let n = Graph.num_nodes g in
  if not (Graph.is_connected g) then
    Result.error
      (Error.Disconnected { reachable = reachable_undirected g; total = n })
  else begin
    let gain = Array.make n None in
    let start =
      match Graph.sources g with v :: _ -> v | [] -> assert false
    in
    gain.(start) <- Some Q.one;
    let queue = Queue.create () in
    Queue.add start queue;
    let consistent = ref None in
    let set v q =
      match gain.(v) with
      | None ->
          gain.(v) <- Some q;
          Queue.add v queue
      | Some q' ->
          if not (Q.equal q q') then
            consistent :=
              Some
                (Error.Rate_inconsistent
                   {
                     node = Graph.node_name g v;
                     gain_a = Q.to_string q';
                     gain_b = Q.to_string q;
                   })
    in
    while not (Queue.is_empty queue) && !consistent = None do
      let v = Queue.pop queue in
      let gv = Option.get gain.(v) in
      List.iter
        (fun e ->
          let w = Graph.dst g e in
          let r = Q.make (Graph.push g e) (Graph.pop g e) in
          set w (Q.mul gv r))
        (Graph.out_edges g v);
      List.iter
        (fun e ->
          let u = Graph.src g e in
          let r = Q.make (Graph.pop g e) (Graph.push g e) in
          set u (Q.mul gv r))
        (Graph.in_edges g v)
    done;
    match !consistent with
    | Some err -> Result.error err
    | None ->
        let node_gain = Array.map Option.get gain in
        let m = Graph.num_edges g in
        let edge_gain =
          Array.init m (fun e ->
              Q.mul_int node_gain.(Graph.src g e) (Graph.push g e))
        in
        (* Repetition vector: scale gains to the smallest integral vector. *)
        let denom_lcm =
          Array.fold_left (fun acc q -> Q.lcm acc (Q.den q)) 1 node_gain
        in
        let scaled =
          Array.map (fun q -> Q.to_int_exn (Q.mul_int q denom_lcm)) node_gain
        in
        let num_gcd = Array.fold_left Q.gcd 0 scaled in
        let repetition = Array.map (fun x -> x / num_gcd) scaled in
        let period_inputs =
          match Graph.sources g with
          | [ s ] -> repetition.(s)
          | _ -> repetition.(start)
        in
        Ok { node_gain; edge_gain; repetition; period_inputs }
  end

let analyze g = Result.map_error Error.to_string (analyze_checked g)

let analyze_exn g =
  match analyze g with
  | Ok a -> a
  | Error msg -> raise (Graph.Invalid_graph msg)

let is_rate_matched g = Result.is_ok (analyze g)
let gain a v = a.node_gain.(v)
let edge_gain a e = a.edge_gain.(e)

let granularity _g a ~at_least =
  (* T must be a multiple of lcm over nodes of den(gain v); then every
     T * gain v is integral, which implies every T * edge_gain e is integral
     and divisible by push (= T*gain(src) firings of src) and pop. *)
  let l =
    Array.fold_left (fun acc q -> Q.lcm acc (Q.den q)) 1 a.node_gain
  in
  let k = Stdlib.max 1 ((Stdlib.max 1 at_least + l - 1) / l) in
  k * l

let firings_per_batch a ~t v =
  let q = Q.mul_int a.node_gain.(v) t in
  if not (Q.is_integer q) then
    invalid_arg "Rates.firings_per_batch: t is not a granularity multiple"
  else Q.to_int_exn q

let tokens_per_batch a ~t e =
  let q = Q.mul_int a.edge_gain.(e) t in
  if not (Q.is_integer q) then
    invalid_arg "Rates.tokens_per_batch: t is not a granularity multiple"
  else Q.to_int_exn q

(** Textual serialization of streaming graphs.

    Two formats:
    - {!to_dot}: Graphviz DOT export for visualization (one-way).
    - a line-oriented format readable back by {!parse}, used by the
      [ccsched] CLI:

    {v
    graph NAME
    module NAME STATE
    channel SRC_NAME DST_NAME PUSH POP [DELAY]
    v}

    Blank lines and [#]-comments are ignored. *)

val to_dot : Graph.t -> string
(** Graphviz representation; modules are labelled [name (state)], channels
    [push/pop]. *)

val to_text : Graph.t -> string
(** Round-trippable text form ({!parse} recovers an equal graph). *)

val parse : string -> (Graph.t, Error.t) result
(** Parse the text form.  Line-level defects (syntax, duplicate or unknown
    module names, non-positive rates, negative delays) come back wrapped in
    [Error.At_line] with the offending line number; whole-graph defects
    found at build time (dangling endpoints, deadlock cycles, empty graph)
    come back unwrapped.  [Error.to_string] renders the former as the
    classic ["line N: ..."] message. *)

val parse_exn : string -> Graph.t
(** @raise Graph.Invalid_graph on parse failure. *)

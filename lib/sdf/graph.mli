(** Synchronous dataflow (SDF) streaming graphs.

    A streaming application is a directed acyclic multigraph whose vertices
    are {e modules} (computation kernels with a fixed state size) and whose
    edges are {e channels} (FIFO queues).  Each channel [(u, v)] carries two
    fixed integral rates: [push] — the number of tokens [u] produces on the
    channel each time it fires — and [pop] — the number of tokens [v]
    consumes from it each time it fires.  Channels may carry initial tokens
    ({e delays}).  This is exactly the model of Section 2 of the paper
    (following Lee and Messerschmitt's synchronous dataflow).

    Graphs are immutable once built; construct them through {!Builder}. *)

type node = int
(** Module identifier: dense indices [0 .. num_nodes - 1] in insertion
    order. *)

type edge = int
(** Channel identifier: dense indices [0 .. num_edges - 1] in insertion
    order. *)

type t

exception Invalid_graph of string
(** Raised by {!Builder.build} and accessors on malformed graphs (cyclic,
    non-positive rates, dangling endpoints, ...). *)

(** {1 Construction} *)

module Builder : sig
  type graph := t

  type t

  val create : ?name:string -> unit -> t

  val add_module : t -> ?state:int -> string -> node
  (** [add_module b name ~state] registers a module whose state occupies
      [state] memory words (default [1]).  State must be non-negative. *)

  val add_channel :
    t -> ?delay:int -> src:node -> dst:node -> push:int -> pop:int -> unit ->
    edge
  (** [add_channel b ~src ~dst ~push ~pop ()] registers a channel from [src]
      to [dst].  [push] and [pop] must be positive; [delay] (initial tokens,
      default [0]) must be non-negative. *)

  val check : t -> Error.t list
  (** Every structural defect in the builder's current contents: empty
      graph, dangling endpoints, self-loops, non-positive rates, negative
      delays or state sizes, and directed cycles (reported with the cycle's
      module names and total delay — a zero-delay cycle is a deadlock by
      insufficient delay).  Empty means {!build} will succeed. *)

  val build_result : t -> (graph, Error.t list) result
  (** Freezes the builder, or returns {e all} defects {!check} finds. *)

  val build : t -> graph
  (** Freezes the builder.
      @raise Invalid_graph with the first {!check} defect if the graph is
      empty, contains a cycle, has an edge endpoint out of range, or
      violates rate positivity. *)
end

(** {1 Size and naming} *)

val name : t -> string
val num_nodes : t -> int
val num_edges : t -> int
val node_name : t -> node -> string
val node_of_name : t -> string -> node
(** @raise Not_found if no module has that name. *)

val edge_name : t -> edge -> string
(** ["src->dst#e"] — the channel label used in diagnostics. *)

(** {1 Per-module accessors} *)

val state : t -> node -> int
(** State size [s(v)] in words. *)

val total_state : t -> int
(** Sum of all module state sizes. *)

val in_edges : t -> node -> edge list
(** Incoming channels of a module, in insertion order. *)

val out_edges : t -> node -> edge list
(** Outgoing channels of a module, in insertion order. *)

val degree : t -> node -> int
(** Total number of incident channels. *)

(** {1 Per-channel accessors} *)

val src : t -> edge -> node
val dst : t -> edge -> node

val push : t -> edge -> int
(** Tokens produced per firing of [src] — the paper's [out(u,v)]. *)

val pop : t -> edge -> int
(** Tokens consumed per firing of [dst] — the paper's [in(u,v)]. *)

val delay : t -> edge -> int
(** Initial tokens on the channel. *)

(** {1 Structure} *)

val nodes : t -> node list
val edges : t -> edge list

val sources : t -> node list
(** Modules with no incoming channel. *)

val sinks : t -> node list
(** Modules with no outgoing channel. *)

val source : t -> node
(** The unique source. @raise Invalid_graph if not unique. *)

val sink : t -> node
(** The unique sink. @raise Invalid_graph if not unique. *)

val topological_order : t -> node array
(** Nodes in a topological order (sources first).  Stable for identical
    graphs. *)

val topo_rank : t -> int array
(** [rank.(v)] is [v]'s position in {!topological_order}. *)

val precedes : t -> node -> node -> bool
(** [precedes g u v] iff there is a directed path from [u] to [v] — the
    paper's [u ≺ v] (reflexive: [precedes g u u = true]). *)

val is_pipeline : t -> bool
(** True iff the graph is a single directed chain (every module has at most
    one input and one output channel, and the graph is connected). *)

val is_homogeneous : t -> bool
(** True iff every channel has [push = pop = 1] (the paper's homogeneous
    dataflow). *)

val is_connected : t -> bool
(** True iff the underlying undirected graph is connected. *)

(** {1 Transformation} *)

val map_state : t -> f:(node -> int -> int) -> t
(** [map_state g ~f] is [g] with each module's state size replaced by
    [f v (state g v)]. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line-per-element textual dump, for debugging. *)

(* Framed, checksummed binary files for checkpoints and session snapshots.

   Layout: an 8-byte magic naming the file kind, a format-version int, the
   payload length, an FNV-1a 64-bit checksum of the payload, then the
   payload itself.  Every scalar is a little-endian 64-bit integer, so the
   format is independent of the host's word size.  [read_file] re-validates
   the whole frame — magic, version, declared length, checksum — before
   handing the payload to the caller, so truncation and bit corruption are
   caught at the file boundary rather than as garbage state downstream. *)

let header_bytes = 32 (* magic 8 + version 8 + length 8 + checksum 8 *)

let fnv1a64 s =
  let h = ref (-0x340d631b7bdddcdb) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 1024
  let int b i = Buffer.add_int64_le b (Int64.of_int i)
  let float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    int b (Array.length a);
    Array.iter (int b) a

  let float_array b a =
    int b (Array.length a);
    Array.iter (float b) a

  let contents = Buffer.contents
end

module R = struct
  type t = { path : string; data : string; mutable pos : int }

  let corrupt t reason = Error.fail (Error.Checkpoint_corrupt { path = t.path; reason })
  let of_string ~path data = { path; data; pos = 0 }

  let take t n =
    if n < 0 || t.pos > String.length t.data - n then
      corrupt t
        (Printf.sprintf "payload underrun at byte %d (want %d of %d)" t.pos n
           (String.length t.data));
    let p = t.pos in
    t.pos <- p + n;
    p

  let int t =
    let p = take t 8 in
    Int64.to_int (String.get_int64_le t.data p)

  let float t =
    let p = take t 8 in
    Int64.float_of_bits (String.get_int64_le t.data p)

  let string t =
    let n = int t in
    if n < 0 then corrupt t "negative string length";
    let p = take t n in
    String.sub t.data p n

  let int_array t =
    let n = int t in
    if n < 0 || n > (String.length t.data - t.pos) / 8 then
      corrupt t "implausible array length";
    Array.init n (fun _ -> int t)

  let float_array t =
    let n = int t in
    if n < 0 || n > (String.length t.data - t.pos) / 8 then
      corrupt t "implausible array length";
    Array.init n (fun _ -> float t)

  let expect_end t =
    if t.pos <> String.length t.data then corrupt t "trailing bytes in payload"
end

let check_magic magic =
  if String.length magic <> 8 then
    invalid_arg "Binio: magic must be exactly 8 bytes"

(* Write-to-temp-then-rename.  The temp name must be unique per writer: a
   fixed [path ^ ".tmp"] lets two concurrent writers (daemon workers,
   parallel bench runs) open the same temp file and rename each other's
   half-written bytes into place.  pid + a process-local counter
   disambiguate writers; O_EXCL catches the leftovers of a crashed
   predecessor (we retry with the next counter value rather than truncate
   a file another live writer may be filling). *)
let tmp_counter = ref 0

let write_atomic ?(binary = false) ~path content =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let rec open_tmp attempts =
    incr tmp_counter;
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".%s.%d.%d.tmp" base (Unix.getpid ()) !tmp_counter)
    in
    let flags =
      [ Open_wronly; Open_creat; Open_excl;
        (if binary then Open_binary else Open_text) ]
    in
    match open_out_gen flags 0o644 tmp with
    | oc -> (tmp, oc)
    | exception Sys_error _ when attempts > 0 -> open_tmp (attempts - 1)
  in
  let tmp, oc = open_tmp 16 in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_file ~path ~magic ~version payload =
  check_magic magic;
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_int64_le b (Int64.of_int version);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int64_le b (Int64.of_int (fnv1a64 payload));
  Buffer.add_string b payload;
  write_atomic ~binary:true ~path (Buffer.contents b)

let read_file ~path ~magic ~version () =
  check_magic magic;
  let corrupt reason =
    Result.error (Error.Checkpoint_corrupt { path; reason })
  in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error reason -> Result.error (Error.Io { path; reason })
  | exception End_of_file -> corrupt "truncated while reading"
  | data ->
      if String.length data < header_bytes then
        corrupt
          (Printf.sprintf "file is %d bytes, shorter than the %d-byte header"
             (String.length data) header_bytes)
      else if String.sub data 0 8 <> magic then
        corrupt
          (Printf.sprintf "bad magic %S (expected %S)" (String.sub data 0 8)
             magic)
      else
        let found = Int64.to_int (String.get_int64_le data 8) in
        if found <> version then
          Result.error
            (Error.Checkpoint_version { path; found; expected = version })
        else
          let len = Int64.to_int (String.get_int64_le data 16) in
          let sum = Int64.to_int (String.get_int64_le data 24) in
          if len < 0 || len <> String.length data - header_bytes then
            corrupt
              (Printf.sprintf
                 "declared payload of %d bytes, found %d (truncated or \
                  overlong file)"
                 len
                 (String.length data - header_bytes))
          else
            let payload = String.sub data header_bytes len in
            if fnv1a64 payload <> sum then
              corrupt "payload checksum mismatch (bit corruption)"
            else Ok payload

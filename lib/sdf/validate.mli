(** Whole-graph validation of already-built graphs.

    {!Graph.Builder.check} covers defects a graph cannot be built with
    (dangling edges, cycles, non-positive rates); this module lints the
    properties a {e built} graph can still violate, which the schedulers
    otherwise discover as raised exceptions deep in rate analysis. *)

val graph : Graph.t -> Error.t list
(** Defects of a built graph, in a deterministic order:
    - [Duplicate_module] — two modules share a name, so [node_of_name] and
      serialization are ambiguous (one report per name);
    - [Multiple_sources] / [Multiple_sinks] — warnings: schedulers expect a
      unique source and sink (see {!Transform.normalize});
    - the {!Rates.analyze_checked} error, if any: [Disconnected] or
      [Rate_inconsistent] with the witness module and conflicting gains.

    Empty when the graph satisfies every scheduler precondition at this
    layer. *)

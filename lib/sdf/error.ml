type fault_class = Nan_output | Bad_state_arity | Kernel_exception

type channel_state = {
  chan : string;
  edge : int;
  occupied : int;
  capacity : int;
}

type blocked = { node : string; reason : string }

type snapshot = {
  fired : int;
  inputs : int;
  outputs : int;
  channels : channel_state list;
  blocked : blocked list;
}

type t =
  | Io of { path : string; reason : string }
  | Parse of { line : int; reason : string }
  | At_line of { line : int; err : t }
  | Empty_graph
  | Dangling_edge of { edge : int; endpoint : int; num_nodes : int }
  | Degenerate_edge of { edge : int; node : string }
  | Nonpositive_rate of {
      edge : int;
      src : string;
      dst : string;
      push : int;
      pop : int;
    }
  | Negative_delay of { edge : int; src : string; dst : string; delay : int }
  | Negative_state of { node : string; state : int }
  | Duplicate_module of { name : string }
  | Unknown_module of { name : string }
  | Deadlock_cycle of { cycle : string list; total_delay : int }
  | Rate_inconsistent of { node : string; gain_a : string; gain_b : string }
  | Disconnected of { reachable : int; total : int }
  | Multiple_sources of { nodes : string list }
  | Multiple_sinks of { nodes : string list }
  | Not_well_ordered of { components : int list; witness : string }
  | Component_overflow of {
      component : int;
      state : int;
      bound : int;
      members : string list;
    }
  | Degree_exceeded of { component : int; degree : int; bound : int }
  | Capacity_below_rate of {
      edge : int;
      src : string;
      dst : string;
      capacity : int;
      required : int;
    }
  | Capacity_infeasible of { reason : string }
  | Cache_overflow of { component : int; state : int; cache_words : int }
  | Cache_config_invalid of { field : string; value : int; reason : string }
  | Schedule_illegal of {
      node : string;
      edge : string;
      at_firing : int;
      kind : [ `Underflow | `Overflow ];
    }
  | Plan_invalid of { plan : string; reason : string }
  | Deadlocked of { plan : string; detail : string; snapshot : snapshot }
  | Budget_exhausted of { plan : string; budget : int; snapshot : snapshot }
  | Fault of { node : string; fault : fault_class; detail : string }
  | Failure_msg of { context : string; reason : string }
  | Request_invalid of { reason : string }
  | Deadline_exceeded of { stage : string; budget_ms : int }
  | Overloaded of { inflight : int; limit : int; retry_after_ms : int }
  | Checkpoint_corrupt of { path : string; reason : string }
  | Checkpoint_version of { path : string; found : int; expected : int }
  | Checkpoint_mismatch of {
      path : string;
      field : string;
      expected : string;
      found : string;
    }
  | Quarantined of {
      plan : string;
      plan_digest : string option;
      site : string;
      firing : int;
      attempts : int;
      checkpoint : string option;
      cause : t;
    }

exception Error of t

let fail e = raise (Error e)

let fault_class_to_string = function
  | Nan_output -> "nan-output"
  | Bad_state_arity -> "bad-state-arity"
  | Kernel_exception -> "kernel-exception"

let rec code = function
  | Io _ -> "io"
  | Parse _ -> "parse"
  | At_line { err; _ } -> code err
  | Empty_graph -> "empty-graph"
  | Dangling_edge _ -> "dangling-edge"
  | Degenerate_edge _ -> "degenerate-edge"
  | Nonpositive_rate _ -> "nonpositive-rate"
  | Negative_delay _ -> "negative-delay"
  | Negative_state _ -> "negative-state"
  | Duplicate_module _ -> "duplicate-module"
  | Unknown_module _ -> "unknown-module"
  | Deadlock_cycle _ -> "deadlock-cycle"
  | Rate_inconsistent _ -> "rate-inconsistent"
  | Disconnected _ -> "disconnected"
  | Multiple_sources _ -> "multiple-sources"
  | Multiple_sinks _ -> "multiple-sinks"
  | Not_well_ordered _ -> "not-well-ordered"
  | Component_overflow _ -> "component-overflow"
  | Degree_exceeded _ -> "degree-exceeded"
  | Capacity_below_rate _ -> "capacity-below-rate"
  | Capacity_infeasible _ -> "capacity-infeasible"
  | Cache_overflow _ -> "cache-overflow"
  | Cache_config_invalid _ -> "cache-config-invalid"
  | Schedule_illegal _ -> "schedule-illegal"
  | Plan_invalid _ -> "plan-invalid"
  | Deadlocked _ -> "deadlock"
  | Budget_exhausted _ -> "budget-exhausted"
  | Fault { fault; _ } -> "fault-" ^ fault_class_to_string fault
  | Failure_msg _ -> "failure"
  | Request_invalid _ -> "request-invalid"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Overloaded _ -> "overloaded"
  | Checkpoint_corrupt _ -> "checkpoint-corrupt"
  | Checkpoint_version _ -> "checkpoint-version"
  | Checkpoint_mismatch _ -> "checkpoint-mismatch"
  | Quarantined _ -> "quarantined"

let rec severity = function
  | At_line { err; _ } -> severity err
  | Multiple_sources _ | Multiple_sinks _ | Cache_overflow _ -> `Warning
  | _ -> `Error

let pp_names fmt names =
  Format.pp_print_string fmt (String.concat " -> " names)

let pp_snapshot fmt s =
  Format.fprintf fmt
    "@[<v>after %d firings (%d inputs, %d outputs):@,@[<v2>channels:@,%a@]@,\
     @[<v2>blocked modules:@,%a@]@]"
    s.fired s.inputs s.outputs
    (Format.pp_print_list (fun fmt c ->
         Format.fprintf fmt "%-24s %d/%d tokens" c.chan c.occupied c.capacity))
    s.channels
    (Format.pp_print_list (fun fmt b ->
         Format.fprintf fmt "%-16s %s" b.node b.reason))
    s.blocked

let rec pp fmt = function
  | Io { path; reason } -> Format.fprintf fmt "cannot read %s: %s" path reason
  | Parse { line; reason } -> Format.fprintf fmt "line %d: %s" line reason
  | At_line { line; err } -> Format.fprintf fmt "line %d: %a" line pp err
  | Empty_graph -> Format.fprintf fmt "graph has no modules"
  | Dangling_edge { edge; endpoint; num_nodes } ->
      Format.fprintf fmt
        "channel %d is dangling: endpoint %d outside modules 0..%d" edge
        endpoint (num_nodes - 1)
  | Degenerate_edge { edge; node } ->
      Format.fprintf fmt "channel %d is a self-loop on module %s" edge node
  | Nonpositive_rate { edge; src; dst; push; pop } ->
      Format.fprintf fmt
        "channel %d (%s -> %s): rates must be positive (push=%d pop=%d)" edge
        src dst push pop
  | Negative_delay { edge; src; dst; delay } ->
      Format.fprintf fmt "channel %d (%s -> %s): negative delay %d" edge src
        dst delay
  | Negative_state { node; state } ->
      Format.fprintf fmt "module %s: negative state size %d" node state
  | Duplicate_module { name } ->
      Format.fprintf fmt "duplicate module %S" name
  | Unknown_module { name } -> Format.fprintf fmt "unknown module %S" name
  | Deadlock_cycle { cycle; total_delay } ->
      if total_delay = 0 then
        Format.fprintf fmt
          "deadlock: cycle %a carries no initial tokens, so no module on it \
           can ever fire"
          pp_names cycle
      else
        Format.fprintf fmt
          "cycle %a (total delay %d) is not supported: schedules require an \
           acyclic graph"
          pp_names cycle total_delay
  | Rate_inconsistent { node; gain_a; gain_b } ->
      Format.fprintf fmt
        "rates are inconsistent: module %s has gain %s along one path but %s \
         along another"
        node gain_a gain_b
  | Disconnected { reachable; total } ->
      Format.fprintf fmt
        "graph is not connected: only %d of %d modules reachable from module \
         0"
        reachable total
  | Multiple_sources { nodes } ->
      Format.fprintf fmt
        "graph has %d sources (%s); schedulers expect one (run `ccsched \
         normalize`)"
        (List.length nodes) (String.concat ", " nodes)
  | Multiple_sinks { nodes } ->
      Format.fprintf fmt
        "graph has %d sinks (%s); schedulers expect one (run `ccsched \
         normalize`)"
        (List.length nodes) (String.concat ", " nodes)
  | Not_well_ordered { components; witness } ->
      Format.fprintf fmt
        "partition is not well-ordered: components %s form a cycle (witness \
         %s)"
        (String.concat " -> " (List.map (Printf.sprintf "C%d") components))
        witness
  | Component_overflow { component; state; bound; members } ->
      Format.fprintf fmt
        "component C%d holds %d state words, exceeding the bound %d (members: \
         %s)"
        component state bound (String.concat ", " members)
  | Degree_exceeded { component; degree; bound } ->
      Format.fprintf fmt
        "component C%d has %d cross edges, exceeding the degree limit %d"
        component degree bound
  | Capacity_below_rate { edge; src; dst; capacity; required } ->
      Format.fprintf fmt
        "channel %d (%s -> %s): capacity %d admits neither a push nor a pop \
         (needs >= %d)"
        edge src dst capacity required
  | Capacity_infeasible { reason } ->
      Format.fprintf fmt "capacities admit no periodic schedule: %s" reason
  | Cache_overflow { component; state; cache_words } ->
      Format.fprintf fmt
        "component C%d (%d state words) cannot fit a cache of %d words; \
         every firing will thrash"
        component state cache_words
  | Cache_config_invalid { field; value; reason } ->
      Format.fprintf fmt "cache config: %s = %d is invalid: %s" field value
        reason
  | Schedule_illegal { node; edge; at_firing; kind } ->
      Format.fprintf fmt "firing %d (module %s) %s channel %s" at_firing node
        (match kind with
        | `Underflow -> "underflows"
        | `Overflow -> "overflows")
        edge
  | Plan_invalid { plan; reason } ->
      Format.fprintf fmt "plan %s: %s" plan reason
  | Deadlocked { plan; detail; snapshot } ->
      Format.fprintf fmt "plan %s deadlocked: %s@,%a" plan detail pp_snapshot
        snapshot
  | Budget_exhausted { plan; budget; snapshot } ->
      Format.fprintf fmt
        "plan %s exhausted its firing budget of %d without reaching the \
         target@,%a"
        plan budget pp_snapshot snapshot
  | Fault { node; fault; detail } ->
      Format.fprintf fmt "module %s raised a %s fault: %s" node
        (fault_class_to_string fault)
        detail
  | Failure_msg { context; reason } ->
      Format.fprintf fmt "%s: %s" context reason
  | Request_invalid { reason } ->
      Format.fprintf fmt "invalid request: %s" reason
  | Deadline_exceeded { stage; budget_ms } ->
      Format.fprintf fmt
        "request exceeded its %d ms deadline during %s" budget_ms stage
  | Overloaded { inflight; limit; retry_after_ms } ->
      Format.fprintf fmt
        "server overloaded (%d connections in flight, limit %d); retry \
         after %d ms"
        inflight limit retry_after_ms
  | Checkpoint_corrupt { path; reason } ->
      Format.fprintf fmt "checkpoint %s is unusable: %s" path reason
  | Checkpoint_version { path; found; expected } ->
      Format.fprintf fmt
        "checkpoint %s has format version %d; this build reads version %d"
        path found expected
  | Checkpoint_mismatch { path; field; expected; found } ->
      Format.fprintf fmt
        "checkpoint %s was taken under a different %s (checkpoint: %s, \
         current: %s)"
        path field found expected
  | Quarantined { plan; plan_digest; site; firing; attempts; checkpoint; cause }
    ->
      Format.fprintf fmt
        "plan %s%s: site %s quarantined after %d attempt(s) — fault at firing \
         %d%s@,caused by: %a"
        plan
        (match plan_digest with
        | Some d -> Printf.sprintf " (digest %s)" d
        | None -> "")
        site attempts firing
        (match checkpoint with
        | Some p -> Printf.sprintf " (replay from checkpoint %s)" p
        | None -> " (no checkpoint available for replay)")
        pp cause

let to_string e = Format.asprintf "%a" pp e

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Ccs.Error.Error(%s)" (to_string e))
    | _ -> None)

let protect f =
  match f () with
  | v -> Ok v
  | exception Error e -> Result.error e
  | exception Invalid_argument msg ->
      Result.error (Failure_msg { context = "invalid argument"; reason = msg })
  | exception Failure msg ->
      Result.error (Failure_msg { context = "failure"; reason = msg })
  | exception Sys_error msg -> Result.error (Io { path = ""; reason = msg })

(** Structured errors for the whole scheduling/execution stack.

    The paper's guarantees (Lemmas 4 and 8) only hold for inputs satisfying
    preconditions — consistent SDF rates, well-ordered [c]-bounded
    partitions, channel capacities at least the maximum rate.  Every
    validator in the stack reports violations as a value of {!t}: a variant
    naming the defect class plus enough context (module/channel/component
    names, expected-versus-actual values) to act on the report without a
    stack trace.  {!code} gives each defect class a stable kebab-case tag
    used by [ccsched check] and by tests. *)

type fault_class =
  | Nan_output  (** A kernel produced non-finite output tokens. *)
  | Bad_state_arity
      (** A kernel's state has the wrong number of words for its module. *)
  | Kernel_exception  (** A kernel raised during {e fire}. *)

type channel_state = {
  chan : string;  (** ["src->dst#e"]. *)
  edge : int;
  occupied : int;
  capacity : int;
}

type blocked = { node : string; reason : string }

type snapshot = {
  fired : int;
  inputs : int;
  outputs : int;
  channels : channel_state list;
  blocked : blocked list;  (** Every non-fireable module and why. *)
}
(** Diagnostic machine state captured when execution cannot proceed. *)

type t =
  | Io of { path : string; reason : string }
  | Parse of { line : int; reason : string }
  | At_line of { line : int; err : t }
      (** Wraps a structural defect with the input line it came from. *)
  | Empty_graph
  | Dangling_edge of { edge : int; endpoint : int; num_nodes : int }
  | Degenerate_edge of { edge : int; node : string }  (** Self-loop. *)
  | Nonpositive_rate of {
      edge : int;
      src : string;
      dst : string;
      push : int;
      pop : int;
    }
  | Negative_delay of { edge : int; src : string; dst : string; delay : int }
  | Negative_state of { node : string; state : int }
  | Duplicate_module of { name : string }
  | Unknown_module of { name : string }
  | Deadlock_cycle of { cycle : string list; total_delay : int }
      (** A directed cycle; with [total_delay = 0] no module on it can ever
          fire (deadlock by insufficient delay). *)
  | Rate_inconsistent of { node : string; gain_a : string; gain_b : string }
      (** The witness module whose gain differs along two paths. *)
  | Disconnected of { reachable : int; total : int }
  | Multiple_sources of { nodes : string list }  (** Warning. *)
  | Multiple_sinks of { nodes : string list }  (** Warning. *)
  | Not_well_ordered of { components : int list; witness : string }
      (** Component cycle in the contracted graph plus a witness edge. *)
  | Component_overflow of {
      component : int;
      state : int;
      bound : int;
      members : string list;
    }  (** c-boundedness violation (Definition 2). *)
  | Degree_exceeded of { component : int; degree : int; bound : int }
      (** Degree-limited violation (Lemma 8). *)
  | Capacity_below_rate of {
      edge : int;
      src : string;
      dst : string;
      capacity : int;
      required : int;
    }  (** A buffer that admits neither a push nor a pop. *)
  | Capacity_infeasible of { reason : string }
      (** No periodic schedule exists under the given capacities. *)
  | Cache_overflow of { component : int; state : int; cache_words : int }
      (** Warning: a component bigger than the whole cache. *)
  | Cache_config_invalid of { field : string; value : int; reason : string }
      (** A cache configuration the simulator cannot honestly model: block
          size not dividing capacity, more ways than blocks, zero or
          negative capacity.  Reported by [ccsched check] before the deep
          layers would trip on it. *)
  | Schedule_illegal of {
      node : string;
      edge : string;
      at_firing : int;
      kind : [ `Underflow | `Overflow ];
    }
  | Plan_invalid of { plan : string; reason : string }
  | Deadlocked of { plan : string; detail : string; snapshot : snapshot }
  | Budget_exhausted of { plan : string; budget : int; snapshot : snapshot }
  | Fault of { node : string; fault : fault_class; detail : string }
  | Failure_msg of { context : string; reason : string }
      (** Wrapper for legacy string errors not yet given structure. *)
  | Request_invalid of { reason : string }
      (** A malformed request to the scheduling service: unparseable JSON,
          a missing/mistyped field, or an unknown operation.  The daemon
          answers these with a structured error response and keeps the
          connection open. *)
  | Deadline_exceeded of { stage : string; budget_ms : int }
      (** A serve request blew its per-request time budget — during
          [stage] ("read", "plan" or "write").  Slow clients and runaway
          planner runs both land here: the daemon answers with this
          structured error and reclaims the worker instead of hanging. *)
  | Overloaded of { inflight : int; limit : int; retry_after_ms : int }
      (** The daemon is at its in-flight connection limit and is shedding
          rather than queueing.  [retry_after_ms] is the backoff hint the
          response carries; requests are idempotent by plan key, so a
          retry is always safe. *)
  | Checkpoint_corrupt of { path : string; reason : string }
      (** A checkpoint file that fails framing validation: bad magic,
          truncation, checksum mismatch, or a malformed payload. *)
  | Checkpoint_version of { path : string; found : int; expected : int }
      (** A checkpoint written by an incompatible format version. *)
  | Checkpoint_mismatch of {
      path : string;
      field : string;
      expected : string;
      found : string;
    }
      (** A structurally valid checkpoint taken under a different [field]
          (graph, cache configuration, capacities, plan, observers) than
          the run trying to resume from it. *)
  | Quarantined of {
      plan : string;
      plan_digest : string option;
          (** {!Ccs_sched.Plan.id} of the plan that was live when the fault
              hit — after an adaptation this names the {e adapted} plan,
              not the one the run started with. *)
      site : string;  (** Module/fault-class (or error code) that failed. *)
      firing : int;  (** Machine firing count at the point of failure. *)
      attempts : int;  (** Retries spent before giving up. *)
      checkpoint : string option;
          (** Last good checkpoint, for offline replay of the failure. *)
      cause : t;
    }
      (** The supervisor's terminal verdict: a site faulted
          deterministically (same site, same firing index, twice in a row)
          or exhausted the retry budget. *)

exception Error of t

val fail : t -> 'a
(** [fail e] raises {!Error}[ e]. *)

val code : t -> string
(** Stable kebab-case defect-class tag, e.g. ["rate-inconsistent"],
    ["capacity-below-rate"].  [At_line] is transparent. *)

val severity : t -> [ `Error | `Warning ]
(** Warnings ([multiple-sources], [multiple-sinks], [cache-overflow]) are
    conditions the stack can run despite; everything else violates a
    precondition outright. *)

val fault_class_to_string : fault_class -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching {!Error}, [Invalid_argument], [Failure] and
    [Sys_error] into structured errors.  ({!Graph.Invalid_graph} is caught
    by callers that see the [Graph] module; this module sits below it.) *)

module Graph = Ccs_sdf.Graph
module Error = Ccs_sdf.Error
module Plan = Ccs_sched.Plan
module Schedule = Ccs_sched.Schedule
module Machine = Ccs_exec.Machine
module Layout = Ccs_cache.Layout

type io = {
  edge : Graph.edge;
  base : int;
  cap : int;
  rate : int;
  delay : int;
}

type kind =
  | Counter
  | Checksum
  | Mix of { widx : int array; woff : int array }
  | Fill

type node_spec = {
  node : Graph.node;
  name : string;
  kind : kind;
  state_base : int;
  state_words : int;
  ins : io array;
  outs : io array;
  is_sink : bool;
}

type t = {
  graph : Graph.t;
  plan_name : string;
  period : Schedule.t;
  period_outputs : int;
  block_words : int;
  nodes : node_spec array;
  total_words : int;
  sinks : Graph.node array;
}

let lower g ~plan ~cache =
  let errs = ref [] in
  let invalid reason =
    errs :=
      Error.Plan_invalid { plan = plan.Plan.name; reason } :: !errs
  in
  let period =
    match plan.Plan.period with
    | Some p -> Some (Schedule.compress p)
    | None ->
        invalid "dynamic plan has no static period to compile";
        None
  in
  let caps = plan.Plan.capacities in
  (* Zero-capacity channels used to be silently clamped to 1-slot rings
     whose pushes overwrite; reject them structurally instead.  (They also
     fail [Plan.validate]'s rate floor, but the clamp hid that from the
     emitter's callers.) *)
  if Array.length caps = Graph.num_edges g then
    List.iter
      (fun e ->
        if caps.(e) <= 0 then
          invalid
            (Printf.sprintf "channel %s has capacity %d; buffers need >= 1"
               (Graph.edge_name g e) caps.(e)))
      (Graph.edges g);
  (match Plan.validate g plan with
  | Ok () -> ()
  | Error es ->
      errs :=
        List.rev_append
          (List.filter (fun e -> Error.severity e = `Error) es)
          !errs);
  match (period, List.rev !errs) with
  | _, (_ :: _ as errs) -> Error errs
  | None, [] -> assert false (* a missing period is itself a finding *)
  | Some period, [] ->
      let layout = Plan.layout g ~cache plan in
      let io_of e rate =
        let r = layout.Machine.l_buffers.(e) in
        {
          edge = e;
          base = r.Layout.base;
          cap = r.Layout.length;
          rate;
          delay = Graph.delay g e;
        }
      in
      let sinks = Array.of_list (Graph.sinks g) in
      let is_sink = Array.make (Graph.num_nodes g) false in
      Array.iter (fun v -> is_sink.(v) <- true) sinks;
      let nodes =
        Array.init (Graph.num_nodes g) (fun v ->
            let ins =
              Array.of_list
                (List.map (fun e -> io_of e (Graph.pop g e)) (Graph.in_edges g v))
            in
            let outs =
              Array.of_list
                (List.map
                   (fun e -> io_of e (Graph.push g e))
                   (Graph.out_edges g v))
            in
            let kind =
              if Array.length ins = 0 then Counter
              else if Array.length outs = 0 then Checksum
              else begin
                (* The concatenated pop window, slot by slot: inputs in
                   [in_edges] order, oldest token first within each. *)
                let n = Array.fold_left (fun a i -> a + i.rate) 0 ins in
                if n = 0 then Fill
                else begin
                  let widx = Array.make n 0 and woff = Array.make n 0 in
                  let j = ref 0 in
                  Array.iteri
                    (fun i io ->
                      for o = 0 to io.rate - 1 do
                        widx.(!j) <- i;
                        woff.(!j) <- o;
                        incr j
                      done)
                    ins;
                  Mix { widx; woff }
                end
              end
            in
            let st = layout.Machine.l_states.(v) in
            {
              node = v;
              name = Graph.node_name g v;
              kind;
              state_base = st.Layout.base;
              state_words = st.Layout.length;
              ins;
              outs;
              is_sink = is_sink.(v);
            })
      in
      let counts = Schedule.fire_counts ~num_nodes:(Graph.num_nodes g) period in
      let period_outputs =
        Array.fold_left (fun a v -> a + counts.(v)) 0 sinks
      in
      Ok
        {
          graph = g;
          plan_name = plan.Plan.name;
          period;
          period_outputs;
          block_words = cache.Ccs_cache.Cache.block_words;
          nodes;
          total_words = layout.Machine.l_total_words;
          sinks;
        }

let exn g ~plan ~cache =
  match lower g ~plan ~cache with
  | Ok t -> t
  | Error (e :: _) -> Error.fail e
  | Error [] -> assert false

(** Compiler backend: lower a scheduled streaming program to a flat
    firing program and run it in-process ({!Compiled}) or emit it as
    standalone OCaml ({!Codegen}). *)

module Lowering = Lowering
module Compiled = Compiled
module Codegen = Codegen

(** The in-process compiled execution backend.

    A {!Lowering.t} compiled to closures over one flat [Bigarray]: every
    module's state and every channel's ring buffer live at the exact word
    offsets the interpreted {!Ccs_exec.Machine} would use, each module's
    fire body is specialized with its pop/push/offset constants baked in,
    and the compressed period becomes nested counted loops.  No firing-rule
    checks run at execution time — the lowering only accepts plans whose
    period {!Ccs_sched.Plan.validate} certified token-legal, so the
    program is branch-free by proof rather than by optimism.

    Equivalence contract (checked by the differential suite and bench
    E23): for any lowered plan, sink checksums and output counts are
    bit-identical to {!Ccs_runtime.Engine} running
    {!Codegen.codegen_semantics} kernels, and with [record_trace] the
    word-access trace replayed through {!Ccs_exec.Replay} yields the same
    miss count as the interpreted machine's own cache. *)

type t

val create : ?record_trace:bool -> Lowering.t -> t
(** Compile the lowering.  With [record_trace] every fired span records
    the same block-granular addresses {!Ccs_exec.Machine} traces (state
    span, then input rings, then output rings, in firing order); leave it
    off for timing runs. *)

val run_periods : t -> int -> unit
(** Execute the compressed period [n] times. *)

val run : t -> target_outputs:int -> unit
(** Run whole periods until at least [target_outputs] sink firings have
    accumulated (resumable, like a {!Ccs_sched.Plan.driver}).
    @raise Invalid_argument if the period fires no sink while outputs are
    still owed. *)

val outputs : t -> int
(** Sink firings so far (summed over all sinks). *)

val checksum : t -> float
(** Sum of the per-sink checksum cells, in {!Ccs_sdf.Graph.sinks} order. *)

val sink_checksums : t -> float array
(** Per-sink checksum cells, aligned with [lowering.sinks]. *)

val cell : t -> Ccs_sdf.Graph.node -> float
(** A module's accumulator cell.  Accumulators live outside the simulated
    address space: a module's state words are charged to the cache (and
    traced) exactly as the machine charges them, but the counter/checksum
    value itself is kept off the hot path. *)

val trace : t -> int array
(** The recorded word-address trace.
    @raise Invalid_argument unless built with [record_trace]. *)

val lowering : t -> Lowering.t

(** Code generation: compile a scheduled streaming program to standalone
    OCaml source.

    This is the compiler-backend step a production streaming system (e.g.
    StreamIt, whose cache optimizations the paper discusses) performs after
    scheduling: the static looped schedule becomes straight-line code with
    nested loops, channels become ring buffers carved out of one flat data
    array at the layout offsets the simulator charges for, and module
    state becomes cells in the same array.  The emitted program is
    dependency-free OCaml, runnable with [ocaml prog.ml <periods>] (or
    compilable with ocamlopt), and prints the total sink firing count and
    a checksum summed across {e all} sinks so generated code can be
    differentially tested against the in-process {!Ccs_runtime.Engine} and
    the {!Compiled} backend.

    The emitter shares its middle end with {!Compiled}: both consume
    {!Lowering.lower}, so the generated source executes the same
    specialized fire bodies the in-process backend runs.  Module bodies
    follow the {!codegen_semantics} conventions — sources emit a counter
    stream, sinks accumulate a checksum, everything else applies the fixed
    mixing function [0.5·x + 0.25] — so for any graph the generated
    program, [Compiled], and [Engine] with [codegen_semantics] compute
    identical streams.  Users wanting real kernels replace the marked
    [fire_N] function bodies. *)

val emit :
  ?cache:Ccs_cache.Cache.config ->
  Ccs_sdf.Graph.t ->
  plan:Ccs_sched.Plan.t ->
  string
(** Emit the program text.  [cache] fixes the layout's block alignment
    (default: a 1-word-block cache, i.e. packed).
    @raise Invalid_argument if the plan is dynamic (no static period).
    @raise Ccs_sdf.Error.Error with the first {!Lowering.lower} finding
    otherwise — a [Plan_invalid] for zero-capacity channels, or whatever
    {!Ccs_sched.Plan.validate} rejected. *)

val codegen_semantics :
  Ccs_sdf.Graph.t -> Ccs_sdf.Graph.node -> Ccs_runtime.Kernel.t
(** Kernels that compute exactly what the generated code computes, for
    differential testing.  Sources count upward from zero (persistently —
    a zero-state source keeps its counter in the kernel closure), sinks
    keep their checksum in [state.(0)] when it has room (spilled to the
    closure otherwise), and an interior module with an empty pop window
    emits the constant [0.25] instead of raising [Division_by_zero]. *)

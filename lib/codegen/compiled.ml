module Schedule = Ccs_sched.Schedule
module Intvec = Ccs_exec.Intvec
module A = Bigarray.Array1

type data = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type t = {
  lowering : Lowering.t;
  data : data;
  head : int array;  (* Per edge, normalized to [0, cap). *)
  count : int array;  (* Per edge, tokens buffered. *)
  aux : float array;  (* Per node: spill cell for zero-state modules. *)
  outputs : int ref;
  period_fn : unit -> unit;
  recorder : Intvec.t option;
}

(* Ring indices stay in [0, 2*cap), so one conditional subtract replaces
   [mod] on the hot path. *)
let[@inline] wrap cap i = if i >= cap then i - cap else i

(* Trace recording mirrors Machine.touch_span/touch_ring exactly: one
   entry per block of each contiguous span, state first, then input rings
   at the read cursor, then output rings at the write cursor. *)
let record_span r ~b addr len =
  if len > 0 then
    for blk = addr / b to (addr + len - 1) / b do
      Intvec.push r (blk * b)
    done

let record_ring r ~b ~base ~cap pos k =
  if k > 0 then begin
    let start = pos mod cap in
    if start + k <= cap then record_span r ~b (base + start) k
    else begin
      record_span r ~b (base + start) (cap - start);
      record_span r ~b base (k - (cap - start))
    end
  end

let record_fire r ~b ~head ~count (spec : Lowering.node_spec) =
  record_span r ~b spec.Lowering.state_base spec.Lowering.state_words;
  Array.iter
    (fun (io : Lowering.io) ->
      record_ring r ~b ~base:io.Lowering.base ~cap:io.Lowering.cap
        head.(io.Lowering.edge) io.Lowering.rate)
    spec.Lowering.ins;
  Array.iter
    (fun (io : Lowering.io) ->
      record_ring r ~b ~base:io.Lowering.base ~cap:io.Lowering.cap
        (head.(io.Lowering.edge) + count.(io.Lowering.edge))
        io.Lowering.rate)
    spec.Lowering.outs

(* Specialize one module's fire body: every base/cap/rate is a captured
   constant, buffers are addressed into the shared flat array, and the
   float operations replay the codegen-semantics kernels op-for-op so
   results are bit-identical to the interpreted engine. *)
let compile_node ~(data : data) ~head ~count ~aux ~outputs
    (spec : Lowering.node_spec) =
  let ins = spec.Lowering.ins and outs = spec.Lowering.outs in
  let n_ins = Array.length ins and n_outs = Array.length outs in
  let in_edge = Array.map (fun io -> io.Lowering.edge) ins in
  let in_base = Array.map (fun io -> io.Lowering.base) ins in
  let in_cap = Array.map (fun io -> io.Lowering.cap) ins in
  let in_rate = Array.map (fun io -> io.Lowering.rate) ins in
  let out_edge = Array.map (fun io -> io.Lowering.edge) outs in
  let out_base = Array.map (fun io -> io.Lowering.base) outs in
  let out_cap = Array.map (fun io -> io.Lowering.cap) outs in
  let out_rate = Array.map (fun io -> io.Lowering.rate) outs in
  let v = spec.Lowering.node in
  (* The module's accumulator always lives in [aux] — its simulated state
     words are charged to the cache (the trace records the span) but never
     carry the value, so the hot path avoids a load/store pair through the
     big array per firing. *)
  let advance_ins () =
    for i = 0 to n_ins - 1 do
      let e = Array.unsafe_get in_edge i in
      let cap = Array.unsafe_get in_cap i in
      let rate = Array.unsafe_get in_rate i in
      Array.unsafe_set head e (wrap cap (Array.unsafe_get head e + rate));
      Array.unsafe_set count e (Array.unsafe_get count e - rate)
    done
  in
  (* Inner loops run over at most two contiguous runs of the ring (the
     wrap split [touch_ring] uses) so the per-token path is a bare
     load/store with an induction variable — no wrap branch. *)
  let body =
    match spec.Lowering.kind with
    | Lowering.Counter ->
        fun () ->
          let c = ref (Array.unsafe_get aux v) in
          for i = 0 to n_outs - 1 do
            let e = Array.unsafe_get out_edge i in
            let base = Array.unsafe_get out_base i in
            let cap = Array.unsafe_get out_cap i in
            let rate = Array.unsafe_get out_rate i in
            let start =
              wrap cap (Array.unsafe_get head e + Array.unsafe_get count e)
            in
            let r1 = if start + rate <= cap then rate else cap - start in
            for k = base + start to base + start + r1 - 1 do
              A.unsafe_set data k !c;
              c := !c +. 1.
            done;
            for k = base to base + rate - r1 - 1 do
              A.unsafe_set data k !c;
              c := !c +. 1.
            done;
            Array.unsafe_set count e (Array.unsafe_get count e + rate)
          done;
          Array.unsafe_set aux v !c
    | Lowering.Checksum ->
        fun () ->
          let acc = ref (Array.unsafe_get aux v) in
          for i = 0 to n_ins - 1 do
            let e = Array.unsafe_get in_edge i in
            let base = Array.unsafe_get in_base i in
            let cap = Array.unsafe_get in_cap i in
            let rate = Array.unsafe_get in_rate i in
            let h = Array.unsafe_get head e in
            let r1 = if h + rate <= cap then rate else cap - h in
            for k = base + h to base + h + r1 - 1 do
              acc := !acc +. A.unsafe_get data k
            done;
            for k = base to base + rate - r1 - 1 do
              acc := !acc +. A.unsafe_get data k
            done;
            Array.unsafe_set head e (wrap cap (h + rate));
            Array.unsafe_set count e (Array.unsafe_get count e - rate)
          done;
          Array.unsafe_set aux v !acc
    | Lowering.Fill ->
        fun () ->
          for i = 0 to n_outs - 1 do
            let e = Array.unsafe_get out_edge i in
            let base = Array.unsafe_get out_base i in
            let cap = Array.unsafe_get out_cap i in
            let rate = Array.unsafe_get out_rate i in
            let start =
              wrap cap (Array.unsafe_get head e + Array.unsafe_get count e)
            in
            let r1 = if start + rate <= cap then rate else cap - start in
            for k = base + start to base + start + r1 - 1 do
              A.unsafe_set data k 0.25
            done;
            for k = base to base + rate - r1 - 1 do
              A.unsafe_set data k 0.25
            done;
            Array.unsafe_set count e (Array.unsafe_get count e + rate)
          done;
          advance_ins ()
    | Lowering.Mix { widx; woff = _ } ->
        let n = Array.length widx in
        (* Window slots from the same input share a head cursor; fill the
           window segment-by-segment with the cursor hoisted. *)
        let w = Array.make n 0. in
        fun () ->
          let j0 = ref 0 in
          for i = 0 to n_ins - 1 do
            let base = Array.unsafe_get in_base i in
            let cap = Array.unsafe_get in_cap i in
            let rate = Array.unsafe_get in_rate i in
            let h = Array.unsafe_get head (Array.unsafe_get in_edge i) in
            let j = !j0 - base - h in
            let r1 = if h + rate <= cap then rate else cap - h in
            for k = base + h to base + h + r1 - 1 do
              Array.unsafe_set w (j + k) (A.unsafe_get data k)
            done;
            let j = !j0 + r1 - base in
            for k = base to base + rate - r1 - 1 do
              Array.unsafe_set w (j + k) (A.unsafe_get data k)
            done;
            j0 := !j0 + rate
          done;
          for i = 0 to n_outs - 1 do
            let e = Array.unsafe_get out_edge i in
            let base = Array.unsafe_get out_base i in
            let cap = Array.unsafe_get out_cap i in
            let rate = Array.unsafe_get out_rate i in
            let start =
              wrap cap (Array.unsafe_get head e + Array.unsafe_get count e)
            in
            let r1 = if start + rate <= cap then rate else cap - start in
            let j = ref 0 in
            for k = base + start to base + start + r1 - 1 do
              A.unsafe_set data k ((0.5 *. Array.unsafe_get w !j) +. 0.25);
              incr j;
              if !j = n then j := 0
            done;
            for k = base to base + rate - r1 - 1 do
              A.unsafe_set data k ((0.5 *. Array.unsafe_get w !j) +. 0.25);
              incr j;
              if !j = n then j := 0
            done;
            Array.unsafe_set count e (Array.unsafe_get count e + rate)
          done;
          advance_ins ()
  in
  if spec.Lowering.is_sink then (
    fun () ->
      body ();
      incr outputs)
  else body

let rec compile_sched (fires : (unit -> unit) array) = function
  | Schedule.Fire v -> fires.(v)
  | Schedule.Seq l ->
      let arr = Array.of_list (List.map (compile_sched fires) l) in
      fun () -> Array.iter (fun f -> f ()) arr
  | Schedule.Repeat (k, body) ->
      let f = compile_sched fires body in
      fun () ->
        for _ = 1 to k do
          f ()
        done

let create ?(record_trace = false) (lowering : Lowering.t) =
  let g = lowering.Lowering.graph in
  let num_nodes = Ccs_sdf.Graph.num_nodes g in
  let num_edges = Ccs_sdf.Graph.num_edges g in
  let data = A.create Bigarray.float64 Bigarray.c_layout
      (max 1 lowering.Lowering.total_words) in
  A.fill data 0.;
  let head = Array.make num_edges 0 in
  let count = Array.make num_edges 0 in
  List.iter
    (fun e -> count.(e) <- Ccs_sdf.Graph.delay g e)
    (Ccs_sdf.Graph.edges g);
  let aux = Array.make num_nodes 0. in
  let outputs = ref 0 in
  let recorder = if record_trace then Some (Intvec.create ()) else None in
  let b = lowering.Lowering.block_words in
  let fires =
    Array.map
      (fun spec ->
        let body = compile_node ~data ~head ~count ~aux ~outputs spec in
        match recorder with
        | None -> body
        | Some r ->
            fun () ->
              record_fire r ~b ~head ~count spec;
              body ())
      lowering.Lowering.nodes
  in
  let period_fn = compile_sched fires lowering.Lowering.period in
  { lowering; data; head; count; aux; outputs; period_fn; recorder }

let run_periods t n =
  for _ = 1 to n do
    t.period_fn ()
  done

let run t ~target_outputs =
  if target_outputs > !(t.outputs) && t.lowering.Lowering.period_outputs = 0
  then
    invalid_arg
      (Printf.sprintf "Compiled.run: plan %s's period fires no sink"
         t.lowering.Lowering.plan_name);
  while !(t.outputs) < target_outputs do
    t.period_fn ()
  done

let outputs t = !(t.outputs)

let cell t v = t.aux.(v)

let sink_checksums t = Array.map (cell t) t.lowering.Lowering.sinks
let checksum t = Array.fold_left ( +. ) 0. (sink_checksums t)

let trace t =
  match t.recorder with
  | Some r -> Intvec.to_array r
  | None -> invalid_arg "Compiled.trace: built without record_trace"

let lowering t = t.lowering

(** Plan → flat-program lowering: the shared middle end of the compiled
    backend.

    Lowering takes a validated static plan and produces everything a
    compiled consumer needs, with all scheduling and layout decisions
    already made: the machine's exact address space (state regions and
    ring buffers at the offsets {!Ccs_sched.Plan.layout} assigns), each
    module's kernel classified into one of four specialized shapes with
    its pop/push/offset constants precomputed, and the compressed period.
    Both consumers — the in-process {!Compiled} backend and the standalone
    source emitter ({!Codegen.emit}) — consume this IR, so they execute
    the same program by construction and their word-access traces replay
    against the interpreted {!Ccs_exec.Machine} address-for-address. *)

type io = {
  edge : Ccs_sdf.Graph.edge;
  base : int;  (** Ring buffer base word address. *)
  cap : int;  (** Ring capacity in words (= tokens); [length] of the region. *)
  rate : int;  (** Tokens per firing: [pop] for an input, [push] for an output. *)
  delay : int;  (** Initial tokens (zero-valued). *)
}
(** One channel endpoint of a module, with its layout constants. *)

type kind =
  | Counter  (** Source: emits [0, 1, 2, ...] sequentially across outputs. *)
  | Checksum  (** Sink: accumulates every consumed token. *)
  | Mix of { widx : int array; woff : int array }
      (** Interior: output token [k] is [0.5 *. w.(k mod n) +. 0.25] where
          [w] is the concatenated pop window; [widx.(j)]/[woff.(j)] locate
          window slot [j] as input index / offset within that input's pops
          ([n = Array.length widx > 0]). *)
  | Fill
      (** Interior with an empty pop window ([n = 0]): outputs the
          constant [0.25] (the mixing function's fixed point at zero). *)

type node_spec = {
  node : Ccs_sdf.Graph.node;
  name : string;
  kind : kind;
  state_base : int;  (** State region base word address. *)
  state_words : int;
  ins : io array;  (** In {!Ccs_sdf.Graph.in_edges} order. *)
  outs : io array;  (** In {!Ccs_sdf.Graph.out_edges} order. *)
  is_sink : bool;  (** Member of {!Ccs_sdf.Graph.sinks} — firings count as
                       program outputs. *)
}

type t = {
  graph : Ccs_sdf.Graph.t;
  plan_name : string;
  period : Ccs_sched.Schedule.t;  (** Compressed. *)
  period_outputs : int;  (** Sink firings per period. *)
  block_words : int;
  nodes : node_spec array;  (** Indexed by node id. *)
  total_words : int;  (** Address-space size (the bigarray length). *)
  sinks : Ccs_sdf.Graph.node array;
      (** {!Ccs_sdf.Graph.sinks}, in that order — the checksum report sums
          over these. *)
}

val lower :
  Ccs_sdf.Graph.t ->
  plan:Ccs_sched.Plan.t ->
  cache:Ccs_cache.Cache.config ->
  (t, Ccs_sdf.Error.t list) result
(** Lower a plan for compilation.  Fails with every violated
    precondition: a dynamic plan (no static period) or a zero-capacity
    channel is a [Plan_invalid] finding, and anything
    {!Ccs_sched.Plan.validate} rejects is passed through.  On [Ok] the
    period is token-legal at the plan's capacities, so compiled consumers
    may run it branch-free — no firing-rule checks. *)

val exn : Ccs_sdf.Graph.t -> plan:Ccs_sched.Plan.t ->
  cache:Ccs_cache.Cache.config -> t
(** {!lower}, raising {!Ccs_sdf.Error.Error} with the first finding. *)

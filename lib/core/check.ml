module E = Ccs_sdf.Error
module Graph = Ccs_sdf.Graph

type report = { errors : E.t list; warnings : E.t list }

let empty = { errors = []; warnings = [] }
let is_ok r = r.errors = []

let merge a b =
  { errors = a.errors @ b.errors; warnings = a.warnings @ b.warnings }

let of_list errs =
  let warnings, errors =
    List.partition (fun e -> E.severity e = `Warning) errs
  in
  { errors; warnings }

(* Run a checker that may itself throw (e.g. on an assignment of the wrong
   length) and fold the failure into the report rather than escaping. *)
let guarded f =
  match E.protect f with Ok r -> r | Error e -> { empty with errors = [ e ] }

let builder b = of_list (Graph.Builder.check b)
let graph g = of_list (Ccs_sdf.Validate.graph g)

let partition ?bound ?degree_bound g ~components =
  guarded (fun () ->
      let spec = Ccs_partition.Spec.of_assignment g components in
      of_list (Ccs_partition.Spec.validate ?bound ?degree_bound spec))

let spec ?bound ?degree_bound s =
  of_list (Ccs_partition.Spec.validate ?bound ?degree_bound s)

let plan ?cache ?spec g p =
  guarded (fun () ->
      match Ccs_sched.Plan.validate ?cache ?spec g p with
      | Ok () -> empty
      | Error errs -> of_list errs)

let capacities g caps =
  (* Zero (or negative) capacities get their own structured finding — the
     codegen backend rejects them the same way, and Capacity_below_rate
     alone reads as a tuning problem rather than a meaningless buffer. *)
  let zeros =
    if Array.length caps <> Graph.num_edges g then []
    else
      List.filter_map
        (fun e ->
          if caps.(e) <= 0 then
            Some
              (E.Plan_invalid
                 {
                   plan = "capacity lint";
                   reason =
                     Printf.sprintf
                       "channel %s has capacity %d; buffers need >= 1"
                       (Graph.edge_name g e) caps.(e);
                 })
          else None)
        (Graph.edges g)
  in
  merge (of_list zeros)
    (plan g
       (Ccs_sched.Plan.dynamic ~name:"capacity lint" ~capacities:caps
          (fun _ ~target_outputs:_ -> ())))

(* Cache-configuration lint over the raw numbers the CLI parses, so a bad
   [--cache]/[--block]/[--ways] combination is a structured finding here
   instead of an [Invalid_argument] three layers down in the simulator. *)
let cache_config ?ways ~size_words ~block_words () =
  let errs = ref [] in
  let bad field value reason =
    errs := E.Cache_config_invalid { field; value; reason } :: !errs
  in
  if block_words <= 0 then
    bad "block_words" block_words "block size must be positive";
  if size_words <= 0 then
    bad "size_words" size_words "cache capacity must be positive";
  if block_words > 0 && size_words > 0 then begin
    if size_words < block_words then
      bad "size_words" size_words
        (Printf.sprintf
           "capacity below one block of %d words — a zero-capacity engine"
           block_words);
    if size_words mod block_words <> 0 then
      bad "size_words" size_words
        (Printf.sprintf "block size %d does not divide the capacity"
           block_words)
  end;
  (match ways with
  | None -> ()
  | Some w ->
      if w < 1 then bad "ways" w "associativity must be at least 1"
      else if block_words > 0 && size_words >= block_words then begin
        let nblocks = size_words / block_words in
        if w > nblocks then
          bad "ways" w
            (Printf.sprintf "more ways than the %d blocks the cache holds"
               nblocks)
      end);
  of_list (List.rev !errs)

let auto ?degree_bound g cfg =
  let r = graph g in
  if not (is_ok r) then r
  else
    guarded (fun () ->
        let a = Ccs_sdf.Rates.analyze_exn g in
        let s = Auto.partition g a cfg in
        (* [Auto.partition] targets [fitting_bound], except that a graph
           whose whole footprint fits the cache is kept as one component —
           there the guarantee is just "fits the configured cache". *)
        let bound =
          if Ccs_partition.Spec.num_components s = 1 then
            max (Auto.fitting_bound g cfg) cfg.Config.cache_words
          else Auto.fitting_bound g cfg
        in
        let choice = Auto.plan ~dynamic:false g cfg in
        merge r
          (merge
             (spec ~bound ?degree_bound s)
             (plan ~cache:(Config.cache_config cfg) ~spec:s g
                choice.Auto.plan)))

let pp_item fmt (kind, e) =
  Format.fprintf fmt "@[<hov 4>%s[%s] %a@]" kind (E.code e) E.pp e

let pp fmt r =
  List.iter
    (fun e -> Format.fprintf fmt "%a@." pp_item ("error", e))
    r.errors;
  List.iter
    (fun e -> Format.fprintf fmt "%a@." pp_item ("warning", e))
    r.warnings

module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Spec = Ccs_partition.Spec
module Pipeline = Ccs_partition.Pipeline
module Dag = Ccs_partition.Dag
module Sched = Ccs_sched

type choice = {
  analysis : Rates.analysis;
  partition : Spec.t;
  batch : int;
  plan : Sched.Plan.t;
}

(* Bump whenever any planning decision below (partitioner choice, bounds,
   batch granularity, capacity sizing) changes observable output: cached
   plan artifacts are keyed on this, so stale plans from an older
   pipeline miss instead of being served. *)
let planner_version = 1

(* The paper's upper bounds run a cM-bounded partition on an O(cM) cache
   (constant-factor augmentation).  Auto targets the machine the user
   actually configured, so components get at most half the real cache —
   the other half absorbs internal buffers and one streaming block per
   cross edge — except when a single module is bigger than that, in which
   case we must allow it (the paper's s(v) <= M assumption in the tightest
   form the machine permits). *)
let fitting_bound g cfg =
  let max_state =
    List.fold_left (fun acc v -> max acc (Graph.state g v)) 1 (Graph.nodes g)
  in
  max (cfg.Config.cache_words / 2) max_state

let partition g analysis cfg =
  let bound = fitting_bound g cfg in
  (* Cache footprint of running the whole graph resident: module states
     rounded up to whole blocks (they are block-aligned), plus the packed
     minimum buffers, plus one block of slack for boundary sharing. *)
  let whole_footprint =
    let bw = cfg.Config.block_words in
    let rounded_state =
      List.fold_left
        (fun acc v -> acc + ((Graph.state g v + bw - 1) / bw * bw))
        0 (Graph.nodes g)
    in
    let minbuf_total =
      let mb = Ccs_sdf.Minbuf.compute g analysis in
      Array.fold_left ( + ) 0 mb.Ccs_sdf.Minbuf.capacity
    in
    rounded_state + minbuf_total + bw
  in
  if whole_footprint <= cfg.Config.cache_words then
    (* Everything — state and minimum buffers — fits at once: the whole
       graph is a single component and no tokens ever cross a partition
       boundary. *)
    Spec.whole g
  else if Graph.is_pipeline g then Pipeline.optimal_dp g analysis ~bound
  else begin
    (* Lemma 8 needs degree-limited components: one resident cache block
       per cross edge must fit next to the component's state (at most half
       the cache), so cap the degree at a quarter of the cache in blocks. *)
    let max_degree =
      max 2 (cfg.Config.cache_words / (4 * cfg.Config.block_words))
    in
    let heuristic () = Dag.best g analysis ~bound ~max_degree () in
    if Graph.num_nodes g <= 16 then
      match Dag.exact g analysis ~bound ~max_nodes:16 () with
      | Some spec when Spec.is_degree_limited spec ~bound:max_degree -> spec
      | Some spec ->
          (* Exact minimizes bandwidth but ignores degree; prefer it only
             if the heuristic cannot do better under the cap. *)
          let h = heuristic () in
          if
            Ccs_sdf.Rational.compare
              (Spec.bandwidth h analysis)
              (Spec.bandwidth spec analysis)
            <= 0
          then h
          else spec
      | None -> heuristic ()
    else heuristic ()
  end

let plan ?(dynamic = true) g cfg =
  let analysis = Rates.analyze_exn g in
  let spec = partition g analysis cfg in
  let m = cfg.Config.cache_words in
  let t = Rates.granularity g analysis ~at_least:m in
  let plan =
    if Graph.is_pipeline g && dynamic then
      Sched.Partitioned.pipeline_dynamic g analysis spec ~m_tokens:m
    else Sched.Partitioned.batch g analysis spec ~t
  in
  { analysis; partition = spec; batch = t; plan }

(* Bridge to the adaptation layer: {!Ccs_sched.Adapt} sits below this
   library, so it takes planning as a callback.  The callback re-runs the
   full pipeline for whatever cache configuration the adaptive loop asks
   for and pairs the plan with its Lemma-4/8 predicted bound — the
   yardstick the degradation detector compares measured misses against. *)
let adapt_planner ?dynamic g cfg (cache : Ccs_cache.Cache.config) =
  let cfg =
    {
      cfg with
      Config.cache_words = cache.Ccs_cache.Cache.size_words;
      block_words = cache.Ccs_cache.Cache.block_words;
      policy = cache.Ccs_cache.Cache.policy;
    }
  in
  let choice = plan ?dynamic g cfg in
  let predicted_mpi =
    Sched.Analysis.partition_cost_prediction choice.partition choice.analysis
      ~b:cfg.Config.block_words ~t:choice.batch
  in
  { Sched.Adapt.plan = choice.plan; predicted_mpi }

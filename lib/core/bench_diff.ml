(* Regression diff over two bench JSON documents (bench/main.exe --json).

   The harness is deterministic by construction: every simulated quantity
   (miss counts, attribution, buffer sizes, predicted bounds) must be
   bit-identical between two runs of the same code, so any drift in a
   deterministic field is a FAIL.  Wall-clock and throughput fields are
   machine noise; they only WARN, and only beyond a relative tolerance.

   Experiments are paired by id.  Records within an experiment are paired
   by their "id" member when every record on both sides carries a unique
   string id (experiments like E22 whose record set varies with the app
   list), positionally otherwise — the harness emits records in a fixed
   order, so a changed record count or order is itself a regression
   signal. *)

module Json = Ccs_obs.Json

type severity = Fail | Warn

type finding = {
  severity : severity;
  experiment : string;
  record : int option; (* record index, [None] for experiment-level *)
  field : string;
  old_value : string;
  new_value : string;
  detail : string;
}

type report = {
  findings : finding list;
  experiments_compared : int;
  records_compared : int;
  old_only : string list; (* ids present only in the old document *)
  new_only : string list;
}

let has_failures r = List.exists (fun f -> f.severity = Fail) r.findings

(* Wall-clock / throughput field names: suffixes and markers used by the
   harness's timing fields (wall_s, cpu_s, seconds, baseline_seconds,
   ns_per_run, ops_per_sec, overhead_pct, unix_time).  Everything else is
   treated as deterministic. *)
let is_timing_field name =
  let has_suffix s = Filename.check_suffix name s in
  has_suffix "_s" || has_suffix "_ns" || has_suffix "_us" || has_suffix "_pct"
  || has_suffix "_sec"
  || (String.length name >= 3 && String.sub name 0 3 = "ns_")
  || name = "unix_time"
  ||
  let re = "seconds" in
  let n = String.length name and k = String.length re in
  let rec at i = i + k <= n && (String.sub name i k = re || at (i + 1)) in
  at 0

let show = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.12g" f
  | Json.String s -> s
  | (Json.List _ | Json.Obj _) as v -> Json.to_string v

let numeric = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(* Relative drift of [b] against [a], in percent; equal values (including
   two zeros, two NaNs — serialized as null) drift 0. *)
let drift_pct a b =
  if a = b then 0.
  else
    let base = Float.max (Float.abs a) (Float.abs b) in
    if base = 0. then 0. else 100. *. Float.abs (b -. a) /. base

let compare_field ~tolerance_pct ~experiment ~record ~field old_v new_v acc =
  match (old_v, new_v) with
  | Some ov, Some nv when ov = nv -> acc
  | Some ov, Some nv when is_timing_field field -> (
      match (numeric ov, numeric nv) with
      | Some a, Some b ->
          let d = drift_pct a b in
          if d > tolerance_pct then
            {
              severity = Warn;
              experiment;
              record;
              field;
              old_value = show ov;
              new_value = show nv;
              detail =
                Printf.sprintf "timing drift %.1f%% (tolerance %.0f%%)" d
                  tolerance_pct;
            }
            :: acc
          else acc
      | _ ->
          (* A timing field that is not a number on one side (e.g. a NaN
             serialized as null): shape change, but still only timing. *)
          {
            severity = Warn;
            experiment;
            record;
            field;
            old_value = show ov;
            new_value = show nv;
            detail = "timing field changed type";
          }
          :: acc)
  | Some ov, Some nv ->
      {
        severity = Fail;
        experiment;
        record;
        field;
        old_value = show ov;
        new_value = show nv;
        detail = "deterministic field changed";
      }
      :: acc
  | Some ov, None ->
      {
        severity = Fail;
        experiment;
        record;
        field;
        old_value = show ov;
        new_value = "<absent>";
        detail = "field disappeared";
      }
      :: acc
  | None, Some nv ->
      {
        severity = Fail;
        experiment;
        record;
        field;
        old_value = "<absent>";
        new_value = show nv;
        detail = "field appeared";
      }
      :: acc
  | None, None -> acc

let obj_fields = function Json.Obj fields -> fields | _ -> []

(* Union of keys, old-document order first, preserving first appearance. *)
let union_keys old_fields new_fields =
  let keys = List.map fst old_fields @ List.map fst new_fields in
  List.rev
    (List.fold_left
       (fun acc k -> if List.mem k acc then acc else k :: acc)
       [] keys)

let compare_obj ~tolerance_pct ~experiment ~record old_obj new_obj acc =
  let old_fields = obj_fields old_obj and new_fields = obj_fields new_obj in
  List.fold_left
    (fun acc field ->
      compare_field ~tolerance_pct ~experiment ~record ~field
        (List.assoc_opt field old_fields)
        (List.assoc_opt field new_fields)
        acc)
    acc
    (union_keys old_fields new_fields)

let experiment_id e =
  match Json.member "experiment" e with
  | Some (Json.String id) -> Some id
  | _ -> None

let record_id r =
  match Json.member "id" r with Some (Json.String s) -> Some s | _ -> None

(* Id-based pairing applies only when it is unambiguous: every record has
   a string "id" and no id repeats. *)
let all_unique_ids rs =
  let ids = List.filter_map record_id rs in
  List.length ids = List.length rs
  && List.length (List.sort_uniq compare ids) = List.length ids

let experiment_records e =
  match Json.member "records" e with Some (Json.List rs) -> rs | _ -> []

let experiments doc =
  match Json.member "experiments" doc with
  | Some (Json.List es) -> List.filter_map (fun e ->
      Option.map (fun id -> (id, e)) (experiment_id e)) es
  | _ -> []

let diff ?(tolerance_pct = 20.) ~old_doc ~new_doc () =
  let old_es = experiments old_doc and new_es = experiments new_doc in
  let records_compared = ref 0 in
  let findings, compared =
    List.fold_left
      (fun (acc, compared) (id, old_e) ->
        match List.assoc_opt id new_es with
        | None -> (acc, compared)
        | Some new_e ->
            let old_rs = experiment_records old_e
            and new_rs = experiment_records new_e in
            let acc =
              (* Experiment-level fields: wall_s/cpu_s (timing) and the
                 description (deterministic). *)
              compare_field ~tolerance_pct ~experiment:id ~record:None
                ~field:"description"
                (Json.member "description" old_e)
                (Json.member "description" new_e)
                (compare_field ~tolerance_pct ~experiment:id ~record:None
                   ~field:"wall_s" (Json.member "wall_s" old_e)
                   (Json.member "wall_s" new_e)
                   (compare_field ~tolerance_pct ~experiment:id ~record:None
                      ~field:"cpu_s" (Json.member "cpu_s" old_e)
                      (Json.member "cpu_s" new_e) acc))
            in
            let acc =
              if
                (old_rs <> [] || new_rs <> [])
                && all_unique_ids old_rs
                && all_unique_ids new_rs
              then begin
                (* Pair records by id: dropped and added ids are findings,
                   shared ids are compared field by field. *)
                let tag rs =
                  List.mapi
                    (fun i r ->
                      match record_id r with
                      | Some rid -> (i, rid, r)
                      | None -> assert false)
                    rs
                in
                let old_tagged = tag old_rs and new_tagged = tag new_rs in
                let acc =
                  List.fold_left
                    (fun acc (i, rid, o) ->
                      match
                        List.find_opt (fun (_, nid, _) -> nid = rid) new_tagged
                      with
                      | Some (_, _, n) ->
                          incr records_compared;
                          compare_obj ~tolerance_pct ~experiment:id
                            ~record:(Some i) o n acc
                      | None ->
                          {
                            severity = Fail;
                            experiment = id;
                            record = Some i;
                            field = "id";
                            old_value = rid;
                            new_value = "<absent>";
                            detail = "record disappeared";
                          }
                          :: acc)
                    acc old_tagged
                in
                List.fold_left
                  (fun acc (i, rid, _) ->
                    if
                      List.exists (fun (_, oid, _) -> oid = rid) old_tagged
                    then acc
                    else
                      {
                        severity = Fail;
                        experiment = id;
                        record = Some i;
                        field = "id";
                        old_value = "<absent>";
                        new_value = rid;
                        detail = "record appeared";
                      }
                      :: acc)
                  acc new_tagged
              end
              else begin
                let n_old = List.length old_rs
                and n_new = List.length new_rs in
                let acc =
                  if n_old <> n_new then
                    {
                      severity = Fail;
                      experiment = id;
                      record = None;
                      field = "records";
                      old_value = string_of_int n_old;
                      new_value = string_of_int n_new;
                      detail = "record count changed";
                    }
                    :: acc
                  else acc
                in
                let rec pairs i acc = function
                  | o :: os, n :: ns ->
                      incr records_compared;
                      pairs (i + 1)
                        (compare_obj ~tolerance_pct ~experiment:id
                           ~record:(Some i) o n acc)
                        (os, ns)
                  | _ -> acc
                in
                pairs 0 acc (old_rs, new_rs)
              end
            in
            (acc, compared + 1))
      ([], 0) old_es
  in
  let only_in es others =
    List.filter_map
      (fun (id, _) ->
        if List.mem_assoc id others then None else Some id)
      es
  in
  {
    findings = List.rev findings;
    experiments_compared = compared;
    records_compared = !records_compared;
    old_only = only_in old_es new_es;
    new_only = only_in new_es old_es;
  }

let read_doc path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok doc -> Ok doc)

let diff_files ?tolerance_pct ~old_path ~new_path () =
  match read_doc old_path with
  | Error msg -> Error msg
  | Ok old_doc -> (
      match read_doc new_path with
      | Error msg -> Error msg
      | Ok new_doc -> Ok (diff ?tolerance_pct ~old_doc ~new_doc ()))

let pp_finding fmt f =
  Format.fprintf fmt "%s %s%s %s: %s -> %s (%s)"
    (match f.severity with Fail -> "FAIL" | Warn -> "warn")
    f.experiment
    (match f.record with
    | Some i -> Printf.sprintf "[%d]" i
    | None -> "")
    f.field f.old_value f.new_value f.detail

let pp fmt r =
  let fails, warns =
    List.partition (fun f -> f.severity = Fail) r.findings
  in
  Format.fprintf fmt
    "compared %d experiments (%d records): %d regression(s), %d warning(s)@."
    r.experiments_compared r.records_compared (List.length fails)
    (List.length warns);
  if r.old_only <> [] then
    Format.fprintf fmt "only in old run (not compared): %s@."
      (String.concat " " r.old_only);
  if r.new_only <> [] then
    Format.fprintf fmt "only in new run (not compared): %s@."
      (String.concat " " r.new_only);
  List.iter (fun f -> Format.fprintf fmt "%a@." pp_finding f) r.findings

(** Regression diff over two benchmark JSON documents.

    Compares two [bench/main.exe --json] outputs (schema v2): experiments
    are paired by id — ids present in only one document are reported but
    not compared, so a [--quick] run diffs cleanly against a committed
    full-run baseline.  Records within an experiment are paired by their
    ["id"] member when every record on both sides carries a unique string
    id (e.g. E22's per-app adaptation records), positionally otherwise;
    under id pairing a dropped or added record id is a {!Fail} finding.

    The harness is deterministic by construction, so fields fall into two
    classes: {e timing} fields ([wall_s], [cpu_s], [seconds],
    [ns_per_run], [overhead_pct], ... — see {!is_timing_field}) drift with
    machine load and only produce {!Warn} findings beyond a relative
    tolerance; every other field (miss counts, attribution, buffer sizes,
    predicted bounds) must match {e exactly} and produces a {!Fail}
    finding otherwise.  A changed record count within an experiment is
    also a {!Fail}.

    This is the engine behind [ccsched bench diff OLD NEW] and the CI
    [bench-regress] gate. *)

type severity = Fail | Warn

type finding = {
  severity : severity;
  experiment : string;  (** Experiment id, e.g. ["E7"]. *)
  record : int option;  (** Record index, [None] for experiment-level. *)
  field : string;
  old_value : string;
  new_value : string;
  detail : string;  (** Human-readable reason. *)
}

type report = {
  findings : finding list;  (** In document order. *)
  experiments_compared : int;
  records_compared : int;
  old_only : string list;  (** Ids only in the old document (informational). *)
  new_only : string list;
}

val has_failures : report -> bool
(** Whether any finding is a {!Fail} — the CI gate's exit condition.
    Warnings alone do not fail. *)

val is_timing_field : string -> bool
(** Whether a field name denotes wall-clock/throughput data: suffix
    [_s]/[_ns]/[_us]/[_pct]/[_sec], prefix [ns_], containing [seconds], or
    [unix_time]. *)

val diff :
  ?tolerance_pct:float ->
  old_doc:Ccs_obs.Json.value ->
  new_doc:Ccs_obs.Json.value ->
  unit ->
  report
(** Diff two parsed documents.  [tolerance_pct] (default [20.]) is the
    relative drift, in percent, a timing field may show before warning. *)

val diff_files :
  ?tolerance_pct:float ->
  old_path:string ->
  new_path:string ->
  unit ->
  (report, string) result
(** Read, parse and {!diff} two files; [Error] carries a parse or I/O
    message. *)

val pp : Format.formatter -> report -> unit
(** Summary line, uncompared-id notes, then one line per finding. *)

val pp_finding : Format.formatter -> finding -> unit

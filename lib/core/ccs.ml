(** Cache-conscious scheduling of streaming applications.

    OCaml implementation of Agrawal, Fineman, Krage, Leiserson and Toledo,
    {e Cache-Conscious Scheduling of Streaming Applications}, SPAA 2012:
    scheduling synchronous-dataflow graphs on a two-level memory hierarchy
    by reducing scheduling to constrained graph partitioning.

    Quickstart:
    {[
      let g = Ccs.Generators.uniform_pipeline ~n:64 ~state:128 () in
      let cfg = Ccs.Config.make ~cache_words:1024 ~block_words:16 () in
      let choice = Ccs.Auto.plan g cfg in
      let result, _machine =
        Ccs.Runner.run ~graph:g ~cache:(Ccs.Config.cache_config cfg)
          ~plan:choice.Ccs.Auto.plan ~outputs:10_000 ()
      in
      Format.printf "%a@." Ccs.Runner.pp_result result
    ]}

    The submodules re-export the full stack: the SDF substrate
    ({!Graph}, {!Rates}, {!Minbuf}, {!Generators}, {!Serial}), the DAM
    cache simulator ({!Cache}, {!Layout}), the execution engine
    ({!Machine}), partitioning ({!Spec}, {!Pipeline_partition},
    {!Dag_partition}), scheduling ({!Schedule}, {!Plan}, {!Baseline},
    {!Scaling}, {!Kohli}, {!Partitioned}, {!Analysis}, {!Runner}) and the
    high-level API ({!Config}, {!Auto}, {!Compare}). *)

(* Structured errors and validation *)
module Error = Ccs_sdf.Error
module Validate = Ccs_sdf.Validate
module Binio = Ccs_sdf.Binio
module Check = Check

(* SDF substrate *)
module Rational = Ccs_sdf.Rational
module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Minbuf = Ccs_sdf.Minbuf
module Generators = Ccs_sdf.Generators
module Serial = Ccs_sdf.Serial
module Transform = Ccs_sdf.Transform

(* Cache simulator *)
module Lru = Ccs_cache.Lru
module Cache = Ccs_cache.Cache
module Layout = Ccs_cache.Layout
module Trace_analysis = Ccs_cache.Trace_analysis

(* Execution *)
module Machine = Ccs_exec.Machine
module Fault = Ccs_exec.Fault
module Checkpoint = Ccs_exec.Checkpoint
module Overlay = Ccs_exec.Overlay
module Replay = Ccs_exec.Replay
module Clock = Ccs_exec.Clock
module Plan_key = Ccs_exec.Plan_key

(* Observability: per-entity miss attribution, event tracing, metrics
   registry, structured logging, and the bench regression differ *)
module Counters = Ccs_obs.Counters
module Tracer = Ccs_obs.Tracer
module Trace_export = Ccs_obs.Trace_export
module Json = Ccs_obs.Json
module Metrics = Ccs_obs.Metrics
module Log = Ccs_obs.Log
module Span = Ccs_obs.Span
module Flight = Ccs_obs.Flight
module Bench_diff = Bench_diff

(* Partitioning *)
module Spec = Ccs_partition.Spec
module Pipeline_partition = Ccs_partition.Pipeline
module Dag_partition = Ccs_partition.Dag
module Cluster = Ccs_partition.Cluster

(* Scheduling *)
module Schedule = Ccs_sched.Schedule
module Plan = Ccs_sched.Plan
module Simulate = Ccs_sched.Simulate
module Baseline = Ccs_sched.Baseline
module Scaling = Ccs_sched.Scaling
module Kohli = Ccs_sched.Kohli
module Partitioned = Ccs_sched.Partitioned
module Analysis = Ccs_sched.Analysis
module Runner = Ccs_sched.Runner
module Watchdog = Ccs_sched.Watchdog
module Supervisor = Ccs_sched.Supervisor
module Adapt = Ccs_sched.Adapt
module Profile = Ccs_sched.Profile

(* High-level API *)
module Config = Config
module Auto = Auto
module Compare = Compare
module Table = Table

(* Data-carrying runtime *)
module Kernel = Ccs_runtime.Kernel
module Program = Ccs_runtime.Program
module Engine = Ccs_runtime.Engine
module Kernels = Ccs_runtime.Kernels

(* Multiprocessor extension *)
module Assign = Ccs_multi.Assign
module Multi_machine = Ccs_multi.Multi_machine

(* Compiler backend *)
module Lowering = Ccs_codegen.Lowering
module Compiled = Ccs_codegen.Compiled
module Codegen = Ccs_codegen.Codegen

(** One-call cache-conscious scheduling: the paper's end-to-end pipeline
    from graph to plan.

    [plan g cfg] analyses rates, picks the partitioning algorithm suited to
    the topology (optimal DP for pipelines; DFS-interval greedy plus local
    refinement for general DAGs, upgraded to the exact search when the
    graph is small enough), and instantiates the matching partitioned
    scheduler.  This is the function a downstream user calls. *)

type choice = {
  analysis : Ccs_sdf.Rates.analysis;
  partition : Ccs_partition.Spec.t;
  batch : int;  (** Granularity [T] used by the schedule. *)
  plan : Ccs_sched.Plan.t;
}

val planner_version : int
(** Version of the planning pipeline.  Cached plan artifacts embed it in
    their {!Ccs_exec.Plan_key}, so plans produced by an older pipeline
    are cache misses, never silently served.  Bumped whenever partitioner
    choice, bounds, batching or capacity sizing change output. *)

val fitting_bound : Ccs_sdf.Graph.t -> Config.t -> int
(** The component state bound {!partition} actually enforces: half the
    configured cache (the rest absorbs buffers and streaming blocks),
    relaxed to the largest single module when one is bigger than that. *)

val partition :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Config.t -> Ccs_partition.Spec.t
(** Just the partitioning step: pipelines get the minimum-bandwidth
    DP segmentation with bound [c·M]; small DAGs (≤ 16 modules) get the
    exact search; larger DAGs get greedy + refine. *)

val plan : ?dynamic:bool -> Ccs_sdf.Graph.t -> Config.t -> choice
(** The full pipeline.  For pipelines with [dynamic] (default [true]) the
    online half-full scheduler is used; otherwise the static batch
    scheduler at granularity [T = granularity ≥ M].
    @raise Ccs_sdf.Graph.Invalid_graph if the graph is not rate-matched. *)

val adapt_planner :
  ?dynamic:bool -> Ccs_sdf.Graph.t -> Config.t -> Ccs_sched.Adapt.planner
(** [adapt_planner g cfg] is the planner callback {!Ccs_sched.Adapt.run}
    needs: invoked with a cache configuration, it re-runs {!plan} for that
    cache (inheriting [cfg]'s augmentation) and pairs the result with its
    Lemma-4/8 predicted misses-per-input
    ({!Ccs_sched.Analysis.partition_cost_prediction}). *)

(** Aggregate linting: run every validator in the stack and collect the
    findings into one report, split by severity.

    This is the library face of [ccsched check]: each entry point runs one
    layer's validator ({!Ccs_sdf.Validate.graph}, {!Ccs_partition.Spec.validate},
    {!Ccs_sched.Plan.validate}) and folds structured
    {!Ccs_sdf.Error.t} findings — never exceptions — into a {!report}. *)

type report = {
  errors : Ccs_sdf.Error.t list;  (** Violations; the artifact is unusable. *)
  warnings : Ccs_sdf.Error.t list;
      (** Suspicious but runnable (e.g. multiple sources, cache overflow). *)
}

val empty : report

val is_ok : report -> bool
(** No errors (warnings allowed). *)

val merge : report -> report -> report

val of_list : Ccs_sdf.Error.t list -> report
(** Split a finding list by {!Ccs_sdf.Error.severity}. *)

val builder : Ccs_sdf.Graph.Builder.t -> report
(** Structural lint of an unbuilt graph: dangling endpoints, degenerate
    and nonpositive-rate channels, negative delays, deadlock cycles. *)

val graph : Ccs_sdf.Graph.t -> report
(** Semantic lint of a built graph: duplicate module names, source/sink
    multiplicity, connectivity, rate consistency. *)

val partition :
  ?bound:int ->
  ?degree_bound:int ->
  Ccs_sdf.Graph.t ->
  components:int array ->
  report
(** Lint a user-supplied node-to-component assignment: well-orderedness,
    c-boundedness against [bound], degree-limitedness against
    [degree_bound].  A malformed assignment (wrong length) is itself a
    reported error, not an exception. *)

val spec : ?bound:int -> ?degree_bound:int -> Ccs_partition.Spec.t -> report
(** Same checks for an already-constructed partition. *)

val plan :
  ?cache:Ccs_cache.Cache.config ->
  ?spec:Ccs_partition.Spec.t ->
  Ccs_sdf.Graph.t ->
  Ccs_sched.Plan.t ->
  report
(** All of {!Ccs_sched.Plan.validate}'s findings as a report. *)

val capacities : Ccs_sdf.Graph.t -> int array -> report
(** Lint bare buffer capacities (no driver): per-channel floors and joint
    feasibility against {!Ccs_sdf.Minbuf}. *)

val cache_config :
  ?ways:int -> size_words:int -> block_words:int -> unit -> report
(** Lint a cache configuration as raw numbers (before any simulator object
    exists): non-positive sizes, capacity below one block (a zero-capacity
    engine), block size not dividing the capacity, and — when [ways] is
    given — associativity below 1 or exceeding the block count.  Each
    finding is a {!Ccs_sdf.Error.Cache_config_invalid}. *)

val auto : ?degree_bound:int -> Ccs_sdf.Graph.t -> Config.t -> report
(** End-to-end lint: check the graph, and if it is clean, run the paper's
    own partitioning pipeline for [cfg] and check the resulting partition
    (bound = {!Config.partition_bound}) and plan — so a clean report means
    the full scheduler stack accepts the graph at this cache size. *)

val pp : Format.formatter -> report -> unit
(** One line per finding: [error[code] message] / [warning[code] message]. *)

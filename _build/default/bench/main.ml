(* Experiment harness: regenerates every quantitative claim of the paper
   (see DESIGN.md section 4 and EXPERIMENTS.md for the index and expected
   shapes).  The paper is a theory paper with no tables or figures, so each
   section validates a theorem's predicted shape on the simulated DAM
   machine.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- E7
   Skip micro-benches:    dune exec bench/main.exe -- --no-micro *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("E1", "pipeline upper bound (Lemma 4)", E_pipeline.e1);
    ("E2", "pipeline lower bound (Theorem 3)", E_pipeline.e2);
    ("E3", "greedy competitiveness (Theorem 5)", E_pipeline.e3);
    ("E4", "homogeneous DAG upper bound (Lemma 8)", E_dag.e4);
    ("E5", "DAG lower bound (Theorem 7)", E_dag.e5);
    ("E6", "application suite comparison", E_apps.e6);
    ("E7", "crossover study", E_apps.e7);
    ("E8", "inhomogeneous granularity-T", E_dag.e8);
    ("E9", "buffer-size ablation", E_ablations.e9);
    ("E10", "augmentation ablation", E_ablations.e10);
    ("E11", "degree-limit ablation", E_ablations.e11);
    ("E12", "algorithm micro-benchmarks", Micro.run);
    ("E13", "replacement-policy sensitivity", E_policy.e13);
    ("E14", "LRU vs clairvoyant OPT", E_policy.e14);
    ("E15", "partitioner quality", E_partitioners.e15);
    ("E16", "multiprocessor placement", E_multi.e16);
    ("E17", "latency cost of cache efficiency", E_latency.e17);
    ("E18", "reuse-distance profiles", E_trace.e18);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let no_micro = List.mem "--no-micro" args in
  let wanted = List.filter (fun a -> a <> "--no-micro") args in
  let to_run =
    match wanted with
    | [] ->
        List.filter (fun (id, _, _) -> not (no_micro && id = "E12")) experiments
    | ids ->
        List.filter (fun (id, _, _) -> List.mem id ids) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "unknown experiment id; available:\n";
    List.iter
      (fun (id, desc, _) -> Printf.eprintf "  %-4s %s\n" id desc)
      experiments;
    exit 1
  end;
  Printf.printf
    "Cache-Conscious Scheduling of Streaming Applications (SPAA'12) — \
     experiment harness\n";
  let t0 = Sys.time () in
  List.iter (fun (_, _, run) -> run ()) to_run;
  Printf.printf "\n(total CPU time: %.1fs)\n" (Sys.time () -. t0)

bench/e_multi.ml: Ccs Ccs_apps List Util

bench/e_partitioners.ml: Ccs List Option Printf Util

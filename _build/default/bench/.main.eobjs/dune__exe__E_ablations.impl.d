bench/e_ablations.ml: Array Ccs List Printf Util

bench/e_dag.ml: Ccs Ccs_apps List Printf Util

bench/e_policy.ml: Array Ccs Ccs_apps List Util

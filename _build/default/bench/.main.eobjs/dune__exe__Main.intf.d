bench/main.mli:

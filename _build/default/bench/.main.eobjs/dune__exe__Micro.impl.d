bench/micro.ml: Analyze Bechamel Benchmark Ccs Float Hashtbl Instance List Measure Staged Test Time Toolkit Util

bench/e_trace.ml: Array Ccs List Printf Util

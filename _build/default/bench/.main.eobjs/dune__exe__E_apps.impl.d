bench/e_apps.ml: Ccs Ccs_apps List Printf String Util

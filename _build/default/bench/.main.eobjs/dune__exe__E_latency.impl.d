bench/e_latency.ml: Ccs List Util

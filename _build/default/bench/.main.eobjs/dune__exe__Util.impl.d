bench/util.ml: Ccs Float List Printf

bench/e_pipeline.ml: Ccs List Util

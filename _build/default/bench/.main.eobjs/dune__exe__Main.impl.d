bench/main.ml: Array E_ablations E_apps E_dag E_latency E_multi E_partitioners E_pipeline E_policy E_trace List Micro Printf Sys

(* Ablation experiments: E9 (cross-edge buffer size), E10 (cache
   augmentation for c-bounded partitions), E11 (the degree-limited
   hypothesis of Lemma 8). *)

module G = Ccs.Graph
module R = Ccs.Rates
module Sp = Ccs.Spec
open Util

(* E9: the paper gives cross edges Theta(M)-token buffers so a loaded
   component can do M-worth of work.  Shrink them: the batch size T shrinks
   with them, so the state-reload term state/T grows.  Expected: misses/
   input falls as buffer size approaches M and flattens beyond. *)
let e9 () =
  section "E9-buffer-ablation" "cross-edge buffer size vs misses/input";
  let g = Ccs.Generators.uniform_pipeline ~n:32 ~state:64 () in
  let a = R.analyze_exn g in
  let m = 512 and b = 16 in
  let cache = Ccs.Cache.config ~size_words:m ~block_words:b () in
  let spec = fitting_partition g ~m in
  let rows =
    List.map
      (fun t ->
        (* Batch scheduler with batch T = buffer tokens per cross edge. *)
        let plan = Ccs.Partitioned.batch g a spec ~t in
        let measured = run_mpi g cache plan 8192 in
        let predicted = Ccs.Analysis.partition_cost_prediction spec a ~b ~t in
        [
          Printf.sprintf "%s (%.2f M)" (string_of_int t)
            (float_of_int t /. float_of_int m);
          f predicted;
          f measured;
        ])
      [ 32; 64; 128; 256; 512; 1024; 2048 ]
  in
  Ccs.Table.print ~header:[ "buffer tokens (T)"; "predicted"; "measured" ] ~rows;
  note "expect: falling until T ~ M, flat beyond (bandwidth term dominates)"

(* E10: c-bounded partitions need a c'M cache.  Fix the partition bound at
   c * (M/2) and vary c with the machine cache fixed at M.  Expected: c <=
   1 behaves; beyond c = 1 components stop fitting alongside their buffers
   and LRU loop-thrashes — the cliff that motivates the paper's explicit
   cache-augmentation statement. *)
let e10 () =
  section "E10-augmentation" "partition bound vs fixed machine cache";
  let g = Ccs.Generators.uniform_pipeline ~n:64 ~state:64 () in
  let a = R.analyze_exn g in
  let m = 512 and b = 16 in
  let cache = Ccs.Cache.config ~size_words:m ~block_words:b () in
  let rows =
    List.map
      (fun (label, bound) ->
        let spec = Ccs.Pipeline_partition.optimal_dp g a ~bound in
        let plan = Ccs.Partitioned.batch g a spec ~t:m in
        let measured = run_mpi g cache plan 4096 in
        [
          label;
          string_of_int bound;
          string_of_int (Sp.num_components spec);
          string_of_int (Sp.max_component_state spec);
          f measured;
        ])
      [
        ("c=1/4", m / 4);
        ("c=1/2", m / 2);
        ("c=1", m);
        ("c=2", 2 * m);
        ("c=3", 3 * m);
      ]
  in
  Ccs.Table.print
    ~header:[ "bound"; "words"; "comps"; "max comp"; "miss/in" ]
    ~rows;
  note
    "expect: cheap until components ~fill the cache (c=1/2..1), then a \
     thrashing cliff"

(* E11: Lemma 8 requires degree-limited partitions (component degree
   O(M/B)).  Sweep the fanout of a splitter isolated in its own component:
   past M/B cross edges the component cannot keep one block per cross
   buffer resident and the cost per token grows toward one miss per token
   (a factor-B degradation), exactly as the paper's "Notes on the upper
   bound" warns. *)
let e11 () =
  section "E11-degree-limit" "component degree vs per-token cost";
  let m = 512 and b = 16 in
  let cache = Ccs.Cache.config ~size_words:m ~block_words:b () in
  note "M/B = %d cross edges is the degree limit" (m / b);
  let rows =
    List.map
      (fun branches ->
        let g = Ccs.Generators.split_join ~branches ~depth:1 ~state:4 () in
        let a = R.analyze_exn g in
        (* Isolate {source, split} as one component; branches+join+sink as
           the other.  The first component's degree = branches. *)
        let assignment =
          Array.init (G.num_nodes g) (fun v ->
              if v = G.source g || v = G.node_of_name g "split" then 0 else 1)
        in
        let spec = Sp.of_assignment g assignment in
        let plan = Ccs.Partitioned.homogeneous g a spec ~m_tokens:m in
        let measured = run_mpi g cache plan 2048 in
        (* Per cross-edge-token cost: misses/input divided by tokens
           crossing per input (= branches + 1). *)
        let per_token = measured /. float_of_int (branches + 1) in
        (* Degree-limited in the operative sense: every component's
           block-rounded state plus one block per cross edge fits. *)
        let fits =
          let ok = ref true in
          for c = 0 to Sp.num_components spec - 1 do
            let rounded =
              List.fold_left
                (fun acc v -> acc + ((G.state g v + b - 1) / b * b))
                0 (Sp.members spec c)
            in
            if rounded + (b * Sp.component_degree spec c) > m then ok := false
          done;
          !ok
        in
        [
          string_of_int branches;
          (if fits then "yes" else "NO");
          f measured;
          f per_token;
          f (per_token *. float_of_int b);
        ])
      [ 4; 8; 16; 32; 64; 128 ]
  in
  Ccs.Table.print
    ~header:
      [ "fanout"; "degree-limited"; "miss/in"; "miss/token"; "xB of 1/B" ]
    ~rows;
  note "expect: miss/token ~ 1/B while degree-limited, rising toward 1 beyond"

let all () =
  e9 ();
  e10 ();
  e11 ()

(* DAG experiments: E4 (Lemma 8 upper bound on homogeneous DAGs), E5
   (Theorem 7 lower bound via exact minBW3), E8 (inhomogeneous
   granularity-T scheduling). *)

module G = Ccs.Graph
module R = Ccs.Rates
open Util

(* E4: homogeneous DAGs — split-joins and random layered graphs — scheduled
   by the T=M batch scheduler.  Expected: measured within a small constant
   of (2*bandwidth + state/T)/B, far below naive. *)
let e4 () =
  section "E4-dag-upper" "Lemma 8: partitioned homogeneous-DAG schedule cost";
  let b = 16 and m = 512 in
  let cache = Ccs.Cache.config ~size_words:m ~block_words:b () in
  let graphs =
    [
      ("split-join 8x8", Ccs.Generators.split_join ~branches:8 ~depth:8 ~state:32 ());
      ( "layered 6x4",
        Ccs.Generators.layered ~seed:9 ~layers:6 ~width:4
          ~state:(fun _ -> 48)
          ~edge_prob:0.3 () );
      ("butterfly 2^4", Ccs.Generators.butterfly ~stages:4 ~state:24 ());
      ("reduce tree d6", Ccs.Generators.binary_tree ~depth:6 ~state:24 ~reduce:true ());
    ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let a = R.analyze_exn g in
        let spec = fitting_partition ~b g ~m in
        let plan = Ccs.Partitioned.homogeneous g a spec ~m_tokens:m in
        let measured = run_mpi g cache plan 4000 in
        let predicted = Ccs.Analysis.partition_cost_prediction spec a ~b ~t:m in
        let naive = run_mpi g cache (Ccs.Baseline.round_robin g a) 4000 in
        (* The working criterion behind "degree-limited": every component's
           state plus one resident block per cross edge fits in cache. *)
        let deg_limited =
          let ok = ref true in
          for c = 0 to Ccs.Spec.num_components spec - 1 do
            if
              Ccs.Spec.component_state spec c
              + (b * Ccs.Spec.component_degree spec c)
              > m
            then ok := false
          done;
          !ok
        in
        [
          name;
          string_of_int (G.total_state g);
          string_of_int (Ccs.Spec.num_components spec);
          (if deg_limited then "yes" else "NO");
          f predicted;
          f measured;
          f naive;
          f (ratio naive measured);
        ])
      graphs
  in
  Ccs.Table.print
    ~header:
      [
        "graph"; "state"; "comps"; "deg-lim"; "predicted"; "measured"; "naive";
        "naive/part";
      ]
    ~rows;
  note
    "expect: measured ~ predicted and naive/part large where deg-lim holds; \
     graphs with an unsplittable wide node (deg-lim NO, e.g. a 64-way \
     source) pay the paper's B-factor penalty on that node's edges — see \
     'Notes on the upper bound' and E11"

(* E5: Theorem 7's lower bound, with minBW3 computed exactly by the
   order-ideal search on small DAGs.  Expected: every scheduler >= bound. *)
let e5 () =
  section "E5-dag-lower" "Theorem 7: (1/B) * minBW3 bounds every schedule";
  let m = 96 and b = 8 in
  let cfg = Ccs.Config.make ~cache_words:m ~block_words:b () in
  let cache = Ccs.Config.cache_config cfg in
  let graphs =
    List.map
      (fun seed ->
        ( Printf.sprintf "layered seed %d" seed,
          Ccs.Generators.layered ~seed ~layers:3 ~width:3
            ~state:(fun _ -> 32)
            ~edge_prob:0.4 () ))
      [ 1; 2; 3 ]
  in
  List.iter
    (fun (name, g) ->
      let a = R.analyze_exn g in
      match Ccs.Analysis.dag_lower_bound g a ~m ~b () with
      | None -> note "%s: graph too large for exact search (skipped)" name
      | Some lb ->
          note "%s: minBW3/B = %s (total state %d)" name (f lb)
            (G.total_state g);
          let rows =
            List.map
              (fun plan ->
                let mpi = run_mpi g cache plan 1500 in
                [ "  " ^ plan.Ccs.Plan.name; f mpi; f (ratio mpi lb) ])
              (Ccs.Compare.standard_plans g a cfg)
          in
          Ccs.Table.print ~header:[ "scheduler"; "miss/in"; "x bound" ] ~rows)
    graphs;
  note "expect: every ratio >= 1"

(* E8: inhomogeneous graphs under the granularity-T scheduler.  Expected:
   the batch scheduler handles non-unit rates and beats the baselines on
   state-heavy multirate graphs. *)
let e8 () =
  section "E8-inhomogeneous" "granularity-T scheduling of multirate graphs";
  let b = 16 and m = 1024 in
  let cache = Ccs.Cache.config ~size_words:m ~block_words:b () in
  let graphs =
    [
      ("up-down x8", Ccs.Generators.up_down_sampler ~stages:12 ~factor:8 ~state:96 ());
      ("mp3 32-band", Ccs_apps.Mp3.graph ());
      ("vocoder", Ccs_apps.Vocoder.graph ());
      ("random sdf", Ccs.Generators.random_sdf_dag ~seed:23 ~n:18 ~max_state:256 ~max_rate:4 ~extra_edges:6 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let a = R.analyze_exn g in
        let t = R.granularity g a ~at_least:m in
        let spec = fitting_partition g ~m in
        let part = Ccs.Partitioned.batch g a spec ~t in
        let mpart = run_mpi g cache part 2000 in
        let msa = run_mpi g cache (Ccs.Baseline.single_appearance g a) 2000 in
        let mmm = run_mpi g cache (Ccs.Baseline.minimal_memory g a) 2000 in
        [
          [
            name;
            string_of_int (G.total_state g);
            string_of_int t;
            f mpart;
            f msa;
            f mmm;
          ];
        ])
      graphs
  in
  Ccs.Table.print
    ~header:[ "graph"; "state"; "T"; "partitioned"; "single-app"; "min-mem" ]
    ~rows;
  note "expect: partitioned lowest wherever state >> M"

let all () =
  e4 ();
  e5 ();
  e8 ()

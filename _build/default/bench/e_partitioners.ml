(* E15: partitioner quality study — the NP-complete problem attacked four
   ways, as the paper's conclusion suggests (exact for small graphs,
   heuristics otherwise).  Compare bandwidth and resulting measured misses
   of: first-fit interval greedy, multi-order DP ("best"), multilevel
   (coarsen + exact on the contracted graph), and the exact order-ideal
   optimum where tractable. *)

module G = Ccs.Graph
module R = Ccs.Rates
module Sp = Ccs.Spec
open Util

let e15 () =
  section "E15-partitioners" "heuristics vs exact on the NP-complete problem";
  let m = 192 and b = 8 in
  let cache = Ccs.Cache.config ~size_words:m ~block_words:b () in
  let graphs =
    List.map
      (fun seed ->
        ( Printf.sprintf "layered s%d" seed,
          Ccs.Generators.layered ~seed ~layers:4 ~width:3
            ~state:(fun k -> 8 + (k mod 17))
            ~edge_prob:0.35 () ))
      [ 11; 12; 13 ]
    @ [
        ("split-join 4x3", Ccs.Generators.split_join ~branches:4 ~depth:3 ~state:12 ());
      ]
  in
  let header =
    [ "graph"; "partitioner"; "comps"; "bandwidth"; "miss/in" ]
  in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let a = R.analyze_exn g in
        let bound = max (m / 2) (max_state g) in
        let schemes =
          [
            ("greedy", Some (Ccs.Dag_partition.greedy g ~bound));
            ("order-dp", Some (Ccs.Dag_partition.best g a ~bound ()));
            ( "multilevel",
              Some (Ccs.Cluster.hierarchical g a ~bound ~coarsen_to:6 ()) );
            ("exact", Ccs.Dag_partition.exact g a ~bound ~max_nodes:20 ());
          ]
        in
        List.filter_map
          (fun (scheme, spec) ->
            Option.map
              (fun spec ->
                let t = R.granularity g a ~at_least:m in
                let plan = Ccs.Partitioned.batch g a spec ~t in
                let mpi = run_mpi g cache plan 2000 in
                [
                  name;
                  scheme;
                  string_of_int (Sp.num_components spec);
                  f (Ccs.Analysis.bandwidth_per_input spec a);
                  f mpi;
                ])
              spec)
          schemes)
      graphs
  in
  Ccs.Table.print ~header ~rows;
  note
    "expect: bandwidth(exact) <= bandwidth(order-dp) <= bandwidth(greedy); \
     misses track bandwidth; multilevel close to exact at a fraction of \
     the cost"

(* Build a custom streaming application with the Builder API, round-trip it
   through the text format, and schedule it — the workflow of a downstream
   user bringing their own graph.

   The application: a sensor fusion pipeline.  Two simulated sensor inputs
   cannot both be sources (the library wants a unique source), so a frame
   source fans out to two preprocessing chains whose results a fusion
   module combines — a little Kalman-style update with a heavy state
   matrix — followed by a decimating detector.

   Run with: dune exec examples/custom_graph.exe *)

module B = Ccs.Graph.Builder

let build () =
  let b = B.create ~name:"sensor-fusion" () in
  let frames = B.add_module b ~state:8 "frame-source" in
  let imu = B.add_module b ~state:96 "imu-preprocess" in
  let camera = B.add_module b ~state:640 "camera-preprocess" in
  (* The camera path works on 4-sample bursts. *)
  ignore (B.add_channel b ~src:frames ~dst:imu ~push:1 ~pop:1 ());
  ignore (B.add_channel b ~src:frames ~dst:camera ~push:1 ~pop:4 ());
  let camera_up = B.add_module b ~state:64 "camera-upsample" in
  ignore (B.add_channel b ~src:camera ~dst:camera_up ~push:1 ~pop:1 ());
  let fusion = B.add_module b ~state:1024 "kalman-fusion" in
  ignore (B.add_channel b ~src:imu ~dst:fusion ~push:1 ~pop:4 ());
  ignore (B.add_channel b ~src:camera_up ~dst:fusion ~push:4 ~pop:4 ());
  let detect = B.add_module b ~state:256 "detector" in
  ignore (B.add_channel b ~src:fusion ~dst:detect ~push:1 ~pop:8 ());
  let sink = B.add_module b ~state:4 "track-output" in
  ignore (B.add_channel b ~src:detect ~dst:sink ~push:1 ~pop:1 ());
  B.build b

let () =
  let g = build () in
  (* Round-trip through the text format (what `ccsched --file` reads). *)
  let text = Ccs.Serial.to_text g in
  print_string text;
  let g = Ccs.Serial.parse_exn text in

  (* Rate analysis: gains and the repetition vector. *)
  let a = Ccs.Rates.analyze_exn g in
  List.iter
    (fun v ->
      Printf.printf "%-20s gain=%-6s fires %d times per period\n"
        (Ccs.Graph.node_name g v)
        (Ccs.Rational.to_string (Ccs.Rates.gain a v))
        a.Ccs.Rates.repetition.(v))
    (Ccs.Graph.nodes g);

  (* Schedule for a cache about the size of the heaviest module (the
     paper's standing assumption is s(v) <= M with constant-factor
     augmentation, so the cache must comfortably hold the 1024-word fusion
     state) and compare against the baselines. *)
  let cfg = Ccs.Config.make ~cache_words:1536 ~block_words:16 () in
  Ccs.Compare.print (Ccs.Compare.run ~outputs:8000 g cfg)

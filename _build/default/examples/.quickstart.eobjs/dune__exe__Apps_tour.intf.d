examples/apps_tour.mli:

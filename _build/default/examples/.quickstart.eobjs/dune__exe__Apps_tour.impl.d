examples/apps_tour.ml: Ccs Ccs_apps List Printf

examples/fm_receiver_demo.mli:

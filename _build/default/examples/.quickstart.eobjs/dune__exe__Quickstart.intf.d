examples/quickstart.mli:

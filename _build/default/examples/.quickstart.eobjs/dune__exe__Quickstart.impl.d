examples/quickstart.ml: Ccs Printf

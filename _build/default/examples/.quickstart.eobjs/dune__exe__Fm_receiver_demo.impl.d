examples/fm_receiver_demo.ml: Array Ccs Float Format Printf

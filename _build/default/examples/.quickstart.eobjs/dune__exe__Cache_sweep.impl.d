examples/cache_sweep.ml: Ccs Ccs_apps List Printf

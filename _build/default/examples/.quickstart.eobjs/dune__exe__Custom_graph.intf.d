examples/custom_graph.mli:

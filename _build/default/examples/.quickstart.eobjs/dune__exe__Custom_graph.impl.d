examples/custom_graph.ml: Array Ccs List Printf

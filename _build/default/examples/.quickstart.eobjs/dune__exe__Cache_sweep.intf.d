examples/cache_sweep.mli:

(* A working FM receiver: synthesize an FM-modulated carrier, schedule the
   receiver graph with the paper's partitioned scheduler, and run REAL
   samples through it — demodulation happens while the cache simulator
   counts the misses the schedule incurs.  Finally verify the recovered
   baseband tone's frequency from its zero crossings.

   This is the workload the paper's introduction motivates (StreamIt / GNU
   Radio FM receivers), demonstrated end-to-end: same graph, same plan,
   data actually flowing.

   Run with: dune exec examples/fm_receiver_demo.exe *)

module B = Ccs.Graph.Builder

let tone = 0.01 (* cycles/sample at the decimated rate: what we must recover *)
let carrier = 0.25
let decimation = 4

(* Low-pass FIR: a simple moving-average-of-taps window is enough to pass
   the baseband tone and kill carrier residue. *)
let lowpass_taps n = Array.make n (1. /. float_of_int n)

let build () =
  let b = B.create ~name:"fm-receiver" () in
  let src = B.add_module b ~state:2 "rf-source" in
  let demod = B.add_module b ~state:1 "discriminator" in
  ignore (B.add_channel b ~src ~dst:demod ~push:1 ~pop:1 ());
  let lpf = B.add_module b ~state:(2 * 64) "low-pass" in
  (* Decimate by 4: consume 4 discriminator samples per output sample. *)
  ignore (B.add_channel b ~src:demod ~dst:lpf ~push:1 ~pop:decimation ());
  let audio = B.add_module b ~state:(2 * 16) "audio-shape" in
  ignore (B.add_channel b ~src:lpf ~dst:audio ~push:1 ~pop:1 ());
  let speaker = B.add_module b ~state:4 "speaker" in
  ignore (B.add_channel b ~src:audio ~dst:speaker ~push:1 ~pop:1 ());
  B.build b

let () =
  let g = build () in
  let speaker_kernel, recorded = Ccs.Kernels.collecting_sink ~state_words:4 in
  let program =
    Ccs.Program.create g (fun v ->
        match Ccs.Graph.node_name g v with
        | "rf-source" ->
            Ccs.Kernels.fm_source ~state_words:2 ~carrier
              ~tone:(tone /. float_of_int decimation)
        | "discriminator" -> Ccs.Kernels.fm_demodulate ~state_words:1
        | "low-pass" -> Ccs.Kernels.fir ~taps:(lowpass_taps 64)
        | "audio-shape" -> Ccs.Kernels.fir ~taps:(lowpass_taps 16)
        | "speaker" -> speaker_kernel
        | name -> failwith name)
  in

  (* Schedule with the paper's machinery... *)
  let cfg = Ccs.Config.make ~cache_words:128 ~block_words:16 () in
  let choice = Ccs.Auto.plan ~dynamic:false g cfg in
  Printf.printf "receiver: %d modules, %d words of state; partition: %d \
                 components, batch T=%d\n"
    (Ccs.Graph.num_nodes g) (Ccs.Graph.total_state g)
    (Ccs.Spec.num_components choice.Ccs.Auto.partition)
    choice.Ccs.Auto.batch;

  (* ...and run real samples through it. *)
  let engine =
    Ccs.Engine.of_plan ~program ~cache:(Ccs.Config.cache_config cfg)
      ~plan:choice.Ccs.Auto.plan ()
  in
  let audio_samples = 8_192 in
  let result = Ccs.Engine.run_plan engine choice.Ccs.Auto.plan ~outputs:audio_samples in
  Format.printf "%a@." Ccs.Runner.pp_result result;

  (* Estimate the recovered tone's frequency from zero crossings of the
     (DC-removed) audio. *)
  let audio = Array.of_list (recorded ()) in
  let n = Array.length audio in
  let mean = Array.fold_left ( +. ) 0. audio /. float_of_int n in
  let crossings = ref 0 in
  for i = 1 to n - 1 do
    let a = audio.(i - 1) -. mean and b = audio.(i) -. mean in
    if (a < 0. && b >= 0.) || (a >= 0. && b < 0.) then incr crossings
  done;
  (* Skip the filter warm-up transient by ignoring the first 5% in the
     count scale. *)
  let measured_freq = float_of_int !crossings /. 2. /. float_of_int n in
  Printf.printf
    "baseband tone: expected %.4f cycles/sample, measured %.4f (from %d \
     zero crossings over %d samples)\n"
    tone measured_freq !crossings n;
  if Float.abs (measured_freq -. tone) > 0.2 *. tone then begin
    print_endline "DEMODULATION FAILED";
    exit 1
  end
  else print_endline "demodulation OK — schedule moved real data correctly"

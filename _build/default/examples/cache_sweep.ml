(* Cache sweep: how does the partitioned scheduler's miss rate scale with
   the cache size on a fixed application?  Demonstrates the library's
   analytic predictions next to simulated measurements.

   Run with: dune exec examples/cache_sweep.exe *)

let () =
  let g = Ccs_apps.Des.graph () in
  Printf.printf "DES pipeline: %d modules, %d words of state\n"
    (Ccs.Graph.num_nodes g) (Ccs.Graph.total_state g);
  let b = 16 in
  let rows =
    List.map
      (fun m ->
        let cfg = Ccs.Config.make ~cache_words:m ~block_words:b () in
        let choice = Ccs.Auto.plan ~dynamic:false g cfg in
        let result, _ =
          Ccs.Runner.run ~graph:g ~cache:(Ccs.Config.cache_config cfg)
            ~plan:choice.Ccs.Auto.plan ~outputs:4000 ()
        in
        let predicted =
          Ccs.Analysis.partition_cost_prediction choice.Ccs.Auto.partition
            choice.Ccs.Auto.analysis ~b ~t:choice.Ccs.Auto.batch
        in
        let lower =
          Ccs.Analysis.pipeline_lower_bound g choice.Ccs.Auto.analysis ~m ~b
        in
        [
          string_of_int m;
          string_of_int (Ccs.Spec.num_components choice.Ccs.Auto.partition);
          Ccs.Table.fmt_float lower;
          Ccs.Table.fmt_float predicted;
          Ccs.Table.fmt_float result.Ccs.Runner.misses_per_input;
        ])
      [ 512; 1024; 2048; 4096; 8192; 16384 ]
  in
  Ccs.Table.print
    ~header:[ "M (words)"; "components"; "lower-bound"; "predicted"; "measured" ]
    ~rows

(* Tour of the application suite: schedule every app with the paper's
   partitioned scheduler and all baselines, on a modest simulated cache.

   Run with: dune exec examples/apps_tour.exe *)

let () =
  let cfg = Ccs.Config.make ~cache_words:2048 ~block_words:16 () in
  List.iter
    (fun entry ->
      let g = entry.Ccs_apps.Suite.graph () in
      Printf.printf "\n== %s: %s ==\n" entry.Ccs_apps.Suite.name
        entry.Ccs_apps.Suite.description;
      Printf.printf "   %d modules, %d channels, %d words of state\n"
        (Ccs.Graph.num_nodes g) (Ccs.Graph.num_edges g)
        (Ccs.Graph.total_state g);
      match Ccs.Rates.analyze g with
      | Error msg -> Printf.printf "   NOT RATE-MATCHED: %s\n" msg
      | Ok _ ->
          let report = Ccs.Compare.run ~outputs:4000 g cfg in
          Ccs.Compare.print report)
    Ccs_apps.Suite.all

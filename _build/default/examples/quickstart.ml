(* Quickstart: schedule a pipeline whose total state is 8x the cache and
   compare the paper's partitioned scheduler against the classic baselines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 64-stage pipeline, 128 words of state per module: 8192 words of
     total state against a 1024-word cache. *)
  let g = Ccs.Generators.uniform_pipeline ~n:64 ~state:128 () in
  let cfg = Ccs.Config.make ~cache_words:1024 ~block_words:16 () in

  (* One call does rate analysis, partitioning, and scheduling. *)
  let choice = Ccs.Auto.plan g cfg in
  Printf.printf "partition: %d components, bandwidth %s tokens/input\n"
    (Ccs.Spec.num_components choice.Ccs.Auto.partition)
    (Ccs.Rational.to_string
       (Ccs.Spec.bandwidth choice.Ccs.Auto.partition choice.Ccs.Auto.analysis));

  (* Run it against every baseline on the simulated DAM machine. *)
  let report = Ccs.Compare.run ~outputs:20_000 g cfg in
  Ccs.Compare.print report

lib/cache/cache.ml: Array Format Hashtbl Lru

lib/cache/trace_analysis.mli:

lib/cache/layout.ml: Option

lib/cache/ccs_cache.ml: Cache Layout Lru Trace_analysis

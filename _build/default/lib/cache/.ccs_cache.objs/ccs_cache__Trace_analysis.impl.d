lib/cache/trace_analysis.ml: Array Float Hashtbl List Printf

lib/cache/lru.mli:

lib/cache/layout.mli:

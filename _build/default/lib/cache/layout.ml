type region = { base : int; length : int }

type t = { align : int; mutable next : int }

let create ?(align = 1) () =
  if align < 1 then invalid_arg "Layout.create: align must be >= 1";
  { align; next = 0 }

let round_up x a = (x + a - 1) / a * a

let alloc ?align t ~len =
  if len < 0 then invalid_arg "Layout.alloc: negative length";
  let align = Option.value align ~default:t.align in
  if align < 1 then invalid_arg "Layout.alloc: align must be >= 1";
  let base = round_up t.next align in
  t.next <- base + len;
  { base; length = len }

let size t = t.next

let word r i =
  if i < 0 || i >= r.length then invalid_arg "Layout.word: out of region";
  r.base + i

let ring_word r i =
  if r.length <= 0 then invalid_arg "Layout.ring_word: empty region";
  let m = i mod r.length in
  r.base + (if m < 0 then m + r.length else m)

type node = { key : int; mutable prev : node option; mutable next : node option }

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable size : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create 64; head = None; tail = None; size = 0 }

let capacity t = t.capacity
let size t = t.size
let mem t k = Hashtbl.mem t.table k

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      unlink t n;
      push_front t n;
      `Hit
  | None ->
      let evicted =
        if t.size >= t.capacity then begin
          match t.tail with
          | None -> assert false
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key;
              t.size <- t.size - 1;
              Some lru.key
        end
        else None
      in
      let n = { key = k; prev = None; next = None } in
      push_front t n;
      Hashtbl.add t.table k n;
      t.size <- t.size + 1;
      `Miss evicted

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k;
      t.size <- t.size - 1;
      true

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0

let to_list_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

(* Reuse distance via the classic stack algorithm with a Fenwick tree:
   maintain a 0/1 array over trace positions marking each block's most
   recent access; the reuse distance of an access is the number of marked
   positions after the block's previous access. *)

module Fenwick = struct
  type t = { data : int array }

  let create n = { data = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.data do
      t.data.(!i) <- t.data.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of entries 0..i inclusive. *)
  let prefix t i =
    let acc = ref 0 in
    let i = ref (i + 1) in
    while !i > 0 do
      acc := !acc + t.data.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
end

let reuse_distances trace =
  let n = Array.length trace in
  let fen = Fenwick.create n in
  let last = Hashtbl.create 1024 in
  Array.mapi
    (fun i blk ->
      let d =
        match Hashtbl.find_opt last blk with
        | None -> max_int
        | Some p ->
            (* Distinct blocks touched strictly between p and i = marked
               positions in (p, i). *)
            let upto_i = Fenwick.prefix fen (i - 1) in
            let upto_p = Fenwick.prefix fen p in
            upto_i - upto_p
      in
      (match Hashtbl.find_opt last blk with
      | Some p -> Fenwick.add fen p (-1)
      | None -> ());
      Fenwick.add fen i 1;
      Hashtbl.replace last blk i;
      d)
    trace

let histogram ?buckets distances =
  let finite =
    Array.fold_left
      (fun acc d -> if d <> max_int then max acc d else acc)
      0 distances
  in
  let bounds =
    match buckets with
    | Some b -> Array.to_list b
    | None ->
        let rec go acc b = if b > finite then List.rev (b :: acc) else go (b :: acc) (2 * b) in
        go [] 1
  in
  let counts = Array.make (List.length bounds + 1) 0 in
  Array.iter
    (fun d ->
      if d = max_int then counts.(List.length bounds) <- counts.(List.length bounds) + 1
      else begin
        let rec place i = function
          | [] -> () (* unreachable: last bound >= finite max *)
          | b :: rest -> if d < b then counts.(i) <- counts.(i) + 1 else place (i + 1) rest
        in
        place 0 bounds
      end)
    distances;
  let labels =
    List.mapi
      (fun i b ->
        if i = 0 then Printf.sprintf "<%d" b else Printf.sprintf "<%d" b)
      bounds
    @ [ "cold" ]
  in
  List.map2 (fun l c -> (l, c)) labels (Array.to_list counts)

let misses_at ~distances ~capacity_blocks =
  Array.fold_left
    (fun acc d -> if d >= capacity_blocks then acc + 1 else acc)
    0 distances

let miss_curve ~distances ~capacities =
  List.map (fun c -> (c, misses_at ~distances ~capacity_blocks:c)) capacities

let working_set_curve ~trace ~windows =
  let n = Array.length trace in
  List.map
    (fun w ->
      if w <= 0 || w > n then (w, Float.nan)
      else begin
        let step = max 1 (w / 4) in
        let samples = ref 0 and total = ref 0 in
        let pos = ref 0 in
        let tbl = Hashtbl.create 64 in
        while !pos + w <= n do
          Hashtbl.reset tbl;
          for i = !pos to !pos + w - 1 do
            Hashtbl.replace tbl trace.(i) ()
          done;
          total := !total + Hashtbl.length tbl;
          incr samples;
          pos := !pos + step
        done;
        let avg =
          if !samples = 0 then Float.nan
          else float_of_int !total /. float_of_int !samples
        in
        (w, avg)
      end)
    windows

(** Address-space layout for simulated streaming programs.

    Assigns disjoint word-address ranges to named regions — module state and
    channel buffers — so that execution can present realistic addresses to
    the cache simulator.  Regions can be block-aligned (the default), which
    prevents false sharing between a module's state and a neighbouring
    buffer; packing without alignment is available for ablations. *)

type region = { base : int; length : int }

type t

val create : ?align:int -> unit -> t
(** [create ~align ()] starts an empty layout whose regions are aligned to
    multiples of [align] words (default 1 = packed). *)

val alloc : ?align:int -> t -> len:int -> region
(** Reserve [len] words (a zero-length region gets a valid base and length
    0).  [align] overrides the layout's default alignment for this region
    only. *)

val size : t -> int
(** Total words allocated (address space high-water mark). *)

val word : region -> int -> int
(** [word r i] is the address of the [i]-th word of [r].
    @raise Invalid_argument if [i] is outside the region. *)

val ring_word : region -> int -> int
(** [ring_word r i] is [word r (i mod length)] — the address of logical slot
    [i] of a ring buffer occupying [r].  Requires [length > 0]. *)

(** I/O-model (DAM) cache simulation substrate. *)

module Lru = Lru
module Cache = Cache
module Layout = Layout
module Trace_analysis = Trace_analysis

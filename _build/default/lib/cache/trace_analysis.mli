(** Offline analysis of recorded block traces: reuse distances and working
    sets.

    These are the classical tools for explaining cache behaviour — an LRU
    cache of [C] blocks hits exactly the accesses whose {e reuse distance}
    (number of distinct blocks touched since the previous access to the
    same block) is less than [C], so the reuse-distance histogram of a
    schedule IS its miss curve for every cache size at once.  The
    experiments use this to show mechanically why partitioned schedules
    beat naive ones: partitioning moves mass from reuse distances near the
    total footprint down to distances below [M/B]. *)

val reuse_distances : int array -> int array
(** [reuse_distances trace] maps each access to its reuse distance
    ([max_int] for first-ever accesses — cold misses).  Runs in
    O(n log n) (balanced-BIT counting over last-access positions). *)

val histogram : ?buckets:int array -> int array -> (string * int) list
(** Bucketed histogram of reuse distances.  Default bucket upper bounds
    are powers of two up to the maximum finite distance; cold accesses get
    their own final bucket.  Returns (label, count) rows in order. *)

val misses_at : distances:int array -> capacity_blocks:int -> int
(** Misses an LRU cache of [capacity_blocks] incurs on the trace: the
    number of accesses with reuse distance ≥ capacity (cold counts). *)

val miss_curve : distances:int array -> capacities:int list -> (int * int) list
(** [(capacity, misses)] for each requested capacity — the full LRU miss
    curve from one pass. *)

val working_set_curve :
  trace:int array -> windows:int list -> (int * float) list
(** Denning working sets: for each window length [w], the average number
    of distinct blocks touched in a sliding window of [w] accesses
    (sampled every [w/4] positions for speed). *)

type t = {
  cache_words : int;
  block_words : int;
  augmentation : int;
  policy : Ccs_cache.Cache.policy;
}

let make ?(augmentation = 3) ?(policy = Ccs_cache.Cache.Lru) ~cache_words
    ~block_words () =
  if augmentation < 1 then invalid_arg "Config.make: augmentation must be >= 1";
  ignore
    (Ccs_cache.Cache.config ~policy ~size_words:cache_words
       ~block_words ());
  { cache_words; block_words; augmentation; policy }

let cache_config t =
  Ccs_cache.Cache.config ~policy:t.policy ~size_words:t.cache_words
    ~block_words:t.block_words ()

let partition_bound t = t.augmentation * t.cache_words

let pp fmt t =
  Format.fprintf fmt "M=%dw B=%dw c=%d" t.cache_words t.block_words
    t.augmentation

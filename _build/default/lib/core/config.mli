(** Machine and scheduling configuration.

    Bundles the I/O-model parameters — cache size [M] and block size [B],
    in words — with the augmentation factor [c] used when asking for
    c-bounded partitions, and the replacement policy of the simulated
    cache. *)

type t = {
  cache_words : int;  (** The paper's [M]. *)
  block_words : int;  (** The paper's [B]. *)
  augmentation : int;
      (** The [c] of c-bounded partitions; the paper's constructions use
          values up to 8 (Theorem 5). *)
  policy : Ccs_cache.Cache.policy;
}

val make :
  ?augmentation:int ->
  ?policy:Ccs_cache.Cache.policy ->
  cache_words:int ->
  block_words:int ->
  unit ->
  t
(** Default [augmentation] is 3 (the bound in [minBW₃]); default policy is
    fully-associative LRU.
    @raise Invalid_argument on non-positive sizes or [block_words >
    cache_words]. *)

val cache_config : t -> Ccs_cache.Cache.config
(** The underlying simulator configuration. *)

val partition_bound : t -> int
(** [augmentation * cache_words]: the state bound handed to partitioners. *)

val pp : Format.formatter -> t -> unit

lib/core/auto.ml: Array Ccs_partition Ccs_sched Ccs_sdf Config List

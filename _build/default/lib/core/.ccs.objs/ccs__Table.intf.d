lib/core/table.mli:

lib/core/config.mli: Ccs_cache Format

lib/core/ccs.ml: Auto Ccs_cache Ccs_codegen Ccs_exec Ccs_multi Ccs_partition Ccs_runtime Ccs_sched Ccs_sdf Compare Config Table

lib/core/config.ml: Ccs_cache Format

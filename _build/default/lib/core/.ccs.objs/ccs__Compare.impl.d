lib/core/compare.ml: Auto Ccs_partition Ccs_sched Ccs_sdf Config Float Format List Option Printexc Printf Table

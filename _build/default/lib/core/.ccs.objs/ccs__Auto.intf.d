lib/core/auto.mli: Ccs_partition Ccs_sched Ccs_sdf Config

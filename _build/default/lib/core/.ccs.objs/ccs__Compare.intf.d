lib/core/compare.mli: Ccs_sched Ccs_sdf Config

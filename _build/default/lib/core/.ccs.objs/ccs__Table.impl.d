lib/core/table.ml: Array Buffer Float List Printf String

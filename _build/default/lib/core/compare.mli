(** Head-to-head comparison of schedulers on one graph and machine.

    Builds the full roster — the paper's partitioned schedulers plus every
    baseline from the related-work section — runs each on a fresh machine
    with its own buffer capacities, and reports measured misses alongside
    the analytic bounds.  This is the engine behind experiments E6/E7 and
    the [ccsched compare] CLI command. *)

type row = {
  result : Ccs_sched.Runner.result;
  ok : bool;  (** Whether the plan ran to the target without error. *)
  error : string option;
}

type report = {
  graph_name : string;
  config : Config.t;
  lower_bound : float option;
      (** Theorem 3 / Theorem 7 misses-per-input lower bound when
          computable. *)
  prediction : float option;
      (** Lemma 4/8 prediction for the partitioned plan. *)
  rows : row list;
}

val standard_plans :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Config.t -> Ccs_sched.Plan.t list
(** The roster: partitioned (static batch; plus the dynamic pipeline
    scheduler on pipelines, or the asynchronous dynamic DAG scheduler on
    delay-free homogeneous DAGs that actually get partitioned),
    single-appearance, round-robin, minimal-memory, auto-scaled Sermulins
    scaling, and Kohli-style greedy. *)

val run :
  ?outputs:int ->
  ?plans:Ccs_sched.Plan.t list ->
  Ccs_sdf.Graph.t ->
  Config.t ->
  report
(** Run every plan to [outputs] sink firings (default 10× the cache size,
    rounded up to whole periods by each plan).  A plan that raises is
    reported with [ok = false] rather than aborting the comparison. *)

val print : report -> unit
(** Human-readable table on stdout. *)

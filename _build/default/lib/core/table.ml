let render ~header ~rows =
  let all = header :: rows in
  let cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width = Array.make cols 0 in
  List.iter
    (fun r ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        r)
    all;
  let buf = Buffer.create 256 in
  let pad i cell =
    Buffer.add_string buf cell;
    if i < cols - 1 then
      Buffer.add_string buf (String.make (width.(i) - String.length cell + 2) ' ')
  in
  let line r =
    List.iteri pad r;
    Buffer.add_char buf '\n'
  in
  line header;
  let rule =
    List.init (List.length header) (fun i -> String.make width.(i) '-')
  in
  line rule;
  List.iter line rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)

let fmt_float x =
  if Float.is_nan x then "nan"
  else if x = 0. then "0"
  else if Float.abs x >= 1000. then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10. then Printf.sprintf "%.1f" x
  else if Float.abs x >= 0.01 then Printf.sprintf "%.3f" x
  else Printf.sprintf "%.2e" x

let to_csv ~header ~rows =
  let cell s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line r = String.concat "," (List.map cell r) in
  String.concat "\n" (List.map line (header :: rows)) ^ "\n"

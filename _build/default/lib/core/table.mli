(** Minimal fixed-width text tables for reports and benches. *)

val render : header:string list -> rows:string list list -> string
(** Pad every column to its widest cell; header separated by a dashed
    rule. *)

val print : header:string list -> rows:string list list -> unit
(** [render] to stdout. *)

val fmt_float : float -> string
(** Compact float formatting used across reports ("12.3", "0.042",
    "1.2e-05"). *)

val to_csv : header:string list -> rows:string list list -> string
(** RFC-4180-ish CSV (quotes cells containing commas, quotes or
    newlines). *)

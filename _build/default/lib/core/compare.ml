module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Sched = Ccs_sched
module Runner = Ccs_sched.Runner

type row = {
  result : Runner.result;
  ok : bool;
  error : string option;
}

type report = {
  graph_name : string;
  config : Config.t;
  lower_bound : float option;
  prediction : float option;
  rows : row list;
}

let standard_plans g analysis cfg =
  let m = cfg.Config.cache_words in
  let choice = Auto.plan ~dynamic:false g cfg in
  let static_partitioned = choice.Auto.plan in
  let dynamic_partitioned =
    if Graph.is_pipeline g then [ (Auto.plan ~dynamic:true g cfg).Auto.plan ]
    else if
      Graph.is_homogeneous g
      && List.for_all (fun e -> Graph.delay g e = 0) (Graph.edges g)
      && Ccs_partition.Spec.num_components choice.Auto.partition > 1
    then
      [
        Sched.Partitioned.dag_dynamic g analysis choice.Auto.partition
          ~m_tokens:m;
      ]
    else []
  in
  [ static_partitioned ]
  @ dynamic_partitioned
  @ [
      Sched.Baseline.single_appearance g analysis;
      Sched.Baseline.round_robin g analysis;
      Sched.Baseline.minimal_memory g analysis;
      Sched.Scaling.auto g analysis ~cache_words:m ();
      Sched.Kohli.auto g analysis ~cache_words:m;
    ]

let failed_result name =
  {
    Runner.plan_name = name;
    inputs = 0;
    outputs = 0;
    misses = 0;
    accesses = 0;
    misses_per_input = Float.nan;
    buffer_words = 0;
    address_space_words = 0;
  }

let run ?outputs ?plans g cfg =
  let analysis = Rates.analyze_exn g in
  let outputs =
    match outputs with Some o -> o | None -> 10 * cfg.Config.cache_words
  in
  let plans =
    match plans with Some p -> p | None -> standard_plans g analysis cfg
  in
  let cache = Config.cache_config cfg in
  let rows =
    List.map
      (fun plan ->
        match Runner.run ~graph:g ~cache ~plan ~outputs () with
        | result, _ -> { result; ok = true; error = None }
        | exception e ->
            {
              result = failed_result plan.Sched.Plan.name;
              ok = false;
              error = Some (Printexc.to_string e);
            })
      plans
  in
  let m = cfg.Config.cache_words and b = cfg.Config.block_words in
  let lower_bound =
    if Graph.is_pipeline g then
      Some (Sched.Analysis.pipeline_lower_bound g analysis ~m ~b)
    else Sched.Analysis.dag_lower_bound g analysis ~m ~b ~max_nodes:16 ()
  in
  let prediction =
    let choice = Auto.plan ~dynamic:false g cfg in
    Some
      (Sched.Analysis.partition_cost_prediction choice.Auto.partition analysis
         ~b ~t:choice.Auto.batch)
  in
  { graph_name = Graph.name g; config = cfg; lower_bound; prediction; rows }

let print report =
  Printf.printf "graph %s  [%s]\n" report.graph_name
    (Format.asprintf "%a" Config.pp report.config);
  (match report.lower_bound with
  | Some lb -> Printf.printf "lower bound (misses/input): %s\n" (Table.fmt_float lb)
  | None -> ());
  (match report.prediction with
  | Some p ->
      Printf.printf "partitioned prediction (misses/input): %s\n"
        (Table.fmt_float p)
  | None -> ());
  let rows =
    List.map
      (fun { result = r; ok; error } ->
        [
          r.Runner.plan_name;
          string_of_int r.Runner.inputs;
          string_of_int r.Runner.outputs;
          string_of_int r.Runner.misses;
          Table.fmt_float r.Runner.misses_per_input;
          string_of_int r.Runner.buffer_words;
          (if ok then "ok" else "FAIL: " ^ Option.value ~default:"?" error);
        ])
      report.rows
  in
  Table.print
    ~header:
      [ "scheduler"; "inputs"; "outputs"; "misses"; "miss/in"; "buffers"; "status" ]
    ~rows

type t =
  | Fire of Ccs_sdf.Graph.node
  | Seq of t list
  | Repeat of int * t

let fire v = Fire v
let seq l = Seq l

let repeat k body =
  if k < 0 then invalid_arg "Schedule.repeat: negative count";
  Repeat (k, body)

let of_list l = Seq (List.map (fun v -> Fire v) l)

let rec length = function
  | Fire _ -> 1
  | Seq l -> List.fold_left (fun acc s -> acc + length s) 0 l
  | Repeat (k, body) -> k * length body

let rec iter t ~f =
  match t with
  | Fire v -> f v
  | Seq l -> List.iter (fun s -> iter s ~f) l
  | Repeat (k, body) ->
      for _ = 1 to k do
        iter body ~f
      done

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun v -> acc := v :: !acc);
  List.rev !acc

let fire_counts ~num_nodes t =
  let counts = Array.make num_nodes 0 in
  let rec go mult = function
    | Fire v -> counts.(v) <- counts.(v) + mult
    | Seq l -> List.iter (go mult) l
    | Repeat (k, body) -> if k > 0 then go (mult * k) body
  in
  go 1 t;
  counts

let run machine t = iter t ~f:(Ccs_exec.Machine.fire machine)

let rec compress t =
  match t with
  | Fire _ -> t
  | Repeat (0, _) -> Seq []
  | Repeat (1, body) -> compress body
  | Repeat (k, body) -> (
      match compress body with
      | Seq [] -> Seq []
      | Repeat (k', inner) -> Repeat (k * k', inner)
      | body' -> Repeat (k, body'))
  | Seq l ->
      (* Flatten nested sequences. *)
      let flat =
        List.concat_map
          (fun s ->
            match compress s with Seq inner -> inner | other -> [ other ])
          l
      in
      (* Run-length encode adjacent equal items (treating Repeat (k, x)
         next to x as mergeable). *)
      let base = function Repeat (_, x) -> x | x -> x in
      let count = function Repeat (k, _) -> k | _ -> 1 in
      let rec rle acc = function
        | [] -> List.rev acc
        | x :: rest -> (
            match acc with
            | prev :: acc' when base prev = base x ->
                rle (Repeat (count prev + count x, base x) :: acc') rest
            | _ -> rle (x :: acc) rest)
      in
      (match rle [] flat with [ single ] -> single | items -> Seq items)

let equivalent a b = to_list a = to_list b

let rec pp fmt = function
  | Fire v -> Format.fprintf fmt "%d" v
  | Seq l ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           pp)
        l
  | Repeat (k, body) -> Format.fprintf fmt "%d*%a" k pp body

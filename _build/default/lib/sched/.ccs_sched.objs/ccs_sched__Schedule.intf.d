lib/sched/schedule.mli: Ccs_exec Ccs_sdf Format

lib/sched/scaling.mli: Ccs_sdf Plan Schedule

lib/sched/ccs_sched.ml: Analysis Baseline Kohli Partitioned Plan Runner Scaling Schedule Simulate

lib/sched/runner.ml: Array Ccs_cache Ccs_exec Ccs_sdf Float Format Plan

lib/sched/simulate.ml: Array Ccs_sdf List Schedule

lib/sched/schedule.ml: Array Ccs_exec Ccs_sdf Format List

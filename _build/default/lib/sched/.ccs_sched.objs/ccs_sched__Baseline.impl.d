lib/sched/baseline.ml: Array Ccs_sdf List Plan Schedule Simulate

lib/sched/partitioned.mli: Ccs_partition Ccs_sdf Plan

lib/sched/simulate.mli: Ccs_sdf Schedule

lib/sched/plan.ml: Array Ccs_exec Ccs_sdf Printf Schedule Simulate

lib/sched/plan.mli: Ccs_exec Ccs_sdf Schedule

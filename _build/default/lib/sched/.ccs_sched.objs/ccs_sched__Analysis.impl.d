lib/sched/analysis.ml: Array Ccs_partition Ccs_sdf Option

lib/sched/analysis.mli: Ccs_partition Ccs_sdf

lib/sched/runner.mli: Ccs_cache Ccs_exec Ccs_sdf Format Plan

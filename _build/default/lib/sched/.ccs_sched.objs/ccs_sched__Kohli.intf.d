lib/sched/kohli.mli: Ccs_sdf Plan

lib/sched/kohli.ml: Array Ccs_exec Ccs_sdf Plan Printf

lib/sched/baseline.mli: Ccs_sdf Plan

lib/sched/scaling.ml: Array Ccs_sdf List Plan Printf Schedule Simulate

lib/sched/partitioned.ml: Array Ccs_exec Ccs_partition Ccs_sdf Hashtbl List Plan Printf Schedule

module Graph = Ccs_sdf.Graph
module Minbuf = Ccs_sdf.Minbuf

let single_appearance g (a : Ccs_sdf.Rates.analysis) =
  let topo = Graph.topological_order g in
  let period =
    Schedule.seq
      (Array.to_list topo
      |> List.map (fun v -> Schedule.repeat a.repetition.(v) (Schedule.fire v))
      )
  in
  let capacities = Simulate.peaks g period in
  Plan.of_period ~name:"single-appearance" ~capacities period

let minimal_memory g (a : Ccs_sdf.Rates.analysis) =
  let mb = Minbuf.compute g a in
  let period = Schedule.of_list mb.Minbuf.schedule in
  Plan.of_period ~name:"minimal-memory" ~capacities:mb.Minbuf.capacity period

let round_robin g (a : Ccs_sdf.Rates.analysis) =
  (* One firing at a time, cycling through modules in topological order;
     a module that cannot fire (or has exhausted its period quota) is
     skipped.  Token-feasible by construction. *)
  let topo = Graph.topological_order g in
  let remaining = Array.copy a.repetition in
  let tokens = Array.init (Graph.num_edges g) (fun e -> Graph.delay g e) in
  let total = Array.fold_left ( + ) 0 remaining in
  let fired = ref 0 in
  let acc = ref [] in
  while !fired < total do
    let progressed = ref false in
    Array.iter
      (fun v ->
        if
          remaining.(v) > 0
          && List.for_all
               (fun e -> tokens.(e) >= Graph.pop g e)
               (Graph.in_edges g v)
        then begin
          List.iter
            (fun e -> tokens.(e) <- tokens.(e) - Graph.pop g e)
            (Graph.in_edges g v);
          List.iter
            (fun e -> tokens.(e) <- tokens.(e) + Graph.push g e)
            (Graph.out_edges g v);
          remaining.(v) <- remaining.(v) - 1;
          acc := v :: !acc;
          incr fired;
          progressed := true
        end)
      topo;
    if not !progressed then
      raise (Graph.Invalid_graph "Baseline.round_robin: deadlock")
  done;
  let period = Schedule.of_list (List.rev !acc) in
  let capacities = Simulate.peaks g period in
  Plan.of_period ~name:"round-robin" ~capacities period

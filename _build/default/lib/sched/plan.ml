type driver = Ccs_exec.Machine.t -> target_outputs:int -> unit

type t = {
  name : string;
  capacities : int array;
  period : Schedule.t option;
  drive : driver;
}

let of_period ~name ~capacities period =
  let drive machine ~target_outputs =
    let rec go () =
      if Ccs_exec.Machine.sink_outputs machine < target_outputs then begin
        Schedule.run machine period;
        go ()
      end
    in
    (* Guard against periods that never fire the sink. *)
    let before = Ccs_exec.Machine.sink_outputs machine in
    if target_outputs > before then begin
      Schedule.run machine period;
      if Ccs_exec.Machine.sink_outputs machine = before then
        invalid_arg
          (Printf.sprintf "Plan %s: period does not fire the sink" name);
      go ()
    end
  in
  { name; capacities; period = Some period; drive }

let dynamic ~name ~capacities drive = { name; capacities; period = None; drive }

let buffer_words t = Array.fold_left ( + ) 0 t.capacities

let validate g t =
  match t.period with
  | None -> Ok ()
  | Some period -> (
      if not (Simulate.legal g ~capacities:t.capacities period) then
        Error
          (Printf.sprintf "plan %s: period is not legal at its capacities"
             t.name)
      else if not (Simulate.is_periodic g period) then
        Error (Printf.sprintf "plan %s: period does not restore channel state" t.name)
      else
        match Ccs_sdf.Rates.analyze g with
        | Error msg -> Error msg
        | Ok a ->
            let counts =
              Schedule.fire_counts ~num_nodes:(Ccs_sdf.Graph.num_nodes g)
                period
            in
            let sink = Ccs_sdf.Graph.sink g in
            if counts.(sink) = 0 then
              Error (Printf.sprintf "plan %s: period never fires the sink" t.name)
            else begin
              let rep = a.Ccs_sdf.Rates.repetition in
              let ratio_num = counts.(0) and ratio_den = rep.(0) in
              let ok = ref (counts.(0) mod rep.(0) = 0) in
              Array.iteri
                (fun v c ->
                  if c * ratio_den <> rep.(v) * ratio_num then ok := false)
                counts;
              if !ok then Ok ()
              else
                Error
                  (Printf.sprintf
                     "plan %s: firing counts are not a multiple of the \
                      repetition vector"
                     t.name)
            end)

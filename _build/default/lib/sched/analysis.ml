module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Q = Ccs_sdf.Rational
module Spec = Ccs_partition.Spec
module Pipeline = Ccs_partition.Pipeline
module Dag = Ccs_partition.Dag

let pipeline_lower_bound g a ~m ~b =
  let chain = Pipeline.chain_order g in
  let n = Array.length chain in
  (* Carve maximal disjoint segments of state >= 2m, greedily from the
     head; each contributes the gain of its gain-minimizing edge. *)
  let total = ref Q.zero in
  let lo = ref 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + Graph.state g chain.(i);
    if !acc >= 2 * m then begin
      if !lo < i then begin
        let e = Pipeline.gain_minimizing_edge g a chain ~lo:!lo ~hi:i in
        total := Q.add !total (Rates.edge_gain a e)
      end;
      lo := i + 1;
      acc := 0
    end
  done;
  Q.to_float !total /. float_of_int b

let dag_lower_bound g a ~m ~b ?max_nodes () =
  if Graph.total_state g <= 3 * m then Some 0.
  else
    Option.map
      (fun bw -> Q.to_float bw /. float_of_int b)
      (Dag.min_bandwidth g a ~bound:(3 * m) ?max_nodes ())

let bandwidth_per_input spec a = Q.to_float (Spec.bandwidth spec a)

let partition_cost_prediction spec a ~b ~t =
  let state_loads = ref 0. in
  for c = 0 to Spec.num_components spec - 1 do
    state_loads :=
      !state_loads +. (float_of_int (Spec.component_state spec c) /. float_of_int t)
  done;
  (* Each cross-edge token is written once by the producing component and
     read once by the consuming one: two block-streamed touches. *)
  ((2. *. bandwidth_per_input spec a) +. !state_loads) /. float_of_int b

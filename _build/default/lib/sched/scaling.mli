(** Execution scaling à la Sermulins et al. (LCTES 2005).

    The paper's Section 6 describes this comparator: start from a given
    steady-state schedule and replace each module invocation by [s]
    back-to-back invocations, choosing the largest [s] that avoids
    "catastrophic spills" — i.e. the largest scaling whose buffer
    requirements still fit alongside the working state in cache.  Scaling
    amortizes state loads over [s] firings but multiplies channel
    occupancy, so it is a restricted point in the design space the paper's
    partitioning subsumes (module fusion + scaling = a special case of
    partition scheduling). *)

val scaled_schedule :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> s:int -> Schedule.t
(** The minimal-memory PASS with every invocation replaced by [s]
    back-to-back invocations of the same module.  One period of the scaled
    schedule equals [s] periods of the base schedule, so it is always
    token-legal and periodic. *)

val plan : Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> s:int -> Plan.t
(** Plan for a fixed scaling factor; capacities are the scaled schedule's
    measured peaks. *)

val auto :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  cache_words:int ->
  ?max_s:int ->
  unit ->
  Plan.t
(** Choose the largest [s] (up to [max_s], default 4096, by doubling then
    bisection) such that total scaled buffering plus the largest single
    module state fits in [cache_words]; falls back to [s = 1]. *)

(** Static schedules as compact looped firing programs.

    A static schedule is a tree of firings, sequences, and repetitions —
    the standard "looped schedule" representation from the SDF literature.
    A batch schedule like "repeat M times: fire the whole component once"
    is [Repeat (m, Seq [...])] rather than a length-[M·|C|] array, keeping
    memory proportional to the program, not the execution. *)

type t =
  | Fire of Ccs_sdf.Graph.node
  | Seq of t list
  | Repeat of int * t  (** [Repeat (k, body)]: execute [body] [k] times. *)

val fire : Ccs_sdf.Graph.node -> t
val seq : t list -> t
val repeat : int -> t -> t
(** @raise Invalid_argument if the count is negative. *)

val of_list : Ccs_sdf.Graph.node list -> t

val length : t -> int
(** Total number of firings when executed. *)

val iter : t -> f:(Ccs_sdf.Graph.node -> unit) -> unit
(** Visit every firing in execution order. *)

val to_list : t -> Ccs_sdf.Graph.node list
(** Flattened firing sequence (use only for small schedules/tests). *)

val fire_counts : num_nodes:int -> t -> int array
(** How many times each module fires, computed without unrolling. *)

val compress : t -> t
(** Semantics-preserving compaction: flattens nested sequences, drops
    empty/zero repeats, and run-length-encodes repeated adjacent
    sub-schedules (so [of_list [a;a;a;b;b]] becomes
    [Seq [Repeat (3, Fire a); Repeat (2, Fire b)]]).  {!iter} visits the
    same firing sequence before and after. *)

val equivalent : t -> t -> bool
(** Whether two schedules denote the same firing sequence (compares by
    flattening; intended for tests and small schedules). *)

val run : Ccs_exec.Machine.t -> t -> unit
(** Execute on a machine.
    @raise Ccs_exec.Machine.Not_fireable if the schedule is illegal for the
    machine's buffer capacities. *)

val pp : Format.formatter -> t -> unit

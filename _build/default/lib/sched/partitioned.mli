(** The paper's partition schedulers (Section 3).

    Given a well-ordered partition whose components fit in cache, schedule
    at two levels: the {e high level} loads one component at a time and
    executes it against large buffers on cross edges; the {e low level}
    schedules modules within the loaded component against minimum-size
    internal buffers.  Executing a loaded component [Θ(M)]-worth of work
    amortizes the [O(M/B)] cost of loading its state against the
    unavoidable cross-edge traffic, which is what makes the schedule's cost
    [O((T/B)·bandwidth(P))] (Lemmas 4 and 8).

    Three variants, exactly following the paper:

    - {!batch}: the static granularity-[T] schedule for general
      (inhomogeneous) dags — choose [T] with [T·gain(e)] integral and
      divisible by both endpoint rates on every edge, give each cross edge a
      [T·gain(e)]-token buffer, then execute components exactly once per
      batch of [T] inputs, in topological order.
    - {!homogeneous}: the simplification when all rates are 1 — [T = M],
      [M]-token cross buffers, and each component's low-level schedule is
      just its members in topological order, repeated [M] times.  (This is
      {!batch} with [t = m_tokens]; provided separately because the paper
      presents it separately and tests cross-check the two.)
    - {!pipeline_dynamic}: the online schedule for pipelines — [Θ(M)]
      buffers on cross edges, a segment is {e schedulable} when its input
      buffer is at least half full and its output buffer at most half full,
      and a scheduled segment runs until its input is empty or its output
      full.  The topological-order scan of the paper's continuity argument
      picks the segment to run, so no batch size is fixed a priori. *)

val batch :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  t:int ->
  Plan.t
(** [batch g a spec ~t] is the static partitioned plan at granularity [t]
    source firings per batch.
    @raise Invalid_argument if [t] is not a multiple of
    [Ccs_sdf.Rates.granularity g a ~at_least:1], or if the partition is not
    well-ordered. *)

val homogeneous :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  m_tokens:int ->
  Plan.t
(** The homogeneous-graph schedule with batch size [m_tokens] (the paper's
    [T = M]).
    @raise Invalid_argument if the graph is not homogeneous. *)

val dag_dynamic :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  m_tokens:int ->
  Plan.t
(** The paper's asynchronous dynamic schedule for homogeneous graphs
    (Section 3): give every cross edge a buffer of [m_tokens]; a component
    is schedulable when all its incoming cross edges hold [m_tokens] tokens
    and all its outgoing cross edges are empty; executing it fires every
    member [m_tokens] times (emptying the inputs and filling the outputs).
    Homogeneity guarantees some component is always schedulable.  Unlike
    {!homogeneous} this fixes no global batch phase — components are chosen
    online from buffer occupancies, which is the form that generalizes to
    parallel execution.
    @raise Invalid_argument if the graph is not homogeneous, has channel
    delays, or the partition is not well-ordered. *)

val pipeline_dynamic :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  m_tokens:int ->
  Plan.t
(** The dynamic half-full/half-empty pipeline schedule with [2·m_tokens]
    cross-edge buffers.
    @raise Invalid_argument if the graph is not a pipeline or the partition
    is not a segmentation of it. *)

val local_period :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_partition.Spec.t ->
  int ->
  Ccs_sdf.Graph.node list * int array
(** [local_period g a spec c] exposes the low-level schedule of component
    [c]: the latest-first firing order of one local period (each member [v]
    fires its local repetition count) and the resulting internal-edge peak
    occupancies (indexed by edge; zero for edges not internal to [c]).
    Used by tests to check the buffer-versus-state assumption. *)

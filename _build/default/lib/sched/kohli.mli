(** Kohli-style greedy cache-aware heuristic (UC Berkeley TR M04/3).

    The paper's Section 6 describes Kohli's proposal for chains: make
    {e local} decisions about whether to keep firing the current module
    (reusing its hot state) or move to its successor (keeping the produced
    data hot), based on estimated misses.  Because decisions are local, the
    heuristic cannot be asymptotically optimal — the evaluation uses it as
    the strongest pre-partitioning comparator.

    Our rendition, applicable to any topology with a unique topological
    order or any graph if driven per-node: give each channel a fixed budget
    of [buffer_tokens]; repeatedly sweep modules in topological order,
    firing each module as long as it remains fireable (inputs available and
    output space free) before moving on.  Each sweep thus amortizes one
    state load per module over as many firings as the local buffers
    allow. *)

val plan :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  buffer_tokens:int ->
  Plan.t
(** Dynamic plan with per-channel capacity
    [max (minBuf e) buffer_tokens]. *)

val auto :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> cache_words:int -> Plan.t
(** Sizes the per-channel budget so that all buffers together occupy about
    half of [cache_words], leaving the other half for module state — the
    balance Kohli's estimates aim for. *)

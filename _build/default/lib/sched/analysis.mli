(** Analytic cache-miss bounds, for predicted-versus-measured experiments.

    All quantities are expressed as misses {e per source firing} (per input
    item), matching how the paper states its amortized bounds. *)

val pipeline_lower_bound :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  m:int ->
  b:int ->
  float
(** Theorem 3's lower bound: greedily carve the chain into disjoint
    segments of total state at least [2m]; any schedule pays at least
    [(1/b) · Σ gain(gainMin(segment))] misses per input (up to the
    theorem's constant).  Returns [0] when the whole chain has state below
    [2m] (no segment qualifies — the graph fits in cache and the lower
    bound is vacuous). *)

val dag_lower_bound :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  m:int ->
  b:int ->
  ?max_nodes:int ->
  unit ->
  float option
(** Theorem 7/10's lower bound [(1/b) · minBW₃(G)], using the exact
    branch-and-bound partitioner with bound [3m].  [None] if the graph is
    too large for exact search or the bound is infeasible.  Returns
    [Some 0.] when the whole graph fits in [3m] (vacuous). *)

val partition_cost_prediction :
  Ccs_partition.Spec.t ->
  Ccs_sdf.Rates.analysis ->
  b:int ->
  t:int ->
  float
(** Lemma 4/8's upper-bound prediction for a partitioned schedule at batch
    granularity [t]: [(2·bandwidth(P) + Σ_c state(c)/t) / b] misses per
    input — cross-edge traffic (each token written once and read once)
    plus one state load per component per batch. *)

val bandwidth_per_input : Ccs_partition.Spec.t -> Ccs_sdf.Rates.analysis -> float
(** Just [bandwidth(P)] as a float (tokens crossing components per
    input). *)

module Graph = Ccs_sdf.Graph
module Machine = Ccs_exec.Machine
module Minbuf = Ccs_sdf.Minbuf

let plan g a ~buffer_tokens =
  let mb = Minbuf.compute g a in
  let capacities =
    Array.map (fun c -> max c buffer_tokens) mb.Minbuf.capacity
  in
  let topo = Graph.topological_order g in
  let drive machine ~target_outputs =
    while Machine.sink_outputs machine < target_outputs do
      let progressed = ref false in
      Array.iter
        (fun v ->
          while
            Machine.can_fire machine v
            && Machine.sink_outputs machine < target_outputs
          do
            Machine.fire machine v;
            progressed := true
          done)
        topo;
      if
        (not !progressed)
        && Machine.sink_outputs machine < target_outputs
      then
        raise
          (Graph.Invalid_graph "Kohli.plan: no module fireable (deadlock)")
    done
  in
  Plan.dynamic
    ~name:(Printf.sprintf "kohli-greedy-%d" buffer_tokens)
    ~capacities drive

let auto g a ~cache_words =
  let m = Graph.num_edges g in
  let budget = max 1 (cache_words / 2 / max 1 m) in
  plan g a ~buffer_tokens:budget

(** Baseline schedulers from the pre-existing streaming literature.

    These are the comparators the paper's related-work section discusses:
    none is cache-aware in the paper's sense, and the evaluation uses them
    to show the gap that partition scheduling closes.

    - {!single_appearance}: the classic minimum-code-size SDF schedule
      (Lee–Messerschmitt style): one period fires each module its full
      repetition count consecutively, in topological order.  Minimizes
      state reloads per period but maximizes buffering: every channel must
      hold a whole period's tokens.
    - {!minimal_memory}: the opposite extreme — the demand-driven PASS from
      {!Ccs_sdf.Minbuf}, which keeps channel occupancy minimal but reloads
      module state constantly once total state exceeds the cache.
    - {!round_robin}: fires modules one firing at a time in topological
      order (skipping modules that cannot fire), the naive operating-system
      style schedule. *)

val single_appearance : Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Plan.t

val minimal_memory : Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Plan.t

val round_robin : Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Plan.t

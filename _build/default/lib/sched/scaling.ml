module Graph = Ccs_sdf.Graph
module Minbuf = Ccs_sdf.Minbuf

let scaled_schedule g a ~s =
  if s < 1 then invalid_arg "Scaling.scaled_schedule: s must be >= 1";
  let mb = Minbuf.compute g a in
  Schedule.seq
    (List.map (fun v -> Schedule.repeat s (Schedule.fire v)) mb.Minbuf.schedule)

let plan g a ~s =
  let period = scaled_schedule g a ~s in
  let capacities = Simulate.peaks g period in
  Plan.of_period ~name:(Printf.sprintf "scaling-x%d" s) ~capacities period

let footprint g a ~s =
  let period = scaled_schedule g a ~s in
  let peaks = Simulate.peaks g period in
  let buffers = Array.fold_left ( + ) 0 peaks in
  let max_state =
    List.fold_left (fun acc v -> max acc (Graph.state g v)) 0 (Graph.nodes g)
  in
  buffers + max_state

let auto g a ~cache_words ?(max_s = 4096) () =
  let fits s = footprint g a ~s <= cache_words in
  if not (fits 1) then plan g a ~s:1
  else begin
    (* Doubling phase. *)
    let rec double s = if 2 * s <= max_s && fits (2 * s) then double (2 * s) else s in
    let lo = double 1 in
    (* Bisect in (lo, min (2*lo) max_s]. *)
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if fits mid then bisect mid hi else bisect lo mid
    in
    let s = bisect lo (min (2 * lo) max_s + 1) in
    plan g a ~s
  end

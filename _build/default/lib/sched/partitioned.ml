module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Q = Ccs_sdf.Rational
module Minbuf = Ccs_sdf.Minbuf
module Spec = Ccs_partition.Spec
module Machine = Ccs_exec.Machine

(* Local repetition vector of a component: the smallest positive integral
   vector proportional to the members' gains. *)
let local_repetition (a : Rates.analysis) members =
  let denoms =
    List.fold_left (fun acc v -> Q.lcm acc (Q.den a.node_gain.(v))) 1 members
  in
  let ints =
    List.map (fun v -> (v, Q.to_int_exn (Q.mul_int a.node_gain.(v) denoms)))
      members
  in
  let g = List.fold_left (fun acc (_, x) -> Q.gcd acc x) 0 ints in
  List.map (fun (v, x) -> (v, x / g)) ints

(* Latest-first simulation of one local period of component [c]: internal
   edges are token-tracked from their delays; cross edges are treated as
   unbounded supply/void.  Returns the firing order and internal peaks. *)
let local_period g (a : Rates.analysis) spec c =
  let members = Spec.members spec c in
  let local_rep = local_repetition a members in
  let remaining = Hashtbl.create 16 in
  List.iter (fun (v, k) -> Hashtbl.replace remaining v k) local_rep;
  let m = Graph.num_edges g in
  let internal e =
    Spec.component_of spec (Graph.src g e) = c
    && Spec.component_of spec (Graph.dst g e) = c
  in
  let tokens = Array.make m 0 in
  let peaks = Array.make m 0 in
  List.iter
    (fun e ->
      if internal e then begin
        tokens.(e) <- Graph.delay g e;
        peaks.(e) <- Graph.delay g e
      end)
    (Graph.edges g);
  let rank = Graph.topo_rank g in
  let enabled v =
    Hashtbl.find remaining v > 0
    && List.for_all
         (fun e -> (not (internal e)) || tokens.(e) >= Graph.pop g e)
         (Graph.in_edges g v)
  in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 local_rep in
  let order = ref [] in
  let fired = ref 0 in
  while !fired < total do
    let best = ref (-1) in
    List.iter
      (fun v -> if enabled v && (!best = -1 || rank.(v) > rank.(!best)) then best := v)
      members;
    (match !best with
    | -1 ->
        raise
          (Graph.Invalid_graph
             (Printf.sprintf "Partitioned.local_period: component %d deadlocked"
                c))
    | v ->
        List.iter
          (fun e -> if internal e then tokens.(e) <- tokens.(e) - Graph.pop g e)
          (Graph.in_edges g v);
        List.iter
          (fun e ->
            if internal e then begin
              tokens.(e) <- tokens.(e) + Graph.push g e;
              if tokens.(e) > peaks.(e) then peaks.(e) <- tokens.(e)
            end)
          (Graph.out_edges g v);
        Hashtbl.replace remaining v (Hashtbl.find remaining v - 1);
        order := v :: !order;
        incr fired)
  done;
  (List.rev !order, peaks)

let batch g (a : Rates.analysis) spec ~t =
  if not (Spec.is_well_ordered spec) then
    invalid_arg "Partitioned.batch: partition is not well-ordered";
  let base = Rates.granularity g a ~at_least:1 in
  if t < 1 || t mod base <> 0 then
    invalid_arg
      (Printf.sprintf
         "Partitioned.batch: t=%d is not a positive multiple of the \
          granularity %d"
         t base);
  let m = Graph.num_edges g in
  let capacities = Array.make m 0 in
  (* Cross edges hold a whole batch (plus initial tokens). *)
  List.iter
    (fun e ->
      capacities.(e) <- Rates.tokens_per_batch a ~t e + Graph.delay g e)
    (Spec.cross_edges spec);
  let order = Spec.component_topo_order spec in
  let component_schedules =
    Array.to_list order
    |> List.map (fun c ->
           let firing_order, peaks = local_period g a spec c in
           (* Internal capacities: the local period's peak occupancies. *)
           Array.iteri
             (fun e p -> if p > 0 then capacities.(e) <- max capacities.(e) p)
             peaks;
           (* Internal edges must at least admit a single push/pop even if
              the peak analysis yields less (e.g. zero-delay tight loops). *)
           List.iter
             (fun e ->
               if
                 Spec.component_of spec (Graph.src g e) = c
                 && Spec.component_of spec (Graph.dst g e) = c
               then
                 capacities.(e) <-
                   max capacities.(e) (max (Graph.push g e) (Graph.pop g e)))
             (Graph.edges g);
           (* Repeat count: firings per batch divided by the local period. *)
           let v0 =
             match Spec.members spec c with
             | v :: _ -> v
             | [] -> assert false
           in
           let local_rep = local_repetition a (Spec.members spec c) in
           let p0 = List.assoc v0 local_rep in
           let n0 = Rates.firings_per_batch a ~t v0 in
           assert (n0 mod p0 = 0);
           Schedule.repeat (n0 / p0) (Schedule.of_list firing_order))
  in
  let period = Schedule.seq component_schedules in
  Plan.of_period
    ~name:(Printf.sprintf "partitioned-batch-T%d" t)
    ~capacities period

let homogeneous g a spec ~m_tokens =
  if not (Graph.is_homogeneous g) then
    invalid_arg "Partitioned.homogeneous: graph is not homogeneous";
  let plan = batch g a spec ~t:m_tokens in
  { plan with Plan.name = Printf.sprintf "partitioned-homog-M%d" m_tokens }

(* --- Dynamic homogeneous-DAG schedule ------------------------------------ *)

let dag_dynamic g (a : Rates.analysis) spec ~m_tokens =
  if not (Graph.is_homogeneous g) then
    invalid_arg "Partitioned.dag_dynamic: graph is not homogeneous";
  if List.exists (fun e -> Graph.delay g e > 0) (Graph.edges g) then
    invalid_arg "Partitioned.dag_dynamic: channel delays are not supported";
  if not (Spec.is_well_ordered spec) then
    invalid_arg "Partitioned.dag_dynamic: partition is not well-ordered";
  ignore a;
  let mb = Minbuf.compute g a in
  let m = Graph.num_edges g in
  let capacities =
    Array.init m (fun e ->
        if Spec.is_cross spec e then m_tokens else mb.Minbuf.capacity.(e))
  in
  let order = Spec.component_topo_order spec in
  let k = Array.length order in
  let members = Array.map (fun c -> Spec.members spec c) order in
  let in_cross = Array.make k [] and out_cross = Array.make k [] in
  List.iter
    (fun e ->
      if Spec.is_cross spec e then begin
        let cs = Spec.component_of spec (Graph.src g e)
        and cd = Spec.component_of spec (Graph.dst g e) in
        Array.iteri
          (fun i c ->
            if c = cs then out_cross.(i) <- e :: out_cross.(i);
            if c = cd then in_cross.(i) <- e :: in_cross.(i))
          order
      end)
    (Graph.edges g);
  let drive machine ~target_outputs =
    let schedulable i =
      List.for_all
        (fun e -> Machine.tokens machine e >= m_tokens)
        in_cross.(i)
      && List.for_all (fun e -> Machine.tokens machine e = 0) out_cross.(i)
    in
    (* Prefer the latest schedulable component so tokens drain towards the
       sink and outputs appear as early as possible. *)
    let pick () =
      let rec scan i =
        if i < 0 then None else if schedulable i then Some i else scan (i - 1)
      in
      scan (k - 1)
    in
    let execute i =
      (* Each member fires m_tokens times: one topological pass of the
         component, repeated (the paper's low-level schedule for
         homogeneous graphs). *)
      for _ = 1 to m_tokens do
        List.iter (Machine.fire machine) members.(i)
      done
    in
    while Machine.sink_outputs machine < target_outputs do
      match pick () with
      | Some i -> execute i
      | None ->
          raise
            (Graph.Invalid_graph
               "Partitioned.dag_dynamic: no schedulable component")
    done
  in
  Plan.dynamic
    ~name:(Printf.sprintf "partitioned-dag-dyn-M%d" m_tokens)
    ~capacities drive

(* --- Dynamic pipeline schedule ------------------------------------------ *)

let pipeline_dynamic g (a : Rates.analysis) spec ~m_tokens =
  if not (Graph.is_pipeline g) then
    invalid_arg "Partitioned.pipeline_dynamic: graph is not a pipeline";
  if not (Spec.is_well_ordered spec) then
    invalid_arg "Partitioned.pipeline_dynamic: partition is not well-ordered";
  let mb = Minbuf.compute g a in
  let m = Graph.num_edges g in
  let capacities = Array.make m 0 in
  List.iter
    (fun e ->
      capacities.(e) <-
        (if Spec.is_cross spec e then
           max (2 * m_tokens)
             (2 * max (Graph.push g e) (Graph.pop g e) + Graph.delay g e)
         else mb.Minbuf.capacity.(e)))
    (Graph.edges g);
  let order = Spec.component_topo_order spec in
  let k = Array.length order in
  (* For a pipeline segmentation, component [order.(i)] has at most one
     outgoing cross edge. *)
  let out_cross = Array.make k None in
  List.iter
    (fun e ->
      if Spec.is_cross spec e then begin
        let cs = Spec.component_of spec (Graph.src g e) in
        Array.iteri (fun i c -> if c = cs then out_cross.(i) <- Some e) order
      end)
    (Graph.edges g);
  let members = Array.map (fun c -> Spec.members spec c) order in
  let rank = Graph.topo_rank g in
  let drive machine ~target_outputs =
    let half e = capacities.(e) / 2 in
    let output_at_most_half i =
      match out_cross.(i) with
      | None -> true (* last segment: the sink always drains *)
      | Some e -> Machine.tokens machine e <= half e
    in
    (* Paper's continuity scan: the first segment (in topological order)
       whose output cross edge is at most half full is schedulable — every
       earlier segment's output, which is this segment's input, is more
       than half full by construction of the scan. *)
    let pick () =
      let rec scan i =
        if i >= k then None
        else if output_at_most_half i then Some i
        else scan (i + 1)
      in
      scan 0
    in
    let execute i =
      (* Run the segment until nothing in it can fire (input exhausted or
         output full), latest-first to drain internal buffers. *)
      let progressed = ref false in
      let rec go () =
        let best = ref (-1) in
        List.iter
          (fun v ->
            if
              Machine.can_fire machine v
              && (!best = -1 || rank.(v) > rank.(!best))
            then best := v)
          members.(i);
        if !best >= 0 then begin
          Machine.fire machine !best;
          progressed := true;
          if Machine.sink_outputs machine < target_outputs then go ()
        end
      in
      go ();
      !progressed
    in
    while Machine.sink_outputs machine < target_outputs do
      match pick () with
      | Some i ->
          if not (execute i) then
            raise
              (Graph.Invalid_graph
                 "Partitioned.pipeline_dynamic: schedulable segment could \
                  not fire")
      | None ->
          raise
            (Graph.Invalid_graph
               "Partitioned.pipeline_dynamic: no schedulable segment")
    done
  in
  Plan.dynamic
    ~name:(Printf.sprintf "partitioned-pipeline-M%d" m_tokens)
    ~capacities drive

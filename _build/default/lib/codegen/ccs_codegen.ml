(** Compiler backend: emit standalone OCaml implementing a scheduled
    streaming program. *)

module Codegen = Codegen

lib/codegen/ccs_codegen.ml: Codegen

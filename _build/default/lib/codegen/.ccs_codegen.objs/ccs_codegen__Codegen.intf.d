lib/codegen/codegen.mli: Ccs_runtime Ccs_sched Ccs_sdf

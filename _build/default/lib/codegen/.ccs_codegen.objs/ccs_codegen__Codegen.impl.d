lib/codegen/codegen.ml: Array Buffer Ccs_runtime Ccs_sched Ccs_sdf List Printf String

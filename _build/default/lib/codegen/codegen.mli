(** Code generation: compile a scheduled streaming program to standalone
    OCaml source.

    This is the compiler-backend step a production streaming system (e.g.
    StreamIt, whose cache optimizations the paper discusses) performs after
    scheduling: the static looped schedule becomes straight-line code with
    nested loops, channels become preallocated ring buffers sized by the
    plan's capacities, and module state becomes plain arrays.  The emitted
    program is dependency-free OCaml, runnable with [ocaml prog.ml
    <periods>] (or compilable with ocamlopt), and prints the sink's firing
    count and a data checksum so generated code can be differentially
    tested against the in-process {!Ccs_runtime.Engine}.

    Module bodies are generated from the same conventions as
    {!Ccs_runtime.Kernels.autobind}'s [generic]/[counter]/[sink] trio —
    sources emit a counter stream, sinks accumulate a checksum, everything
    else applies the fixed mixing function [0.5·x + 0.25] — so for any
    graph the generated program and [Engine] with
    [Kernels.codegen_semantics] compute identical streams.  Users wanting
    real kernels replace the marked [fire_NAME] function bodies. *)

val emit : Ccs_sdf.Graph.t -> plan:Ccs_sched.Plan.t -> string
(** Emit the program text.
    @raise Invalid_argument if the plan is dynamic (no static period) or
    fails {!Ccs_sched.Plan.validate}. *)

val codegen_semantics :
  Ccs_sdf.Graph.t -> Ccs_sdf.Graph.node -> Ccs_runtime.Kernel.t
(** Kernels that compute exactly what the generated code computes, for
    differential testing.  The sink kernel keeps its checksum in
    [state.(0)] when it has room (state size ≥ 1). *)

(** Workload generators: families of rate-matched streaming graphs.

    All generated graphs are guaranteed acyclic, connected, rate-matched,
    single-source and single-sink, so every scheduler and partitioner in the
    library applies to them directly.  Randomized generators take an
    explicit [seed] and are deterministic given it. *)

(** {1 Pipelines} *)

val pipeline :
  ?name:string ->
  n:int ->
  state:(int -> int) ->
  rates:(int -> int * int) ->
  unit ->
  Graph.t
(** [pipeline ~n ~state ~rates ()] is a chain of [n] modules where module
    [i] has state [state i] and channel [i] (from module [i] to [i+1]) has
    rates [rates i = (push, pop)].  Chains are rate-matched for any rates.
    @raise Invalid_argument if [n < 1]. *)

val uniform_pipeline : ?name:string -> n:int -> state:int -> unit -> Graph.t
(** Homogeneous chain: all rates 1, all modules with the same state size. *)

val random_pipeline :
  ?name:string ->
  seed:int ->
  n:int ->
  max_state:int ->
  max_rate:int ->
  unit ->
  Graph.t
(** Chain with state sizes uniform in [[1, max_state]] and rates uniform in
    [[1, max_rate]]. *)

(** {1 Homogeneous DAGs} (all rates 1; trivially rate-matched) *)

val layered :
  ?name:string ->
  seed:int ->
  layers:int ->
  width:int ->
  state:(int -> int) ->
  edge_prob:float ->
  unit ->
  Graph.t
(** Random layered DAG: [layers] layers of [width] modules, a fresh source
    and sink.  Each node in layer [i] gains an edge to each node of layer
    [i+1] with probability [edge_prob]; connectivity is enforced by giving
    every node at least one predecessor and one successor.  [state k] gives
    the state of the [k]-th created interior module. *)

val split_join :
  ?name:string ->
  branches:int ->
  depth:int ->
  state:int ->
  unit ->
  Graph.t
(** StreamIt-style split-join: source → splitter → [branches] parallel
    chains of [depth] modules → joiner → sink, all rates 1. *)

val diamond : ?name:string -> width:int -> state:int -> unit -> Graph.t
(** Source fanning out to [width] parallel modules joined at a sink. *)

val chain_of_split_joins :
  ?name:string ->
  segments:int ->
  branches:int ->
  depth:int ->
  state:int ->
  unit ->
  Graph.t
(** The most common StreamIt program shape: a pipeline of [segments]
    split-join blocks (each: splitter → [branches] chains of [depth]
    modules → joiner), all rates 1. *)

val butterfly : ?name:string -> stages:int -> state:int -> unit -> Graph.t
(** FFT-style butterfly network with [2^stages] lanes and [stages] stages of
    pairwise exchanges; homogeneous. *)

val binary_tree :
  ?name:string -> depth:int -> state:int -> reduce:bool -> unit -> Graph.t
(** Complete binary tree of [depth] levels.  [reduce = true] gives a
    reduction tree (leaves feed towards a root then the sink); [false] gives
    an expansion tree (source fans out to leaves, gathered by a sink with a
    joiner chain to keep a unique sink). *)

(** {1 Inhomogeneous DAGs} *)

val random_sdf_dag :
  ?name:string ->
  seed:int ->
  n:int ->
  max_state:int ->
  max_rate:int ->
  extra_edges:int ->
  unit ->
  Graph.t
(** Random rate-matched DAG with non-unit rates.  Construction guarantees
    rate-matching by first assigning every module [v] a target gain [g(v)]
    (a random rational built from factors up to [max_rate]), then setting
    each channel's rates to the reduced fraction of [g(dst)/g(src)] scaled
    by a random factor.  A spanning chain keeps the graph connected;
    [extra_edges] additional forward edges are added where gains allow. *)

val up_down_sampler :
  ?name:string -> stages:int -> factor:int -> state:int -> unit -> Graph.t
(** Multirate chain alternating [factor]-fold upsamplers and downsamplers —
    the classic signal-processing stress case for buffer sizing. *)

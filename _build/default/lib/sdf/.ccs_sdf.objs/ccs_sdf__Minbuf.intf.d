lib/sdf/minbuf.mli: Graph Rates

lib/sdf/rates.ml: Array Graph List Option Printf Queue Rational Result Stdlib

lib/sdf/rational.mli: Format

lib/sdf/generators.ml: Array Graph List Printf Random Rational Stdlib

lib/sdf/rates.mli: Graph Rational

lib/sdf/graph.ml: Array Format Fun List Queue Stack String

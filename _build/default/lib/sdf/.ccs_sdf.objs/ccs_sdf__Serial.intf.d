lib/sdf/serial.mli: Graph

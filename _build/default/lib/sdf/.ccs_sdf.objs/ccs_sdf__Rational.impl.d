lib/sdf/rational.ml: Format Stdlib

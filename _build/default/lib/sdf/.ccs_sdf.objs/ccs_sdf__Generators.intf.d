lib/sdf/generators.mli: Graph

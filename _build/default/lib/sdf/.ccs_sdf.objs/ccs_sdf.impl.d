lib/sdf/ccs_sdf.ml: Generators Graph Minbuf Rates Rational Serial Transform

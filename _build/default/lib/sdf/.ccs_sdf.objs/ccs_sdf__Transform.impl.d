lib/sdf/transform.ml: Array Fun Graph List Rates Rational

lib/sdf/minbuf.ml: Array Graph List Printf Rates Rational Stdlib

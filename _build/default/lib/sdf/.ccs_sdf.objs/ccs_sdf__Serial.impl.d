lib/sdf/serial.ml: Buffer Format Graph Hashtbl List Printf String

module B = Graph.Builder
module Q = Rational

let pipeline ?(name = "pipeline") ~n ~state ~rates () =
  if n < 1 then invalid_arg "Generators.pipeline: n must be >= 1";
  let b = B.create ~name () in
  let ids =
    Array.init n (fun i ->
        B.add_module b ~state:(state i) (Printf.sprintf "m%d" i))
  in
  for i = 0 to n - 2 do
    let push, pop = rates i in
    ignore (B.add_channel b ~src:ids.(i) ~dst:ids.(i + 1) ~push ~pop ())
  done;
  B.build b

let uniform_pipeline ?(name = "uniform-pipeline") ~n ~state () =
  pipeline ~name ~n ~state:(fun _ -> state) ~rates:(fun _ -> (1, 1)) ()

let random_pipeline ?(name = "random-pipeline") ~seed ~n ~max_state ~max_rate
    () =
  let rng = Random.State.make [| seed |] in
  let rand k = 1 + Random.State.int rng k in
  pipeline ~name ~n
    ~state:(fun _ -> rand max_state)
    ~rates:(fun _ -> (rand max_rate, rand max_rate))
    ()

let layered ?(name = "layered") ~seed ~layers ~width ~state ~edge_prob () =
  if layers < 1 || width < 1 then
    invalid_arg "Generators.layered: layers and width must be >= 1";
  let rng = Random.State.make [| seed |] in
  let b = B.create ~name () in
  let source = B.add_module b ~state:1 "source" in
  let counter = ref 0 in
  let grid =
    Array.init layers (fun l ->
        Array.init width (fun w ->
            let k = !counter in
            incr counter;
            B.add_module b ~state:(state k) (Printf.sprintf "n%d_%d" l w)))
  in
  let sink = B.add_module b ~state:1 "sink" in
  let unit_edge src dst = ignore (B.add_channel b ~src ~dst ~push:1 ~pop:1 ()) in
  Array.iter (fun v -> unit_edge source v) grid.(0);
  for l = 0 to layers - 2 do
    let has_succ = Array.make width false in
    let has_pred = Array.make width false in
    for i = 0 to width - 1 do
      for j = 0 to width - 1 do
        if Random.State.float rng 1.0 < edge_prob then begin
          unit_edge grid.(l).(i) grid.(l + 1).(j);
          has_succ.(i) <- true;
          has_pred.(j) <- true
        end
      done
    done;
    (* Enforce connectivity: every node keeps the stream flowing. *)
    for i = 0 to width - 1 do
      if not has_succ.(i) then begin
        let j = Random.State.int rng width in
        unit_edge grid.(l).(i) grid.(l + 1).(j);
        has_pred.(j) <- true
      end
    done;
    for j = 0 to width - 1 do
      if not has_pred.(j) then
        unit_edge grid.(l).(Random.State.int rng width) grid.(l + 1).(j)
    done
  done;
  Array.iter (fun v -> unit_edge v sink) grid.(layers - 1);
  B.build b

let split_join ?(name = "split-join") ~branches ~depth ~state () =
  if branches < 1 || depth < 1 then
    invalid_arg "Generators.split_join: branches and depth must be >= 1";
  let b = B.create ~name () in
  let source = B.add_module b ~state:1 "source" in
  let split = B.add_module b ~state "split" in
  let unit_edge src dst = ignore (B.add_channel b ~src ~dst ~push:1 ~pop:1 ()) in
  unit_edge source split;
  let tails =
    List.init branches (fun br ->
        let rec chain prev d =
          if d = 0 then prev
          else begin
            let v =
              B.add_module b ~state (Printf.sprintf "b%d_%d" br (depth - d))
            in
            unit_edge prev v;
            chain v (d - 1)
          end
        in
        chain split depth)
  in
  let join = B.add_module b ~state "join" in
  List.iter (fun v -> unit_edge v join) tails;
  let sink = B.add_module b ~state:1 "sink" in
  unit_edge join sink;
  B.build b

let diamond ?(name = "diamond") ~width ~state () =
  split_join ~name ~branches:width ~depth:1 ~state ()

let chain_of_split_joins ?(name = "sj-chain") ~segments ~branches ~depth
    ~state () =
  if segments < 1 || branches < 1 || depth < 1 then
    invalid_arg "Generators.chain_of_split_joins: parameters must be >= 1";
  let b = B.create ~name () in
  let unit_edge src dst = ignore (B.add_channel b ~src ~dst ~push:1 ~pop:1 ()) in
  let source = B.add_module b ~state:1 "source" in
  let block prev seg =
    let split = B.add_module b ~state (Printf.sprintf "s%d-split" seg) in
    unit_edge prev split;
    let join = B.add_module b ~state (Printf.sprintf "s%d-join" seg) in
    for br = 0 to branches - 1 do
      let rec chain prev d =
        if d = 0 then prev
        else begin
          let v =
            B.add_module b ~state (Printf.sprintf "s%d-b%d-%d" seg br (depth - d))
          in
          unit_edge prev v;
          chain v (d - 1)
        end
      in
      unit_edge (chain split depth) join
    done;
    join
  in
  let last = ref source in
  for seg = 0 to segments - 1 do
    last := block !last seg
  done;
  let sink = B.add_module b ~state:1 "sink" in
  unit_edge !last sink;
  B.build b

let butterfly ?(name = "butterfly") ~stages ~state () =
  if stages < 1 then invalid_arg "Generators.butterfly: stages must be >= 1";
  let lanes = 1 lsl stages in
  let b = B.create ~name () in
  let source = B.add_module b ~state:1 "source" in
  let unit_edge src dst = ignore (B.add_channel b ~src ~dst ~push:1 ~pop:1 ()) in
  let stage_nodes st =
    Array.init lanes (fun l ->
        B.add_module b ~state (Printf.sprintf "s%d_%d" st l))
  in
  let first = stage_nodes 0 in
  Array.iter (fun v -> unit_edge source v) first;
  let last =
    let rec go prev st =
      if st > stages then prev
      else begin
        let cur = stage_nodes st in
        let stride = 1 lsl (st - 1) in
        for l = 0 to lanes - 1 do
          unit_edge prev.(l) cur.(l);
          unit_edge prev.(l) cur.(l lxor stride)
        done;
        go cur (st + 1)
      end
    in
    go first 1
  in
  let sink = B.add_module b ~state:1 "sink" in
  Array.iter (fun v -> unit_edge v sink) last;
  B.build b

let binary_tree ?(name = "binary-tree") ~depth ~state ~reduce () =
  if depth < 1 then invalid_arg "Generators.binary_tree: depth must be >= 1";
  let b = B.create ~name () in
  let unit_edge src dst = ignore (B.add_channel b ~src ~dst ~push:1 ~pop:1 ()) in
  let source = B.add_module b ~state:1 "source" in
  if reduce then begin
    (* Leaves fed by the source; internal nodes join pairs; root to sink. *)
    let rec level d =
      let count = 1 lsl d in
      let nodes =
        Array.init count (fun i ->
            B.add_module b ~state (Printf.sprintf "r%d_%d" d i))
      in
      if d = depth - 1 then Array.iter (fun v -> unit_edge source v) nodes
      else begin
        let children = level (d + 1) in
        Array.iteri
          (fun i v ->
            unit_edge children.(2 * i) v;
            unit_edge children.((2 * i) + 1) v)
          nodes
      end;
      nodes
    in
    let root = level 0 in
    let sink = B.add_module b ~state:1 "sink" in
    unit_edge root.(0) sink;
    B.build b
  end
  else begin
    (* Source to root; internal nodes fan out; leaves gathered by sink. *)
    let rec level d parents =
      if d >= depth then parents
      else begin
        let nodes =
          Array.init
            (1 lsl d)
            (fun i -> B.add_module b ~state (Printf.sprintf "e%d_%d" d i))
        in
        (match parents with
        | [| p |] when d = 0 -> unit_edge p nodes.(0)
        | _ ->
            Array.iteri
              (fun i v -> unit_edge parents.(i / 2) v)
              nodes);
        level (d + 1) nodes
      end
    in
    let leaves = level 0 [| source |] in
    let sink = B.add_module b ~state:1 "sink" in
    Array.iter (fun v -> unit_edge v sink) leaves;
    B.build b
  end

(* Gains drawn from a small set keep every edge's reduced rate fraction
   small, which keeps repetition vectors (and hence test periods) small. *)
let gain_choices =
  [| Q.one; Q.of_int 2; Q.make 1 2; Q.of_int 3; Q.make 1 3; Q.make 2 3;
     Q.make 3 2 |]

let random_sdf_dag ?(name = "random-sdf") ~seed ~n ~max_state ~max_rate
    ~extra_edges () =
  if n < 2 then invalid_arg "Generators.random_sdf_dag: n must be >= 2";
  let rng = Random.State.make [| seed |] in
  let rand k = 1 + Random.State.int rng k in
  let b = B.create ~name () in
  let gains = Array.make n Q.one in
  for i = 1 to n - 1 do
    gains.(i) <-
      (if i = n - 1 then Q.one
       else gain_choices.(Random.State.int rng (Array.length gain_choices)))
  done;
  let ids =
    Array.init n (fun i ->
        let nm =
          if i = 0 then "source"
          else if i = n - 1 then "sink"
          else Printf.sprintf "m%d" i
        in
        B.add_module b ~state:(rand max_state) nm)
  in
  let add_edge u v =
    let r = Q.div gains.(v) gains.(u) in
    let scale = 1 + Random.State.int rng (Stdlib.max 1 (max_rate / 2)) in
    ignore
      (B.add_channel b ~src:ids.(u) ~dst:ids.(v) ~push:(Q.num r * scale)
         ~pop:(Q.den r * scale) ())
  in
  for i = 1 to n - 1 do
    add_edge (i - 1) i
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra_edges && !attempts < extra_edges * 10 do
    incr attempts;
    let u = Random.State.int rng (n - 2) in
    let v = u + 2 + Random.State.int rng (Stdlib.max 1 (n - u - 2)) in
    if v < n then begin
      let r = Q.div gains.(v) gains.(u) in
      if Q.num r <= max_rate && Q.den r <= max_rate then begin
        add_edge u v;
        incr added
      end
    end
  done;
  B.build b

let up_down_sampler ?(name = "up-down") ~stages ~factor ~state () =
  if stages < 1 || factor < 1 then
    invalid_arg "Generators.up_down_sampler: stages and factor must be >= 1";
  (* Chain: src, (up, down) * stages, sink.  The upsampler at index 2s-1
     produces [factor] tokens per firing and the downsampler at index 2s
     consumes all [factor] of them per firing, so every module keeps unit
     gain while [factor] tokens are in flight between each pair. *)
  let n = 2 + (2 * stages) in
  pipeline ~name ~n
    ~state:(fun _ -> state)
    ~rates:(fun i -> if i mod 2 = 1 then (factor, factor) else (1, 1))
    ()

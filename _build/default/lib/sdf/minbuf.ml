type t = { capacity : int array; schedule : Graph.node list }

(* One period of a latest-first demand-driven schedule.  A module is enabled
   when every input channel holds at least [pop] tokens and it still has
   firings remaining in the period.  Among enabled modules we fire the one
   with the greatest topological rank, so tokens are consumed as soon as
   they are produced and occupancies stay near the per-edge minimum. *)
let compute g (a : Rates.analysis) =
  let n = Graph.num_nodes g and m = Graph.num_edges g in
  let remaining = Array.copy a.repetition in
  let tokens = Array.init m (fun e -> Graph.delay g e) in
  let peak = Array.copy tokens in
  let rank = Graph.topo_rank g in
  let enabled v =
    remaining.(v) > 0
    && List.for_all
         (fun e -> tokens.(e) >= Graph.pop g e)
         (Graph.in_edges g v)
  in
  let total_fires = Array.fold_left ( + ) 0 remaining in
  let schedule = ref [] in
  let fired = ref 0 in
  let progress = ref true in
  while !fired < total_fires && !progress do
    (* Pick the enabled module with the largest topological rank. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if enabled v && (!best = -1 || rank.(v) > rank.(!best)) then best := v
    done;
    match !best with
    | -1 -> progress := false
    | v ->
        List.iter
          (fun e -> tokens.(e) <- tokens.(e) - Graph.pop g e)
          (Graph.in_edges g v);
        List.iter
          (fun e ->
            tokens.(e) <- tokens.(e) + Graph.push g e;
            if tokens.(e) > peak.(e) then peak.(e) <- tokens.(e))
          (Graph.out_edges g v);
        remaining.(v) <- remaining.(v) - 1;
        schedule := v :: !schedule;
        incr fired
  done;
  if !fired < total_fires then
    raise (Graph.Invalid_graph "Minbuf.compute: schedule deadlocked");
  (* After one period every channel must return to its initial occupancy. *)
  Array.iteri
    (fun e occ ->
      if occ <> Graph.delay g e then
        raise
          (Graph.Invalid_graph
             (Printf.sprintf
                "Minbuf.compute: channel %d not balanced after one period" e)))
    tokens;
  (* A channel that never held a token still needs capacity for transit. *)
  let capacity =
    Array.mapi (fun e p -> Stdlib.max p (Graph.push g e)) peak
  in
  { capacity; schedule = List.rev !schedule }

let feasible g (a : Rates.analysis) ~capacities =
  let n = Graph.num_nodes g in
  let remaining = Array.copy a.repetition in
  let tokens = Array.init (Graph.num_edges g) (fun e -> Graph.delay g e) in
  let rank = Graph.topo_rank g in
  let enabled v =
    remaining.(v) > 0
    && List.for_all
         (fun e -> tokens.(e) >= Graph.pop g e)
         (Graph.in_edges g v)
    && List.for_all
         (fun e -> capacities.(e) - tokens.(e) >= Graph.push g e)
         (Graph.out_edges g v)
  in
  let total_fires = Array.fold_left ( + ) 0 remaining in
  let fired = ref 0 in
  let stuck = ref false in
  while !fired < total_fires && not !stuck do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if enabled v && (!best = -1 || rank.(v) > rank.(!best)) then best := v
    done;
    match !best with
    | -1 -> stuck := true
    | v ->
        List.iter
          (fun e -> tokens.(e) <- tokens.(e) - Graph.pop g e)
          (Graph.in_edges g v);
        List.iter
          (fun e -> tokens.(e) <- tokens.(e) + Graph.push g e)
          (Graph.out_edges g v);
        remaining.(v) <- remaining.(v) - 1;
        incr fired
  done;
  not !stuck

let tighten g a ?capacities () =
  let caps =
    match capacities with
    | Some c -> Array.copy c
    | None -> (compute g a).capacity
  in
  Array.iteri
    (fun e cap ->
      let floor_cap = max (Graph.push g e) (Graph.pop g e) in
      (* Binary search the smallest feasible capacity for edge e, all
         other edges held at their current values. *)
      let lo = ref floor_cap and hi = ref cap in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        caps.(e) <- mid;
        if feasible g a ~capacities:caps then hi := mid else lo := mid + 1
      done;
      caps.(e) <- !lo)
    (Array.copy caps);
  caps

let closed_form_bound g e =
  let pu = Graph.push g e and po = Graph.pop g e in
  pu + po - Rational.gcd pu po + Graph.delay g e

let total g t ~subset =
  List.fold_left
    (fun acc e ->
      if subset (Graph.src g e) && subset (Graph.dst g e) then
        acc + t.capacity.(e)
      else acc)
    0 (Graph.edges g)

module Q = Rational

type info = {
  graph : Graph.t;
  super_source : Graph.node option;
  super_sink : Graph.node option;
  node_map : Graph.node array;
}

let is_normalized g =
  List.length (Graph.sources g) = 1 && List.length (Graph.sinks g) = 1

let normalize ?(source_state = 1) ?(sink_state = 1) g =
  if is_normalized g then
    {
      graph = g;
      super_source = None;
      super_sink = None;
      node_map = Array.init (Graph.num_nodes g) Fun.id;
    }
  else begin
    let a = Rates.analyze_exn g in
    let b = Graph.Builder.create ~name:(Graph.name g) () in
    let node_map =
      Array.init (Graph.num_nodes g) (fun v ->
          Graph.Builder.add_module b ~state:(Graph.state g v)
            (Graph.node_name g v))
    in
    List.iter
      (fun e ->
        ignore
          (Graph.Builder.add_channel b ~delay:(Graph.delay g e)
             ~src:node_map.(Graph.src g e)
             ~dst:node_map.(Graph.dst g e)
             ~push:(Graph.push g e) ~pop:(Graph.pop g e) ()))
      (Graph.edges g);
    let sources = Graph.sources g and sinks = Graph.sinks g in
    let super_source =
      match sources with
      | [ _ ] -> None
      | _ ->
          let s =
            Graph.Builder.add_module b ~state:source_state "super-source"
          in
          (* A channel to original source v: the super source has gain 1,
             so push/pop must equal gain(v). *)
          List.iter
            (fun v ->
              let gv = Rates.gain a v in
              ignore
                (Graph.Builder.add_channel b ~src:s ~dst:node_map.(v)
                   ~push:(Q.num gv) ~pop:(Q.den gv) ()))
            sources;
          Some s
    in
    let super_sink =
      match sinks with
      | [ _ ] -> None
      | _ ->
          let t = Graph.Builder.add_module b ~state:sink_state "super-sink" in
          (* Give the super sink gain 1 as well: from original sink v with
             gain g, push/pop = 1/g in lowest terms. *)
          List.iter
            (fun v ->
              let gv = Rates.gain a v in
              ignore
                (Graph.Builder.add_channel b ~src:node_map.(v) ~dst:t
                   ~push:(Q.den gv) ~pop:(Q.num gv) ()))
            sinks;
          Some t
    in
    { graph = Graph.Builder.build b; super_source; super_sink; node_map }
  end

(** Minimum channel-buffer sizes and the periodic schedule that achieves
    them.

    The paper (Section 2) relies on a per-channel minimum buffer size
    [minBuf(e)] — computable for rate-matched graphs by the procedure of
    Lee and Messerschmitt — such that a deadlock-free periodic schedule
    exists with every channel bounded by its [minBuf].  We compute it
    constructively: simulate one period of a demand-driven schedule (always
    firing the {e latest} enabled module in topological order, which drains
    tokens towards the sink as eagerly as possible and hence keeps
    occupancies small) and record the maximum occupancy reached on each
    channel.  The recorded schedule is a periodic admissible sequential
    schedule (PASS) that provably respects the returned capacities, because
    it attained exactly those occupancies. *)

type t = {
  capacity : int array;   (** Per-channel buffer capacity, in tokens. *)
  schedule : Graph.node list;
      (** One period of firings respecting [capacity]; contains each module
          [v] exactly [repetition.(v)] times. *)
}

val compute : Graph.t -> Rates.analysis -> t
(** Minimum-buffer capacities and a witnessing single-period schedule.
    @raise Graph.Invalid_graph if the graph deadlocks even with unbounded
    buffers (cannot happen for rate-matched acyclic graphs, but guarded
    against). *)

val closed_form_bound : Graph.t -> Graph.edge -> int
(** [push e + pop e - gcd (push e) (pop e) + delay e]: the classical upper
    bound on the minimum buffer of a single channel considered in isolation.
    For homogeneous channels this is 1 (plus delay); the paper's
    [minBuf(e) = in(e) + out(e)] coarsening dominates it. *)

val total : Graph.t -> t -> subset:(Graph.node -> bool) -> int
(** Total capacity of channels internal to [subset] (both endpoints satisfy
    the predicate) — the quantity the paper's buffer-versus-state assumption
    bounds by [O(Σ state)]. *)

val feasible : Graph.t -> Rates.analysis -> capacities:int array -> bool
(** Whether {e some} single-period schedule exists under the given
    capacities: greedy latest-first simulation with full backtracking-free
    firing (latest-first is deadlock-optimal for this check in practice;
    a [false] answer means latest-first gets stuck, which for the bounded
    dataflow graphs here coincides with infeasibility of the capacities). *)

val tighten :
  Graph.t -> Rates.analysis -> ?capacities:int array -> unit -> int array
(** Minimize each channel's capacity individually: starting from
    [capacities] (default {!compute}'s), shrink every channel by binary
    search while {!feasible} still holds, processing channels in index
    order (the result is a per-edge local minimum, not the NP-hard joint
    minimum — cf. the buffer-minimization literature the paper cites
    [4, 23, 28]). *)

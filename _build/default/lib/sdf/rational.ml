type t = { num : int; den : int }

exception Overflow
exception Division_by_zero_rational

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (abs a) (abs b)

(* Overflow-checked multiplication: [a * b] fits in a native int iff dividing
   back recovers [a]. *)
let mul_exact a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul_exact (a / gcd a b) b)

let make num den =
  if den = 0 then raise Division_by_zero_rational
  else
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = gcd num den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num q = q.num
let den q = q.den

let add a b =
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  (* a.num*db + b.num*da over a.den*db; re-normalize to stay reduced. *)
  let n =
    let x = mul_exact a.num db and y = mul_exact b.num da in
    if (x > 0 && y > max_int - x) || (x < 0 && y < min_int - x) then
      raise Overflow
    else x + y
  in
  make n (mul_exact a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce first to keep intermediates small. *)
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (mul_exact (a.num / g1) (b.num / g2))
    (mul_exact (a.den / g2) (b.den / g1))

let inv a =
  if a.num = 0 then raise Division_by_zero_rational
  else if a.num < 0 then { num = -a.den; den = -a.num }
  else { num = a.den; den = a.num }

let div a b = mul a (inv b)
let mul_int a k = mul a (of_int k)

let compare a b =
  (* Compare a.num/a.den vs b.num/b.den without overflow when possible. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  else
    match
      (mul_exact a.num b.den, mul_exact b.num a.den)
    with
    | x, y -> Stdlib.compare x y
    | exception Overflow ->
        Stdlib.compare
          (float_of_int a.num /. float_of_int a.den)
          (float_of_int b.num /. float_of_int b.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = Stdlib.compare a.num 0
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den = 1 then a.num
  else invalid_arg "Rational.to_int_exn: not an integer"

let floor a =
  if a.num >= 0 then a.num / a.den
  else -(((-a.num) + a.den - 1) / a.den)

let ceil a =
  if a.num >= 0 then (a.num + a.den - 1) / a.den else -((-a.num) / a.den)

let to_float a = float_of_int a.num /. float_of_int a.den

let pp fmt a =
  if a.den = 1 then Format.fprintf fmt "%d" a.num
  else Format.fprintf fmt "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Graph.name g));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s (%d)\"];\n" v (Graph.node_name g v)
           (Graph.state g v)))
    (Graph.nodes g);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d/%d\"];\n" (Graph.src g e)
           (Graph.dst g e) (Graph.push g e) (Graph.pop g e)))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_text g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s\n" (Graph.name g));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "module %s %d\n" (Graph.node_name g v)
           (Graph.state g v)))
    (Graph.nodes g);
  List.iter
    (fun e ->
      let d = Graph.delay g e in
      Buffer.add_string buf
        (Printf.sprintf "channel %s %s %d %d%s\n"
           (Graph.node_name g (Graph.src g e))
           (Graph.node_name g (Graph.dst g e))
           (Graph.push g e) (Graph.pop g e)
           (if d = 0 then "" else Printf.sprintf " %d" d)))
    (Graph.edges g);
  Buffer.contents buf

let parse text =
  (* Pre-scan for the graph name so the builder is created under it. *)
  let pre_name =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun w -> w <> "")
           with
           | [ "graph"; n ] -> Some n
           | _ -> None)
  in
  let b = Graph.Builder.create ?name:pre_name () in
  let named = Hashtbl.create 16 in
  let graph_name = ref None in
  let error lineno fmt =
    Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s))
      fmt
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> go (lineno + 1) rest
        | [ "graph"; n ] ->
            graph_name := Some n;
            go (lineno + 1) rest
        | [ "module"; n; st ] -> (
            match int_of_string_opt st with
            | None -> error lineno "bad state size %S" st
            | Some st ->
                if Hashtbl.mem named n then
                  error lineno "duplicate module %S" n
                else begin
                  Hashtbl.add named n (Graph.Builder.add_module b ~state:st n);
                  go (lineno + 1) rest
                end)
        | "channel" :: s :: d :: pu :: po :: tl -> (
            let delay =
              match tl with
              | [] -> Some 0
              | [ x ] -> int_of_string_opt x
              | _ -> None
            in
            match
              ( Hashtbl.find_opt named s,
                Hashtbl.find_opt named d,
                int_of_string_opt pu,
                int_of_string_opt po,
                delay )
            with
            | Some src, Some dst, Some push, Some pop, Some delay -> (
                match
                  Graph.Builder.add_channel b ~delay ~src ~dst ~push ~pop ()
                with
                | _ -> go (lineno + 1) rest
                | exception Graph.Invalid_graph msg -> error lineno "%s" msg)
            | None, _, _, _, _ -> error lineno "unknown module %S" s
            | _, None, _, _, _ -> error lineno "unknown module %S" d
            | _ -> error lineno "bad channel line")
        | w :: _ -> error lineno "unknown directive %S" w)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
      ignore !graph_name;
      match Graph.Builder.build b with
      | g -> Ok g
      | exception Graph.Invalid_graph msg -> Error msg)

let parse_exn text =
  match parse text with
  | Ok g -> g
  | Error msg -> raise (Graph.Invalid_graph msg)

(** Textual serialization of streaming graphs.

    Two formats:
    - {!to_dot}: Graphviz DOT export for visualization (one-way).
    - a line-oriented format readable back by {!parse}, used by the
      [ccsched] CLI:

    {v
    graph NAME
    module NAME STATE
    channel SRC_NAME DST_NAME PUSH POP [DELAY]
    v}

    Blank lines and [#]-comments are ignored. *)

val to_dot : Graph.t -> string
(** Graphviz representation; modules are labelled [name (state)], channels
    [push/pop]. *)

val to_text : Graph.t -> string
(** Round-trippable text form ({!parse} recovers an equal graph). *)

val parse : string -> (Graph.t, string) result
(** Parse the text form.  Errors carry a line number and reason. *)

val parse_exn : string -> Graph.t
(** @raise Graph.Invalid_graph on parse failure. *)

(** Exact rational arithmetic on OCaml native integers.

    Gains of modules and edges in a synchronous dataflow graph are ratios of
    products of small integer rates, so exact rationals over native [int] are
    sufficient in practice.  All operations normalize (reduced fraction,
    positive denominator) and raise {!Overflow} rather than silently wrapping
    when a product exceeds the native range, so results are always exact. *)

type t = private { num : int; den : int }
(** A rational [num / den] in lowest terms with [den > 0]. *)

exception Overflow
(** Raised when an intermediate product cannot be represented in a native
    [int]. *)

exception Division_by_zero_rational
(** Raised when constructing a rational with a zero denominator or dividing
    by the zero rational. *)

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero_rational if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t

val mul_int : t -> int -> t
(** [mul_int q k] is [q * k]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int

val is_integer : t -> bool

val to_int_exn : t -> int
(** [to_int_exn q] is the integer value of [q].
    @raise Invalid_argument if [q] is not an integer. *)

val floor : t -> int
val ceil : t -> int

val to_float : t -> float

val gcd : int -> int -> int
(** Greatest common divisor on non-negative results; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple. @raise Overflow on native overflow. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

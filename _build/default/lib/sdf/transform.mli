(** Graph normalizations the paper assumes without loss of generality.

    Section 2: "the streaming graph contains a single source node s ...
    and a single sink node t ... This assumption is without loss of
    generality, as a multisource or multisink dag can be transformed into
    one with a single source and sink."  {!normalize} performs that
    transformation, preserving rate-matching by deriving the new channels'
    rates from the existing gains. *)

type info = {
  graph : Graph.t;  (** The normalized graph. *)
  super_source : Graph.node option;
      (** The added source, or [None] if the input already had a unique
          one. *)
  super_sink : Graph.node option;
  node_map : Graph.node array;
      (** Original node id -> id in the normalized graph (ids are
          preserved; added nodes get fresh ids at the end). *)
}

val normalize : ?source_state:int -> ?sink_state:int -> Graph.t -> info
(** Add a zero-overhead super source feeding every original source and a
    super sink draining every original sink (state sizes default to 1).
    The rates on each added channel are the reduced fraction of the
    original endpoint's gain, so the result is rate-matched iff the input
    was.
    @raise Graph.Invalid_graph if the input is not rate-matched or not
    connected (gains would be ill-defined). *)

val is_normalized : Graph.t -> bool
(** Whether the graph already has a unique source and a unique sink. *)

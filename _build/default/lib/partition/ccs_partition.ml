(** Graph partitioning: the constrained-partition side of the paper's
    scheduling-to-partitioning reduction. *)

module Spec = Spec
module Pipeline = Pipeline
module Dag = Dag
module Cluster = Cluster

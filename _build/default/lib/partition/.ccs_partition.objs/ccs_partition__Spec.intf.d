lib/partition/spec.mli: Ccs_sdf Format

lib/partition/ccs_partition.ml: Cluster Dag Pipeline Spec

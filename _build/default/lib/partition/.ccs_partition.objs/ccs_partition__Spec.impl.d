lib/partition/spec.ml: Array Buffer Ccs_sdf Format Fun Hashtbl List Printf Queue String

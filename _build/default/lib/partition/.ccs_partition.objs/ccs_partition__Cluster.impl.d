lib/partition/cluster.ml: Array Ccs_sdf Dag List Printf Spec

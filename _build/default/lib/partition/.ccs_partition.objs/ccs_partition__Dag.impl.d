lib/partition/dag.ml: Array Ccs_sdf Hashtbl List Option Printf Spec Stack

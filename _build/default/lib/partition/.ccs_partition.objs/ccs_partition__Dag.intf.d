lib/partition/dag.mli: Ccs_sdf Spec

lib/partition/pipeline.mli: Ccs_sdf Spec

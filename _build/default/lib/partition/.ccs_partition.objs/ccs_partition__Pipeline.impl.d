lib/partition/pipeline.ml: Array Ccs_sdf List Option Printf Spec

lib/partition/cluster.mli: Ccs_sdf Spec

(** Component fusion: contract a partition into a coarser SDF graph.

    The paper observes that the module-fusion heuristic of Sermulins et al.
    "can be viewed as a special case of our partitioning method": fusing a
    component is exactly replacing it by a single module whose firing runs
    one local period of the component's low-level schedule.  This module
    performs that contraction, yielding a {e valid SDF graph} that can be
    re-analyzed, re-partitioned (hierarchically), or scheduled by any
    scheduler in the library:

    - the fused module's state is the component's total module state plus
      its internal minimum buffers (both must be resident to run a local
      period);
    - each cross edge [(u, v)] keeps its token rates per {e original}
      firing, scaled to per-fused-firing rates: the fused component fires
      once per local period, during which [u] fires [p(u)] times, so the
      fused push is [p(u) · push(u, v)] (symmetrically for pops);
    - parallel cross edges between the same pair of components remain
      parallel channels (they are genuinely distinct streams);
    - delays on cross edges are preserved; delays on internal edges fold
      into the fused module's initial conditions and must not make the
      local period under-determined (checked).

    Contracting a well-ordered partition always yields a DAG (that is
    Definition 2), and the result of contracting a rate-matched graph is
    rate-matched. *)

type mapping = {
  graph : Ccs_sdf.Graph.t;  (** The contracted graph. *)
  node_of_component : int array;
      (** Component id -> node id in the contracted graph. *)
  component_of_node : int array;
      (** Node id in the contracted graph -> component id. *)
  edge_of_cross : (Ccs_sdf.Graph.edge * Ccs_sdf.Graph.edge) list;
      (** Pairs [(original cross edge, contracted edge)]. *)
}

val contract :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Spec.t -> mapping
(** Contract every component of a well-ordered partition to one module.
    @raise Invalid_argument if the partition is not well-ordered. *)

val fuse_smallest :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  bound:int ->
  Ccs_sdf.Graph.t
(** Convenience: greedily fuse adjacent modules while the fused state stays
    at most [bound] — the coarsening step a hierarchical partitioner would
    apply before running an expensive algorithm on the smaller graph. *)

val hierarchical :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  bound:int ->
  ?coarsen_to:int ->
  ?max_degree:int ->
  unit ->
  Spec.t
(** Multilevel partitioning, the strategy the paper's conclusion points at
    for large graphs ("use an exact integer-programming graph partitioner
    when the dag is relatively small", made applicable by coarsening):
    greedily pre-fuse modules into clusters of state at most
    [bound / coarsen_to] (default 8), contract, partition the contracted
    graph {e exactly} when it has at most 20 nodes (else with the order-DP
    heuristic), and project the result back to the original modules.
    Projection preserves well-orderedness, and since fused-node states
    over-approximate member states the result is [bound]-bounded. *)

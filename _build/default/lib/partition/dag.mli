(** Partitioning algorithms for general streaming DAGs.

    Finding a minimum-bandwidth well-ordered c-bounded partition of a DAG is
    NP-complete (Garey & Johnson ND15, "Acyclic Partition"), so — exactly as
    the paper's conclusions suggest — we provide (a) fast heuristics for
    graphs of practical size, and (b) an exact exponential-time search for
    small graphs, used both when the application graph is genuinely small
    (partitioning happens at compile time, so this can be worthwhile) and to
    compute the true [minBW] needed by the lower-bound experiments.

    A key structural fact used throughout: a partition is well-ordered if
    and only if its components are intervals of {e some} topological order
    of the graph (peel components of the contracted DAG in topological
    order, listing each component's members consecutively).  Hence interval
    partitions of topological orders are exactly the well-ordered
    partitions, and both the heuristic and the exact search explore that
    space. *)

val interval : Ccs_sdf.Graph.t -> order:Ccs_sdf.Graph.node array -> bound:int -> Spec.t
(** Greedy interval chunking of the given topological order: scan the order
    accumulating a component until adding the next module would exceed
    [bound] state; then start a new component.  Always well-ordered and
    [bound]-bounded.
    @raise Invalid_argument if some module's state exceeds [bound] or
    [order] is not a permutation of the nodes. *)

val greedy : Ccs_sdf.Graph.t -> bound:int -> Spec.t
(** {!interval} on a locality-aware topological order (depth-first: after a
    module, prefer its successors), which keeps communicating modules in
    the same component far more often than breadth-first orders. *)

val order_dp :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  order:Ccs_sdf.Graph.node array ->
  bound:int ->
  ?max_degree:int ->
  ?pinned:(Ccs_sdf.Graph.node -> bool) ->
  unit ->
  Spec.t
(** Optimal interval partition of the given topological order: among all
    ways of chunking [order] into consecutive components with state at most
    [bound] (and, when [max_degree] is given, cross-edge degree at most
    [max_degree] — softly: single-node components are always admitted, as
    a node wider than the cap cannot be split and the paper's
    degree-limited hypothesis simply fails for such graphs), minimize
    bandwidth — by an O(n²·deg) dynamic program.
    When a segment is closed, the gains of its outgoing edges are paid once
    (edges into a segment were paid by the segment of their source, so
    nothing is double-counted).  Subsumes {!interval} (same search space,
    optimal instead of first-fit).

    [pinned] marks modules that must form singleton components — the
    paper's footnote-2 treatment of modules that violate the SDF
    assumptions (data-dependent rates, packet extractors, ...): "forcing
    these modules to the boundaries of subgraphs".
    @raise Invalid_argument if [order] is not a topological permutation,
    some module exceeds [bound], or the degree cap makes chunking
    infeasible. *)

val candidate_orders :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> Ccs_sdf.Graph.node array list
(** Topological orders worth trying: depth-first (locality), breadth-first,
    and gain-weighted depth-first (heavy edges kept adjacent so cheap edges
    land on chunk boundaries). *)

val best :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  bound:int ->
  ?max_degree:int ->
  ?pinned:(Ccs_sdf.Graph.node -> bool) ->
  unit ->
  Spec.t
(** The production heuristic: run {!order_dp} over every candidate order
    (falling back to {!interval} if a degree cap makes the DP infeasible
    for some order), pick the minimum-bandwidth result, then {!refine}
    (a refinement that would merge a [pinned] module is discarded). *)

val refine :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  bound:int ->
  ?max_degree:int ->
  ?max_passes:int ->
  Spec.t ->
  Spec.t
(** Local search: repeatedly try moving a single boundary module to an
    adjacent component, accepting moves that keep the partition
    well-ordered, [bound]-bounded (and degree-capped when [max_degree] is
    given) and strictly reduce bandwidth, until a pass makes no progress
    (or [max_passes], default 8, is reached). *)

val exact :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  bound:int ->
  ?max_nodes:int ->
  unit ->
  Spec.t option
(** Exact minimum-bandwidth well-ordered [bound]-bounded partition, by
    memoized search over order ideals: a state is the set of already-peeled
    modules (always a down-closed set); a transition peels one more
    component — a subset of the ready frontier closed under the ideal
    property — paying the gains of its outgoing edges.  Worst-case
    exponential; refuses graphs with more than [max_nodes] (default 20)
    modules by returning [None].  Also returns [None] if some module's
    state exceeds [bound]. *)

val min_bandwidth :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  bound:int ->
  ?max_nodes:int ->
  unit ->
  Ccs_sdf.Rational.t option
(** Bandwidth of the {!exact} partition — the paper's [minBW_c(G)] with
    [bound = c*M]. *)

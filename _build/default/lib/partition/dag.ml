module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Q = Ccs_sdf.Rational

let check_states g ~bound ~what =
  List.iter
    (fun v ->
      if Graph.state g v > bound then
        invalid_arg
          (Printf.sprintf "%s: module %s has state %d > bound %d" what
             (Graph.node_name g v) (Graph.state g v) bound))
    (Graph.nodes g)

let interval g ~order ~bound =
  check_states g ~bound ~what:"Dag.interval";
  let n = Graph.num_nodes g in
  if Array.length order <> n then
    invalid_arg "Dag.interval: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Dag.interval: order is not a permutation";
      seen.(v) <- true)
    order;
  let a = Array.make n 0 in
  let comp = ref 0 and acc = ref 0 in
  Array.iter
    (fun v ->
      let s = Graph.state g v in
      if !acc + s > bound && !acc > 0 then begin
        incr comp;
        acc := 0
      end;
      acc := !acc + s;
      a.(v) <- !comp)
    order;
  Spec.of_assignment g a

(* Depth-first topological order: Kahn's algorithm with a LIFO worklist, so
   a module's successors are emitted right after it whenever possible.
   Keeps producer/consumer pairs adjacent, which interval chunking turns
   into internal edges. *)
let dfs_topo_order g =
  let n = Graph.num_nodes g in
  let indeg = Array.make n 0 in
  List.iter
    (fun v -> indeg.(v) <- List.length (Graph.in_edges g v))
    (Graph.nodes g);
  let stack = Stack.create () in
  List.iter (fun v -> if indeg.(v) = 0 then Stack.push v stack) (Graph.nodes g);
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    order.(!count) <- v;
    incr count;
    List.iter
      (fun e ->
        let w = Graph.dst g e in
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Stack.push w stack)
      (Graph.out_edges g v)
  done;
  assert (!count = n);
  order

let greedy g ~bound = interval g ~order:(dfs_topo_order g) ~bound

(* Breadth-first topological order (Kahn with a FIFO). *)
let bfs_topo_order g = Graph.topological_order g

(* Gain-weighted depth-first order: like dfs_topo_order, but when a node's
   successors become ready they are pushed so that the successor reached
   through the highest-gain edge is popped first — heavy edges stay
   adjacent in the order, leaving cheap edges for chunk boundaries. *)
let weighted_dfs_topo_order g analysis =
  let n = Graph.num_nodes g in
  let indeg = Array.make n 0 in
  List.iter
    (fun v -> indeg.(v) <- List.length (Graph.in_edges g v))
    (Graph.nodes g);
  let stack = Stack.create () in
  List.iter (fun v -> if indeg.(v) = 0 then Stack.push v stack) (Graph.nodes g);
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    order.(!count) <- v;
    incr count;
    (* Collect newly-ready successors with the gain of the connecting
       edge; push in increasing gain so the heaviest is on top. *)
    let ready =
      List.filter_map
        (fun e ->
          let w = Graph.dst g e in
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Some (Rates.edge_gain analysis e, w) else None)
        (Graph.out_edges g v)
    in
    List.sort (fun (g1, _) (g2, _) -> Q.compare g1 g2) ready
    |> List.iter (fun (_, w) -> Stack.push w stack)
  done;
  assert (!count = n);
  order

let candidate_orders g analysis =
  [ dfs_topo_order g; bfs_topo_order g; weighted_dfs_topo_order g analysis ]

let order_dp g analysis ~order ~bound ?max_degree ?(pinned = fun _ -> false)
    () =
  check_states g ~bound ~what:"Dag.order_dp";
  let n = Graph.num_nodes g in
  if Array.length order <> n then
    invalid_arg "Dag.order_dp: order length mismatch";
  let pos = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || pos.(v) >= 0 then
        invalid_arg "Dag.order_dp: order is not a permutation";
      pos.(v) <- i)
    order;
  List.iter
    (fun e ->
      if pos.(Graph.src g e) >= pos.(Graph.dst g e) then
        invalid_arg "Dag.order_dp: order is not topological")
    (Graph.edges g);
  (* dp.(i) = min bandwidth chunking of order[0..i-1]; when segment [j..i]
     closes we pay the gains of edges leaving it rightwards (edges entering
     it were paid by their source's segment). *)
  let dp = Array.make (n + 1) None in
  let choice = Array.make (n + 1) (-1) in
  dp.(0) <- Some Q.zero;
  for i = 1 to n do
    let hi = i - 1 in
    (* Scan segment starts j = hi downto 0, maintaining the segment's
       state, outgoing gain past position hi, and cross-edge degree. *)
    let state = ref 0 in
    let outgo = ref Q.zero in
    let degree = ref 0 in
    let j = ref hi in
    let feasible = ref true in
    let has_pinned = ref false in
    while !feasible && !j >= 0 do
      let v = order.(!j) in
      state := !state + Graph.state g v;
      (* Out-edges of v: those past hi add gain and degree; those inside
         [j+1..hi] are internal (they were never counted). *)
      List.iter
        (fun e ->
          let d = pos.(Graph.dst g e) in
          if d > hi then begin
            outgo := Q.add !outgo (Rates.edge_gain analysis e);
            incr degree
          end)
        (Graph.out_edges g v);
      (* In-edges of v: every source sits before position j in a
         topological order, i.e. outside the segment, so each in-edge adds
         one to the degree now; if its source later joins the segment, the
         source's out-edge scan below decrements it back (internal). *)
      List.iter (fun _ -> incr degree) (Graph.in_edges g v);
      (* Edges from v to segment members [j+1..hi] were counted as "source
         before j" when their destinations were added; now internal. *)
      List.iter
        (fun e ->
          let d = pos.(Graph.dst g e) in
          if d > !j && d <= hi then decr degree)
        (Graph.out_edges g v);
      has_pinned := !has_pinned || pinned v;
      if !state > bound then feasible := false
      else if !has_pinned && !j < hi then
        (* A pinned module may only stand alone; every segment of two or
           more nodes containing one is inadmissible, and extending further
           cannot help. *)
        feasible := false
      else begin
        (* The degree cap is soft for single-node segments: a node whose
           own degree exceeds the cap (a wide splitter or joiner) cannot be
           split further, and the paper's degree-limited hypothesis simply
           fails for such graphs — we still produce the best partition we
           can. *)
        let degree_ok =
          match max_degree with
          | None -> true
          | Some d -> !degree <= d || !j = hi
        in
        (if degree_ok then
           match dp.(!j) with
           | Some c ->
               let total = Q.add c !outgo in
               (match dp.(i) with
               | Some best when Q.compare best total <= 0 -> ()
               | _ ->
                   dp.(i) <- Some total;
                   choice.(i) <- !j)
           | None -> ());
        decr j
      end
    done
  done;
  (match dp.(n) with
  | None ->
      invalid_arg
        "Dag.order_dp: no feasible chunking (degree cap too strict?)"
  | Some _ -> ());
  let a = Array.make n 0 in
  let comp = ref 0 in
  let stop = ref n in
  while !stop > 0 do
    let start = choice.(!stop) in
    for p = start to !stop - 1 do
      a.(order.(p)) <- !comp
    done;
    incr comp;
    stop := start
  done;
  Spec.of_assignment g a

let refine g analysis ~bound ?max_degree ?(max_passes = 8) spec =
  let n = Graph.num_nodes g in
  let current = ref spec in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for v = 0 to n - 1 do
      let sp = !current in
      let c = Spec.component_of sp v in
      let k = Spec.num_components sp in
      let try_move target =
        if target >= 0 && target < k && target <> c then begin
          let a = Spec.assignment sp in
          a.(v) <- target;
          let candidate = Spec.of_assignment g a in
          let degree_ok =
            match max_degree with
            | None -> true
            | Some d ->
                (* Soft cap, as in order_dp: unavoidably wide single-node
                   components are tolerated. *)
                let ok = ref true in
                for c = 0 to Spec.num_components candidate - 1 do
                  if
                    Spec.component_degree candidate c > d
                    && List.compare_length_with (Spec.members candidate c) 1
                       > 0
                  then ok := false
                done;
                !ok
          in
          if
            degree_ok
            && Spec.is_well_ordered candidate
            && Spec.is_c_bounded candidate ~bound
            && Q.compare
                 (Spec.bandwidth candidate analysis)
                 (Spec.bandwidth sp analysis)
               < 0
          then begin
            current := candidate;
            improved := true
          end
        end
      in
      try_move (c - 1);
      if Spec.component_of !current v = c then try_move (c + 1)
    done
  done;
  !current

let best g analysis ~bound ?max_degree ?pinned () =
  let candidates =
    List.filter_map
      (fun order ->
        match order_dp g analysis ~order ~bound ?max_degree ?pinned () with
        | sp -> Some sp
        | exception Invalid_argument _ -> (
            (* Degree cap infeasible for this order: fall back to plain
               first-fit chunking (no cap). *)
            match interval g ~order ~bound with
            | sp -> Some sp
            | exception Invalid_argument _ -> None))
      (candidate_orders g analysis)
  in
  let pick_best = function
    | [] -> invalid_arg "Dag.best: no feasible partition (bound too small?)"
    | first :: rest ->
        List.fold_left
          (fun acc sp ->
            if
              Q.compare (Spec.bandwidth sp analysis)
                (Spec.bandwidth acc analysis)
              < 0
            then sp
            else acc)
          first rest
  in
  let refined = refine g analysis ~bound ?max_degree (pick_best candidates) in
  (* Refinement moves could merge a pinned module into a neighbour; reject
     the refinement for such modules by keeping the pre-refine result. *)
  match pinned with
  | None -> refined
  | Some p ->
      let ok =
        List.for_all
          (fun v ->
            (not (p v))
            || List.compare_length_with
                 (Spec.members refined (Spec.component_of refined v))
                 1
               = 0)
          (Graph.nodes g)
      in
      if ok then refined else pick_best candidates

(* --- Exact search over order ideals ------------------------------------- *)

let exact g analysis ~bound ?(max_nodes = 20) () =
  let n = Graph.num_nodes g in
  if n > max_nodes then None
  else if List.exists (fun v -> Graph.state g v > bound) (Graph.nodes g) then
    None
  else begin
    let full = (1 lsl n) - 1 in
    let state_of = Array.init n (fun v -> Graph.state g v) in
    let pred_mask = Array.make n 0 in
    let edges =
      List.map
        (fun e ->
          let s = Graph.src g e and d = Graph.dst g e in
          pred_mask.(d) <- pred_mask.(d) lor (1 lsl s);
          (s, d, Rates.edge_gain analysis e))
        (Graph.edges g)
    in
    (* f(ideal) = min bandwidth to peel the remaining nodes; memoized. *)
    let memo : (int, Q.t * (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
    (* Stored value: (cost, trail) where trail lists (component_mask, _)
       choices from this ideal to completion. *)
    let cost_of_component ideal s_mask =
      (* Gains of edges from S to nodes outside ideal ∪ S. *)
      let outside = full land lnot (ideal lor s_mask) in
      List.fold_left
        (fun acc (s, d, gain) ->
          if (s_mask lsr s) land 1 = 1 && (outside lsr d) land 1 = 1 then
            Q.add acc gain
          else acc)
        Q.zero edges
    in
    let rec solve ideal =
      if ideal = full then (Q.zero, [])
      else
        match Hashtbl.find_opt memo ideal with
        | Some r -> r
        | None ->
            let best = ref None in
            (* Enumerate candidate next components S: grow from the ready
               frontier, deduplicating by mask. *)
            let seen = Hashtbl.create 64 in
            let ready_from mask =
              (* Nodes not in [mask] whose predecessors are all in [mask]. *)
              let r = ref [] in
              for v = 0 to n - 1 do
                if
                  (mask lsr v) land 1 = 0
                  && pred_mask.(v) land lnot mask = 0
                then r := v :: !r
              done;
              !r
            in
            let consider s_mask s_state =
              if s_mask <> 0 then begin
                let cost = cost_of_component ideal s_mask in
                let sub_cost, sub_trail = solve (ideal lor s_mask) in
                let total = Q.add cost sub_cost in
                match !best with
                | Some (b, _) when Q.compare total b >= 0 -> ()
                | _ -> best := Some (total, (s_mask, s_state) :: sub_trail)
              end
            in
            let rec grow s_mask s_state =
              if not (Hashtbl.mem seen s_mask) then begin
                Hashtbl.add seen s_mask ();
                if s_mask <> 0 then consider s_mask s_state;
                List.iter
                  (fun v ->
                    let st = s_state + state_of.(v) in
                    if st <= bound then grow (s_mask lor (1 lsl v)) st)
                  (ready_from (ideal lor s_mask))
              end
            in
            grow 0 0;
            let r =
              match !best with
              | Some r -> r
              | None ->
                  (* Unreachable: a single ready node always fits since
                     states are individually <= bound. *)
                  assert false
            in
            Hashtbl.add memo ideal r;
            r
    in
    let _, trail = solve 0 in
    let a = Array.make n 0 in
    List.iteri
      (fun i (mask, _) ->
        for v = 0 to n - 1 do
          if (mask lsr v) land 1 = 1 then a.(v) <- i
        done)
      trail;
    Some (Spec.of_assignment g a)
  end

let min_bandwidth g analysis ~bound ?max_nodes () =
  Option.map
    (fun sp -> Spec.bandwidth sp analysis)
    (exact g analysis ~bound ?max_nodes ())

module Graph = Ccs_sdf.Graph
module Rates = Ccs_sdf.Rates
module Minbuf = Ccs_sdf.Minbuf
module Q = Ccs_sdf.Rational

type mapping = {
  graph : Graph.t;
  node_of_component : int array;
  component_of_node : int array;
  edge_of_cross : (Graph.edge * Graph.edge) list;
}

(* Local repetition of component [c]: smallest positive integral vector
   proportional to the members' gains (how often each member fires per
   firing of the fused module). *)
let local_repetition (a : Rates.analysis) members =
  let denom =
    List.fold_left (fun acc v -> Q.lcm acc (Q.den a.Rates.node_gain.(v))) 1
      members
  in
  let ints =
    List.map
      (fun v -> (v, Q.to_int_exn (Q.mul_int a.Rates.node_gain.(v) denom)))
      members
  in
  let g = List.fold_left (fun acc (_, x) -> Q.gcd acc x) 0 ints in
  List.map (fun (v, x) -> (v, x / g)) ints

let contract g a spec =
  if not (Spec.is_well_ordered spec) then
    invalid_arg "Cluster.contract: partition is not well-ordered";
  let k = Spec.num_components spec in
  let mb = Minbuf.compute g a in
  let b = Graph.Builder.create ~name:(Graph.name g ^ "-fused") () in
  (* Fused state: member states plus internal minimum buffers. *)
  let local_rep = Array.make k [] in
  let node_of_component = Array.make k (-1) in
  for c = 0 to k - 1 do
    let members = Spec.members spec c in
    local_rep.(c) <- local_repetition a members;
    let state =
      List.fold_left (fun acc v -> acc + Graph.state g v) 0 members
    in
    let internal_buf =
      List.fold_left
        (fun acc e ->
          if
            Spec.component_of spec (Graph.src g e) = c
            && Spec.component_of spec (Graph.dst g e) = c
          then acc + mb.Minbuf.capacity.(e)
          else acc)
        0 (Graph.edges g)
    in
    let name =
      match members with
      | [ v ] -> Graph.node_name g v
      | v :: _ ->
          Printf.sprintf "fused-%s+%d" (Graph.node_name g v)
            (List.length members - 1)
      | [] -> assert false
    in
    node_of_component.(c) <-
      Graph.Builder.add_module b ~state:(state + internal_buf) name
  done;
  (* Cross edges: rates scale by the endpoint's local repetition count. *)
  let edge_of_cross =
    List.filter_map
      (fun e ->
        let cs = Spec.component_of spec (Graph.src g e)
        and cd = Spec.component_of spec (Graph.dst g e) in
        if cs = cd then None
        else begin
          let p_src = List.assoc (Graph.src g e) local_rep.(cs) in
          let p_dst = List.assoc (Graph.dst g e) local_rep.(cd) in
          let e' =
            Graph.Builder.add_channel b ~delay:(Graph.delay g e)
              ~src:node_of_component.(cs) ~dst:node_of_component.(cd)
              ~push:(p_src * Graph.push g e)
              ~pop:(p_dst * Graph.pop g e)
              ()
          in
          Some (e, e')
        end)
      (Graph.edges g)
  in
  let graph = Graph.Builder.build b in
  let component_of_node = Array.make k (-1) in
  Array.iteri (fun c n -> component_of_node.(n) <- c) node_of_component;
  { graph; node_of_component; component_of_node; edge_of_cross }

let fuse_smallest g a ~bound =
  let spec = Dag.greedy g ~bound in
  (contract g a spec).graph

let hierarchical g a ~bound ?(coarsen_to = 8) ?max_degree () =
  let max_state =
    List.fold_left (fun acc v -> max acc (Graph.state g v)) 1 (Graph.nodes g)
  in
  let cluster_bound = max max_state (bound / max 1 coarsen_to) in
  let coarse_spec = Dag.greedy g ~bound:cluster_bound in
  let m = contract g a coarse_spec in
  let cg = m.graph in
  let ca = Ccs_sdf.Rates.analyze_exn cg in
  let coarse_partition =
    if Graph.num_nodes cg <= 20 then
      match Dag.exact cg ca ~bound ~max_nodes:20 () with
      | Some sp -> sp
      | None -> Dag.best cg ca ~bound ?max_degree ()
    else Dag.best cg ca ~bound ?max_degree ()
  in
  (* Project: an original module's component is the component of the
     contracted node holding its cluster. *)
  let assignment =
    Array.init (Graph.num_nodes g) (fun v ->
        let cluster = Spec.component_of coarse_spec v in
        Spec.component_of coarse_partition m.node_of_component.(cluster))
  in
  Spec.of_assignment g assignment

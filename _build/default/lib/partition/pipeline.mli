(** Partitioning algorithms for pipelines (single directed chains).

    Pipelines admit polynomial-time partitioning (Section 4): well-ordered
    partitions of a chain are exactly its segmentations, so both the paper's
    constructive partition (Theorem 5) and the true minimum-bandwidth
    c-bounded segmentation (a simple dynamic program) are implemented
    here. *)

val chain_order : Ccs_sdf.Graph.t -> Ccs_sdf.Graph.node array
(** Modules in chain order (source first).
    @raise Invalid_argument if the graph is not a pipeline
    ({!Ccs_sdf.Graph.is_pipeline}). *)

val greedy :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> m:int -> Spec.t
(** The Theorem-5 construction.  Walk the chain accumulating segments [Wi]
    of total state just above [2m]; cut each [Wi] at its gain-minimizing
    internal edge; the cut edges induce the partition.  Guarantees every
    component has state at most [8m] and bandwidth within a constant factor
    of the optimal 2m-bounded partition's, hence an asymptotically optimal
    schedule with O(1) cache augmentation (Corollary 6).
    @raise Invalid_argument if some module's state exceeds [m] (the paper's
    standing assumption [s(v) <= M]). *)

val optimal_dp :
  Ccs_sdf.Graph.t -> Ccs_sdf.Rates.analysis -> bound:int -> Spec.t
(** Minimum-bandwidth segmentation with every segment's state at most
    [bound] (the paper's [c*M] for the caller's choice of [c]), by an
    O(n²) dynamic program over cut positions.  This is the "simple dynamic
    program" the paper invokes after Theorem 5.
    @raise Invalid_argument if some module's state exceeds [bound] (no
    feasible segmentation exists). *)

val bandwidth_of_cuts :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_sdf.Graph.edge list ->
  Ccs_sdf.Rational.t
(** Total gain of a set of cut edges — convenience for tests comparing
    segmentations. *)

val gain_minimizing_edge :
  Ccs_sdf.Graph.t ->
  Ccs_sdf.Rates.analysis ->
  Ccs_sdf.Graph.node array ->
  lo:int ->
  hi:int ->
  Ccs_sdf.Graph.edge
(** [gain_minimizing_edge g a chain ~lo ~hi] is an internal edge of minimum
    gain in the segment [chain.(lo) .. chain.(hi)] — the paper's
    [gainMin(u,v)].
    @raise Invalid_argument if the segment has no internal edge
    ([lo >= hi]). *)

type t = { mutable data : int array; mutable len : int }

let create ?(initial_capacity = 64) () =
  { data = Array.make (max 1 initial_capacity) 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get: index out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len
let clear t = t.len <- 0

let iter t ~f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(** Growable array of unboxed integers (OCaml 5.1 has no [Dynarray]).

    Used to record memory traces, which can run to millions of entries, so
    it must not box. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val to_array : t -> int array
val clear : t -> unit
val iter : t -> f:(int -> unit) -> unit

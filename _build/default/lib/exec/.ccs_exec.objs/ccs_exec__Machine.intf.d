lib/exec/machine.mli: Ccs_cache Ccs_sdf

lib/exec/intvec.ml: Array

lib/exec/intvec.mli:

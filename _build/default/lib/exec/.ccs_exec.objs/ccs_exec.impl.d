lib/exec/ccs_exec.ml: Intvec Machine

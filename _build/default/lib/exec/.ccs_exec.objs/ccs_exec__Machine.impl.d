lib/exec/machine.ml: Array Ccs_cache Ccs_sdf Float Intvec List Printf

(** Registry of the full application suite, for experiments and the CLI. *)

type entry = {
  name : string;
  description : string;
  graph : unit -> Ccs_sdf.Graph.t;  (** Default-parameter instance. *)
  scaled : int -> Ccs_sdf.Graph.t;
      (** [scaled k]: the same topology with per-module state roughly [k]
          times larger (filter taps, table sizes, ... scaled), for
          experiments that need every app to exceed a given cache. *)
}

val all : entry list
(** Every application, default parameters. *)

val find : string -> entry option
(** Look up by name ("fm-radio", "des", ...). *)

val names : string list

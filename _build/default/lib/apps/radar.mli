(** Pulse-Doppler radar front end (StreamIt Radar shape).

    Per-antenna pulse-compression FIR chains feed a corner-turn gather; a
    Doppler FFT chain and a constant-false-alarm-rate detector follow.  A
    split-join into a deep pipeline with heavy per-stage state. *)

val graph : ?antennas:int -> ?taps:int -> ?fft_stages:int -> unit -> Ccs_sdf.Graph.t
(** Defaults: 4 antennas, 64-tap pulse compression, 5 FFT stages. *)

module B = Ccs_sdf.Graph.Builder

let fir_state ~taps = 2 * taps

let add_fir b ~name ~taps = B.add_module b ~state:(fir_state ~taps) name

let add_decimating_fir b ~name ~taps ~factor:_ =
  B.add_module b ~state:(fir_state ~taps) name

let unit_edge b src dst = ignore (B.add_channel b ~src ~dst ~push:1 ~pop:1 ())

let edge b ~src ~dst ~push ~pop =
  ignore (B.add_channel b ~src ~dst ~push ~pop ())

(** Shared helpers for building signal-processing application graphs. *)

val fir_state : taps:int -> int
(** Memory footprint of an FIR filter: coefficient table plus delay line. *)

val add_fir :
  Ccs_sdf.Graph.Builder.t ->
  name:string ->
  taps:int ->
  Ccs_sdf.Graph.node
(** A unit-rate FIR module. *)

val add_decimating_fir :
  Ccs_sdf.Graph.Builder.t ->
  name:string ->
  taps:int ->
  factor:int ->
  Ccs_sdf.Graph.node
(** An FIR that consumes [factor] samples per output sample (when wired
    with {!val:consume} below). *)

val unit_edge :
  Ccs_sdf.Graph.Builder.t ->
  Ccs_sdf.Graph.node ->
  Ccs_sdf.Graph.node ->
  unit
(** Convenience 1/1 channel. *)

val edge :
  Ccs_sdf.Graph.Builder.t ->
  src:Ccs_sdf.Graph.node ->
  dst:Ccs_sdf.Graph.node ->
  push:int ->
  pop:int ->
  unit

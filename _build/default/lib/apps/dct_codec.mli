(** JPEG-style DCT block codec.

    8×8-pixel blocks flow through level shift, a row-DCT / column-DCT pair
    (each holding cosine tables), quantization (with a quality-scaled
    table), zigzag reordering, and run-length packing that shrinks the
    stream (modelled as a fixed 4:1 compaction).  Coarse 64-token block
    rates with a data-reducing tail — the "compression pipeline" shape. *)

val graph :
  ?block:int -> ?table_words:int -> ?passes:int -> unit -> Ccs_sdf.Graph.t
(** Defaults: 8×8 blocks (64-token granularity), 128-word DCT/quant
    tables, one transform pass.  [passes] chains progressive-refinement
    transform/quantize passes, each with its own tables. *)

module B = Ccs_sdf.Graph.Builder

let graph ?(rounds = 16) ?(sbox_words = 512) () =
  let b = B.create ~name:"des" () in
  let source = B.add_module b ~state:4 "plaintext" in
  let ip = B.add_module b ~state:64 "initial-permutation" in
  Fir.unit_edge b source ip;
  let last =
    let rec round prev i =
      if i > rounds then prev
      else begin
        let expand = B.add_module b ~state:48 (Printf.sprintf "r%d-expand" i) in
        Fir.unit_edge b prev expand;
        let sbox =
          B.add_module b ~state:sbox_words (Printf.sprintf "r%d-sbox" i)
        in
        Fir.unit_edge b expand sbox;
        let perm = B.add_module b ~state:32 (Printf.sprintf "r%d-perm" i) in
        Fir.unit_edge b sbox perm;
        round perm (i + 1)
      end
    in
    round ip 1
  in
  let fp = B.add_module b ~state:64 "final-permutation" in
  Fir.unit_edge b last fp;
  let sink = B.add_module b ~state:4 "ciphertext" in
  Fir.unit_edge b fp sink;
  B.build b

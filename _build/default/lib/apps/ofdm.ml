module B = Ccs_sdf.Graph.Builder

let graph ?(subcarriers = 16) ?(fft_stages = 4) ?(eq_words = 24) () =
  if subcarriers <> 1 lsl fft_stages then
    invalid_arg "Ofdm.graph: subcarriers must equal 2^fft_stages";
  let b = B.create ~name:"ofdm-rx" () in
  let source = B.add_module b ~state:4 "adc" in
  (* Cyclic-prefix removal: consume symbol + prefix (1/4 overhead),
     emit the symbol's samples, one per subcarrier lane. *)
  let cp = B.add_module b ~state:32 "cp-remove" in
  Fir.edge b ~src:source ~dst:cp ~push:1 ~pop:(subcarriers + (subcarriers / 4));
  (* FFT butterfly bank: stages of pairwise exchanges across lanes. *)
  let lanes = Array.make subcarriers cp in
  (* cp deals one sample to each lane per firing (push 1 on each edge). *)
  let stage_nodes st =
    Array.init subcarriers (fun l ->
        B.add_module b ~state:16 (Printf.sprintf "fft%d-%d" st l))
  in
  let first = stage_nodes 0 in
  Array.iter (fun v -> Fir.unit_edge b cp v) first;
  Array.blit first 0 lanes 0 subcarriers;
  for st = 1 to fft_stages do
    let cur = stage_nodes st in
    let stride = 1 lsl (st - 1) in
    for l = 0 to subcarriers - 1 do
      Fir.unit_edge b lanes.(l) cur.(l);
      Fir.unit_edge b lanes.(l) cur.(l lxor stride)
    done;
    Array.blit cur 0 lanes 0 subcarriers
  done;
  (* Per-subcarrier equalizer, then demap. *)
  let demap = B.add_module b ~state:(16 + subcarriers) "demap" in
  Array.iteri
    (fun l v ->
      let eq = B.add_module b ~state:eq_words (Printf.sprintf "eq-%d" l) in
      Fir.unit_edge b v eq;
      Fir.unit_edge b eq demap)
    lanes;
  (* Deinterleave and decode at symbol granularity. *)
  let deint = B.add_module b ~state:64 "deinterleave" in
  Fir.edge b ~src:demap ~dst:deint ~push:1 ~pop:1;
  let viterbi = B.add_module b ~state:256 "viterbi" in
  Fir.edge b ~src:deint ~dst:viterbi ~push:1 ~pop:2;
  let sink = B.add_module b ~state:4 "mac-out" in
  Fir.unit_edge b viterbi sink;
  B.build b

module B = Ccs_sdf.Graph.Builder

let graph ?(log_lanes = 3) ?(comparator_state = 8) () =
  let k = log_lanes in
  let lanes = 1 lsl k in
  let b = B.create ~name:"bitonic-sort" () in
  let source = B.add_module b ~state:4 "source" in
  (* producer.(lane) = the module currently driving that lane. *)
  let producer = Array.make lanes source in
  let column stage substage =
    let stride = 1 lsl substage in
    let next = Array.copy producer in
    for low = 0 to lanes - 1 do
      let high = low lxor stride in
      if low < high then begin
        let cmp =
          B.add_module b ~state:comparator_state
            (Printf.sprintf "cmp-s%d.%d-l%d" stage substage low)
        in
        Fir.unit_edge b producer.(low) cmp;
        Fir.unit_edge b producer.(high) cmp;
        next.(low) <- cmp;
        next.(high) <- cmp
      end
    done;
    Array.blit next 0 producer 0 lanes
  in
  for stage = 1 to k do
    for substage = stage - 1 downto 0 do
      column stage substage
    done
  done;
  let sink = B.add_module b ~state:4 "sink" in
  (* A comparator drives two lanes with two distinct channels; collapse
     duplicates so the sink pops one token per lane. *)
  Array.iter (fun p -> Fir.unit_edge b p sink) producer;
  B.build b

(** Channel vocoder (StreamIt Vocoder/ChannelVocoder shape).

    A pitch-detector branch runs in parallel with a bank of envelope
    channels (band-pass + magnitude + low-pass, decimating); a synthesis
    module recombines pitch and envelopes.  Mixed rates and an asymmetric
    split-join. *)

val graph : ?channels:int -> ?taps:int -> unit -> Ccs_sdf.Graph.t
(** Defaults: 16 envelope channels, 64-tap filters. *)

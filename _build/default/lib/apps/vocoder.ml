module B = Ccs_sdf.Graph.Builder

let graph ?(channels = 16) ?(taps = 64) () =
  let b = B.create ~name:"channel-vocoder" () in
  let source = B.add_module b ~state:4 "mic" in
  let split = B.add_module b ~state:4 "split" in
  Fir.unit_edge b source split;
  let synth = B.add_module b ~state:(16 + (2 * channels)) "synthesis" in
  (* Pitch branch: decimate by 4 to the frame rate. *)
  let pitch = Fir.add_fir b ~name:"pitch-detector" ~taps in
  Fir.edge b ~src:split ~dst:pitch ~push:1 ~pop:4;
  Fir.unit_edge b pitch synth;
  (* Envelope channels: band-pass, magnitude, decimating low-pass to the
     same frame rate. *)
  for ch = 0 to channels - 1 do
    let bpf = Fir.add_fir b ~name:(Printf.sprintf "ch%d-bpf" ch) ~taps in
    Fir.unit_edge b split bpf;
    let mag = B.add_module b ~state:8 (Printf.sprintf "ch%d-magnitude" ch) in
    Fir.unit_edge b bpf mag;
    let lpf = Fir.add_fir b ~name:(Printf.sprintf "ch%d-lpf" ch) ~taps in
    Fir.edge b ~src:mag ~dst:lpf ~push:1 ~pop:4;
    Fir.unit_edge b lpf synth
  done;
  let sink = B.add_module b ~state:4 "speaker" in
  Fir.unit_edge b synth sink;
  B.build b

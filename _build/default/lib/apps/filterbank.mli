(** The StreamIt FilterBank benchmark: analysis/synthesis bank.

    The input fans out to [bands] branches; each branch band-pass filters,
    decimates by [bands], processes, interpolates back by [bands], and the
    branches are summed.  Per-branch decimation makes the gains non-unit
    while keeping the graph rate-matched. *)

val graph : ?bands:int -> ?taps:int -> unit -> Ccs_sdf.Graph.t
(** Defaults: 8 bands, 32-tap filters. *)

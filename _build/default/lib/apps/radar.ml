module B = Ccs_sdf.Graph.Builder

let graph ?(antennas = 4) ?(taps = 64) ?(fft_stages = 5) () =
  let b = B.create ~name:"radar" () in
  let source = B.add_module b ~state:4 "pulse-source" in
  let gather = B.add_module b ~state:(8 + antennas) "corner-turn" in
  for ant = 0 to antennas - 1 do
    let compress =
      Fir.add_fir b ~name:(Printf.sprintf "ant%d-compress" ant) ~taps
    in
    Fir.unit_edge b source compress;
    let window =
      B.add_module b ~state:32 (Printf.sprintf "ant%d-window" ant)
    in
    Fir.unit_edge b compress window;
    Fir.unit_edge b window gather
  done;
  let last =
    let rec fft prev i =
      if i > fft_stages then prev
      else begin
        let stage =
          B.add_module b ~state:64 (Printf.sprintf "doppler-fft%d" i)
        in
        Fir.unit_edge b prev stage;
        fft stage (i + 1)
      end
    in
    fft gather 1
  in
  let cfar = B.add_module b ~state:128 "cfar-detect" in
  (* CFAR integrates 8 range gates per detection decision. *)
  Fir.edge b ~src:last ~dst:cfar ~push:1 ~pop:8;
  let sink = B.add_module b ~state:4 "track-sink" in
  Fir.unit_edge b cfar sink;
  B.build b

type entry = {
  name : string;
  description : string;
  graph : unit -> Ccs_sdf.Graph.t;
  scaled : int -> Ccs_sdf.Graph.t;
}

let all =
  [
    {
      name = "fm-radio";
      description = "FM receiver with multiband equalizer (pipeline + split-join)";
      graph = (fun () -> Fm_radio.graph ());
      scaled = (fun k -> Fm_radio.graph ~taps:(64 * k) ());
    };
    {
      name = "fft";
      description = "streaming FFT butterfly network (homogeneous DAG)";
      graph = (fun () -> Fft.graph ());
      scaled = (fun k -> Fft.graph ~twiddle_words:(16 * k) ());
    };
    {
      name = "beamformer";
      description = "phased-array beamformer (nested split-joins, decimation)";
      graph = (fun () -> Beamformer.graph ());
      scaled = (fun k -> Beamformer.graph ~taps:(32 * k) ());
    };
    {
      name = "filterbank";
      description = "analysis/synthesis filter bank (non-unit gains)";
      graph = (fun () -> Filterbank.graph ());
      scaled = (fun k -> Filterbank.graph ~taps:(32 * k) ());
    };
    {
      name = "bitonic";
      description = "bitonic sorting network (wide homogeneous DAG)";
      graph = (fun () -> Bitonic.graph ());
      scaled = (fun k -> Bitonic.graph ~comparator_state:(8 * k) ());
    };
    {
      name = "des";
      description = "DES block-cipher rounds (state-heavy pipeline)";
      graph = (fun () -> Des.graph ());
      scaled = (fun k -> Des.graph ~rounds:(16 * k) ());
    };
    {
      name = "vocoder";
      description = "channel vocoder (asymmetric split-join, mixed rates)";
      graph = (fun () -> Vocoder.graph ());
      scaled = (fun k -> Vocoder.graph ~taps:(64 * k) ());
    };
    {
      name = "matmul";
      description = "blocked matrix multiply (coarse-grained rates)";
      graph = (fun () -> Matmul.graph ());
      scaled = (fun k -> Matmul.graph ~n:16 ~stages:k ());
    };
    {
      name = "radar";
      description = "pulse-Doppler radar front end (split-join + deep pipeline)";
      graph = (fun () -> Radar.graph ());
      scaled = (fun k -> Radar.graph ~taps:(64 * k) ());
    };
    {
      name = "ofdm";
      description = "OFDM (802.11a-style) receiver: CP removal, FFT bank, per-subcarrier EQ";
      graph = (fun () -> Ofdm.graph ());
      scaled = (fun k -> Ofdm.graph ~eq_words:(24 * k) ());
    };
    {
      name = "dct-codec";
      description = "JPEG-style DCT block codec (compressing pipeline)";
      graph = (fun () -> Dct_codec.graph ());
      scaled = (fun k -> Dct_codec.graph ~table_words:256 ~passes:k ());
    };
    {
      name = "mp3";
      description = "MP3-style subband decoder (granule rates)";
      graph = (fun () -> Mp3.graph ());
      scaled = (fun k -> Mp3.graph ~imdct_words:(72 * k) ());
    };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
let names = List.map (fun e -> e.name) all

module B = Ccs_sdf.Graph.Builder

let graph ?(bands = 8) ?(taps = 32) () =
  let b = B.create ~name:"filterbank" () in
  let source = B.add_module b ~state:4 "input" in
  let split = B.add_module b ~state:4 "analysis-split" in
  Fir.unit_edge b source split;
  let join = B.add_module b ~state:(4 + bands) "synthesis-sum" in
  for band = 0 to bands - 1 do
    let analysis =
      Fir.add_fir b ~name:(Printf.sprintf "band%d-analysis" band) ~taps
    in
    (* Analysis filter decimates by [bands]. *)
    Fir.edge b ~src:split ~dst:analysis ~push:1 ~pop:bands;
    let process =
      B.add_module b ~state:16 (Printf.sprintf "band%d-process" band)
    in
    Fir.unit_edge b analysis process;
    let synthesis =
      Fir.add_fir b ~name:(Printf.sprintf "band%d-synthesis" band) ~taps
    in
    (* Synthesis filter interpolates back by [bands]. *)
    Fir.edge b ~src:process ~dst:synthesis ~push:1 ~pop:1;
    Fir.edge b ~src:synthesis ~dst:join ~push:bands ~pop:bands
  done;
  let sink = B.add_module b ~state:4 "output" in
  Fir.unit_edge b join sink;
  B.build b
